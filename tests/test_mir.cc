/**
 * @file
 * MIR unit tests: builder invariants, verifier diagnostics, interpreter
 * semantics (including division edge cases and typed loads/stores),
 * global layout, and the loop helper.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/log.hh"
#include "common/memmap.hh"
#include "mir/builder.hh"
#include "mir/interp.hh"

using namespace marvel;
using namespace marvel::mir;

namespace {

GoldenRun runModule(ModuleBuilder& mb) {
    verify(mb.module());
    return interpretModule(mb.module());
}

} // namespace

TEST(MirVerify, CatchesMissingTerminator) {
    ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    fb.constI(1); // no terminator
    EXPECT_THROW(verify(mb.module()), FatalError);
}

TEST(MirVerify, CatchesBadBranchTarget) {
    ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    fb.emit({.op = Op::Jmp, .target = 99});
    EXPECT_THROW(verify(mb.module()), FatalError);
}

TEST(MirVerify, CatchesCallArityMismatch) {
    ModuleBuilder mb;
    auto callee = mb.func("f", {Type::I64}, true);
    callee.ret(callee.fn().params[0]);
    auto fb = mb.func("main", {}, true);
    fb.emit({.op = Op::Call, .dst = fb.constI(0),
             .callee = mb.module().funcId("f"), .args = {}});
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    EXPECT_THROW(verify(mb.module()), FatalError);
}

TEST(MirInterp, ArithmeticAndDivisionEdges) {
    ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    auto intMin = fb.constI(INT64_MIN);
    auto minus1 = fb.constI(-1);
    auto d = fb.div(intMin, minus1); // must not trap (wraps)
    auto r = fb.rem(intMin, minus1); // 0
    fb.ret(fb.add(d, r));
    mb.setEntry("main");
    auto g = runModule(mb);
    EXPECT_EQ(g.result.exitValue, INT64_MIN);
}

TEST(MirInterp, TypedLoadsStoreSignExtension) {
    ModuleBuilder mb;
    std::vector<u8> init = {0xff, 0x7f, 0x80, 0x01};
    mb.globalInit("bytes", init);
    auto fb = mb.func("main", {}, true);
    auto base = fb.gaddr("bytes");
    auto s = fb.ld1s(base, 0);       // -1
    auto u = fb.ld1u(base, 0);       // 255
    auto h = fb.ld2s(base, 2);       // 0x0180 = 384
    fb.ret(fb.add(fb.add(s, u), h)); // -1 + 255 + 384
    mb.setEntry("main");
    EXPECT_EQ(runModule(mb).result.exitValue, 638);
}

TEST(MirInterp, FloatOps) {
    ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    auto a = fb.constF(2.25);
    auto b = fb.constF(4.0);
    auto root = fb.fsqrt(b);                       // 2.0
    auto sum = fb.fadd(a, root);                   // 4.25
    auto scaled = fb.fmul(sum, fb.constF(4.0));    // 17.0
    fb.ret(fb.ftoi(scaled));
    mb.setEntry("main");
    EXPECT_EQ(runModule(mb).result.exitValue, 17);
}

TEST(MirInterp, CallsAndRecursionViaExplicitStack) {
    ModuleBuilder mb;
    auto fib = mb.func("fib", {Type::I64}, true);
    {
        VReg n = fib.fn().params[0];
        auto baseCase = fib.newBlock();
        auto recCase = fib.newBlock();
        fib.br(fib.cmpLt(n, fib.constI(2)), baseCase, recCase);
        fib.setBlock(baseCase);
        fib.ret(n);
        fib.setBlock(recCase);
        auto fid = mb.module().funcId("fib");
        auto a = fib.call(fid, {fib.addI(n, -1)});
        auto b = fib.call(fid, {fib.addI(n, -2)});
        fib.ret(fib.add(a, b));
    }
    auto fb = mb.func("main", {}, true);
    fb.ret(fb.call(mb.module().funcId("fib"), {fb.constI(12)}));
    mb.setEntry("main");
    EXPECT_EQ(runModule(mb).result.exitValue, 144);
}

TEST(MirInterp, SelectAndLoops) {
    ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    auto total = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(100));
    {
        auto odd = fb.band(loop.idx, fb.constI(1));
        auto inc = fb.select(odd, loop.idx, fb.constI(0));
        fb.assign(total, fb.add(total, inc));
    }
    fb.endLoop(loop);
    fb.ret(total); // sum of odd numbers below 100 = 2500
    mb.setEntry("main");
    EXPECT_EQ(runModule(mb).result.exitValue, 2500);
}

TEST(MirLayout, GlobalsAlignedAndOrdered) {
    ModuleBuilder mb;
    mb.global("a", 10, 8);
    mb.global("b", 100, 64);
    mb.global("c", 1, 8);
    auto fb = mb.func("main", {}, true);
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    const DataLayout layout = layoutGlobals(mb.module(), kDataBase);
    EXPECT_EQ(layout.globalAddr[0], kDataBase);
    EXPECT_EQ(layout.globalAddr[1] % 64, 0u);
    EXPECT_GE(layout.globalAddr[1], kDataBase + 10);
    EXPECT_GE(layout.globalAddr[2], layout.globalAddr[1] + 100);
    EXPECT_EQ(layout.end % 64, 0u);
}

TEST(MirInterp, OutputWindowCaptured) {
    ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    auto out = fb.constI(static_cast<i64>(kOutputBase));
    fb.st8(out, fb.constI(0x1122334455667788ll));
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    auto g = runModule(mb);
    u64 v;
    std::memcpy(&v, g.output.data(), 8);
    EXPECT_EQ(v, 0x1122334455667788ull);
}

TEST(MirPrint, DisassemblyMentionsOps) {
    ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    fb.checkpoint();
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    const std::string text = toString(mb.module());
    EXPECT_NE(text.find("checkpoint"), std::string::npos);
    EXPECT_NE(text.find("func main"), std::string::npos);
}
