/**
 * @file
 * Scheduler tests:
 *  - the atomic work queue hands out every slot exactly once under
 *    thread contention;
 *  - sched::runCampaign (journal off) matches the in-memory
 *    fi::runCampaignOnGolden bit-for-bit;
 *  - resume determinism: a campaign killed mid-run (journal cut
 *    after >= 1 committed chunk, with a torn tail) resumes to the
 *    exact counts of an uninterrupted run;
 *  - shard journals merge to the single-process totals, and merging
 *    an incomplete shard set is refused;
 *  - resume refuses a journal recorded for a different campaign.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "sched/heartbeat.hh"
#include "sched/replay.hh"
#include "sched/scheduler.hh"
#include "sched/workqueue.hh"
#include "soc/checkpoint.hh"
#include "soc/builder.hh"
#include "store/journal.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace {

std::string tmpPath(const std::string& name) {
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
}

const fi::GoldenRun& sharedGolden() {
    static const fi::GoldenRun golden = [] {
        const workloads::Workload wl = workloads::get("crc32");
        soc::SystemConfig cfg = soc::preset("riscv");
        return fi::runGolden(
            cfg, isa::compile(wl.module, isa::IsaKind::RISCV));
    }();
    return golden;
}

fi::CampaignOptions baseOptions() {
    fi::CampaignOptions opts;
    opts.numFaults = 36;
    opts.seed = 424242;
    opts.threads = 2;
    opts.workloadName = "crc32";
    return opts;
}

void expectSameCounts(const fi::CampaignResult& a,
                      const fi::CampaignResult& b) {
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.crash, b.crash);
    EXPECT_EQ(a.maskedEarly, b.maskedEarly);
    EXPECT_EQ(a.maskedInvalid, b.maskedInvalid);
    EXPECT_EQ(a.maskedInAccel, b.maskedInAccel);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.hvfCorruptions, b.hvfCorruptions);
}

} // namespace

TEST(WorkQueue, EverySlotClaimedExactlyOnce) {
    sched::WorkQueue queue(10'000);
    std::vector<std::atomic<int>> claims(10'000);
    sched::runWorkers(8, [&](unsigned) {
        while (const auto slot = queue.next())
            claims[*slot].fetch_add(1);
    });
    for (const auto& c : claims)
        EXPECT_EQ(c.load(), 1);
    EXPECT_EQ(queue.claimed(), 10'000u);
    EXPECT_FALSE(queue.next().has_value());
}

TEST(Sched, MatchesInMemoryCampaign) {
    const fi::GoldenRun& golden = sharedGolden();
    fi::CampaignOptions opts = baseOptions();
    opts.keepVerdicts = true;
    const fi::CampaignResult inMemory = fi::runCampaignOnGolden(
        golden, {fi::TargetId::PrfInt}, opts);
    const fi::CampaignResult sched =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);
    expectSameCounts(inMemory, sched);
    ASSERT_EQ(sched.verdicts.size(), inMemory.verdicts.size());
    for (std::size_t i = 0; i < sched.verdicts.size(); ++i) {
        EXPECT_EQ(sched.verdicts[i].outcome,
                  inMemory.verdicts[i].outcome);
        EXPECT_EQ(sched.verdicts[i].cyclesRun,
                  inMemory.verdicts[i].cyclesRun);
    }
}

TEST(Sched, JournaledCampaignIsComplete) {
    const fi::GoldenRun& golden = sharedGolden();
    const std::string path = tmpPath("sched_journal.jsonl");
    fi::CampaignOptions opts = baseOptions();
    opts.journalPath = path;
    opts.chunkSize = 8;
    const fi::CampaignResult res =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);
    EXPECT_EQ(res.total(), opts.numFaults);

    const sched::ShardProgress progress = sched::shardProgress(path);
    EXPECT_TRUE(progress.complete());
    EXPECT_EQ(progress.done, opts.numFaults);
    EXPECT_GE(progress.chunksCommitted, opts.numFaults / 8);
    expectSameCounts(progress.partial, res);
    EXPECT_EQ(progress.meta.seed, opts.seed);
    EXPECT_EQ(progress.meta.goldenDigest,
              soc::archStateDigest(golden.checkpoint.view()));
}

TEST(Sched, ResumedCampaignMatchesUninterruptedRun) {
    const fi::GoldenRun& golden = sharedGolden();
    fi::CampaignOptions opts = baseOptions();
    opts.chunkSize = 8;

    // The reference: one uninterrupted journaled run.
    const std::string fullPath = tmpPath("sched_full.jsonl");
    opts.journalPath = fullPath;
    const fi::CampaignResult full =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    // Simulate a SIGKILL mid-campaign: keep the journal up to just
    // past the second committed chunk and tear the line after it.
    const std::string content = slurp(fullPath);
    std::size_t cut = content.find("\"type\":\"chunk\"");
    ASSERT_NE(cut, std::string::npos);
    cut = content.find("\"type\":\"chunk\"", cut + 1);
    ASSERT_NE(cut, std::string::npos);
    cut = content.find('\n', cut) + 1;
    const std::string tornPath = tmpPath("sched_torn.jsonl");
    spit(tornPath,
         content.substr(0, cut) + "{\"type\":\"verdict\",\"idx");

    const store::Journal torn = store::readJournal(tornPath);
    ASSERT_TRUE(torn.droppedTornLine);
    ASSERT_GE(torn.chunksCommitted, 2u); // >= 1 chunk committed
    const std::size_t journaled = torn.verdicts.size();
    ASSERT_GT(journaled, 0u);
    ASSERT_LT(journaled, opts.numFaults);

    // Resume must run exactly the missing indices and land on
    // bit-identical campaign counts.
    opts.journalPath = tornPath;
    opts.resume = true;
    const fi::CampaignResult resumed =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);
    expectSameCounts(full, resumed);

    // The healed journal now covers every index exactly once.
    const sched::ShardProgress progress =
        sched::shardProgress(tornPath);
    EXPECT_TRUE(progress.complete());
    expectSameCounts(progress.partial, full);

    // Resuming a complete journal runs nothing and reports the same.
    const fi::CampaignResult again =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);
    expectSameCounts(full, again);
}

TEST(Sched, ShardJournalsMergeToSingleProcessTotals) {
    const fi::GoldenRun& golden = sharedGolden();
    fi::CampaignOptions opts = baseOptions();

    const fi::CampaignResult whole =
        sched::runCampaign(golden, {fi::TargetId::L1D}, opts);

    std::vector<std::string> paths;
    fi::CampaignResult shardSum;
    for (u32 s = 0; s < 3; ++s) {
        fi::CampaignOptions shardOpts = opts;
        shardOpts.journalPath =
            tmpPath(strfmt("sched_shard%u.jsonl", s));
        shardOpts.shardIndex = s;
        shardOpts.shardCount = 3;
        const fi::CampaignResult part = sched::runCampaign(
            golden, {fi::TargetId::L1D}, shardOpts);
        EXPECT_EQ(part.total(),
                  sched::shardShare(opts.numFaults, s, 3));
        shardSum.addCounts(part);
        paths.push_back(shardOpts.journalPath);
    }
    expectSameCounts(whole, shardSum);

    const fi::CampaignResult merged = sched::mergeJournals(paths);
    expectSameCounts(whole, merged);
    EXPECT_EQ(merged.windowCycles, golden.windowCycles);
    EXPECT_DOUBLE_EQ(merged.errorMargin(), whole.errorMargin());

    // Dropping a shard leaves holes; merge must refuse.
    EXPECT_THROW(sched::mergeJournals({paths[0], paths[2]}),
                 FatalError);
}

TEST(Sched, MergeSingleShardJournalMatchesItsCampaign) {
    // Degenerate merge: one journal, shard 1/1. Merging must be a
    // read-back of the campaign, not a special case that misbehaves.
    const fi::GoldenRun& golden = sharedGolden();
    fi::CampaignOptions opts = baseOptions();
    opts.journalPath = tmpPath("sched_merge_single.jsonl");
    const fi::CampaignResult res =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);
    const fi::CampaignResult merged =
        sched::mergeJournals({opts.journalPath});
    expectSameCounts(res, merged);
    EXPECT_EQ(merged.total(), opts.numFaults);
    EXPECT_EQ(merged.windowCycles, golden.windowCycles);
}

TEST(Sched, MergeEmptyButValidJournal) {
    // A zero-fault campaign writes a meta-only journal. That journal
    // is complete (it covers all zero indices), so merge must accept
    // it and report an empty result rather than fatal() on "holes".
    const fi::GoldenRun& golden = sharedGolden();
    fi::CampaignOptions opts = baseOptions();
    opts.numFaults = 0;
    opts.journalPath = tmpPath("sched_merge_empty.jsonl");
    const fi::CampaignResult res =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);
    EXPECT_EQ(res.total(), 0u);

    const store::Journal journal =
        store::readJournal(opts.journalPath);
    EXPECT_TRUE(journal.hasMeta);
    EXPECT_TRUE(journal.verdicts.empty());

    const fi::CampaignResult merged =
        sched::mergeJournals({opts.journalPath});
    EXPECT_EQ(merged.total(), 0u);
    EXPECT_EQ(merged.windowCycles, golden.windowCycles);
}

TEST(Sched, SingleShardResumeEqualsPlainResume) {
    // shardCount == 1 must be indistinguishable from an unsharded
    // campaign: same journal identity, same resumed counts.
    const fi::GoldenRun& golden = sharedGolden();
    fi::CampaignOptions opts = baseOptions();
    opts.chunkSize = 8;

    const std::string plainPath = tmpPath("sched_plain.jsonl");
    opts.journalPath = plainPath;
    const fi::CampaignResult plain =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    // Explicit shard 0/1 over a truncated copy of the same journal.
    const std::string content = slurp(plainPath);
    std::size_t cut = content.find("\"type\":\"chunk\"");
    ASSERT_NE(cut, std::string::npos);
    cut = content.find('\n', cut) + 1;
    const std::string shardPath = tmpPath("sched_shard01.jsonl");
    spit(shardPath, content.substr(0, cut));

    fi::CampaignOptions shardOpts = opts;
    shardOpts.journalPath = shardPath;
    shardOpts.shardIndex = 0;
    shardOpts.shardCount = 1;
    shardOpts.resume = true;
    const fi::CampaignResult resumed =
        sched::runCampaign(golden, {fi::TargetId::PrfInt},
                           shardOpts);
    expectSameCounts(plain, resumed);
    expectSameCounts(sched::mergeJournals({shardPath}),
                     sched::mergeJournals({plainPath}));
}

TEST(Sched, ResumeRefusesMismatchedJournal) {
    const fi::GoldenRun& golden = sharedGolden();
    fi::CampaignOptions opts = baseOptions();
    opts.journalPath = tmpPath("sched_identity.jsonl");
    (void)sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    opts.resume = true;
    fi::CampaignOptions wrongSeed = opts;
    wrongSeed.seed ^= 1;
    EXPECT_THROW(sched::runCampaign(golden, {fi::TargetId::PrfInt},
                                    wrongSeed),
                 FatalError);
    fi::CampaignOptions wrongTarget = opts;
    EXPECT_THROW(sched::runCampaign(golden, {fi::TargetId::L1D},
                                    wrongTarget),
                 FatalError);
    fi::CampaignOptions wrongFaults = opts;
    wrongFaults.numFaults += 1;
    EXPECT_THROW(sched::runCampaign(golden, {fi::TargetId::PrfInt},
                                    wrongFaults),
                 FatalError);
}

TEST(Sched, ResumeGeometryMismatchNamesBothShapesAndFile) {
    const fi::GoldenRun& golden = sharedGolden();
    fi::CampaignOptions opts = baseOptions();
    opts.journalPath = tmpPath("sched_geom.jsonl");
    (void)sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    // Corrupt the recorded geometry (prefix a digit onto `entries`):
    // the resume fatal must spell out both shapes and name the file,
    // so the log line alone diagnoses a mis-launched worker.
    std::string content = slurp(opts.journalPath);
    const std::string needle = "\"entries\":";
    const std::size_t pos = content.find(needle);
    ASSERT_NE(pos, std::string::npos);
    content.insert(pos + needle.size(), "9");
    spit(opts.journalPath, content);

    const fi::TargetInfo info = fi::targetInfo(
        golden.checkpoint.view(), fi::TargetRef{fi::TargetId::PrfInt});
    opts.resume = true;
    try {
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);
        FAIL() << "expected a geometry-mismatch fatal";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(opts.journalPath), std::string::npos)
            << msg;
        EXPECT_NE(msg.find(strfmt("9%ux%u", info.geometry.entries,
                                  info.geometry.bitsPerEntry)),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find(strfmt("%ux%u", info.geometry.entries,
                                  info.geometry.bitsPerEntry)),
                  std::string::npos)
            << msg;
    }
}

TEST(Sched, ShardValidation) {
    const fi::GoldenRun& golden = sharedGolden();
    fi::CampaignOptions opts = baseOptions();
    opts.shardCount = 0;
    EXPECT_THROW(
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts),
        FatalError);
    opts.shardCount = 2;
    opts.shardIndex = 2;
    EXPECT_THROW(
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts),
        FatalError);
    opts.shardIndex = 0;
    opts.resume = true; // resume without a journal path
    EXPECT_THROW(
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts),
        FatalError);
}

TEST(Sched, ShardShareCoversAllIndices) {
    for (u64 n : {0ull, 1ull, 7ull, 36ull, 1000ull}) {
        for (u32 count : {1u, 2u, 3u, 7u}) {
            u64 sum = 0;
            for (u32 s = 0; s < count; ++s)
                sum += sched::shardShare(n, s, count);
            EXPECT_EQ(sum, n) << n << "/" << count;
        }
    }
}

TEST(Heartbeat, RoundTrips) {
    const std::string path = tmpPath("sched_beat.progress");
    sched::Heartbeat beat;
    beat.done = 17;
    beat.expected = 40;
    beat.masked = 12;
    beat.maskedInAccel = 4;
    beat.sdc = 3;
    beat.crash = 2;
    beat.runsPerSec = 81.5;
    beat.avf = 0.125;
    beat.margin = 0.155;
    beat.etaSeconds = 12.5;
    beat.wallMillis = 1234;
    beat.complete = false;
    sched::writeHeartbeat(path, beat);

    sched::Heartbeat read;
    ASSERT_TRUE(sched::readHeartbeat(path, read));
    EXPECT_EQ(read.done, 17u);
    EXPECT_EQ(read.expected, 40u);
    EXPECT_EQ(read.masked, 12u);
    EXPECT_EQ(read.maskedInAccel, 4u);
    EXPECT_EQ(read.sdc, 3u);
    EXPECT_EQ(read.crash, 2u);
    EXPECT_NEAR(read.runsPerSec, 81.5, 0.01);
    EXPECT_NEAR(read.avf, 0.125, 1e-6);
    EXPECT_NEAR(read.margin, 0.155, 1e-6);
    EXPECT_NEAR(read.etaSeconds, 12.5, 0.1);
    EXPECT_EQ(read.wallMillis, 1234u);
    EXPECT_FALSE(read.complete);
    EXPECT_NEAR(read.fractionDone(), 17.0 / 40.0, 1e-9);
    // The write must be atomic: no temp file left behind.
    EXPECT_EQ(slurp(path + ".tmp"), "");
    // The human line carries the load-bearing numbers.
    const std::string line = sched::formatHeartbeat(read);
    EXPECT_NE(line.find("17/40"), std::string::npos);
    EXPECT_NE(line.find("runs/s"), std::string::npos);
}

TEST(Heartbeat, ToleratesMissingAndMalformed) {
    sched::Heartbeat beat;
    beat.done = 99;
    EXPECT_FALSE(
        sched::readHeartbeat(tmpPath("no_such.progress"), beat));
    EXPECT_EQ(beat.done, 99u); // untouched on failure

    const std::string path = tmpPath("sched_torn.progress");
    spit(path, "{\"done\":5,\"expec"); // torn mid-write (pre-rename)
    EXPECT_FALSE(sched::readHeartbeat(path, beat));
    spit(path, "not json at all");
    EXPECT_FALSE(sched::readHeartbeat(path, beat));
    spit(path, "{\"v\":1}"); // parses but lacks required keys
    EXPECT_FALSE(sched::readHeartbeat(path, beat));
    EXPECT_EQ(beat.done, 99u);
}

TEST(Heartbeat, JournaledCampaignLeavesFinalBeat) {
    const fi::GoldenRun& golden = sharedGolden();
    const std::string path = tmpPath("sched_beat_camp.jsonl");
    std::remove((path + ".progress").c_str());
    fi::CampaignOptions opts = baseOptions();
    opts.journalPath = path;
    const fi::CampaignResult res =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    sched::Heartbeat beat;
    ASSERT_TRUE(
        sched::readHeartbeat(sched::heartbeatPath(path), beat));
    EXPECT_TRUE(beat.complete);
    EXPECT_EQ(beat.done, opts.numFaults);
    EXPECT_EQ(beat.expected, opts.numFaults);
    EXPECT_EQ(beat.masked, res.masked);
    EXPECT_EQ(beat.sdc, res.sdc);
    EXPECT_EQ(beat.crash, res.crash);
    EXPECT_NEAR(beat.avf, res.avf(), 1e-4);
    EXPECT_NEAR(beat.margin, res.errorMargin(), 1e-4);
    EXPECT_DOUBLE_EQ(beat.etaSeconds, 0.0);
}

TEST(Heartbeat, DisabledByZeroCadence) {
    const fi::GoldenRun& golden = sharedGolden();
    const std::string path = tmpPath("sched_nobeat.jsonl");
    std::remove((path + ".progress").c_str());
    fi::CampaignOptions opts = baseOptions();
    opts.journalPath = path;
    opts.heartbeatSeconds = 0;
    sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);
    sched::Heartbeat beat;
    EXPECT_FALSE(
        sched::readHeartbeat(sched::heartbeatPath(path), beat));
}

// --- replay / journal edge cases -------------------------------------------

TEST(ReplayEdge, EmptyJournalIsRejected) {
    // Zero bytes on disk: not a journal at all. journalExists() gates
    // resume; the reader refuses rather than inventing an identity.
    const std::string path = tmpPath("replay_empty.jsonl");
    spit(path, "");
    EXPECT_FALSE(store::journalExists(path));
    EXPECT_THROW(store::readJournal(path), FatalError);
}

TEST(ReplayEdge, TornFinalRecordAfterMetaIsDropped) {
    const fi::GoldenRun& golden = sharedGolden();
    const std::string fullPath = tmpPath("replay_meta_full.jsonl");
    fi::CampaignOptions opts = baseOptions();
    opts.journalPath = fullPath;
    sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    // Keep only the meta line, then tear the first verdict mid-record
    // (the crash window right after campaign start).
    const std::string content = slurp(fullPath);
    const std::size_t metaEnd = content.find('\n') + 1;
    const std::string tornPath = tmpPath("replay_meta_torn.jsonl");
    spit(tornPath, content.substr(0, metaEnd) +
                       "{\"type\":\"verdict\",\"idx\":0,\"outc");

    const store::Journal torn = store::readJournal(tornPath);
    EXPECT_TRUE(torn.hasMeta);
    EXPECT_TRUE(torn.droppedTornLine);
    EXPECT_EQ(torn.verdicts.size(), 0u);
    EXPECT_EQ(torn.validBytes, metaEnd);
    EXPECT_FALSE(sched::findVerdict(torn, 0).has_value());
}

TEST(ReplayEdge, ReplayMatchesJournaledVerdict) {
    // The positive path the validations protect: a replay built from
    // an intact journal reproduces the journaled verdict exactly.
    const fi::GoldenRun& golden = sharedGolden();
    const std::string path = tmpPath("replay_ok.jsonl");
    fi::CampaignOptions opts = baseOptions();
    opts.journalPath = path;
    sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    const store::Journal journal = store::readJournal(path);
    ASSERT_TRUE(journal.hasMeta);
    const sched::ReplaySetup setup =
        sched::replaySetup(golden, journal.meta, 3);
    fi::FaultMask mask;
    mask.faults.push_back(setup.fault);
    const fi::RunVerdict replayed =
        fi::runWithFault(golden, mask, setup.options);
    const auto journaled = sched::findVerdict(journal, 3);
    ASSERT_TRUE(journaled.has_value());
    EXPECT_TRUE(sched::verdictsIdentical(replayed, *journaled));
}

TEST(ReplayEdge, ReplayRefusesMetaDisagreeingWithRun) {
    // Every field the replay derives its fault from must match the
    // golden run in front of it; each disagreement is a hard error,
    // not a silently wrong verdict.
    const fi::GoldenRun& golden = sharedGolden();
    const std::string path = tmpPath("replay_mismatch.jsonl");
    fi::CampaignOptions opts = baseOptions();
    opts.journalPath = path;
    sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);
    const store::Journal journal = store::readJournal(path);
    ASSERT_TRUE(journal.hasMeta);

    store::JournalMeta meta = journal.meta;
    EXPECT_THROW(sched::replaySetup(golden, meta, meta.numFaults),
                 FatalError); // index out of range

    meta = journal.meta;
    meta.goldenDigest ^= 1; // different workload/config/build
    EXPECT_THROW(sched::replaySetup(golden, meta, 0), FatalError);

    meta = journal.meta;
    meta.windowCycles += 1; // different injection window
    EXPECT_THROW(sched::replaySetup(golden, meta, 0), FatalError);

    meta = journal.meta;
    meta.bitsPerEntry += 1; // different target geometry
    EXPECT_THROW(sched::replaySetup(golden, meta, 0), FatalError);

    meta = journal.meta;
    meta.model = "cosmic-ray"; // unknown fault model
    EXPECT_THROW(sched::replaySetup(golden, meta, 0), FatalError);
}

TEST(ReplayEdge, ReplayRefusesMismatchedLadderGeometry) {
    // The journal meta records the golden's resolved ladder geometry;
    // replaying against a golden built with a different rung count
    // would verify pruned verdicts against the wrong access profile,
    // so it must be a hard error in both directions.
    const workloads::Workload wl = workloads::get("crc32");
    soc::SystemConfig cfg = soc::preset("riscv");
    const isa::Program prog =
        isa::compile(wl.module, isa::IsaKind::RISCV);
    const fi::GoldenRun laddered =
        fi::runGolden(cfg, prog, 500'000'000, 4);
    ASSERT_EQ(laddered.ladder.size(), 4u);

    const std::string path = tmpPath("replay_ladder.jsonl");
    fi::CampaignOptions opts = baseOptions();
    opts.journalPath = path;
    opts.ladderRungs = 4;
    sched::runCampaign(laddered, {fi::TargetId::PrfInt}, opts);
    const store::Journal journal = store::readJournal(path);
    ASSERT_TRUE(journal.hasMeta);
    EXPECT_EQ(journal.meta.ladderRungs, 4u);

    // Ladder-on journal against a ladder-less golden...
    EXPECT_THROW(
        sched::replaySetup(sharedGolden(), journal.meta, 0),
        FatalError);
    // ...and a doctored rung count against the laddered golden.
    store::JournalMeta meta = journal.meta;
    meta.ladderRungs = 7;
    EXPECT_THROW(sched::replaySetup(laddered, meta, 0), FatalError);
    // The matching geometry replays fine.
    const sched::ReplaySetup setup =
        sched::replaySetup(laddered, journal.meta, 0);
    fi::FaultMask mask;
    mask.faults.push_back(setup.fault);
    const auto journaled = sched::findVerdict(journal, 0);
    ASSERT_TRUE(journaled.has_value());
    EXPECT_TRUE(sched::verdictsIdentical(
        fi::runWithFault(laddered, mask, setup.options), *journaled));
}

TEST(ReplayEdge, ResumeRefusesMismatchedLadderGeometry) {
    // Geometry is campaign identity: resuming with a different rung
    // count (or pruning setting) must be refused like any other
    // identity mismatch.
    const fi::GoldenRun& golden = sharedGolden();
    const std::string path = tmpPath("resume_ladder.jsonl");
    fi::CampaignOptions opts = baseOptions();
    opts.journalPath = path;
    sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    opts.resume = true;
    // The journal was recorded against a ladder-less golden; resuming
    // against a golden rebuilt with rungs is an identity mismatch
    // (the expected geometry comes from the golden actually in use).
    const workloads::Workload wl = workloads::get("crc32");
    soc::SystemConfig cfg = soc::preset("riscv");
    const fi::GoldenRun laddered = fi::runGolden(
        cfg, isa::compile(wl.module, isa::IsaKind::RISCV),
        500'000'000, 4);
    EXPECT_THROW(sched::runCampaign(laddered, {fi::TargetId::PrfInt},
                                    opts),
                 FatalError);
    fi::CampaignOptions wrongPrune = opts;
    wrongPrune.prune = true;
    EXPECT_THROW(sched::runCampaign(golden, {fi::TargetId::PrfInt},
                                    wrongPrune),
                 FatalError);
}

// --- heartbeat non-finite guards / run provenance --------------------

TEST(Heartbeat, EmissionGuardsNonFiniteNumbers) {
    // strtod happily parses "inf" back, so the guard must live at
    // emission: a beat poisoned with non-finite rates (zero-elapsed
    // shard, hand-edited file) must still serialize finite JSON.
    sched::Heartbeat beat;
    beat.done = 5;
    beat.expected = 5;
    beat.runsPerSec = std::numeric_limits<double>::infinity();
    beat.avf = std::nan("");
    beat.etaSeconds = -std::numeric_limits<double>::infinity();
    beat.margin = std::numeric_limits<double>::infinity();
    const std::string json = sched::heartbeatJson(beat);
    EXPECT_EQ(json.find("inf"), std::string::npos) << json;
    EXPECT_EQ(json.find("nan"), std::string::npos) << json;
    sched::Heartbeat read;
    ASSERT_TRUE(sched::parseHeartbeatJson(json, read));
    EXPECT_TRUE(std::isfinite(read.runsPerSec));
    EXPECT_TRUE(std::isfinite(read.avf));
    EXPECT_TRUE(std::isfinite(read.etaSeconds));
    EXPECT_TRUE(std::isfinite(read.margin));

    // The file path goes through the same serializer.
    const std::string path = tmpPath("sched_inf.progress");
    sched::writeHeartbeat(path, beat);
    const std::string raw = slurp(path);
    EXPECT_EQ(raw.find("inf"), std::string::npos) << raw;
    EXPECT_EQ(raw.find("nan"), std::string::npos) << raw;
}

TEST(Heartbeat, InstantlyCompleteShardWritesFiniteProgress) {
    // A one-fault shard can finish inside one clock tick; the final
    // heartbeat's rate/ETA math must not leak inf/nan into the
    // .progress JSON.
    const fi::GoldenRun& golden = sharedGolden();
    const std::string path = tmpPath("sched_instant.jsonl");
    std::remove((path + ".progress").c_str());
    fi::CampaignOptions opts = baseOptions();
    opts.numFaults = 1;
    opts.threads = 1;
    opts.journalPath = path;
    sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    const std::string raw = slurp(sched::heartbeatPath(path));
    ASSERT_FALSE(raw.empty());
    EXPECT_EQ(raw.find("inf"), std::string::npos) << raw;
    EXPECT_EQ(raw.find("nan"), std::string::npos) << raw;
    sched::Heartbeat beat;
    ASSERT_TRUE(sched::readHeartbeat(sched::heartbeatPath(path),
                                     beat));
    EXPECT_TRUE(beat.complete);
    EXPECT_EQ(beat.done, 1u);
    EXPECT_TRUE(std::isfinite(beat.runsPerSec));
    EXPECT_DOUBLE_EQ(beat.etaSeconds, 0.0);
}

TEST(Heartbeat, AggregateTreatsNonFiniteRatesAsZero) {
    sched::Heartbeat sane;
    sane.done = 10;
    sane.expected = 20;
    sane.sdc = 2;
    sane.runsPerSec = 5.0;
    sched::Heartbeat poisoned;
    poisoned.done = 10;
    poisoned.expected = 20;
    poisoned.runsPerSec = std::numeric_limits<double>::infinity();
    poisoned.avf = std::nan("");

    const sched::Heartbeat agg =
        sched::aggregateHeartbeats({sane, poisoned});
    EXPECT_EQ(agg.done, 20u);
    EXPECT_EQ(agg.expected, 40u);
    EXPECT_NEAR(agg.runsPerSec, 5.0, 1e-9);
    EXPECT_TRUE(std::isfinite(agg.etaSeconds));
    EXPECT_NEAR(agg.etaSeconds, 20.0 / 5.0, 1e-9);
    EXPECT_TRUE(std::isfinite(agg.avf)); // recomputed from counts
    EXPECT_NEAR(agg.avf, 2.0 / 20.0, 1e-9);
}

TEST(Sched, RunProvenanceMapsRungWallAndPruned) {
    // runProvenance only reads the golden's ladder geometry, so a
    // synthetic ladder is enough to pin the slot scheme: slot 0 is
    // the window start, slot 1 + i is rung i.
    fi::GoldenRun golden;
    golden.ladder.resize(2);
    golden.ladder[0].cycle = 100;
    golden.ladder[1].cycle = 200;

    fi::RunVerdict v;
    v.outcome = fi::Outcome::Masked;
    v.cyclesRun = 500;
    v.fastForwarded = 200; // restored rung 1
    store::VerdictProvenance prov =
        sched::runProvenance(golden, v, 1234);
    EXPECT_TRUE(prov.present);
    EXPECT_EQ(prov.wallMicros, 1234u);
    EXPECT_EQ(prov.rung, 2u);
    EXPECT_EQ(prov.fastForwarded, 200u);
    EXPECT_EQ(prov.pruned, 0u);

    v.fastForwarded = 0; // full window replay
    prov = sched::runProvenance(golden, v, 9);
    EXPECT_EQ(prov.rung, 0u);

    fi::RunVerdict pruned;
    pruned.outcome = fi::Outcome::Masked;
    pruned.detail = fi::OutcomeDetail::MaskedPruned;
    pruned.cyclesRun = 0;
    prov = sched::runProvenance(golden, pruned, 3);
    EXPECT_EQ(prov.pruned, 1u);
    EXPECT_EQ(prov.rung, 0u);
}
