/**
 * @file
 * Unit tests for the common utilities: RNG determinism, bit helpers,
 * statistics (Leveugle sampling), config parser, and table renderer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bits.hh"
#include "common/config.hh"
#include "common/faultwatch.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace marvel;

TEST(Rng, DeterministicStreams) {
    Rng a = Rng::forStream(42, 7);
    Rng b = Rng::forStream(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
    Rng c = Rng::forStream(42, 8);
    bool differs = false;
    Rng a2 = Rng::forStream(42, 7);
    for (int i = 0; i < 10; ++i)
        differs |= a2() != c();
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsUniformEnough) {
    Rng rng(123);
    unsigned counts[10] = {};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(10)];
    for (unsigned c : counts) {
        EXPECT_GT(c, n / 10 - n / 40);
        EXPECT_LT(c, n / 10 + n / 40);
    }
}

TEST(Rng, BelowNeverReachesBound) {
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(7), 7u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Bits, ExtractInsertRoundTrip) {
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const u64 v = rng();
        const unsigned lo = rng.below(60);
        const unsigned hi = lo + rng.below(64 - lo);
        const u64 field = bits(v, hi, lo);
        EXPECT_EQ(insertBits(v, hi, lo, field), v);
        EXPECT_EQ(bits(insertBits(0, hi, lo, field), hi, lo), field);
    }
}

TEST(Bits, SignExtension) {
    EXPECT_EQ(sext(0xfff, 12), -1);
    EXPECT_EQ(sext(0x7ff, 12), 0x7ff);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_TRUE(fitsSigned(-2048, 12));
    EXPECT_TRUE(fitsSigned(2047, 12));
    EXPECT_FALSE(fitsSigned(2048, 12));
    EXPECT_FALSE(fitsSigned(-2049, 12));
}

TEST(Bits, Alignment) {
    EXPECT_EQ(alignDown(0x1234, 64), 0x1200u);
    EXPECT_EQ(alignUp(0x1234, 64), 0x1240u);
    EXPECT_EQ(alignUp(0x1200, 64), 0x1200u);
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_FALSE(isPow2(0));
    EXPECT_EQ(log2i(1024), 10u);
}

TEST(Stats, LeveugleSampling) {
    // 1,000 samples over a huge population ~ 3.1% at 95%.
    EXPECT_NEAR(marginOfError(1000, 1e15), 0.031, 0.001);
    // And the inverse direction.
    EXPECT_NEAR(sampleSize(1e15, 0.031), 1000, 10);
    // Finite-population correction: sampling everything = no error.
    EXPECT_NEAR(marginOfError(1000, 1000.0001), 0.0, 1e-3);
}

TEST(Stats, RunningStats) {
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, WeightedMean) {
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {1.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {3.0, 1.0}), 1.5);
    EXPECT_THROW(weightedMean({1.0}, {1.0, 2.0}), FatalError);
}

TEST(Stats, RunningStatsDegenerate) {
    // Variance with n < 2 is undefined; the accumulator reports 0
    // rather than dividing by zero.
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, RunningStatsVarianceClampsCancellation) {
    // sumSq - n*mean^2 can go slightly negative through floating-point
    // cancellation when the spread is tiny relative to the magnitude;
    // the variance must clamp at 0 so stddev never returns NaN.
    RunningStats s;
    for (int i = 0; i < 1000; ++i)
        s.add(1e9 + 0.0001);
    EXPECT_GE(s.variance(), 0.0);
    EXPECT_FALSE(std::isnan(s.stddev()));
}

TEST(Stats, WeightedMeanFatals) {
    EXPECT_THROW(weightedMean({1.0, 2.0}, {0.0, 0.0}), FatalError);
    EXPECT_THROW(weightedMean({}, {}), FatalError);
    EXPECT_THROW(weightedMean({1.0, 2.0}, {1.0}), FatalError);
}

TEST(Stats, MarginOfErrorEdges) {
    EXPECT_THROW(marginOfError(0, 100), FatalError);
    EXPECT_THROW(marginOfError(-5, 100), FatalError);
    EXPECT_THROW(marginOfError(10, 1.0), FatalError);
    // Oversampling a finite population drives e^2 negative; the
    // margin clamps at exactly zero error.
    EXPECT_DOUBLE_EQ(marginOfError(2000, 1000), 0.0);
}

TEST(Config, ParsesSectionsAndTypes) {
    const ConfigFile cfg = ConfigFile::parse(
        "# comment\n"
        "[system]\n"
        "isa = riscv ; trailing comment\n"
        "speed = 2.5\n"
        "debug = true\n"
        "count = 0x10\n"
        "[accel]\n"
        "design = gemm\n"
        "[accel]\n"
        "design = bfs\n");
    const auto* sys = cfg.first("system");
    ASSERT_NE(sys, nullptr);
    EXPECT_EQ(sys->get("isa"), "riscv");
    EXPECT_DOUBLE_EQ(sys->getDouble("speed", 0), 2.5);
    EXPECT_TRUE(sys->getBool("debug", false));
    EXPECT_EQ(sys->getInt("count", 0), 16);
    EXPECT_EQ(sys->getInt("missing", 7), 7);
    const auto accels = cfg.named("accel");
    ASSERT_EQ(accels.size(), 2u);
    EXPECT_EQ(accels[0]->get("design"), "gemm");
    EXPECT_EQ(accels[1]->get("design"), "bfs");
}

TEST(Config, RejectsMalformedInput) {
    EXPECT_THROW(ConfigFile::parse("[unterminated\n"), FatalError);
    EXPECT_THROW(ConfigFile::parse("[s]\nno equals here\n"),
                 FatalError);
    const ConfigFile cfg = ConfigFile::parse("[s]\nk = v\n");
    EXPECT_THROW(cfg.first("s")->require("absent"), FatalError);
}

TEST(Table, RendersAlignedColumns) {
    TextTable t("demo");
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row("b", {2.5, 3.5});
    const std::string out = t.render();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("2.50"), std::string::npos);
}

TEST(FaultWatch, OverwriteBeforeReadNeutralizes) {
    FaultState st;
    st.addWatch(3, 17);
    EXPECT_FALSE(st.allNeutralized());
    st.noteWrite(3, 0, 63);
    EXPECT_TRUE(st.allNeutralized());
    EXPECT_FALSE(st.anyRead());
}

TEST(FaultWatch, ReadBeforeWritePins) {
    FaultState st;
    st.addWatch(3, 17);
    st.noteRead(3, 16, 20);
    st.noteWrite(3, 0, 63);
    EXPECT_TRUE(st.anyRead());
    EXPECT_FALSE(st.allNeutralized());
}

TEST(FaultWatch, RangesMustCoverTheBit) {
    FaultState st;
    st.addWatch(3, 17);
    st.noteWrite(3, 0, 16);   // does not cover bit 17
    st.noteRead(3, 18, 63);   // does not cover bit 17
    EXPECT_FALSE(st.allNeutralized());
    EXPECT_FALSE(st.anyRead());
    st.noteGone(3);
    EXPECT_TRUE(st.allNeutralized());
}

TEST(Log, FatalThrowsWithMessage) {
    try {
        fatal("bad value %d", 42);
        FAIL() << "fatal returned";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("bad value 42"),
                  std::string::npos);
    }
}

// Golden vectors: these constants pin the PRNG and hash algorithms
// to their canonical outputs. Campaign journals, fuzz seeds, and
// stored digests all assume these never change — any edit that moves
// one of these values silently invalidates every persisted artifact.

TEST(GoldenVectors, Splitmix64KnownSequence) {
    // First outputs from state 0 (matches the reference
    // implementation's published test vector).
    u64 state = 0;
    EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafull);
    EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ull);
    EXPECT_EQ(splitmix64(state), 0x06c45d188009454full);
}

TEST(GoldenVectors, RngSeededSequence) {
    Rng rng(0);
    EXPECT_EQ(rng(), 0x99ec5f36cb75f2b4ull);
    EXPECT_EQ(rng(), 0xbf6e1f784956452aull);
    EXPECT_EQ(rng(), 0x1a5f849d4933e6e0ull);
}

TEST(GoldenVectors, RngStreamDerivation) {
    // The (campaign seed, fault index) -> stream mapping must stay
    // stable or journaled campaigns replay different faults.
    Rng rng = Rng::forStream(0x5eed, 17);
    EXPECT_EQ(rng(), 0xdd596e54f5fb8839ull);
    EXPECT_EQ(rng(), 0xfda309845b194828ull);
}

TEST(GoldenVectors, Fnv1aKnownDigests) {
    const u8 text[] = {'m', 'a', 'r', 'v', 'e', 'l'};
    EXPECT_EQ(fnv1a(text, sizeof(text)), 0xeaa1402ba4e5fb9eull);
    EXPECT_EQ(fnv1a(text, 0), kFnvOffset); // empty input = basis
    EXPECT_EQ(fnv1aWord(0), 0xa8c7f832281a39c5ull);
    EXPECT_EQ(fnv1aWord(0x0123456789abcdefull),
              0x37eb3f3347761c55ull);
}

TEST(GoldenVectors, Fnv1aWordMatchesByteHash) {
    // fnv1aWord must equal fnv1a over the word's little-endian bytes;
    // store/blob.hh serializations rely on the equivalence.
    const u64 word = 0x1122334455667788ull;
    u8 bytes[8];
    for (unsigned i = 0; i < 8; ++i)
        bytes[i] = static_cast<u8>(word >> (8 * i));
    EXPECT_EQ(fnv1aWord(word), fnv1a(bytes, 8));
}
