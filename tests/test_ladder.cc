/**
 * @file
 * Checkpoint-ladder equivalence battery.
 *
 * The ladder is a pure speed optimization: every rung is the system
 * state after exactly `cycle` fault-free ticks from the window-start
 * checkpoint, so restoring a rung and continuing must be
 * bit-identical to ticking straight through — same exit code, OUTPUT
 * window, console, arch digest, and stats snapshot. These tests pin
 * that property directly (restore-equivalence), through the fault
 * path (useLadder on/off verdict identity), and for the geometry the
 * journal meta records (count, spacing, auto-sizing).
 */

#include <gtest/gtest.h>

#include "accel/designs/designs.hh"
#include "common/memmap.hh"
#include "fi/campaign.hh"
#include "fi/targets.hh"
#include "sched/replay.hh"
#include "soc/builder.hh"
#include "soc/checkpoint.hh"
#include "stats/diff.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace {

fi::GoldenRun goldenFor(const char* workload, unsigned rungs) {
    const workloads::Workload wl = workloads::get(workload);
    const soc::SystemConfig cfg = soc::preset("riscv");
    return fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa),
                         500'000'000, rungs);
}

/** Run a restored system to completion with the same tick/flag-clear
 *  sequence runWithFault uses; returns the final arch digest. */
u64 runToExit(soc::System sys, const fi::GoldenRun& golden) {
    u64 budget = golden.totalCycles * 2 + 1'000'000;
    while (!sys.exited && budget-- > 0) {
        sys.tick();
        sys.cpu.checkpointRequest = false;
        sys.cpu.switchCpuRequest = false;
        if (sys.cpu.crashed() || sys.cluster.errored())
            ADD_FAILURE() << "fault-free replay crashed: "
                          << sys.crashReason();
    }
    EXPECT_TRUE(sys.exited) << "fault-free replay hit the budget";
    EXPECT_EQ(sys.exitCode, golden.exitCode);
    EXPECT_EQ(sys.outputWindow(), golden.output);
    EXPECT_EQ(sys.console, golden.console);
    return soc::archStateDigest(sys);
}

/** Golden run for the systolic-array GEMM driver with a ladder. */
fi::GoldenRun goldenForSystolic(unsigned rungs) {
    soc::SystemConfig cfg = soc::preset("riscv");
    cfg.cluster.designs.push_back(
        accel::designs::makeGemmSystolic(kAccelSpaceBase));
    const workloads::Workload wl =
        workloads::accelDriver("gemm_systolic", 0);
    return fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa),
                         500'000'000, rungs);
}

} // namespace

TEST(LadderGeometry, EvenSpacingAndCount) {
    const fi::GoldenRun golden = goldenFor("crc32", 4);
    ASSERT_EQ(golden.ladder.size(), 4u);
    const Cycle step = golden.windowCycles / 5;
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(golden.ladder[i].cycle, step * (i + 1));
        EXPECT_LT(golden.ladder[i].cycle, golden.windowCycles);
        if (i > 0) {
            EXPECT_GT(golden.ladder[i].cycle,
                      golden.ladder[i - 1].cycle);
            EXPECT_GE(golden.ladder[i].traceIndex,
                      golden.ladder[i - 1].traceIndex);
        }
    }
}

TEST(LadderGeometry, ZeroRungsByDefault) {
    const fi::GoldenRun golden = goldenFor("crc32", 0);
    EXPECT_TRUE(golden.ladder.empty());
}

TEST(LadderGeometry, AutoSizesFromWindowLength) {
    // crc32's window is ~101k cycles; auto gives one rung per 50k.
    const fi::GoldenRun golden = goldenFor("crc32", fi::kLadderAuto);
    EXPECT_EQ(golden.ladder.size(),
              static_cast<std::size_t>(golden.windowCycles / 50'000));
    EXPECT_FALSE(golden.ladder.empty());
}

TEST(LadderGeometry, OversizedRequestDegradesToNoLadder) {
    // More rungs than window cycles: the per-rung stride rounds to
    // zero, so no rung is strictly inside the window.
    const fi::GoldenRun golden = goldenFor("crc32", 200'000);
    EXPECT_TRUE(golden.ladder.empty());
}

TEST(LadderGeometry, RungAtOrBeforeEdges) {
    const fi::GoldenRun golden = goldenFor("crc32", 4);
    ASSERT_EQ(golden.ladder.size(), 4u);
    // Before the first rung: no usable restore point.
    EXPECT_EQ(golden.rungAtOrBefore(0), nullptr);
    EXPECT_EQ(golden.rungAtOrBefore(golden.ladder[0].cycle - 1),
              nullptr);
    // Exactly on a rung: the fault lands before that cycle's tick, so
    // the rung state (taken after that many ticks) is NOT yet past it
    // — equality must select the rung itself.
    EXPECT_EQ(golden.rungAtOrBefore(golden.ladder[1].cycle),
              &golden.ladder[1]);
    EXPECT_EQ(golden.rungAtOrBefore(golden.ladder[1].cycle + 1),
              &golden.ladder[1]);
    // Past the last rung: the last rung wins.
    EXPECT_EQ(golden.rungAtOrBefore(golden.windowCycles),
              &golden.ladder[3]);
}

TEST(LadderRestore, EveryRungReproducesStraightThroughEndState) {
    const fi::GoldenRun golden = goldenFor("crc32", 4);
    ASSERT_EQ(golden.ladder.size(), 4u);
    const u64 straight =
        runToExit(golden.checkpoint.restore(), golden);
    for (const fi::LadderRung& rung : golden.ladder)
        EXPECT_EQ(runToExit(rung.checkpoint.restore(), golden),
                  straight)
            << "rung at cycle " << rung.cycle;
}

TEST(LadderRestore, RungStateMatchesReplayedPrefix) {
    // A rung must hold the exact state reached by ticking the
    // window-start checkpoint forward rung.cycle times.
    const fi::GoldenRun golden = goldenFor("bitcount", 3);
    ASSERT_FALSE(golden.ladder.empty());
    soc::System replay = golden.checkpoint.restore();
    Cycle cursor = 0;
    for (const fi::LadderRung& rung : golden.ladder) {
        while (cursor < rung.cycle) {
            replay.tick();
            ++cursor;
            replay.cpu.checkpointRequest = false;
            replay.cpu.switchCpuRequest = false;
        }
        EXPECT_EQ(soc::archStateDigest(replay),
                  soc::archStateDigest(rung.checkpoint.view()))
            << "rung at cycle " << rung.cycle;
    }
}

TEST(LadderFault, FastForwardNeverChangesVerdicts) {
    const fi::GoldenRun golden = goldenFor("crc32", 8);
    ASSERT_EQ(golden.ladder.size(), 8u);
    unsigned fastForwarded = 0;
    for (fi::TargetId target :
         {fi::TargetId::PrfInt, fi::TargetId::L1D, fi::TargetId::Rob}) {
        const fi::TargetInfo info =
            fi::targetInfo(golden.checkpoint.view(), {target});
        for (unsigned i = 0; i < 15; ++i) {
            Rng rng = Rng::forStream(4242, i);
            fi::FaultMask mask;
            mask.faults.push_back(fi::randomFault(
                rng, {target}, info.geometry, golden.windowCycles,
                fi::FaultModel::Transient));

            fi::InjectionOptions opts;
            opts.computeHvf = true;
            stats::Snapshot statsOn, statsOff;
            u64 digestOn = 0, digestOff = 0;
            opts.useLadder = true;
            opts.statsOut = &statsOn;
            opts.archDigestOut = &digestOn;
            const fi::RunVerdict on = fi::runWithFault(golden, mask, opts);
            opts.useLadder = false;
            opts.statsOut = &statsOff;
            opts.archDigestOut = &digestOff;
            const fi::RunVerdict off = fi::runWithFault(golden, mask, opts);

            EXPECT_TRUE(sched::verdictsIdentical(on, off))
                << info.name << " fault " << i << ": " << on.toString()
                << " vs " << off.toString();
            EXPECT_EQ(digestOn, digestOff) << info.name << " fault " << i;
            const stats::DiffReport dr = stats::diff(statsOn, statsOff);
            EXPECT_TRUE(dr.identical() && dr.unmatched == 0)
                << info.name << " fault " << i;
            EXPECT_EQ(off.fastForwarded, 0u);
            if (on.fastForwarded > 0)
                ++fastForwarded;
        }
    }
    // The battery is vacuous if no run ever restored from a rung.
    EXPECT_GT(fastForwarded, 0u);
}

TEST(LadderFault, SystolicFastForwardNeverChangesVerdicts) {
    // Same battery as above, but the fault sites are the systolic
    // engine's banks, PE registers, and sequencer: rung restores must
    // capture mid-flight accelerator state (double-buffered SPM
    // parity, in-flight DMA, SEQ words) bit-exactly.
    const fi::GoldenRun golden = goldenForSystolic(8);
    ASSERT_EQ(golden.ladder.size(), 8u);
    unsigned fastForwarded = 0;
    for (const char* name : {"gemm_systolic[systolic].IN0",
                             "gemm_systolic[systolic].PE_ACC",
                             "gemm_systolic[systolic].SEQ"}) {
        const fi::TargetRef ref =
            fi::targetByName(golden.checkpoint.view(), name);
        const fi::TargetInfo info =
            fi::targetInfo(golden.checkpoint.view(), ref);
        for (unsigned i = 0; i < 10; ++i) {
            Rng rng = Rng::forStream(2025, i);
            fi::FaultMask mask;
            mask.faults.push_back(fi::randomFault(
                rng, ref, info.geometry, golden.windowCycles,
                fi::FaultModel::Transient));

            fi::InjectionOptions opts;
            opts.computeHvf = true;
            stats::Snapshot statsOn, statsOff;
            u64 digestOn = 0, digestOff = 0;
            opts.useLadder = true;
            opts.statsOut = &statsOn;
            opts.archDigestOut = &digestOn;
            const fi::RunVerdict on = fi::runWithFault(golden, mask, opts);
            opts.useLadder = false;
            opts.statsOut = &statsOff;
            opts.archDigestOut = &digestOff;
            const fi::RunVerdict off = fi::runWithFault(golden, mask, opts);

            EXPECT_TRUE(sched::verdictsIdentical(on, off))
                << info.name << " fault " << i << ": " << on.toString()
                << " vs " << off.toString();
            EXPECT_EQ(digestOn, digestOff) << info.name << " fault " << i;
            const stats::DiffReport dr = stats::diff(statsOn, statsOff);
            EXPECT_TRUE(dr.identical() && dr.unmatched == 0)
                << info.name << " fault " << i;
            EXPECT_EQ(off.fastForwarded, 0u);
            if (on.fastForwarded > 0)
                ++fastForwarded;
        }
    }
    EXPECT_GT(fastForwarded, 0u);
}

TEST(LadderFault, FastForwardedCycleIsARungAtOrBeforeInjection) {
    const fi::GoldenRun golden = goldenFor("crc32", 8);
    const fi::TargetInfo info =
        fi::targetInfo(golden.checkpoint.view(), {fi::TargetId::L1D});
    for (unsigned i = 0; i < 20; ++i) {
        Rng rng = Rng::forStream(99, i);
        fi::FaultMask mask;
        mask.faults.push_back(fi::randomFault(
            rng, {fi::TargetId::L1D}, info.geometry,
            golden.windowCycles, fi::FaultModel::Transient));
        const fi::RunVerdict v = fi::runWithFault(golden, mask);
        const fi::LadderRung* rung =
            golden.rungAtOrBefore(mask.faults[0].injectCycle);
        EXPECT_EQ(v.fastForwarded, rung ? rung->cycle : 0)
            << "fault " << i;
    }
}

TEST(LadderFault, PermanentFaultsNeverFastForward) {
    // Stuck-at faults must act from cycle 0, so the ladder is
    // ineligible no matter where the spec's injectCycle points.
    const fi::GoldenRun golden = goldenFor("crc32", 8);
    const fi::TargetInfo info =
        fi::targetInfo(golden.checkpoint.view(), {fi::TargetId::L1D});
    for (unsigned i = 0; i < 10; ++i) {
        Rng rng = Rng::forStream(7, i);
        fi::FaultMask mask;
        mask.faults.push_back(fi::randomFault(
            rng, {fi::TargetId::L1D}, info.geometry,
            golden.windowCycles, fi::FaultModel::StuckAt1));
        const fi::RunVerdict v = fi::runWithFault(golden, mask);
        EXPECT_EQ(v.fastForwarded, 0u) << "fault " << i;
    }
}

TEST(LadderCampaign, ResultsIdenticalWithAndWithoutFastForward) {
    const fi::GoldenRun golden = goldenFor("crc32", 8);
    fi::CampaignOptions opts;
    opts.numFaults = 40;
    opts.seed = 31337;
    opts.threads = 2;
    opts.keepVerdicts = true;
    opts.useLadder = true;
    const fi::CampaignResult on =
        fi::runCampaignOnGolden(golden, {fi::TargetId::PrfInt}, opts);
    opts.useLadder = false;
    const fi::CampaignResult off =
        fi::runCampaignOnGolden(golden, {fi::TargetId::PrfInt}, opts);
    ASSERT_EQ(on.verdicts.size(), off.verdicts.size());
    for (std::size_t i = 0; i < on.verdicts.size(); ++i)
        EXPECT_TRUE(
            sched::verdictsIdentical(on.verdicts[i], off.verdicts[i]))
            << "fault " << i;
    EXPECT_EQ(on.masked, off.masked);
    EXPECT_EQ(on.sdc, off.sdc);
    EXPECT_EQ(on.crash, off.crash);
}
