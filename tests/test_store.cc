/**
 * @file
 * Campaign store tests:
 *  - blob container: round trip, digest/magic/kind/version guards;
 *  - checkpoint arch-state persistence: serializeArchState -> store
 *    -> load -> byte + digest equality against a fresh serialization
 *    and against a restored system;
 *  - golden-run record: serialization round trip and determinism
 *    across recomputed golden runs;
 *  - journal: write/read round trip, chunk commits, torn-final-line
 *    tolerance (mid-record truncation), mid-file corruption refusal,
 *    and clean re-append after a torn tail.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "fi/campaign.hh"
#include "soc/builder.hh"
#include "store/blob.hh"
#include "store/journal.hh"
#include "store/serialize.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace {

std::string tmpPath(const std::string& name) {
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
}

fi::GoldenRun golden(const char* workload = "crc32") {
    const workloads::Workload wl = workloads::get(workload);
    soc::SystemConfig cfg = soc::preset("riscv");
    return fi::runGolden(cfg,
                         isa::compile(wl.module, isa::IsaKind::RISCV));
}

fi::RunVerdict someVerdict(unsigned i) {
    fi::RunVerdict v;
    v.outcome = static_cast<fi::Outcome>(i % 3);
    v.detail = v.outcome == fi::Outcome::SDC
                   ? fi::OutcomeDetail::SdcOutput
                   : fi::OutcomeDetail::MaskedEarly;
    v.hvfCorruption = i % 2;
    v.hvfCorruptCycle = 100 + i;
    v.terminatedEarly = i % 3 == 0;
    v.cyclesRun = 1000 + i;
    return v;
}

store::JournalMeta someMeta() {
    store::JournalMeta meta;
    meta.workload = "crc32";
    meta.target = "l1d";
    meta.model = "transient";
    meta.seed = 0xabcd;
    meta.numFaults = 64;
    meta.shardIndex = 0;
    meta.shardCount = 1;
    meta.goldenDigest = 0x1122334455667788ull;
    meta.goldenCycles = 98765;
    meta.windowCycles = 4321;
    meta.entries = 512;
    meta.bitsPerEntry = 512;
    return meta;
}

} // namespace

TEST(Blob, RoundTripPreservesBytes) {
    const std::string path = tmpPath("blob_roundtrip.bin");
    std::vector<u8> payload(10'000);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<u8>(i * 37 + 11);
    store::writeBlob(path, store::BlobKind::ArchState, payload);
    EXPECT_TRUE(store::blobExists(path));
    EXPECT_EQ(store::readBlob(path, store::BlobKind::ArchState),
              payload);
}

TEST(Blob, DetectsCorruptionAndWrongKind) {
    const std::string path = tmpPath("blob_corrupt.bin");
    store::writeBlob(path, store::BlobKind::ArchState,
                     {1, 2, 3, 4, 5});
    // Wrong kind refused.
    EXPECT_THROW(store::readBlob(path, store::BlobKind::GoldenRun),
                 FatalError);
    // A flipped payload byte fails the digest check.
    std::string raw = slurp(path);
    raw[raw.size() - 1] ^= 0x40;
    spit(path, raw);
    EXPECT_THROW(store::readBlob(path, store::BlobKind::ArchState),
                 FatalError);
    // A clobbered magic is not a blob at all.
    raw[0] ^= 0xff;
    spit(path, raw);
    EXPECT_THROW(store::readBlob(path, store::BlobKind::ArchState),
                 FatalError);
    EXPECT_FALSE(store::blobExists(path));
}

TEST(Blob, DetectsTruncation) {
    const std::string path = tmpPath("blob_trunc.bin");
    store::writeBlob(path, store::BlobKind::ArchState,
                     std::vector<u8>(100, 0x5a));
    const std::string raw = slurp(path);
    spit(path, raw.substr(0, raw.size() - 10));
    EXPECT_THROW(store::readBlob(path, store::BlobKind::ArchState),
                 FatalError);
}

TEST(Store, CheckpointRoundTripDigestEquality) {
    const fi::GoldenRun g = golden();
    const std::string path = tmpPath("checkpoint.bin");
    store::saveCheckpoint(path, g.checkpoint);

    // store -> load returns exactly the bytes of a fresh
    // serialization of the same snapshot...
    const std::vector<u8> loaded = store::loadCheckpointBytes(path);
    const std::vector<u8> fresh =
        soc::serializeArchState(g.checkpoint.view());
    EXPECT_EQ(loaded, fresh);
    EXPECT_EQ(store::fnv1a(loaded),
              soc::archStateDigest(g.checkpoint.view()));

    // ...and a restored system serializes to the same digest, so the
    // persisted digest identifies the checkpoint across processes.
    const soc::System restored = g.checkpoint.restore();
    EXPECT_EQ(store::fnv1a(loaded), soc::archStateDigest(restored));
}

TEST(Store, GoldenRecordRoundTrip) {
    const fi::GoldenRun g = golden();
    const store::GoldenRecord record = store::goldenRecordOf(g);
    EXPECT_EQ(record.traceLength, g.trace.size());
    EXPECT_EQ(record.windowCycles, g.windowCycles);

    const store::GoldenRecord back = store::deserializeGoldenRecord(
        store::serializeGoldenRecord(record));
    EXPECT_EQ(back, record);

    const std::string path = tmpPath("golden.bin");
    store::saveGoldenRun(path, g);
    EXPECT_EQ(store::loadGoldenRecord(path), record);
}

TEST(Store, GoldenRecordIsDeterministic) {
    // Resume trusts that re-running the golden run reproduces the
    // recorded identity; two independent golden runs must agree.
    const store::GoldenRecord a = store::goldenRecordOf(golden());
    const store::GoldenRecord b = store::goldenRecordOf(golden());
    EXPECT_EQ(a, b);
}

TEST(Journal, WriteReadRoundTrip) {
    const std::string path = tmpPath("journal_roundtrip.jsonl");
    const store::JournalMeta meta = someMeta();
    {
        store::JournalWriter writer;
        writer.create(path, meta, 4);
        for (unsigned i = 0; i < 10; ++i)
            writer.append(i, someVerdict(i));
        writer.close();
        EXPECT_EQ(writer.chunksCommitted(), 3u); // 4 + 4 + 2
    }
    ASSERT_TRUE(store::journalExists(path));
    const store::Journal journal = store::readJournal(path);
    EXPECT_TRUE(journal.hasMeta);
    EXPECT_EQ(journal.meta, meta);
    EXPECT_EQ(journal.chunksCommitted, 3u);
    EXPECT_FALSE(journal.droppedTornLine);
    ASSERT_EQ(journal.verdicts.size(), 10u);
    for (unsigned i = 0; i < 10; ++i) {
        const fi::RunVerdict want = someVerdict(i);
        const store::JournalVerdict& got = journal.verdicts[i];
        EXPECT_EQ(got.idx, i);
        EXPECT_EQ(got.verdict.outcome, want.outcome);
        EXPECT_EQ(got.verdict.detail, want.detail);
        EXPECT_EQ(got.verdict.hvfCorruption, want.hvfCorruption);
        EXPECT_EQ(got.verdict.hvfCorruptCycle, want.hvfCorruptCycle);
        EXPECT_EQ(got.verdict.terminatedEarly, want.terminatedEarly);
        EXPECT_EQ(got.verdict.cyclesRun, want.cyclesRun);
    }
}

TEST(Journal, TornFinalLineIsDropped) {
    const std::string path = tmpPath("journal_torn.jsonl");
    {
        store::JournalWriter writer;
        writer.create(path, someMeta(), 100);
        for (unsigned i = 0; i < 6; ++i)
            writer.append(i, someVerdict(i));
        writer.close();
    }
    const std::string intact = slurp(path);
    const store::Journal whole = store::readJournal(path);
    ASSERT_EQ(whole.verdicts.size(), 6u);
    EXPECT_EQ(whole.validBytes, intact.size());

    // Truncate mid-way through the final verdict record, exactly as
    // a crash during an un-fsync'd write would leave the file.
    const std::size_t lastVerdict =
        intact.rfind("{\"type\":\"verdict\"");
    ASSERT_NE(lastVerdict, std::string::npos);
    spit(path, intact.substr(0, lastVerdict + 30));
    const store::Journal torn = store::readJournal(path);
    EXPECT_TRUE(torn.droppedTornLine);
    ASSERT_EQ(torn.verdicts.size(), 5u);
    EXPECT_EQ(torn.validBytes, lastVerdict);
    for (std::size_t i = 0; i < torn.verdicts.size(); ++i)
        EXPECT_EQ(torn.verdicts[i].idx, i);
}

TEST(Journal, ResumeTruncatesTornTailBeforeAppending) {
    const std::string path = tmpPath("journal_reappend.jsonl");
    {
        store::JournalWriter writer;
        writer.create(path, someMeta(), 2);
        for (unsigned i = 0; i < 4; ++i)
            writer.append(i, someVerdict(i));
        writer.close();
    }
    // Simulate a torn tail.
    const std::string intact = slurp(path);
    spit(path, intact + "{\"type\":\"verdict\",\"idx\":99,\"outc");
    const store::Journal torn = store::readJournal(path);
    ASSERT_TRUE(torn.droppedTornLine);
    ASSERT_EQ(torn.validBytes, intact.size());

    // A resumed writer must cut the garbage before appending, or the
    // first new record would fuse with the torn fragment.
    {
        store::JournalWriter writer;
        writer.resume(path, torn.validBytes, 2);
        writer.append(4, someVerdict(4));
        writer.append(5, someVerdict(5));
        writer.close();
    }
    const store::Journal healed = store::readJournal(path);
    EXPECT_FALSE(healed.droppedTornLine);
    ASSERT_EQ(healed.verdicts.size(), 6u);
    EXPECT_EQ(healed.verdicts[4].idx, 4u);
    EXPECT_EQ(healed.verdicts[5].idx, 5u);
}

TEST(Journal, MidFileCorruptionIsFatal) {
    const std::string path = tmpPath("journal_midcorrupt.jsonl");
    {
        store::JournalWriter writer;
        writer.create(path, someMeta(), 100);
        for (unsigned i = 0; i < 3; ++i)
            writer.append(i, someVerdict(i));
        writer.close();
    }
    std::string raw = slurp(path);
    // Damage a record that is NOT the final line: silent data loss in
    // the middle of a journal must never be papered over.
    const std::size_t firstVerdict = raw.find("\"verdict\"");
    ASSERT_NE(firstVerdict, std::string::npos);
    raw[firstVerdict + 1] = '#';
    spit(path, raw);
    EXPECT_THROW(store::readJournal(path), FatalError);
}

TEST(Journal, MissingMetaIsFatal) {
    const std::string path = tmpPath("journal_nometa.jsonl");
    spit(path, "{\"type\":\"chunk\",\"done\":3}\n");
    EXPECT_THROW(store::readJournal(path), FatalError);
    EXPECT_FALSE(store::journalExists(path));
}

TEST(Journal, EscapedStringsRoundTrip) {
    const std::string path = tmpPath("journal_escape.jsonl");
    store::JournalMeta meta = someMeta();
    meta.workload = "we\"ird\\name\twith\nnoise";
    {
        store::JournalWriter writer;
        writer.create(path, meta, 1);
        writer.close();
    }
    const store::Journal journal = store::readJournal(path);
    EXPECT_EQ(journal.meta.workload, meta.workload);
}

// --- per-injection provenance ----------------------------------------

TEST(Journal, VerdictProvenanceRoundTrips) {
    store::VerdictProvenance prov;
    prov.present = true;
    prov.wallMicros = 12345;
    prov.rung = 3;
    prov.fastForwarded = 70'000;
    prov.pruned = 0;
    const fi::RunVerdict v = someVerdict(4);

    const std::string line = store::formatVerdictLine(9, v, prov);
    EXPECT_NE(line.find("\"wall_us\":12345"), std::string::npos);
    store::JournalVerdict jv;
    ASSERT_TRUE(store::parseVerdictLine(line, jv));
    EXPECT_EQ(jv.idx, 9u);
    EXPECT_EQ(jv.prov, prov);
    EXPECT_EQ(jv.verdict.outcome, v.outcome);
    EXPECT_EQ(jv.verdict.cyclesRun, v.cyclesRun);

    // Absent provenance renders byte-identically to the plain
    // overload, and the plain line reads back as present == false —
    // that equivalence is what lets canonical journals stay stable.
    EXPECT_EQ(store::formatVerdictLine(9, v, store::VerdictProvenance{}),
              store::formatVerdictLine(9, v));
    store::JournalVerdict plain;
    ASSERT_TRUE(store::parseVerdictLine(store::formatVerdictLine(9, v),
                                        plain));
    EXPECT_FALSE(plain.prov.present);
    EXPECT_EQ(plain.prov, store::VerdictProvenance{});
}

TEST(Journal, MixedOldAndNewVerdictRecordsRead) {
    // A journal written partly by a pre-provenance build (plain
    // verdict lines) and partly by this one must read back whole:
    // unknown keys are tolerated, missing keys default to absent.
    const std::string path = tmpPath("journal_mixed.jsonl");
    store::JournalMeta meta = someMeta();
    meta.numFaults = 4;
    store::VerdictProvenance prov;
    prov.present = true;
    prov.wallMicros = 777;
    prov.rung = 1;
    prov.fastForwarded = 42;
    std::string content = store::formatMetaLine(meta) + "\n";
    content += store::formatVerdictLine(0, someVerdict(0)) + "\n";
    content += store::formatVerdictLine(1, someVerdict(1), prov) + "\n";
    content += store::formatVerdictLine(2, someVerdict(2)) + "\n";
    spit(path, content);

    const store::Journal journal = store::readJournal(path);
    ASSERT_EQ(journal.verdicts.size(), 3u);
    EXPECT_FALSE(journal.verdicts[0].prov.present);
    EXPECT_TRUE(journal.verdicts[1].prov.present);
    EXPECT_EQ(journal.verdicts[1].prov.wallMicros, 777u);
    EXPECT_EQ(journal.verdicts[1].prov.rung, 1u);
    EXPECT_EQ(journal.verdicts[1].prov.fastForwarded, 42u);
    EXPECT_FALSE(journal.verdicts[2].prov.present);
}

TEST(Journal, CanonicalFormStripsProvenance) {
    store::JournalMeta meta = someMeta();
    meta.numFaults = 3;
    store::VerdictProvenance prov;
    prov.present = true;
    prov.wallMicros = 999;
    prov.rung = 2;
    std::vector<store::JournalVerdict> withProv, without;
    for (u64 i = 0; i < 3; ++i) {
        withProv.push_back({i, someVerdict(static_cast<unsigned>(i)),
                            prov});
        without.push_back({i, someVerdict(static_cast<unsigned>(i)),
                           store::VerdictProvenance{}});
    }
    const std::string provPath = tmpPath("canon_prov.jsonl");
    const std::string plainPath = tmpPath("canon_plain.jsonl");
    store::writeCanonicalJournal(provPath, meta, withProv);
    store::writeCanonicalJournal(plainPath, meta, without);
    const std::string provBytes = slurp(provPath);
    EXPECT_EQ(provBytes.find("wall_us"), std::string::npos);
    // Provenance never reaches the canonical form, so runs that
    // differ only in wall time / restore rungs canonicalize to the
    // same bytes (the distributed-vs-single-process cmp relies on it).
    EXPECT_EQ(provBytes, slurp(plainPath));
}

TEST(Journal, MetricsPhaseMicrosRoundTrip) {
    const std::string path = tmpPath("journal_phase_us.jsonl");
    store::JournalMeta meta = someMeta();
    meta.numFaults = 1;
    store::JournalWriter writer;
    writer.create(path, meta, 4);
    writer.append(0, someVerdict(0));
    store::JournalMetrics metrics;
    metrics.runs = 1;
    metrics.masked = 1;
    metrics.wallMillis = 250;
    metrics.workers = 1;
    metrics.phaseMicros[3] = 5'000; // simulate
    metrics.phaseMicros[6] = 120;   // journal_io
    writer.appendMetrics(metrics);
    writer.close();

    const store::Journal journal = store::readJournal(path);
    ASSERT_TRUE(journal.hasMetrics);
    EXPECT_EQ(journal.metrics, metrics);

    // A metrics record without the ph_* keys (pre-profiler writer)
    // reads back all-zeros rather than failing.
    const std::string noPhase = tmpPath("journal_nophase.jsonl");
    spit(noPhase,
         store::formatMetaLine(meta) + "\n" +
             store::formatVerdictLine(0, someVerdict(0)) + "\n" +
             "{\"type\":\"metrics\",\"runs\":1,\"masked\":1,"
             "\"sdc\":0,\"crash\":0,\"earlyTerminated\":0,"
             "\"cyclesSimulated\":0,\"cyclesSaved\":0,"
             "\"wallMillis\":250,\"idleMillis\":0,\"workers\":1}\n");
    const store::Journal old = store::readJournal(noPhase);
    ASSERT_TRUE(old.hasMetrics);
    for (unsigned p = 0; p < 8; ++p)
        EXPECT_EQ(old.metrics.phaseMicros[p], 0u);
}

TEST(Journal, NewerFormatVersionFatalNamesFileAndVersions) {
    const std::string path = tmpPath("journal_future.jsonl");
    std::string metaLine = store::formatMetaLine(someMeta());
    const std::string needle =
        strfmt("\"version\":%u", store::kJournalFormatVersion);
    const std::size_t at = metaLine.find(needle);
    ASSERT_NE(at, std::string::npos);
    metaLine.replace(at, needle.size(), "\"version\":99");
    spit(path, metaLine + "\n");
    try {
        store::readJournal(path);
        FAIL() << "future-version journal must not read";
    } catch (const FatalError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(path), std::string::npos) << what;
        EXPECT_NE(what.find("99"), std::string::npos) << what;
        EXPECT_NE(what.find("newer"), std::string::npos) << what;
        EXPECT_NE(what.find(strfmt("%u",
                                   store::kJournalFormatVersion)),
                  std::string::npos)
            << what;
    }
}
