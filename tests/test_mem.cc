/**
 * @file
 * Memory subsystem tests: cache geometry, hit/miss behaviour, tree-PLRU
 * replacement, write-back propagation, coherent reads, fault hooks in
 * the data arrays, and line-crossing accesses.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/bits.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "mem/hierarchy.hh"

using namespace marvel;
using namespace marvel::mem;

TEST(Cache, GeometryMatchesTableII) {
    Cache l1{CacheParams{"l1", 32 * 1024, 64, 4, 2}};
    EXPECT_EQ(l1.params().numSets(), 128u);
    EXPECT_EQ(l1.numEntries(), 512u);
    EXPECT_EQ(l1.bitsPerEntry(), 512u);
    Cache l2{CacheParams{"l2", 1024 * 1024, 64, 8, 14}};
    EXPECT_EQ(l2.params().numSets(), 2048u);
}

TEST(Cache, RejectsNonPowerOfTwoGeometry) {
    CacheParams bad{"bad", 3000, 64, 4, 1};
    EXPECT_THROW({ Cache c(bad); }, FatalError);
}

TEST(Hierarchy, ReadAfterWriteThroughAllLevels) {
    Hierarchy mem;
    Rng rng(7);
    // Write scattered values, read them back coherently and through
    // the cache path.
    std::vector<std::pair<Addr, u64>> writes;
    for (int i = 0; i < 200; ++i) {
        const Addr addr = alignDown(rng.below(kMemSize - 8), 8);
        const u64 value = rng();
        u8 buf[8];
        std::memcpy(buf, &value, 8);
        ASSERT_FALSE(mem.write(addr, buf, 8).fault);
        writes.emplace_back(addr, value);
    }
    for (auto& [addr, value] : writes) {
        u64 got = 0;
        mem.coherentRead(addr, &got, 8);
        // Later writes may have overwritten earlier ones; re-check via
        // a direct read instead of asserting the original value.
        u8 buf[8];
        ASSERT_FALSE(mem.read(addr, buf, 8).fault);
        u64 cached;
        std::memcpy(&cached, buf, 8);
        EXPECT_EQ(got, cached);
    }
}

TEST(Hierarchy, MissLatencyLargerThanHit) {
    Hierarchy mem;
    u8 buf[8];
    const MemResult miss = mem.read(0x4000, buf, 8);
    const MemResult hit = mem.read(0x4000, buf, 8);
    EXPECT_GT(miss.latency, hit.latency);
    EXPECT_EQ(hit.latency, mem.params().l1d.hitLatency);
}

TEST(Hierarchy, OutOfRangeFaults) {
    Hierarchy mem;
    u8 buf[8];
    EXPECT_TRUE(mem.read(kMemSize - 4, buf, 8).fault);
    EXPECT_TRUE(mem.write(kMemSize, buf, 8).fault);
    EXPECT_FALSE(mem.read(kMemSize - 8, buf, 8).fault);
}

TEST(Hierarchy, LineCrossingReadsReturnCorrectBytes) {
    Hierarchy mem;
    const Addr base = 0x10000 + 60; // crosses the 64B boundary
    u8 data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    ASSERT_FALSE(mem.write(base, data, 8).fault);
    u8 got[8] = {};
    ASSERT_FALSE(mem.read(base, got, 8).fault);
    EXPECT_EQ(std::memcmp(data, got, 8), 0);
}

TEST(Cache, EvictionWritesBackDirtyData) {
    Hierarchy mem;
    // Fill one L1D set (4 ways) plus one more line mapping to the
    // same set to force an eviction. Set stride = 128 sets * 64 B.
    const Addr stride = 128 * 64;
    for (unsigned i = 0; i < 5; ++i) {
        const u64 value = 0xbeef0000 + i;
        u8 buf[8];
        std::memcpy(buf, &value, 8);
        ASSERT_FALSE(mem.write(0x8000 + i * stride, buf, 8).fault);
    }
    // All five values must be recoverable (evicted one via L2).
    for (unsigned i = 0; i < 5; ++i) {
        u64 got = 0;
        mem.coherentRead(0x8000 + i * stride, &got, 8);
        EXPECT_EQ(got, 0xbeef0000u + i);
    }
    EXPECT_GE(mem.l1d().stats.writebacks.value(), 1u);
}

TEST(Cache, PlruVictimIsLeastRecentlyTouched) {
    Cache cache{CacheParams{"c", 1024, 64, 4, 1}};
    // 4 sets; fill set 0's four ways.
    const Addr stride = 4 * 64;
    u8 line[64] = {};
    for (unsigned w = 0; w < 4; ++w) {
        const Addr addr = w * stride;
        const int victim = cache.pickVictim(addr);
        cache.fill(victim, addr, line);
    }
    // Tree-PLRU property: after touching one way, the victim must
    // come from the opposite half of the tree (never the touched way
    // or its buddy).
    u8 tmp[8];
    cache.readLine(cache.findLine(2 * stride), 0, tmp, 8);
    const int victim = cache.pickVictim(4 * stride);
    EXPECT_NE(victim, cache.findLine(2 * stride));
    EXPECT_NE(victim, cache.findLine(3 * stride));
    // And the most recently touched way is never the victim even
    // after further fills.
    cache.readLine(cache.findLine(1 * stride), 0, tmp, 8);
    EXPECT_NE(cache.pickVictim(4 * stride),
              cache.findLine(1 * stride));
}

TEST(Cache, FlipCorruptsAndWritebackPropagates) {
    Hierarchy mem;
    const u64 original = 0xff00ff00ff00ff00ull;
    u8 buf[8];
    std::memcpy(buf, &original, 8);
    ASSERT_FALSE(mem.write(0x9000, buf, 8).fault);
    const int line = mem.l1d().findLine(0x9000);
    ASSERT_GE(line, 0);
    mem.l1d().flipBit(line, (0x9000 % 64) * 8); // flip bit 0 of the word
    u8 got[8];
    ASSERT_FALSE(mem.read(0x9000, got, 8).fault);
    u64 corrupted;
    std::memcpy(&corrupted, got, 8);
    EXPECT_EQ(corrupted, original ^ 1);
}

TEST(Cache, FaultHooksTrackReadAndOverwrite) {
    Hierarchy mem;
    u8 buf[8] = {};
    ASSERT_FALSE(mem.write(0xa000, buf, 8).fault);
    const int line = mem.l1d().findLine(0xa000);
    ASSERT_GE(line, 0);
    const u32 bit = (0xa000 % 64) * 8 + 5;
    mem.l1d().flipBit(line, bit);
    mem.l1d().faults().addWatch(line, bit);
    // Overwrite the word before reading it: neutralized.
    ASSERT_FALSE(mem.write(0xa000, buf, 8).fault);
    EXPECT_TRUE(mem.l1d().faults().allNeutralized());
}

TEST(Cache, InvalidationVanishesWatches) {
    Cache cache{CacheParams{"c", 1024, 64, 4, 1}};
    u8 line[64] = {};
    const int victim = cache.pickVictim(0);
    cache.fill(victim, 0, line);
    cache.faults().addWatch(victim, 100);
    cache.invalidate(victim);
    EXPECT_TRUE(cache.faults().allNeutralized());
}

TEST(Cache, StuckBitsSurviveWrites) {
    Hierarchy mem;
    u8 zeros[8] = {};
    ASSERT_FALSE(mem.write(0xb000, zeros, 8).fault);
    const int line = mem.l1d().findLine(0xb000);
    const u32 bit = (0xb000 % 64) * 8 + 2;
    mem.l1d().faults().addStuck(line, bit, true);
    ASSERT_FALSE(mem.write(0xb000, zeros, 8).fault);
    u8 got[8];
    ASSERT_FALSE(mem.read(0xb000, got, 8).fault);
    EXPECT_EQ(got[0] & 4, 4); // bit 2 pinned high
}

TEST(Hierarchy, RandomTraceMatchesShadowMemory) {
    // Property test: any interleaving of reads/writes of mixed sizes
    // through the cache hierarchy must behave exactly like a flat
    // memory (the shadow model), regardless of hits, misses,
    // evictions, and writebacks.
    Hierarchy mem;
    std::vector<u8> shadow(kMemSize, 0);
    Rng rng(0xCACE5);
    // Constrain addresses to a 256 KiB region so the L1/L2 actually
    // thrash (the region is 8x the L1D).
    const Addr regionBase = 0x8000;
    const Addr regionSize = 256 * 1024;
    for (int op = 0; op < 20000; ++op) {
        const unsigned size = 1u << rng.below(4); // 1/2/4/8
        Addr addr = regionBase + rng.below(regionSize - 8);
        addr = alignDown(addr, size);
        if (rng.chance(0.5)) {
            u64 value = rng();
            u8 buf[8];
            std::memcpy(buf, &value, 8);
            ASSERT_FALSE(mem.write(addr, buf, size).fault);
            std::memcpy(shadow.data() + addr, &value, size);
        } else {
            u8 buf[8] = {};
            ASSERT_FALSE(mem.read(addr, buf, size).fault);
            ASSERT_EQ(std::memcmp(buf, shadow.data() + addr, size), 0)
                << "mismatch at 0x" << std::hex << addr << " size "
                << size << " after " << std::dec << op << " ops";
        }
    }
    // Full sweep at the end through the coherent view.
    std::vector<u8> final(regionSize);
    mem.coherentRead(regionBase, final.data(), regionSize);
    EXPECT_EQ(std::memcmp(final.data(), shadow.data() + regionBase,
                          regionSize),
              0);
}
