/**
 * @file
 * Fault-injection framework tests:
 *  - the paper's Listing-1 sanity check: a validation program that
 *    pins the whole L1D with known data must measure 100% AVF;
 *  - campaign determinism across seeds and thread counts;
 *  - the early-termination optimization never changes a verdict;
 *  - HVF >= AVF by construction (Fig. 18);
 *  - fault-mask serialization round trips;
 *  - stuck-at faults force and hold bits.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "accel/designs/designs.hh"
#include "common/memmap.hh"
#include "common/stats.hh"
#include "fi/campaign.hh"
#include "fi/metrics.hh"
#include "sched/replay.hh"
#include "sched/scheduler.hh"
#include "soc/builder.hh"
#include "store/journal.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace {

// Listing 1: zero-fill an L1D-sized array (warming every way), open the
// injection window over a nop loop, then sum the array; a nonzero sum
// flags a successfully injected fault.
workloads::Workload buildL1dValidationProgram() {
    const unsigned words = 32 * 1024 / 8; // exactly the L1D capacity
    mir::ModuleBuilder mb;
    mb.global("array", words * 8, 64);
    mir::FunctionBuilder fb = mb.func("main", {}, true);
    mir::VReg arr = fb.gaddr("array");
    mir::VReg zero = fb.constI(0);
    // 10 fill iterations: every way of every set ends up holding the
    // array (pseudo-LRU warm-up, as the paper's footnote prescribes).
    auto outer = fb.beginLoop(fb.constI(0), fb.constI(10));
    {
        auto fill = fb.beginLoop(fb.constI(0), fb.constI(words));
        fb.st8(fb.add(arr, fb.shlI(fill.idx, 3)), zero);
        fb.endLoop(fill);
    }
    fb.endLoop(outer);
    fb.checkpoint();
    // Injection window: a loop that leaves the cache untouched.
    auto nops = fb.beginLoop(fb.constI(0), fb.constI(4000));
    fb.endLoop(nops);
    fb.switchCpu();
    mir::VReg sum = fb.constI(0);
    auto read = fb.beginLoop(fb.constI(0), fb.constI(words));
    fb.assign(sum, fb.add(sum, fb.ld8(fb.add(arr, fb.shlI(read.idx, 3)))));
    fb.endLoop(read);
    fb.st8(fb.constI((i64)kOutputBase), sum);
    fb.ret(sum);
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"l1d-validation", mb.module(), 1.0};
}

fi::GoldenRun goldenFor(const workloads::Workload& wl, const char* isa) {
    soc::SystemConfig cfg = soc::preset(isa);
    return fi::runGolden(cfg, isa::compile(wl.module, isa::isaFromName(isa)));
}

} // namespace

TEST(FaultMask, TextRoundTrip) {
    fi::FaultMask mask;
    mask.faults.push_back({{fi::TargetId::L1D}, 123, 456,
                           fi::FaultModel::Transient, 7890});
    mask.faults.push_back({{fi::TargetId::AccelMem, 1, 2}, 9, 63,
                           fi::FaultModel::StuckAt1, 0});
    const fi::FaultMask parsed = fi::FaultMask::parse(mask.toString());
    ASSERT_EQ(parsed.faults.size(), 2u);
    EXPECT_EQ(parsed.faults[0].target.id, fi::TargetId::L1D);
    EXPECT_EQ(parsed.faults[0].entry, 123u);
    EXPECT_EQ(parsed.faults[0].bit, 456u);
    EXPECT_EQ(parsed.faults[0].injectCycle, 7890u);
    EXPECT_EQ(parsed.faults[1].target.id, fi::TargetId::AccelMem);
    EXPECT_EQ(parsed.faults[1].target.accelIdx, 1);
    EXPECT_EQ(parsed.faults[1].target.memIdx, 2);
    EXPECT_EQ(parsed.faults[1].model, fi::FaultModel::StuckAt1);
}

TEST(Targets, ListsCpuAndDsaStructures) {
    soc::SystemConfig cfg = soc::preset("riscv-soc");
    soc::System sys(cfg);
    const auto targets = fi::listTargets(sys);
    // 7 CPU structures + every DSA component.
    ASSERT_GT(targets.size(), 7u + 16u);
    EXPECT_EQ(fi::targetByName(sys, "l1d").id, fi::TargetId::L1D);
    const fi::TargetRef gemm1 = fi::targetByName(sys, "gemm.MATRIX1");
    EXPECT_EQ(gemm1.id, fi::TargetId::AccelMem);
    const fi::TargetInfo info = fi::targetInfo(sys, gemm1);
    EXPECT_EQ(info.geometry.entries * 8u, 32768u);
}

TEST(Sanity, Listing1MeasuresFullL1dAvf) {
    // Paper §IV-F: the measured AVF must be 100%.
    const workloads::Workload wl = buildL1dValidationProgram();
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    fi::CampaignOptions opts;
    opts.numFaults = 120;
    opts.threads = 1;
    fi::CampaignResult res = fi::runCampaignOnGolden(
        golden, {fi::TargetId::L1D}, opts);
    EXPECT_EQ(res.total(), 120u);
    EXPECT_DOUBLE_EQ(res.avf(), 1.0)
        << "masked=" << res.masked << " (invalid=" << res.maskedInvalid
        << ", early=" << res.maskedEarly << ")";
    // Flipped zeros in a data array must corrupt data, not crash.
    EXPECT_EQ(res.crash, 0u);
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
    const workloads::Workload wl = workloads::get("crc32");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    fi::CampaignOptions opts;
    opts.numFaults = 40;
    opts.seed = 1234;
    opts.threads = 1;
    const fi::CampaignResult one =
        fi::runCampaignOnGolden(golden, {fi::TargetId::PrfInt}, opts);
    opts.threads = 4;
    const fi::CampaignResult four =
        fi::runCampaignOnGolden(golden, {fi::TargetId::PrfInt}, opts);
    EXPECT_EQ(one.masked, four.masked);
    EXPECT_EQ(one.sdc, four.sdc);
    EXPECT_EQ(one.crash, four.crash);
}

TEST(Campaign, SeedChangesSample) {
    const workloads::Workload wl = workloads::get("crc32");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    fi::CampaignOptions opts;
    opts.numFaults = 30;
    opts.keepVerdicts = true;
    opts.threads = 1;
    opts.seed = 1;
    const auto a =
        fi::runCampaignOnGolden(golden, {fi::TargetId::L1D}, opts);
    opts.seed = 2;
    const auto b =
        fi::runCampaignOnGolden(golden, {fi::TargetId::L1D}, opts);
    // Different samples almost surely give different cycle counts.
    bool anyDifferent = false;
    for (std::size_t i = 0; i < a.verdicts.size(); ++i)
        anyDifferent |= !(a.verdicts[i].outcome == b.verdicts[i].outcome &&
                          a.verdicts[i].cyclesRun == b.verdicts[i].cyclesRun);
    EXPECT_TRUE(anyDifferent);
}

TEST(Campaign, EarlyTerminationNeverChangesVerdicts) {
    // Paper §IV-B claims the speed optimizations are sound; verify the
    // AVF classification is identical with and without them.
    const workloads::Workload wl = workloads::get("bitcount");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    for (fi::TargetId target :
         {fi::TargetId::PrfInt, fi::TargetId::L1D, fi::TargetId::StoreQueue}) {
        for (unsigned i = 0; i < 25; ++i) {
            Rng rng = Rng::forStream(77, i);
            const fi::TargetInfo info =
                fi::targetInfo(golden.checkpoint.view(), {target});
            fi::FaultMask mask;
            mask.faults.push_back(
                fi::randomFault(rng, {target}, info.geometry,
                                golden.windowCycles,
                                fi::FaultModel::Transient));
            fi::InjectionOptions fast;
            fast.earlyTermination = true;
            fi::InjectionOptions slow;
            slow.earlyTermination = false;
            const fi::RunVerdict a = fi::runWithFault(golden, mask, fast);
            const fi::RunVerdict b = fi::runWithFault(golden, mask, slow);
            EXPECT_EQ(static_cast<int>(a.outcome),
                      static_cast<int>(b.outcome))
                << fi::targetIdName(target) << " fault " << i << ": "
                << a.toString() << " vs " << b.toString();
        }
    }
}

TEST(Campaign, HvfAtLeastAvf) {
    const workloads::Workload wl = workloads::get("sha");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    fi::CampaignOptions opts;
    opts.numFaults = 60;
    opts.computeHvf = true;
    opts.threads = 2;
    for (fi::TargetId target : {fi::TargetId::PrfInt, fi::TargetId::L1D}) {
        const fi::CampaignResult res =
            fi::runCampaignOnGolden(golden, {target}, opts);
        EXPECT_GE(res.hvf(), res.avf()) << fi::targetIdName(target);
    }
}

TEST(Campaign, StuckAtFaultsForceBits) {
    soc::SystemConfig cfg = soc::preset("riscv");
    soc::System sys(cfg);
    fi::FaultSpec spec;
    spec.target = {fi::TargetId::PrfInt};
    spec.entry = 50;
    spec.bit = 3;
    spec.model = fi::FaultModel::StuckAt1;
    fi::injectFault(sys, spec);
    EXPECT_EQ(sys.cpu.intPrf.peek(50) & 8u, 8u);
    // Writes cannot clear the stuck bit.
    sys.cpu.intPrf.write(50, 0);
    EXPECT_EQ(sys.cpu.intPrf.peek(50) & 8u, 8u);
    // Stuck-at-0 likewise pins the bit low.
    fi::FaultSpec s0 = spec;
    s0.entry = 51;
    s0.model = fi::FaultModel::StuckAt0;
    fi::injectFault(sys, s0);
    sys.cpu.intPrf.write(51, ~0ull);
    EXPECT_EQ(sys.cpu.intPrf.peek(51) & 8u, 0u);
}

TEST(Campaign, PermanentFaultCampaignRuns) {
    const workloads::Workload wl = workloads::get("bitcount");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    fi::CampaignOptions opts;
    opts.numFaults = 30;
    opts.model = fi::FaultModel::StuckAt1;
    opts.threads = 2;
    const fi::CampaignResult res =
        fi::runCampaignOnGolden(golden, {fi::TargetId::L1D}, opts);
    EXPECT_EQ(res.total(), 30u);
}

TEST(Metrics, WeightedAvfWeighsByExecutionTime) {
    fi::CampaignResult fast;
    fast.masked = 50;
    fast.sdc = 50;
    fast.goldenCycles = 100;
    fi::CampaignResult slow;
    slow.masked = 100;
    slow.goldenCycles = 900;
    // wAVF = (0.5*100 + 0.0*900) / 1000 = 0.05
    EXPECT_DOUBLE_EQ(fi::weightedAvf({fast, slow}), 0.05);
}

TEST(Metrics, OpfPrefersFasterPlatformAtEqualAvf) {
    const double slowOpf = fi::operationsPerFailure(1000, 100000, 0.4);
    const double fastOpf = fi::operationsPerFailure(1000, 1000, 0.4);
    EXPECT_GT(fastOpf, slowOpf);
    EXPECT_TRUE(std::isinf(fi::operationsPerFailure(10, 100, 0.0)));
}

TEST(Metrics, ErrorMarginMatchesPaperSetting) {
    // Paper: 1,000 faults ~ 3% margin at 95% confidence for large
    // populations.
    const double margin = marvel::marginOfError(1000.0, 1e12);
    EXPECT_NEAR(margin, 0.031, 0.002);
    const std::size_t n = marvel::sampleSize(1e12, 0.031);
    EXPECT_NEAR(static_cast<double>(n), 1000.0, 20.0);
}

TEST(Targets, RobAndRenameInjection) {
    const workloads::Workload wl = workloads::get("bitcount");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    fi::CampaignOptions opts;
    opts.numFaults = 25;
    opts.threads = 2;
    for (fi::TargetId target :
         {fi::TargetId::Rob, fi::TargetId::RenameMap}) {
        const fi::CampaignResult res =
            fi::runCampaignOnGolden(golden, {target}, opts);
        EXPECT_EQ(res.total(), 25u) << fi::targetIdName(target);
        // Rename-map corruption redirects architectural reads: it must
        // not be fully masked.
        if (target == fi::TargetId::RenameMap)
            EXPECT_GT(res.avf(), 0.0);
    }
}

TEST(Targets, MultiBitMasksRun) {
    const workloads::Workload wl = workloads::get("crc32");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    const fi::TargetInfo l1d =
        fi::targetInfo(golden.checkpoint.view(), {fi::TargetId::L1D});
    const fi::TargetInfo prf = fi::targetInfo(
        golden.checkpoint.view(), {fi::TargetId::PrfInt});

    Rng rng(31337);
    // Adjacent double-bit burst.
    const fi::FaultMask burst = fi::adjacentBurst(
        rng, l1d.ref, l1d.geometry, golden.windowCycles, 2);
    ASSERT_EQ(burst.faults.size(), 2u);
    EXPECT_EQ(burst.faults[0].entry, burst.faults[1].entry);
    (void)fi::runWithFault(golden, burst);

    // Scattered multi-bit within one structure.
    const fi::FaultMask scattered = fi::scatteredMultiBit(
        rng, l1d.ref, l1d.geometry, golden.windowCycles, 4);
    ASSERT_EQ(scattered.faults.size(), 4u);
    (void)fi::runWithFault(golden, scattered);

    // Spatial multi-structure mask (PRF + L1D in one run).
    const fi::FaultMask multi = fi::multiStructure(
        rng, {{prf.ref, prf.geometry}, {l1d.ref, l1d.geometry}},
        golden.windowCycles);
    ASSERT_EQ(multi.faults.size(), 2u);
    const fi::RunVerdict v = fi::runWithFault(golden, multi);
    EXPECT_GT(v.cyclesRun + 1, 0u); // ran and classified
}

TEST(Targets, MultiBitAtLeastAsVulnerableAsSingle) {
    // Property (statistical): an 8-bit burst in the L1D cannot have a
    // lower AVF than the matching single-bit campaign.
    const workloads::Workload wl = workloads::get("crc32");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    const fi::TargetInfo info =
        fi::targetInfo(golden.checkpoint.view(), {fi::TargetId::L1D});
    unsigned singleBad = 0;
    unsigned burstBad = 0;
    const unsigned n = 40;
    for (unsigned i = 0; i < n; ++i) {
        Rng rng = Rng::forStream(555, i);
        fi::FaultMask single;
        single.faults.push_back(
            fi::randomFault(rng, info.ref, info.geometry,
                            golden.windowCycles,
                            fi::FaultModel::Transient));
        fi::FaultMask burst;
        for (unsigned b = 0; b < 8; ++b) {
            fi::FaultSpec f = single.faults[0];
            f.bit = (f.bit + b) % info.geometry.bitsPerEntry;
            burst.faults.push_back(f);
        }
        singleBad +=
            fi::runWithFault(golden, single).outcome !=
            fi::Outcome::Masked;
        burstBad += fi::runWithFault(golden, burst).outcome !=
                    fi::Outcome::Masked;
    }
    EXPECT_GE(burstBad, singleBad);
}

TEST(Metrics, PropagationBreakdownPartitionsFaults) {
    const workloads::Workload wl = workloads::get("crc32");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    fi::CampaignOptions opts;
    opts.numFaults = 50;
    opts.computeHvf = true;
    opts.keepVerdicts = true;
    opts.threads = 2;
    const fi::CampaignResult res = fi::runCampaignOnGolden(
        golden, {fi::TargetId::PrfInt}, opts);
    const fi::PropagationBreakdown pb = fi::propagationBreakdown(res);
    EXPECT_EQ(pb.total(), res.total());
    EXPECT_EQ(pb.sdc, res.sdc);
    EXPECT_EQ(pb.crash, res.crash);
    EXPECT_EQ(pb.hwMasked + pb.swMasked, res.masked);
    // hwMasked + swMasked consistency with the HVF count.
    EXPECT_EQ(pb.swMasked + pb.sdc + pb.crash, res.hvfCorruptions);
}

TEST(Metrics, PropagationBreakdownAgreesWithLineage) {
    // The breakdown is computed from verdict bits; propagation
    // lineage re-derives the same story from dataflow taint. Re-run
    // every fault of a small PRF campaign with lineage enabled and
    // check the two classifications coincide fault by fault.
    const workloads::Workload wl = workloads::get("crc32");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    const fi::TargetRef target{fi::TargetId::PrfInt};
    fi::CampaignOptions opts;
    opts.numFaults = 30;
    opts.seed = 20260806;
    opts.computeHvf = true;
    opts.keepVerdicts = true;
    opts.threads = 2;
    const fi::CampaignResult res =
        fi::runCampaignOnGolden(golden, target, opts);
    const fi::PropagationBreakdown pb = fi::propagationBreakdown(res);

    const fi::TargetGeometry geometry =
        fi::targetInfo(golden.checkpoint.view(), target).geometry;
    fi::PropagationBreakdown fromLineage;
    for (u64 i = 0; i < opts.numFaults; ++i) {
        // Same derivation as the campaign worker: fault i is a pure
        // function of (seed, i).
        Rng rng = Rng::forStream(opts.seed, i);
        fi::FaultMask mask;
        mask.faults.push_back(fi::randomFault(
            rng, target, geometry, golden.windowCycles, opts.model));

        obs::PropagationTrace lineage;
        fi::InjectionOptions iopts;
        iopts.computeHvf = true;
        iopts.lineage = &lineage;
        const fi::RunVerdict verdict =
            fi::runWithFault(golden, mask, iopts);

        // Lineage bookkeeping must not perturb the verdict.
        EXPECT_EQ(verdict.outcome, res.verdicts[i].outcome) << i;
        EXPECT_EQ(verdict.hvfCorruption,
                  res.verdicts[i].hvfCorruption)
            << i;

        // Classify from the lineage's point of view.
        if (verdict.outcome == fi::Outcome::SDC)
            ++fromLineage.sdc;
        else if (verdict.outcome == fi::Outcome::Crash)
            ++fromLineage.crash;
        else if (lineage.diverged)
            ++fromLineage.swMasked;
        else
            ++fromLineage.hwMasked;

        // A diverged lineage implies the taint was consumed and
        // reached the commit stream (crash runs may divert before a
        // tainted µop commits, so only check non-crash outcomes).
        if (lineage.diverged &&
            verdict.outcome != fi::Outcome::Crash) {
            EXPECT_TRUE(lineage.faultRead) << i;
            EXPECT_GT(lineage.taintedUops, 0u) << i;
        }
    }
    EXPECT_EQ(fromLineage.hwMasked, pb.hwMasked);
    EXPECT_EQ(fromLineage.swMasked, pb.swMasked);
    EXPECT_EQ(fromLineage.sdc, pb.sdc);
    EXPECT_EQ(fromLineage.crash, pb.crash);
}

TEST(Targets, BtbFaultsAreAlwaysArchitecturallyMasked) {
    // Negative control: prediction state is not ACE - a corrupted BTB
    // target at worst triggers a wrong-path excursion that the branch
    // unit corrects. AVF must be exactly zero.
    const workloads::Workload wl = workloads::get("crc32");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    fi::CampaignOptions opts;
    opts.numFaults = 40;
    opts.threads = 2;
    const fi::CampaignResult res =
        fi::runCampaignOnGolden(golden, {fi::TargetId::Btb}, opts);
    EXPECT_EQ(res.total(), 40u);
    EXPECT_DOUBLE_EQ(res.avf(), 0.0)
        << "sdc=" << res.sdc << " crash=" << res.crash;
}

namespace {

// Journal contents minus the metrics trailer (whose wallMillis is
// wall-clock and legitimately differs between runs). Verdict records
// are re-rendered without their provenance fields: wall time and the
// rung restored from are per-run observations, not campaign results,
// and differ between ladder-on and ladder-off by design.
std::string journalVerdictBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"type\":\"metrics\"") != std::string::npos)
            continue;
        store::JournalVerdict jv;
        if (store::parseVerdictLine(line, jv))
            out << store::formatVerdictLine(jv.idx, jv.verdict)
                << '\n';
        else
            out << line << '\n';
    }
    return out.str();
}

std::string ladderTmp(const std::string& name) {
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

} // namespace

TEST(Ladder, CampaignJournalsBitIdenticalWithAndWithoutFastForward) {
    // The ISSUE's hard requirement: with the ladder on, every verdict
    // and journal record is bit-identical to ladder-off. Both runs
    // share one golden (the ladder *geometry* is campaign identity;
    // whether runs fast-forward from it is not recorded).
    const workloads::Workload wl = workloads::get("crc32");
    const soc::SystemConfig cfg = soc::preset("riscv");
    const fi::GoldenRun golden = fi::runGolden(
        cfg, isa::compile(wl.module, isa::IsaKind::RISCV),
        500'000'000, 8);
    ASSERT_EQ(golden.ladder.size(), 8u);

    for (fi::TargetId target :
         {fi::TargetId::PrfInt, fi::TargetId::L1D}) {
        fi::CampaignOptions opts;
        opts.numFaults = 30;
        opts.seed = 2024;
        // One worker: multi-threaded runs race on journal append
        // order (verdicts stay per-index identical), and this test
        // pins whole-file bytes.
        opts.threads = 1;
        opts.ladderRungs = 8;
        opts.workloadName = "crc32";
        opts.heartbeatSeconds = 0;

        const std::string onPath = ladderTmp("fi_ladder_on.jsonl");
        opts.useLadder = true;
        opts.journalPath = onPath;
        const fi::CampaignResult on =
            sched::runCampaign(golden, {target}, opts);

        const std::string offPath = ladderTmp("fi_ladder_off.jsonl");
        opts.useLadder = false;
        opts.journalPath = offPath;
        const fi::CampaignResult off =
            sched::runCampaign(golden, {target}, opts);

        EXPECT_EQ(on.masked, off.masked);
        EXPECT_EQ(on.sdc, off.sdc);
        EXPECT_EQ(on.crash, off.crash);
        const std::string onBytes = journalVerdictBytes(onPath);
        EXPECT_FALSE(onBytes.empty());
        EXPECT_EQ(onBytes, journalVerdictBytes(offPath))
            << fi::targetIdName(target);
        std::remove(onPath.c_str());
        std::remove(offPath.c_str());
    }
}

TEST(Ladder, PrunedFaultsForceSimulateToMasked) {
    // Pruning soundness: every fault the profiler classified as dead
    // (first covering access is an overwrite) must come back Masked
    // when actually simulated.
    const workloads::Workload wl = workloads::get("crc32");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    fi::CampaignOptions opts;
    opts.numFaults = 60;
    opts.seed = 555;
    opts.threads = 2;
    opts.prune = true;
    opts.keepVerdicts = true;
    unsigned prunedTotal = 0;
    for (fi::TargetId target :
         {fi::TargetId::PrfInt, fi::TargetId::L1D}) {
        const fi::CampaignResult res =
            fi::runCampaignOnGolden(golden, {target}, opts);
        EXPECT_EQ(res.pruned,
                  static_cast<u64>(std::count_if(
                      res.verdicts.begin(), res.verdicts.end(),
                      [](const fi::RunVerdict& v) {
                          return v.detail ==
                                 fi::OutcomeDetail::MaskedPruned;
                      })));
        for (std::size_t i = 0; i < res.verdicts.size(); ++i) {
            if (res.verdicts[i].detail !=
                fi::OutcomeDetail::MaskedPruned)
                continue;
            ++prunedTotal;
            Rng rng = Rng::forStream(opts.seed, i);
            fi::FaultMask mask;
            mask.faults.push_back(fi::randomFault(
                rng, {target}, res.target.geometry,
                golden.windowCycles, fi::FaultModel::Transient));
            const fi::RunVerdict forced =
                fi::runWithFault(golden, mask);
            EXPECT_EQ(static_cast<int>(forced.outcome),
                      static_cast<int>(fi::Outcome::Masked))
                << fi::targetIdName(target) << " fault " << i << ": "
                << forced.toString();
        }
    }
    // The test is vacuous if the profiler never proved a fault dead.
    EXPECT_GT(prunedTotal, 0u);
}

TEST(Ladder, PruningNeverChangesOutcomeCounts) {
    // Pruning relabels Masked verdicts (detail masked-pruned) but can
    // never move a fault between Masked / SDC / Crash.
    const workloads::Workload wl = workloads::get("bitcount");
    const fi::GoldenRun golden = goldenFor(wl, "riscv");
    fi::CampaignOptions opts;
    opts.numFaults = 50;
    opts.seed = 808;
    opts.threads = 2;
    opts.prune = false;
    const fi::CampaignResult plain =
        fi::runCampaignOnGolden(golden, {fi::TargetId::PrfInt}, opts);
    opts.prune = true;
    const fi::CampaignResult pruned =
        fi::runCampaignOnGolden(golden, {fi::TargetId::PrfInt}, opts);
    EXPECT_EQ(plain.masked, pruned.masked);
    EXPECT_EQ(plain.sdc, pruned.sdc);
    EXPECT_EQ(plain.crash, pruned.crash);
}

namespace {

/** Golden run for the systolic GEMM driver (optionally laddered). */
fi::GoldenRun goldenForSystolic(unsigned rungs = 0) {
    soc::SystemConfig cfg = soc::preset("riscv");
    cfg.cluster.designs.push_back(
        accel::designs::makeGemmSystolic(kAccelSpaceBase));
    const workloads::Workload wl =
        workloads::accelDriver("gemm_systolic", 0);
    return fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa),
                         500'000'000, rungs);
}

} // namespace

TEST(Targets, EngineClassQualifiedNamesWithLegacyFallback) {
    // Two engine classes in one SoC: names must carry the class so
    // dataflow and systolic targets are unambiguous, and the legacy
    // "design.COMPONENT" spelling must keep resolving.
    soc::SystemConfig cfg = soc::preset("riscv");
    cfg.cluster.designs.push_back(
        accel::designs::makeByName("gemm", kAccelSpaceBase));
    cfg.cluster.designs.push_back(accel::designs::makeGemmSystolic(
        kAccelSpaceBase + kAccelSpaceStride));
    soc::System sys(cfg);

    std::vector<std::string> names;
    for (const fi::TargetInfo& info : fi::listTargets(sys))
        names.push_back(info.name);
    auto listed = [&](const char* n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(listed("gemm[dataflow].MATRIX1"));
    EXPECT_TRUE(listed("gemm_systolic[systolic].SEQ"));
    EXPECT_TRUE(listed("gemm_systolic[systolic].PE_ACC"));
    EXPECT_FALSE(listed("gemm.MATRIX1")); // bare names are gone

    // Qualified and legacy spellings resolve to the same target.
    const fi::TargetRef qualified =
        fi::targetByName(sys, "gemm_systolic[systolic].PE_WREG");
    const fi::TargetRef legacy =
        fi::targetByName(sys, "gemm_systolic.PE_WREG");
    EXPECT_EQ(qualified.id, fi::TargetId::AccelMem);
    EXPECT_EQ(qualified.accelIdx, legacy.accelIdx);
    EXPECT_EQ(qualified.memIdx, legacy.memIdx);
    EXPECT_EQ(qualified.accelIdx, 1);
    const fi::TargetRef legacyGemm = fi::targetByName(sys, "gemm.MATRIX1");
    EXPECT_EQ(legacyGemm.accelIdx, 0);
    EXPECT_THROW(fi::targetByName(sys, "gemm.NO_SUCH"), FatalError);
}

TEST(Classify, AccelContainedFaultIsMaskedInAccel) {
    // SEQ word 7 is read every cycle (the sequencer re-reads its whole
    // bank through the fault hooks) but never interpreted and never
    // rewritten after start. A bit flipped there mid-window is
    // deterministically consumed by the engine yet can never reach
    // CPU-visible state: the canonical masked-in-accel fault.
    const fi::GoldenRun golden = goldenForSystolic();
    const fi::TargetRef seq = fi::targetByName(
        golden.checkpoint.view(), "gemm_systolic[systolic].SEQ");
    fi::FaultMask mask;
    mask.faults.push_back(
        {seq, 7, 13, fi::FaultModel::Transient, golden.windowCycles / 2});
    fi::InjectionOptions opts;
    opts.computeHvf = true;
    const fi::RunVerdict v = fi::runWithFault(golden, mask, opts);
    EXPECT_EQ(static_cast<int>(v.outcome),
              static_cast<int>(fi::Outcome::Masked))
        << v.toString();
    EXPECT_EQ(static_cast<int>(v.detail),
              static_cast<int>(fi::OutcomeDetail::MaskedInAccel))
        << v.toString();
    EXPECT_FALSE(v.hvfCorruption);
}

TEST(Classify, CampaignTalliesMaskedInAccel) {
    const fi::GoldenRun golden = goldenForSystolic();
    const fi::TargetRef seq = fi::targetByName(
        golden.checkpoint.view(), "gemm_systolic[systolic].SEQ");
    fi::CampaignOptions opts;
    opts.numFaults = 60;
    opts.seed = 7777;
    opts.threads = 2;
    opts.keepVerdicts = true;
    const fi::CampaignResult res =
        fi::runCampaignOnGolden(golden, seq, opts);
    EXPECT_EQ(res.maskedInAccel,
              static_cast<u64>(std::count_if(
                  res.verdicts.begin(), res.verdicts.end(),
                  [](const fi::RunVerdict& v) {
                      return v.detail ==
                             fi::OutcomeDetail::MaskedInAccel;
                  })));
    EXPECT_LE(res.maskedInAccel, res.masked);
    // SEQ carries dead bits (reserved word, unused field bits), so a
    // 60-fault sample that never contains one means the target map
    // regressed.
    EXPECT_GT(res.maskedInAccel, 0u);
}

TEST(Ladder, SystolicJournalsBitIdenticalWithAndWithoutFastForward) {
    // Systolic faults through the journaled scheduler path: ladder
    // on/off and sharded/unsharded runs must produce byte-identical
    // verdict records.
    const fi::GoldenRun golden = goldenForSystolic(8);
    ASSERT_EQ(golden.ladder.size(), 8u);
    const fi::TargetRef acc = fi::targetByName(
        golden.checkpoint.view(), "gemm_systolic[systolic].PE_ACC");

    fi::CampaignOptions opts;
    opts.numFaults = 24;
    opts.seed = 2026;
    opts.threads = 1; // whole-file byte identity needs one appender
    opts.ladderRungs = 8;
    opts.workloadName = "gemm_systolic";
    opts.heartbeatSeconds = 0;

    const std::string onPath = ladderTmp("fi_sys_ladder_on.jsonl");
    opts.useLadder = true;
    opts.journalPath = onPath;
    const fi::CampaignResult on = sched::runCampaign(golden, acc, opts);

    const std::string offPath = ladderTmp("fi_sys_ladder_off.jsonl");
    opts.useLadder = false;
    opts.journalPath = offPath;
    const fi::CampaignResult off = sched::runCampaign(golden, acc, opts);

    EXPECT_EQ(on.masked, off.masked);
    EXPECT_EQ(on.sdc, off.sdc);
    EXPECT_EQ(on.crash, off.crash);
    EXPECT_EQ(on.maskedInAccel, off.maskedInAccel);
    const std::string onBytes = journalVerdictBytes(onPath);
    EXPECT_FALSE(onBytes.empty());
    EXPECT_EQ(onBytes, journalVerdictBytes(offPath));

    // Shard the same campaign 3 ways (ladder back on) and merge: the
    // merged counts must equal the unsharded run's.
    opts.useLadder = true;
    std::vector<std::string> shardPaths;
    for (u32 s = 0; s < 3; ++s) {
        fi::CampaignOptions shardOpts = opts;
        shardOpts.journalPath =
            ladderTmp(strfmt("fi_sys_shard%u.jsonl", s));
        shardOpts.shardIndex = s;
        shardOpts.shardCount = 3;
        sched::runCampaign(golden, acc, shardOpts);
        shardPaths.push_back(shardOpts.journalPath);
    }
    const fi::CampaignResult merged = sched::mergeJournals(shardPaths);
    EXPECT_EQ(merged.masked, on.masked);
    EXPECT_EQ(merged.sdc, on.sdc);
    EXPECT_EQ(merged.crash, on.crash);
    EXPECT_EQ(merged.maskedInAccel, on.maskedInAccel);
    EXPECT_EQ(merged.windowCycles, golden.windowCycles);

    std::remove(onPath.c_str());
    std::remove(offPath.c_str());
    for (const std::string& p : shardPaths)
        std::remove(p.c_str());
}
