/**
 * @file
 * Accelerator subsystem tests: each MachSuite design runs end-to-end in
 * a heterogeneous SoC (RISC-V host driving it through MMRs, DMA and the
 * completion interrupt) and its OUTPUT window must match a C++
 * reference computed from the same staged inputs. Plus engine-level
 * properties: FU scaling, area model, component geometry (Table IV).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>

#include "accel/designs/designs.hh"
#include "fi/campaign.hh"
#include "mir/interp.hh"
#include "soc/builder.hh"
#include "workloads/workloads.hh"

using namespace marvel;
using accel::designs::DesignSizes;

namespace {

// Pull a named global's initial bytes out of a workload module.
std::vector<u8> globalBytes(const mir::Module& m, const std::string& name) {
    const mir::Global& g = m.globals[m.globalId(name)];
    std::vector<u8> out(g.size, 0);
    std::copy(g.init.begin(), g.init.end(), out.begin());
    return out;
}

double f64At(const std::vector<u8>& b, std::size_t i) {
    double v;
    std::memcpy(&v, b.data() + i * 8, 8);
    return v;
}

u64 u64At(const std::vector<u8>& b, std::size_t i) {
    u64 v;
    std::memcpy(&v, b.data() + i * 8, 8);
    return v;
}

// Run a design's driver on a RISC-V SoC containing that single design.
fi::GoldenRun runSoc(const std::string& design,
                     workloads::Workload* wlOut = nullptr) {
    soc::SystemConfig cfg = soc::preset("riscv");
    cfg.cluster.designs.push_back(
        accel::designs::makeByName(design, kAccelSpaceBase));
    workloads::Workload wl = workloads::accelDriver(design, 0);
    if (wlOut)
        *wlOut = wl;
    const isa::Program prog = isa::compile(wl.module, isa::IsaKind::RISCV);
    return fi::runGolden(cfg, prog);
}

} // namespace

TEST(AccelDesigns, TableIvComponentGeometry) {
    // Table IV: injection components with exact sizes and kinds.
    struct Row {
        const char* design;
        const char* component;
        u32 bytes;
        accel::MemKind kind;
    };
    const Row rows[] = {
        {"bfs", "EDGES", 16384, accel::MemKind::RegBank},
        {"bfs", "NODES", 2048, accel::MemKind::RegBank},
        {"fft", "IMG", 8192, accel::MemKind::Spm},
        {"fft", "REAL", 8192, accel::MemKind::Spm},
        {"gemm", "MATRIX1", 32768, accel::MemKind::Spm},
        {"gemm", "MATRIX3", 32768, accel::MemKind::Spm},
        {"md_knn", "NLADDR", 16384, accel::MemKind::Spm},
        {"md_knn", "FORCEX", 2048, accel::MemKind::Spm},
        {"mergesort", "MAIN", 8192, accel::MemKind::Spm},
        {"mergesort", "TEMP", 8192, accel::MemKind::Spm},
        {"spmv", "VAL", 13328, accel::MemKind::Spm},
        {"spmv", "COLS", 6664, accel::MemKind::Spm},
        {"stencil2d", "ORIG", 32768, accel::MemKind::Spm},
        {"stencil2d", "SOL", 32768, accel::MemKind::Spm},
        {"stencil2d", "FILTER", 360, accel::MemKind::RegBank},
        {"stencil3d", "ORIG", 65536, accel::MemKind::Spm},
        {"stencil3d", "SOL", 65536, accel::MemKind::Spm},
        {"stencil3d", "C_VAR", 8, accel::MemKind::RegBank},
    };
    for (const Row& row : rows) {
        accel::AccelDesign d =
            accel::designs::makeByName(row.design, kAccelSpaceBase);
        accel::ComputeUnit unit(d, kAccelSpaceBase);
        accel::AccelMem& mem = unit.memoryByName(row.component);
        EXPECT_EQ(mem.size(), row.bytes)
            << row.design << "." << row.component;
        EXPECT_EQ(mem.kind(), row.kind)
            << row.design << "." << row.component;
    }
}

TEST(AccelSoc, GemmMatchesReference) {
    workloads::Workload wl;
    const fi::GoldenRun g = runSoc("gemm", &wl);
    const auto a = globalBytes(wl.module, "mat_a");
    const auto b = globalBytes(wl.module, "mat_b");
    const u32 dim = DesignSizes::gemmDim;
    for (u32 i = 0; i < dim; i += 7) {
        for (u32 j = 0; j < dim; j += 5) {
            double sum = 0.0;
            for (u32 k = 0; k < dim; ++k)
                sum += f64At(a, i * dim + k) * f64At(b, k * dim + j);
            double got;
            std::memcpy(&got, g.output.data() + (i * dim + j) * 8, 8);
            // The datapath accumulates in 8 parallel lanes, so the
            // FP association order differs from the serial reference.
            ASSERT_NEAR(got, sum, 1e-9)
                << "C[" << i << "][" << j << "]";
        }
    }
}

TEST(AccelSoc, MergesortSorts) {
    workloads::Workload wl;
    const fi::GoldenRun g = runSoc("mergesort", &wl);
    auto input = globalBytes(wl.module, "unsorted");
    const u32 n = DesignSizes::sortLen;
    std::vector<u64> ref(n);
    for (u32 i = 0; i < n; ++i)
        ref[i] = u64At(input, i);
    std::sort(ref.begin(), ref.end(),
              [](u64 x, u64 y) { return (i64)x < (i64)y; });
    // The kernel compares signed (CmpLe).
    for (u32 i = 0; i < n; ++i) {
        u64 got;
        std::memcpy(&got, g.output.data() + i * 8, 8);
        ASSERT_EQ(got, ref[i]) << "index " << i;
    }
}

TEST(AccelSoc, BfsLevelsMatchReference) {
    workloads::Workload wl;
    const fi::GoldenRun g = runSoc("bfs", &wl);
    const auto nodes = globalBytes(wl.module, "nodes");
    const auto edges = globalBytes(wl.module, "edges");
    const u32 n = DesignSizes::bfsNodes;
    std::vector<i64> level(n, -1);
    std::vector<u32> queue{0};
    level[0] = 0;
    for (std::size_t h = 0; h < queue.size(); ++h) {
        const u32 node = queue[h];
        const u64 word = u64At(nodes, node);
        const u64 begin = word >> 32;
        const u64 end = word & 0xffffffffull;
        for (u64 e = begin; e < end; ++e) {
            const u32 t = static_cast<u32>(u64At(edges, e));
            if (level[t] < 0) {
                level[t] = level[node] + 1;
                queue.push_back(t);
            }
        }
    }
    for (u32 i = 0; i < n; ++i) {
        i64 got;
        std::memcpy(&got, g.output.data() + i * 8, 8);
        EXPECT_EQ(got, level[i]) << "node " << i;
    }
}

TEST(AccelSoc, SpmvMatchesReference) {
    workloads::Workload wl;
    const fi::GoldenRun g = runSoc("spmv", &wl);
    const auto val = globalBytes(wl.module, "val");
    const auto cols = globalBytes(wl.module, "cols");
    const auto rowd = globalBytes(wl.module, "rowdelim");
    const auto vec = globalBytes(wl.module, "vec");
    const u32 rows = DesignSizes::spmvRows;
    for (u32 r = 0; r < rows; ++r) {
        double sum = 0.0;
        for (u64 i = u64At(rowd, r); i < u64At(rowd, r + 1); ++i) {
            u32 c;
            std::memcpy(&c, cols.data() + i * 4, 4);
            sum += f64At(val, i) * f64At(vec, c);
        }
        double got;
        std::memcpy(&got, g.output.data() + r * 8, 8);
        ASSERT_DOUBLE_EQ(got, sum) << "row " << r;
    }
}

TEST(AccelSoc, Stencil3dMatchesReference) {
    workloads::Workload wl;
    const fi::GoldenRun g = runSoc("stencil3d", &wl);
    const auto orig = globalBytes(wl.module, "orig");
    const u32 nx = DesignSizes::st3X, ny = DesignSizes::st3Y,
              nz = DesignSizes::st3Z;
    auto at = [&](u32 x, u32 y, u32 z) {
        return f64At(orig, (x * ny + y) * nz + z);
    };
    for (u32 x = 1; x + 1 < nx; x += 3)
        for (u32 y = 1; y + 1 < ny; y += 3)
            for (u32 z = 1; z + 1 < nz; z += 5) {
                const double sum = at(x - 1, y, z) + at(x + 1, y, z) +
                                   at(x, y - 1, z) + at(x, y + 1, z) +
                                   at(x, y, z - 1) + at(x, y, z + 1);
                const double expect = 2.0 * at(x, y, z) - 1.0 * sum;
                double got;
                std::memcpy(&got,
                            g.output.data() +
                                ((x * ny + y) * nz + z) * 8,
                            8);
                ASSERT_DOUBLE_EQ(got, expect)
                    << x << "," << y << "," << z;
            }
}

TEST(AccelSoc, AllDesignsCompleteCleanly) {
    for (const std::string& name : accel::designs::allDesignNames()) {
        const fi::GoldenRun g = runSoc(name);
        EXPECT_GT(g.windowCycles, 0u) << name;
        EXPECT_GE(g.totalCycles, g.windowCycles) << name;
        // The output window must not be all zeros (results landed).
        bool nonZero = false;
        for (u8 b : g.output)
            nonZero |= b != 0;
        EXPECT_TRUE(nonZero) << name;
    }
}

TEST(AccelEngine, FewerMultipliersSlowGemmDown) {
    // Fig. 17 mechanism: the datapath throughput tracks the FU budget.
    std::map<unsigned, Cycle> cyclesByMuls;
    for (unsigned muls : {1u, 2u, 4u, 8u}) {
        // Scale the whole datapath (units + ports), as an HLS
        // parallelism pragma would.
        accel::FuConfig fu;
        for (unsigned i = 0; i < isa::kNumFuClasses; ++i)
            fu.counts[i] = std::max(1u, muls / 2);
        fu.counts[static_cast<unsigned>(isa::FuClass::IntAlu)] =
            2 * muls;
        fu.counts[static_cast<unsigned>(isa::FuClass::FpMul)] = muls;
        fu.counts[static_cast<unsigned>(isa::FuClass::FpAlu)] = muls;
        fu.counts[static_cast<unsigned>(isa::FuClass::MemPort)] =
            2 * muls;
        soc::SystemConfig cfg = soc::preset("riscv");
        cfg.cluster.designs.push_back(
            accel::designs::makeGemm(kAccelSpaceBase, &fu));
        workloads::Workload wl = workloads::accelDriver("gemm", 0);
        const isa::Program prog =
            isa::compile(wl.module, isa::IsaKind::RISCV);
        const fi::GoldenRun g = fi::runGolden(cfg, prog);
        cyclesByMuls[muls] = g.windowCycles;
    }
    EXPECT_GT(cyclesByMuls[1], cyclesByMuls[2]);
    EXPECT_GT(cyclesByMuls[2], cyclesByMuls[4]);
    EXPECT_GE(cyclesByMuls[4], cyclesByMuls[8]);
}

TEST(AccelEngine, AreaModelIsMonotoneInUnits) {
    accel::FuConfig small;
    accel::FuConfig big = small;
    for (unsigned i = 0; i < isa::kNumFuClasses; ++i)
        big.counts[i] = small.counts[i] * 2;
    EXPECT_GT(big.area(), small.area());
    accel::AccelDesign d =
        accel::designs::makeGemm(kAccelSpaceBase, &small);
    EXPECT_GT(d.area(), small.area()); // memories add area
}

TEST(AccelMemUnit, RegBankSlowerThanSpm) {
    accel::AccelMem spm("s", 1024, accel::MemKind::Spm);
    accel::AccelMem bank("b", 1024, accel::MemKind::RegBank);
    EXPECT_LT(spm.latency(), bank.latency());
}

TEST(AccelMemUnit, FaultBookkeepingTracksReadsAndWrites) {
    accel::AccelMem mem("m", 256, accel::MemKind::Spm);
    mem.faults().addWatch(2, 5); // word 2, bit 5
    mem.flipBit(2, 5);
    u8 buf[8];
    // Writing the word before reading it neutralizes the fault.
    std::memset(buf, 0xaa, 8);
    mem.write(16, buf, 8);
    EXPECT_TRUE(mem.faults().allNeutralized());
    // A new watch that gets read is not neutralized.
    mem.faults().clear();
    mem.faults().addWatch(3, 0);
    mem.read(24, buf, 8);
    EXPECT_TRUE(mem.faults().anyRead());
    EXPECT_FALSE(mem.faults().allNeutralized());
}

// ====================================================================
// Differential testing: the dataflow engine must compute exactly what
// the MIR interpreter computes, for randomized kernels, across FU
// budgets (resource constraints change timing, never results).
// ====================================================================

namespace {

class FlatSpace : public accel::AccelAddressSpace {
  public:
    explicit FlatSpace(accel::AccelMem* m) : mem(m) {}
    int resolve(Addr addr, u32 len) override {
        return addr >= 0x1000 && mem->inRange(addr - 0x1000, len) ? 0
                                                                  : -1;
    }
    u32 latencyOf(int) override { return mem->latency(); }
    u32 portsOf(int) override { return 4; }
    u64 readMem(int, Addr addr, u32 len) override {
        u64 v = 0;
        mem->read(addr - 0x1000, &v, len);
        return v;
    }
    void writeMem(int, Addr addr, u32 len, u64 v) override {
        mem->write(addr - 0x1000, &v, len);
    }
  private:
    accel::AccelMem* mem;
};

mir::Module randomKernel(u64 seed) {
    Rng rng(seed);
    mir::ModuleBuilder mb;
    mir::FunctionBuilder fb = mb.func("kernel", {});
    mir::VReg base = fb.constI(0x1000);
    // Seed phase: fill 64 words deterministically.
    auto fill = fb.beginLoop(fb.constI(0), fb.constI(64));
    {
        mir::VReg v = fb.add(fb.mulI(fill.idx, 2654435761ll),
                             fb.constI(static_cast<i64>(seed & 0xffff)));
        fb.st8(fb.add(base, fb.shlI(fill.idx, 3)), v);
    }
    fb.endLoop(fill);
    // Mixing phase: random read-modify-write chains.
    auto mixLoop = fb.beginLoop(fb.constI(0), fb.constI(32));
    {
        mir::VReg a = fb.ld8(
            fb.add(base, fb.shlI(fb.band(mixLoop.idx,
                                         fb.constI(63)), 3)));
        mir::VReg b = fb.ld8(
            fb.add(base,
                   fb.shlI(fb.band(fb.addI(mixLoop.idx, 17),
                                   fb.constI(63)), 3)));
        mir::VReg r{};
        switch (rng.below(6)) {
          case 0: r = fb.add(a, b); break;
          case 1: r = fb.sub(a, b); break;
          case 2: r = fb.mul(a, b); break;
          case 3: r = fb.bxor(a, b); break;
          case 4: r = fb.bor(a, fb.shr(b, fb.constI(3))); break;
          default:
            r = fb.select(fb.cmpLt(a, b), a, b);
            break;
        }
        fb.st8(fb.add(base, fb.shlI(fb.band(fb.addI(mixLoop.idx, 5),
                                            fb.constI(63)), 3)),
               r);
    }
    fb.endLoop(mixLoop);
    fb.retVoid();
    mb.setEntry("kernel");
    mir::verify(mb.module());
    return mb.module();
}

} // namespace

TEST(AccelEngine, MatchesInterpreterOnRandomKernels) {
    for (u64 seed = 1; seed <= 8; ++seed) {
        const mir::Module kernel = randomKernel(seed);
        // Interpreter reference (addresses 0x1000.. live in low DRAM).
        const mir::GoldenRun ref = mir::interpretModule(kernel);

        for (unsigned budget : {1u, 4u}) {
            accel::FuConfig fu;
            for (unsigned i = 0; i < isa::kNumFuClasses; ++i)
                fu.counts[i] = budget;
            accel::AccelMem mem("buf", 4096, accel::MemKind::Spm);
            FlatSpace space(&mem);
            accel::DataflowEngine engine(fu);
            engine.start(kernel, kernel.entry, {});
            for (u64 c = 0; c < 2'000'000 && engine.running(); ++c)
                engine.cycle(kernel, space);
            ASSERT_EQ(engine.status(), accel::EngineStatus::Done)
                << "seed " << seed << " budget " << budget;
            for (unsigned w = 0; w < 64; ++w) {
                u64 got = 0;
                std::memcpy(&got, mem.data() + w * 8, 8);
                u64 want = 0;
                std::memcpy(&want, ref.memory.data() + 0x1000 + w * 8,
                            8);
                ASSERT_EQ(got, want)
                    << "seed " << seed << " budget " << budget
                    << " word " << w;
            }
        }
    }
}

TEST(AccelEngine, ResourceBudgetsChangeTimingNotResults) {
    const mir::Module kernel = randomKernel(99);
    Cycle lastCycles = 0;
    for (unsigned budget : {1u, 2u, 8u}) {
        accel::FuConfig fu;
        for (unsigned i = 0; i < isa::kNumFuClasses; ++i)
            fu.counts[i] = budget;
        accel::AccelMem mem("buf", 4096, accel::MemKind::Spm);
        FlatSpace space(&mem);
        accel::DataflowEngine engine(fu);
        engine.start(kernel, kernel.entry, {});
        while (engine.running())
            engine.cycle(kernel, space);
        if (lastCycles)
            EXPECT_LE(engine.cyclesRun(), lastCycles);
        lastCycles = engine.cyclesRun();
    }
}

// ====================================================================
// Systolic engine: the second microarchitecture class. Same MIR GEMM
// workload, same data, different datapath — results must agree with
// the dataflow engine (up to FP association order) and the geometry
// math must hold on awkward tilings.
// ====================================================================

TEST(SystolicParams, GeometryEdgeCases) {
    // Everything divides: no remainder tiles.
    accel::SystolicParams even;
    EXPECT_EQ(even.mTiles(), 4u);
    EXPECT_EQ(even.nTiles(), 8u);
    EXPECT_EQ(even.kTiles(), 8u);
    EXPECT_EQ(even.activeM(3), 16u);
    EXPECT_EQ(even.activeN(7), 8u);
    EXPECT_EQ(even.activeK(7), 8u);
    EXPECT_EQ(even.inBankBytes(), 16u * 8 * 8);
    EXPECT_EQ(even.wBankBytes(), 8u * 8 * 8);
    EXPECT_EQ(even.outBankBytes(), 16u * 8 * 8);

    // Nothing divides: remainder tiles on every axis, non-square
    // problem dims.
    accel::SystolicParams odd;
    odd.rows = 5;
    odd.cols = 7;
    odd.tileM = 9;
    odd.m = 64;
    odd.n = 33;
    odd.k = 50;
    EXPECT_EQ(odd.mTiles(), 8u);   // ceil(64/9)
    EXPECT_EQ(odd.nTiles(), 5u);   // ceil(33/7)
    EXPECT_EQ(odd.kTiles(), 10u);  // ceil(50/5)
    EXPECT_EQ(odd.activeM(7), 1u); // 64 - 7*9
    EXPECT_EQ(odd.activeN(4), 5u); // 33 - 4*7
    EXPECT_EQ(odd.activeK(9), 5u); // 50 divides evenly by 5
    EXPECT_EQ(odd.activeM(0), 9u);
    EXPECT_EQ(odd.inBankBytes(), 9u * 5 * 8);
    EXPECT_EQ(odd.wBankBytes(), 5u * 7 * 8);
    EXPECT_EQ(odd.outBankBytes(), 9u * 7 * 8);

    // A grid larger than the problem: one padded tile per axis.
    accel::SystolicParams wide;
    wide.rows = 16;
    wide.cols = 16;
    wide.tileM = 8;
    wide.m = wide.n = wide.k = 6;
    EXPECT_EQ(wide.mTiles(), 1u);
    EXPECT_EQ(wide.nTiles(), 1u);
    EXPECT_EQ(wide.kTiles(), 1u);
    EXPECT_EQ(wide.activeM(0), 6u);
    EXPECT_EQ(wide.activeN(0), 6u);
    EXPECT_EQ(wide.activeK(0), 6u);
}

TEST(SystolicDesign, ComponentGeometryForBothEngineClasses) {
    // Dataflow GEMM: Table IV flat matrix SPMs.
    accel::AccelDesign df =
        accel::designs::makeByName("gemm", kAccelSpaceBase);
    EXPECT_EQ(df.engineClass, accel::EngineClass::Dataflow);
    const u32 matBytes =
        DesignSizes::gemmDim * DesignSizes::gemmDim * 8;
    {
        accel::ComputeUnit unit(df, kAccelSpaceBase);
        EXPECT_EQ(unit.memoryByName("MATRIX1").size(), matBytes);
    }

    // Systolic GEMM: banks sized from the grid geometry, in the fixed
    // kSys* component order the sequencer indexes by.
    accel::SystolicParams grid;
    grid.rows = 5;
    grid.cols = 7;
    grid.tileM = 9;
    accel::AccelDesign sy =
        accel::designs::makeGemmSystolic(kAccelSpaceBase, &grid);
    EXPECT_EQ(sy.engineClass, accel::EngineClass::Systolic);
    // Problem dims come from the design, not the override.
    EXPECT_EQ(sy.systolic.m, DesignSizes::gemmDim);
    EXPECT_EQ(sy.systolic.k, DesignSizes::gemmDim);
    ASSERT_EQ(sy.components.size(),
              static_cast<std::size_t>(accel::kSysNumComponents));
    EXPECT_EQ(sy.components[accel::kSysIn0].name, "IN0");
    EXPECT_EQ(sy.components[accel::kSysIn0].sizeBytes, 9u * 5 * 8);
    EXPECT_EQ(sy.components[accel::kSysW1].name, "W1");
    EXPECT_EQ(sy.components[accel::kSysW1].sizeBytes, 5u * 7 * 8);
    EXPECT_EQ(sy.components[accel::kSysOut1].sizeBytes, 9u * 7 * 8);
    EXPECT_EQ(sy.components[accel::kSysPeAcc].name, "PE_ACC");
    EXPECT_EQ(sy.components[accel::kSysPeAcc].kind,
              accel::MemKind::RegBank);
    EXPECT_EQ(sy.components[accel::kSysSeq].sizeBytes,
              accel::kSystolicSeqBytes);
    EXPECT_TRUE(sy.dmaIn.empty());
    EXPECT_TRUE(sy.dmaOut.empty());
}

TEST(SystolicSoc, GemmMatchesDataflowGemm) {
    workloads::Workload wl;
    const fi::GoldenRun sy = runSoc("gemm_systolic", &wl);
    const fi::GoldenRun df = runSoc("gemm");
    const auto a = globalBytes(wl.module, "mat_a");
    const auto b = globalBytes(wl.module, "mat_b");
    const u32 dim = DesignSizes::gemmDim;
    ASSERT_EQ(sy.output.size(), df.output.size());
    for (u32 i = 0; i < dim; ++i) {
        for (u32 j = 0; j < dim; ++j) {
            double sum = 0.0;
            for (u32 k = 0; k < dim; ++k)
                sum += f64At(a, i * dim + k) * f64At(b, k * dim + j);
            double gotSy, gotDf;
            std::memcpy(&gotSy, sy.output.data() + (i * dim + j) * 8,
                        8);
            std::memcpy(&gotDf, df.output.data() + (i * dim + j) * 8,
                        8);
            // Both engines accumulate in different FP association
            // orders (8 lanes vs k-tile chains); each must match the
            // serial reference to tolerance.
            ASSERT_NEAR(gotSy, sum, 1e-9)
                << "systolic C[" << i << "][" << j << "]";
            ASSERT_NEAR(gotDf, gotSy, 1e-9)
                << "engines disagree at C[" << i << "][" << j << "]";
        }
    }
    // The two microarchitectures really are different machines.
    EXPECT_NE(sy.windowCycles, df.windowCycles);
}

TEST(SystolicSoc, NonDividingGridMatchesReference) {
    // A 5x7 grid with tileM=9 tiles 64x64x64 with remainders on every
    // axis; built through the [accel] config path so the geometry keys
    // are exercised end-to-end.
    soc::SystemConfig cfg = soc::configFromText(
        "[system]\nisa = riscv\n\n"
        "[accel]\ndesign = gemm_systolic\nrows = 5\ncols = 7\n"
        "tile_m = 9\n");
    ASSERT_EQ(cfg.cluster.designs.size(), 1u);
    EXPECT_EQ(cfg.cluster.designs[0].systolic.rows, 5u);
    // The geometry survives a config round-trip.
    const soc::SystemConfig back =
        soc::configFromText(soc::configToText(cfg));
    EXPECT_EQ(back.cluster.designs[0].systolic.cols, 7u);
    EXPECT_EQ(back.cluster.designs[0].systolic.tileM, 9u);

    workloads::Workload wl = workloads::accelDriver("gemm_systolic", 0);
    const isa::Program prog =
        isa::compile(wl.module, isa::IsaKind::RISCV);
    const fi::GoldenRun g = fi::runGolden(cfg, prog);
    const auto a = globalBytes(wl.module, "mat_a");
    const auto b = globalBytes(wl.module, "mat_b");
    const u32 dim = DesignSizes::gemmDim;
    for (u32 i = 0; i < dim; i += 3) {
        for (u32 j = 0; j < dim; j += 5) {
            double sum = 0.0;
            for (u32 k = 0; k < dim; ++k)
                sum += f64At(a, i * dim + k) * f64At(b, k * dim + j);
            double got;
            std::memcpy(&got, g.output.data() + (i * dim + j) * 8, 8);
            ASSERT_NEAR(got, sum, 1e-9)
                << "C[" << i << "][" << j << "]";
        }
    }
}

TEST(SystolicSoc, StatsSubtreeCountsTheSchedule) {
    soc::SystemConfig cfg = soc::preset("riscv");
    cfg.cluster.designs.push_back(
        accel::designs::makeGemmSystolic(kAccelSpaceBase));
    workloads::Workload wl = workloads::accelDriver("gemm_systolic", 0);
    const isa::Program prog =
        isa::compile(wl.module, isa::IsaKind::RISCV);
    soc::System sys(cfg);
    sys.loadProgram(prog);
    ASSERT_EQ(sys.run(100'000'000), soc::RunExit::Checkpoint);
    ASSERT_EQ(sys.run(100'000'000), soc::RunExit::SwitchCpu);
    ASSERT_EQ(sys.run(100'000'000), soc::RunExit::Exited);
    const stats::Snapshot snap = sys.statsSnapshot();
    auto value = [&](const char* path) {
        const stats::SnapshotEntry* e = snap.find(path);
        EXPECT_NE(e, nullptr) << path;
        return e ? e->value : -1.0;
    };
    const double dim = DesignSizes::gemmDim;
    // 8x8 grid divides 64^3 exactly: every MAC is a real MAC.
    EXPECT_EQ(value("accel.gemm_systolic.systolic.pe_macs"),
              dim * dim * dim);
    EXPECT_EQ(value("accel.gemm_systolic.systolic.tiles_drained"),
              4.0 * 8.0); // mTiles * nTiles
    EXPECT_GT(value("accel.gemm_systolic.systolic.pe_utilization"),
              0.0);
#ifndef MARVEL_STATS_DISABLED
    // DmaEngine uses stats::Counter, which compiles out.
    EXPECT_GT(
        value("accel.gemm_systolic.systolic.dma_in.bytes_moved"), 0.0);
#endif
}

TEST(AccelEngine, OutOfRangeAccessFaults) {
    mir::ModuleBuilder mb;
    mir::FunctionBuilder fb = mb.func("kernel", {});
    fb.st8(fb.constI(0x10000000), fb.constI(1)); // unmapped
    fb.retVoid();
    mb.setEntry("kernel");
    accel::AccelMem mem("buf", 4096, accel::MemKind::Spm);
    FlatSpace space(&mem);
    accel::DataflowEngine engine;
    engine.start(mb.module(), 0, {});
    for (int i = 0; i < 100 && engine.running(); ++i)
        engine.cycle(mb.module(), space);
    EXPECT_EQ(engine.status(), accel::EngineStatus::Fault);
}
