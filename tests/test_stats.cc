/**
 * @file
 * Unit tests for the hierarchical statistics framework: leaf types,
 * group registration, snapshot capture, text/JSON exporters, the
 * golden-vs-faulty diff, and the system-level stats tree.
 */

#include <gtest/gtest.h>

#include "accel/designs/designs.hh"
#include "common/log.hh"
#include "common/memmap.hh"
#include "soc/system.hh"
#include "stats/diff.hh"
#include "stats/stats.hh"
#include "workloads/workloads.hh"

using namespace marvel;

#ifndef MARVEL_STATS_DISABLED

TEST(StatsCounter, IncAndReset) {
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatsDistribution, MomentsAndReset) {
    stats::Distribution d;
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0); // n < 2 reports 0
    d.sample(2.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0); // still n < 2
    d.sample(4.0);
    d.sample(6.0, 2); // weighted sample
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.5);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
    EXPECT_GT(d.stddev(), 0.0);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
}

TEST(StatsDistribution, VarianceClampsCancellation) {
    stats::Distribution d;
    for (int i = 0; i < 1000; ++i)
        d.sample(1e9 + 0.0001);
    EXPECT_GE(d.variance(), 0.0);
}

TEST(StatsHistogram, BucketsAndOutOfRange) {
    stats::Histogram h;
    h.init(0, 10, 5); // width-2 buckets
    h.sample(-1.0);   // underflow
    h.sample(0.0);    // bucket 0
    h.sample(1.999);  // bucket 0
    h.sample(5.0);    // bucket 2
    h.sample(9.999);  // bucket 4
    h.sample(10.0);   // overflow (hi is exclusive)
    h.sample(100.0);  // overflow
    EXPECT_EQ(h.samples(), 7u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    ASSERT_EQ(h.buckets().size(), 5u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 0u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[4], 1u);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(StatsHistogram, ResetPreservesGeometry) {
    stats::Histogram h;
    h.init(0, 8, 4);
    h.sample(3.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[1], 0u);
    EXPECT_DOUBLE_EQ(h.lo(), 0.0);
    EXPECT_DOUBLE_EQ(h.hi(), 8.0);
    h.sample(3.0);
    EXPECT_EQ(h.buckets()[1], 1u);
}

TEST(StatsHistogram, InitRejectsBadGeometry) {
    stats::Histogram h;
    EXPECT_THROW(h.init(4, 4, 2), FatalError);  // empty range
    EXPECT_THROW(h.init(4, 2, 2), FatalError);  // inverted range
    EXPECT_THROW(h.init(0, 10, 0), FatalError); // no buckets
}

TEST(StatsGroup, SnapshotWalksRegistrationOrder) {
    stats::Counter hits, misses;
    stats::Histogram occ;
    occ.init(0, 4, 4);
    hits.inc(10);
    misses.inc(5);
    occ.sample(1.0);

    stats::Group root;
    stats::Group &sys = root.subgroup("system");
    sys.addCounter("hits", &hits, "cache hits");
    sys.addCounter("misses", &misses);
    sys.addFormula(
        "miss_rate",
        [&]() {
            return double(misses.value()) /
                   double(hits.value() + misses.value());
        },
        "miss ratio");
    sys.subgroup("rob").addHistogram("occupancy", &occ);
    // subgroup() must reuse, not duplicate.
    EXPECT_EQ(&sys.subgroup("rob"), &sys.subgroup("rob"));

    const stats::Snapshot snap = stats::Snapshot::capture(root);
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap.entries()[0].path, "system.hits");
    EXPECT_EQ(snap.entries()[1].path, "system.misses");
    EXPECT_EQ(snap.entries()[2].path, "system.miss_rate");
    EXPECT_EQ(snap.entries()[3].path, "system.rob.occupancy");

    const stats::SnapshotEntry *hitsEntry = snap.find("system.hits");
    ASSERT_NE(hitsEntry, nullptr);
    EXPECT_DOUBLE_EQ(hitsEntry->value, 10.0);
    EXPECT_EQ(hitsEntry->desc, "cache hits");
    const stats::SnapshotEntry *rate = snap.find("system.miss_rate");
    ASSERT_NE(rate, nullptr);
    EXPECT_NEAR(rate->value, 5.0 / 15.0, 1e-12);
    EXPECT_EQ(snap.find("system.nope"), nullptr);
}

TEST(StatsGroup, ResetZeroesLeavesRecursively) {
    stats::Counter c;
    stats::Histogram h;
    h.init(0, 4, 2);
    c.inc(7);
    h.sample(1.0);
    stats::Group root;
    root.addCounter("c", &c);
    root.subgroup("sub").addHistogram("h", &h);
    root.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.samples(), 0u);
    ASSERT_EQ(h.buckets().size(), 2u); // geometry survives
}

TEST(StatsExport, TextAndJsonContainEntries) {
    stats::Counter c;
    c.inc(3);
    stats::Histogram h;
    h.init(0, 2, 2);
    h.sample(0.5);
    stats::Group root;
    root.subgroup("sys").addCounter("events", &c, "event count");
    root.subgroup("sys").addHistogram("occ", &h);
    const stats::Snapshot snap = stats::Snapshot::capture(root);

    const std::string text = stats::formatText(snap);
    EXPECT_NE(text.find("sys.events"), std::string::npos);
    EXPECT_NE(text.find("# event count"), std::string::npos);
    EXPECT_NE(text.find("sys.occ::samples"), std::string::npos);

    const std::string json = stats::formatJson(snap);
    EXPECT_EQ(json.find("NaN"), std::string::npos);
    EXPECT_NE(json.find("\"version\":1"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"sys.events\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"histogram\""),
              std::string::npos);
    EXPECT_NE(json.find("\"buckets\":[1,0]"), std::string::npos);
}

TEST(StatsDiff, RanksDivergedFacets) {
    stats::Counter a1, a2, b1, b2;
    a1.inc(100);
    a2.inc(10);
    b1.inc(101); // +1 on a base of 100: small relative shift
    b2.inc(40);  // +30 on a base of 10: large relative shift
    stats::Group ga, gb;
    ga.addCounter("x", &a1);
    ga.addCounter("y", &a2);
    gb.addCounter("x", &b1);
    gb.addCounter("y", &b2);
    const stats::DiffReport report =
        stats::diff(stats::Snapshot::capture(ga),
                    stats::Snapshot::capture(gb));
    EXPECT_FALSE(report.identical());
    EXPECT_EQ(report.unmatched, 0u);
    ASSERT_EQ(report.entries.size(), 2u);
    EXPECT_EQ(report.entries[0].path, "y"); // biggest shift first
    EXPECT_DOUBLE_EQ(report.entries[0].delta, 30.0);
    EXPECT_NE(report.format().find("y"), std::string::npos);
}

TEST(StatsDiff, IdenticalAndUnmatched) {
    stats::Counter a, b, extra;
    a.inc(5);
    b.inc(5);
    stats::Group ga, gb;
    ga.addCounter("x", &a);
    gb.addCounter("x", &b);
    const stats::DiffReport same =
        stats::diff(stats::Snapshot::capture(ga),
                    stats::Snapshot::capture(gb));
    EXPECT_TRUE(same.identical());
    EXPECT_NE(same.format().find("no divergence"),
              std::string::npos);

    gb.addCounter("only_in_faulty", &extra);
    const stats::DiffReport miss =
        stats::diff(stats::Snapshot::capture(ga),
                    stats::Snapshot::capture(gb));
    EXPECT_EQ(miss.unmatched, 1u);
}

TEST(StatsSystem, TreeCoversAllComponents) {
    // A freshly booted SoC must expose the full hierarchy even before
    // running: the tree shape is part of the tool contract.
    soc::SystemConfig cfg;
    cfg.cluster.designs.push_back(
        accel::designs::makeByName("gemm", kAccelSpaceBase));
    soc::System sys(cfg);
    const stats::Snapshot snap = sys.statsSnapshot();
    for (const char *path :
         {"system.total_cycles", "system.cpu.cycles",
          "system.cpu.ipc", "system.cpu.fetch.width_used",
          "system.cpu.rob.occupancy", "system.cpu.int_prf.reads",
          "system.cpu.bpred.mispredicts", "system.l1i.hits",
          "system.l1d.misses", "system.l2.writebacks",
          "accel.gemm.busy_cycles", "accel.gemm.dma.transfers"})
        EXPECT_NE(snap.find(path), nullptr) << path;
}

TEST(StatsSystem, CountersAdvanceAndSurviveCopy) {
    const workloads::Workload wl = workloads::get("sha");
    soc::SystemConfig cfg;
    soc::System sys(cfg);
    sys.loadProgram(isa::compile(wl.module, cfg.cpu.isa));
    for (int i = 0; i < 2000 && !sys.exited; ++i) {
        sys.tick();
        sys.cpu.checkpointRequest = false;
        sys.cpu.switchCpuRequest = false;
    }
    const stats::Snapshot before = sys.statsSnapshot();
    const stats::SnapshotEntry *uops =
        before.find("system.cpu.committed_uops");
    ASSERT_NE(uops, nullptr);
    EXPECT_GT(uops->value, 0.0);

    // Stats are value members: a checkpoint-style copy carries them.
    soc::System copy(sys);
    const stats::Snapshot after = copy.statsSnapshot();
    ASSERT_EQ(before.size(), after.size());
    const stats::SnapshotEntry *copied =
        after.find("system.cpu.committed_uops");
    ASSERT_NE(copied, nullptr);
    EXPECT_DOUBLE_EQ(copied->value, uops->value);
}

#endif // !MARVEL_STATS_DISABLED
