/**
 * @file
 * End-to-end integration: every MiBench workload compiled for every
 * ISA flavor must produce, on the cycle-level CPU, exactly the OUTPUT
 * window and exit code the MIR reference interpreter produces.
 */

#include <gtest/gtest.h>

#include "fi/campaign.hh"
#include "mir/interp.hh"
#include "soc/builder.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace {

struct Case {
    std::string workload;
    isa::IsaKind isa;
};

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
    return info.param.workload + "_" +
           isa::isaName(info.param.isa);
}

std::vector<Case> allCases() {
    std::vector<Case> cases;
    for (const std::string& w : workloads::mibenchNames())
        for (isa::IsaKind kind : isa::kAllIsas)
            cases.push_back({w, kind});
    return cases;
}

} // namespace

class WorkloadIntegration : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadIntegration, CpuMatchesInterpreter) {
    const Case& tc = GetParam();
    workloads::Workload wl = workloads::get(tc.workload);

    // Reference semantics.
    const mir::GoldenRun ref = mir::interpretModule(wl.module);
    ASSERT_FALSE(ref.result.timedOut);

    // Cycle-level execution via the golden-run harness.
    soc::SystemConfig cfg = soc::preset(isa::isaName(tc.isa));
    const isa::Program prog = isa::compile(wl.module, tc.isa);
    const fi::GoldenRun golden = fi::runGolden(cfg, prog);

    EXPECT_EQ(golden.exitCode, ref.result.exitValue);
    ASSERT_EQ(golden.output.size(), ref.output.size());
    EXPECT_TRUE(golden.output == ref.output)
        << "OUTPUT window mismatch for " << tc.workload << " on "
        << isa::isaName(tc.isa);
    EXPECT_GT(golden.windowCycles, 0u);
    EXPECT_GE(golden.totalCycles, golden.windowCycles);
    EXPECT_FALSE(golden.trace.empty());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadIntegration,
                         ::testing::ValuesIn(allCases()), caseName);
