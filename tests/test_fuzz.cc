/**
 * @file
 * Tests for the differential-fuzzing subsystem (src/fuzz): generator
 * determinism and safety, differential clean sweeps, the planted-bug
 * catch-and-shrink loop, the determinism auditor, and reproducer
 * writing.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "fuzz/fuzz.hh"
#include "mir/interp.hh"

using namespace marvel;

namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/** Flip globals in the compiled image: a deterministic "miscompile". */
void
corruptDataImage(isa::Program &program)
{
    for (std::size_t i = 0; i < program.dataImage.size(); i += 7)
        program.dataImage[i] ^= 0x5a;
}

/** Smaller programs for the shrink-heavy tests (cheaper probes). */
fuzz::GenOptions
smallGen()
{
    fuzz::GenOptions gen;
    gen.statements = 10;
    gen.maxCallees = 1;
    return gen;
}

} // namespace

// ---------------------------------------------------------------- generator

TEST(FuzzGen, PureFunctionOfSeed)
{
    const mir::Module a = fuzz::generate(42);
    const mir::Module b = fuzz::generate(42);
    EXPECT_EQ(mir::moduleDigest(a), mir::moduleDigest(b));
    EXPECT_EQ(mir::toString(a), mir::toString(b));

    const mir::Module c = fuzz::generate(43);
    EXPECT_NE(mir::moduleDigest(a), mir::moduleDigest(c));
}

TEST(FuzzGen, ModulesAreVerifierClean)
{
    for (u64 seed = 0; seed < 25; ++seed) {
        const mir::Module module = fuzz::generate(seed);
        std::string error;
        EXPECT_TRUE(mir::checkModule(module, &error))
            << "seed " << seed << ": " << error;
    }
}

TEST(FuzzGen, ModulesInterpretCleanly)
{
    // Safety rules must hold functionally: no division traps, no
    // out-of-bounds accesses, and termination well under the budget.
    for (u64 seed = 0; seed < 15; ++seed) {
        const mir::GoldenRun run =
            mir::interpretModule(fuzz::generate(seed), {}, 1'000'000);
        EXPECT_FALSE(run.result.timedOut) << "seed " << seed;
    }
}

TEST(FuzzGen, OptionsProduceLeanPrograms)
{
    fuzz::GenOptions gen;
    gen.statements = 4;
    gen.maxCallees = 0;
    gen.floats = false;
    gen.memory = false;
    gen.calls = false;
    gen.loops = false;
    gen.branches = false;
    gen.magicWindow = false;
    const mir::Module module = fuzz::generate(7, gen);
    EXPECT_EQ(module.functions.size(), 1u);
    for (const mir::Function &fn : module.functions)
        for (const mir::Block &block : fn.blocks)
            for (const mir::Inst &inst : block.insts) {
                EXPECT_NE(inst.op, mir::Op::Call);
                EXPECT_NE(inst.op, mir::Op::Checkpoint);
                EXPECT_FALSE(mir::isFloatOp(inst.op));
            }
}

// ------------------------------------------------------------- differential

TEST(FuzzDiff, CleanSweepAllFlavors)
{
    for (u64 seed = 0; seed < 4; ++seed) {
        const mir::Module module = fuzz::generate(seed);
        const fuzz::DiffResult result = fuzz::runDifferential(module);
        EXPECT_FALSE(result.interpTimedOut) << "seed " << seed;
        for (const fuzz::Divergence &d : result.divergences)
            ADD_FAILURE()
                << "seed " << seed << ": " << d.toString();
    }
}

TEST(FuzzDiff, DeterministicRerunsAreIdentical)
{
    fuzz::DiffOptions options;
    options.checkDeterminism = true;
    options.flavors = {isa::IsaKind::RISCV};
    const fuzz::DiffResult result =
        fuzz::runDifferential(fuzz::generate(5), options);
    EXPECT_TRUE(result.clean());
}

TEST(FuzzDiff, PlantedMiscompileIsCaught)
{
    // A corrupted data image makes the CPU program observe different
    // global contents than the reference run: some seed in a small
    // range must expose it as an output/exit divergence.
    fuzz::DiffOptions options;
    options.programHook = corruptDataImage;
    options.flavors = {isa::IsaKind::RISCV};
    bool caught = false;
    for (u64 seed = 0; seed < 10 && !caught; ++seed) {
        const fuzz::DiffResult result =
            fuzz::runDifferential(fuzz::generate(seed), options);
        caught = !result.divergences.empty();
    }
    EXPECT_TRUE(caught);
}

// ------------------------------------------------------------------ shrinker

TEST(FuzzShrink, MinimizesPlantedFailure)
{
    fuzz::DiffOptions options;
    options.programHook = corruptDataImage;
    options.flavors = {isa::IsaKind::RISCV};

    mir::Module failing;
    bool found = false;
    for (u64 seed = 0; seed < 10 && !found; ++seed) {
        failing = fuzz::generate(seed, smallGen());
        found = !fuzz::runDifferential(failing, options)
                     .divergences.empty();
    }
    ASSERT_TRUE(found);

    const auto predicate = [&](const mir::Module &cand) {
        return !fuzz::runDifferential(cand, options)
                    .divergences.empty();
    };
    const fuzz::ShrinkResult shrunk = fuzz::shrink(
        failing, predicate, fuzz::ShrinkOptions{.maxRounds = 2});

    EXPECT_LT(fuzz::countInsts(shrunk.module),
              fuzz::countInsts(failing));
    EXPECT_TRUE(mir::checkModule(shrunk.module));
    EXPECT_TRUE(predicate(shrunk.module)); // failure preserved
    EXPECT_GT(shrunk.attempts, 0u);
}

TEST(FuzzShrink, FatalingPredicateRejectsCandidate)
{
    // A predicate that fatal()s must reject the candidate, not
    // propagate: shrinking ends with the original module intact.
    const mir::Module module = fuzz::generate(3);
    unsigned calls = 0;
    const fuzz::ShrinkResult result = fuzz::shrink(
        module,
        [&](const mir::Module &) -> bool {
            ++calls;
            fatal("predicate harness failure");
        },
        fuzz::ShrinkOptions{.maxRounds = 1});
    EXPECT_GT(calls, 0u);
    EXPECT_EQ(mir::moduleDigest(result.module),
              mir::moduleDigest(module));
}

// --------------------------------------------------------------------- audit

TEST(FuzzAudit, CleanOnHealthyPipeline)
{
    fuzz::AuditOptions options;
    options.flavors = {isa::IsaKind::RISCV, isa::IsaKind::X86};
    options.faultsPerIsa = 2;
    const fuzz::AuditResult result =
        fuzz::auditDeterminism(fuzz::generate(1), 1, options);
    for (const fuzz::AuditFailure &f : result.failures)
        ADD_FAILURE() << f.toString();
}

TEST(FuzzAudit, EarlyStopAuditsCleanWithALadder)
{
    fuzz::AuditOptions options;
    options.flavors = {isa::IsaKind::RISCV};
    options.faultsPerIsa = 2;
    options.ladderRungs = 4;
    options.earlyStop = true;
    const fuzz::AuditResult result =
        fuzz::auditDeterminism(fuzz::generate(1), 1, options);
    for (const fuzz::AuditFailure &f : result.failures)
        ADD_FAILURE() << f.toString();
}

// -------------------------------------------------------------------- driver

TEST(FuzzDriver, CleanRangeReportsClean)
{
    fuzz::FuzzOptions options;
    options.seedBegin = 0;
    options.seedEnd = 3;
    options.outDir.clear();
    options.auditEvery = 0;
    const fuzz::FuzzSummary summary = fuzz::runFuzz(options);
    EXPECT_EQ(summary.ran + summary.skipped, 3u);
    EXPECT_TRUE(summary.clean());
}

TEST(FuzzDriver, ParallelAndSerialSummariesMatch)
{
    fuzz::FuzzOptions options;
    options.seedBegin = 10;
    options.seedEnd = 14;
    options.outDir.clear();
    options.auditEvery = 0;
    options.threads = 1;
    const fuzz::FuzzSummary serial = fuzz::runFuzz(options);
    options.threads = 4;
    const fuzz::FuzzSummary parallel = fuzz::runFuzz(options);
    EXPECT_EQ(serial.ran, parallel.ran);
    EXPECT_EQ(serial.skipped, parallel.skipped);
    EXPECT_EQ(serial.failures.size(), parallel.failures.size());
}

TEST(FuzzDriver, WritesReproducerForFailure)
{
    const std::string outDir = tmpPath("fuzz_repro");
    std::filesystem::remove_all(outDir);

    fuzz::FuzzOptions options;
    options.outDir = outDir;
    options.auditEvery = 0;
    options.gen = smallGen();
    options.diff.programHook = corruptDataImage;
    options.diff.flavors = {isa::IsaKind::RISCV};
    options.shrinkOpts.maxRounds = 2;

    // Locate one failing seed cheaply, then sweep just that seed:
    // shrinking every failing seed in a wide range costs minutes.
    u64 failSeed = 0;
    bool found = false;
    for (u64 seed = 0; seed < 10 && !found; ++seed) {
        found = !fuzz::runDifferential(fuzz::generate(seed,
                                                      options.gen),
                                       options.diff)
                     .divergences.empty();
        if (found)
            failSeed = seed;
    }
    ASSERT_TRUE(found);
    options.seedBegin = failSeed;
    options.seedEnd = failSeed + 1;
    const fuzz::FuzzSummary summary = fuzz::runFuzz(options);
    ASSERT_FALSE(summary.failures.empty());

    const fuzz::FuzzFailure &failure = summary.failures.front();
    ASSERT_FALSE(failure.reproPath.empty());
    std::ifstream in(failure.reproPath);
    ASSERT_TRUE(in.good());
    std::stringstream text;
    text << in.rdbuf();
    EXPECT_NE(text.str().find("seed: " +
                              std::to_string(failure.seed)),
              std::string::npos);
    EXPECT_NE(text.str().find("replay: marvel-fuzz --seeds"),
              std::string::npos);
    EXPECT_NE(text.str().find("func main"), std::string::npos);
    // The minimized module must be substantially smaller.
    EXPECT_TRUE(failure.wasShrunk);
    EXPECT_LT(failure.shrunkInsts, failure.originalInsts);
}
