/**
 * @file
 * Distributed-dispatch tests:
 *  - frame codec: roundtrip under arbitrary re-segmentation, poison
 *    on malformed headers;
 *  - endpoint grammar, protocol message roundtrips, backoff jitter;
 *  - RangeQueue / LeaseManager: grant, expiry on a silent holder,
 *    re-enqueue of only the unfinished slice, completion by a second
 *    worker, release on disconnect, adoption from a persisted table;
 *  - lease-table persistence roundtrip;
 *  - end to end: an in-process daemon on a unix socket plus two
 *    worker loops, one abandoning its connection mid-lease, must
 *    leave a journal whose canonical form is byte-identical to a
 *    single-process run of the same campaign;
 *  - daemon restart: a daemon started over an existing journal and
 *    lease table resumes mid-campaign, does not re-grant the adopted
 *    range until its TTL passes, and completes without a single
 *    duplicate verdict.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "net/daemon.hh"
#include "net/frame.hh"
#include "net/lease.hh"
#include "net/protocol.hh"
#include "net/socket.hh"
#include "net/worker.hh"
#include "obs/openmetrics.hh"
#include "sched/rangequeue.hh"
#include "sched/scheduler.hh"
#include "soc/builder.hh"
#include "store/journal.hh"
#include "store/leasetab.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace {

std::string tmpPath(const std::string& name) {
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
}

const fi::GoldenRun& sharedGolden() {
    static const fi::GoldenRun golden = [] {
        const workloads::Workload wl = workloads::get("crc32");
        soc::SystemConfig cfg = soc::preset("riscv");
        return fi::runGolden(
            cfg, isa::compile(wl.module, isa::IsaKind::RISCV));
    }();
    return golden;
}

fi::CampaignOptions baseOptions() {
    fi::CampaignOptions opts;
    opts.numFaults = 36;
    opts.seed = 424242;
    opts.threads = 2;
    opts.workloadName = "crc32";
    return opts;
}

store::JournalMeta metaFor(const fi::CampaignOptions& opts) {
    const fi::GoldenRun& golden = sharedGolden();
    const fi::TargetRef target{fi::TargetId::PrfInt};
    const fi::TargetInfo info =
        fi::targetInfo(golden.checkpoint.view(), target);
    return sched::journalMetaFor(golden, info, opts);
}

/** Canonicalize `journal` and return the canonical file's bytes. */
std::string canonicalBytes(const std::string& journalPath,
                           const std::string& outName) {
    const store::Journal journal = store::readJournal(journalPath);
    const std::string out = tmpPath(outName);
    store::writeCanonicalJournal(out, journal.meta, journal.verdicts);
    return slurp(out);
}

}  // namespace

// --- framing ---------------------------------------------------------------

TEST(Frame, RoundTripsUnderReSegmentation) {
    std::string wire;
    net::encodeFrame({net::MsgType::Hello, "first"}, wire);
    net::encodeFrame({net::MsgType::NoWork, ""}, wire);
    net::encodeFrame({net::MsgType::VerdictChunk, "a\nb\nc\n"}, wire);

    // Feed the stream one byte at a time — the cruellest segmentation
    // TCP can legally produce.
    net::FrameReader reader;
    std::vector<net::Frame> got;
    for (char byte : wire) {
        reader.feed(&byte, 1);
        net::Frame frame;
        while (reader.next(frame))
            got.push_back(frame);
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].type, net::MsgType::Hello);
    EXPECT_EQ(got[0].payload, "first");
    EXPECT_EQ(got[1].type, net::MsgType::NoWork);
    EXPECT_EQ(got[1].payload, "");
    EXPECT_EQ(got[2].type, net::MsgType::VerdictChunk);
    EXPECT_EQ(got[2].payload, "a\nb\nc\n");
    EXPECT_FALSE(reader.poisoned());
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Frame, PoisonsOnWrongProtocolVersion) {
    std::string wire;
    net::encodeFrame({net::MsgType::Hello, "x"}, wire);
    wire[6] = 2;  // version field low byte

    net::FrameReader reader;
    reader.feed(wire.data(), wire.size());
    net::Frame frame;
    EXPECT_FALSE(reader.next(frame));
    EXPECT_TRUE(reader.poisoned());
    // Poison is permanent: a good frame after the bad one stays stuck.
    std::string good;
    net::encodeFrame({net::MsgType::Bye, ""}, good);
    reader.feed(good.data(), good.size());
    EXPECT_FALSE(reader.next(frame));
}

TEST(Frame, PoisonsOnOversizedPayload) {
    std::string wire;
    net::encodeFrame({net::MsgType::Hello, "x"}, wire);
    const u32 huge = net::kMaxFramePayload + 1;
    std::memcpy(&wire[0], &huge, sizeof(huge));

    net::FrameReader reader;
    reader.feed(wire.data(), wire.size());
    net::Frame frame;
    EXPECT_FALSE(reader.next(frame));
    EXPECT_TRUE(reader.poisoned());
}

TEST(Frame, EncodeRefusesOversizedPayload) {
    // An oversized frame must die at the sender: the receiver would
    // poison its stream, the sender would reconnect and re-send the
    // same frame, and the pair would livelock forever.
    net::Frame frame;
    frame.type = net::MsgType::VerdictChunk;
    frame.payload.assign(net::kMaxFramePayload + 1, 'v');
    std::string wire;
    EXPECT_THROW(net::encodeFrame(frame, wire), FatalError);
    EXPECT_TRUE(wire.empty());

    // At exactly the limit the frame is legal on both ends.
    frame.payload.assign(net::kMaxFramePayload, 'v');
    net::encodeFrame(frame, wire);
    net::FrameReader reader;
    reader.feed(wire.data(), wire.size());
    net::Frame got;
    EXPECT_TRUE(reader.next(got));
    EXPECT_FALSE(reader.poisoned());
    EXPECT_EQ(got.payload.size(), net::kMaxFramePayload);
}

// --- endpoints and protocol messages ---------------------------------------

TEST(Socket, ParsesEndpointGrammar) {
    const net::Endpoint unix_ = net::parseEndpoint("unix:/tmp/m.sock");
    EXPECT_TRUE(unix_.isUnix);
    EXPECT_EQ(unix_.path, "/tmp/m.sock");
    EXPECT_EQ(unix_.str(), "unix:/tmp/m.sock");

    const net::Endpoint tcp = net::parseEndpoint("node7:9009");
    EXPECT_FALSE(tcp.isUnix);
    EXPECT_EQ(tcp.host, "node7");
    EXPECT_EQ(tcp.port, 9009);

    EXPECT_EQ(net::parseEndpoint("localhost:0").port, 0);

    EXPECT_THROW(net::parseEndpoint("unix:"), FatalError);
    EXPECT_THROW(net::parseEndpoint("noport"), FatalError);
    EXPECT_THROW(net::parseEndpoint("host:"), FatalError);
    EXPECT_THROW(net::parseEndpoint("host:notanumber"), FatalError);
    EXPECT_THROW(net::parseEndpoint("host:70000"), FatalError);
}

TEST(Socket, ListenRefusesLiveUnixSocketButReplacesStale) {
    const net::Endpoint ep =
        net::parseEndpoint("unix:" + tmpPath("net_listen.sock"));

    // First daemon owns the path; a second must not silently steal it.
    const int first = net::listenOn(ep);
    ASSERT_GE(first, 0);
    EXPECT_THROW(net::listenOn(ep), FatalError);

    // Once the owner is gone the leftover socket file is stale and a
    // new daemon replaces it.
    ::close(first);
    const int second = net::listenOn(ep);
    EXPECT_GE(second, 0);
    ::close(second);
    ::unlink(ep.path.c_str());
}

TEST(Protocol, MessagesRoundTrip) {
    net::Hello hello{"w7", "0.2.0"}, hello2;
    ASSERT_TRUE(net::decodeHello(net::encodeHello(hello), hello2));
    EXPECT_EQ(hello2.worker, "w7");
    EXPECT_EQ(hello2.version, "0.2.0");

    net::HelloAck ack, ack2;
    ack.meta = metaFor(baseOptions());
    ack.ttlMillis = 1234;
    ack.chunk = 9;
    ASSERT_TRUE(net::decodeHelloAck(net::encodeHelloAck(ack), ack2));
    EXPECT_EQ(ack2.meta, ack.meta);
    EXPECT_EQ(ack2.ttlMillis, 1234u);
    EXPECT_EQ(ack2.chunk, 9u);

    u64 max = 0;
    ASSERT_TRUE(
        net::decodeLeaseRequest(net::encodeLeaseRequest(5), max));
    EXPECT_EQ(max, 5u);

    net::LeaseGrant grant{3, {10, 18}, 777}, grant2;
    ASSERT_TRUE(
        net::decodeLeaseGrant(net::encodeLeaseGrant(grant), grant2));
    EXPECT_EQ(grant2.lease, 3u);
    EXPECT_EQ(grant2.range, (sched::IndexRange{10, 18}));
    EXPECT_EQ(grant2.ttlMillis, 777u);

    net::NoWork none{true, 4}, none2;
    ASSERT_TRUE(net::decodeNoWork(net::encodeNoWork(none), none2));
    EXPECT_TRUE(none2.complete);
    EXPECT_EQ(none2.pending, 4u);

    u64 lease = 0;
    ASSERT_TRUE(net::decodeLeaseDone(net::encodeLeaseDone(11), lease));
    EXPECT_EQ(lease, 11u);

    net::LeaseAck la{11, true}, la2;
    ASSERT_TRUE(net::decodeLeaseAck(net::encodeLeaseAck(la), la2));
    EXPECT_EQ(la2.lease, 11u);
    EXPECT_TRUE(la2.ok);

    std::string msg;
    ASSERT_TRUE(net::decodeError(net::encodeError("nope"), msg));
    EXPECT_EQ(msg, "nope");

    EXPECT_FALSE(net::decodeHello("not json", hello2));
    EXPECT_FALSE(net::decodeLeaseGrant("{}", grant2));
}

TEST(Protocol, VerdictChunkRejectsLyingCount) {
    // The count field comes off the wire; a header claiming more
    // verdicts than the payload could possibly hold must be rejected
    // before any allocation is sized from it.
    net::VerdictChunk out;
    EXPECT_FALSE(net::decodeVerdictChunk(
        "{\"lease\":1,\"count\":1152921504606846976}", out));
    EXPECT_FALSE(net::decodeVerdictChunk(
        "{\"lease\":1,\"count\":40}\n0 Masked", out));
    EXPECT_TRUE(out.verdicts.empty());

    // An honest chunk still round-trips.
    net::VerdictChunk in;
    in.lease = 7;
    fi::RunVerdict masked;
    fi::RunVerdict sdc;
    sdc.outcome = fi::Outcome::SDC;
    sdc.cyclesRun = 42;
    in.verdicts.push_back({0, masked});
    in.verdicts.push_back({1, sdc});
    ASSERT_TRUE(
        net::decodeVerdictChunk(net::encodeVerdictChunk(in), out));
    EXPECT_EQ(out.lease, 7u);
    ASSERT_EQ(out.verdicts.size(), 2u);
    EXPECT_EQ(out.verdicts[1].verdict.outcome, fi::Outcome::SDC);
    EXPECT_EQ(out.verdicts[1].verdict.cyclesRun, 42u);
}

TEST(Worker, BackoffIsDeterministicJitteredAndCapped) {
    // Same (name, attempt) always yields the same delay; different
    // names diverge (that is the point of the jitter).
    const u64 a0 = net::backoffDelayMillis("w0", 3, 50, 2000);
    EXPECT_EQ(a0, net::backoffDelayMillis("w0", 3, 50, 2000));
    bool anyDifferent = false;
    for (unsigned attempt = 0; attempt < 8; ++attempt)
        anyDifferent |=
            net::backoffDelayMillis("w0", attempt, 50, 2000) !=
            net::backoffDelayMillis("w1", attempt, 50, 2000);
    EXPECT_TRUE(anyDifferent);

    // Every delay lands in [window/2, window] with the window
    // doubling from base and saturating at the cap.
    for (unsigned attempt = 0; attempt < 12; ++attempt) {
        u64 window = 50;
        for (unsigned i = 0; i < attempt && window < 2000; ++i)
            window *= 2;
        if (window > 2000)
            window = 2000;
        const u64 delay =
            net::backoffDelayMillis("w0", attempt, 50, 2000);
        EXPECT_GE(delay, window / 2) << "attempt " << attempt;
        EXPECT_LE(delay, window) << "attempt " << attempt;
    }
}

// --- range pool and lease lifecycle ----------------------------------------

TEST(RangeQueue, PendingRangesCoalesceAroundDoneBitmap) {
    const std::vector<u8> done = {0, 1, 1, 0, 0, 0, 1, 0};
    const auto ranges = sched::pendingRanges(8, done);
    ASSERT_EQ(ranges.size(), 3u);
    EXPECT_EQ(ranges[0], (sched::IndexRange{0, 1}));
    EXPECT_EQ(ranges[1], (sched::IndexRange{3, 6}));
    EXPECT_EQ(ranges[2], (sched::IndexRange{7, 8}));
    // A short bitmap means the tail is all pending.
    EXPECT_EQ(sched::pendingRanges(4, {1}).front(),
              (sched::IndexRange{1, 4}));
}

TEST(RangeQueue, AcquireSplitsAndRequeueCoalesces) {
    sched::RangeQueue queue({{0, 10}});
    const auto first = queue.acquire(4);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, (sched::IndexRange{0, 4}));
    EXPECT_EQ(queue.pendingCount(), 6u);

    // maxSize 0 takes the whole front range.
    const auto rest = queue.acquire(0);
    ASSERT_TRUE(rest.has_value());
    EXPECT_EQ(*rest, (sched::IndexRange{4, 10}));
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(queue.acquire(1).has_value());

    // Requeue out of order: both sides coalesce back into one range.
    queue.requeue({4, 10});
    queue.requeue({0, 4});
    EXPECT_EQ(queue.rangeCount(), 1u);
    EXPECT_EQ(*queue.acquire(0), (sched::IndexRange{0, 10}));
}

TEST(Lease, GrantExpiryRequeueThenSecondWorkerCompletes) {
    // The satellite scenario end to end at the state-machine level:
    // grant to w1 -> w1 goes silent -> TTL expiry re-enqueues only
    // the unfinished slice -> w2 is granted it and completes.
    net::LeaseManager mgr(10, 100);
    mgr.seed({});

    const auto lease = mgr.grant("w1", 4, 0);
    ASSERT_TRUE(lease.has_value());
    EXPECT_EQ(lease->range, (sched::IndexRange{0, 4}));
    EXPECT_TRUE(mgr.isActive(lease->id));

    // Two verdicts arrive, then silence.
    EXPECT_TRUE(mgr.recordVerdict(0));
    EXPECT_TRUE(mgr.recordVerdict(1));
    EXPECT_FALSE(mgr.recordVerdict(1));  // duplicate is not fresh

    // Touch keeps it alive past the original deadline...
    mgr.touch(lease->id, 80);
    EXPECT_TRUE(mgr.expire(120).empty());
    // ...but not forever.
    const auto expired = mgr.expire(181);
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0].id, lease->id);
    EXPECT_FALSE(mgr.isActive(lease->id));
    EXPECT_EQ(mgr.statExpired, 1u);
    // Only indices 2..3 re-queued; 0..1 stay done.
    EXPECT_EQ(mgr.statRequeuedIndices, 2u);
    EXPECT_EQ(mgr.doneCount(), 2u);
    EXPECT_EQ(mgr.queuedCount(), 8u);

    // A late LeaseDone from the silent worker is refused (the range
    // is already back in the pool) and changes nothing.
    EXPECT_FALSE(mgr.complete(lease->id));

    // w2 takes over everything and finishes the campaign.
    while (const auto next = mgr.grant("w2", 0, 200)) {
        for (u64 i = next->range.begin; i < next->range.end; ++i)
            mgr.recordVerdict(i);
        EXPECT_TRUE(mgr.complete(next->id));
    }
    EXPECT_TRUE(mgr.allDone());
    EXPECT_EQ(mgr.activeCount(), 0u);
    EXPECT_EQ(mgr.statCompleted, mgr.statGranted - 1);
}

TEST(Lease, ReleaseOnDisconnectAndCompleteRequeuesUnfinished) {
    net::LeaseManager mgr(12, 1000);
    mgr.seed({});
    const auto a = mgr.grant("w1", 4, 0);
    const auto b = mgr.grant("w1", 4, 0);
    const auto c = mgr.grant("w2", 4, 0);
    ASSERT_TRUE(a && b && c);

    // w1's connection drops: both its leases release immediately, no
    // TTL wait; w2's lease is untouched.
    const auto released = mgr.release("w1");
    EXPECT_EQ(released.size(), 2u);
    EXPECT_EQ(mgr.statReleased, 2u);
    EXPECT_FALSE(mgr.isActive(a->id));
    EXPECT_TRUE(mgr.isActive(c->id));
    EXPECT_EQ(mgr.queuedCount(), 8u);

    // A compliant worker that completes with holes gets the holes
    // re-queued (complete() still succeeds — the lease existed).
    mgr.recordVerdict(c->range.begin);
    EXPECT_TRUE(mgr.complete(c->id));
    EXPECT_EQ(mgr.queuedCount(), 11u);
    EXPECT_EQ(mgr.nextDeadline(), std::nullopt);
}

TEST(Lease, AdoptCarvesPersistedLeasesOutOfThePool) {
    net::LeaseManager mgr(20, 500);
    std::vector<u8> done(20, 0);
    done[2] = 1;  // journaled before the previous daemon died
    mgr.seed(done);

    store::LeaseTable table;
    table.nextId = 8;
    table.active.push_back({5, 4, 8, "ghost"});
    mgr.adopt(table, 1000);
    EXPECT_TRUE(mgr.isActive(5));
    EXPECT_EQ(mgr.doneCount(), 1u);
    // 20 - 1 done - 4 adopted = 15 grantable right now.
    EXPECT_EQ(mgr.queuedCount(), 15u);
    // Adopted leases get a full TTL from "now".
    ASSERT_TRUE(mgr.nextDeadline().has_value());
    EXPECT_EQ(*mgr.nextDeadline(), 1500u);

    // No grant may overlap the adopted range while it is active.
    while (const auto g = mgr.grant("w", 0, 1000)) {
        EXPECT_TRUE(g->range.end <= 4 || g->range.begin >= 8)
            << "[" << g->range.begin << "," << g->range.end << ")";
        EXPECT_FALSE(g->range.contains(2));
        // Fresh ids continue above the persisted nextId.
        EXPECT_GE(g->id, 8u);
        for (u64 i = g->range.begin; i < g->range.end; ++i)
            mgr.recordVerdict(i);
        EXPECT_TRUE(mgr.complete(g->id));
    }
    EXPECT_EQ(mgr.pendingCount(), 4u);  // only the ghost's range left

    // Expiry returns the adopted range to the pool like any other.
    const auto expired = mgr.expire(1501);
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0].range, (sched::IndexRange{4, 8}));
    EXPECT_EQ(mgr.queuedCount(), 4u);
}

TEST(LeaseTab, RoundTripsAndToleratesMissingFile) {
    const std::string path = tmpPath("net_leases.jsonl");
    store::LeaseTable table;
    EXPECT_FALSE(store::loadLeaseTable(path, table));

    table.nextId = 42;
    table.active.push_back({7, 0, 8, "w0"});
    table.active.push_back({9, 16, 24, "w1"});
    store::saveLeaseTable(path, table);

    store::LeaseTable loaded;
    ASSERT_TRUE(store::loadLeaseTable(path, loaded));
    EXPECT_EQ(loaded, table);

    // The save is atomic: no temp file litter.
    EXPECT_EQ(slurp(path + ".tmp"), "");

    // Corruption is fatal, not silently dropped leases.
    spit(path, "{\"type\":\"lease\",\"id\":");
    EXPECT_THROW(store::loadLeaseTable(path, loaded), FatalError);
}

TEST(LeaseManager, SnapshotRoundTripsThroughLeaseTable) {
    net::LeaseManager mgr(16, 300);
    mgr.seed({});
    const auto a = mgr.grant("w0", 4, 0);
    const auto b = mgr.grant("w1", 4, 0);
    ASSERT_TRUE(a && b);
    mgr.recordVerdict(0);

    const std::string path = tmpPath("net_snapshot.leases");
    store::saveLeaseTable(path, mgr.snapshot());
    store::LeaseTable loaded;
    ASSERT_TRUE(store::loadLeaseTable(path, loaded));
    ASSERT_EQ(loaded.active.size(), 2u);

    // A second manager adopting the snapshot agrees on what is
    // promised and what is free.
    net::LeaseManager next(16, 300);
    next.seed({1});  // index 0's verdict was journaled
    next.adopt(loaded, 0);
    EXPECT_EQ(next.activeCount(), 2u);
    EXPECT_TRUE(next.isActive(a->id));
    EXPECT_TRUE(next.isActive(b->id));
    EXPECT_EQ(next.queuedCount(), 16u - 1 - 7);  // [1,4) shrank
}

// --- end to end over a unix socket -----------------------------------------

TEST(Dispatch, TwoWorkersOneKilledMidLeaseMatchSingleProcessRun) {
    const fi::GoldenRun& golden = sharedGolden();
    const fi::TargetRef target{fi::TargetId::PrfInt};
    fi::CampaignOptions copts = baseOptions();

    // The reference: one ordinary single-process journaled campaign.
    const std::string refPath = tmpPath("net_ref.jsonl");
    copts.journalPath = refPath;
    sched::runCampaign(golden, target, copts);

    // The distributed run: daemon on a unix socket, two workers, the
    // first abandoning its connection mid-lease (the test hook stands
    // in for kill -9; the daemon sees a dead connection either way).
    const std::string distPath = tmpPath("net_dist.jsonl");
    std::remove((distPath + ".leases").c_str());
    std::remove((distPath + ".progress").c_str());
    net::DaemonConfig dcfg;
    dcfg.endpoint = net::parseEndpoint(
        "unix:" + tmpPath("net_dispatch.sock"));
    dcfg.journalPath = distPath;
    fi::CampaignOptions dopts = baseOptions();
    dopts.journalPath.clear();
    dcfg.meta = metaFor(dopts);
    dcfg.ttlMillis = 5000;
    dcfg.maxLeaseFaults = 5;
    dcfg.chunk = 3;
    dcfg.heartbeatMillis = 50;

    net::Daemon daemon(dcfg);
    daemon.start();
    std::thread daemonThread([&] { daemon.run(); });

    const net::GoldenSource goldenFor =
        [&](const store::JournalMeta&) -> const fi::GoldenRun& {
        return golden;
    };
    net::WorkerConfig w1;
    w1.endpoint = dcfg.endpoint;
    w1.name = "w1";
    w1.abandonAfterVerdicts = 7;  // dies inside its second lease
    net::WorkerConfig w2;
    w2.endpoint = dcfg.endpoint;
    w2.name = "w2";
    w2.idlePollMillis = 20;

    net::WorkerReport r1, r2;
    std::thread t1([&] { r1 = net::runWorker(w1, goldenFor); });
    std::thread t2([&] { r2 = net::runWorker(w2, goldenFor); });
    t1.join();
    t2.join();
    daemonThread.join();

    EXPECT_TRUE(r1.abandoned);
    EXPECT_FALSE(r1.campaignComplete);
    EXPECT_TRUE(r2.campaignComplete);
    EXPECT_TRUE(daemon.complete());
    // The abandoned connection released its lease for re-granting.
    EXPECT_GE(daemon.telemetry().leasesRequeued, 1u);
    EXPECT_EQ(daemon.telemetry().verdictsIngested,
              baseOptions().numFaults);

    // The acceptance bar: canonical forms are byte-identical.
    const std::string refCanon =
        canonicalBytes(refPath, "net_ref_canon.jsonl");
    const std::string distCanon =
        canonicalBytes(distPath, "net_dist_canon.jsonl");
    ASSERT_FALSE(refCanon.empty());
    EXPECT_EQ(distCanon, refCanon);

    // Canonicalization is a fixpoint: canonical(canonical(x)) == x.
    const std::string refcPath = tmpPath("net_refc.jsonl");
    spit(refcPath, refCanon);
    EXPECT_EQ(canonicalBytes(refcPath, "net_refc2.jsonl"), refCanon);
}

TEST(Dispatch, DaemonRestartAdoptsLeasesWithoutDoubleCompleting) {
    const fi::GoldenRun& golden = sharedGolden();
    const fi::TargetRef target{fi::TargetId::PrfInt};

    // Reference run, single-threaded so its journal holds indices in
    // ascending order — its prefix seeds the "previous daemon's"
    // journal below.
    fi::CampaignOptions copts = baseOptions();
    copts.threads = 1;
    const std::string refPath = tmpPath("net_restart_ref.jsonl");
    copts.journalPath = refPath;
    sched::runCampaign(golden, target, copts);

    // Fabricate the crash site: a journal holding verdicts 0..11 and
    // a lease table promising [12,18) to a worker that no longer
    // exists. That is exactly what a daemon killed mid-campaign
    // leaves on disk.
    const std::string distPath = tmpPath("net_restart.jsonl");
    std::remove((distPath + ".progress").c_str());
    {
        // Meta line plus the first 12 verdict lines; chunk markers
        // are irrelevant (resume never trusts them for correctness).
        const std::string ref = slurp(refPath);
        std::string prefix;
        std::size_t pos = 0;
        int verdicts = 0;
        bool keptMeta = false;
        while (pos < ref.size() && verdicts < 12) {
            const std::size_t eol = ref.find('\n', pos);
            ASSERT_NE(eol, std::string::npos);
            const std::string line = ref.substr(pos, eol + 1 - pos);
            pos = eol + 1;
            if (!keptMeta) {
                prefix += line;  // the meta record is always first
                keptMeta = true;
            } else if (line.find("\"type\":\"verdict\"") !=
                       std::string::npos) {
                prefix += line;
                ++verdicts;
            }
        }
        ASSERT_EQ(verdicts, 12);
        spit(distPath, prefix);
    }
    store::LeaseTable table;
    table.nextId = 8;
    table.active.push_back({7, 12, 18, "ghost"});
    store::saveLeaseTable(store::leaseTablePath(distPath), table);

    net::DaemonConfig dcfg;
    dcfg.endpoint = net::parseEndpoint(
        "unix:" + tmpPath("net_restart.sock"));
    dcfg.journalPath = distPath;
    fi::CampaignOptions dopts = baseOptions();
    dcfg.meta = metaFor(dopts);
    dcfg.ttlMillis = 300;  // the ghost's lease must die quickly
    dcfg.maxLeaseFaults = 6;
    dcfg.chunk = 4;
    dcfg.heartbeatMillis = 50;

    net::Daemon daemon(dcfg);
    daemon.start();
    // The restarted daemon resumed the journal and adopted the lease:
    // 12 done, [12,18) promised, the rest grantable.
    EXPECT_EQ(daemon.leases().doneCount(), 12u);
    EXPECT_EQ(daemon.leases().activeCount(), 1u);
    EXPECT_TRUE(daemon.leases().isActive(7));
    EXPECT_EQ(daemon.leases().queuedCount(), 36u - 12 - 6);

    std::thread daemonThread([&] { daemon.run(); });
    const net::GoldenSource goldenFor =
        [&](const store::JournalMeta&) -> const fi::GoldenRun& {
        return golden;
    };
    net::WorkerConfig wcfg;
    wcfg.endpoint = dcfg.endpoint;
    wcfg.name = "w-after";
    wcfg.idlePollMillis = 20;
    net::WorkerReport report;
    std::thread t([&] { report = net::runWorker(wcfg, goldenFor); });
    t.join();
    daemonThread.join();

    EXPECT_TRUE(report.campaignComplete);
    EXPECT_TRUE(daemon.complete());
    // The adopted lease was never completed by its (dead) holder, so
    // it expired and the range was re-run — exactly once.
    EXPECT_GE(daemon.telemetry().leasesExpired, 1u);
    EXPECT_EQ(daemon.telemetry().duplicateVerdicts, 0u);
    EXPECT_EQ(daemon.telemetry().verdictsIngested, 36u - 12);

    // Identical campaign, identical canonical bytes.
    EXPECT_EQ(canonicalBytes(distPath, "net_restart_canon.jsonl"),
              canonicalBytes(refPath, "net_restart_refc.jsonl"));

    // A completed campaign leaves an empty lease table behind.
    store::LeaseTable after;
    ASSERT_TRUE(store::loadLeaseTable(store::leaseTablePath(distPath),
                                      after));
    EXPECT_TRUE(after.active.empty());
}

TEST(Dispatch, WorkerRefusesMismatchedCampaignIdentity) {
    // A daemon dispatching a different campaign than the worker's
    // golden run must stop the worker with the resume-style mismatch
    // fatal, not let it stream wrong verdicts.
    const fi::GoldenRun& golden = sharedGolden();
    const std::string distPath = tmpPath("net_mismatch.jsonl");
    std::remove((distPath + ".leases").c_str());
    net::DaemonConfig dcfg;
    dcfg.endpoint = net::parseEndpoint(
        "unix:" + tmpPath("net_mismatch.sock"));
    dcfg.journalPath = distPath;
    fi::CampaignOptions dopts = baseOptions();
    dcfg.meta = metaFor(dopts);
    dcfg.meta.goldenDigest ^= 1;  // different golden run
    dcfg.heartbeatMillis = 50;

    net::Daemon daemon(dcfg);
    daemon.start();
    std::atomic<bool> stop{false};
    std::thread daemonThread([&] { daemon.run(&stop); });

    net::WorkerConfig wcfg;
    wcfg.endpoint = dcfg.endpoint;
    wcfg.name = "w-mismatch";
    const net::GoldenSource goldenFor =
        [&](const store::JournalMeta&) -> const fi::GoldenRun& {
        return golden;
    };
    EXPECT_THROW(net::runWorker(wcfg, goldenFor), FatalError);

    stop.store(true);
    daemonThread.join();
}

// --- observability over the wire -------------------------------------------

TEST(Frame, MetricsTypeRoundTrips) {
    // Regression: the reader's type-range check once stopped at
    // Error, silently poisoning every Metrics request.
    std::string wire;
    net::encodeFrame({net::MsgType::Metrics, ""}, wire);
    net::FrameReader reader;
    reader.feed(wire.data(), wire.size());
    net::Frame frame;
    ASSERT_TRUE(reader.next(frame));
    EXPECT_FALSE(reader.poisoned());
    EXPECT_EQ(frame.type, net::MsgType::Metrics);
    EXPECT_TRUE(frame.payload.empty());
}

TEST(Protocol, VerdictChunkTelemetryAndProvenanceRoundTrip) {
    net::VerdictChunk in;
    in.lease = 3;
    fi::RunVerdict masked;
    store::VerdictProvenance prov;
    prov.present = true;
    prov.wallMicros = 812;
    prov.rung = 2;
    prov.fastForwarded = 4000;
    in.verdicts.push_back({5, masked, prov});
    in.verdicts.push_back({6, masked, {}});
    in.telem.present = true;
    in.telem.runs = 40;
    in.telem.busyMicros = 123456;
    in.telem.phaseMicros[3] = 99000;
    in.telem.phaseMicros[7] = 1200;

    net::VerdictChunk out;
    ASSERT_TRUE(
        net::decodeVerdictChunk(net::encodeVerdictChunk(in), out));
    EXPECT_EQ(out.telem, in.telem);
    ASSERT_EQ(out.verdicts.size(), 2u);
    EXPECT_EQ(out.verdicts[0].prov, prov);
    EXPECT_FALSE(out.verdicts[1].prov.present);

    // A chunk without telemetry (an old worker) decodes as absent —
    // the daemon must not invent zeros for it.
    net::VerdictChunk bare;
    bare.lease = 4;
    bare.verdicts.push_back({0, masked});
    ASSERT_TRUE(net::decodeVerdictChunk(
        net::encodeVerdictChunk(bare), out));
    EXPECT_FALSE(out.telem.present);
}

namespace {

/** One blocking Metrics request/response on its own connection. */
std::string scrapeMetrics(const net::Endpoint& endpoint) {
    const int fd = net::connectTo(endpoint);
    if (fd < 0) return std::string();
    std::string wire;
    net::encodeFrame({net::MsgType::Metrics, ""}, wire);
    if (!net::sendAll(fd, wire)) {
        ::close(fd);
        return std::string();
    }
    net::FrameReader reader;
    std::string buf, scrape;
    for (;;) {
        net::Frame frame;
        if (reader.next(frame)) {
            if (frame.type == net::MsgType::Metrics) {
                scrape = frame.payload;
                break;
            }
            continue;
        }
        if (reader.poisoned()) break;
        buf.clear();
        if (net::recvSome(fd, buf) <= 0) break;
        reader.feed(buf.data(), buf.size());
    }
    ::close(fd);
    return scrape;
}

}  // namespace

TEST(Dispatch, MetricsRequestServesOpenMetricsScrape) {
    const fi::GoldenRun& golden = sharedGolden();
    const std::string distPath = tmpPath("net_metrics.jsonl");
    std::remove((distPath + ".leases").c_str());
    std::remove((distPath + ".progress").c_str());
    net::DaemonConfig dcfg;
    dcfg.endpoint = net::parseEndpoint(
        "unix:" + tmpPath("net_metrics.sock"));
    dcfg.journalPath = distPath;
    fi::CampaignOptions dopts = baseOptions();
    dcfg.meta = metaFor(dopts);
    dcfg.ttlMillis = 5000;
    dcfg.maxLeaseFaults = 6;
    dcfg.chunk = 4;
    dcfg.heartbeatMillis = 50;

    net::Daemon daemon(dcfg);
    daemon.start();
    std::thread daemonThread([&] { daemon.run(); });

    // Scrape before any worker connects: the campaign shape is
    // already known, nothing is done, and the document is terminated.
    const std::string idle = scrapeMetrics(dcfg.endpoint);
    ASSERT_FALSE(idle.empty());
    std::vector<obs::MetricSample> samples;
    ASSERT_TRUE(obs::parseOpenMetrics(idle, samples));
    const obs::MetricSample* expected =
        obs::findSample(samples, "marvel_campaign_expected_runs");
    ASSERT_NE(expected, nullptr);
    EXPECT_EQ(expected->value, 36.0);
    const obs::MetricSample* complete =
        obs::findSample(samples, "marvel_campaign_complete");
    ASSERT_NE(complete, nullptr);
    EXPECT_EQ(complete->value, 0.0);
    ASSERT_GE(idle.size(), 6u);
    EXPECT_EQ(idle.substr(idle.size() - 6), "# EOF\n");

    const net::GoldenSource goldenFor =
        [&](const store::JournalMeta&) -> const fi::GoldenRun& {
        return golden;
    };
    net::WorkerConfig wcfg;
    wcfg.endpoint = dcfg.endpoint;
    wcfg.name = "scrapee";
    wcfg.idlePollMillis = 20;
    net::WorkerReport report;
    std::thread workerThread(
        [&] { report = net::runWorker(wcfg, goldenFor); });

    // Poll-scrape while the campaign runs; the daemon tears the
    // socket down when the last lease completes, so keep the last
    // scrape that worked and stop on the first failed connect after
    // a success.
    std::string best;
    double bestVerdicts = 0;
    for (int i = 0; i < 500; ++i) {
        const std::string scrape = scrapeMetrics(dcfg.endpoint);
        if (scrape.empty()) {
            if (!best.empty()) break;
        } else {
            std::vector<obs::MetricSample> got;
            if (obs::parseOpenMetrics(scrape, got)) {
                const obs::MetricSample* v = obs::findSample(
                    got, "marvel_worker_verdicts_total", "scrapee");
                if (v && v->value > bestVerdicts) {
                    bestVerdicts = v->value;
                    best = scrape;
                }
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    workerThread.join();
    daemonThread.join();
    EXPECT_TRUE(report.campaignComplete);

    // At least one mid-run scrape saw the worker's telemetry.
    ASSERT_FALSE(best.empty());
    samples.clear();
    ASSERT_TRUE(obs::parseOpenMetrics(best, samples));
    EXPECT_GE(bestVerdicts, 3.0);
    const obs::MetricSample* busy = obs::findSample(
        samples, "marvel_worker_busy_seconds_total", "scrapee");
    ASSERT_NE(busy, nullptr);
    EXPECT_GT(busy->value, 0.0);
    const obs::MetricSample* leases = obs::findSample(
        samples, "marvel_worker_leases_total", "scrapee");
    ASSERT_NE(leases, nullptr);
    EXPECT_GE(leases->value, 1.0);
}
