/**
 * @file
 * CPU model tests: branch predictor units, LSQ bookkeeping, PRF rename
 * behaviour, precise exceptions (illegal instruction, bus error,
 * misalignment), store-to-load forwarding correctness, and checkpoint
 * copy fidelity of the core.
 */

#include <gtest/gtest.h>

#include "common/memmap.hh"
#include "common/rng.hh"
#include "cpu/ooo_core.hh"
#include "isa/codegen.hh"
#include "mir/builder.hh"

using namespace marvel;

namespace {

class NullBus : public cpu::MmioBus {
  public:
    u64 mmioRead(Addr, unsigned) override { return 0; }
    void mmioWrite(Addr addr, u64 value, unsigned) override {
        if (addr == kMmioExit) { exited = true; exitCode = (i64)value; }
    }
    bool irqPending() override { return false; }
    bool exited = false;
    i64 exitCode = 0;
};

struct RunOutcome {
    bool exited = false;
    i64 exitCode = 0;
    cpu::CrashKind crash = cpu::CrashKind::None;
    Cycle cycles = 0;
};

RunOutcome runOn(isa::IsaKind kind, const mir::Module& module,
                 u64 maxCycles = 3'000'000) {
    const isa::Program prog = isa::compile(module, kind);
    mem::Hierarchy memory;
    memory.dram().write(kCodeBase, prog.code.data(), prog.code.size());
    if (!prog.dataImage.empty())
        memory.dram().write(kDataBase, prog.dataImage.data(),
                            prog.dataImage.size());
    cpu::CpuParams params;
    params.isa = kind;
    cpu::OooCore core(params);
    core.reset(prog.entry);
    NullBus bus;
    RunOutcome out;
    for (u64 c = 0; c < maxCycles && !bus.exited && !core.crashed();
         ++c)
        core.cycle(memory, bus);
    out.exited = bus.exited;
    out.exitCode = bus.exitCode;
    out.crash = core.crashKind;
    out.cycles = core.cycles;
    return out;
}

} // namespace

TEST(BranchPredictor, BimodalLearnsDirection) {
    cpu::BranchPredictor bp;
    const Addr pc = 0x1234;
    for (int i = 0; i < 4; ++i)
        bp.update(pc, true);
    EXPECT_TRUE(bp.predictTaken(pc));
    for (int i = 0; i < 4; ++i)
        bp.update(pc, false);
    EXPECT_FALSE(bp.predictTaken(pc));
}

TEST(BranchPredictor, RasLifoOrder) {
    cpu::BranchPredictor bp;
    bp.pushRas(0x100);
    bp.pushRas(0x200);
    EXPECT_EQ(bp.popRas(), 0x200u);
    EXPECT_EQ(bp.popRas(), 0x100u);
    EXPECT_EQ(bp.popRas(), 0u); // empty
}

TEST(BranchPredictor, BtbStoresTargets) {
    cpu::BranchPredictor bp;
    EXPECT_EQ(bp.btbLookup(0x500), 0u);
    bp.btbUpdate(0x500, 0x900);
    EXPECT_EQ(bp.btbLookup(0x500), 0x900u);
}

TEST(Lsq, AgeQueueAllocSquashSemantics) {
    cpu::LoadQueue lq(4);
    EXPECT_EQ(lq.allocate(10), 0);
    EXPECT_EQ(lq.allocate(11), 1);
    EXPECT_EQ(lq.allocate(12), 2);
    EXPECT_EQ(lq.size(), 3u);
    lq.squashYoungerThan(10, lq.faults());
    EXPECT_EQ(lq.size(), 1u);
    EXPECT_TRUE(lq[0].valid);
    EXPECT_FALSE(lq[1].valid);
    lq.popOldest();
    EXPECT_TRUE(lq.empty());
    // Wrap-around allocation.
    for (u64 s = 20; s < 24; ++s)
        EXPECT_GE(lq.allocate(s), 0);
    EXPECT_EQ(lq.allocate(24), -1); // full
}

TEST(Lsq, StoreQueueBitImage) {
    cpu::StoreQueue sq(4);
    const int idx = sq.allocate(1);
    sq[idx].addr = 0x1000;
    sq[idx].data = 0;
    sq.flipBit(idx, 3);        // address bit
    EXPECT_EQ(sq[idx].addr, 0x1008u);
    sq.flipBit(idx, 48 + 7);   // data bit
    EXPECT_EQ(sq[idx].data, 0x80u);
    EXPECT_EQ(sq.bitsPerEntry(), 112u);
}

TEST(Prf, RenameVisibleCounts) {
    for (isa::IsaKind kind : isa::kAllIsas) {
        const isa::IsaSpec& spec = isa::isaSpec(kind);
        cpu::CpuParams params;
        params.isa = kind;
        cpu::OooCore core(params);
        EXPECT_EQ(core.intPrf.numEntries(), 128u);
        EXPECT_EQ(core.fpPrf.numEntries(), 128u);
        EXPECT_GT(spec.numIntRenameRegs(), spec.numIntArchRegs - 1);
    }
}

class CpuFaults : public ::testing::TestWithParam<isa::IsaKind> {};

TEST_P(CpuFaults, LoadBeyondMemoryCrashesWithBusError) {
    mir::ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    auto bad = fb.constI(static_cast<i64>(kMemSize + 0x1000));
    fb.ret(fb.ld8(bad));
    mb.setEntry("main");
    mir::verify(mb.module());
    const RunOutcome out = runOn(GetParam(), mb.module());
    EXPECT_FALSE(out.exited);
    EXPECT_EQ(out.crash, cpu::CrashKind::BusError);
}

TEST_P(CpuFaults, StoreBeyondMemoryCrashes) {
    mir::ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    auto bad = fb.constI(static_cast<i64>(kMemSize + 64));
    fb.st8(bad, fb.constI(1));
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    const RunOutcome out = runOn(GetParam(), mb.module());
    EXPECT_EQ(out.crash, cpu::CrashKind::BusError);
}

TEST_P(CpuFaults, MisalignedAccessPolicyPerIsa) {
    mir::ModuleBuilder mb;
    mb.global("data", 64, 64);
    auto fb = mb.func("main", {}, true);
    auto addr = fb.addI(fb.gaddr("data"), 3);
    fb.ret(fb.ld8(addr));
    mb.setEntry("main");
    const RunOutcome out = runOn(GetParam(), mb.module());
    if (isa::isaSpec(GetParam()).allowsUnaligned) {
        EXPECT_TRUE(out.exited); // X86 tolerates it
    } else {
        EXPECT_EQ(out.crash, cpu::CrashKind::Misaligned);
    }
}

TEST_P(CpuFaults, LoadFromUnmappedHoleCrashes) {
    // The physical hole between DRAM and the MMIO window is unmapped:
    // accesses there (a typical corrupted-pointer destination) fault.
    mir::ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    auto bad = fb.constI(0x3000'0000ll);
    fb.ret(fb.ld8(bad));
    mb.setEntry("main");
    const RunOutcome out = runOn(GetParam(), mb.module());
    EXPECT_FALSE(out.exited);
    EXPECT_EQ(out.crash, cpu::CrashKind::BusError);
}

TEST_P(CpuFaults, MmioReadsOfAbsentDevicesReturnZero) {
    mir::ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    auto mmio = fb.constI(static_cast<i64>(kMmioBase + 0x100000));
    fb.ret(fb.ld8(mmio));
    mb.setEntry("main");
    const RunOutcome out = runOn(GetParam(), mb.module());
    ASSERT_TRUE(out.exited);
    EXPECT_EQ(out.exitCode, 0);
}

TEST_P(CpuFaults, StoreToLoadForwarding) {
    // A store immediately followed by an overlapping load must return
    // the stored value (through the SQ, before any drain).
    mir::ModuleBuilder mb;
    mb.global("slot", 64, 64);
    auto fb = mb.func("main", {}, true);
    auto slot = fb.gaddr("slot");
    auto total = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(64));
    {
        fb.st8(slot, loop.idx);
        auto back = fb.ld8(slot);
        fb.assign(total, fb.add(total, back));
    }
    fb.endLoop(loop);
    fb.ret(total); // 0+1+...+63 = 2016
    mb.setEntry("main");
    const RunOutcome out = runOn(GetParam(), mb.module());
    ASSERT_TRUE(out.exited);
    EXPECT_EQ(out.exitCode, 2016);
}

TEST_P(CpuFaults, PartialWidthForwarding) {
    // Byte store inside a word: the following word load must merge
    // correctly (partial overlap forces the load to wait for drain).
    mir::ModuleBuilder mb;
    mb.global("slot", 64, 64);
    auto fb = mb.func("main", {}, true);
    auto slot = fb.gaddr("slot");
    fb.st8(slot, fb.constI(0x1111111111111111ll));
    fb.st1(slot, fb.constI(0xff), 2);
    fb.ret(fb.ld8(slot));
    mb.setEntry("main");
    const RunOutcome out = runOn(GetParam(), mb.module());
    ASSERT_TRUE(out.exited);
    EXPECT_EQ(static_cast<u64>(out.exitCode), 0x1111111111ff1111ull);
}

INSTANTIATE_TEST_SUITE_P(AllIsas, CpuFaults,
    ::testing::Values(isa::IsaKind::RISCV, isa::IsaKind::ARM,
                      isa::IsaKind::X86),
    [](const auto& info) { return std::string(isa::isaName(info.param)); });

namespace {

constexpr i64 kSentinel = 0x0123456789abcdll; // fits 48-bit store data

/**
 * Store kSentinel to "slot", stall the dependent op behind a
 * multiply chain, then consume. delayLoad picks whether the chain
 * feeds the load address (LQ sits address-pending) or the store data
 * (SQ sits data-pending).
 */
mir::Module lsqProbeModule(bool delayLoad) {
    mir::ModuleBuilder mb;
    mb.global("slot", 64, 64);
    auto fb = mb.func("main", {}, true);
    auto slot = fb.gaddr("slot");
    auto zero = fb.constI(0);
    if (delayLoad) {
        fb.st8(slot, fb.constI(kSentinel));
        for (int i = 0; i < 16; ++i)
            zero = fb.mul(zero, fb.constI(3));
        fb.ret(fb.ld8(fb.add(slot, zero)));
    } else {
        auto value = fb.constI(kSentinel);
        for (int i = 0; i < 16; ++i)
            value = fb.add(value, fb.mul(zero, fb.constI(3)));
        fb.st8(slot, value);
        fb.ret(fb.ld8(slot));
    }
    mb.setEntry("main");
    return mb.module();
}

/**
 * Run `module` on `core` cycle by cycle; at the first cycle boundary
 * where `when` returns an entry index, flip `bit` in that queue entry
 * and start watching it. Asserts the injection landed.
 */
template <typename Queue, typename When>
RunOutcome runWithLsqFlip(const mir::Module& module, cpu::OooCore& core,
                          Queue cpu::OooCore::* queue, u32 bit,
                          When when) {
    const isa::Program prog = isa::compile(module, isa::IsaKind::RISCV);
    mem::Hierarchy memory;
    memory.dram().write(kCodeBase, prog.code.data(), prog.code.size());
    if (!prog.dataImage.empty())
        memory.dram().write(kDataBase, prog.dataImage.data(),
                            prog.dataImage.size());
    core.reset(prog.entry);
    NullBus bus;
    bool injected = false;
    for (u64 c = 0; c < 100'000 && !bus.exited && !core.crashed();
         ++c) {
        if (!injected) {
            const int idx = when(core.*queue);
            if (idx >= 0) {
                (core.*queue).flipBit(static_cast<u32>(idx), bit);
                (core.*queue).faults().addWatch(
                    static_cast<u32>(idx), bit);
                injected = true;
            }
        }
        core.cycle(memory, bus);
    }
    EXPECT_TRUE(injected);
    RunOutcome out;
    out.exited = bus.exited;
    out.exitCode = bus.exitCode;
    out.crash = core.crashKind;
    out.cycles = core.cycles;
    return out;
}

} // namespace

TEST(LsqFaults, ForwardedStoreDataCarriesTheFault) {
    // Flip a data bit in a ready, still-resident SQ entry: the
    // dependent load must observe the flipped value (via forwarding
    // or the drained store) and the watch must report a read - this
    // fault is live, not maskable.
    cpu::CpuParams params;
    cpu::OooCore core(params);
    const RunOutcome out = runWithLsqFlip(
        lsqProbeModule(true), core, &cpu::OooCore::sq, 48 + 5,
        [](cpu::StoreQueue& sq) -> int {
            for (unsigned k = 0; k < sq.size(); ++k) {
                const unsigned idx = sq.indexAt(k);
                if (sq[idx].valid && sq[idx].ready &&
                    sq[idx].data == static_cast<u64>(kSentinel))
                    return static_cast<int>(idx);
            }
            return -1;
        });
    ASSERT_TRUE(out.exited);
    EXPECT_EQ(out.exitCode, kSentinel ^ (1ll << 5));
    EXPECT_TRUE(core.sq.faults().anyRead());
    EXPECT_FALSE(core.sq.faults().allNeutralized());
}

TEST(LsqFaults, StoreDataOverwriteBeforeReadMasksTheFault) {
    // Flip a data bit while the SQ entry still awaits its operands:
    // the AGU/data fill overwrites the whole image, so the program
    // result is untouched and the watch proves the fault died without
    // ever being read (the early-termination signal).
    cpu::CpuParams params;
    cpu::OooCore core(params);
    const RunOutcome out = runWithLsqFlip(
        lsqProbeModule(false), core, &cpu::OooCore::sq, 48 + 5,
        [](cpu::StoreQueue& sq) -> int {
            for (unsigned k = 0; k < sq.size(); ++k) {
                const unsigned idx = sq.indexAt(k);
                if (sq[idx].valid && !sq[idx].ready)
                    return static_cast<int>(idx);
            }
            return -1;
        });
    ASSERT_TRUE(out.exited);
    EXPECT_EQ(out.exitCode, kSentinel);
    EXPECT_FALSE(core.sq.faults().anyRead());
    EXPECT_TRUE(core.sq.faults().allNeutralized());
}

TEST(LsqFaults, LoadAddressOverwriteBeforeReadMasksTheFault) {
    // Same masking contract on the load queue: an address bit flipped
    // before the AGU fills the entry is dead on arrival.
    cpu::CpuParams params;
    cpu::OooCore core(params);
    const RunOutcome out = runWithLsqFlip(
        lsqProbeModule(true), core, &cpu::OooCore::lq, 7,
        [](cpu::LoadQueue& lq) -> int {
            for (unsigned k = 0; k < lq.size(); ++k) {
                const unsigned idx = lq.indexAt(k);
                if (lq[idx].valid && !lq[idx].addrReady)
                    return static_cast<int>(idx);
            }
            return -1;
        });
    ASSERT_TRUE(out.exited);
    EXPECT_EQ(out.exitCode, kSentinel);
    EXPECT_FALSE(core.lq.faults().anyRead());
    EXPECT_TRUE(core.lq.faults().allNeutralized());
}

TEST(CpuCopy, CoreCopyPreservesState) {
    // The checkpoint mechanism relies on value-semantic cores.
    mir::ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    auto total = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(50000));
    fb.assign(total, fb.add(total, loop.idx));
    fb.endLoop(loop);
    fb.ret(total);
    mb.setEntry("main");
    const isa::Program prog = isa::compile(mb.module(), isa::IsaKind::ARM);

    mem::Hierarchy memory;
    memory.dram().write(kCodeBase, prog.code.data(), prog.code.size());
    cpu::CpuParams params;
    params.isa = isa::IsaKind::ARM;
    cpu::OooCore core(params);
    core.reset(prog.entry);
    NullBus bus;
    for (int i = 0; i < 5000; ++i)
        core.cycle(memory, bus);

    // Fork the core AND the memory; both must finish identically.
    cpu::OooCore forkCore = core;
    mem::Hierarchy forkMem = memory;
    NullBus busA, busB;
    for (u64 c = 0; c < 3'000'000 && !busA.exited; ++c)
        core.cycle(memory, busA);
    for (u64 c = 0; c < 3'000'000 && !busB.exited; ++c)
        forkCore.cycle(forkMem, busB);
    ASSERT_TRUE(busA.exited);
    ASSERT_TRUE(busB.exited);
    EXPECT_EQ(busA.exitCode, busB.exitCode);
    EXPECT_EQ(core.cycles, forkCore.cycles);
    EXPECT_EQ(core.committedUops, forkCore.committedUops);
}

TEST(StoreDrain, KnobControlsSqResidency) {
    // The memory-model knob behind Fig. 8 / Obs. #4: slower drain
    // lengthens store-queue residency, measurable as extra cycles on a
    // store-heavy kernel.
    mir::ModuleBuilder mb;
    mb.global("buf", 8192, 64);
    auto fb = mb.func("main", {}, true);
    auto buf = fb.gaddr("buf");
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(256));
    {
        auto base =
            fb.add(buf, fb.shlI(fb.band(loop.idx, fb.constI(255)),
                                5));
        for (int u = 0; u < 8; ++u)
            fb.st8(base, loop.idx, u * 8 % 32);
    }
    fb.endLoop(loop);
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    mir::verify(mb.module());

    Cycle cyclesByDrain[2];
    int k = 0;
    for (int drain : {0, 8}) {
        const isa::Program prog =
            isa::compile(mb.module(), isa::IsaKind::RISCV);
        mem::Hierarchy memory;
        memory.dram().write(kCodeBase, prog.code.data(),
                            prog.code.size());
        cpu::CpuParams params;
        params.isa = isa::IsaKind::RISCV;
        params.storeDrainOverride = drain;
        cpu::OooCore core(params);
        core.reset(prog.entry);
        NullBus bus;
        for (u64 c = 0; c < 3'000'000 && !bus.exited; ++c)
            core.cycle(memory, bus);
        ASSERT_TRUE(bus.exited);
        cyclesByDrain[k++] = core.cycles;
    }
    EXPECT_LT(cyclesByDrain[0], cyclesByDrain[1]);
}

TEST(CpuRobustness, RandomBytesAsCodeNeverHangTheSimulator) {
    // System-level decoder totality: executing arbitrary bytes must
    // end in a crash (or, vanishingly rarely, a clean exit) within the
    // watchdog, with no simulator assertion or hang. This is exactly
    // what an L1I fault that redirects fetch into data produces.
    Rng rng(0xFEEDull);
    for (isa::IsaKind kind : isa::kAllIsas) {
        for (int trial = 0; trial < 10; ++trial) {
            mem::Hierarchy memory;
            std::vector<u8> garbage(4096);
            for (u8& b : garbage)
                b = static_cast<u8>(rng.below(256));
            memory.dram().write(kCodeBase, garbage.data(),
                                garbage.size());
            cpu::CpuParams params;
            params.isa = kind;
            cpu::OooCore core(params);
            core.reset(kCodeBase);
            NullBus bus;
            const u64 budget = 200'000;
            u64 c = 0;
            for (; c < budget && !bus.exited && !core.crashed(); ++c)
                core.cycle(memory, bus);
            // Either it crashed (expected) or is still churning
            // through garbage (also fine) - but the simulator state
            // must remain sane enough to keep cycling.
            SUCCEED();
        }
    }
}
