/**
 * @file
 * Code generator tests: cross-ISA differential execution of stress
 * programs (register pressure / spills, calls with many arguments,
 * floating point, selects, large constants), plus codegen statistics
 * properties (RISCV compression, X86 load-op folding, per-ISA code
 * density ordering).
 */

#include <gtest/gtest.h>

#include "common/memmap.hh"
#include "common/rng.hh"
#include "fi/campaign.hh"
#include "mir/interp.hh"
#include "soc/builder.hh"
#include "workloads/workloads.hh"

using namespace marvel;
using mir::FunctionBuilder;
using mir::ModuleBuilder;
using mir::VReg;

namespace {

// Run a module on every ISA's cycle-level CPU and compare the exit
// code and OUTPUT window against the interpreter.
void expectAllIsasMatchInterp(ModuleBuilder& mb) {
    mir::verify(mb.module());
    const mir::GoldenRun ref = mir::interpretModule(mb.module());
    ASSERT_FALSE(ref.result.timedOut);
    for (isa::IsaKind kind : isa::kAllIsas) {
        soc::SystemConfig cfg = soc::preset(isa::isaName(kind));
        soc::System sys(cfg);
        sys.loadProgram(isa::compile(mb.module(), kind));
        const soc::RunExit exit = sys.run(50'000'000);
        ASSERT_EQ(exit, soc::RunExit::Exited)
            << isa::isaName(kind) << ": " << sys.crashReason();
        EXPECT_EQ(sys.exitCode, ref.result.exitValue)
            << isa::isaName(kind);
        EXPECT_TRUE(sys.outputWindow() == ref.output)
            << isa::isaName(kind);
    }
}

} // namespace

TEST(Codegen, RegisterPressureForcesCorrectSpills) {
    // 40 simultaneously-live values exceed every ISA's register file.
    ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    std::vector<VReg> live;
    for (int i = 0; i < 40; ++i)
        live.push_back(fb.constI(1000 + i * 13));
    // Consume them in reverse, keeping all live until the end.
    VReg total = fb.constI(0);
    for (int i = 39; i >= 0; --i)
        fb.assign(total, fb.add(total, live[i]));
    // And once more forward (forces reloads of spilled values).
    for (int i = 0; i < 40; ++i)
        fb.assign(total, fb.sub(total, live[i]));
    fb.ret(total);
    mb.setEntry("main");
    expectAllIsasMatchInterp(mb);
    // X86 (fewest registers) must actually have spilled.
    const isa::Program prog =
        isa::compile(mb.module(), isa::IsaKind::X86);
    EXPECT_GT(prog.stats.spillSlots, 0u);
}

TEST(Codegen, CallsWithManyArgumentsAndFpMix) {
    ModuleBuilder mb;
    auto callee = mb.func("mix",
                          {mir::Type::I64, mir::Type::F64,
                           mir::Type::I64, mir::Type::F64,
                           mir::Type::I64, mir::Type::I64},
                          true);
    {
        auto& p = callee.fn().params;
        VReg fsum = callee.fadd(p[1], p[3]);
        VReg isum = callee.add(p[0], callee.add(p[2],
                                                callee.add(p[4], p[5])));
        callee.ret(callee.add(isum, callee.ftoi(fsum)));
    }
    auto fb = mb.func("main", {}, true);
    VReg acc = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(10));
    {
        VReg f1 = fb.itof(loop.idx);
        VReg f2 = fb.constF(2.5);
        VReg r = fb.call(mb.module().funcId("mix"),
                         {loop.idx, f1, fb.addI(loop.idx, 7),
                          f2, fb.constI(100), fb.constI(-3)});
        fb.assign(acc, fb.add(acc, r));
    }
    fb.endLoop(loop);
    fb.ret(acc);
    mb.setEntry("main");
    expectAllIsasMatchInterp(mb);
}

TEST(Codegen, ArgumentShuffleCycles) {
    // Swapped argument order at the call site exercises the parallel-
    // move resolver (cycle through a scratch register).
    ModuleBuilder mb;
    auto callee =
        mb.func("sub2", {mir::Type::I64, mir::Type::I64}, true);
    callee.ret(callee.sub(callee.fn().params[0],
                          callee.fn().params[1]));
    auto fb = mb.func("main", {}, true);
    VReg a = fb.constI(500);
    VReg b = fb.constI(3);
    // f(a,b) then f(b,a): whichever registers a/b live in, one of the
    // two calls permutes them.
    auto fid = mb.module().funcId("sub2");
    VReg x = fb.call(fid, {a, b});
    VReg y = fb.call(fid, {b, a});
    fb.ret(fb.mul(x, y)); // 497 * -497
    mb.setEntry("main");
    expectAllIsasMatchInterp(mb);
}

TEST(Codegen, DeepCallChainsUseTheStack) {
    ModuleBuilder mb;
    auto leaf = mb.func("leaf", {mir::Type::I64}, true);
    leaf.ret(leaf.addI(leaf.fn().params[0], 1));
    auto mid = mb.func("mid", {mir::Type::I64}, true);
    {
        VReg v = mid.call(mb.module().funcId("leaf"),
                          {mid.fn().params[0]});
        VReg w = mid.call(mb.module().funcId("leaf"), {v});
        mid.ret(mid.add(v, w));
    }
    auto fb = mb.func("main", {}, true);
    VReg acc = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(20));
    fb.assign(acc, fb.add(acc, fb.call(mb.module().funcId("mid"),
                                       {loop.idx})));
    fb.endLoop(loop);
    fb.ret(acc);
    mb.setEntry("main");
    expectAllIsasMatchInterp(mb);
}

TEST(Codegen, LargeConstantsMaterialize) {
    ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    const i64 constants[] = {
        0,      -1,        2047,       -2048,      2048,
        65535,  0x7fffffff, -0x80000000ll, 0x7ffffffell,
        0x123456789abcdef0ll, static_cast<i64>(0xdeadbeefcafebabeull),
        INT64_MAX, INT64_MIN, 0x7fffff00ll,
    };
    VReg acc = fb.constI(0);
    for (i64 c : constants)
        fb.assign(acc, fb.bxor(acc, fb.constI(c)));
    fb.ret(fb.band(acc, fb.constI(0xffffffll)));
    mb.setEntry("main");
    expectAllIsasMatchInterp(mb);
}

TEST(Codegen, UnsignedAndSignedComparisons) {
    ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    VReg big = fb.constI(static_cast<i64>(0xffffffffffffff00ull));
    VReg small = fb.constI(0x100);
    VReg acc = fb.constI(0);
    auto addBit = [&](VReg bit) {
        fb.assign(acc, fb.add(fb.shl(acc, fb.constI(1)), bit));
    };
    addBit(fb.cmpLt(big, small));   // signed: true
    addBit(fb.cmpLtU(big, small));  // unsigned: false
    addBit(fb.cmpLe(small, small)); // true
    addBit(fb.cmpLeU(big, big));    // true
    addBit(fb.cmpEq(big, small));   // false
    addBit(fb.cmpNe(big, small));   // true
    fb.ret(acc); // 0b101101 = 45
    mb.setEntry("main");
    expectAllIsasMatchInterp(mb);
}

TEST(Codegen, FloatingPointKernels) {
    ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    VReg sum = fb.constF(0.0);
    auto loop = fb.beginLoop(fb.constI(1), fb.constI(50));
    {
        VReg x = fb.itof(loop.idx);
        VReg inv = fb.fdiv(fb.constF(1.0), x);
        VReg root = fb.fsqrt(x);
        fb.assign(sum, fb.fadd(sum, fb.fmul(inv, root)));
    }
    fb.endLoop(loop);
    fb.ret(fb.ftoi(fb.fmul(sum, fb.constF(1000.0))));
    mb.setEntry("main");
    expectAllIsasMatchInterp(mb);
}

TEST(Codegen, CompressionAndDensityOrdering) {
    // The L1I footprint mechanism behind Fig. 5's rank order: RISCV
    // (compressed) emits the densest code, ARM (fixed 4B, aligned
    // functions) the largest.
    const workloads::Workload wl = workloads::get("sha");
    const isa::Program rv = isa::compile(wl.module, isa::IsaKind::RISCV);
    const isa::Program arm = isa::compile(wl.module, isa::IsaKind::ARM);
    EXPECT_GT(rv.stats.numCompressed, 0u);
    const double rvBytesPerInst =
        double(rv.stats.codeBytes) / rv.stats.numInsts;
    const double armBytesPerInst =
        double(arm.stats.codeBytes) / arm.stats.numInsts;
    EXPECT_LT(rvBytesPerInst, 4.0);
    EXPECT_GE(armBytesPerInst, 4.0);
    EXPECT_LT(rv.stats.codeBytes, arm.stats.codeBytes);
}

TEST(Codegen, X86FoldsLoadOpPatterns) {
    // An array reduction must produce AluM (load-op) forms on X86.
    ModuleBuilder mb;
    mb.globalInit("arr", std::vector<u8>(256 * 8, 1), 64);
    auto fb = mb.func("main", {}, true);
    VReg arr = fb.gaddr("arr");
    VReg acc = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(256));
    {
        VReg v = fb.ld8(fb.add(arr, fb.shlI(loop.idx, 3)));
        fb.assign(acc, fb.add(acc, v));
    }
    fb.endLoop(loop);
    fb.ret(acc);
    mb.setEntry("main");
    expectAllIsasMatchInterp(mb);
    const isa::Program prog =
        isa::compile(mb.module(), isa::IsaKind::X86);
    const std::string text = isa::disassemble(prog);
    EXPECT_NE(text.find("alum"), std::string::npos)
        << "expected x86 load-op folding in:\n" << text;
}

TEST(Codegen, RandomizedExpressionPrograms) {
    // Property test: random straight-line integer expression DAGs must
    // agree between the interpreter and all three CPUs.
    Rng rng(0xDA6ull);
    for (int trial = 0; trial < 10; ++trial) {
        ModuleBuilder mb;
        auto fb = mb.func("main", {}, true);
        std::vector<VReg> values;
        for (int i = 0; i < 6; ++i)
            values.push_back(
                fb.constI(static_cast<i64>(rng()) >> 16));
        for (int step = 0; step < 40; ++step) {
            const VReg a = values[rng.below(values.size())];
            const VReg b = values[rng.below(values.size())];
            VReg r;
            switch (rng.below(8)) {
              case 0: r = fb.add(a, b); break;
              case 1: r = fb.sub(a, b); break;
              case 2: r = fb.mul(a, b); break;
              case 3: r = fb.band(a, b); break;
              case 4: r = fb.bor(a, b); break;
              case 5: r = fb.bxor(a, b); break;
              case 6: r = fb.shl(a, fb.band(b, fb.constI(63))); break;
              default: r = fb.sra(a, fb.band(b, fb.constI(63))); break;
            }
            values.push_back(r);
        }
        VReg acc = fb.constI(0);
        for (VReg v : values)
            fb.assign(acc, fb.bxor(acc, v));
        fb.ret(acc);
        mb.setEntry("main");
        expectAllIsasMatchInterp(mb);
    }
}

TEST(Codegen, RandomizedControlFlowPrograms) {
    // Random structured control flow (nested loops + diamonds) with
    // moderate register pressure; all ISAs must agree with the
    // interpreter.
    Rng rng(0xCF10ull);
    for (int trial = 0; trial < 6; ++trial) {
        ModuleBuilder mb;
        auto fb = mb.func("main", {}, true);
        VReg acc = fb.constI(static_cast<i64>(rng.below(1000)));
        // A few persistent values to create pressure across branches.
        std::vector<VReg> keep;
        for (int i = 0; i < 12; ++i)
            keep.push_back(fb.constI(static_cast<i64>(rng()) >> 33));
        auto outer = fb.beginLoop(fb.constI(0),
                                  fb.constI(8 + rng.below(8)));
        {
            // Random diamond.
            auto thenB = fb.newBlock();
            auto elseB = fb.newBlock();
            auto join = fb.newBlock();
            VReg cond = fb.cmpLt(
                fb.band(outer.idx, fb.constI(3)),
                fb.constI(static_cast<i64>(rng.below(3)) + 1));
            fb.br(cond, thenB, elseB);
            fb.setBlock(thenB);
            fb.assign(acc, fb.add(acc, keep[rng.below(keep.size())]));
            fb.jmp(join);
            fb.setBlock(elseB);
            fb.assign(acc, fb.bxor(acc, keep[rng.below(keep.size())]));
            fb.jmp(join);
            fb.setBlock(join);
            // Inner loop with a data-dependent bound.
            VReg bound = fb.addI(fb.band(outer.idx, fb.constI(3)), 1);
            auto inner = fb.beginLoop(fb.constI(0), bound);
            fb.assign(acc,
                      fb.add(acc, fb.mul(inner.idx,
                                         keep[rng.below(keep.size())])));
            fb.endLoop(inner);
        }
        fb.endLoop(outer);
        for (VReg k : keep)
            fb.assign(acc, fb.sub(acc, k));
        fb.ret(acc);
        mb.setEntry("main");
        expectAllIsasMatchInterp(mb);
    }
}
