/**
 * @file
 * Fault-model equivalence battery.
 *
 * A fault model changes WHAT a fault index means (a burst, a
 * correlated flip, a stuck-at with a sampled onset) but must never
 * change the campaign-identity machinery built for the legacy
 * single-bit model: ladder fast-forward, dead-fault pruning, the
 * convergence short-circuit, shard merge, resume, and replay all have
 * to commute with every model. These tests pin that, mirroring the
 * ladder/short-circuit batteries:
 *
 *  - per spec, canonical journals byte-identical with the ladder on
 *    and off, with the short-circuit on and off (stuck-at masks must
 *    additionally never stop), and across a 3-way shard merge, on the
 *    CPU and on both accelerator engine classes;
 *  - stuck-at faults with sampled onsets fast-forward through the
 *    ladder to the rung at-or-before the onset — including onsets
 *    exactly on a rung, before the first rung, in the final partial
 *    segment, and on a ladder whose window does not divide evenly by
 *    the rung count — with verdicts identical to straight-through;
 *  - pruning relabels but never changes outcome totals under
 *    multi-bit transient masks (a mask prunes only when every bit
 *    does);
 *  - journal compatibility: pre-fault-model journals (no "faultModel"
 *    meta field) read as legacy single-bit and resume unchanged; the
 *    spec is recorded for new models and wins on resume; a spec
 *    mismatch on resume or merge is fatal, naming both specs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "accel/designs/designs.hh"
#include "common/log.hh"
#include "common/memmap.hh"
#include "fi/campaign.hh"
#include "fi/models.hh"
#include "fi/targets.hh"
#include "obs/metrics.hh"
#include "sched/replay.hh"
#include "sched/scheduler.hh"
#include "soc/builder.hh"
#include "soc/checkpoint.hh"
#include "store/journal.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace {

std::string tmpPath(const std::string& name) {
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
}

/** crc32 golden with an 8-rung ladder (the battery's main subject). */
const fi::GoldenRun& crcGolden() {
    static const fi::GoldenRun golden = [] {
        const workloads::Workload wl = workloads::get("crc32");
        const soc::SystemConfig cfg = soc::preset("riscv");
        return fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa),
                             500'000'000, 8);
    }();
    return golden;
}

/** Dataflow-engine golden (gemm on the DFG engine), 8 rungs. */
const fi::GoldenRun& dataflowGolden() {
    static const fi::GoldenRun golden = [] {
        soc::SystemConfig cfg = soc::preset("riscv");
        cfg.cluster.designs.push_back(
            accel::designs::makeByName("gemm", kAccelSpaceBase));
        const workloads::Workload wl = workloads::accelDriver("gemm", 0);
        return fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa),
                             500'000'000, 8);
    }();
    return golden;
}

/** Systolic-engine golden (gemm on the PE grid), 8 rungs. */
const fi::GoldenRun& systolicGolden() {
    static const fi::GoldenRun golden = [] {
        soc::SystemConfig cfg = soc::preset("riscv");
        cfg.cluster.designs.push_back(
            accel::designs::makeGemmSystolic(kAccelSpaceBase));
        const workloads::Workload wl =
            workloads::accelDriver("gemm_systolic", 0);
        return fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa),
                             500'000'000, 8);
    }();
    return golden;
}

fi::CampaignOptions baseOptions(const std::string& workload) {
    fi::CampaignOptions opts;
    opts.numFaults = 36;
    opts.seed = 424242;
    opts.threads = 2;
    opts.workloadName = workload;
    return opts;
}

void expectSameCounts(const fi::CampaignResult& a,
                      const fi::CampaignResult& b) {
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.crash, b.crash);
    EXPECT_EQ(a.maskedEarly, b.maskedEarly);
    EXPECT_EQ(a.maskedInvalid, b.maskedInvalid);
    EXPECT_EQ(a.maskedInAccel, b.maskedInAccel);
    EXPECT_EQ(a.pruned, b.pruned);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.hvfCorruptions, b.hvfCorruptions);
}

/** Run one journaled campaign and return its canonical bytes. */
std::string campaignCanon(const fi::GoldenRun& golden,
                          const fi::TargetRef& target,
                          fi::CampaignOptions opts,
                          const std::string& tag,
                          u64* earlyStops = nullptr) {
    obs::CampaignTelemetry telemetry;
    opts.journalPath = tmpPath("fm_" + tag + ".jsonl");
    opts.telemetry = &telemetry;
    sched::runCampaign(golden, target, opts);
    if (earlyStops)
        *earlyStops = telemetry.earlyStops;
    const store::Journal journal =
        store::readJournal(opts.journalPath);
    const std::string canon = tmpPath("fm_" + tag + ".canon.jsonl");
    store::writeCanonicalJournal(canon, journal.meta,
                                 journal.verdicts);
    return slurp(canon);
}

/** The battery's model matrix; tags key the journal tmp files. */
struct SpecCase {
    const char* tag;
    const char* spec;
    fi::FaultModel base;
};

const SpecCase kSpecs[] = {
    {"burst", "burst k=3", fi::FaultModel::Transient},
    {"scatter", "scatter k=3", fi::FaultModel::Transient},
    {"corr", "correlated roww=1,3 colw=1,2,4,2",
     fi::FaultModel::Transient},
    {"tgt", "targeted entry=0:3 bit=0:7",
     fi::FaultModel::Transient},
    {"sa1", "burst k=2", fi::FaultModel::StuckAt1},
};

fi::CampaignOptions specOptions(const SpecCase& c,
                                const std::string& workload) {
    fi::CampaignOptions opts = baseOptions(workload);
    opts.model = c.base;
    opts.modelSpec = fi::FaultModelSpec::parse(c.spec);
    return opts;
}

/** Stuck-at faults are modeled in the PRF but not in the ROB's
 *  meta-state; pick the CPU target each base supports. */
fi::TargetRef cpuTargetFor(const SpecCase& c) {
    return {c.base == fi::FaultModel::Transient ? fi::TargetId::Rob
                                                : fi::TargetId::PrfInt};
}

} // namespace

// --- ladder / early-stop / shard equivalence -------------------------

TEST(FaultModels, CanonicalJournalsByteIdenticalLadderOnVsOff) {
    // The ladder fast-forward must be invisible for EVERY model —
    // including stuck-at masks whose sampled onsets now ride it.
    for (const SpecCase& c : kSpecs) {
        fi::CampaignOptions opts = specOptions(c, "crc32");
        opts.useLadder = true;
        const std::string on =
            campaignCanon(crcGolden(), cpuTargetFor(c), opts,
                          std::string(c.tag) + "_lad_on");
        opts.useLadder = false;
        const std::string off =
            campaignCanon(crcGolden(), cpuTargetFor(c), opts,
                          std::string(c.tag) + "_lad_off");
        ASSERT_FALSE(on.empty()) << c.spec;
        EXPECT_EQ(on, off) << c.spec;
        // The spec is part of the campaign identity in the meta line.
        EXPECT_NE(on.find(c.spec), std::string::npos) << c.spec;
    }
}

TEST(FaultModels, CanonicalJournalsByteIdenticalEarlyStopOnVsOff) {
    u64 transientStops = 0;
    for (const SpecCase& c : kSpecs) {
        fi::CampaignOptions opts = specOptions(c, "crc32");
        u64 stops = 0;
        opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::On;
        const std::string on =
            campaignCanon(crcGolden(), cpuTargetFor(c), opts,
                          std::string(c.tag) + "_es_on", &stops);
        opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::Off;
        const std::string off =
            campaignCanon(crcGolden(), cpuTargetFor(c), opts,
                          std::string(c.tag) + "_es_off");
        ASSERT_FALSE(on.empty()) << c.spec;
        EXPECT_EQ(on, off) << c.spec;
        if (c.base == fi::FaultModel::Transient) {
            transientStops += stops;
        } else {
            // Permanent faults void the stop-check's premise ("golden
            // state implies golden future"); arming it must be inert.
            EXPECT_EQ(stops, 0u) << c.spec;
        }
    }
    // The transient side of the battery is vacuous if nothing stopped.
    EXPECT_GT(transientStops, 0u);
}

TEST(FaultModels, ThreeWayShardMergeCanonicalizesIdentically) {
    for (const SpecCase& c : {kSpecs[0], kSpecs[2], kSpecs[4]}) {
        fi::CampaignOptions opts = specOptions(c, "crc32");
        opts.journalPath =
            tmpPath(std::string("fm_") + c.tag + "_whole.jsonl");
        const fi::CampaignResult whole = sched::runCampaign(
            crcGolden(), cpuTargetFor(c), opts);
        const store::Journal wholeJournal =
            store::readJournal(opts.journalPath);
        const std::string wholeCanon =
            tmpPath(std::string("fm_") + c.tag + "_whole.canon.jsonl");
        store::writeCanonicalJournal(wholeCanon, wholeJournal.meta,
                                     wholeJournal.verdicts);

        std::vector<std::string> shardPaths;
        std::vector<store::JournalVerdict> verdicts;
        store::JournalMeta meta;
        for (u32 s = 0; s < 3; ++s) {
            fi::CampaignOptions shardOpts = specOptions(c, "crc32");
            shardOpts.shardIndex = s;
            shardOpts.shardCount = 3;
            shardOpts.journalPath =
                tmpPath(strfmt("fm_%s_shard%u.jsonl", c.tag, s));
            sched::runCampaign(crcGolden(), cpuTargetFor(c),
                               shardOpts);
            shardPaths.push_back(shardOpts.journalPath);
            const store::Journal journal =
                store::readJournal(shardOpts.journalPath);
            if (s == 0)
                meta = journal.meta;
            verdicts.insert(verdicts.end(), journal.verdicts.begin(),
                            journal.verdicts.end());
        }
        const std::string canon =
            tmpPath(std::string("fm_") + c.tag + "_shards.canon.jsonl");
        store::writeCanonicalJournal(canon, meta, verdicts);
        EXPECT_EQ(slurp(canon), slurp(wholeCanon)) << c.spec;
        expectSameCounts(sched::mergeJournals(shardPaths), whole);
    }
}

TEST(FaultModels, AccelEnginesByteIdenticalLadderOnVsOff) {
    // One transient and one stuck-at spec per engine class: the
    // engine-side restore path (SPM banks, PE grids) must honor
    // masks and onset fast-forward like the CPU-side one.
    struct EngineCase {
        const fi::GoldenRun& golden;
        const char* targetName;
        const char* workload;
    };
    const EngineCase engines[] = {
        {dataflowGolden(), "gemm[dataflow].MATRIX1", "accel_gemm"},
        {systolicGolden(), "gemm_systolic[systolic].SEQ",
         "accel_gemm_systolic"},
    };
    for (const EngineCase& e : engines) {
        const fi::TargetRef target = fi::targetByName(
            e.golden.checkpoint.view(), e.targetName);
        for (const SpecCase& c : {kSpecs[0], kSpecs[4]}) {
            fi::CampaignOptions opts = specOptions(c, e.workload);
            opts.numFaults = 24;
            opts.useLadder = true;
            const std::string on = campaignCanon(
                e.golden, target, opts,
                std::string(c.tag) + "_" + e.workload + "_on");
            opts.useLadder = false;
            const std::string off = campaignCanon(
                e.golden, target, opts,
                std::string(c.tag) + "_" + e.workload + "_off");
            ASSERT_FALSE(on.empty()) << e.targetName << " " << c.spec;
            EXPECT_EQ(on, off) << e.targetName << " " << c.spec;
        }
    }
}

// --- pruning under multi-bit masks -----------------------------------

TEST(FaultModels, PruneRelabelsButNeverChangesOutcomes) {
    // A multi-bit mask prunes only when EVERY bit's first covering
    // access is an overwrite; pruning may relabel those Masked
    // verdicts but can never move an outcome total.
    u64 prunedTotal = 0;
    for (const SpecCase& c : {kSpecs[0], kSpecs[1], kSpecs[2]}) {
        for (const fi::TargetId target :
             {fi::TargetId::PrfInt, fi::TargetId::L1D}) {
            fi::CampaignOptions opts = specOptions(c, "crc32");
            opts.numFaults = 60;
            opts.seed = 555;
            opts.keepVerdicts = true;
            opts.prune = false;
            const fi::CampaignResult plain = fi::runCampaignOnGolden(
                crcGolden(), {target}, opts);
            opts.prune = true;
            const fi::CampaignResult pruned = fi::runCampaignOnGolden(
                crcGolden(), {target}, opts);
            EXPECT_EQ(plain.masked, pruned.masked) << c.spec;
            EXPECT_EQ(plain.sdc, pruned.sdc) << c.spec;
            EXPECT_EQ(plain.crash, pruned.crash) << c.spec;
            EXPECT_EQ(plain.pruned, 0u) << c.spec;
            prunedTotal += pruned.pruned;
        }
    }
    // PRF registers and L1D lines get overwritten constantly; if
    // nothing across six campaigns pruned, the all-bits-prunable
    // conjunction is broken, not conservative.
    EXPECT_GT(prunedTotal, 0u);
}

TEST(FaultModels, PrunedCampaignByteIdenticalWithLadderToggled) {
    for (const SpecCase& c : {kSpecs[0], kSpecs[2]}) {
        fi::CampaignOptions opts = specOptions(c, "crc32");
        opts.prune = true;
        opts.useLadder = true;
        const std::string on =
            campaignCanon(crcGolden(), {fi::TargetId::L1D}, opts,
                          std::string(c.tag) + "_prune_on");
        opts.useLadder = false;
        const std::string off =
            campaignCanon(crcGolden(), {fi::TargetId::L1D}, opts,
                          std::string(c.tag) + "_prune_off");
        ASSERT_FALSE(on.empty()) << c.spec;
        EXPECT_EQ(on, off) << c.spec;
    }
}

// --- stuck-at onsets through the ladder ------------------------------

namespace {

/** Sample a stuck-at mask under `spec`, run it with the ladder on and
 *  off, require identical verdicts, and return the on verdict. */
fi::RunVerdict runStuckAt(const fi::GoldenRun& golden,
                          const fi::FaultSampler& sampler,
                          unsigned salt, Cycle pinOnset = ~0ull) {
    const fi::TargetInfo info = fi::targetInfo(
        golden.checkpoint.view(), {fi::TargetId::PrfInt});
    Rng rng = Rng::forStream(90210, salt);
    fi::FaultMask mask =
        sampler.sample(rng, {fi::TargetId::PrfInt}, info.geometry,
                       golden.windowCycles);
    if (pinOnset != ~0ull)
        for (fi::FaultSpec& f : mask.faults)
            f.injectCycle = pinOnset;

    fi::InjectionOptions opts;
    opts.computeHvf = true;
    opts.useLadder = true;
    const fi::RunVerdict on = fi::runWithFault(golden, mask, opts);
    opts.useLadder = false;
    const fi::RunVerdict off = fi::runWithFault(golden, mask, opts);
    EXPECT_TRUE(sched::verdictsIdentical(on, off))
        << "salt " << salt << ": " << on.toString() << " vs "
        << off.toString();
    EXPECT_EQ(off.fastForwarded, 0u);

    Cycle first = ~0ull;
    for (const fi::FaultSpec& f : mask.faults)
        first = std::min(first, f.injectCycle);
    const fi::LadderRung* rung = golden.rungAtOrBefore(first);
    EXPECT_EQ(on.fastForwarded, rung ? rung->cycle : 0)
        << "onset " << first;
    return on;
}

fi::FaultSampler stuckAtSampler(const char* spec) {
    fi::FaultSampler sampler;
    sampler.base = fi::FaultModel::StuckAt1;
    sampler.spec = fi::FaultModelSpec::parse(spec);
    return sampler;
}

} // namespace

TEST(StuckAtLadder, SampledOnsetsFastForwardThroughTheLadder) {
    const fi::GoldenRun& golden = crcGolden();
    const fi::FaultSampler sampler = stuckAtSampler("burst k=2");
    unsigned fastForwarded = 0;
    for (unsigned salt = 0; salt < 12; ++salt)
        fastForwarded += runStuckAt(golden, sampler, salt)
                             .fastForwarded != 0;
    // With 8 rungs over the window, most sampled onsets land past the
    // first rung; all zero means the fast-forward is hard-disabled
    // for permanent faults again (the pre-fault-model behavior).
    EXPECT_GT(fastForwarded, 0u);
}

TEST(StuckAtLadder, LegacyCycleZeroStuckAtNeverFastForwards) {
    // The legacy Single stuck-at keeps onset 0: nothing to skip, and
    // pre-fault-model campaigns must keep their exact behavior.
    const fi::GoldenRun& golden = crcGolden();
    fi::FaultSampler sampler;
    sampler.base = fi::FaultModel::StuckAt0;
    for (unsigned salt = 0; salt < 6; ++salt) {
        const fi::RunVerdict v = runStuckAt(golden, sampler, salt);
        EXPECT_EQ(v.fastForwarded, 0u);
    }
}

TEST(StuckAtLadder, OnsetBoundaryCases) {
    const fi::GoldenRun& golden = crcGolden();
    ASSERT_GE(golden.ladder.size(), 3u);
    const fi::FaultSampler sampler = stuckAtSampler("burst k=2");
    // Exactly on a rung: the rung itself is the restore point.
    for (unsigned salt = 0; salt < 4; ++salt) {
        const fi::RunVerdict v = runStuckAt(
            golden, sampler, salt, golden.ladder[2].cycle);
        EXPECT_EQ(v.fastForwarded, golden.ladder[2].cycle);
    }
    // Before the first rung: no rung at-or-before, no fast-forward.
    for (unsigned salt = 0; salt < 4; ++salt) {
        const fi::RunVerdict v = runStuckAt(
            golden, sampler, 10 + salt, golden.ladder[0].cycle / 2);
        EXPECT_EQ(v.fastForwarded, 0u);
    }
    // In the final partial segment: the last rung is the restore
    // point and the stuck-at still holds to the window's end.
    const Cycle last = golden.ladder.back().cycle;
    ASSERT_LT(last + 1, golden.windowCycles);
    for (unsigned salt = 0; salt < 4; ++salt) {
        const fi::RunVerdict v = runStuckAt(
            golden, sampler, 20 + salt,
            last + 1 + (golden.windowCycles - last - 2) * salt / 4);
        EXPECT_EQ(v.fastForwarded, last);
    }
}

TEST(StuckAtLadder, WindowNotDivisibleByRungCount) {
    // 7 rungs floor the stride, leaving a remainder segment; stuck-at
    // onsets spread across the whole window must restore from the
    // off-grid rungs and still match straight-through bit-for-bit.
    const workloads::Workload wl = workloads::get("crc32");
    const soc::SystemConfig cfg = soc::preset("riscv");
    const fi::GoldenRun golden = fi::runGolden(
        cfg, isa::compile(wl.module, cfg.cpu.isa), 500'000'000, 7);
    ASSERT_EQ(golden.ladder.size(), 7u);
    ASSERT_NE(golden.windowCycles % 8, 0u)
        << "pick a rung count that does not divide the window";

    const fi::FaultSampler sampler = stuckAtSampler("burst k=2");
    unsigned fastForwarded = 0;
    for (unsigned salt = 0; salt < 10; ++salt) {
        const Cycle onset = golden.windowCycles * salt / 10;
        const fi::RunVerdict v =
            runStuckAt(golden, sampler, 30 + salt, onset);
        fastForwarded += v.fastForwarded != 0;
    }
    EXPECT_GT(fastForwarded, 0u);
}

// --- pc-targeted sampling against the golden run ---------------------

TEST(FaultModels, MakeSamplerResolvesPcCycles) {
    const fi::GoldenRun& golden = crcGolden();
    // A pc range spanning the whole address space matches every
    // commit: the candidate list must be non-empty and in-window.
    const fi::FaultSampler sampler = fi::makeSampler(
        golden, fi::FaultModel::Transient,
        fi::FaultModelSpec::parse("targeted pc=0x0:0xffffffffffff"));
    ASSERT_FALSE(sampler.pcCycles.empty());
    for (const Cycle c : sampler.pcCycles)
        EXPECT_LT(c, golden.windowCycles);

    const fi::TargetInfo info = fi::targetInfo(
        golden.checkpoint.view(), {fi::TargetId::Rob});
    Rng rng = Rng::forStream(7, 0);
    const fi::FaultMask mask = sampler.sample(
        rng, {fi::TargetId::Rob}, info.geometry, golden.windowCycles);
    EXPECT_LT(mask.faults[0].injectCycle, golden.windowCycles);

    // A pc range no instruction ever commits in is a dead campaign:
    // surface it at sampler-build time, not as 0-fault noise.
    EXPECT_THROW(fi::makeSampler(
                     golden, fi::FaultModel::Transient,
                     fi::FaultModelSpec::parse("targeted pc=0x3:0x3")),
                 FatalError);
}

// --- journal compatibility -------------------------------------------

TEST(JournalCompat, LegacySingleOmitsTheFaultModelField) {
    // The default spec writes byte-for-byte what a pre-fault-model
    // build wrote: no "faultModel" key anywhere in the journal.
    fi::CampaignOptions opts = baseOptions("crc32");
    opts.journalPath = tmpPath("fm_legacy.jsonl");
    sched::runCampaign(crcGolden(), {fi::TargetId::PrfInt}, opts);
    const std::string bytes = slurp(opts.journalPath);
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(bytes.find("faultModel"), std::string::npos);
    const store::Journal journal =
        store::readJournal(opts.journalPath);
    EXPECT_TRUE(journal.meta.faultModel.empty());

    // And a legacy journal resumes under the default spec unchanged.
    fi::CampaignOptions resumeOpts = opts;
    resumeOpts.resume = true;
    const fi::CampaignResult resumed = sched::runCampaign(
        crcGolden(), {fi::TargetId::PrfInt}, resumeOpts);
    EXPECT_EQ(resumed.masked + resumed.sdc + resumed.crash,
              opts.numFaults);
}

TEST(JournalCompat, SpecRecordedAndResumeHeals) {
    const fi::GoldenRun& golden = crcGolden();
    fi::CampaignOptions opts = specOptions(kSpecs[2], "crc32");
    opts.chunkSize = 8;
    opts.journalPath = tmpPath("fm_resume_full.jsonl");
    const fi::CampaignResult full = sched::runCampaign(
        golden, {fi::TargetId::PrfInt}, opts);
    const std::string bytes = slurp(opts.journalPath);
    EXPECT_NE(bytes.find("\"faultModel\":"), std::string::npos);
    EXPECT_NE(bytes.find(kSpecs[2].spec), std::string::npos);

    // Keep the meta plus the first committed chunk, then resume.
    std::size_t cut = bytes.find("\"type\":\"chunk\"");
    ASSERT_NE(cut, std::string::npos);
    cut = bytes.find('\n', cut) + 1;
    const std::string partialPath = tmpPath("fm_resume_partial.jsonl");
    spit(partialPath, bytes.substr(0, cut));

    fi::CampaignOptions resumeOpts = opts;
    resumeOpts.journalPath = partialPath;
    resumeOpts.resume = true;
    const fi::CampaignResult resumed = sched::runCampaign(
        golden, {fi::TargetId::PrfInt}, resumeOpts);
    expectSameCounts(full, resumed);

    const store::Journal healed = store::readJournal(partialPath);
    const store::Journal whole = store::readJournal(opts.journalPath);
    const std::string healedCanon =
        tmpPath("fm_resume_partial.canon.jsonl");
    const std::string wholeCanon =
        tmpPath("fm_resume_full.canon.jsonl");
    store::writeCanonicalJournal(healedCanon, healed.meta,
                                 healed.verdicts);
    store::writeCanonicalJournal(wholeCanon, whole.meta,
                                 whole.verdicts);
    EXPECT_EQ(slurp(healedCanon), slurp(wholeCanon));
}

TEST(JournalCompat, SpecMismatchOnResumeIsFatal) {
    const fi::GoldenRun& golden = crcGolden();
    fi::CampaignOptions opts = specOptions(kSpecs[0], "crc32");
    opts.journalPath = tmpPath("fm_mismatch.jsonl");
    sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    // Same indices, different expansion: resuming under the legacy
    // single-bit spec (or any other) must refuse, not mix masks.
    fi::CampaignOptions wrong = baseOptions("crc32");
    wrong.journalPath = opts.journalPath;
    wrong.resume = true;
    EXPECT_THROW(
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, wrong),
        FatalError);
    wrong.modelSpec = fi::FaultModelSpec::parse("scatter k=3");
    EXPECT_THROW(
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, wrong),
        FatalError);

    // The legacy direction too: a pre-fault-model journal cannot be
    // continued under a multi-bit spec.
    fi::CampaignOptions legacy = baseOptions("crc32");
    legacy.journalPath = tmpPath("fm_mismatch_legacy.jsonl");
    sched::runCampaign(golden, {fi::TargetId::PrfInt}, legacy);
    fi::CampaignOptions upgrade = specOptions(kSpecs[0], "crc32");
    upgrade.journalPath = legacy.journalPath;
    upgrade.resume = true;
    EXPECT_THROW(
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, upgrade),
        FatalError);
}

TEST(JournalCompat, SpecMismatchOnMergeIsFatal) {
    const fi::GoldenRun& golden = crcGolden();
    std::vector<std::string> paths;
    const char* specs[2] = {"burst k=3", "scatter k=3"};
    for (u32 s = 0; s < 2; ++s) {
        fi::CampaignOptions opts = baseOptions("crc32");
        opts.modelSpec = fi::FaultModelSpec::parse(specs[s]);
        opts.shardIndex = s;
        opts.shardCount = 2;
        opts.journalPath = tmpPath(strfmt("fm_merge%u.jsonl", s));
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);
        paths.push_back(opts.journalPath);
    }
    try {
        sched::mergeJournals(paths);
        FAIL() << "merge of mismatched fault-model specs succeeded";
    } catch (const FatalError& e) {
        // The message must name both specs and the offending file.
        const std::string what = e.what();
        EXPECT_NE(what.find("burst k=3"), std::string::npos) << what;
        EXPECT_NE(what.find("scatter k=3"), std::string::npos) << what;
        EXPECT_NE(what.find(paths[1]), std::string::npos) << what;
    }
}

TEST(JournalCompat, ReplayDerivesTheMaskFromTheJournaledSpec) {
    const fi::GoldenRun& golden = crcGolden();
    fi::CampaignOptions opts = specOptions(kSpecs[0], "crc32");
    opts.journalPath = tmpPath("fm_replay.jsonl");
    sched::runCampaign(golden, {fi::TargetId::Rob}, opts);
    const store::Journal journal =
        store::readJournal(opts.journalPath);
    ASSERT_EQ(journal.meta.faultModel, std::string("burst k=3"));

    const sched::ReplaySetup setup = sched::replaySetup(
        golden, journal.meta, 5, opts.journalPath);
    ASSERT_EQ(setup.mask.faults.size(), 3u); // the burst, not one bit
    const fi::RunVerdict replayed =
        fi::runWithFault(golden, setup.mask, setup.options);
    const auto journaled = sched::findVerdict(journal, 5);
    ASSERT_TRUE(journaled.has_value());
    EXPECT_TRUE(sched::verdictsIdentical(replayed, *journaled))
        << replayed.toString() << " vs " << journaled->toString();
}
