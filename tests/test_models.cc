/**
 * @file
 * Statistical + unit tests for the pluggable fault-model layer.
 *
 * The fault-model layer turns a fault index's RNG stream into a fault
 * mask; every campaign-identity property (resume, shard merge,
 * distributed dispatch, replay) rides on that mapping being exact.
 * These tests pin it from three directions:
 *
 *  - spec plumbing: canonical-string round-trips, strict parse
 *    failures, the map-file format, and the [fault_model] config
 *    section;
 *  - sampling: chi-square goodness-of-fit for weightedIndex and the
 *    correlated sampler's marginals against their probability maps,
 *    burst width/contiguity, scatter arity, targeted range clamping,
 *    and stuck-at onset cycles under non-Single kinds;
 *  - determinism: the Single kind is draw-for-draw identical to the
 *    legacy randomFault, and fixed-seed golden vectors pin the exact
 *    masks each spec derives so any change to the draw order is a
 *    loud test failure, not a silent re-mapping of old journals.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "fi/fault.hh"
#include "fi/models.hh"

using namespace marvel;

namespace {

std::string tmpPath(const std::string& name) {
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

void spit(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
}

fi::TargetGeometry geom(u32 entries, u32 bits) {
    fi::TargetGeometry g;
    g.entries = entries;
    g.bitsPerEntry = bits;
    return g;
}

/** Pearson chi-square statistic over observed vs expected counts. */
double chiSquare(const std::vector<double>& observed,
                 const std::vector<double>& expected) {
    double chi2 = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double d = observed[i] - expected[i];
        chi2 += d * d / expected[i];
    }
    return chi2;
}

// p = 0.001 critical values; a fixed seed makes the draw sequence
// deterministic, so these never flake — they only fail if the sampler
// itself changes.
constexpr double kChi2Crit1 = 10.83; ///< df = 1
constexpr double kChi2Crit3 = 16.27; ///< df = 3
constexpr double kChi2Crit7 = 24.32; ///< df = 7

} // namespace

// --- spec strings ----------------------------------------------------

TEST(ModelSpec, CanonicalStringsRoundTrip) {
    const char* specs[] = {
        "burst k=3",
        "scatter k=5",
        "correlated roww=1,3",
        "correlated colw=1,2,4,2",
        "correlated roww=1,3 colw=1,2,4,2",
        "targeted entry=2:5",
        "targeted bit=0:7",
        "targeted cycle=10:90",
        "targeted pc=0x1000:0x1040",
        "targeted entry=2:5 bit=0:7 cycle=10:90 pc=0x1000:0x1040",
    };
    for (const char* text : specs) {
        const fi::FaultModelSpec spec = fi::FaultModelSpec::parse(text);
        EXPECT_EQ(spec.toString(), text);
        EXPECT_EQ(fi::FaultModelSpec::parse(spec.toString()), spec);
        EXPECT_FALSE(spec.legacy());
    }
}

TEST(ModelSpec, EmptyAndBlankParseAsLegacySingle) {
    EXPECT_TRUE(fi::FaultModelSpec::parse("").legacy());
    EXPECT_TRUE(fi::FaultModelSpec::parse("   ").legacy());
    EXPECT_EQ(fi::FaultModelSpec{}.toString(), "");
    EXPECT_EQ(fi::FaultModelSpec::parse("single"),
              fi::FaultModelSpec{});
}

TEST(ModelSpec, MalformedSpecsAreFatal) {
    EXPECT_THROW(fi::FaultModelSpec::parse("bogus"), FatalError);
    EXPECT_THROW(fi::FaultModelSpec::parse("burst k=0"), FatalError);
    EXPECT_THROW(fi::FaultModelSpec::parse("burst k"), FatalError);
    EXPECT_THROW(fi::FaultModelSpec::parse("burst k=x"), FatalError);
    // Keys are strict per kind: no silent cross-kind acceptance.
    EXPECT_THROW(fi::FaultModelSpec::parse("burst roww=1,2"),
                 FatalError);
    EXPECT_THROW(fi::FaultModelSpec::parse("single k=2"), FatalError);
    // A kind with no parameters is an empty population, not a default.
    EXPECT_THROW(fi::FaultModelSpec::parse("correlated"), FatalError);
    EXPECT_THROW(fi::FaultModelSpec::parse("targeted"), FatalError);
    EXPECT_THROW(fi::FaultModelSpec::parse("correlated roww=0,0"),
                 FatalError);
    EXPECT_THROW(fi::FaultModelSpec::parse("targeted entry=5:2"),
                 FatalError);
    EXPECT_THROW(fi::FaultModelSpec::parse("targeted cycle=10"),
                 FatalError);
}

// --- map files -------------------------------------------------------

TEST(CorrelatedMapFile, ParsesRowsColsAndComments) {
    const fi::CorrelatedMap map = fi::CorrelatedMap::parseText(
        "# undervolted SRAM corner map\n"
        "row 1 3   # odd rows 3x as vulnerable\n"
        "\n"
        "col 1 2 4 2\n");
    EXPECT_EQ(map.rowWeights, (std::vector<u32>{1, 3}));
    EXPECT_EQ(map.colWeights, (std::vector<u32>{1, 2, 4, 2}));

    const fi::CorrelatedMap rowsOnly =
        fi::CorrelatedMap::parseText("row 2 1\n");
    EXPECT_EQ(rowsOnly.rowWeights, (std::vector<u32>{2, 1}));
    EXPECT_TRUE(rowsOnly.colWeights.empty());
}

TEST(CorrelatedMapFile, MalformedMapsAreFatal) {
    EXPECT_THROW(fi::CorrelatedMap::parseText(""), FatalError);
    EXPECT_THROW(fi::CorrelatedMap::parseText("# only comments\n"),
                 FatalError);
    EXPECT_THROW(fi::CorrelatedMap::parseText("diag 1 2\n"),
                 FatalError);
    EXPECT_THROW(fi::CorrelatedMap::parseText("row 1\nrow 2\n"),
                 FatalError);
    EXPECT_THROW(fi::CorrelatedMap::parseText("row 0 0\n"),
                 FatalError);
    EXPECT_THROW(fi::CorrelatedMap::parseText("row\n"), FatalError);
    EXPECT_THROW(fi::CorrelatedMap::parseText("row 1 x\n"),
                 FatalError);
    EXPECT_THROW(fi::CorrelatedMap::parseFile("/nonexistent/map"),
                 FatalError);
}

TEST(CorrelatedMapFile, FileAndTextAgree) {
    const std::string path = tmpPath("models_map.txt");
    spit(path, "row 1 3\ncol 1 2 4 2\n");
    EXPECT_EQ(fi::CorrelatedMap::parseFile(path),
              fi::CorrelatedMap::parseText("row 1 3\ncol 1 2 4 2\n"));
}

// --- [fault_model] config section ------------------------------------

TEST(ModelConfig, SectionBuildsSpecs) {
    EXPECT_TRUE(fi::FaultModelSpec::fromConfig(
                    ConfigFile::parse("[cpu]\nwidth = 4\n"))
                    .legacy());

    const fi::FaultModelSpec burst = fi::FaultModelSpec::fromConfig(
        ConfigFile::parse("[fault_model]\nkind = burst\nk = 3\n"));
    EXPECT_EQ(burst.toString(), "burst k=3");

    const fi::FaultModelSpec corr = fi::FaultModelSpec::fromConfig(
        ConfigFile::parse("[fault_model]\nkind = correlated\n"
                          "roww = 1,3\ncolw = 1,2,4,2\n"));
    EXPECT_EQ(corr.toString(), "correlated roww=1,3 colw=1,2,4,2");

    const fi::FaultModelSpec targeted =
        fi::FaultModelSpec::fromConfig(ConfigFile::parse(
            "[fault_model]\nkind = targeted\nentry = 2:5\n"
            "pc = 0x1000:0x1040\n"));
    EXPECT_EQ(targeted.toString(),
              "targeted entry=2:5 pc=0x1000:0x1040");
}

TEST(ModelConfig, MapFileKeyLoadsWeights) {
    const std::string path = tmpPath("models_cfg_map.txt");
    spit(path, "row 1 3\ncol 2 1\n");
    const fi::FaultModelSpec spec = fi::FaultModelSpec::fromConfig(
        ConfigFile::parse("[fault_model]\nkind = correlated\nmap = " +
                          path + "\n"));
    EXPECT_EQ(spec.toString(), "correlated roww=1,3 colw=2,1");
}

TEST(ModelConfig, KeysWithSingleKindAreFatal) {
    EXPECT_THROW(fi::FaultModelSpec::fromConfig(ConfigFile::parse(
                     "[fault_model]\nkind = single\nk = 2\n")),
                 FatalError);
    EXPECT_THROW(fi::FaultModelSpec::fromConfig(ConfigFile::parse(
                     "[fault_model]\nk = 2\n")),
                 FatalError);
}

// --- weightedIndex ---------------------------------------------------

TEST(WeightedIndex, ChiSquareMatchesWeights) {
    // weights {1,2,4,2} tiled over n = 64: residue class i has 16
    // members of weight w_i, so class probability is w_i / 9.
    const std::vector<u32> weights{1, 2, 4, 2};
    const u64 n = 64;
    const unsigned draws = 20'000;
    Rng rng = Rng::forStream(0xC0FFEE, 0);
    std::vector<double> classCounts(4, 0.0);
    std::vector<u64> perIndex(n, 0);
    for (unsigned i = 0; i < draws; ++i) {
        const u64 idx = fi::weightedIndex(rng, n, weights);
        ASSERT_LT(idx, n);
        classCounts[idx % 4] += 1.0;
        ++perIndex[idx];
    }
    const double total = 1 + 2 + 4 + 2;
    std::vector<double> expected;
    for (const u32 w : weights)
        expected.push_back(draws * w / total);
    EXPECT_LT(chiSquare(classCounts, expected), kChi2Crit3);
    // Within a residue class every member must be uniform: the map is
    // positional, not index-specific.
    for (u64 residue = 0; residue < 4; ++residue) {
        double worst = 0.0;
        const double classExp = classCounts[residue] / (n / 4);
        for (u64 idx = residue; idx < n; idx += 4) {
            const double d = perIndex[idx] - classExp;
            worst += d * d / classExp;
        }
        EXPECT_LT(worst, 39.25) // chi-square df=15, p=0.001
            << "residue " << residue;
    }
}

TEST(WeightedIndex, UnevenDomainUsesExactClassSizes) {
    // n = 11 over weights {1,3}: class 0 has 6 members, class 1 has
    // 5, so P(class 1) = 15/21 — NOT 1/2 weighted 3x. This pins the
    // integer class-size arithmetic.
    const std::vector<u32> weights{1, 3};
    const u64 n = 11;
    const unsigned draws = 20'000;
    Rng rng = Rng::forStream(0xC0FFEE, 1);
    std::vector<double> classCounts(2, 0.0);
    for (unsigned i = 0; i < draws; ++i)
        classCounts[fi::weightedIndex(rng, n, weights) % 2] += 1.0;
    const std::vector<double> expected{draws * 6.0 / 21.0,
                                       draws * 15.0 / 21.0};
    EXPECT_LT(chiSquare(classCounts, expected), kChi2Crit1);
}

TEST(WeightedIndex, EmptyWeightsAreUniform) {
    const u64 n = 8;
    const unsigned draws = 16'000;
    Rng rng = Rng::forStream(0xC0FFEE, 2);
    std::vector<double> counts(n, 0.0);
    for (unsigned i = 0; i < draws; ++i)
        counts[fi::weightedIndex(rng, n, {})] += 1.0;
    const std::vector<double> expected(n, draws / double(n));
    EXPECT_LT(chiSquare(counts, expected), kChi2Crit7);
}

TEST(WeightedIndex, ZeroWeightExcludesClass) {
    const std::vector<u32> weights{0, 1};
    Rng rng = Rng::forStream(0xC0FFEE, 3);
    for (unsigned i = 0; i < 1'000; ++i)
        EXPECT_EQ(fi::weightedIndex(rng, 8, weights) % 2, 1u);
}

TEST(WeightedIndex, DegenerateInputsAreFatal) {
    Rng rng = Rng::forStream(0xC0FFEE, 4);
    EXPECT_THROW(fi::weightedIndex(rng, 0, {1}), FatalError);
    // Every in-domain class weighted zero: nothing to draw.
    EXPECT_THROW(fi::weightedIndex(rng, 2, {0, 0, 5}), FatalError);
}

// --- sampler distributions -------------------------------------------

namespace {

fi::FaultSampler samplerFor(const std::string& spec,
                            fi::FaultModel base =
                                fi::FaultModel::Transient) {
    fi::FaultSampler sampler;
    sampler.base = base;
    sampler.spec = fi::FaultModelSpec::parse(spec);
    return sampler;
}

constexpr fi::TargetRef kRef{fi::TargetId::Rob};

} // namespace

TEST(Sampler, CorrelatedMarginalsMatchTheMap) {
    const fi::FaultSampler sampler =
        samplerFor("correlated roww=1,3 colw=1,2,4,2");
    const fi::TargetGeometry g = geom(8, 8);
    const unsigned draws = 20'000;
    std::vector<double> rowCounts(2, 0.0), colCounts(4, 0.0);
    for (unsigned i = 0; i < draws; ++i) {
        Rng rng = Rng::forStream(0x5eed, i);
        const fi::FaultMask mask = sampler.sample(rng, kRef, g, 1000);
        ASSERT_EQ(mask.faults.size(), 1u);
        rowCounts[mask.faults[0].entry % 2] += 1.0;
        colCounts[mask.faults[0].bit % 4] += 1.0;
        EXPECT_LT(mask.faults[0].injectCycle, 1000u);
    }
    EXPECT_LT(chiSquare(rowCounts, {draws * 1.0 / 4, draws * 3.0 / 4}),
              kChi2Crit1);
    EXPECT_LT(chiSquare(colCounts,
                        {draws * 1.0 / 9, draws * 2.0 / 9,
                         draws * 4.0 / 9, draws * 2.0 / 9}),
              kChi2Crit3);
}

TEST(Sampler, BurstIsContiguousSharedCycle) {
    const fi::FaultSampler sampler = samplerFor("burst k=3");
    const fi::TargetGeometry g = geom(16, 8);
    for (unsigned i = 0; i < 500; ++i) {
        Rng rng = Rng::forStream(0x5eed, i);
        const fi::FaultMask mask = sampler.sample(rng, kRef, g, 1000);
        ASSERT_EQ(mask.faults.size(), 3u);
        const fi::FaultSpec& first = mask.faults[0];
        for (unsigned b = 0; b < 3; ++b) {
            EXPECT_EQ(mask.faults[b].entry, first.entry);
            EXPECT_EQ(mask.faults[b].injectCycle, first.injectCycle);
            EXPECT_EQ(mask.faults[b].bit,
                      (first.bit + b) % g.bitsPerEntry);
        }
    }
}

TEST(Sampler, BurstWidthDistributionIsUniformOverStartBits) {
    // Every start bit equally likely: the burst must not favor
    // low-order positions (a classic modulo-bias bug).
    const fi::FaultSampler sampler = samplerFor("burst k=3");
    const fi::TargetGeometry g = geom(16, 8);
    const unsigned draws = 16'000;
    std::vector<double> startCounts(8, 0.0);
    for (unsigned i = 0; i < draws; ++i) {
        Rng rng = Rng::forStream(0xB00, i);
        const fi::FaultMask mask = sampler.sample(rng, kRef, g, 1000);
        startCounts[mask.faults[0].bit] += 1.0;
    }
    EXPECT_LT(chiSquare(startCounts,
                        std::vector<double>(8, draws / 8.0)),
              kChi2Crit7);
}

TEST(Sampler, BurstWiderThanTheEntryCapsAtTheWidth) {
    // k past bitsPerEntry would wrap and flip bits twice (a transient
    // no-op), so the burst caps at the full entry.
    const fi::FaultSampler sampler = samplerFor("burst k=20");
    const fi::TargetGeometry g = geom(4, 8);
    Rng rng = Rng::forStream(0x5eed, 0);
    const fi::FaultMask mask = sampler.sample(rng, kRef, g, 1000);
    ASSERT_EQ(mask.faults.size(), 8u);
    std::vector<bool> seen(8, false);
    for (const fi::FaultSpec& f : mask.faults) {
        EXPECT_FALSE(seen[f.bit]) << "bit " << f.bit << " repeated";
        seen[f.bit] = true;
    }
}

TEST(Sampler, ScatterDrawsKIndependentBitsOneCycle) {
    const fi::FaultSampler sampler = samplerFor("scatter k=4");
    const fi::TargetGeometry g = geom(16, 8);
    bool crossEntry = false;
    for (unsigned i = 0; i < 500; ++i) {
        Rng rng = Rng::forStream(0x5eed, i);
        const fi::FaultMask mask = sampler.sample(rng, kRef, g, 1000);
        ASSERT_EQ(mask.faults.size(), 4u);
        for (const fi::FaultSpec& f : mask.faults) {
            EXPECT_EQ(f.injectCycle, mask.faults[0].injectCycle);
            EXPECT_LT(f.entry, g.entries);
            EXPECT_LT(f.bit, g.bitsPerEntry);
            crossEntry |= f.entry != mask.faults[0].entry;
        }
    }
    EXPECT_TRUE(crossEntry); // scatter is not a burst
}

TEST(Sampler, TargetedRespectsEveryRange) {
    const fi::FaultSampler sampler =
        samplerFor("targeted entry=2:5 bit=1:3 cycle=10:90");
    const fi::TargetGeometry g = geom(16, 8);
    for (unsigned i = 0; i < 500; ++i) {
        Rng rng = Rng::forStream(0x5eed, i);
        const fi::FaultMask mask = sampler.sample(rng, kRef, g, 1000);
        ASSERT_EQ(mask.faults.size(), 1u);
        const fi::FaultSpec& f = mask.faults[0];
        EXPECT_GE(f.entry, 2u);
        EXPECT_LE(f.entry, 5u);
        EXPECT_GE(f.bit, 1u);
        EXPECT_LE(f.bit, 3u);
        EXPECT_GE(f.injectCycle, 10u);
        EXPECT_LE(f.injectCycle, 90u);
    }
}

TEST(Sampler, TargetedClampsOpenEndedRangesToGeometry) {
    const fi::FaultSampler sampler = samplerFor("targeted entry=14:99");
    const fi::TargetGeometry g = geom(16, 8);
    for (unsigned i = 0; i < 200; ++i) {
        Rng rng = Rng::forStream(0x5eed, i);
        const fi::FaultMask mask = sampler.sample(rng, kRef, g, 1000);
        EXPECT_GE(mask.faults[0].entry, 14u);
        EXPECT_LT(mask.faults[0].entry, 16u);
    }
}

TEST(Sampler, TargetedFiltersMissingTheTargetAreFatal) {
    const fi::TargetGeometry g = geom(16, 8);
    Rng rng = Rng::forStream(0x5eed, 0);
    EXPECT_THROW(
        samplerFor("targeted entry=20:30").sample(rng, kRef, g, 1000),
        FatalError);
    EXPECT_THROW(
        samplerFor("targeted bit=9:12").sample(rng, kRef, g, 1000),
        FatalError);
    EXPECT_THROW(samplerFor("targeted cycle=5000:6000")
                     .sample(rng, kRef, g, 1000),
                 FatalError);
    // A pc filter needs resolved candidate cycles (fi::makeSampler's
    // job); sampling without them is a misuse, not a quiet fallback.
    EXPECT_THROW(samplerFor("targeted pc=0x0:0xffff")
                     .sample(rng, kRef, g, 1000),
                 FatalError);
}

TEST(Sampler, TargetedPcDrawsFromResolvedCycles) {
    fi::FaultSampler sampler = samplerFor("targeted pc=0x100:0x200");
    sampler.pcCycles = {7, 42, 99};
    const fi::TargetGeometry g = geom(16, 8);
    for (unsigned i = 0; i < 200; ++i) {
        Rng rng = Rng::forStream(0x5eed, i);
        const fi::FaultMask mask = sampler.sample(rng, kRef, g, 1000);
        const Cycle when = mask.faults[0].injectCycle;
        EXPECT_TRUE(when == 7 || when == 42 || when == 99)
            << "cycle " << when;
    }
}

// --- legacy equivalence and stuck-at onset ---------------------------

TEST(Sampler, SingleKindIsDrawIdenticalToRandomFault) {
    const fi::TargetGeometry g = geom(64, 32);
    for (const fi::FaultModel base :
         {fi::FaultModel::Transient, fi::FaultModel::StuckAt0,
          fi::FaultModel::StuckAt1}) {
        fi::FaultSampler sampler;
        sampler.base = base;
        for (unsigned i = 0; i < 200; ++i) {
            Rng a = Rng::forStream(424242, i);
            Rng b = Rng::forStream(424242, i);
            const fi::FaultMask mask =
                sampler.sample(a, kRef, g, 5000);
            const fi::FaultSpec legacy =
                fi::randomFault(b, kRef, g, 5000, base);
            ASSERT_EQ(mask.faults.size(), 1u);
            EXPECT_EQ(mask.faults[0].entry, legacy.entry);
            EXPECT_EQ(mask.faults[0].bit, legacy.bit);
            EXPECT_EQ(mask.faults[0].model, legacy.model);
            EXPECT_EQ(mask.faults[0].injectCycle, legacy.injectCycle);
            // And the two streams stay in lock-step afterwards.
            EXPECT_EQ(a(), b());
        }
    }
}

TEST(Sampler, LegacyStuckAtKeepsOnsetZero) {
    fi::FaultSampler sampler;
    sampler.base = fi::FaultModel::StuckAt1;
    const fi::TargetGeometry g = geom(16, 8);
    for (unsigned i = 0; i < 100; ++i) {
        Rng rng = Rng::forStream(0x5eed, i);
        EXPECT_EQ(sampler.sample(rng, kRef, g, 1000)
                      .faults[0]
                      .injectCycle,
                  0u);
    }
}

TEST(Sampler, NonSingleStuckAtGetsSampledOnsets) {
    // Under non-Single kinds a stuck-at fault carries an onset cycle
    // like a transient: that is what lets the ladder fast-forward to
    // the rung at-or-before it.
    const fi::TargetGeometry g = geom(16, 8);
    for (const char* spec : {"burst k=2", "scatter k=2",
                             "correlated roww=1,3"}) {
        fi::FaultSampler sampler =
            samplerFor(spec, fi::FaultModel::StuckAt1);
        unsigned nonZero = 0;
        for (unsigned i = 0; i < 100; ++i) {
            Rng rng = Rng::forStream(0x5eed, i);
            const fi::FaultMask mask =
                sampler.sample(rng, kRef, g, 1000);
            for (const fi::FaultSpec& f : mask.faults) {
                EXPECT_EQ(f.model, fi::FaultModel::StuckAt1);
                EXPECT_LT(f.injectCycle, 1000u);
                nonZero += f.injectCycle != 0;
            }
        }
        EXPECT_GT(nonZero, 0u) << spec;
    }
}

// --- fixed-seed golden vectors ---------------------------------------

TEST(Sampler, FixedSeedGoldenVectors) {
    // Exact masks for (seed 424242, indices 0..2) per spec. These pin
    // the draw ORDER, not just the marginals: any reordering of rng
    // consumption silently re-maps every journaled fault index, so a
    // change here must be a conscious, journal-breaking decision.
    const fi::TargetGeometry g = geom(16, 8);
    struct Vector {
        const char* spec;
        fi::FaultModel base;
        unsigned index;
        const char* mask;
    };
    const Vector vectors[] = {
        {"", fi::FaultModel::Transient, 0,
         "rob accel=0 mem=0 entry=5 bit=3 model=transient cycle=454"},
        {"", fi::FaultModel::Transient, 1,
         "rob accel=0 mem=0 entry=5 bit=3 model=transient cycle=287"},
        {"burst k=3", fi::FaultModel::Transient, 0,
         "rob accel=0 mem=0 entry=5 bit=3 model=transient cycle=454; "
         "rob accel=0 mem=0 entry=5 bit=4 model=transient cycle=454; "
         "rob accel=0 mem=0 entry=5 bit=5 model=transient cycle=454"},
        {"burst k=3", fi::FaultModel::StuckAt1, 1,
         "rob accel=0 mem=0 entry=5 bit=3 model=stuck-at-1 "
         "cycle=287; "
         "rob accel=0 mem=0 entry=5 bit=4 model=stuck-at-1 "
         "cycle=287; "
         "rob accel=0 mem=0 entry=5 bit=5 model=stuck-at-1 "
         "cycle=287"},
        {"scatter k=2", fi::FaultModel::Transient, 0,
         "rob accel=0 mem=0 entry=6 bit=3 model=transient cycle=365; "
         "rob accel=0 mem=0 entry=15 bit=1 model=transient "
         "cycle=365"},
        {"correlated roww=1,3 colw=1,2,4,2",
         fi::FaultModel::Transient, 0,
         "rob accel=0 mem=0 entry=10 bit=5 model=transient "
         "cycle=454"},
        {"targeted entry=2:5 bit=1:3 cycle=10:90",
         fi::FaultModel::Transient, 2,
         "rob accel=0 mem=0 entry=4 bit=1 model=transient cycle=66"},
    };
    for (const Vector& v : vectors) {
        const fi::FaultSampler sampler = samplerFor(v.spec, v.base);
        Rng rng = Rng::forStream(424242, v.index);
        const fi::FaultMask mask = sampler.sample(rng, kRef, g, 1000);
        EXPECT_EQ(mask.toString(), v.mask)
            << "spec '" << v.spec << "' index " << v.index;
    }
}
