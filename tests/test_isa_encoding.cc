/**
 * @file
 * Encoder/decoder round-trip and totality property tests for the three
 * ISA flavors.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "isa/encoding.hh"
#include "isa/uop.hh"

using namespace marvel;
using namespace marvel::isa;

namespace {

// Build a corpus of representative legal MInsts for a flavor.
std::vector<MInst> corpusFor(IsaKind kind) {
    std::vector<MInst> out;
    Rng rng(0xC0DE + static_cast<u64>(kind));
    auto reg = [&](unsigned lim) { return static_cast<u8>(rng.below(lim)); };
    const unsigned nInt = isaSpec(kind).numIntArchRegs;
    const unsigned nFp = isaSpec(kind).numFpArchRegs;

    const MOp alu[] = {MOp::Add, MOp::Sub, MOp::Mul, MOp::Div, MOp::DivU,
                       MOp::Rem, MOp::RemU, MOp::And, MOp::Or, MOp::Xor,
                       MOp::Shl, MOp::Shr, MOp::Sra};
    for (MOp op : alu)
        for (int k = 0; k < 8; ++k) {
            MInst mi;
            mi.op = op;
            mi.rd = reg(nInt);
            mi.ra = kind == IsaKind::X86 ? mi.rd : reg(nInt);
            mi.rb = reg(nInt);
            out.push_back(mi);
        }
    const MOp aluI[] = {MOp::AddI, MOp::AndI, MOp::OrI, MOp::XorI};
    for (MOp op : aluI)
        for (int k = 0; k < 8; ++k) {
            MInst mi;
            mi.op = op;
            mi.rd = reg(nInt);
            mi.ra = kind == IsaKind::X86 ? mi.rd : reg(nInt);
            mi.imm = static_cast<i64>(rng.below(4096)) - 2048;
            if (kind == IsaKind::X86)
                mi.imm = static_cast<i32>(rng());
            out.push_back(mi);
        }
    const MOp shifts[] = {MOp::ShlI, MOp::ShrI, MOp::SraI};
    for (MOp op : shifts) {
        MInst mi;
        mi.op = op;
        mi.rd = reg(nInt);
        mi.ra = kind == IsaKind::X86 ? mi.rd : reg(nInt);
        mi.imm = static_cast<i64>(rng.below(64));
        out.push_back(mi);
    }
    // Moves.
    for (int k = 0; k < 4; ++k) {
        MInst mi;
        mi.op = MOp::Mov;
        mi.rd = reg(nInt);
        mi.ra = reg(nInt);
        out.push_back(mi);
        MInst mf;
        mf.op = MOp::Mov;
        mf.fp = true;
        mf.rd = reg(nFp);
        mf.ra = reg(nFp);
        out.push_back(mf);
    }
    // Loads/stores.
    for (unsigned size : {1u, 2u, 4u, 8u}) {
        for (int k = 0; k < 4; ++k) {
            MInst ld;
            ld.op = MOp::Ld;
            ld.rd = reg(nInt);
            ld.ra = reg(nInt);
            ld.size = static_cast<u8>(size);
            ld.sign = size != 8 && rng.chance(0.5);
            ld.imm = static_cast<i64>(rng.below(128)) * size;
            out.push_back(ld);
            MInst st;
            st.op = MOp::St;
            st.ra = reg(nInt);
            st.rb = reg(nInt);
            st.size = static_cast<u8>(size);
            st.imm = static_cast<i64>(rng.below(128)) * size;
            out.push_back(st);
        }
    }
    for (int k = 0; k < 4; ++k) {
        MInst lf;
        lf.op = MOp::LdF;
        lf.rd = reg(nFp);
        lf.ra = reg(nInt);
        lf.imm = static_cast<i64>(rng.below(256)) * 8;
        out.push_back(lf);
        MInst sf;
        sf.op = MOp::StF;
        sf.ra = reg(nInt);
        sf.rb = reg(nFp);
        sf.imm = static_cast<i64>(rng.below(256)) * 8;
        out.push_back(sf);
    }
    // Branches.
    if (kind == IsaKind::RISCV) {
        const Cond conds[] = {Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge,
                              Cond::LtU, Cond::GeU};
        for (Cond c : conds) {
            MInst mi;
            mi.op = MOp::Br;
            mi.cond = c;
            mi.ra = reg(nInt);
            mi.rb = reg(nInt);
            mi.imm = (static_cast<i64>(rng.below(1024)) - 512) * 2;
            out.push_back(mi);
        }
        // RISCV extras.
        for (MOp op : {MOp::Slt, MOp::SltU}) {
            MInst mi;
            mi.op = op;
            mi.rd = reg(nInt);
            mi.ra = reg(nInt);
            mi.rb = reg(nInt);
            out.push_back(mi);
        }
        for (MOp op : {MOp::SltI, MOp::SltIU}) {
            MInst mi;
            mi.op = op;
            mi.rd = reg(nInt);
            mi.ra = reg(nInt);
            mi.imm = static_cast<i64>(rng.below(4096)) - 2048;
            out.push_back(mi);
        }
        MInst lui;
        lui.op = MOp::Lui;
        lui.rd = reg(nInt);
        lui.imm = static_cast<i64>(static_cast<i32>(rng() & 0xfffff000u));
        out.push_back(lui);
        for (Cond c : {Cond::Eq, Cond::Lt, Cond::Le}) {
            MInst fs;
            fs.op = MOp::FSet;
            fs.cond = c;
            fs.rd = reg(nInt);
            fs.ra = reg(nFp);
            fs.rb = reg(nFp);
            out.push_back(fs);
        }
    } else {
        for (unsigned c = 0; c < kNumConds; ++c) {
            MInst mi;
            mi.op = MOp::Br;
            mi.cond = static_cast<Cond>(c);
            mi.imm = kind == IsaKind::ARM
                         ? (static_cast<i64>(rng.below(1024)) - 512) * 4
                         : static_cast<i64>(rng.below(1024)) - 512;
            out.push_back(mi);
            MInst sc;
            sc.op = MOp::SetCC;
            sc.cond = static_cast<Cond>(c);
            sc.rd = reg(nInt);
            out.push_back(sc);
        }
        MInst cmp;
        cmp.op = MOp::Cmp;
        cmp.ra = reg(nInt);
        cmp.rb = reg(nInt);
        out.push_back(cmp);
        MInst cmpi;
        cmpi.op = MOp::CmpI;
        cmpi.ra = reg(nInt);
        cmpi.imm = 42;
        out.push_back(cmpi);
        MInst fcmp;
        fcmp.op = MOp::FCmp;
        fcmp.ra = reg(nFp);
        fcmp.rb = reg(nFp);
        out.push_back(fcmp);
        MInst csel;
        csel.op = MOp::CSel;
        csel.cond = Cond::Ne;
        csel.rd = reg(nInt);
        csel.ra = kind == IsaKind::X86 ? csel.rd : reg(nInt);
        csel.rb = reg(nInt);
        out.push_back(csel);
    }
    if (kind == IsaKind::ARM) {
        for (MOp op : {MOp::MovZ, MOp::MovK})
            for (u8 hw = 0; hw < 4; ++hw) {
                MInst mi;
                mi.op = op;
                mi.rd = reg(nInt);
                mi.subop = hw;
                mi.imm = static_cast<i64>(rng.below(0x10000));
                out.push_back(mi);
            }
    }
    if (kind == IsaKind::X86) {
        MInst m64;
        m64.op = MOp::MovImm64;
        m64.rd = reg(nInt);
        m64.imm = static_cast<i64>(rng());
        out.push_back(m64);
        MInst m32;
        m32.op = MOp::MovImm32;
        m32.rd = reg(nInt);
        m32.imm = static_cast<i32>(rng());
        out.push_back(m32);
        for (u8 sub : {0, 1, 7, 8, 9}) {
            MInst alum;
            alum.op = MOp::AluM;
            alum.rd = reg(nInt);
            alum.ra = reg(nInt);
            alum.subop = sub;
            alum.imm = static_cast<i64>(rng.below(4096));
            out.push_back(alum);
        }
    }
    // Common control.
    MInst jmp;
    jmp.op = MOp::Jmp;
    jmp.imm = kind == IsaKind::ARM ? 4096 : 2048;
    out.push_back(jmp);
    MInst call;
    call.op = MOp::Call;
    call.imm = kind == IsaKind::ARM ? -4096 : -1024;
    out.push_back(call);
    out.push_back(MInst{.op = MOp::Ret});
    MInst jr;
    jr.op = MOp::JmpR;
    jr.ra = static_cast<u8>(2 + rng.below(nInt - 2));
    out.push_back(jr);
    // FP.
    for (MOp op : {MOp::FAdd, MOp::FSub, MOp::FMul, MOp::FDiv}) {
        MInst mi;
        mi.op = op;
        mi.rd = reg(nFp);
        mi.ra = kind == IsaKind::X86 ? mi.rd : reg(nFp);
        mi.rb = reg(nFp);
        out.push_back(mi);
    }
    for (MOp op : {MOp::FSqrt, MOp::ItoF, MOp::FtoI}) {
        MInst mi;
        mi.op = op;
        mi.rd = reg(nFp);
        mi.ra = reg(nFp);
        out.push_back(mi);
    }
    for (u8 sub = 0; sub < 4; ++sub)
        out.push_back(MInst{.op = MOp::Magic, .subop = sub});
    out.push_back(MInst{.op = MOp::Nop});
    return out;
}

bool sameMInst(const MInst& a, const MInst& b) {
    // NOP is encoded through canonical aliases (RISCV: addi x0,x0,0;
    // ARM: mov x0,x0) which decode to the alias, not MOp::Nop.
    auto isNopAlias = [](const MInst& x) {
        return x.op == MOp::Nop ||
               (x.op == MOp::AddI && x.rd == 0 && x.ra == 0 &&
                x.imm == 0) ||
               (x.op == MOp::Mov && x.rd == 0 && x.ra == 0 && !x.fp);
    };
    if (a.op == MOp::Nop || b.op == MOp::Nop)
        return isNopAlias(a) && isNopAlias(b);
    // RISCV integer mov is the addi rd, ra, 0 alias in wide form.
    auto movKey = [](const MInst& x) {
        return std::make_tuple(x.rd, x.ra, x.fp);
    };
    if ((a.op == MOp::Mov && b.op == MOp::AddI && b.imm == 0) ||
        (b.op == MOp::Mov && a.op == MOp::AddI && a.imm == 0))
        return movKey(a) == movKey(b);
    return a.op == b.op && a.rd == b.rd && a.ra == b.ra && a.rb == b.rb &&
           a.cond == b.cond && a.size == b.size && a.sign == b.sign &&
           a.fp == b.fp && a.subop == b.subop && a.imm == b.imm;
}

std::string describe(const MInst& mi) {
    return std::string(mopName(mi.op)) + " rd=" + std::to_string(mi.rd) +
           " ra=" + std::to_string(mi.ra) + " rb=" + std::to_string(mi.rb) +
           " imm=" + std::to_string(mi.imm) +
           " size=" + std::to_string(mi.size) +
           " cond=" + std::to_string(static_cast<int>(mi.cond)) +
           " sub=" + std::to_string(mi.subop) +
           (mi.fp ? " fp" : "") + (mi.sign ? " sign" : "");
}

} // namespace

class EncodingRoundTrip : public ::testing::TestWithParam<IsaKind> {};

TEST_P(EncodingRoundTrip, EncodeDecodeIdentity) {
    const IsaKind kind = GetParam();
    for (const MInst& mi : corpusFor(kind)) {
        const std::vector<u8> bytes = encode(kind, mi);
        ASSERT_FALSE(bytes.empty());
        const DecodeResult dr =
            decodeBytes(kind, bytes.data(), bytes.size());
        EXPECT_FALSE(dr.illegal) << describe(mi);
        EXPECT_EQ(dr.length, bytes.size()) << describe(mi);
        EXPECT_TRUE(sameMInst(dr.mi, mi))
            << "encoded: " << describe(mi)
            << "\ndecoded: " << describe(dr.mi);
    }
}

TEST_P(EncodingRoundTrip, WideFormsAlsoRoundTrip) {
    const IsaKind kind = GetParam();
    for (const MInst& mi : corpusFor(kind)) {
        const std::vector<u8> bytes = encode(kind, mi, false);
        const DecodeResult dr =
            decodeBytes(kind, bytes.data(), bytes.size());
        EXPECT_FALSE(dr.illegal) << describe(mi);
        EXPECT_TRUE(sameMInst(dr.mi, mi)) << describe(mi);
    }
}

TEST_P(EncodingRoundTrip, DecoderIsTotalOnRandomBytes) {
    const IsaKind kind = GetParam();
    Rng rng(0xDEC0DEull);
    for (int trial = 0; trial < 200000; ++trial) {
        u8 buf[kMaxInstLength];
        for (u8& b : buf)
            b = static_cast<u8>(rng.below(256));
        const DecodeResult dr = decodeBytes(kind, buf, sizeof(buf));
        EXPECT_GE(dr.length, 1u);
        EXPECT_LE(dr.length, kMaxInstLength);
        // Every decode (legal or not) must expand to valid uops.
        const DecodedInst di = decodeAndExpand(
            isaSpec(kind), buf, sizeof(buf), 0x1000);
        EXPECT_GE(di.numUops, 1u);
        EXPECT_LE(di.numUops, 3u);
    }
}

TEST_P(EncodingRoundTrip, TruncatedBuffersDecodeIllegal) {
    const IsaKind kind = GetParam();
    for (const MInst& mi : corpusFor(kind)) {
        const std::vector<u8> bytes = encode(kind, mi);
        for (std::size_t avail = 0; avail + 1 < bytes.size(); ++avail) {
            const DecodeResult dr =
                decodeBytes(kind, bytes.data(), avail);
            // Must not read past `avail` (ASAN would flag it) and must
            // either consume fewer bytes or report illegal.
            EXPECT_TRUE(dr.illegal || dr.length <= avail)
                << describe(mi) << " avail=" << avail;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, EncodingRoundTrip,
    ::testing::Values(IsaKind::RISCV, IsaKind::ARM, IsaKind::X86),
    [](const auto& info) { return std::string(isaName(info.param)); });

// ====================================================================
// Decode-masking property (the Fig. 5 mechanism): the fraction of
// single-bit encoding flips that leave an instruction decoding to the
// very same operation differs by flavor — RISCV ignores several fields
// (rounding modes, unused funct bits), while ARM validates every
// must-be-zero field.
// ====================================================================

namespace {

// Fraction of single-bit flips of encoded instructions that still
// decode to an identical MInst.
double maskedFlipFraction(IsaKind kind) {
    unsigned masked = 0;
    unsigned total = 0;
    for (const MInst& mi : corpusFor(kind)) {
        const std::vector<u8> bytes = encode(kind, mi);
        for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
            std::vector<u8> flipped = bytes;
            flipped[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
            const DecodeResult dr =
                decodeBytes(kind, flipped.data(), flipped.size());
            ++total;
            if (!dr.illegal && dr.length == bytes.size() &&
                sameMInst(dr.mi, mi))
                ++masked;
        }
    }
    return static_cast<double>(masked) / total;
}

} // namespace

TEST(EncodingMasking, RiscvToleratesMoreBitFlipsThanArm) {
    const double rv = maskedFlipFraction(IsaKind::RISCV);
    const double arm = maskedFlipFraction(IsaKind::ARM);
    // RISCV's ignored fields give it strictly more decode masking.
    EXPECT_GT(rv, arm);
    // ARM validates nearly everything: almost no flip is silent.
    EXPECT_LT(arm, 0.02);
}

TEST(EncodingMasking, IllegalFractionHighestOnArm) {
    // Complementary view: the fraction of flips that turn a legal
    // instruction into an illegal one (a crash when fetched).
    auto illegalFraction = [](IsaKind kind) {
        unsigned illegal = 0;
        unsigned total = 0;
        for (const MInst& mi : corpusFor(kind)) {
            const std::vector<u8> bytes = encode(kind, mi);
            for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
                std::vector<u8> flipped = bytes;
                flipped[bit / 8] ^=
                    static_cast<u8>(1u << (bit % 8));
                ++total;
                illegal += decodeBytes(kind, flipped.data(),
                                       flipped.size())
                               .illegal;
            }
        }
        return static_cast<double>(illegal) / total;
    };
    const double arm = illegalFraction(IsaKind::ARM);
    const double rv = illegalFraction(IsaKind::RISCV);
    const double x86 = illegalFraction(IsaKind::X86);
    EXPECT_GT(arm, rv);
    EXPECT_GT(arm, x86);
}
