/**
 * @file
 * Convergence short-circuit equivalence battery.
 *
 * The early-stop check is a pure speed optimization: when a faulty
 * run's state is bit-identical to the golden rung snapshot at a
 * ladder boundary, the rest of the run IS the golden run, so the
 * verdict can be fabricated and the run stopped mid-window. These
 * tests pin the property the whole feature rests on — stopping can
 * never change a verdict, a count, or a canonical journal byte:
 *
 *  - campaign counts and per-index verdicts identical with the
 *    short-circuit on and off, ladder on and off, pruning on and off,
 *    across a 3-way shard merge, and for both accelerator engine
 *    classes (dataflow + systolic);
 *  - canonical journals byte-identical in every combination (the
 *    early-stop flag and the stop provenance are normalized away with
 *    the shard geometry);
 *  - audit mode (the force-full-simulation check): every fault the
 *    stop-check WOULD have stopped runs to its real end, and the
 *    fabricated verdict must equal the simulated one field-by-field;
 *  - rung-boundary edge cases: injection exactly on a rung, before
 *    the first rung, in the final partial segment, and with window
 *    sizes that do not divide evenly by the rung count — for the
 *    fast-forward restore AND the stop-check;
 *  - pre-early-stop journals (no "earlyStop" meta field, no
 *    "stopped_rung"/"diverged_at" provenance) read back as
 *    full-window runs and resume/replay/canonicalize unchanged.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "accel/designs/designs.hh"
#include "common/log.hh"
#include "common/memmap.hh"
#include "fi/campaign.hh"
#include "fi/targets.hh"
#include "obs/metrics.hh"
#include "sched/replay.hh"
#include "sched/scheduler.hh"
#include "soc/builder.hh"
#include "soc/checkpoint.hh"
#include "store/journal.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace {

std::string tmpPath(const std::string& name) {
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
}

/** crc32 golden with an 8-rung ladder (the battery's main subject). */
const fi::GoldenRun& crcGolden() {
    static const fi::GoldenRun golden = [] {
        const workloads::Workload wl = workloads::get("crc32");
        const soc::SystemConfig cfg = soc::preset("riscv");
        return fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa),
                             500'000'000, 8);
    }();
    return golden;
}

/** Same workload, no ladder: the short-circuit must be inert. */
const fi::GoldenRun& crcGoldenNoLadder() {
    static const fi::GoldenRun golden = [] {
        const workloads::Workload wl = workloads::get("crc32");
        const soc::SystemConfig cfg = soc::preset("riscv");
        return fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa),
                             500'000'000, 0);
    }();
    return golden;
}

/** Dataflow-engine golden (gemm on the DFG engine), 8 rungs. */
const fi::GoldenRun& dataflowGolden() {
    static const fi::GoldenRun golden = [] {
        soc::SystemConfig cfg = soc::preset("riscv");
        cfg.cluster.designs.push_back(
            accel::designs::makeByName("gemm", kAccelSpaceBase));
        const workloads::Workload wl = workloads::accelDriver("gemm", 0);
        return fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa),
                             500'000'000, 8);
    }();
    return golden;
}

/** Systolic-engine golden (gemm on the PE grid), 8 rungs. */
const fi::GoldenRun& systolicGolden() {
    static const fi::GoldenRun golden = [] {
        soc::SystemConfig cfg = soc::preset("riscv");
        cfg.cluster.designs.push_back(
            accel::designs::makeGemmSystolic(kAccelSpaceBase));
        const workloads::Workload wl =
            workloads::accelDriver("gemm_systolic", 0);
        return fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa),
                             500'000'000, 8);
    }();
    return golden;
}

fi::CampaignOptions baseOptions(const std::string& workload) {
    fi::CampaignOptions opts;
    opts.numFaults = 36;
    opts.seed = 424242;
    opts.threads = 2;
    opts.workloadName = workload;
    return opts;
}

void expectSameCounts(const fi::CampaignResult& a,
                      const fi::CampaignResult& b) {
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.crash, b.crash);
    EXPECT_EQ(a.maskedEarly, b.maskedEarly);
    EXPECT_EQ(a.maskedInvalid, b.maskedInvalid);
    EXPECT_EQ(a.maskedInAccel, b.maskedInAccel);
    EXPECT_EQ(a.pruned, b.pruned);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.hvfCorruptions, b.hvfCorruptions);
}

/** Run one journaled campaign and return its canonical bytes. */
std::string campaignCanon(const fi::GoldenRun& golden,
                          const fi::TargetRef& target,
                          fi::CampaignOptions opts,
                          const std::string& tag,
                          u64* earlyStops = nullptr) {
    obs::CampaignTelemetry telemetry;
    opts.journalPath = tmpPath("sc_" + tag + ".jsonl");
    opts.telemetry = &telemetry;
    sched::runCampaign(golden, target, opts);
    if (earlyStops)
        *earlyStops = telemetry.earlyStops;
    const store::Journal journal =
        store::readJournal(opts.journalPath);
    const std::string canon = tmpPath("sc_" + tag + ".canon.jsonl");
    store::writeCanonicalJournal(canon, journal.meta,
                                 journal.verdicts);
    return slurp(canon);
}

} // namespace

// --- campaign equivalence -------------------------------------------

TEST(ShortCircuit, InMemoryCampaignIdenticalOnVsOff) {
    const fi::GoldenRun& golden = crcGolden();
    fi::CampaignOptions opts = baseOptions("crc32");
    opts.keepVerdicts = true;
    opts.computeHvf = true;
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::On;
    const fi::CampaignResult on =
        fi::runCampaignOnGolden(golden, {fi::TargetId::Rob}, opts);
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::Off;
    const fi::CampaignResult off =
        fi::runCampaignOnGolden(golden, {fi::TargetId::Rob}, opts);

    expectSameCounts(on, off);
    ASSERT_EQ(on.verdicts.size(), off.verdicts.size());
    unsigned stopped = 0;
    for (std::size_t i = 0; i < on.verdicts.size(); ++i) {
        EXPECT_TRUE(
            sched::verdictsIdentical(on.verdicts[i], off.verdicts[i]))
            << "fault " << i << ": " << on.verdicts[i].toString()
            << " vs " << off.verdicts[i].toString();
        EXPECT_EQ(off.verdicts[i].stoppedAt, 0u);
        if (on.verdicts[i].stoppedAt) {
            ++stopped;
            // A fabricated verdict is Masked by construction.
            EXPECT_EQ(on.verdicts[i].outcome, fi::Outcome::Masked)
                << on.verdicts[i].toString();
        }
    }
    // The battery is vacuous if no run ever stopped at a rung.
    EXPECT_GT(stopped, 0u);
}

TEST(ShortCircuit, CanonicalJournalsByteIdenticalOnVsOff) {
    // ROB faults are the short-circuit's bread and butter: corrupted
    // entries are often consumed benignly without perturbing timing,
    // so the faulty run re-joins the golden trajectory exactly.
    const fi::TargetRef target{fi::TargetId::Rob};
    fi::CampaignOptions opts = baseOptions("crc32");
    u64 stops = 0;
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::On;
    const std::string on =
        campaignCanon(crcGolden(), target, opts, "on", &stops);
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::Off;
    const std::string off =
        campaignCanon(crcGolden(), target, opts, "off");
    ASSERT_FALSE(on.empty());
    EXPECT_EQ(on, off);
    EXPECT_GT(stops, 0u);
    // Canonical form strips the provenance and the mode flag.
    EXPECT_EQ(on.find("stopped_rung"), std::string::npos);
    EXPECT_EQ(on.find("\"earlyStop\":1"), std::string::npos);
}

TEST(ShortCircuit, CanonicalJournalsByteIdenticalWithPruning) {
    // --prune changes which faults simulate at all; the stop-check
    // must compose with it without moving a canonical byte.
    const fi::TargetRef target{fi::TargetId::L1D};
    fi::CampaignOptions opts = baseOptions("crc32");
    opts.prune = true;
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::On;
    const std::string on =
        campaignCanon(crcGolden(), target, opts, "prune_on");
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::Off;
    const std::string off =
        campaignCanon(crcGolden(), target, opts, "prune_off");
    ASSERT_FALSE(on.empty());
    EXPECT_EQ(on, off);
}

TEST(ShortCircuit, InertWithoutALadder) {
    // No ladder: nothing to compare against, so On must behave as Off
    // bit-for-bit and resolve Auto to Off in the meta.
    const fi::TargetRef target{fi::TargetId::PrfInt};
    fi::CampaignOptions opts = baseOptions("crc32");
    u64 stops = ~0ull;
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::On;
    const std::string on = campaignCanon(crcGoldenNoLadder(), target,
                                         opts, "nl_on", &stops);
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::Off;
    const std::string off =
        campaignCanon(crcGoldenNoLadder(), target, opts, "nl_off");
    EXPECT_EQ(on, off);
    EXPECT_EQ(stops, 0u);
    EXPECT_EQ(fi::resolveEarlyStop(
                  fi::CampaignOptions::EarlyStopSetting::Auto,
                  crcGoldenNoLadder()),
              fi::EarlyStopMode::Off);
    EXPECT_EQ(fi::resolveEarlyStop(
                  fi::CampaignOptions::EarlyStopSetting::Auto,
                  crcGolden()),
              fi::EarlyStopMode::On);
}

TEST(ShortCircuit, ThreeWayShardMergeCanonicalizesIdentically) {
    // Three early-stopping shards merged must produce the exact bytes
    // of one full-window single-process campaign — the distributed
    // dispatch path rides on this property.
    const fi::GoldenRun& golden = crcGolden();
    fi::CampaignOptions opts = baseOptions("crc32");
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::Off;
    const std::string whole =
        campaignCanon(golden, {fi::TargetId::Rob}, opts, "whole");

    std::vector<store::JournalVerdict> verdicts;
    store::JournalMeta meta;
    for (u32 s = 0; s < 3; ++s) {
        fi::CampaignOptions shardOpts = baseOptions("crc32");
        shardOpts.earlyStop =
            fi::CampaignOptions::EarlyStopSetting::On;
        shardOpts.shardIndex = s;
        shardOpts.shardCount = 3;
        shardOpts.journalPath =
            tmpPath(strfmt("sc_shard%u.jsonl", s));
        sched::runCampaign(golden, {fi::TargetId::Rob}, shardOpts);
        const store::Journal journal =
            store::readJournal(shardOpts.journalPath);
        if (s == 0)
            meta = journal.meta;
        verdicts.insert(verdicts.end(), journal.verdicts.begin(),
                        journal.verdicts.end());
    }
    const std::string canon = tmpPath("sc_shards.canon.jsonl");
    store::writeCanonicalJournal(canon, meta, verdicts);
    EXPECT_EQ(slurp(canon), whole);
}

TEST(ShortCircuit, DataflowEngineCanonicalJournalsByteIdentical) {
    // SPM-bank faults on the dataflow engine either die unread
    // (early-terminated long before a rung) or corrupt the product
    // (never converge), so the equivalence here pins that arming the
    // check on an engine with no stop opportunities is still free.
    // The ROB campaign on the same SoC supplies the stopping runs:
    // convergence must hold with the dataflow engine mid-flight in
    // the compared state.
    const fi::GoldenRun& golden = dataflowGolden();
    const fi::TargetRef target = fi::targetByName(
        golden.checkpoint.view(), "gemm[dataflow].MATRIX1");
    fi::CampaignOptions opts = baseOptions("accel_gemm");
    opts.numFaults = 24;
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::On;
    const std::string on =
        campaignCanon(golden, target, opts, "df_on");
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::Off;
    const std::string off =
        campaignCanon(golden, target, opts, "df_off");
    ASSERT_FALSE(on.empty());
    EXPECT_EQ(on, off);

    u64 stops = 0;
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::On;
    const std::string robOn = campaignCanon(
        golden, {fi::TargetId::Rob}, opts, "df_rob_on", &stops);
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::Off;
    const std::string robOff = campaignCanon(
        golden, {fi::TargetId::Rob}, opts, "df_rob_off");
    EXPECT_EQ(robOn, robOff);
    EXPECT_GT(stops, 0u);
}

TEST(ShortCircuit, SystolicEngineCanonicalJournalsByteIdentical) {
    const fi::GoldenRun& golden = systolicGolden();
    const fi::TargetRef target = fi::targetByName(
        golden.checkpoint.view(), "gemm_systolic[systolic].SEQ");
    fi::CampaignOptions opts = baseOptions("accel_gemm_systolic");
    opts.numFaults = 24;
    u64 stops = 0;
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::On;
    const std::string on =
        campaignCanon(golden, target, opts, "sy_on", &stops);
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::Off;
    const std::string off =
        campaignCanon(golden, target, opts, "sy_off");
    ASSERT_FALSE(on.empty());
    EXPECT_EQ(on, off);
    // SEQ words re-read every cycle but mostly uninterpreted: the
    // systolic engine is where mid-accelerator convergence happens.
    EXPECT_GT(stops, 0u);
}

// --- force-full-simulation audit ------------------------------------

TEST(ShortCircuit, AuditModePredictionsMatchFullSimulation) {
    // Audit mode runs every stop-check but keeps simulating to the
    // window's real end: for every fault the check would have
    // stopped, the fabricated verdict must equal the fully simulated
    // one field-by-field. This is the direct proof that "Masked by
    // construction" holds.
    const fi::GoldenRun& golden = crcGolden();
    unsigned stopped = 0;
    for (fi::TargetId target :
         {fi::TargetId::PrfInt, fi::TargetId::L1D, fi::TargetId::Rob}) {
        const fi::TargetInfo info =
            fi::targetInfo(golden.checkpoint.view(), {target});
        for (unsigned i = 0; i < 15; ++i) {
            Rng rng = Rng::forStream(90210, i);
            fi::FaultMask mask;
            mask.faults.push_back(fi::randomFault(
                rng, {target}, info.geometry, golden.windowCycles,
                fi::FaultModel::Transient));

            fi::EarlyStopAudit audit;
            fi::InjectionOptions opts;
            opts.computeHvf = true;
            opts.earlyStop = fi::EarlyStopMode::Audit;
            opts.auditOut = &audit;
            const fi::RunVerdict real =
                fi::runWithFault(golden, mask, opts);
            EXPECT_EQ(real.stoppedAt, 0u); // audit never stops

            opts.earlyStop = fi::EarlyStopMode::On;
            opts.auditOut = nullptr;
            const fi::RunVerdict on =
                fi::runWithFault(golden, mask, opts);

            EXPECT_TRUE(sched::verdictsIdentical(on, real))
                << info.name << " fault " << i << ": "
                << on.toString() << " vs " << real.toString();
            if (audit.stopped) {
                ++stopped;
                EXPECT_EQ(on.stoppedAt, audit.stoppedAt)
                    << info.name << " fault " << i;
                EXPECT_TRUE(
                    sched::verdictsIdentical(audit.predicted, real))
                    << info.name << " fault " << i << ": predicted "
                    << audit.predicted.toString() << " vs real "
                    << real.toString();
                EXPECT_EQ(audit.predicted.outcome,
                          fi::Outcome::Masked);
            } else {
                EXPECT_EQ(on.stoppedAt, 0u)
                    << info.name << " fault " << i;
            }
        }
    }
    EXPECT_GT(stopped, 0u);
}

// --- rung-boundary edge cases ---------------------------------------

namespace {

/** One fault at a pinned injection cycle; returns the On verdict and
 *  checks it equals Off for every ladder/earlyStop combination. */
fi::RunVerdict runPinned(const fi::GoldenRun& golden, Cycle inject,
                         unsigned salt) {
    const fi::TargetInfo info = fi::targetInfo(
        golden.checkpoint.view(), {fi::TargetId::Rob});
    Rng rng = Rng::forStream(1234, salt);
    fi::FaultMask mask;
    mask.faults.push_back(fi::randomFault(
        rng, {fi::TargetId::Rob}, info.geometry,
        golden.windowCycles, fi::FaultModel::Transient));
    mask.faults[0].injectCycle = inject;

    fi::InjectionOptions opts;
    opts.computeHvf = true;
    opts.earlyStop = fi::EarlyStopMode::On;
    const fi::RunVerdict on = fi::runWithFault(golden, mask, opts);
    opts.earlyStop = fi::EarlyStopMode::Off;
    const fi::RunVerdict off = fi::runWithFault(golden, mask, opts);
    EXPECT_TRUE(sched::verdictsIdentical(on, off))
        << "inject " << inject << ": " << on.toString() << " vs "
        << off.toString();
    EXPECT_EQ(off.stoppedAt, 0u);
    // Fast-forward picks the same rung with the stop-check armed.
    EXPECT_EQ(on.fastForwarded, off.fastForwarded);
    const fi::LadderRung* rung = golden.rungAtOrBefore(inject);
    EXPECT_EQ(on.fastForwarded, rung ? rung->cycle : 0);
    // A stop can only land on a rung strictly after the restore
    // point, and always on an exact rung cycle.
    if (on.stoppedAt) {
        EXPECT_GT(on.stoppedAt, on.fastForwarded);
        bool onRung = false;
        for (const fi::LadderRung& r : golden.ladder)
            onRung |= r.cycle == on.stoppedAt;
        EXPECT_TRUE(onRung) << "stop at " << on.stoppedAt;
    }
    return on;
}

} // namespace

TEST(RungBoundary, InjectionExactlyOnARungCycle) {
    const fi::GoldenRun& golden = crcGolden();
    ASSERT_GE(golden.ladder.size(), 3u);
    for (unsigned salt = 0; salt < 8; ++salt) {
        const fi::RunVerdict v =
            runPinned(golden, golden.ladder[2].cycle, salt);
        // The fault lands before the rung cycle's tick, so the rung
        // itself is the restore point and can never be the stop.
        EXPECT_EQ(v.fastForwarded, golden.ladder[2].cycle);
    }
}

TEST(RungBoundary, InjectionBeforeFirstRung) {
    const fi::GoldenRun& golden = crcGolden();
    ASSERT_FALSE(golden.ladder.empty());
    unsigned stopped = 0;
    for (unsigned salt = 0; salt < 8; ++salt) {
        const fi::RunVerdict v = runPinned(
            golden, golden.ladder[0].cycle / 2, 100 + salt);
        EXPECT_EQ(v.fastForwarded, 0u);
        if (v.stoppedAt)
            ++stopped;
    }
    // Whole ladder ahead of the injection: stops must be reachable.
    EXPECT_GT(stopped, 0u);
}

TEST(RungBoundary, FinalPartialSegmentNeverStops) {
    // Past the last rung there is no boundary left to check, so the
    // run must go the distance no matter what the fault does.
    const fi::GoldenRun& golden = crcGolden();
    ASSERT_FALSE(golden.ladder.empty());
    const Cycle last = golden.ladder.back().cycle;
    ASSERT_LT(last, golden.windowCycles);
    for (unsigned salt = 0; salt < 8; ++salt) {
        const Cycle inject =
            last + 1 + (golden.windowCycles - last - 2) * salt / 8;
        const fi::RunVerdict v = runPinned(golden, inject, 200 + salt);
        EXPECT_EQ(v.fastForwarded, last);
        EXPECT_EQ(v.stoppedAt, 0u) << "inject " << inject;
    }
}

TEST(RungBoundary, WindowNotDivisibleByRungCount) {
    // 7 rungs over the crc32 window leaves a remainder segment (the
    // stride floors), so every boundary sits off the even grid; the
    // fast-forward and the stop-check must agree with the off runs
    // anyway.
    const workloads::Workload wl = workloads::get("crc32");
    const soc::SystemConfig cfg = soc::preset("riscv");
    const fi::GoldenRun golden = fi::runGolden(
        cfg, isa::compile(wl.module, cfg.cpu.isa), 500'000'000, 7);
    ASSERT_EQ(golden.ladder.size(), 7u);
    const Cycle step = golden.windowCycles / 8;
    ASSERT_NE(golden.windowCycles % 8, 0u)
        << "pick a rung count that does not divide the window";
    EXPECT_EQ(golden.ladder.back().cycle, step * 7);
    EXPECT_LT(golden.ladder.back().cycle + step, golden.windowCycles);

    unsigned stopped = 0;
    for (unsigned salt = 0; salt < 10; ++salt) {
        const Cycle inject = golden.windowCycles * salt / 10;
        const fi::RunVerdict v = runPinned(golden, inject, 300 + salt);
        if (v.stoppedAt)
            ++stopped;
    }
    EXPECT_GT(stopped, 0u);
}

// --- pre-early-stop journal compatibility ---------------------------

namespace {

/** Strip every early-stop field, producing the bytes a pre-feature
 *  build would have written for the same campaign. */
std::string stripEarlyStopFields(std::string bytes) {
    auto stripAll = [&](const std::string& needle) {
        std::size_t pos;
        while ((pos = bytes.find(needle)) != std::string::npos)
            bytes.erase(pos, needle.size());
    };
    stripAll(",\"earlyStop\":0");
    stripAll(",\"earlyStops\":0");
    stripAll(",\"stopped_rung\":0,\"diverged_at\":0");
    stripAll(",\"ph_stop_check_us\":0");
    return bytes;
}

} // namespace

TEST(Compat, PreEarlyStopJournalReadsAsFullWindowRuns) {
    const fi::GoldenRun& golden = crcGolden();
    fi::CampaignOptions opts = baseOptions("crc32");
    opts.chunkSize = 8;
    opts.journalPath = tmpPath("sc_compat_new.jsonl");
    const fi::CampaignResult fresh =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    // Rewrite the journal as a pre-feature build would have: no
    // earlyStop meta field, no stop provenance, no stop metrics.
    const std::string newBytes = slurp(opts.journalPath);
    const std::string oldBytes = stripEarlyStopFields(newBytes);
    ASSERT_NE(oldBytes, newBytes);
    ASSERT_EQ(oldBytes.find("earlyStop"), std::string::npos);
    const std::string oldPath = tmpPath("sc_compat_old.jsonl");
    spit(oldPath, oldBytes);

    // Absent fields read as "ran the full window, mode off".
    const store::Journal journal = store::readJournal(oldPath);
    EXPECT_EQ(journal.meta.optEarlyStop, 0u);
    ASSERT_FALSE(journal.verdicts.empty());
    for (const store::JournalVerdict& jv : journal.verdicts) {
        EXPECT_EQ(jv.prov.stoppedRung, 0u);
        EXPECT_EQ(jv.prov.divergedAt, 0u);
    }

    // The old journal canonicalizes to the same bytes as the new one.
    const std::string oldCanon = tmpPath("sc_compat_old.canon.jsonl");
    const std::string newCanon = tmpPath("sc_compat_new.canon.jsonl");
    store::writeCanonicalJournal(oldCanon, journal.meta,
                                 journal.verdicts);
    const store::Journal newJournal =
        store::readJournal(opts.journalPath);
    store::writeCanonicalJournal(newCanon, newJournal.meta,
                                 newJournal.verdicts);
    EXPECT_EQ(slurp(oldCanon), slurp(newCanon));

    // Replay derives the journaled verdict from an old meta.
    const sched::ReplaySetup setup =
        sched::replaySetup(golden, journal.meta, 3, oldPath);
    EXPECT_EQ(setup.options.earlyStop, fi::EarlyStopMode::Off);
    fi::FaultMask mask;
    mask.faults.push_back(setup.fault);
    const fi::RunVerdict replayed =
        fi::runWithFault(golden, mask, setup.options);
    const auto journaled = sched::findVerdict(journal, 3);
    ASSERT_TRUE(journaled.has_value());
    EXPECT_TRUE(sched::verdictsIdentical(replayed, *journaled));
}

TEST(Compat, MixedOldAndNewJournalResumesUnchanged) {
    // A journal started by a pre-feature build and finished by this
    // one holds old-style lines followed by new-style lines; resume
    // must heal it to the same counts as an uninterrupted run.
    const fi::GoldenRun& golden = crcGolden();
    fi::CampaignOptions opts = baseOptions("crc32");
    opts.chunkSize = 8;
    opts.journalPath = tmpPath("sc_mixed_full.jsonl");
    const fi::CampaignResult full =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    // Keep the meta plus the first committed chunk, stripped to the
    // pre-feature format.
    const std::string bytes = slurp(opts.journalPath);
    std::size_t cut = bytes.find("\"type\":\"chunk\"");
    ASSERT_NE(cut, std::string::npos);
    cut = bytes.find('\n', cut) + 1;
    const std::string mixedPath = tmpPath("sc_mixed.jsonl");
    spit(mixedPath, stripEarlyStopFields(bytes.substr(0, cut)));

    fi::CampaignOptions resumeOpts = opts;
    resumeOpts.journalPath = mixedPath;
    resumeOpts.resume = true;
    const fi::CampaignResult resumed =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, resumeOpts);
    expectSameCounts(full, resumed);

    const sched::ShardProgress progress =
        sched::shardProgress(mixedPath);
    EXPECT_TRUE(progress.complete());
    EXPECT_EQ(progress.meta.optEarlyStop, 0u);

    // And the healed mixed journal still canonicalizes to the bytes
    // of the uninterrupted campaign.
    const store::Journal mixed = store::readJournal(mixedPath);
    const store::Journal whole = store::readJournal(opts.journalPath);
    const std::string mixedCanon = tmpPath("sc_mixed.canon.jsonl");
    const std::string wholeCanon = tmpPath("sc_whole.canon.jsonl");
    store::writeCanonicalJournal(mixedCanon, mixed.meta,
                                 mixed.verdicts);
    store::writeCanonicalJournal(wholeCanon, whole.meta,
                                 whole.verdicts);
    EXPECT_EQ(slurp(mixedCanon), slurp(wholeCanon));
}
