/**
 * @file
 * SoC-level tests: system construction from presets and config text,
 * checkpoint determinism (restored runs bit-identical to uninterrupted
 * ones), interrupt controller semantics (GIC/PLIC/APIC), console MMIO,
 * and config round-tripping.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "accel/designs/designs.hh"
#include "common/memmap.hh"
#include "soc/builder.hh"
#include "soc/checkpoint.hh"
#include "workloads/workloads.hh"

using namespace marvel;
using namespace marvel::soc;

TEST(Builder, PresetsMatchTableII) {
    for (const char* name : {"riscv", "arm", "x86"}) {
        const SystemConfig cfg = preset(name);
        EXPECT_EQ(cfg.cpu.isa, isa::isaFromName(name));
        EXPECT_EQ(cfg.cpu.robSize, 128u);
        EXPECT_EQ(cfg.cpu.iqSize, 64u);
        EXPECT_EQ(cfg.cpu.lqSize, 32u);
        EXPECT_EQ(cfg.cpu.sqSize, 32u);
        EXPECT_EQ(cfg.cpu.numIntPregs, 128u);
        EXPECT_EQ(cfg.memory.l1d.sizeBytes, 32u * 1024);
        EXPECT_EQ(cfg.memory.l1d.ways, 4u);
        EXPECT_EQ(cfg.memory.l2.sizeBytes, 1024u * 1024);
        EXPECT_EQ(cfg.memory.l2.ways, 8u);
        EXPECT_TRUE(cfg.cluster.designs.empty());
    }
    const SystemConfig soc = preset("riscv-soc");
    EXPECT_EQ(soc.cluster.designs.size(), 8u);
    EXPECT_THROW(preset("nonsense"), FatalError);
}

TEST(Builder, ConfigTextDrivesConstruction) {
    const SystemConfig cfg = configFromText(
        "[system]\n"
        "isa = arm\n"
        "[cpu]\n"
        "rob = 64\n"
        "int_pregs = 96\n"
        "[cache.l1d]\n"
        "size = 16384\n"
        "ways = 2\n"
        "[accel]\n"
        "design = gemm\n"
        "[accel]\n"
        "design = fft\n");
    EXPECT_EQ(cfg.cpu.isa, isa::IsaKind::ARM);
    EXPECT_EQ(cfg.cpu.robSize, 64u);
    EXPECT_EQ(cfg.cpu.numIntPregs, 96u);
    EXPECT_EQ(cfg.memory.l1d.sizeBytes, 16384u);
    ASSERT_EQ(cfg.cluster.designs.size(), 2u);
    EXPECT_EQ(cfg.cluster.designs[0].name, "gemm");
    EXPECT_EQ(cfg.cluster.designs[1].name, "fft");
    // The generated system must actually run a workload.
    System sys(cfg);
    sys.loadProgram(
        isa::compile(workloads::get("crc32").module,
                     isa::IsaKind::ARM));
    RunExit exit = sys.run(50'000'000);
    while (exit == RunExit::Checkpoint || exit == RunExit::SwitchCpu)
        exit = sys.run(50'000'000);
    EXPECT_EQ(exit, RunExit::Exited);
}

TEST(Builder, ConfigRoundTrips) {
    SystemConfig cfg = preset("x86");
    cfg.cpu.robSize = 96;
    const SystemConfig back = configFromText(configToText(cfg));
    EXPECT_EQ(back.cpu.isa, cfg.cpu.isa);
    EXPECT_EQ(back.cpu.robSize, 96u);
    EXPECT_EQ(back.memory.l2.sizeBytes, cfg.memory.l2.sizeBytes);
}

TEST(Checkpoint, RestoredRunIsBitIdentical) {
    const workloads::Workload wl = workloads::get("sha");
    SystemConfig cfg = preset("riscv");
    const isa::Program prog =
        isa::compile(wl.module, isa::IsaKind::RISCV);

    // Reference: run straight through.
    System ref(cfg);
    ref.loadProgram(prog);
    RunExit exit = ref.run(100'000'000);
    Checkpoint cp;
    while (exit != RunExit::Exited) {
        if (exit == RunExit::Checkpoint)
            cp = Checkpoint::take(ref);
        ASSERT_NE(exit, RunExit::Crashed) << ref.crashReason();
        exit = ref.run(100'000'000);
    }
    ASSERT_TRUE(cp.valid());

    // Restored: continue from the snapshot; identical outcome AND
    // identical cycle count (microarchitectural state preserved).
    System restored = cp.restore();
    exit = restored.run(100'000'000);
    while (exit == RunExit::SwitchCpu || exit == RunExit::Checkpoint)
        exit = restored.run(100'000'000);
    ASSERT_EQ(exit, RunExit::Exited);
    EXPECT_EQ(restored.exitCode, ref.exitCode);
    EXPECT_EQ(restored.totalCycles, ref.totalCycles);
    EXPECT_TRUE(restored.outputWindow() == ref.outputWindow());
    EXPECT_EQ(archStateDigest(restored), archStateDigest(ref));
}

TEST(Checkpoint, MidWindowSnapshotResumesBitIdentically) {
    // The checkpoint-ladder primitive: a snapshot taken mid-flight
    // inside the injection window (not at a magic-op boundary) must
    // resume to the same end state and cycle count as the original.
    const workloads::Workload wl = workloads::get("crc32");
    SystemConfig cfg = preset("riscv");
    const isa::Program prog =
        isa::compile(wl.module, isa::IsaKind::RISCV);
    System ref(cfg);
    ref.loadProgram(prog);
    ASSERT_EQ(ref.run(100'000'000), RunExit::Checkpoint);

    // Tick a few thousand cycles into the window, then snapshot.
    Checkpoint mid;
    for (int c = 0; c < 5'000; ++c) {
        ref.tick();
        ref.cpu.checkpointRequest = false;
        ref.cpu.switchCpuRequest = false;
        ASSERT_FALSE(ref.cpu.crashed()) << ref.crashReason();
        if (c == 2'500)
            mid = Checkpoint::take(ref);
    }
    ASSERT_TRUE(mid.valid());

    RunExit exit = ref.run(100'000'000);
    while (exit == RunExit::SwitchCpu || exit == RunExit::Checkpoint)
        exit = ref.run(100'000'000);
    ASSERT_EQ(exit, RunExit::Exited);

    System resumed = mid.restore();
    exit = resumed.run(100'000'000);
    while (exit == RunExit::SwitchCpu || exit == RunExit::Checkpoint)
        exit = resumed.run(100'000'000);
    ASSERT_EQ(exit, RunExit::Exited);
    EXPECT_EQ(resumed.exitCode, ref.exitCode);
    EXPECT_EQ(resumed.totalCycles, ref.totalCycles);
    EXPECT_TRUE(resumed.outputWindow() == ref.outputWindow());
    EXPECT_EQ(resumed.console, ref.console);
    EXPECT_EQ(archStateDigest(resumed), archStateDigest(ref));
}

TEST(Checkpoint, RepeatedRestoresAreIndependent) {
    const workloads::Workload wl = workloads::get("bitcount");
    SystemConfig cfg = preset("arm");
    const isa::Program prog = isa::compile(wl.module, isa::IsaKind::ARM);
    System sys(cfg);
    sys.loadProgram(prog);
    ASSERT_EQ(sys.run(100'000'000), RunExit::Checkpoint);
    const Checkpoint cp = Checkpoint::take(sys);

    u64 digests[3];
    for (int i = 0; i < 3; ++i) {
        System fork = cp.restore();
        RunExit exit = fork.run(100'000'000);
        while (exit == RunExit::SwitchCpu ||
               exit == RunExit::Checkpoint)
            exit = fork.run(100'000'000);
        ASSERT_EQ(exit, RunExit::Exited);
        digests[i] = archStateDigest(fork);
    }
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(digests[1], digests[2]);
}

TEST(Interrupts, ModelSelectionPerIsa) {
    EXPECT_EQ(irqModelFor(isa::IsaKind::RISCV), IrqModel::Plic);
    EXPECT_EQ(irqModelFor(isa::IsaKind::ARM), IrqModel::Gic);
    EXPECT_EQ(irqModelFor(isa::IsaKind::X86), IrqModel::Apic);
}

TEST(Interrupts, ClaimCompleteProtocol) {
    InterruptController plic(IrqModel::Plic, 8);
    EXPECT_FALSE(plic.pending());
    plic.setLine(3, true);
    EXPECT_TRUE(plic.pending());
    const u32 id = plic.claim();
    EXPECT_EQ(id, 4u); // line + 1
    EXPECT_FALSE(plic.pending()); // claimed lines don't re-assert
    plic.complete(id);
    EXPECT_TRUE(plic.pending()); // still level-asserted
    plic.setLine(3, false);
    EXPECT_FALSE(plic.pending());
}

TEST(Interrupts, PriorityOrdersClaims) {
    InterruptController plic(IrqModel::Plic, 8);
    plic.setPriority(1, 1);
    plic.setPriority(5, 7);
    plic.setLine(1, true);
    plic.setLine(5, true);
    EXPECT_EQ(plic.claim(), 6u); // line 5 first (higher priority)
    EXPECT_EQ(plic.claim(), 2u);
    // Disabled lines never pend.
    InterruptController gic(IrqModel::Gic, 4);
    gic.enable(2, false);
    gic.setLine(2, true);
    EXPECT_FALSE(gic.pending());
}

TEST(System, ConsoleMmioCapturesBytes) {
    mir::ModuleBuilder mb;
    auto fb = mb.func("main", {}, true);
    auto putc = fb.constI(static_cast<i64>(kMmioPutchar));
    for (char c : std::string("marvel"))
        fb.st8(putc, fb.constI(c));
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    mir::verify(mb.module());
    System sys{preset("riscv")};
    sys.loadProgram(isa::compile(mb.module(), isa::IsaKind::RISCV));
    ASSERT_EQ(sys.run(10'000'000), RunExit::Exited);
    EXPECT_EQ(sys.console, "marvel");
}

TEST(System, RejectsIsaMismatchedProgram) {
    System sys{preset("arm")};
    const isa::Program prog =
        isa::compile(workloads::get("crc32").module,
                     isa::IsaKind::RISCV);
    EXPECT_THROW(sys.loadProgram(prog), FatalError);
}

TEST(System, HeterogeneousSocRunsAllDesignsSequentially) {
    // One SoC hosting two accelerators; drivers address them by index.
    SystemConfig cfg = preset("riscv");
    cfg.cluster.designs.push_back(accel::designs::makeByName(
        "mergesort", kAccelSpaceBase));
    cfg.cluster.designs.push_back(accel::designs::makeByName(
        "fft", kAccelSpaceBase + kAccelSpaceStride));
    const workloads::Workload driver =
        workloads::accelDriver("fft", 1);
    System sys(cfg);
    sys.loadProgram(isa::compile(driver.module, isa::IsaKind::RISCV));
    RunExit exit = sys.run(100'000'000);
    while (exit == RunExit::Checkpoint || exit == RunExit::SwitchCpu)
        exit = sys.run(100'000'000);
    ASSERT_EQ(exit, RunExit::Exited) << sys.crashReason();
    EXPECT_EQ(sys.exitCode,
              static_cast<i64>(accel::UnitStatus::Done));
}
