/**
 * @file
 * Observability tests:
 *  - event rings overwrite oldest and count drops;
 *  - tracing is off by default and a TraceSession enables it (RAII);
 *  - an instrumented replay captures pipeline/cache/fault events in
 *    cycle order;
 *  - the Chrome trace exporter emits well-formed JSON with
 *    monotonically non-decreasing ts per tid;
 *  - the marvel-trace replay path (sched::replaySetup from a journal
 *    meta) reproduces every journaled verdict bit-identically;
 *  - propagation lineage explains HVF verdicts (fault consumed,
 *    tainted µops, divergence cycle agrees with the HVF verdict);
 *  - campaign telemetry counts are internally consistent and the
 *    journal's metrics record round-trips them.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>
#include <map>
#include <string>
#include <vector>

#include "fi/campaign.hh"
#include "obs/chrome_trace.hh"
#include "obs/lineage.hh"
#include "obs/metrics.hh"
#include "obs/openmetrics.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "sched/replay.hh"
#include "sched/scheduler.hh"
#include "soc/builder.hh"
#include "stats/stats.hh"
#include "store/journal.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace {

const fi::GoldenRun& sharedGolden() {
    static const fi::GoldenRun golden = [] {
        const workloads::Workload wl = workloads::get("crc32");
        soc::SystemConfig cfg = soc::preset("riscv");
        return fi::runGolden(
            cfg, isa::compile(wl.module, isa::IsaKind::RISCV));
    }();
    return golden;
}

/** One journaled HVF campaign every replay test shares. */
struct SharedCampaign {
    std::string journalPath;
    fi::CampaignResult result;
    store::Journal journal;
};

const SharedCampaign& sharedCampaign() {
    static const SharedCampaign shared = [] {
        SharedCampaign s;
        s.journalPath = testing::TempDir() + "obs_campaign.jsonl";
        std::remove(s.journalPath.c_str());
        fi::CampaignOptions opts;
        opts.numFaults = 24;
        opts.seed = 1234; // yields HVF corruptions (SDC + crash)
        opts.threads = 2;
        opts.computeHvf = true;
        opts.keepVerdicts = true;
        opts.journalPath = s.journalPath;
        opts.workloadName = "crc32";
        s.result = sched::runCampaign(sharedGolden(),
                                      {fi::TargetId::PrfInt}, opts);
        s.journal = store::readJournal(s.journalPath);
        return s;
    }();
    return shared;
}

/** Rebuild the fault mask for one journaled index. */
fi::FaultMask maskFor(const sched::ReplaySetup& setup) {
    fi::FaultMask mask;
    mask.faults.push_back(setup.fault);
    return mask;
}

// --- minimal JSON validator ------------------------------------------
// Just enough of RFC 8259 to prove the exporter's output parses:
// objects, arrays, strings with escapes, numbers, true/false/null.

struct JsonParser {
    const std::string& s;
    std::size_t i = 0;

    explicit JsonParser(const std::string& text) : s(text) {}

    void ws() {
        while (i < s.size() && std::isspace(
                                   static_cast<unsigned char>(s[i])))
            ++i;
    }
    bool eat(char c) {
        ws();
        if (i < s.size() && s[i] == c) { ++i; return true; }
        return false;
    }
    bool string() {
        ws();
        if (i >= s.size() || s[i] != '"') return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size()) return false;
            }
            ++i;
        }
        return eat('"');
    }
    bool number() {
        ws();
        const std::size_t start = i;
        if (i < s.size() && s[i] == '-') ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '+' || s[i] == '-'))
            ++i;
        return i > start;
    }
    bool literal(const char* word) {
        ws();
        const std::size_t len = std::string(word).size();
        if (s.compare(i, len, word) == 0) { i += len; return true; }
        return false;
    }
    bool value() {
        ws();
        if (i >= s.size()) return false;
        switch (s[i]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }
    bool object() {
        if (!eat('{')) return false;
        if (eat('}')) return true;
        do {
            if (!string() || !eat(':') || !value()) return false;
        } while (eat(','));
        return eat('}');
    }
    bool array() {
        if (!eat('[')) return false;
        if (eat(']')) return true;
        do {
            if (!value()) return false;
        } while (eat(','));
        return eat(']');
    }
    bool document() {
        if (!value()) return false;
        ws();
        return i == s.size();
    }
};

} // namespace

TEST(Obs, RingOverwritesOldest) {
    obs::EventRing ring(4);
    for (u64 c = 0; c < 7; ++c)
        ring.push({c, c * 10, 0, obs::EventKind::Fetch,
                   obs::Component::Cpu});
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.dropped(), 3u); // cycles 0..2 overwritten
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.at(i).cycle, 3 + i); // oldest first
}

TEST(Obs, DisabledByDefaultAndRaiiSession) {
    EXPECT_FALSE(obs::enabled());
    MARVEL_OBS_EMIT(obs::Component::Cpu, obs::EventKind::Fetch, 1, 2);
    {
        obs::TraceSession session(16);
        EXPECT_TRUE(obs::enabled());
        obs::setNow(5);
        MARVEL_OBS_EMIT(obs::Component::Dma,
                        obs::EventKind::DmaStart, 0x1000, 64);
        ASSERT_EQ(session.ring(obs::Component::Dma).size(), 1u);
        const obs::TraceEvent& ev =
            session.ring(obs::Component::Dma).at(0);
        EXPECT_EQ(ev.cycle, 5u);
        EXPECT_EQ(ev.a, 0x1000u);
        EXPECT_EQ(ev.b, 64u);
        EXPECT_EQ(ev.kind, obs::EventKind::DmaStart);
    }
    EXPECT_FALSE(obs::enabled());
}

TEST(Obs, InstrumentedReplayCapturesEvents) {
    const SharedCampaign& c = sharedCampaign();
    const sched::ReplaySetup setup =
        sched::replaySetup(sharedGolden(), c.journal.meta, 0);

    obs::TraceSession session(1 << 14);
    fi::runWithFault(sharedGolden(), maskFor(setup), setup.options);

    EXPECT_GT(session.ring(obs::Component::Cpu).size(), 0u);
    EXPECT_GT(session.ring(obs::Component::Fault).size(), 0u);
    // The fault ring always opens with the injection itself.
    EXPECT_EQ(session.ring(obs::Component::Fault).at(0).kind,
              obs::EventKind::FaultInject);
    // Rings fill in simulation order: cycles never decrease.
    for (unsigned comp = 0; comp < obs::kNumComponents; ++comp) {
        const obs::EventRing& ring =
            session.ring(static_cast<obs::Component>(comp));
        for (std::size_t i = 1; i < ring.size(); ++i)
            ASSERT_GE(ring.at(i).cycle, ring.at(i - 1).cycle);
    }
    // merged() interleaves all rings into one cycle-ordered stream.
    const std::vector<obs::TraceEvent> merged = session.merged();
    EXPECT_EQ(merged.size(), session.totalEvents());
    for (std::size_t i = 1; i < merged.size(); ++i)
        ASSERT_GE(merged[i].cycle, merged[i - 1].cycle);
}

TEST(Obs, ChromeTraceIsWellFormedAndMonotonic) {
    const SharedCampaign& c = sharedCampaign();
    const sched::ReplaySetup setup =
        sched::replaySetup(sharedGolden(), c.journal.meta, 1);

    obs::TraceSession session(1 << 14);
    fi::runWithFault(sharedGolden(), maskFor(setup), setup.options);
    const std::string json = obs::chromeTraceJson(session);

    JsonParser parser(json);
    EXPECT_TRUE(parser.document()) << "invalid JSON near offset "
                                   << parser.i;

    // Every complete event carries ts/dur/tid, and ts is
    // monotonically non-decreasing per tid (what trace viewers
    // require of the exporter's ordering).
    std::map<long, double> lastTs;
    std::size_t completes = 0;
    std::size_t pos = 0;
    while ((pos = json.find("\"ph\":\"X\"", pos)) !=
           std::string::npos) {
        const std::size_t end = json.find('}', pos);
        const std::string entry = json.substr(pos, end - pos);
        const std::size_t ts = entry.find("\"ts\":");
        const std::size_t tid = entry.find("\"tid\":");
        ASSERT_NE(ts, std::string::npos);
        ASSERT_NE(tid, std::string::npos);
        ASSERT_NE(entry.find("\"dur\":"), std::string::npos);
        const double tsVal = std::strtod(entry.c_str() + ts + 5,
                                         nullptr);
        const long tidVal = std::strtol(entry.c_str() + tid + 6,
                                        nullptr, 10);
        auto [it, fresh] = lastTs.try_emplace(tidVal, tsVal);
        if (!fresh) {
            ASSERT_GE(tsVal, it->second) << "tid " << tidVal;
            it->second = tsVal;
        }
        ++completes;
        pos = end;
    }
    EXPECT_GT(completes, 0u);
    // One thread-name metadata event per component with any events.
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"cpu\""), std::string::npos);
}

TEST(Obs, ReplayReproducesEveryJournaledVerdict) {
    const SharedCampaign& c = sharedCampaign();
    ASSERT_TRUE(c.journal.hasMeta);
    ASSERT_EQ(c.journal.meta.optHvf, 1u);
    ASSERT_GT(c.journal.verdicts.size(), 0u);

    for (const store::JournalVerdict& jv : c.journal.verdicts) {
        const sched::ReplaySetup setup =
            sched::replaySetup(sharedGolden(), c.journal.meta,
                               jv.idx);
        const fi::RunVerdict replayed = fi::runWithFault(
            sharedGolden(), maskFor(setup), setup.options);
        EXPECT_TRUE(sched::verdictsIdentical(replayed, jv.verdict))
            << "fault " << jv.idx << ": journaled "
            << jv.verdict.toString() << ", replayed "
            << replayed.toString();
    }
}

TEST(Obs, FindVerdictLastRecordWins) {
    store::Journal journal;
    store::JournalVerdict a;
    a.idx = 3;
    a.verdict.outcome = fi::Outcome::Masked;
    store::JournalVerdict b;
    b.idx = 3;
    b.verdict.outcome = fi::Outcome::SDC;
    journal.verdicts = {a, b};
    const auto found = sched::findVerdict(journal, 3);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->outcome, fi::Outcome::SDC);
    EXPECT_FALSE(sched::findVerdict(journal, 4).has_value());
}

TEST(Obs, ReplaySetupRejectsForeignJournal) {
    const SharedCampaign& c = sharedCampaign();
    store::JournalMeta meta = c.journal.meta;
    EXPECT_THROW(sched::replaySetup(sharedGolden(), meta,
                                    meta.numFaults),
                 FatalError); // index out of range
    meta.goldenDigest ^= 1;
    EXPECT_THROW(sched::replaySetup(sharedGolden(), meta, 0),
                 FatalError); // wrong workload/build
}

TEST(Obs, LineageExplainsHvfVerdicts) {
    const SharedCampaign& c = sharedCampaign();
    unsigned corrupted = 0;
    for (const store::JournalVerdict& jv : c.journal.verdicts) {
        if (!jv.verdict.hvfCorruption)
            continue;
        ++corrupted;
        const sched::ReplaySetup setup =
            sched::replaySetup(sharedGolden(), c.journal.meta,
                               jv.idx);
        obs::PropagationTrace lineage;
        fi::InjectionOptions opts = setup.options;
        opts.lineage = &lineage;
        const fi::RunVerdict verdict = fi::runWithFault(
            sharedGolden(), maskFor(setup), opts);
        ASSERT_TRUE(sched::verdictsIdentical(verdict, jv.verdict));

        // A fault that corrupted architectural state must have been
        // consumed and spread through at least one µop (crash runs
        // get the HVF flag forced at the crash cycle, so only the
        // dataflow claims are checked for non-crash outcomes), and
        // the lineage divergence must agree with the HVF verdict.
        if (jv.verdict.outcome != fi::Outcome::Crash) {
            EXPECT_TRUE(lineage.faultRead) << "fault " << jv.idx;
            EXPECT_GT(lineage.taintedUops, 0u)
                << "fault " << jv.idx;
        }
        EXPECT_TRUE(lineage.diverged);
        EXPECT_EQ(lineage.firstDivergence,
                  jv.verdict.hvfCorruptCycle);
        EXPECT_FALSE(lineage.summary().empty());
    }
    // The shared seed produces HVF corruptions; if this fires, the
    // campaign above degenerated and the test lost its subject.
    EXPECT_GT(corrupted, 0u);
}

TEST(Obs, CampaignTelemetryConsistent) {
    const fi::GoldenRun& golden = sharedGolden();
    const std::string path =
        testing::TempDir() + "obs_telemetry.jsonl";
    std::remove(path.c_str());

    fi::CampaignOptions opts;
    opts.numFaults = 16;
    opts.seed = 777;
    opts.threads = 2;
    opts.journalPath = path;
    obs::CampaignTelemetry telemetry;
    opts.telemetry = &telemetry;
    const fi::CampaignResult result =
        sched::runCampaign(golden, {fi::TargetId::PrfInt}, opts);

    EXPECT_EQ(telemetry.runs, opts.numFaults);
    EXPECT_EQ(telemetry.masked + telemetry.sdc + telemetry.crash,
              telemetry.runs);
    EXPECT_EQ(telemetry.masked, result.masked);
    EXPECT_EQ(telemetry.sdc, result.sdc);
    EXPECT_EQ(telemetry.crash, result.crash);
    EXPECT_GT(telemetry.cyclesSimulated, 0u);
    EXPECT_GT(telemetry.wallSeconds, 0.0);
    ASSERT_EQ(telemetry.workers.size(), 2u);
    u64 workerRuns = 0, workerCycles = 0;
    for (const obs::WorkerTelemetry& w : telemetry.workers) {
        workerRuns += w.runs;
        workerCycles += w.simCycles;
    }
    EXPECT_EQ(workerRuns, telemetry.runs);
    EXPECT_EQ(workerCycles, telemetry.cyclesSimulated);

    // Early termination can only save cycles when it triggered.
    if (telemetry.earlyTerminated == 0)
        EXPECT_EQ(telemetry.cyclesSaved, 0u);

    const std::string report =
        obs::formatCampaignMetrics(telemetry);
    EXPECT_NE(report.find("runs"), std::string::npos);
    EXPECT_NE(report.find("worker 0"), std::string::npos);

    // The journal persisted a metrics record matching the telemetry.
    const store::Journal journal = store::readJournal(path);
    ASSERT_TRUE(journal.hasMetrics);
    EXPECT_EQ(journal.metrics.runs, telemetry.runs);
    EXPECT_EQ(journal.metrics.masked, telemetry.masked);
    EXPECT_EQ(journal.metrics.sdc, telemetry.sdc);
    EXPECT_EQ(journal.metrics.crash, telemetry.crash);
    EXPECT_EQ(journal.metrics.earlyTerminated,
              telemetry.earlyTerminated);
    EXPECT_EQ(journal.metrics.cyclesSimulated,
              telemetry.cyclesSimulated);
    EXPECT_EQ(journal.metrics.workers, 2u);
}

TEST(Obs, NoteRunAggregation) {
    obs::CampaignTelemetry t;
    t.noteRun(true, false, false, 100, 400);  // masked, full length
    t.noteRun(true, false, true, 100, 400);   // masked, early
    t.noteRun(false, true, false, 400, 400);  // sdc
    t.noteRun(false, false, false, 50, 400);  // crash
    EXPECT_EQ(t.runs, 4u);
    EXPECT_EQ(t.masked, 2u);
    EXPECT_EQ(t.sdc, 1u);
    EXPECT_EQ(t.crash, 1u);
    EXPECT_EQ(t.earlyTerminated, 1u);
    EXPECT_EQ(t.cyclesSimulated, 650u);
    EXPECT_EQ(t.cyclesSaved, 300u); // only the early run saves
}

// --- wall-clock phase profiler ---------------------------------------

#ifndef MARVEL_STATS_DISABLED

TEST(Profiler, ScopesAccumulateAndResetClears) {
    namespace prof = obs::profiler;
    prof::reset();
    {
        const prof::ScopedPhase timer(prof::Phase::Simulate);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    { const prof::ScopedPhase timer(prof::Phase::Classify); }

    const prof::Totals t = prof::snapshot();
    const auto sim = static_cast<unsigned>(prof::Phase::Simulate);
    const auto cls = static_cast<unsigned>(prof::Phase::Classify);
    EXPECT_EQ(t.calls[sim], 1u);
    EXPECT_GE(t.nanos[sim], 1'000'000u); // slept >= 2ms, timed >= 1ms
    EXPECT_EQ(t.calls[cls], 1u);
    EXPECT_GE(t.totalNanos(), t.nanos[sim]);

    // Both scopes left spans, oldest first.
    const std::vector<prof::Span> spans = prof::spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].phase, prof::Phase::Simulate);
    EXPECT_GE(spans[0].durMicros, 1000u);
    EXPECT_EQ(spans[1].phase, prof::Phase::Classify);
    EXPECT_GE(spans[1].startMicros, spans[0].startMicros);

    prof::reset();
    EXPECT_EQ(prof::snapshot().totalNanos(), 0u);
    EXPECT_TRUE(prof::spans().empty());
}

TEST(Profiler, KillSwitchStopsAccountingAndSinceDiffs) {
    namespace prof = obs::profiler;
    prof::reset();
    prof::setEnabled(false);
    { const prof::ScopedPhase timer(prof::Phase::Prune); }
    EXPECT_EQ(prof::snapshot().totalNanos(), 0u);
    EXPECT_TRUE(prof::spans().empty());
    prof::setEnabled(true);
    EXPECT_TRUE(prof::enabled());

    const prof::Totals before = prof::snapshot();
    { const prof::ScopedPhase timer(prof::Phase::Prune); }
    const prof::Totals delta = prof::snapshot().since(before);
    const auto prune = static_cast<unsigned>(prof::Phase::Prune);
    EXPECT_EQ(delta.calls[prune], 1u);
    for (unsigned p = 0; p < prof::kNumPhases; ++p)
        if (p != prune)
            EXPECT_EQ(delta.calls[p], 0u);
    // since() saturates instead of wrapping when the "later" side is
    // older (e.g. across a reset).
    prof::reset();
    const prof::Totals sat = prof::snapshot().since(delta);
    EXPECT_EQ(sat.calls[prune], 0u);
}

TEST(Profiler, RegStatsExposesPhaseSubtree) {
    namespace prof = obs::profiler;
    prof::reset();
    {
        const prof::ScopedPhase timer(prof::Phase::Simulate);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stats::Group root;
    prof::regStats(root);
    const stats::Snapshot snap = stats::Snapshot::capture(root);
    const std::string text = stats::formatText(snap);
    EXPECT_NE(text.find("profiler.simulate.seconds"),
              std::string::npos);
    EXPECT_NE(text.find("profiler.simulate.calls"),
              std::string::npos);
    EXPECT_NE(text.find("profiler.golden_build.seconds"),
              std::string::npos);
    EXPECT_NE(text.find("profiler.total_seconds"),
              std::string::npos);
    prof::reset();
}

#endif // MARVEL_STATS_DISABLED

TEST(Profiler, PhaseNamesAreStableLowerSnake) {
    namespace prof = obs::profiler;
    const char* expected[prof::kNumPhases] = {
        "golden_build", "rung_capture", "fast_forward",
        "simulate",     "classify",     "prune",
        "journal_io",   "socket_wait",  "stop_check",
    };
    for (unsigned p = 0; p < prof::kNumPhases; ++p)
        EXPECT_STREQ(prof::phaseName(static_cast<prof::Phase>(p)),
                     expected[p]);
}

// --- OpenMetrics exposition ------------------------------------------

namespace {

obs::DispatchTelemetry someDispatch() {
    obs::DispatchTelemetry d;
    d.leasesGranted = 9;
    d.leasesCompleted = 6;
    d.leasesExpired = 2;
    d.leasesRequeued = 1;
    d.verdictsIngested = 54;
    d.duplicateVerdicts = 3;
    d.chunksIngested = 14;
    d.connectionsAccepted = 3;
    d.watchersServed = 1;
    obs::DispatchWorkerStats& w1 = d.workerNamed("alpha");
    w1.leases = 5;
    w1.verdicts = 30;
    w1.reportedRuns = 30;
    w1.reportedBusyMicros = 2'500'000;
    w1.phaseMicros[static_cast<unsigned>(
        obs::profiler::Phase::Simulate)] = 2'000'000;
    w1.lastSeenMillis = 900;
    w1.currentLease = 7;
    w1.chunkLatencySumMillis = 300;
    w1.chunkLatencyMaxMillis = 120;
    w1.chunkGaps = 3;
    d.workerNamed("beta").verdicts = 24;
    return d;
}

obs::CampaignSnapshot someSnapshot() {
    obs::CampaignSnapshot c;
    c.done = 54;
    c.expected = 96;
    c.masked = 40;
    c.sdc = 9;
    c.crash = 5;
    c.pruned = 11;
    c.runsPerSec = 12.5;
    c.avf = 0.26;
    c.margin = 0.08;
    c.etaSeconds = 3.4;
    c.uptimeSeconds = 1.0;
    return c;
}

}  // namespace

TEST(OpenMetrics, RendersParsesBackAndObeysNamingRules) {
    const std::string text =
        obs::openMetricsText(someDispatch(), someSnapshot());
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

    std::vector<obs::MetricSample> samples;
    ASSERT_TRUE(obs::parseOpenMetrics(text, samples));
    ASSERT_FALSE(samples.empty());

    // Spot checks across all three sections.
    const obs::MetricSample* s =
        obs::findSample(samples, "marvel_campaign_runs_total");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->value, 54.0);
    s = obs::findSample(samples,
                        "marvel_dispatch_leases_expired_total");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->value, 2.0);
    s = obs::findSample(samples,
                        "marvel_dispatch_leases_requeued_total");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->value, 1.0);
    s = obs::findSample(samples, "marvel_worker_verdicts_total",
                        "alpha");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->value, 30.0);
    s = obs::findSample(samples, "marvel_worker_busy_seconds_total",
                        "alpha");
    ASSERT_NE(s, nullptr);
    EXPECT_NEAR(s->value, 2.5, 1e-9);
    s = obs::findSample(samples, "marvel_worker_current_lease",
                        "alpha");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->value, 7.0);
    // uptime 1.0s, last heard at uptime 0.9s -> seen 0.1s ago.
    s = obs::findSample(samples, "marvel_worker_last_seen_seconds",
                        "alpha");
    ASSERT_NE(s, nullptr);
    EXPECT_NEAR(s->value, 0.1, 1e-6);
    // The per-phase split carries the phase label.
    bool sawSimulate = false;
    for (const obs::MetricSample& m : samples)
        if (m.name == "marvel_worker_phase_seconds_total" &&
            m.label("worker") == "alpha" &&
            m.label("phase") == "simulate") {
            sawSimulate = true;
            EXPECT_NEAR(m.value, 2.0, 1e-9);
        }
    EXPECT_TRUE(sawSimulate);

    // Naming rules (the contract docs/schemas/metrics.md documents
    // and scripts/validate_metrics.py enforces in CI): marvel_
    // prefix, lower_snake names, HELP+TYPE per family, counters end
    // in _total.
    for (const obs::MetricSample& m : samples) {
        EXPECT_EQ(m.name.rfind("marvel_", 0), 0u) << m.name;
        for (char c : m.name)
            EXPECT_TRUE((c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_')
                << m.name;
        EXPECT_NE(text.find("# HELP " + m.name + " "),
                  std::string::npos)
            << m.name;
        EXPECT_NE(text.find("# TYPE " + m.name + " "),
                  std::string::npos)
            << m.name;
    }
    std::size_t pos = 0;
    while ((pos = text.find("# TYPE ", pos)) != std::string::npos) {
        const std::size_t eol = text.find('\n', pos);
        const std::string decl = text.substr(pos + 7, eol - pos - 7);
        const std::size_t space = decl.find(' ');
        ASSERT_NE(space, std::string::npos);
        const std::string name = decl.substr(0, space);
        const std::string type = decl.substr(space + 1);
        if (type == "counter")
            EXPECT_NE(name.rfind("_total"), std::string::npos)
                << name;
        pos = eol;
    }
}

TEST(OpenMetrics, NonFiniteGaugesRenderAsZero) {
    obs::CampaignSnapshot c = someSnapshot();
    c.runsPerSec = std::numeric_limits<double>::infinity();
    c.etaSeconds = std::nan("");
    const std::string text =
        obs::openMetricsText(obs::DispatchTelemetry{}, c);
    EXPECT_EQ(text.find("inf"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    std::vector<obs::MetricSample> samples;
    ASSERT_TRUE(obs::parseOpenMetrics(text, samples));
    const obs::MetricSample* s =
        obs::findSample(samples, "marvel_campaign_runs_per_second");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->value, 0.0);
}

TEST(OpenMetrics, LabelValuesEscapeAndRoundTrip) {
    obs::DispatchTelemetry d;
    d.workerNamed("we\"ird\\host").verdicts = 5;
    const std::string text =
        obs::openMetricsText(d, obs::CampaignSnapshot{});
    std::vector<obs::MetricSample> samples;
    ASSERT_TRUE(obs::parseOpenMetrics(text, samples));
    const obs::MetricSample* s = obs::findSample(
        samples, "marvel_worker_verdicts_total", "we\"ird\\host");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->value, 5.0);
}

TEST(OpenMetrics, ParserRejectsMalformedLines) {
    std::vector<obs::MetricSample> samples;
    EXPECT_FALSE(obs::parseOpenMetrics("marvel_x", samples));
    EXPECT_FALSE(obs::parseOpenMetrics("marvel_x{oops 1\n", samples));
    EXPECT_FALSE(obs::parseOpenMetrics("marvel_x notanumber\n",
                                       samples));
    EXPECT_FALSE(obs::parseOpenMetrics(
        "marvel_ok 1\ngarbage line\n", samples));
    // Comments and blank lines are fine.
    EXPECT_TRUE(obs::parseOpenMetrics("# HELP x y\n\n# EOF\n",
                                      samples));
    EXPECT_TRUE(samples.empty());
}

// --- Chrome-trace profiler span overlay ------------------------------

TEST(ChromeTrace, ProfilerSpansOverlayAsSecondProcess) {
    obs::TraceSession session(16);
    std::vector<obs::profiler::Span> spans;
    spans.push_back({obs::profiler::Phase::Simulate, 0, 100, 50});
    spans.push_back({obs::profiler::Phase::JournalIo, 1, 200, 10});
    const std::string json = obs::chromeTraceJson(session, spans);
    JsonParser parser(json);
    EXPECT_TRUE(parser.document());
    // Component lanes stay pid 0; profiler lanes are pid 1 with one
    // named thread per profiled thread ordinal.
    EXPECT_NE(json.find("\"name\":\"profiler #0\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"profiler #1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"profiler\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"simulate\",\"cat\":\"profiler\","
                        "\"ph\":\"X\",\"pid\":1,\"tid\":0,"
                        "\"ts\":100,\"dur\":50"),
              std::string::npos);
    // The span-free overload emits the plain document.
    EXPECT_EQ(obs::chromeTraceJson(session, {}),
              obs::chromeTraceJson(session));
}
