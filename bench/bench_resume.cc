/// Persistence-overhead microbenchmarks (google-benchmark): journal
/// append+fsync cost per verdict, tolerant-reader throughput, and
/// campaign throughput of the atomic work-queue scheduler vs. the old
/// fixed-stride split — with and without journaling, to verify the
/// <=2% journaling-overhead budget for realistic chunk sizes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "sched/scheduler.hh"
#include "sched/workqueue.hh"
#include "store/journal.hh"

using namespace marvel;

namespace {

const fi::GoldenRun& crcGolden() {
    static bench::GoldenCache cache;
    return cache.get("crc32", isa::IsaKind::RISCV);
}

std::string scratchPath(const char* name) {
    const char* dir = std::getenv("TMPDIR");
    std::string path = dir && *dir ? dir : "/tmp";
    if (path.back() != '/')
        path += '/';
    path += name;
    std::remove(path.c_str());
    return path;
}

store::JournalMeta benchMeta() {
    store::JournalMeta meta;
    meta.workload = "crc32";
    meta.target = "l1d";
    meta.model = "transient";
    meta.seed = 7;
    meta.numFaults = 1u << 20;
    meta.goldenCycles = 100'000;
    meta.windowCycles = 100'000;
    meta.entries = 512;
    meta.bitsPerEntry = 512;
    return meta;
}

fi::RunVerdict benchVerdict(u64 i) {
    fi::RunVerdict v;
    v.outcome = static_cast<fi::Outcome>(i % 3);
    v.detail = fi::OutcomeDetail::MaskedEarly;
    v.cyclesRun = 10'000 + i;
    return v;
}

/// Cost of one journaled verdict at a given chunk size (fsyncs per
/// chunk amortize across its verdicts).
void BM_JournalAppend(benchmark::State& state) {
    const std::string path = scratchPath("bench_journal.jsonl");
    store::JournalWriter writer;
    writer.create(path, benchMeta(),
                  static_cast<unsigned>(state.range(0)));
    u64 i = 0;
    for (auto _ : state)
        writer.append(i++, benchVerdict(i));
    writer.close();
    std::remove(path.c_str());
    state.SetItemsProcessed(static_cast<i64>(i));
}
BENCHMARK(BM_JournalAppend)->Arg(1)->Arg(8)->Arg(32)->Arg(256);

/// Tolerant-reader throughput over a populated journal (the resume
/// startup cost).
void BM_JournalReplay(benchmark::State& state) {
    const std::string path = scratchPath("bench_replay.jsonl");
    {
        store::JournalWriter writer;
        writer.create(path, benchMeta(), 256);
        for (u64 i = 0; i < 10'000; ++i)
            writer.append(i, benchVerdict(i));
        writer.close();
    }
    for (auto _ : state) {
        const store::Journal journal = store::readJournal(path);
        benchmark::DoNotOptimize(journal.verdicts.size());
    }
    std::remove(path.c_str());
    state.SetItemsProcessed(
        static_cast<i64>(state.iterations()) * 10'000);
}
BENCHMARK(BM_JournalReplay);

/// The old fixed-stride worker split, preserved here as the baseline
/// the atomic work queue replaced: thread t runs indices t, t+T, ...
void runFixedStride(const fi::GoldenRun& golden,
                    const fi::CampaignOptions& opts) {
    const fi::TargetInfo info = fi::targetInfo(
        golden.checkpoint.view(), {fi::TargetId::L1D});
    const unsigned threads = opts.threads ? opts.threads : 1;
    sched::runWorkers(threads, [&](unsigned tid) {
        for (unsigned i = tid; i < opts.numFaults; i += threads) {
            Rng rng = Rng::forStream(opts.seed, i);
            fi::FaultMask mask;
            mask.faults.push_back(fi::randomFault(
                rng, info.ref, info.geometry, golden.windowCycles,
                fi::FaultModel::Transient));
            const fi::RunVerdict v = fi::runWithFault(golden, mask);
            benchmark::DoNotOptimize(v.cyclesRun);
        }
    });
}

fi::CampaignOptions campaignOpts() {
    fi::CampaignOptions opts;
    opts.numFaults = bench::envUnsigned("MARVEL_FAULTS", 40);
    opts.threads = 4;
    opts.seed = 99;
    return opts;
}

void BM_CampaignFixedStride(benchmark::State& state) {
    const fi::GoldenRun& golden = crcGolden();
    const fi::CampaignOptions opts = campaignOpts();
    for (auto _ : state)
        runFixedStride(golden, opts);
    state.SetItemsProcessed(
        static_cast<i64>(state.iterations()) * opts.numFaults);
}
// The campaign work happens in spawned worker threads; measure wall
// time so items_per_second is comparable across the three variants.
BENCHMARK(BM_CampaignFixedStride)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_CampaignWorkQueue(benchmark::State& state) {
    const fi::GoldenRun& golden = crcGolden();
    const fi::CampaignOptions opts = campaignOpts();
    for (auto _ : state) {
        const fi::CampaignResult res = sched::runCampaign(
            golden, {fi::TargetId::L1D}, opts);
        benchmark::DoNotOptimize(res.masked);
    }
    state.SetItemsProcessed(
        static_cast<i64>(state.iterations()) * opts.numFaults);
}
BENCHMARK(BM_CampaignWorkQueue)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Cost of building the golden run with a checkpoint ladder — the
/// one-time price a campaign pays (an extra window replay plus K
/// snapshots) for fast-forwarded faulty runs afterwards.
void BM_GoldenBuildLadder(benchmark::State& state) {
    const workloads::Workload wl = workloads::get("crc32");
    const soc::SystemConfig cfg = soc::preset("riscv");
    const isa::Program prog = isa::compile(wl.module, cfg.cpu.isa);
    const unsigned rungs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const fi::GoldenRun golden =
            fi::runGolden(cfg, prog, 500'000'000, rungs);
        benchmark::DoNotOptimize(golden.ladder.size());
    }
    state.SetLabel(rungs == 0 ? "no-ladder"
                              : std::to_string(rungs) + "-rungs");
}
BENCHMARK(BM_GoldenBuildLadder)
    ->Arg(0)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_CampaignWorkQueueJournaled(benchmark::State& state) {
    const fi::GoldenRun& golden = crcGolden();
    fi::CampaignOptions opts = campaignOpts();
    opts.chunkSize = static_cast<unsigned>(state.range(0));
    const std::string path = scratchPath("bench_campaign.jsonl");
    opts.journalPath = path;
    for (auto _ : state) {
        std::remove(path.c_str());
        const fi::CampaignResult res = sched::runCampaign(
            golden, {fi::TargetId::L1D}, opts);
        benchmark::DoNotOptimize(res.masked);
    }
    std::remove(path.c_str());
    state.SetItemsProcessed(
        static_cast<i64>(state.iterations()) * opts.numFaults);
}
BENCHMARK(BM_CampaignWorkQueueJournaled)
    ->Arg(1)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
