/// Cross-microarchitecture resilience comparison: the same MIR GEMM
/// workload (identical matrices, identical driver) executed on the
/// dataflow engine ("gemm") and the weight-stationary systolic array
/// ("gemm_systolic"), with a per-structure AVF/HVF campaign on every
/// fault-injectable component of each engine. The point of the table
/// is that vulnerability is a property of the *microarchitecture*,
/// not the computation: the two engines produce bit-identical output
/// matrices yet expose different structures for different windows.
#include "accel/designs/designs.hh"
#include "bench_common.hh"

using namespace marvel;

namespace {

fi::GoldenRun goldenFor(const std::string& design) {
    soc::SystemConfig cfg = soc::preset("riscv");
    cfg.cluster.designs.push_back(
        accel::designs::makeByName(design, kAccelSpaceBase));
    const workloads::Workload wl = workloads::accelDriver(design, 0);
    return fi::runGolden(cfg,
                         isa::compile(wl.module, isa::IsaKind::RISCV));
}

} // namespace

int main() {
    fi::CampaignOptions opts = bench::defaultOptions();
    opts.computeHvf = true;

    TextTable table("DSA compare: dataflow vs systolic GEMM "
                    "(identical workload, RISC-V host SoC)");
    table.header({"target", "size(B)", "type", "AVF% (95% CI)",
                  "SDC%", "Crash%", "HVF%", "in-accel"});

    for (const char* design : {"gemm", "gemm_systolic"}) {
        const fi::GoldenRun golden = goldenFor(design);
        const soc::System& view = golden.checkpoint.view();
        const auto& unit = view.cluster.unitC(0);
        for (const fi::TargetInfo& info : fi::listTargets(view)) {
            if (info.ref.id != fi::TargetId::AccelMem)
                continue;
            const fi::CampaignResult res =
                fi::runCampaignOnGolden(golden, info.ref, opts);
            const auto& mem = unit.memories()[info.ref.memIdx];
            table.row(
                {info.name, strfmt("%u", info.geometry.entries * 8),
                 accel::memKindName(mem.kind()),
                 strfmt("%.1f +/-%.1f", res.avf() * 100.0,
                        res.errorMargin() * 100.0),
                 strfmt("%.1f", res.sdcAvf() * 100.0),
                 strfmt("%.1f", res.crashAvf() * 100.0),
                 strfmt("%.1f", res.hvf() * 100.0),
                 strfmt("%llu", static_cast<unsigned long long>(
                                    res.maskedInAccel))});
        }
        std::printf("%s: window %llu cycles\n", design,
                    static_cast<unsigned long long>(
                        golden.windowCycles));
    }
    table.print();
    std::printf("(faults/campaign=%u; in-accel = masked faults whose "
                "corruption was consumed by the engine but never "
                "reached CPU-visible state)\n",
                opts.numFaults);
}
