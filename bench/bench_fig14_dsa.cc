/// Fig. 14 + Table IV: AVF (SDC/Crash breakdown) of fault injection
/// into the Table IV memory components of all eight MachSuite
/// accelerator designs, running full-system with a RISC-V host.
#include "accel/designs/designs.hh"
#include "bench_common.hh"

using namespace marvel;

int main() {
    // Table IV's injection targets.
    const std::pair<const char*, const char*> rows[] = {
        {"bfs", "EDGES"},        {"bfs", "NODES"},
        {"fft", "IMG"},          {"fft", "REAL"},
        {"gemm", "MATRIX1"},     {"gemm", "MATRIX3"},
        {"md_knn", "NLADDR"},    {"md_knn", "FORCEX"},
        {"mergesort", "MAIN"},   {"mergesort", "TEMP"},
        {"spmv", "VAL"},         {"spmv", "COLS"},
        {"stencil2d", "ORIG"},   {"stencil2d", "SOL"},
        {"stencil2d", "FILTER"}, {"stencil3d", "ORIG"},
        {"stencil3d", "SOL"},    {"stencil3d", "C_VAR"},
    };

    fi::CampaignOptions opts = bench::defaultOptions();
    TextTable table(
        "Fig 14: DSA component AVF breakdown (RISC-V host SoC)");
    table.header({"design.component", "size(B)", "type",
                  "AVF% (95% CI)", "SDC%", "Crash%"});

    std::string lastDesign;
    fi::GoldenRun golden;
    for (const auto& [design, component] : rows) {
        if (design != lastDesign) {
            soc::SystemConfig cfg = soc::preset("riscv");
            cfg.cluster.designs.push_back(
                accel::designs::makeByName(design, kAccelSpaceBase));
            workloads::Workload wl = workloads::accelDriver(design, 0);
            golden = fi::runGolden(
                cfg, isa::compile(wl.module, isa::IsaKind::RISCV));
            lastDesign = design;
        }
        const fi::TargetRef ref = fi::targetByName(
            golden.checkpoint.view(),
            std::string(design) + "." + component);
        const fi::TargetInfo info =
            fi::targetInfo(golden.checkpoint.view(), ref);
        const fi::CampaignResult res =
            fi::runCampaignOnGolden(golden, ref, opts);
        const auto& mem = golden.checkpoint.view()
                              .cluster.unitC(0)
                              .memories()[ref.memIdx];
        table.row({std::string(design) + "." + component,
                   strfmt("%u", info.geometry.entries * 8),
                   accel::memKindName(mem.kind()),
                   strfmt("%.1f +/-%.1f", res.avf() * 100.0,
                          res.errorMargin() * 100.0),
                   strfmt("%.1f", res.sdcAvf() * 100.0),
                   strfmt("%.1f", res.crashAvf() * 100.0)});
    }
    table.print();
    std::printf("(faults/campaign=%u)\n", opts.numFaults);
}
