/// Fig. 4 + Fig. 9: Integer physical register file AVF (and its SDC
/// component) for all benchmarks and ISAs, with weighted AVF.
#include "bench_common.hh"
int main() {
    marvel::bench::runIsaSweep(
        "Fig 4/9", "Integer PRF AVF (transient single-bit)",
        marvel::fi::TargetId::PrfInt,
        marvel::fi::FaultModel::Transient, true);
}
