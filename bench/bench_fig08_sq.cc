/// Fig. 8: store queue AVF.
#include "bench_common.hh"
int main() {
    marvel::bench::runIsaSweep(
        "Fig 8", "Store queue AVF (transient single-bit)",
        marvel::fi::TargetId::StoreQueue,
        marvel::fi::FaultModel::Transient, false);
}
