/// Fig. 17: GEMM accelerator design-space exploration - AVF of the
/// MATRIX1 input scratchpad (a), plus runtime and area (b), for five
/// datapath parallelism configurations.
#include "accel/designs/designs.hh"
#include "bench_common.hh"

using namespace marvel;

int main() {
    fi::CampaignOptions opts = bench::defaultOptions();
    TextTable table(
        "Fig 17: GEMM accelerator DSE (parallel functional units)");
    table.header({"config", "FpMul", "ports",
                  "AVF(MATRIX1)% (95% CI)", "cycles", "area(a.u.)"});
    for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
        accel::FuConfig fu;
        for (unsigned i = 0; i < isa::kNumFuClasses; ++i)
            fu.counts[i] = std::max(1u, p / 2);
        fu.counts[(unsigned)isa::FuClass::IntAlu] = 2 * p;
        fu.counts[(unsigned)isa::FuClass::FpMul] = p;
        fu.counts[(unsigned)isa::FuClass::FpAlu] = p;
        fu.counts[(unsigned)isa::FuClass::MemPort] = 2 * p;
        soc::SystemConfig cfg = soc::preset("riscv");
        cfg.cluster.designs.push_back(
            accel::designs::makeGemm(kAccelSpaceBase, &fu));
        workloads::Workload wl = workloads::accelDriver("gemm", 0);
        const fi::GoldenRun golden = fi::runGolden(
            cfg, isa::compile(wl.module, isa::IsaKind::RISCV));
        const fi::TargetRef ref = fi::targetByName(
            golden.checkpoint.view(), "gemm.MATRIX1");
        const fi::CampaignResult res =
            fi::runCampaignOnGolden(golden, ref, opts);
        table.row({strfmt("P%u", p), strfmt("%u", p),
                   strfmt("%u", 2 * p),
                   strfmt("%.1f +/-%.1f", res.avf() * 100.0,
                          res.errorMargin() * 100.0),
                   strfmt("%llu",
                          (unsigned long long)golden.windowCycles),
                   strfmt("%.0f",
                          cfg.cluster.designs[0].area())});
    }
    table.print();
    std::printf("(faults/campaign=%u; fewer units -> longer runtime "
                "-> higher input-SPM AVF)\n", opts.numFaults);
}
