/// SIV-B ablation: the early-termination optimizations (overwritten-
/// before-read, invalid-entry) must not change any verdict while
/// cutting campaign runtime.
#include <chrono>
#include "bench_common.hh"

using namespace marvel;

int main() {
    bench::GoldenCache goldens;
    fi::CampaignOptions opts = bench::defaultOptions();
    opts.keepVerdicts = true;
    TextTable t("Early-termination ablation (riscv, L1D + PRF)");
    t.header({"workload", "target", "time.on(s)", "time.off(s)",
              "speedup", "verdicts equal"});
    for (const char* name : {"crc32", "qsort", "sha"}) {
        const fi::GoldenRun& golden =
            goldens.get(name, isa::IsaKind::RISCV);
        for (fi::TargetId target :
             {fi::TargetId::L1D, fi::TargetId::PrfInt}) {
            auto timeIt = [&](bool early, fi::CampaignResult& out) {
                fi::CampaignOptions o = opts;
                o.earlyTermination = early;
                const auto start =
                    std::chrono::steady_clock::now();
                out = fi::runCampaignOnGolden(golden, {target}, o);
                return std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                    .count();
            };
            fi::CampaignResult on, off;
            const double tOn = timeIt(true, on);
            const double tOff = timeIt(false, off);
            bool equal = on.total() == off.total();
            for (std::size_t i = 0;
                 equal && i < on.verdicts.size(); ++i)
                equal = on.verdicts[i].outcome ==
                        off.verdicts[i].outcome;
            t.row({name, fi::targetIdName(target),
                   strfmt("%.2f", tOn), strfmt("%.2f", tOff),
                   strfmt("%.1fx", tOff / std::max(tOn, 1e-9)),
                   equal ? "yes" : "NO"});
        }
    }
    t.print();
}
