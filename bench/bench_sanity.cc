/// Listing 1 / §IV-F: injector sanity check. A validation program pins
/// the entire L1 data cache with known values; injecting uniformly
/// must measure 100% AVF (full coverage of the injector).
#include "bench_common.hh"

using namespace marvel;

int main() {
    const unsigned words = 32 * 1024 / 8;
    mir::ModuleBuilder mb;
    mb.global("array", words * 8, 64);
    mir::FunctionBuilder fb = mb.func("main", {}, true);
    mir::VReg arr = fb.gaddr("array");
    mir::VReg zero = fb.constI(0);
    auto outer = fb.beginLoop(fb.constI(0), fb.constI(10));
    {
        auto fill = fb.beginLoop(fb.constI(0), fb.constI(words));
        fb.st8(fb.add(arr, fb.shlI(fill.idx, 3)), zero);
        fb.endLoop(fill);
    }
    fb.endLoop(outer);
    fb.checkpoint();
    auto window = fb.beginLoop(fb.constI(0), fb.constI(10000));
    fb.endLoop(window);
    fb.switchCpu();
    mir::VReg sum = fb.constI(0);
    auto read = fb.beginLoop(fb.constI(0), fb.constI(words));
    fb.assign(sum,
              fb.add(sum, fb.ld8(fb.add(arr, fb.shlI(read.idx, 3)))));
    fb.endLoop(read);
    fb.st8(fb.constI((i64)kOutputBase), sum);
    fb.ret(sum);
    mb.setEntry("main");
    mir::verify(mb.module());

    fi::CampaignOptions opts = bench::defaultOptions();
    opts.numFaults = std::max(200u, opts.numFaults);
    TextTable t("Listing 1 sanity: L1D validation program");
    t.header({"ISA", "AVF% (95% CI)", "masked", "sdc", "crash"});
    for (isa::IsaKind kind : isa::kAllIsas) {
        soc::SystemConfig cfg = soc::preset(isa::isaName(kind));
        const fi::GoldenRun golden =
            fi::runGolden(cfg, isa::compile(mb.module(), kind));
        const fi::CampaignResult res = fi::runCampaignOnGolden(
            golden, {fi::TargetId::L1D}, opts);
        t.row({isa::isaName(kind),
               strfmt("%.1f +/-%.1f", res.avf() * 100.0,
                      res.errorMargin() * 100.0),
               strfmt("%llu", (unsigned long long)res.masked),
               strfmt("%llu", (unsigned long long)res.sdc),
               strfmt("%llu", (unsigned long long)res.crash)});
    }
    t.print();
    std::printf("expected: 100.0 AVF on every ISA (paper SIV-F)\n");
}
