/// Fig. 6 + Fig. 11: L1 data cache AVF and SDC component.
#include "bench_common.hh"
int main() {
    marvel::bench::runIsaSweep(
        "Fig 6/11", "L1 data cache AVF (transient single-bit)",
        marvel::fi::TargetId::L1D,
        marvel::fi::FaultModel::Transient, true);
}
