/// Fig. 5 + Fig. 10: L1 instruction cache AVF and SDC component.
#include "bench_common.hh"
int main() {
    marvel::bench::runIsaSweep(
        "Fig 5/10", "L1 instruction cache AVF (transient single-bit)",
        marvel::fi::TargetId::L1I,
        marvel::fi::FaultModel::Transient, true);
}
