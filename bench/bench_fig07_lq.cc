/// Fig. 7: load queue AVF.
#include "bench_common.hh"
int main() {
    marvel::bench::runIsaSweep(
        "Fig 7", "Load queue AVF (transient single-bit)",
        marvel::fi::TargetId::LoadQueue,
        marvel::fi::FaultModel::Transient, false);
}
