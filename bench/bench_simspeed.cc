/// Simulator-throughput microbenchmarks (google-benchmark): cycle rate
/// of the OoO core, checkpoint restore cost, and end-to-end injection
/// run latency. These bound campaign turnaround (paper SIV-B).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.hh"
#include "obs/trace.hh"

using namespace marvel;

namespace {

const fi::GoldenRun& crcGolden() {
    static bench::GoldenCache cache;
    return cache.get("crc32", isa::IsaKind::RISCV);
}

void BM_CpuCycleRate(benchmark::State& state) {
    soc::System sys = crcGolden().checkpoint.restore();
    u64 cycles = 0;
    for (auto _ : state) {
        sys.tick();
        ++cycles;
        if (sys.exited || sys.cpu.crashed())
            sys = crcGolden().checkpoint.restore();
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CpuCycleRate);

void BM_CheckpointRestore(benchmark::State& state) {
    const fi::GoldenRun& golden = crcGolden();
    for (auto _ : state) {
        soc::System sys = golden.checkpoint.restore();
        benchmark::DoNotOptimize(sys.totalCycles);
    }
}
BENCHMARK(BM_CheckpointRestore);

void BM_SingleInjectionRun(benchmark::State& state) {
    const fi::GoldenRun& golden = crcGolden();
    u64 i = 0;
    for (auto _ : state) {
        Rng rng = Rng::forStream(99, i++);
        const fi::TargetInfo info = fi::targetInfo(
            golden.checkpoint.view(), {fi::TargetId::L1D});
        fi::FaultMask mask;
        mask.faults.push_back(fi::randomFault(
            rng, {fi::TargetId::L1D}, info.geometry,
            golden.windowCycles, fi::FaultModel::Transient));
        const fi::RunVerdict v = fi::runWithFault(golden, mask);
        benchmark::DoNotOptimize(v.cyclesRun);
    }
}
BENCHMARK(BM_SingleInjectionRun);

// Overhead guard for the observability hooks (ISSUE acceptance: with
// tracing disabled the cycle rate must stay within noise of the
// pre-obs baseline). Runs the same tick loop as BM_CpuCycleRate with
// tracing off (arg 0) and with a live TraceSession (arg 1); the
// "cycles/s" counters of the two variants quantify the emit-site cost.
void BM_ObsOverheadGuard(benchmark::State& state) {
    const bool traced = state.range(0) != 0;
    std::unique_ptr<obs::TraceSession> session;
    if (traced)
        session = std::make_unique<obs::TraceSession>(1 << 12);
    soc::System sys = crcGolden().checkpoint.restore();
    u64 cycles = 0;
    for (auto _ : state) {
        sys.tick();
        ++cycles;
        if (sys.exited || sys.cpu.crashed())
            sys = crcGolden().checkpoint.restore();
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.SetLabel(traced ? "tracing-on" : "tracing-off");
}
BENCHMARK(BM_ObsOverheadGuard)->Arg(0)->Arg(1);

// Overhead guard for the stats instrumentation (hierarchical
// counters + stride-sampled occupancy histograms). Unlike tracing,
// stats updates have no runtime toggle — they are compiled in or out
// — so the comparison is across builds: configure a second tree with
// -DMARVEL_STATS_DISABLED=ON and compare this benchmark's "cycles/s"
// between the two binaries (acceptance: enabled build within 5%).
// The label records which variant this binary is.
void BM_StatsOverheadGuard(benchmark::State& state) {
    soc::System sys = crcGolden().checkpoint.restore();
    u64 cycles = 0;
    for (auto _ : state) {
        sys.tick();
        ++cycles;
        if (sys.exited || sys.cpu.crashed())
            sys = crcGolden().checkpoint.restore();
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
#ifdef MARVEL_STATS_DISABLED
    state.SetLabel("stats-compiled-out");
#else
    state.SetLabel("stats-on");
#endif
}
BENCHMARK(BM_StatsOverheadGuard);

void BM_CompileWorkload(benchmark::State& state) {
    const workloads::Workload wl = workloads::get("sha");
    for (auto _ : state) {
        const isa::Program prog =
            isa::compile(wl.module, isa::IsaKind::X86);
        benchmark::DoNotOptimize(prog.code.size());
    }
}
BENCHMARK(BM_CompileWorkload);

} // namespace

BENCHMARK_MAIN();
