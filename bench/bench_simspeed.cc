/// Simulator-throughput microbenchmarks (google-benchmark): cycle rate
/// of the OoO core, checkpoint restore cost, and end-to-end injection
/// run latency. These bound campaign turnaround (paper SIV-B).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "sched/scheduler.hh"

using namespace marvel;

namespace {

const fi::GoldenRun& crcGolden() {
    static bench::GoldenCache cache;
    return cache.get("crc32", isa::IsaKind::RISCV);
}

void BM_CpuCycleRate(benchmark::State& state) {
    soc::System sys = crcGolden().checkpoint.restore();
    u64 cycles = 0;
    for (auto _ : state) {
        sys.tick();
        ++cycles;
        if (sys.exited || sys.cpu.crashed())
            sys = crcGolden().checkpoint.restore();
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CpuCycleRate);

void BM_CheckpointRestore(benchmark::State& state) {
    const fi::GoldenRun& golden = crcGolden();
    for (auto _ : state) {
        soc::System sys = golden.checkpoint.restore();
        benchmark::DoNotOptimize(sys.totalCycles);
    }
}
BENCHMARK(BM_CheckpointRestore);

void BM_SingleInjectionRun(benchmark::State& state) {
    const fi::GoldenRun& golden = crcGolden();
    u64 i = 0;
    for (auto _ : state) {
        Rng rng = Rng::forStream(99, i++);
        const fi::TargetInfo info = fi::targetInfo(
            golden.checkpoint.view(), {fi::TargetId::L1D});
        fi::FaultMask mask;
        mask.faults.push_back(fi::randomFault(
            rng, {fi::TargetId::L1D}, info.geometry,
            golden.windowCycles, fi::FaultModel::Transient));
        const fi::RunVerdict v = fi::runWithFault(golden, mask);
        benchmark::DoNotOptimize(v.cyclesRun);
    }
}
BENCHMARK(BM_SingleInjectionRun);

// Same end-to-end injection run, but against a golden with a 16-rung
// checkpoint ladder: arg 0 restores from the window start, arg 1
// fast-forwards from the nearest rung. The per-iteration time gap is
// the ladder's single-run payoff on a short window.
void BM_SingleInjectionRunLadder(benchmark::State& state) {
    static const fi::GoldenRun golden = [] {
        const workloads::Workload wl = workloads::get("crc32");
        const soc::SystemConfig cfg = soc::preset("riscv");
        return fi::runGolden(
            cfg, isa::compile(wl.module, cfg.cpu.isa),
            500'000'000, 16);
    }();
    fi::InjectionOptions opts;
    opts.useLadder = state.range(0) != 0;
    u64 i = 0, simulated = 0;
    for (auto _ : state) {
        Rng rng = Rng::forStream(99, i++);
        const fi::TargetInfo info = fi::targetInfo(
            golden.checkpoint.view(), {fi::TargetId::L1D});
        fi::FaultMask mask;
        mask.faults.push_back(fi::randomFault(
            rng, {fi::TargetId::L1D}, info.geometry,
            golden.windowCycles, fi::FaultModel::Transient));
        const fi::RunVerdict v = fi::runWithFault(golden, mask, opts);
        simulated += v.cyclesRun - v.fastForwarded;
        benchmark::DoNotOptimize(v.cyclesRun);
    }
    state.counters["sim-cycles/run"] = benchmark::Counter(
        static_cast<double>(simulated),
        benchmark::Counter::kAvgIterations);
    state.SetLabel(opts.useLadder ? "ladder-on" : "ladder-off");
}
BENCHMARK(BM_SingleInjectionRunLadder)->Arg(0)->Arg(1);

// Overhead guard for the observability hooks (ISSUE acceptance: with
// tracing disabled the cycle rate must stay within noise of the
// pre-obs baseline). Runs the same tick loop as BM_CpuCycleRate with
// tracing off (arg 0) and with a live TraceSession (arg 1); the
// "cycles/s" counters of the two variants quantify the emit-site cost.
void BM_ObsOverheadGuard(benchmark::State& state) {
    const bool traced = state.range(0) != 0;
    std::unique_ptr<obs::TraceSession> session;
    if (traced)
        session = std::make_unique<obs::TraceSession>(1 << 12);
    soc::System sys = crcGolden().checkpoint.restore();
    u64 cycles = 0;
    for (auto _ : state) {
        sys.tick();
        ++cycles;
        if (sys.exited || sys.cpu.crashed())
            sys = crcGolden().checkpoint.restore();
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.SetLabel(traced ? "tracing-on" : "tracing-off");
}
BENCHMARK(BM_ObsOverheadGuard)->Arg(0)->Arg(1);

// Overhead guard for the stats instrumentation (hierarchical
// counters + stride-sampled occupancy histograms). Unlike tracing,
// stats updates have no runtime toggle — they are compiled in or out
// — so the comparison is across builds: configure a second tree with
// -DMARVEL_STATS_DISABLED=ON and compare this benchmark's "cycles/s"
// between the two binaries (acceptance: enabled build within 5%).
// The label records which variant this binary is.
void BM_StatsOverheadGuard(benchmark::State& state) {
    soc::System sys = crcGolden().checkpoint.restore();
    u64 cycles = 0;
    for (auto _ : state) {
        sys.tick();
        ++cycles;
        if (sys.exited || sys.cpu.crashed())
            sys = crcGolden().checkpoint.restore();
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
#ifdef MARVEL_STATS_DISABLED
    state.SetLabel("stats-compiled-out");
#else
    state.SetLabel("stats-on");
#endif
}
BENCHMARK(BM_StatsOverheadGuard);

// Overhead guard for the wall-clock phase profiler. The injection
// path crosses a handful of ScopedPhase scopes per run (fast-forward,
// simulate, classify), so the end-to-end run latency is the honest
// unit of measure: arg 0 runs with the profiler's runtime kill-switch
// off, arg 1 with it recording. Acceptance: enabled within 5% of
// disabled. (With MARVEL_STATS_DISABLED the scopes compile to
// nothing and the two variants are the same code.)
void BM_ProfilerOverheadGuard(benchmark::State& state) {
    const bool enabled = state.range(0) != 0;
    obs::profiler::setEnabled(enabled);
    const fi::GoldenRun& golden = crcGolden();
    u64 i = 0;
    for (auto _ : state) {
        Rng rng = Rng::forStream(99, i++);
        const fi::TargetInfo info = fi::targetInfo(
            golden.checkpoint.view(), {fi::TargetId::L1D});
        fi::FaultMask mask;
        mask.faults.push_back(fi::randomFault(
            rng, {fi::TargetId::L1D}, info.geometry,
            golden.windowCycles, fi::FaultModel::Transient));
        const fi::RunVerdict v = fi::runWithFault(golden, mask);
        benchmark::DoNotOptimize(v.cyclesRun);
    }
    obs::profiler::setEnabled(true);
    state.SetLabel(enabled ? "profiler-on" : "profiler-off");
}
BENCHMARK(BM_ProfilerOverheadGuard)->Arg(0)->Arg(1);

void BM_CompileWorkload(benchmark::State& state) {
    const workloads::Workload wl = workloads::get("sha");
    for (auto _ : state) {
        const isa::Program prog =
            isa::compile(wl.module, isa::IsaKind::X86);
        benchmark::DoNotOptimize(prog.code.size());
    }
}
BENCHMARK(BM_CompileWorkload);

// --ladder smoke: A/B the same campaign with fast-forwarding on and
// off on the megacycle-window reference workload. Passes only when
// (a) the verdict journals are identical apart from the wall-clock
// metrics trailer and (b) the ladder cuts mean simulated cycles per
// injection by at least 2x (the ISSUE acceptance bar at K=16).
std::vector<std::string> journalVerdictLines(const std::string& path) {
    std::vector<std::string> lines;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return lines;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), f)) {
        std::string line = buf;
        while (!line.empty() &&
               (line.back() == '\n' || line.back() == '\r'))
            line.pop_back();
        if (line.empty() ||
            line.find("\"type\":\"metrics\"") != std::string::npos)
            continue;
        // Verdict records carry per-run provenance (wall time, rung
        // used) that legitimately differs between the two campaigns;
        // re-render each parsed verdict in plain form so the A/B
        // compares outcomes only.
        store::JournalVerdict jv;
        if (store::parseVerdictLine(line, jv))
            lines.push_back(
                store::formatVerdictLine(jv.idx, jv.verdict));
        else
            lines.push_back(line);
    }
    std::fclose(f);
    return lines;
}

int runLadderSmoke() {
    const char* tmp = std::getenv("TMPDIR");
    const std::string dir = tmp && *tmp ? tmp : "/tmp";
    const std::string onPath = dir + "/marvel_ladder_smoke_on.jsonl";
    const std::string offPath = dir + "/marvel_ladder_smoke_off.jsonl";
    std::remove(onPath.c_str());
    std::remove(offPath.c_str());

    const workloads::Workload wl = workloads::get("crc32-long");
    const soc::SystemConfig cfg = soc::preset("riscv");
    std::printf("golden run (%s, riscv, 16-rung ladder)...\n",
                wl.name.c_str());
    const fi::GoldenRun golden = fi::runGolden(
        cfg, isa::compile(wl.module, cfg.cpu.isa), 500'000'000, 16);
    std::printf("  window %llu cycles, %zu rungs\n",
                static_cast<unsigned long long>(golden.windowCycles),
                golden.ladder.size());

    fi::CampaignOptions opts;
    opts.numFaults = bench::envUnsigned("MARVEL_FAULTS", 40);
    // One worker keeps the journal append order deterministic so the
    // two journals can be compared byte-for-byte.
    opts.threads = 1;
    opts.ladderRungs = 16;
    opts.workloadName = wl.name;

    obs::CampaignTelemetry telemOn, telemOff;
    opts.useLadder = true;
    opts.journalPath = onPath;
    opts.telemetry = &telemOn;
    sched::runCampaign(golden, {fi::TargetId::L1D}, opts);
    opts.useLadder = false;
    opts.journalPath = offPath;
    opts.telemetry = &telemOff;
    sched::runCampaign(golden, {fi::TargetId::L1D}, opts);

    bool ok = true;
    const auto on = journalVerdictLines(onPath);
    const auto off = journalVerdictLines(offPath);
    if (on.empty() || on != off) {
        std::fprintf(stderr,
                     "FAIL: ladder-on and ladder-off verdict "
                     "journals differ (%zu vs %zu records)\n",
                     on.size(), off.size());
        ok = false;
    } else {
        std::printf("verdict journals identical (%zu records)\n",
                    on.size());
    }

    const double perRunOn =
        static_cast<double>(telemOn.cyclesSimulated) / opts.numFaults;
    const double perRunOff =
        static_cast<double>(telemOff.cyclesSimulated) / opts.numFaults;
    const double speedup = perRunOn > 0 ? perRunOff / perRunOn : 0.0;
    std::printf("mean simulated cycles per injection: "
                "off %.0f, on %.0f (%.2fx reduction)\n",
                perRunOff, perRunOn, speedup);
    if (speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: ladder speedup %.2fx is below the 2x "
                     "acceptance bar\n",
                     speedup);
        ok = false;
    }
    std::remove(onPath.c_str());
    std::remove(offPath.c_str());
    std::remove((onPath + ".progress").c_str());
    std::remove((offPath + ".progress").c_str());
    std::printf("ladder smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

// --early-stop smoke: A/B the same ROB campaign with the convergence
// short-circuit on and off, stacked on a 16-rung ladder (both sides
// fast-forward; only the stop-check differs). Passes only when
// (a) the verdict records are identical apart from provenance and the
// meta's recorded early-stop flag, (b) at least one run actually
// stopped at a rung, and (c) stopping cuts mean simulated cycles per
// injection by at least 2x (the ISSUE acceptance bar). ROB faults are
// the short-circuit's bread and butter — corrupted entries are often
// consumed benignly without perturbing timing, so the faulty run
// re-joins the golden trajectory exactly.
int runEarlyStopSmoke() {
    const char* tmp = std::getenv("TMPDIR");
    const std::string dir = tmp && *tmp ? tmp : "/tmp";
    const std::string onPath = dir + "/marvel_estop_smoke_on.jsonl";
    const std::string offPath = dir + "/marvel_estop_smoke_off.jsonl";
    std::remove(onPath.c_str());
    std::remove(offPath.c_str());

    const workloads::Workload wl = workloads::get("crc32-long");
    const soc::SystemConfig cfg = soc::preset("riscv");
    std::printf("golden run (%s, riscv, 16-rung ladder)...\n",
                wl.name.c_str());
    const fi::GoldenRun golden = fi::runGolden(
        cfg, isa::compile(wl.module, cfg.cpu.isa), 500'000'000, 16);
    std::printf("  window %llu cycles, %zu rungs\n",
                static_cast<unsigned long long>(golden.windowCycles),
                golden.ladder.size());

    fi::CampaignOptions opts;
    opts.numFaults = bench::envUnsigned("MARVEL_FAULTS", 40);
    // One worker keeps the journal append order deterministic so the
    // two journals can be compared record-for-record.
    opts.threads = 1;
    opts.ladderRungs = 16;
    opts.workloadName = wl.name;
    // Hung runs cost the same with or without the stop-check — they
    // never re-converge, so each one simulates its whole timeout
    // budget on BOTH sides of the A/B. At the default 8x budget the
    // handful of crash-timeout faults in this sample drown the
    // measurement (~70% of all simulated cycles); clamping the budget
    // (identically on both sides, so verdicts still match
    // record-for-record) makes the smoke measure the short-circuit
    // rather than the timeout policy.
    opts.timeoutFactor = 1.25;

    obs::CampaignTelemetry telemOn, telemOff;
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::On;
    opts.journalPath = onPath;
    opts.telemetry = &telemOn;
    sched::runCampaign(golden, {fi::TargetId::Rob}, opts);
    opts.earlyStop = fi::CampaignOptions::EarlyStopSetting::Off;
    opts.journalPath = offPath;
    opts.telemetry = &telemOff;
    sched::runCampaign(golden, {fi::TargetId::Rob}, opts);

    // The meta line legitimately differs (it records the resolved
    // early-stop mode), so the A/B compares verdict records only.
    auto verdictsOnly = [](const std::string& path) {
        std::vector<std::string> lines = journalVerdictLines(path);
        std::erase_if(lines, [](const std::string& l) {
            return l.find("\"type\":\"meta\"") != std::string::npos;
        });
        return lines;
    };

    bool ok = true;
    const auto on = verdictsOnly(onPath);
    const auto off = verdictsOnly(offPath);
    if (on.empty() || on != off) {
        std::fprintf(stderr,
                     "FAIL: early-stop-on and early-stop-off verdict "
                     "journals differ (%zu vs %zu records)\n",
                     on.size(), off.size());
        ok = false;
    } else {
        std::printf("verdict journals identical (%zu records)\n",
                    on.size());
    }

    std::printf("early stops: %llu of %llu runs\n",
                static_cast<unsigned long long>(telemOn.earlyStops),
                static_cast<unsigned long long>(opts.numFaults));
    if (telemOn.earlyStops == 0) {
        std::fprintf(stderr,
                     "FAIL: no run ever stopped at a rung — the "
                     "smoke proved nothing\n");
        ok = false;
    }

    const double perRunOn =
        static_cast<double>(telemOn.cyclesSimulated) / opts.numFaults;
    const double perRunOff =
        static_cast<double>(telemOff.cyclesSimulated) / opts.numFaults;
    const double speedup = perRunOn > 0 ? perRunOff / perRunOn : 0.0;
    std::printf("mean simulated cycles per injection: "
                "off %.0f, on %.0f (%.2fx reduction)\n",
                perRunOff, perRunOn, speedup);
    if (speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: early-stop speedup %.2fx is below the 2x "
                     "acceptance bar\n",
                     speedup);
        ok = false;
    }
    std::remove(onPath.c_str());
    std::remove(offPath.c_str());
    std::remove((onPath + ".progress").c_str());
    std::remove((offPath + ".progress").c_str());
    std::printf("early-stop smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

// google-benchmark rejects flags it does not know, so the ladder and
// early-stop smokes are intercepted before benchmark::Initialize sees
// argv.
int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--ladder")
            return runLadderSmoke();
        if (std::string(argv[i]) == "--early-stop")
            return runEarlyStopSmoke();
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
