/// Fig. 13: SDC probability of permanent (stuck-at) faults, L1D.
#include "bench_common.hh"
int main() {
    marvel::bench::runIsaSweep(
        "Fig 13", "L1D SDC probability under permanent stuck-at faults",
        marvel::fi::TargetId::L1D,
        marvel::fi::FaultModel::StuckAt1, true);
}
