/// Fig. 18: HVF vs AVF for six benchmarks, physical register file and
/// L1 data cache; HVF >= AVF by definition.
#include "bench_common.hh"

using namespace marvel;

int main() {
    fi::CampaignOptions opts = bench::defaultOptions();
    opts.computeHvf = true;
    opts.keepVerdicts = true;
    const char* names[] = {"qsort", "sha", "crc32",
                           "dijkstra", "bitcount", "fft"};
    bench::GoldenCache goldens;
    TextTable table("Fig 18: HVF vs AVF (RISC-V)");
    table.header({"benchmark", "PRF.HVF%", "PRF.AVF%", "L1D.HVF%",
                  "L1D.AVF%"});
    RunningStats achievedMargin;
    for (const char* name : names) {
        const fi::GoldenRun& golden =
            goldens.get(name, isa::IsaKind::RISCV);
        const fi::CampaignResult prf = fi::runCampaignOnGolden(
            golden, {fi::TargetId::PrfInt}, opts);
        const fi::CampaignResult l1d = fi::runCampaignOnGolden(
            golden, {fi::TargetId::L1D}, opts);
        achievedMargin.add(prf.errorMargin());
        achievedMargin.add(l1d.errorMargin());
        table.row(name,
                  {prf.hvf() * 100, prf.avf() * 100,
                   l1d.hvf() * 100, l1d.avf() * 100});
    }
    table.print();
    std::printf("(achieved 95%% CI margin +/-%.1f%% per cell)\n",
                100.0 * achievedMargin.mean());
    // SIV-D correlation: where along the stack each PRF fault died.
    TextTable prop("Fault propagation (PRF, per SIV-D)");
    prop.header({"benchmark", "hw-masked", "sw-masked", "sdc",
                 "crash"});
    for (const char* name : names) {
        const fi::GoldenRun& golden =
            goldens.get(name, isa::IsaKind::RISCV);
        const fi::CampaignResult res = fi::runCampaignOnGolden(
            golden, {fi::TargetId::PrfInt}, opts);
        const fi::PropagationBreakdown pb =
            fi::propagationBreakdown(res);
        prop.row({name, strfmt("%llu", (unsigned long long)pb.hwMasked),
                  strfmt("%llu", (unsigned long long)pb.swMasked),
                  strfmt("%llu", (unsigned long long)pb.sdc),
                  strfmt("%llu", (unsigned long long)pb.crash)});
    }
    prop.print();
    std::printf("(faults/campaign=%u; HVF and AVF measured on the "
                "same runs, as gem5-MARVEL supports)\n",
                opts.numFaults);
}
