/// Fig. 16: platform comparison for GEMM / BFS / FFT / KNN on a
/// standalone RISC-V CPU vs a DSA: AVF breakdown (left graph) and the
/// performance-aware Operations-per-Failure metric (right graph).
#include "accel/designs/designs.hh"
#include "bench_common.hh"

using namespace marvel;

int main() {
    const char* algos[] = {"gemm", "bfs", "fft", "md_knn"};
    fi::CampaignOptions opts = bench::defaultOptions();

    TextTable table("Fig 16: CPU vs DSA - AVF breakdown and OPF");
    table.header({"platform", "AVF% (95% CI)", "SDC%", "Crash%",
                  "cycles", "OPS", "OPF"});
    for (const char* algo : algos) {
        // CPU platform: the algorithm on the RISC-V core; inject into
        // the L1D (the CPU memory holding the working set).
        {
            workloads::Workload wl = workloads::cpuVersionOf(algo);
            soc::SystemConfig cfg = soc::preset("riscv");
            const fi::GoldenRun golden = fi::runGolden(
                cfg, isa::compile(wl.module, isa::IsaKind::RISCV));
            const fi::CampaignResult res = fi::runCampaignOnGolden(
                golden, {fi::TargetId::L1D}, opts);
            const double ops = fi::operationsPerSecond(
                wl.opsPerRun, golden.windowCycles, cfg.clockGHz);
            const double opf = fi::operationsPerFailure(
                wl.opsPerRun, golden.windowCycles, res.avf(),
                cfg.clockGHz);
            table.row({std::string(algo) + "-CPU",
                       strfmt("%.1f +/-%.1f", res.avf() * 100,
                              res.errorMargin() * 100),
                       strfmt("%.1f", res.sdcAvf() * 100),
                       strfmt("%.1f", res.crashAvf() * 100),
                       strfmt("%llu", (unsigned long long)
                                  golden.windowCycles),
                       strfmt("%.3g", ops), strfmt("%.3g", opf)});
        }
        // DSA platform: inject into the design's first Table IV
        // component.
        {
            soc::SystemConfig cfg = soc::preset("riscv");
            cfg.cluster.designs.push_back(
                accel::designs::makeByName(algo, kAccelSpaceBase));
            workloads::Workload wl = workloads::accelDriver(algo, 0);
            const fi::GoldenRun golden = fi::runGolden(
                cfg, isa::compile(wl.module, isa::IsaKind::RISCV));
            const char* comp = std::string(algo) == "bfs" ? "EDGES"
                               : std::string(algo) == "fft"
                                   ? "REAL"
                               : std::string(algo) == "gemm"
                                   ? "MATRIX1"
                                   : "NLADDR";
            const fi::TargetRef ref = fi::targetByName(
                golden.checkpoint.view(),
                std::string(algo) + "." + comp);
            const fi::CampaignResult res =
                fi::runCampaignOnGolden(golden, ref, opts);
            const Cycle accelCycles = golden.windowCycles;
            const double ops = fi::operationsPerSecond(
                wl.opsPerRun, accelCycles, cfg.clockGHz);
            const double opf = fi::operationsPerFailure(
                wl.opsPerRun, accelCycles, res.avf(), cfg.clockGHz);
            table.row({std::string(algo) + "-DSA",
                       strfmt("%.1f +/-%.1f", res.avf() * 100,
                              res.errorMargin() * 100),
                       strfmt("%.1f", res.sdcAvf() * 100),
                       strfmt("%.1f", res.crashAvf() * 100),
                       strfmt("%llu", (unsigned long long)accelCycles),
                       strfmt("%.3g", ops), strfmt("%.3g", opf)});
        }
    }
    table.print();
    std::printf("(faults/campaign=%u; OPF = OPS / AVF, larger is "
                "better)\n", opts.numFaults);
}
