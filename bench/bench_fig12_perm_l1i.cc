/// Fig. 12: SDC probability of permanent (stuck-at) faults, L1I.
#include "bench_common.hh"
int main() {
    marvel::bench::runIsaSweep(
        "Fig 12", "L1I SDC probability under permanent stuck-at faults",
        marvel::fi::TargetId::L1I,
        marvel::fi::FaultModel::StuckAt1, true);
}
