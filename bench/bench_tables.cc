/// Tables I-IV: the framework feature matrix, the Table II simulator
/// configuration (verified against the live presets), the fault-model
/// glossary, and the DSA injection-target inventory.
#include "accel/designs/designs.hh"
#include "bench_common.hh"
#include "fi/targets.hh"
#include "soc/interrupt.hh"

using namespace marvel;

int main() {
    {
        TextTable t("Table I: capabilities of this framework");
        t.header({"capability", "supported"});
        const char* caps[] = {
            "microarchitecture-level simulation", "cycle-level OoO core",
            "fault injection: CPU", "PRF / L1I / L1D / L2 / LQ / SQ",
            "fault injection: DSA", "SPMs and register banks",
            "fault injection: SoC", "CPU + accelerator, same run",
            "ISA support", "riscv / arm / x86 flavors",
            "fault models", "transient, permanent stuck-at-0/1",
            "bit-flips", "single and multiple (multi-structure masks)",
            "metrics", "AVF, HVF (same-run), wAVF, OPF",
        };
        for (unsigned i = 0; i < 8; ++i)
            t.row({caps[2 * i], caps[2 * i + 1]});
        t.print();
        std::printf("\n");
    }
    {
        TextTable t("Table II: simulator configuration per ISA");
        t.header({"parameter", "value"});
        soc::SystemConfig cfg = soc::preset("riscv");
        t.row({"ISA", "RISC-V / Arm / x86 (flavors)"});
        t.row({"pipeline", strfmt("64-bit OoO (%u-issue)",
                                  cfg.cpu.issueWidth)});
        t.row({"L1 I-cache",
               strfmt("%uKB, %uB line, %u sets, %u-way",
                      cfg.memory.l1i.sizeBytes / 1024,
                      cfg.memory.l1i.lineSize,
                      cfg.memory.l1i.numSets(), cfg.memory.l1i.ways)});
        t.row({"L1 D-cache",
               strfmt("%uKB, %uB line, %u sets, %u-way",
                      cfg.memory.l1d.sizeBytes / 1024,
                      cfg.memory.l1d.lineSize,
                      cfg.memory.l1d.numSets(), cfg.memory.l1d.ways)});
        t.row({"L2 cache",
               strfmt("%uKB, %uB line, %u sets, %u-way",
                      cfg.memory.l2.sizeBytes / 1024,
                      cfg.memory.l2.lineSize, cfg.memory.l2.numSets(),
                      cfg.memory.l2.ways)});
        t.row({"physical register file",
               strfmt("%u Int; %u FP", cfg.cpu.numIntPregs,
                      cfg.cpu.numFpPregs)});
        t.row({"LQ/SQ/IQ/ROB entries",
               strfmt("%u/%u/%u/%u", cfg.cpu.lqSize, cfg.cpu.sqSize,
                      cfg.cpu.iqSize, cfg.cpu.robSize)});
        t.row({"interrupt controller (riscv/arm/x86)",
               strfmt("%s / %s / %s",
                      soc::irqModelName(soc::IrqModel::Plic),
                      soc::irqModelName(soc::IrqModel::Gic),
                      soc::irqModelName(soc::IrqModel::Apic))});
        t.print();
        std::printf("\n");
    }
    {
        TextTable t("Table III: fault models");
        t.header({"model", "description"});
        t.row({"transient", "a storage bit flips at an arbitrary "
                            "cycle of the injection window"});
        t.row({"permanent", "a storage bit is stuck at 0 or 1 for "
                            "the whole execution"});
        t.row({"combinations", "fault masks may carry multiple "
                               "faults across structures and cycles"});
        t.print();
        std::printf("\n");
    }
    {
        TextTable t("Table IV: DSA injection components");
        t.header({"accelerator", "component", "size(B)", "type"});
        soc::SystemConfig cfg = soc::preset("riscv-soc");
        soc::System sys(cfg);
        for (const fi::TargetInfo& info : fi::listTargets(sys)) {
            if (info.ref.id != fi::TargetId::AccelMem)
                continue;
            const auto& unit = sys.cluster.unitC(info.ref.accelIdx);
            const auto& mem = unit.memories()[info.ref.memIdx];
            t.row({unit.design().name, mem.name(),
                   strfmt("%u", mem.size()),
                   accel::memKindName(mem.kind())});
        }
        t.print();
    }
}
