/**
 * @file
 * Shared scaffolding for the figure/table regeneration harness.
 *
 * Every binary in bench/ regenerates one table or figure of the paper
 * (see DESIGN.md's per-experiment index). Campaign sample sizes are
 * environment-scalable:
 *
 *   MARVEL_FAULTS     faults per campaign      (default 40;
 *                     the paper's setting of 1,000 gives the 3% /
 *                     95% margin of Leveugle et al.)
 *   MARVEL_WORKLOADS  number of MiBench benchmarks to include
 *                     (default all 15)
 *   MARVEL_THREADS    worker threads           (default: hardware)
 */

#ifndef MARVEL_BENCH_BENCH_COMMON_HH
#define MARVEL_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "fi/campaign.hh"
#include "fi/metrics.hh"
#include "soc/builder.hh"
#include "workloads/workloads.hh"

namespace marvel::bench
{

inline unsigned
envUnsigned(const char *name, unsigned dflt)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return dflt;
    return static_cast<unsigned>(std::strtoul(value, nullptr, 10));
}

inline unsigned
faultsPerCampaign()
{
    return envUnsigned("MARVEL_FAULTS", 40);
}

inline unsigned
workerThreads()
{
    return envUnsigned("MARVEL_THREADS", 0);
}

/** The benchmark subset selected by MARVEL_WORKLOADS. */
inline std::vector<std::string>
selectedWorkloads()
{
    std::vector<std::string> names = workloads::mibenchNames();
    const unsigned limit =
        envUnsigned("MARVEL_WORKLOADS", names.size());
    if (limit < names.size())
        names.resize(limit);
    return names;
}

/** Cache of golden runs keyed by (workload, isa). */
class GoldenCache
{
  public:
    const fi::GoldenRun &
    get(const std::string &workload, isa::IsaKind kind)
    {
        const std::string key =
            workload + ":" + isa::isaName(kind);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
        const workloads::Workload wl = workloads::get(workload);
        soc::SystemConfig cfg = soc::preset(isa::isaName(kind));
        const isa::Program prog = isa::compile(wl.module, kind);
        auto [pos, inserted] =
            cache.emplace(key, fi::runGolden(cfg, prog));
        return pos->second;
    }

  private:
    std::map<std::string, fi::GoldenRun> cache;
};

/** Default campaign options from the environment. */
inline fi::CampaignOptions
defaultOptions()
{
    fi::CampaignOptions opts;
    opts.numFaults = faultsPerCampaign();
    opts.threads = workerThreads();
    return opts;
}

/**
 * The Fig. 4-13 harness: a per-benchmark x per-ISA campaign sweep on
 * one CPU structure, printing total AVF (and optionally the SDC-only
 * component) with the weighted AVF in the right-most row, exactly as
 * the paper's figures are organized.
 */
inline void
runIsaSweep(const std::string &figure, const std::string &title,
            fi::TargetId target, fi::FaultModel model,
            bool printSdcComponent)
{
    GoldenCache goldens;
    fi::CampaignOptions opts = defaultOptions();
    opts.model = model;

    const std::vector<std::string> names = selectedWorkloads();
    TextTable table(figure + ": " + title);
    std::vector<std::string> header = {"benchmark"};
    for (isa::IsaKind kind : isa::kAllIsas) {
        header.push_back(std::string(isa::isaName(kind)) + ".AVF%");
        if (printSdcComponent)
            header.push_back(std::string(isa::isaName(kind)) +
                             ".SDC%");
    }
    table.header(header);

    std::map<int, std::vector<fi::CampaignResult>> perIsa;
    RunningStats achievedMargin;
    for (const std::string &name : names) {
        std::vector<double> row;
        for (isa::IsaKind kind : isa::kAllIsas) {
            const fi::GoldenRun &golden = goldens.get(name, kind);
            fi::CampaignResult res =
                fi::runCampaignOnGolden(golden, {target}, opts);
            res.workload = name;
            row.push_back(res.avf() * 100.0);
            if (printSdcComponent)
                row.push_back(res.sdcAvf() * 100.0);
            achievedMargin.add(res.errorMargin());
            perIsa[static_cast<int>(kind)].push_back(res);
        }
        table.row(name, row);
    }
    std::vector<double> wavg;
    for (isa::IsaKind kind : isa::kAllIsas) {
        const auto &results = perIsa[static_cast<int>(kind)];
        wavg.push_back(fi::weightedAvf(results) * 100.0);
        if (printSdcComponent)
            wavg.push_back(
                fi::weightedAvf(results, fi::AvfKind::Sdc) * 100.0);
    }
    table.row("wAVF", wavg);
    table.print();
    // The achieved Leveugle margin uses each campaign's real fault
    // population (bits x window cycles), not a nominal one.
    std::printf("(faults/campaign=%u; achieved 95%% CI margin "
                "+/-%.1f%% per cell; MARVEL_FAULTS=1000 reproduces "
                "the paper's 3%%)\n\n",
                opts.numFaults, 100.0 * achievedMargin.mean());
}

} // namespace marvel::bench

#endif // MARVEL_BENCH_BENCH_COMMON_HH
