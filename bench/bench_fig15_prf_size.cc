/// Fig. 15: PRF-size sensitivity on RISC-V (96 / 128 / 192 physical
/// integer registers): smaller register files concentrate utilization
/// and raise AVF.
#include "bench_common.hh"

using namespace marvel;

int main() {
    fi::CampaignOptions opts = bench::defaultOptions();
    const std::vector<std::string> names = bench::selectedWorkloads();
    const unsigned sizes[] = {96, 128, 192};

    TextTable table("Fig 15: RISC-V integer PRF AVF vs #registers");
    table.header({"benchmark", "96", "128", "192"});
    std::map<unsigned, std::vector<fi::CampaignResult>> bySize;
    for (const std::string& name : names) {
        std::vector<double> row;
        for (unsigned pregs : sizes) {
            workloads::Workload wl = workloads::get(name);
            soc::SystemConfig cfg = soc::preset("riscv");
            cfg.cpu.numIntPregs = pregs;
            const fi::GoldenRun golden = fi::runGolden(
                cfg, isa::compile(wl.module, isa::IsaKind::RISCV));
            fi::CampaignResult res = fi::runCampaignOnGolden(
                golden, {fi::TargetId::PrfInt}, opts);
            row.push_back(res.avf() * 100.0);
            bySize[pregs].push_back(res);
        }
        table.row(name, row);
    }
    std::vector<double> wavg;
    RunningStats achievedMargin;
    for (unsigned pregs : sizes) {
        wavg.push_back(fi::weightedAvf(bySize[pregs]) * 100.0);
        for (const fi::CampaignResult& res : bySize[pregs])
            achievedMargin.add(res.errorMargin());
    }
    table.row("wAVF", wavg);
    table.print();
    std::printf("(faults/campaign=%u; achieved 95%% CI margin "
                "+/-%.1f%% per cell)\n",
                opts.numFaults, 100.0 * achievedMargin.mean());
}
