#!/usr/bin/env bash
# Observability smoke test: the distributed_smoke.sh harness with the
# campaign observatory bolted on.
#
# Runs a daemon + two workers over a unix socket, freezes one worker
# mid-lease (SIGSTOP, so only the TTL reaper can clean up after it),
# and while the campaign is still running:
#
#   - scrapes the Metrics endpoint (marvel-top --once --raw) and
#     validates the OpenMetrics document with validate_metrics.py
#     against docs/schemas/metrics.md;
#   - renders one marvel-top dashboard frame (--once) and checks the
#     per-worker rows appear.
#
# After the fleet drains it asserts the observability invariants on
# top of the usual byte-identity bar:
#
#   - a post-freeze scrape counts the reaped lease
#     (marvel_dispatch_leases_expired_total >= 1);
#   - the canonical distributed journal is byte-identical to the
#     single-process run (provenance must not leak into it);
#   - `marvel-campaign report` over the single-process journal prints
#     a phase table whose phase-total-seconds is within 10% of
#     campaign-wall-seconds (the profiler accounts for where the
#     wall-clock went, not a fraction of it).
#
# Usage: scripts/observability_smoke.sh [BUILD_DIR]   (default: build)
#
# Artifacts (scrapes, dashboard frame, report, journals) are copied
# to OBS_ARTIFACTS if that variable is set, so CI can upload them.
set -euo pipefail

BUILD="${1:-build}"
TOOLS="$BUILD/tools"
WORK="$(mktemp -d)"
# SIGKILL in the cleanup: this script freezes a worker with SIGSTOP,
# and a stopped process queues SIGTERM without dying — a plain kill
# would leave the trap's wait hanging forever.
trap 'kill -9 $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORK"' EXIT

FAULTS="${SMOKE_FAULTS:-600}"
CAMPAIGN=(--workload crc32 --target prf-int
          --faults "$FAULTS" --seed "${SMOKE_SEED:-424242}")

metric() { # metric NAME FILE -> first unlabelled sample value
    awk -v name="$2" '$1 == name { print $2; exit }' "$1"
}

echo "== single-process reference (journaled, 1 thread) =="
"$TOOLS/marvel-campaign" run "${CAMPAIGN[@]}" --threads 1 \
    --journal "$WORK/single.jsonl"
"$TOOLS/marvel-campaign" merge --journal "$WORK/single.jsonl" \
    --out "$WORK/single.canon.jsonl"

echo "== daemon + 2 workers, one killed mid-lease =="
"$TOOLS/marvel-campaignd" --listen "unix:$WORK/smoke.sock" \
    --journal "$WORK/dist.jsonl" "${CAMPAIGN[@]}" \
    --ttl-ms 2000 --lease 6 --chunk 4 &
DAEMON=$!

for _ in $(seq 100); do
    [ -S "$WORK/smoke.sock" ] && break
    sleep 0.1
done
[ -S "$WORK/smoke.sock" ] || { echo "FAIL: daemon never listened"; exit 1; }

"$TOOLS/marvel-worker" --connect "unix:$WORK/smoke.sock" \
    --workload crc32 --name doomed &
DOOMED=$!
"$TOOLS/marvel-worker" --connect "unix:$WORK/smoke.sock" \
    --workload crc32 --name survivor &
SURVIVOR=$!

# Let both workers build their goldens and take leases, then scrape
# the live fleet: the document must validate against the schema and
# show both workers.
sleep 3
"$TOOLS/marvel-top" --connect "unix:$WORK/smoke.sock" --once --raw \
    > "$WORK/scrape-live.txt"
python3 scripts/validate_metrics.py "$WORK/scrape-live.txt"
for worker in doomed survivor; do
    grep -q "marvel_worker_verdicts_total{worker=\"$worker\"}" \
        "$WORK/scrape-live.txt" \
        || { echo "FAIL: no $worker row in live scrape"; exit 1; }
done

echo "== marvel-top dashboard frame (one redraw) =="
"$TOOLS/marvel-top" --connect "unix:$WORK/smoke.sock" --once \
    | tee "$WORK/top-frame.txt"
grep -q "^campaign " "$WORK/top-frame.txt" \
    || { echo "FAIL: marvel-top frame missing campaign line"; exit 1; }
grep -q "survivor" "$WORK/top-frame.txt" \
    || { echo "FAIL: marvel-top frame missing worker row"; exit 1; }

# SIGSTOP, not SIGKILL: a killed worker's socket closes, so the
# daemon releases its lease on the disconnect path without an expiry.
# A frozen worker keeps the connection open and silent — the only
# thing that cleans up after it is the TTL reaper, which is the
# counter this test is after.
if kill -STOP "$DOOMED" 2>/dev/null; then
    echo "froze worker 'doomed' (pid $DOOMED) mid-lease"
else
    echo "note: worker 'doomed' already exited before the freeze"
fi

# The TTL is 2s: after 3 more seconds the reaper has swept the frozen
# worker's lease, and a second scrape must count the expiry. (The
# separate requeued counter tracks the other cleanup path — a
# connection dying with its lease open — which this freeze
# deliberately does not take.)
sleep 3
"$TOOLS/marvel-top" --connect "unix:$WORK/smoke.sock" --once --raw \
    > "$WORK/scrape-postkill.txt" \
    || { echo "FAIL: campaign finished before the post-kill scrape;"\
         " raise SMOKE_FAULTS"; exit 1; }
python3 scripts/validate_metrics.py "$WORK/scrape-postkill.txt"
EXPIRED=$(metric "$WORK/scrape-postkill.txt" \
    marvel_dispatch_leases_expired_total)
REQUEUED=$(metric "$WORK/scrape-postkill.txt" \
    marvel_dispatch_leases_requeued_total)
echo "post-freeze: expired=$EXPIRED requeued=$REQUEUED"
[ "${EXPIRED:-0}" -ge 1 ] \
    || { echo "FAIL: reaped lease not counted as expired"; exit 1; }
[ -n "$REQUEUED" ] \
    || { echo "FAIL: requeued counter missing from scrape"; exit 1; }

# Now actually kill the frozen worker; its verdicts for the expired
# lease (if any were in flight) are the daemon's stale-verdict path.
kill -9 "$DOOMED" 2>/dev/null || true
wait "$DOOMED" 2>/dev/null || true

wait "$SURVIVOR"
wait "$DAEMON"

echo "== byte-for-byte diff of canonical journals =="
"$TOOLS/marvel-campaign" merge --journal "$WORK/dist.jsonl" \
    --out "$WORK/dist.canon.jsonl"
cmp "$WORK/single.canon.jsonl" "$WORK/dist.canon.jsonl"
echo "OK: distributed and single-process journals are byte-identical"

echo "== marvel-campaign report: profiler accounts for the wall-clock =="
"$TOOLS/marvel-campaign" report --journal "$WORK/single.jsonl" \
    | tee "$WORK/report.txt"
PHASE=$(awk '$1 == "phase-total-seconds" { print $2 }' "$WORK/report.txt")
WALL=$(awk '$1 == "campaign-wall-seconds" { print $2 }' "$WORK/report.txt")
python3 - "$PHASE" "$WALL" << 'EOF'
import sys
phase, wall = float(sys.argv[1]), float(sys.argv[2])
if wall <= 0:
    sys.exit("FAIL: campaign-wall-seconds is zero")
off = abs(phase - wall) / wall
print(f"phase total {phase:.3f}s vs wall {wall:.3f}s ({off:.1%} off)")
if off > 0.10:
    sys.exit("FAIL: phase breakdown misses >10% of the wall-clock")
EOF
echo "OK: phase breakdown sums to within 10% of the campaign wall-clock"

if [ -n "${OBS_ARTIFACTS:-}" ]; then
    mkdir -p "$OBS_ARTIFACTS"
    cp "$WORK"/scrape-*.txt "$WORK/top-frame.txt" "$WORK/report.txt" \
       "$WORK"/*.canon.jsonl "$OBS_ARTIFACTS/"
fi
