#!/usr/bin/env python3
"""Validate a MARVEL stats JSON dump against the checked-in schema.

Usage: validate_stats.py STATS_JSON [SCHEMA_JSON]

Stdlib-only on purpose (CI runs it without installing anything): a
small walker implements exactly the JSON Schema subset the schema
file uses (type / required / properties / additionalProperties /
items / enum / minimum / minItems / pattern), plus the semantic
invariants of the dump format that a structural schema cannot
express. Exits non-zero with one line per violation.
"""

import json
import math
import re
import sys
from pathlib import Path

DEFAULT_SCHEMA = (
    Path(__file__).resolve().parent.parent
    / "docs" / "schemas" / "stats.schema.json"
)

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; a JSON true is not a number.
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
}


def check(value, schema, path, errors):
    """Walk `value` against `schema`, appending messages to `errors`."""
    expected = schema.get("type")
    if expected is not None and not TYPE_CHECKS[expected](value):
        errors.append(
            f"{path}: expected {expected}, got {type(value).__name__}"
        )
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(
                f"{path}: {value} below minimum {schema['minimum']}"
            )
    if "pattern" in schema and isinstance(value, str):
        if not re.match(schema["pattern"], value):
            errors.append(
                f"{path}: {value!r} does not match {schema['pattern']}"
            )
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        props = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in props:
                    errors.append(f"{path}: unexpected key '{key}'")
        for key, sub in props.items():
            if key in value:
                check(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(
                f"{path}: {len(value)} items < minItems "
                f"{schema['minItems']}"
            )
        item_schema = schema.get("items")
        if item_schema is not None:
            for i, item in enumerate(value):
                check(item, item_schema, f"{path}[{i}]", errors)


# Per-kind keys the structural schema cannot make conditional.
MOMENT_KEYS = ("samples", "sum", "min", "max")
DISTRIBUTION_KEYS = MOMENT_KEYS + ("stddev",)
HISTOGRAM_KEYS = MOMENT_KEYS + (
    "bucket_lo", "bucket_width", "underflow", "overflow", "buckets",
)
PER_KIND_KEYS = set(DISTRIBUTION_KEYS) | set(HISTOGRAM_KEYS)


def semantic_checks(dump, errors):
    seen = set()
    for i, entry in enumerate(dump.get("stats", [])):
        if not isinstance(entry, dict):
            continue
        name = entry.get("name", f"stats[{i}]")
        path = f"stats[{i}] ({name})"
        if name in seen:
            errors.append(f"{path}: duplicate stat name")
        seen.add(name)
        for key, val in entry.items():
            if isinstance(val, float) and not math.isfinite(val):
                errors.append(f"{path}: non-finite value in '{key}'")
        kind = entry.get("kind")
        wanted = (
            HISTOGRAM_KEYS if kind == "histogram"
            else DISTRIBUTION_KEYS if kind == "distribution"
            else ()
        )
        for key in wanted:
            if key not in entry:
                errors.append(f"{path}: {kind} lacks '{key}'")
        for key in sorted(PER_KIND_KEYS - set(wanted)):
            if key in entry:
                errors.append(f"{path}: {kind} carries '{key}'")
        if kind == "histogram" and "buckets" in entry:
            if not entry["buckets"]:
                errors.append(f"{path}: histogram with zero buckets")
            if entry.get("bucket_width", 0) <= 0:
                errors.append(f"{path}: non-positive bucket_width")


def fail_constant(token):
    raise ValueError(f"non-finite JSON constant {token}")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    stats_path = Path(argv[1])
    schema_path = Path(argv[2]) if len(argv) == 3 else DEFAULT_SCHEMA
    schema = json.loads(schema_path.read_text())
    try:
        # NaN/Infinity are invalid JSON; the exporter must never emit
        # them (stats::formatJson maps them to 0).
        dump = json.loads(
            stats_path.read_text(), parse_constant=fail_constant
        )
    except ValueError as err:
        print(f"{stats_path}: not valid JSON: {err}", file=sys.stderr)
        return 1
    errors = []
    check(dump, schema, "$", errors)
    if not errors:
        semantic_checks(dump, errors)
    for msg in errors:
        print(f"{stats_path}: {msg}", file=sys.stderr)
    if errors:
        return 1
    n = len(dump["stats"])
    print(f"{stats_path}: OK ({n} stats, schema {schema_path.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
