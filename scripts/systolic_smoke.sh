#!/usr/bin/env bash
# Systolic-array end-to-end smoke test.
#
# Runs a tiny 4x4-grid systolic GEMM campaign twice through
# marvel-campaign — once with `--ladder auto --prune`, once with the
# ladder and pruning off — and requires the canonicalized verdict
# journals to compare byte-for-byte. This pins, through the real
# binary, the property the ladder/prune machinery promises: speed
# optimizations never change a verdict, for the systolic engine too.
#
# Usage: scripts/systolic_smoke.sh [BUILD_DIR]   (default: build)
#
#   SMOKE_FAULTS  sample size    (default 64)
#   SMOKE_SEED    campaign seed  (default 20260809)
set -euo pipefail

BUILD="${1:-build}"
TOOLS="$BUILD/tools"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/sys4x4.ini" <<'EOF'
[system]
isa = riscv

[accel]
design = gemm_systolic
rows = 4
cols = 4
tile_m = 8
EOF

# The ladder rung count and prune flag are campaign identity (they
# land in the journal's meta record), so both runs carry them;
# --no-ladder keeps the geometry but restores every faulty run from
# the window start instead of fast-forwarding.
CAMPAIGN=(--config "$WORK/sys4x4.ini" --driver gemm_systolic
          --target 'gemm_systolic[systolic].SEQ'
          --faults "${SMOKE_FAULTS:-64}" --seed "${SMOKE_SEED:-20260809}"
          --ladder auto --prune)

echo "== systolic campaign, ladder auto + prune =="
"$TOOLS/marvel-campaign" run "${CAMPAIGN[@]}" \
    --journal "$WORK/ladder.jsonl"
"$TOOLS/marvel-campaign" merge --journal "$WORK/ladder.jsonl" \
    --out "$WORK/ladder.canon.jsonl"

echo "== systolic campaign, straight-through reference =="
"$TOOLS/marvel-campaign" run "${CAMPAIGN[@]}" \
    --no-ladder --journal "$WORK/plain.jsonl"
"$TOOLS/marvel-campaign" merge --journal "$WORK/plain.jsonl" \
    --out "$WORK/plain.canon.jsonl"

echo "== byte-for-byte diff of canonical journals =="
cmp "$WORK/ladder.canon.jsonl" "$WORK/plain.canon.jsonl"
echo "OK: laddered and straight-through systolic journals are byte-identical"
