#!/usr/bin/env bash
# Loopback distributed-campaign smoke test.
#
# Runs the same campaign twice: once single-process with
# marvel-campaign, once through marvel-campaignd plus two
# marvel-worker processes over a unix socket — with one worker
# SIGKILLed mid-lease so the daemon's TTL reaper has to re-enqueue
# its range. Both journals are then canonicalized with
# `marvel-campaign merge --out` and must compare byte-for-byte.
#
# Usage: scripts/distributed_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD="${1:-build}"
TOOLS="$BUILD/tools"
WORK="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORK"' EXIT

CAMPAIGN=(--workload crc32 --target prf-int --faults 96 --seed 424242)

echo "== single-process reference =="
"$TOOLS/marvel-campaign" run "${CAMPAIGN[@]}" \
    --journal "$WORK/single.jsonl"
"$TOOLS/marvel-campaign" merge --journal "$WORK/single.jsonl" \
    --out "$WORK/single.canon.jsonl"

echo "== daemon + 2 workers, one killed mid-lease =="
# Short TTL so the killed worker's lease is reaped within the run;
# small leases/chunks so the kill reliably lands mid-lease.
"$TOOLS/marvel-campaignd" --listen "unix:$WORK/smoke.sock" \
    --journal "$WORK/dist.jsonl" "${CAMPAIGN[@]}" \
    --ttl-ms 2000 --lease 6 --chunk 4 &
DAEMON=$!

for _ in $(seq 100); do
    [ -S "$WORK/smoke.sock" ] && break
    sleep 0.1
done
[ -S "$WORK/smoke.sock" ] || { echo "FAIL: daemon never listened"; exit 1; }

"$TOOLS/marvel-worker" --connect "unix:$WORK/smoke.sock" \
    --workload crc32 --name doomed &
DOOMED=$!
"$TOOLS/marvel-worker" --connect "unix:$WORK/smoke.sock" \
    --workload crc32 --name survivor &
SURVIVOR=$!

# Give 'doomed' time to build its golden run and take a lease, then
# SIGKILL it: no Bye, no LeaseDone — only the TTL cleans up after it.
sleep 3
if kill -9 "$DOOMED" 2>/dev/null; then
    echo "killed worker 'doomed' (pid $DOOMED) mid-lease"
else
    echo "note: worker 'doomed' already exited before the kill"
fi
wait "$DOOMED" 2>/dev/null || true

wait "$SURVIVOR"
wait "$DAEMON"

"$TOOLS/marvel-campaign" merge --journal "$WORK/dist.jsonl" \
    --out "$WORK/dist.canon.jsonl"

echo "== byte-for-byte diff of canonical journals =="
cmp "$WORK/single.canon.jsonl" "$WORK/dist.canon.jsonl"
echo "OK: distributed and single-process journals are byte-identical"
