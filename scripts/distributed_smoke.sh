#!/usr/bin/env bash
# Loopback distributed-campaign smoke test.
#
# Runs the same campaign twice: once single-process with
# marvel-campaign, once through marvel-campaignd plus two
# marvel-worker processes over a unix socket — with one worker
# SIGKILLed mid-lease so the daemon's TTL reaper has to re-enqueue
# its range. Both journals are then canonicalized with
# `marvel-campaign merge --out` and must compare byte-for-byte.
#
# Usage: scripts/distributed_smoke.sh [BUILD_DIR]   (default: build)
#
# The campaign is parameterizable so the same harness can drive any
# workload/engine through the dispatch path (e.g. a systolic-array
# accelerator campaign):
#
#   SMOKE_WORKLOAD  MiBench kernel           (default crc32)
#   SMOKE_DRIVER    accelerator driver; when set it replaces
#                   SMOKE_WORKLOAD (e.g. gemm_systolic)
#   SMOKE_CONFIG    INI system description passed to every process
#   SMOKE_TARGET    injection target         (default prf-int)
#   SMOKE_FAULTS    sample size              (default 96)
#   SMOKE_SEED      campaign seed            (default 424242)
#   SMOKE_LADDER    checkpoint-ladder rungs, shared by BOTH runs —
#                   ladder geometry is campaign identity (default: none)
#   SMOKE_EARLY_STOP  convergence early-stop mode for the DISTRIBUTED
#                   run only; the single-process reference always
#                   simulates every window in full, so setting `on`
#                   here proves canonicalization erases the stop
#                   short-circuit (workers inherit the mode from the
#                   daemon's journal meta). When `on`, the distributed
#                   journal must also show at least one stopped run —
#                   a smoke that never stops proves nothing.
#   SMOKE_FAULT_MODEL  fault-model spec shared by BOTH runs (e.g.
#                   'correlated roww=1,3 colw=1,2,4,2'); the spec is
#                   campaign identity like the seed, and workers pick
#                   it up from the daemon's journal meta — no worker
#                   flag exists, which is exactly what this exercises.
set -euo pipefail

BUILD="${1:-build}"
TOOLS="$BUILD/tools"
WORK="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORK"' EXIT

# The workload selection is shared by the reference run, the daemon,
# and both workers: every process must simulate the same system.
WORKLOAD=(--workload "${SMOKE_WORKLOAD:-crc32}")
if [ -n "${SMOKE_DRIVER:-}" ]; then
    WORKLOAD=(--driver "$SMOKE_DRIVER")
fi
if [ -n "${SMOKE_CONFIG:-}" ]; then
    WORKLOAD+=(--config "$SMOKE_CONFIG")
fi
CAMPAIGN=("${WORKLOAD[@]}" --target "${SMOKE_TARGET:-prf-int}"
          --faults "${SMOKE_FAULTS:-96}" --seed "${SMOKE_SEED:-424242}")
if [ -n "${SMOKE_LADDER:-}" ]; then
    CAMPAIGN+=(--ladder "$SMOKE_LADDER")
fi
if [ -n "${SMOKE_FAULT_MODEL:-}" ]; then
    CAMPAIGN+=(--fault-model "$SMOKE_FAULT_MODEL")
fi
DAEMON_FLAGS=()
if [ -n "${SMOKE_EARLY_STOP:-}" ]; then
    DAEMON_FLAGS+=(--early-stop "$SMOKE_EARLY_STOP")
fi

echo "== single-process reference =="
"$TOOLS/marvel-campaign" run "${CAMPAIGN[@]}" \
    --journal "$WORK/single.jsonl"
"$TOOLS/marvel-campaign" merge --journal "$WORK/single.jsonl" \
    --out "$WORK/single.canon.jsonl"

echo "== daemon + 2 workers, one killed mid-lease =="
# Short TTL so the killed worker's lease is reaped within the run;
# small leases/chunks so the kill reliably lands mid-lease.
"$TOOLS/marvel-campaignd" --listen "unix:$WORK/smoke.sock" \
    --journal "$WORK/dist.jsonl" "${CAMPAIGN[@]}" \
    ${DAEMON_FLAGS[@]+"${DAEMON_FLAGS[@]}"} \
    --ttl-ms 2000 --lease 6 --chunk 4 &
DAEMON=$!

for _ in $(seq 100); do
    [ -S "$WORK/smoke.sock" ] && break
    sleep 0.1
done
[ -S "$WORK/smoke.sock" ] || { echo "FAIL: daemon never listened"; exit 1; }

"$TOOLS/marvel-worker" --connect "unix:$WORK/smoke.sock" \
    "${WORKLOAD[@]}" --name doomed &
DOOMED=$!
"$TOOLS/marvel-worker" --connect "unix:$WORK/smoke.sock" \
    "${WORKLOAD[@]}" --name survivor &
SURVIVOR=$!

# Give 'doomed' time to build its golden run and take a lease, then
# SIGKILL it: no Bye, no LeaseDone — only the TTL cleans up after it.
sleep 3
if kill -9 "$DOOMED" 2>/dev/null; then
    echo "killed worker 'doomed' (pid $DOOMED) mid-lease"
else
    echo "note: worker 'doomed' already exited before the kill"
fi
wait "$DOOMED" 2>/dev/null || true

wait "$SURVIVOR"
wait "$DAEMON"

"$TOOLS/marvel-campaign" merge --journal "$WORK/dist.jsonl" \
    --out "$WORK/dist.canon.jsonl"

if [ "${SMOKE_EARLY_STOP:-}" = "on" ]; then
    echo "== non-vacuity: the distributed run must have short-circuited =="
    if grep -q '"stopped_rung":[1-9]' "$WORK/dist.jsonl"; then
        echo "distributed journal shows $(grep -c '"stopped_rung":[1-9]' \
            "$WORK/dist.jsonl") early-stopped runs"
    else
        echo "FAIL: --early-stop on but no run ever stopped at a rung"
        exit 1
    fi
fi

if [ -n "${SMOKE_FAULT_MODEL:-}" ]; then
    echo "== non-vacuity: the spec must be journaled campaign identity =="
    if grep -q '"faultModel":' "$WORK/dist.jsonl"; then
        echo "distributed journal records the fault-model spec"
    else
        echo "FAIL: SMOKE_FAULT_MODEL set but no faultModel in the meta"
        exit 1
    fi
fi

echo "== byte-for-byte diff of canonical journals =="
cmp "$WORK/single.canon.jsonl" "$WORK/dist.canon.jsonl"
echo "OK: distributed and single-process journals are byte-identical"
