#!/usr/bin/env python3
"""Validate an OpenMetrics scrape against the checked-in schema.

Usage: validate_metrics.py SCRAPE_TXT [SCHEMA_MD]

Stdlib-only on purpose (CI runs it without installing anything). The
schema is the family table in docs/schemas/metrics.md — this script
parses that markdown so the doc stays the single source of truth.
Checks, per the naming contract:

  - every metric name matches ^marvel_[a-z0-9_]+$;
  - counters end in _total, gauges do not;
  - each family has exactly one # HELP and one # TYPE line, in that
    order, before its first sample;
  - every sample's family was announced, appears in the schema with
    the same type, and carries exactly the labels the schema lists;
  - sample values parse as finite floats (no inf/nan leaks);
  - the document ends with exactly one '# EOF' line;
  - every family in the scrape exists in the schema (the reverse is
    not required: a fleet with no workers legitimately emits empty
    worker families, which still must be announced).

Exits non-zero with one line per violation.
"""

import math
import re
import sys
from pathlib import Path

DEFAULT_SCHEMA = (
    Path(__file__).resolve().parent.parent
    / "docs" / "schemas" / "metrics.md"
)

NAME_RE = re.compile(r"^marvel_[a-z0-9_]+$")
SAMPLE_RE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')
ROW_RE = re.compile(
    r"^\|\s*`([^`]+)`\s*\|\s*(counter|gauge)\s*\|\s*([^|]*)\|"
)


def parse_schema(path):
    """Return {name: (type, frozenset(labels))} from the family table."""
    families = {}
    for line in path.read_text().splitlines():
        m = ROW_RE.match(line)
        if not m:
            continue
        labels = frozenset(
            lab.strip("` ")
            for lab in m.group(3).split(",")
            if lab.strip("` ")
        )
        families[m.group(1)] = (m.group(2), labels)
    if not families:
        sys.exit(f"error: no family table found in {path}")
    return families


def validate(text, schema):
    errors = []
    announced = {}  # name -> type, from # TYPE lines
    helped = set()
    sampled_before_announce = set()
    lines = text.splitlines()

    if not lines or lines[-1] != "# EOF":
        errors.append("document does not end with '# EOF'")
    if lines.count("# EOF") != 1:
        errors.append("document must contain exactly one '# EOF' line")

    for lineno, line in enumerate(lines, 1):
        if not line:
            errors.append(f"line {lineno}: blank line in exposition")
            continue
        if line == "# EOF":
            if lineno != len(lines):
                errors.append(f"line {lineno}: content after '# EOF'")
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            kind, rest = line[2:6], line[7:]
            parts = rest.split(" ", 1)
            name = parts[0]
            if not NAME_RE.match(name):
                errors.append(
                    f"line {lineno}: bad metric name '{name}'"
                )
                continue
            if kind == "HELP":
                if name in helped:
                    errors.append(
                        f"line {lineno}: duplicate # HELP for {name}"
                    )
                if len(parts) < 2 or not parts[1].strip():
                    errors.append(
                        f"line {lineno}: empty help text for {name}"
                    )
                helped.add(name)
            else:
                mtype = parts[1].strip() if len(parts) > 1 else ""
                if mtype not in ("counter", "gauge"):
                    errors.append(
                        f"line {lineno}: unknown type '{mtype}' "
                        f"for {name}"
                    )
                if name in announced:
                    errors.append(
                        f"line {lineno}: duplicate # TYPE for {name}"
                    )
                if name not in helped:
                    errors.append(
                        f"line {lineno}: # TYPE before # HELP "
                        f"for {name}"
                    )
                announced[name] = mtype
                if mtype == "counter" and not name.endswith("_total"):
                    errors.append(
                        f"line {lineno}: counter '{name}' does not "
                        f"end in _total"
                    )
                if mtype == "gauge" and name.endswith("_total"):
                    errors.append(
                        f"line {lineno}: gauge '{name}' must not "
                        f"end in _total"
                    )
                if name not in schema:
                    errors.append(
                        f"line {lineno}: '{name}' not in "
                        f"docs/schemas/metrics.md"
                    )
                elif schema[name][0] != mtype:
                    errors.append(
                        f"line {lineno}: '{name}' is {mtype} but the "
                        f"schema says {schema[name][0]}"
                    )
            continue
        if line.startswith("#"):
            errors.append(f"line {lineno}: unknown comment '{line}'")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample")
            continue
        name, labelstr, value = m.groups()
        if name not in announced:
            if name not in sampled_before_announce:
                errors.append(
                    f"line {lineno}: sample for '{name}' before its "
                    f"# TYPE line"
                )
                sampled_before_announce.add(name)
        got_labels = frozenset(
            k for k, _ in LABEL_RE.findall(labelstr or "")
        )
        if name in schema and got_labels != schema[name][1]:
            errors.append(
                f"line {lineno}: '{name}' labels {sorted(got_labels)} "
                f"!= schema {sorted(schema[name][1])}"
            )
        try:
            number = float(value)
        except ValueError:
            errors.append(
                f"line {lineno}: value '{value}' is not a number"
            )
            continue
        if not math.isfinite(number):
            errors.append(
                f"line {lineno}: non-finite value for '{name}'"
            )

    for name in announced:
        if name not in helped:
            errors.append(f"family '{name}' has # TYPE but no # HELP")
    return errors


def main(argv):
    if len(argv) not in (2, 3):
        sys.exit(__doc__.strip().splitlines()[2])
    scrape = Path(argv[1])
    schema = parse_schema(
        Path(argv[2]) if len(argv) == 3 else DEFAULT_SCHEMA
    )
    errors = validate(scrape.read_text(), schema)
    for message in errors:
        print(f"{scrape}: {message}", file=sys.stderr)
    if errors:
        sys.exit(1)
    print(
        f"{scrape}: OK ({len(schema)} families in schema, "
        f"scrape valid)"
    )


if __name__ == "__main__":
    main(sys.argv)
