#include "mem/physmem.hh"

#include <cstring>

#include "common/log.hh"

namespace marvel::mem
{

void
PhysMem::read(Addr addr, void *out, Addr len) const
{
    if (!ok(addr, len))
        panic("PhysMem::read out of range: 0x%llx+%llu",
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(len));
    std::memcpy(out, bytes.data() + addr, len);
}

void
PhysMem::write(Addr addr, const void *in, Addr len)
{
    if (!ok(addr, len))
        panic("PhysMem::write out of range: 0x%llx+%llu",
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(len));
    std::memcpy(bytes.data() + addr, in, len);
}

u64
PhysMem::read64(Addr addr) const
{
    u64 v;
    read(addr, &v, 8);
    return v;
}

void
PhysMem::write64(Addr addr, u64 value)
{
    write(addr, &value, 8);
}

} // namespace marvel::mem
