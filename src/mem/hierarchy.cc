#include "mem/hierarchy.hh"

#include <algorithm>
#include <cstring>

#include "common/bits.hh"
#include "common/log.hh"

namespace marvel::mem
{

Hierarchy::Hierarchy(const HierarchyParams &params)
    : params_(params), dram_(kMemSize), l1i_(params.l1i),
      l1d_(params.l1d), l2_(params.l2)
{
}

void
Hierarchy::regStats(stats::Group &g)
{
    l1i_.regStats(g.subgroup("l1i"));
    l1d_.regStats(g.subgroup("l1d"));
    l2_.regStats(g.subgroup("l2"));
}

u32
Hierarchy::fetchLineFromL2(Addr lineAddr, void *out)
{
    const u32 lineSize = params_.l2.lineSize;
    int line = l2_.findLine(lineAddr);
    if (line >= 0) {
        l2_.stats.hits.inc();
        l2_.readLine(line, 0, out, lineSize);
        return params_.l2.hitLatency;
    }
    l2_.stats.misses.inc();
    // Miss: evict an L2 victim, fill from DRAM.
    line = l2_.pickVictim(lineAddr);
    if (l2_.lineValid(line) && l2_.lineDirty(line)) {
        u8 victim[256];
        l2_.readLineForWriteback(line, victim);
        dram_.write(l2_.lineAddr(line), victim, lineSize);
    }
    l2_.invalidate(line);
    u8 fresh[256];
    dram_.read(lineAddr, fresh, lineSize);
    l2_.fill(line, lineAddr, fresh);
    l2_.readLine(line, 0, out, lineSize);
    return params_.memLatency;
}

void
Hierarchy::writeLineToL2(Addr lineAddr, const void *bytes)
{
    const u32 lineSize = params_.l2.lineSize;
    int line = l2_.findLine(lineAddr);
    if (line < 0) {
        line = l2_.pickVictim(lineAddr);
        if (l2_.lineValid(line) && l2_.lineDirty(line)) {
            u8 victim[256];
            l2_.readLineForWriteback(line, victim);
            dram_.write(l2_.lineAddr(line), victim, lineSize);
        }
        l2_.invalidate(line);
        l2_.fill(line, lineAddr, bytes);
        l2_.writeLine(line, 0, bytes, lineSize);
        return;
    }
    l2_.writeLine(line, 0, bytes, lineSize);
}

MemResult
Hierarchy::accessL1(Cache &l1, Addr addr, void *out, const void *in,
                    u32 len, bool isWrite)
{
    MemResult res;
    const u32 lineSize = l1.params().lineSize;
    const Addr lineAddr = alignDown(addr, lineSize);
    const u32 offset = static_cast<u32>(addr - lineAddr);

    if (!dram_.ok(addr, len)) {
        res.fault = true;
        return res;
    }

    int line = l1.findLine(addr);
    if (line >= 0) {
        l1.stats.hits.inc();
        res.latency = l1.params().hitLatency;
    } else {
        l1.stats.misses.inc();
        line = l1.pickVictim(addr);
        if (l1.lineValid(line) && l1.lineDirty(line)) {
            u8 victim[256];
            l1.readLineForWriteback(line, victim);
            writeLineToL2(l1.lineAddr(line), victim);
        }
        l1.invalidate(line);
        u8 fresh[256];
        const u32 lowerLat = fetchLineFromL2(lineAddr, fresh);
        l1.fill(line, lineAddr, fresh);
        res.latency = l1.params().hitLatency + lowerLat;
    }

    if (isWrite)
        l1.writeLine(line, offset, in, len);
    else
        l1.readLine(line, offset, out, len);
    return res;
}

MemResult
Hierarchy::read(Addr addr, void *out, u32 len)
{
    const u32 lineSize = params_.l1d.lineSize;
    const Addr firstLine = alignDown(addr, lineSize);
    const Addr lastLine = alignDown(addr + len - 1, lineSize);
    if (firstLine == lastLine)
        return accessL1(l1d_, addr, out, nullptr, len, false);
    // Line-crossing: two accesses (allowed only on X86; the CPU checks
    // alignment before calling).
    const u32 firstLen =
        static_cast<u32>(firstLine + lineSize - addr);
    MemResult a = accessL1(l1d_, addr, out, nullptr, firstLen, false);
    MemResult b = accessL1(l1d_, firstLine + lineSize,
                           static_cast<u8 *>(out) + firstLen, nullptr,
                           len - firstLen, false);
    return {std::max(a.latency, b.latency) + 1, a.fault || b.fault};
}

MemResult
Hierarchy::write(Addr addr, const void *in, u32 len)
{
    const u32 lineSize = params_.l1d.lineSize;
    const Addr firstLine = alignDown(addr, lineSize);
    const Addr lastLine = alignDown(addr + len - 1, lineSize);
    if (firstLine == lastLine)
        return accessL1(l1d_, addr, nullptr, in, len, true);
    const u32 firstLen =
        static_cast<u32>(firstLine + lineSize - addr);
    MemResult a = accessL1(l1d_, addr, nullptr, in, firstLen, true);
    MemResult b = accessL1(l1d_, firstLine + lineSize, nullptr,
                           static_cast<const u8 *>(in) + firstLen,
                           len - firstLen, true);
    return {std::max(a.latency, b.latency) + 1, a.fault || b.fault};
}

MemResult
Hierarchy::fetch(Addr addr, void *out, u32 len)
{
    const u32 lineSize = params_.l1i.lineSize;
    const Addr firstLine = alignDown(addr, lineSize);
    const Addr lastLine = alignDown(addr + len - 1, lineSize);
    if (firstLine == lastLine)
        return accessL1(l1i_, addr, out, nullptr, len, false);
    const u32 firstLen =
        static_cast<u32>(firstLine + lineSize - addr);
    MemResult a = accessL1(l1i_, addr, out, nullptr, firstLen, false);
    MemResult b = accessL1(l1i_, firstLine + lineSize,
                           static_cast<u8 *>(out) + firstLen, nullptr,
                           len - firstLen, false);
    return {std::max(a.latency, b.latency) + 1, a.fault || b.fault};
}

void
Hierarchy::coherentRead(Addr addr, void *out, Addr len) const
{
    // Byte-by-byte: L1D, else L2, else DRAM. Only used for output
    // capture and golden comparison (not performance critical).
    u8 *dst = static_cast<u8 *>(out);
    for (Addr i = 0; i < len; ++i) {
        const Addr a = addr + i;
        dst[i] = 0;
        const Cache *levels[2] = {&l1d_, &l2_};
        bool found = false;
        for (const Cache *c : levels) {
            const int line = c->findLine(a);
            if (line >= 0) {
                // Direct const inspection of the data array.
                dst[i] = c->peekByte(
                    line,
                    static_cast<u32>(a & (c->params().lineSize - 1)));
                found = true;
                break;
            }
        }
        if (!found && dram_.ok(a, 1))
            dram_.read(a, &dst[i], 1);
    }
}

} // namespace marvel::mem
