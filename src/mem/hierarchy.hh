/**
 * @file
 * The memory hierarchy: L1I + L1D backed by a unified L2 and DRAM
 * (Table II geometry by default). Functional data movement happens at
 * access time; the returned latency drives the CPU timing model.
 */

#ifndef MARVEL_MEM_HIERARCHY_HH
#define MARVEL_MEM_HIERARCHY_HH

#include <algorithm>

#include "mem/cache.hh"
#include "mem/physmem.hh"

namespace marvel::mem
{

/** Latency parameters of the hierarchy. */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 32 * 1024, 64, 4, 2};
    CacheParams l1d{"l1d", 32 * 1024, 64, 4, 2};
    CacheParams l2{"l2", 1024 * 1024, 64, 8, 14};
    u32 memLatency = 100;
};

/** Result of a memory access. */
struct MemResult
{
    u32 latency = 0;
    bool fault = false; ///< bus error (out-of-range access)
};

/**
 * Two-level write-back hierarchy over flat DRAM. Value-semantic.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params = HierarchyParams{});

    /** Data-side read. Splits line-crossing accesses. */
    MemResult read(Addr addr, void *out, u32 len);

    /** Data-side write. */
    MemResult write(Addr addr, const void *in, u32 len);

    /** Instruction fetch read (through L1I, read-only). */
    MemResult fetch(Addr addr, void *out, u32 len);

    /** Backdoor access bypassing caches (loader, DMA, output capture). */
    PhysMem &dram() { return dram_; }
    const PhysMem &dram() const { return dram_; }

    /**
     * Backdoor coherent read: returns the current architectural value
     * of memory as the CPU would observe it (L1D, else L2, else DRAM),
     * without touching cache state. Used for output-window comparison.
     */
    void coherentRead(Addr addr, void *out, Addr len) const;

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    const Cache &l1iC() const { return l1i_; }
    const Cache &l1dC() const { return l1d_; }
    const Cache &l2C() const { return l2_; }

    const HierarchyParams &params() const { return params_; }

    /**
     * True when the two hierarchies are architecturally identical:
     * every cache level converged (live lines, valid/dirty/PLRU) and
     * DRAM byte-for-byte equal.
     */
    bool
    convergedWith(const Hierarchy &other) const
    {
        return l1i_.convergedWith(other.l1i_) &&
               l1d_.convergedWith(other.l1d_) &&
               l2_.convergedWith(other.l2_) &&
               dram_.size() == other.dram_.size() &&
               std::equal(dram_.data(), dram_.data() + dram_.size(),
                          other.dram_.data());
    }

    /** Register l1i/l1d/l2 subgroups under g (the system group). */
    void regStats(stats::Group &g);

  private:
    /** Access one line-aligned chunk through an L1. */
    MemResult accessL1(Cache &l1, Addr addr, void *out, const void *in,
                       u32 len, bool isWrite);

    /** Fetch a full line's bytes from L2 (filling L2 from DRAM). */
    u32 fetchLineFromL2(Addr lineAddr, void *out);

    /** Write a full line's bytes into L2 (allocating). */
    void writeLineToL2(Addr lineAddr, const void *bytes);

    HierarchyParams params_;
    PhysMem dram_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
};

} // namespace marvel::mem

#endif // MARVEL_MEM_HIERARCHY_HH
