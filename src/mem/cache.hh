/**
 * @file
 * Set-associative write-back cache with tree-PLRU replacement.
 *
 * The data array stores actual bytes and is a fault-injection target:
 * flips corrupt the stored values, reads consume them, writes and fills
 * overwrite them, and dirty evictions propagate corruption downward —
 * exactly the masking/propagation behaviours the paper measures.
 */

#ifndef MARVEL_MEM_CACHE_HH
#define MARVEL_MEM_CACHE_HH

#include <string>
#include <vector>

#include "common/faultwatch.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace marvel::mem
{

/**
 * Per-level access statistics. Value members so checkpoint copies
 * carry the golden baseline; registered into the stats tree via
 * Cache::regStats.
 */
struct CacheStats
{
    stats::Counter hits;
    stats::Counter misses;
    stats::Counter evictions;  ///< valid lines dropped to make room
    stats::Counter writebacks; ///< dirty victims pushed to next level
    stats::Counter fills;      ///< lines installed from below
};

/** Geometry and timing of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    u32 sizeBytes = 32 * 1024;
    u32 lineSize = 64;
    u32 ways = 4;
    u32 hitLatency = 2;

    u32 numSets() const { return sizeBytes / (lineSize * ways); }
    u32 numLines() const { return sizeBytes / lineSize; }
};

/**
 * One cache level. Value-semantic (checkpointable by copy).
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params = CacheParams{});

    const CacheParams &params() const { return params_; }

    /** Line index (set*ways+way) holding addr, or -1. */
    int findLine(Addr addr) const;

    /** True when the line holding addr is present. */
    bool contains(Addr addr) const { return findLine(addr) >= 0; }

    /**
     * Read bytes within one line (must hit). Updates PLRU and fault
     * bookkeeping.
     */
    void readLine(int line, u32 offset, void *out, u32 len);

    /** Write bytes within one line (must hit); marks dirty. */
    void writeLine(int line, u32 offset, const void *in, u32 len);

    /**
     * Pick the victim way for a fill of addr (invalid way preferred,
     * else tree-PLRU). Returns the line index.
     */
    int pickVictim(Addr addr);

    /** Victim state inspection before eviction. */
    bool lineValid(int line) const { return valid_[line]; }
    bool lineDirty(int line) const { return dirty_[line]; }
    Addr lineAddr(int line) const;

    /**
     * Read the full victim line for writeback (counts as a read of all
     * its bits: corruption propagates downward).
     */
    void readLineForWriteback(int line, void *out);

    /** Invalidate a line (clean eviction: pending faults vanish). */
    void invalidate(int line);

    /** Install a line for addr with the given bytes (fill). */
    void fill(int line, Addr addr, const void *bytes);

    /** Flush everything (invalidate all lines; no writeback). */
    void reset();

    // --- fault injection interface ------------------------------------
    /** Entries = lines; bits per entry = lineSize * 8. */
    u32 numEntries() const { return params_.numLines(); }
    u32 bitsPerEntry() const { return params_.lineSize * 8; }

    /** Flip one data bit (transient fault). */
    void flipBit(u32 line, u32 bit);

    /** True when the entry currently holds live data. */
    bool entryValid(u32 line) const { return valid_[line]; }

    /** Side-effect-free inspection of one stored byte. */
    u8
    peekByte(int line, u32 offset) const
    {
        return data_[static_cast<std::size_t>(line) *
                         params_.lineSize +
                     offset];
    }

    FaultState &faults() { return faults_; }
    const FaultState &faults() const { return faults_; }

    /**
     * True when future memory behaviour is indistinguishable: valid,
     * dirty and PLRU state everywhere, plus tag and data bytes of VALID
     * lines only. Invalid lines' stale tags/data are skipped — fill()
     * overwrites tag, data, valid and dirty before a line is ever
     * consulted again, so that residue is dead. Statistics counters are
     * excluded. Geometry is assumed identical (same config).
     */
    bool convergedWith(const Cache &other) const;

    // --- statistics -------------------------------------------------------
    CacheStats stats;

    /** Register this level's counters + miss-rate formula under g. */
    void regStats(stats::Group &g);

  private:
    void touchPlru(u32 set, u32 way);
    u32 plruVictim(u32 set) const;
    void applyStuck(u32 line, u32 bitLo, u32 bitHi);

    CacheParams params_;
    u32 setShift_;
    u32 setMask_;
    obs::Component obsComp_; ///< trace lane, derived from params_.name

    std::vector<u8> data_;    ///< numLines * lineSize bytes
    std::vector<Addr> tags_;  ///< full line-address tags
    std::vector<bool> valid_;
    std::vector<bool> dirty_;
    std::vector<u8> plru_;    ///< per-set tree bits (ways-1 bits, <= 8)

    FaultState faults_;
};

} // namespace marvel::mem

#endif // MARVEL_MEM_CACHE_HH
