#include "mem/cache.hh"

#include <algorithm>
#include <cstring>

#include "common/bits.hh"
#include "common/log.hh"

namespace marvel::mem
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    if (!isPow2(params_.lineSize) || !isPow2(params_.ways) ||
        !isPow2(params_.numSets()))
        fatal("cache '%s': geometry must be powers of two",
              params_.name.c_str());
    if (params_.name == "l1i")
        obsComp_ = obs::Component::L1I;
    else if (params_.name == "l1d")
        obsComp_ = obs::Component::L1D;
    else
        obsComp_ = obs::Component::L2;
    setShift_ = log2i(params_.lineSize);
    setMask_ = params_.numSets() - 1;
    data_.assign(static_cast<std::size_t>(params_.numLines()) *
                     params_.lineSize,
                 0);
    tags_.assign(params_.numLines(), 0);
    valid_.assign(params_.numLines(), false);
    dirty_.assign(params_.numLines(), false);
    plru_.assign(params_.numSets(), 0);
}

int
Cache::findLine(Addr addr) const
{
    const Addr lineAddr = addr >> setShift_;
    const u32 set = static_cast<u32>(lineAddr) & setMask_;
    const u32 base = set * params_.ways;
    for (u32 w = 0; w < params_.ways; ++w) {
        const u32 idx = base + w;
        if (valid_[idx] && tags_[idx] == lineAddr)
            return static_cast<int>(idx);
    }
    return -1;
}

Addr
Cache::lineAddr(int line) const
{
    return tags_[line] << setShift_;
}

void
Cache::touchPlru(u32 set, u32 way)
{
    // Tree-PLRU: walk from the root, recording the direction away from
    // the touched way. Supports 2/4/8 ways.
    u8 bits = plru_[set];
    u32 lo = 0;
    u32 hi = params_.ways;
    u32 node = 0; // index within the tree, level order
    while (hi - lo > 1) {
        const u32 mid = (lo + hi) / 2;
        const bool right = way >= mid;
        // Point the bit AWAY from the touched half.
        if (right)
            bits &= ~(1u << node);
        else
            bits |= (1u << node);
        node = 2 * node + 1 + (right ? 1 : 0);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
    plru_[set] = bits;
}

u32
Cache::plruVictim(u32 set) const
{
    const u8 bits = plru_[set];
    u32 lo = 0;
    u32 hi = params_.ways;
    u32 node = 0;
    while (hi - lo > 1) {
        const u32 mid = (lo + hi) / 2;
        const bool right = (bits >> node) & 1;
        node = 2 * node + 1 + (right ? 1 : 0);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

void
Cache::readLine(int line, u32 offset, void *out, u32 len)
{
    std::memcpy(out,
                data_.data() +
                    static_cast<std::size_t>(line) * params_.lineSize +
                    offset,
                len);
    if (faults_.active())
        faults_.noteRead(line, offset * 8, (offset + len) * 8 - 1);
    touchPlru(static_cast<u32>(line) / params_.ways,
              static_cast<u32>(line) % params_.ways);
}

void
Cache::writeLine(int line, u32 offset, const void *in, u32 len)
{
    std::memcpy(data_.data() +
                    static_cast<std::size_t>(line) * params_.lineSize +
                    offset,
                in, len);
    dirty_[line] = true;
    if (faults_.active()) {
        faults_.noteWrite(line, offset * 8, (offset + len) * 8 - 1);
        applyStuck(line, offset * 8, (offset + len) * 8 - 1);
    }
    touchPlru(static_cast<u32>(line) / params_.ways,
              static_cast<u32>(line) % params_.ways);
}

int
Cache::pickVictim(Addr addr)
{
    const Addr lineAddr = addr >> setShift_;
    const u32 set = static_cast<u32>(lineAddr) & setMask_;
    const u32 base = set * params_.ways;
    for (u32 w = 0; w < params_.ways; ++w)
        if (!valid_[base + w])
            return static_cast<int>(base + w);
    return static_cast<int>(base + plruVictim(set));
}

void
Cache::readLineForWriteback(int line, void *out)
{
    std::memcpy(out,
                data_.data() +
                    static_cast<std::size_t>(line) * params_.lineSize,
                params_.lineSize);
    if (faults_.active())
        faults_.noteRead(line, 0, params_.lineSize * 8 - 1);
    MARVEL_OBS_EMIT(obsComp_, obs::EventKind::CacheWriteback,
                    lineAddr(line), line);
    stats.writebacks.inc();
}

void
Cache::invalidate(int line)
{
    if (valid_[line]) {
        if (faults_.active())
            faults_.noteGone(line);
        MARVEL_OBS_EMIT(obsComp_, obs::EventKind::CacheEvict,
                        lineAddr(line), line);
        stats.evictions.inc();
    }
    valid_[line] = false;
    dirty_[line] = false;
}

void
Cache::fill(int line, Addr addr, const void *bytes)
{
    const Addr lineAddr = addr >> setShift_;
    std::memcpy(data_.data() +
                    static_cast<std::size_t>(line) * params_.lineSize,
                bytes, params_.lineSize);
    tags_[line] = lineAddr;
    valid_[line] = true;
    dirty_[line] = false;
    stats.fills.inc();
    MARVEL_OBS_EMIT(obsComp_, obs::EventKind::CacheFill,
                    lineAddr << setShift_, line);
    if (faults_.active()) {
        // A fill replaces every bit of the frame.
        faults_.noteWrite(line, 0, params_.lineSize * 8 - 1);
        applyStuck(line, 0, params_.lineSize * 8 - 1);
    }
    touchPlru(static_cast<u32>(line) / params_.ways,
              static_cast<u32>(line) % params_.ways);
}

void
Cache::regStats(stats::Group &g)
{
    g.addCounter("hits", &stats.hits, "demand accesses that hit");
    g.addCounter("misses", &stats.misses,
                 "demand accesses that missed");
    g.addCounter("evictions", &stats.evictions,
                 "valid lines dropped for a fill");
    g.addCounter("writebacks", &stats.writebacks,
                 "dirty victims written to the next level");
    g.addCounter("fills", &stats.fills, "lines installed from below");
    g.addFormula(
        "miss_rate",
        [this]() {
            const double acc = static_cast<double>(
                stats.hits.value() + stats.misses.value());
            return acc > 0
                       ? static_cast<double>(stats.misses.value()) / acc
                       : 0.0;
        },
        "misses / demand accesses");
}

void
Cache::reset()
{
    std::fill(valid_.begin(), valid_.end(), false);
    std::fill(dirty_.begin(), dirty_.end(), false);
}

void
Cache::flipBit(u32 line, u32 bit)
{
    data_[static_cast<std::size_t>(line) * params_.lineSize +
          bit / 8] ^= static_cast<u8>(1u << (bit % 8));
}

bool
Cache::convergedWith(const Cache &other) const
{
    if (valid_ != other.valid_ || dirty_ != other.dirty_ ||
        plru_ != other.plru_)
        return false;
    const std::size_t lineSize = params_.lineSize;
    for (std::size_t line = 0; line < valid_.size(); ++line) {
        if (!valid_[line])
            continue;
        if (tags_[line] != other.tags_[line])
            return false;
        const u8 *a = data_.data() + line * lineSize;
        const u8 *b = other.data_.data() + line * lineSize;
        if (!std::equal(a, a + lineSize, b))
            return false;
    }
    return true;
}

void
Cache::applyStuck(u32 line, u32 bitLo, u32 bitHi)
{
    for (const StuckBit &s : faults_.stuck()) {
        if (s.entry != line || s.bit < bitLo || s.bit > bitHi)
            continue;
        u8 &byte = data_[static_cast<std::size_t>(line) *
                             params_.lineSize +
                         s.bit / 8];
        if (s.value)
            byte |= static_cast<u8>(1u << (s.bit % 8));
        else
            byte &= static_cast<u8>(~(1u << (s.bit % 8)));
    }
}

} // namespace marvel::mem
