/**
 * @file
 * Flat simulated physical memory (DRAM).
 */

#ifndef MARVEL_MEM_PHYSMEM_HH
#define MARVEL_MEM_PHYSMEM_HH

#include <vector>

#include "common/memmap.hh"
#include "common/types.hh"

namespace marvel::mem
{

/**
 * Byte-addressable DRAM covering [0, size). Accesses outside raise a
 * bus error at a higher level (callers check ok()).
 */
class PhysMem
{
  public:
    explicit PhysMem(Addr size = kMemSize) : bytes(size, 0) {}

    Addr size() const { return bytes.size(); }

    /** True when [addr, addr+len) is in range. */
    bool
    ok(Addr addr, Addr len) const
    {
        return addr + len <= bytes.size() && addr + len >= addr;
    }

    /** Raw read; caller must have checked ok(). */
    void read(Addr addr, void *out, Addr len) const;

    /** Raw write; caller must have checked ok(). */
    void write(Addr addr, const void *in, Addr len);

    u64 read64(Addr addr) const;
    void write64(Addr addr, u64 value);

    const u8 *data() const { return bytes.data(); }
    u8 *data() { return bytes.data(); }

  private:
    std::vector<u8> bytes;
};

} // namespace marvel::mem

#endif // MARVEL_MEM_PHYSMEM_HH
