/**
 * @file
 * Minimal socket plumbing for the dispatch daemon and worker.
 *
 * One address grammar serves both transports:
 *
 *   unix:/path/to/socket   AF_UNIX stream socket (single-host runs,
 *                          tests, CI — no port allocation races)
 *   host:port              AF_INET TCP (cluster runs); host may be a
 *                          name or dotted quad, port 0 lets the
 *                          kernel pick (boundPort() reports it)
 *
 * Everything here is deliberately thin: fd-returning free functions,
 * fatal() on programmer/configuration errors, -1 + errno on the
 * runtime failures the caller retries (connect refused, accept
 * would-block). The daemon runs its own poll() loop; nothing in this
 * file owns an event model.
 */

#ifndef MARVEL_NET_SOCKET_HH
#define MARVEL_NET_SOCKET_HH

#include <string>

#include "common/types.hh"

namespace marvel::net
{

/** A parsed dispatch address. */
struct Endpoint
{
    bool isUnix = false;
    std::string path; ///< unix: socket path
    std::string host; ///< tcp: host name / address
    u16 port = 0;     ///< tcp: port (0 = kernel-assigned)

    /** Render back to the grammar above (for logs). */
    std::string str() const;
};

/**
 * Parse "unix:/path" or "host:port". fatal() on a malformed spec —
 * addresses come from the command line, and a bad one should stop
 * the tool with a message, not limp into connect errors.
 */
Endpoint parseEndpoint(const std::string &spec);

/**
 * Create, bind and listen on `endpoint`; returns the listening fd
 * (non-blocking, SO_REUSEADDR for TCP; a stale unix socket file is
 * unlinked first). fatal() on failure.
 */
int listenOn(const Endpoint &endpoint);

/** The locally bound TCP port of a listening fd (after port 0). */
u16 boundPort(int listenFd);

/**
 * Blocking connect to `endpoint`. Returns the connected fd, or -1
 * with errno set (the worker's backoff loop handles retries).
 */
int connectTo(const Endpoint &endpoint);

/** Accept one connection; -1 when none is pending (EAGAIN). The
 *  returned fd is made non-blocking. */
int acceptOn(int listenFd);

/** Switch an fd to non-blocking mode. fatal() on failure. */
void setNonBlocking(int fd);

/**
 * Write all of `data` to a BLOCKING fd, riding out EINTR and partial
 * writes. Returns false on connection loss (EPIPE & friends).
 */
bool sendAll(int fd, const std::string &data);

/**
 * Read some bytes from a BLOCKING fd into `out` (appending). Returns
 * the byte count, 0 on orderly close, -1 on error. Retries EINTR.
 */
long recvSome(int fd, std::string &out);

} // namespace marvel::net

#endif // MARVEL_NET_SOCKET_HH
