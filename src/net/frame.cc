#include "net/frame.hh"

#include <cstring>

#include "common/log.hh"

namespace marvel::net
{

namespace
{

void
putU32(std::string &out, u32 value)
{
    out += static_cast<char>(value & 0xff);
    out += static_cast<char>((value >> 8) & 0xff);
    out += static_cast<char>((value >> 16) & 0xff);
    out += static_cast<char>((value >> 24) & 0xff);
}

void
putU16(std::string &out, u16 value)
{
    out += static_cast<char>(value & 0xff);
    out += static_cast<char>((value >> 8) & 0xff);
}

u32
getU32(const char *p)
{
    return static_cast<u32>(static_cast<unsigned char>(p[0])) |
           static_cast<u32>(static_cast<unsigned char>(p[1])) << 8 |
           static_cast<u32>(static_cast<unsigned char>(p[2])) << 16 |
           static_cast<u32>(static_cast<unsigned char>(p[3])) << 24;
}

u16
getU16(const char *p)
{
    return static_cast<u16>(
        static_cast<u16>(static_cast<unsigned char>(p[0])) |
        static_cast<u16>(static_cast<unsigned char>(p[1])) << 8);
}

} // namespace

void
encodeFrame(const Frame &frame, std::string &out)
{
    // A frame the receiver would poison its stream over must never
    // leave the sender: the peer would reconnect and re-send the
    // same oversized frame forever. Fail loudly here instead.
    if (frame.payload.size() > kMaxFramePayload)
        fatal("net: refusing to encode a %zu-byte frame payload "
              "(limit %u); lower --chunk or the lease size",
              frame.payload.size(), kMaxFramePayload);
    out.reserve(out.size() + kFrameHeaderBytes +
                frame.payload.size());
    putU32(out, static_cast<u32>(frame.payload.size()));
    putU16(out, static_cast<u16>(frame.type));
    putU16(out, kProtocolVersion);
    out += frame.payload;
}

void
FrameReader::feed(const char *data, std::size_t len)
{
    if (poisoned_)
        return; // the stream is already lost; don't grow the buffer
    // Compact lazily: only when the consumed prefix dominates, so a
    // chatty connection doesn't memmove on every frame.
    if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
        buffer_.erase(0, consumed_);
        consumed_ = 0;
    }
    buffer_.append(data, len);
}

bool
FrameReader::next(Frame &out)
{
    if (poisoned_)
        return false;
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < kFrameHeaderBytes)
        return false;
    const char *head = buffer_.data() + consumed_;
    const u32 payloadLen = getU32(head);
    const u16 type = getU16(head + 4);
    const u16 version = getU16(head + 6);
    if (version != kProtocolVersion ||
        payloadLen > kMaxFramePayload ||
        type < static_cast<u16>(MsgType::Hello) ||
        type > static_cast<u16>(MsgType::Metrics)) {
        poisoned_ = true;
        return false;
    }
    if (avail < kFrameHeaderBytes + payloadLen)
        return false;
    out.type = static_cast<MsgType>(type);
    out.payload.assign(head + kFrameHeaderBytes, payloadLen);
    consumed_ += kFrameHeaderBytes + payloadLen;
    return true;
}

} // namespace marvel::net
