#include "net/lease.hh"

#include <algorithm>

#include "common/log.hh"

namespace marvel::net
{

LeaseManager::LeaseManager(u64 numFaults, u64 ttlMillis)
    : numFaults_(numFaults), ttlMillis_(ttlMillis),
      done_(numFaults, 0)
{
    if (numFaults == 0)
        fatal("net: cannot dispatch a campaign of zero faults");
    if (ttlMillis == 0)
        fatal("net: lease TTL must be positive");
}

void
LeaseManager::seed(const std::vector<u8> &done)
{
    if (seeded_)
        panic("LeaseManager seeded twice");
    seeded_ = true;
    for (u64 i = 0; i < numFaults_ && i < done.size(); ++i) {
        if (done[i]) {
            done_[i] = 1;
            ++doneCount_;
        }
    }
    queue_ = sched::RangeQueue(
        sched::pendingRanges(numFaults_, done_));
}

void
LeaseManager::adopt(const store::LeaseTable &table, u64 nowMillis)
{
    if (!seeded_)
        panic("LeaseManager::adopt before seed");
    nextId_ = std::max(nextId_, table.nextId);
    for (const store::LeaseRecord &rec : table.active) {
        if (rec.end <= rec.begin || rec.end > numFaults_)
            fatal("net: persisted lease %llu covers [%llu, %llu) "
                  "outside the campaign's %llu faults",
                  static_cast<unsigned long long>(rec.id),
                  static_cast<unsigned long long>(rec.begin),
                  static_cast<unsigned long long>(rec.end),
                  static_cast<unsigned long long>(numFaults_));
        // Carve the adopted range out of the pending pool: re-acquire
        // the whole pool and drop anything the lease covers. The pool
        // is small (a handful of ranges), so rebuild is the simple
        // and obviously-correct move.
        std::vector<sched::IndexRange> kept;
        while (auto r = queue_.acquire(0)) {
            if (r->end <= rec.begin || r->begin >= rec.end) {
                kept.push_back(*r);
                continue;
            }
            if (r->begin < rec.begin)
                kept.push_back({r->begin, rec.begin});
            if (r->end > rec.end)
                kept.push_back({rec.end, r->end});
        }
        for (const sched::IndexRange &r : kept)
            queue_.requeue(r);
        ActiveLease lease;
        lease.id = rec.id;
        lease.range = {rec.begin, rec.end};
        lease.worker = rec.worker;
        lease.deadlineMillis = nowMillis + ttlMillis_;
        nextId_ = std::max(nextId_, rec.id + 1);
        active_.emplace(lease.id, lease);
    }
}

std::optional<ActiveLease>
LeaseManager::grant(const std::string &worker, u64 maxFaults,
                    u64 nowMillis)
{
    if (!seeded_)
        panic("LeaseManager::grant before seed");
    std::optional<sched::IndexRange> range = queue_.acquire(maxFaults);
    if (!range)
        return std::nullopt;
    ActiveLease lease;
    lease.id = nextId_++;
    lease.range = *range;
    lease.worker = worker;
    lease.deadlineMillis = nowMillis + ttlMillis_;
    active_.emplace(lease.id, lease);
    ++statGranted;
    return lease;
}

bool
LeaseManager::recordVerdict(u64 idx)
{
    if (idx >= numFaults_ || done_[idx])
        return false;
    done_[idx] = 1;
    ++doneCount_;
    return true;
}

void
LeaseManager::touch(u64 leaseId, u64 nowMillis)
{
    auto it = active_.find(leaseId);
    if (it != active_.end())
        it->second.deadlineMillis = nowMillis + ttlMillis_;
}

bool
LeaseManager::complete(u64 leaseId)
{
    auto it = active_.find(leaseId);
    if (it == active_.end())
        return false;
    requeueUnfinished(it->second.range);
    active_.erase(it);
    ++statCompleted;
    return true;
}

std::vector<ActiveLease>
LeaseManager::expire(u64 nowMillis)
{
    std::vector<ActiveLease> out;
    for (auto it = active_.begin(); it != active_.end();) {
        if (it->second.deadlineMillis <= nowMillis) {
            requeueUnfinished(it->second.range);
            out.push_back(it->second);
            it = active_.erase(it);
            ++statExpired;
        } else {
            ++it;
        }
    }
    return out;
}

std::vector<ActiveLease>
LeaseManager::release(const std::string &worker)
{
    std::vector<ActiveLease> out;
    for (auto it = active_.begin(); it != active_.end();) {
        if (it->second.worker == worker) {
            requeueUnfinished(it->second.range);
            out.push_back(it->second);
            it = active_.erase(it);
            ++statReleased;
        } else {
            ++it;
        }
    }
    return out;
}

store::LeaseTable
LeaseManager::snapshot() const
{
    store::LeaseTable table;
    table.nextId = nextId_;
    for (const auto &[id, lease] : active_)
        table.active.push_back(
            {id, lease.range.begin, lease.range.end, lease.worker});
    return table;
}

std::optional<u64>
LeaseManager::nextDeadline() const
{
    std::optional<u64> soonest;
    for (const auto &[id, lease] : active_)
        if (!soonest || lease.deadlineMillis < *soonest)
            soonest = lease.deadlineMillis;
    return soonest;
}

void
LeaseManager::requeueUnfinished(const sched::IndexRange &range)
{
    u64 i = range.begin;
    while (i < range.end) {
        if (done_[i]) {
            ++i;
            continue;
        }
        u64 j = i + 1;
        while (j < range.end && !done_[j])
            ++j;
        queue_.requeue({i, j});
        statRequeuedIndices += j - i;
        i = j;
    }
}

} // namespace marvel::net
