/**
 * @file
 * marvel-campaignd's engine: the work-dispenser daemon.
 *
 * One single-threaded poll() loop owns everything: the listening
 * socket, every worker/watcher connection, the lease table, the
 * campaign's verdict journal, and the heartbeat. No locks, no helper
 * threads — a campaign daemon's job is bookkeeping, and the expensive
 * part (simulation) happens in the workers.
 *
 * Durability model, in order of authority:
 *   1. The verdict journal is the campaign. Verdicts are appended
 *      through the same store::JournalWriter the in-process scheduler
 *      uses and committed (fsync + chunk marker) before any LeaseDone
 *      is acked, so an acked lease can never lose work.
 *   2. The lease table (<journal>.leases) records promised-but-
 *      unfinished ranges. A restarted daemon re-adopts them with a
 *      fresh TTL and will not re-grant those indices until the lease
 *      expires — so a worker that kept simulating through the
 *      daemon's nap completes normally and nothing double-runs.
 *   3. The heartbeat (<journal>.progress) is advisory, as always.
 *
 * Worker death is the TTL's problem: a silent lease expires and its
 * unfinished indices re-queue; a dropped connection releases its
 * leases immediately. Stale verdicts from either case are ingested
 * but deduplicated (first record per index wins — the same rule the
 * journal reader, resume, and merge already enforce), which is what
 * makes re-leasing always safe.
 *
 * Tests drive the daemon in-process: start(), then pollOnce() on a
 * test thread (or run() with a stop flag), against a unix socket in a
 * temp dir. The tools wrap run() and signal handling.
 */

#ifndef MARVEL_NET_DAEMON_HH
#define MARVEL_NET_DAEMON_HH

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fi/campaign.hh"
#include "net/frame.hh"
#include "net/lease.hh"
#include "net/socket.hh"
#include "obs/metrics.hh"
#include "sched/heartbeat.hh"
#include "store/journal.hh"

namespace marvel::net
{

/** Everything marvel-campaignd configures. */
struct DaemonConfig
{
    Endpoint endpoint;
    std::string journalPath;

    /**
     * The campaign identity (sched::journalMetaFor of the golden run
     * the daemon's owner built). Shard fields should be 0/1 — the
     * daemon owns the whole campaign and leases are its sharding.
     */
    store::JournalMeta meta;

    u64 ttlMillis = 30'000;  ///< lease TTL
    u64 maxLeaseFaults = 8;  ///< cap per grant (0: whole front range)
    u64 chunk = 16;          ///< verdicts per chunk (wire + journal)
    u64 heartbeatMillis = 500; ///< progress/status cadence
    bool exitWhenDone = true;  ///< stop once every verdict is in
};

/** The dispatch daemon. Construct, start(), then run()/pollOnce(). */
class Daemon
{
  public:
    explicit Daemon(DaemonConfig config);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind the endpoint and open (or resume) the journal and lease
     * table. fatal() on identity mismatch with an existing journal —
     * the mismatch messages name the field, both values and the file.
     */
    void start();

    /**
     * One poll() iteration, waiting at most `maxWaitMillis` (clamped
     * further by the heartbeat cadence and the next lease deadline).
     * Returns false once the daemon has finished and shut down.
     */
    bool pollOnce(int maxWaitMillis = 100);

    /** pollOnce() until complete (or `*stop` turns true). */
    void run(const std::atomic<bool> *stop = nullptr);

    /** All verdicts journaled? */
    bool complete() const { return leases_.allDone(); }

    /** The kernel-assigned port after binding host:0 (TCP only). */
    u16 tcpPort() const;

    const obs::DispatchTelemetry &telemetry() const { return stats_; }
    const LeaseManager &leases() const { return leases_; }

  private:
    struct Conn
    {
        int fd = -1;
        FrameReader reader;
        std::string outBuf;
        std::string worker; ///< empty until Hello
        bool watcher = false;
        bool closing = false; ///< drop once outBuf drains
    };

    u64 nowMillis() const;
    void acceptPending();
    void readConn(std::size_t i);
    void handleFrame(Conn &conn, const Frame &frame);
    void sendFrame(Conn &conn, MsgType type,
                   const std::string &payload);
    /** Push buffered bytes; false on a dead connection. */
    bool flushConn(Conn &conn);
    void dropConn(std::size_t i);
    bool workerStillConnected(const std::string &name,
                              const Conn *except) const;
    void persistLeases();
    void ingestChunk(Conn &conn, const std::string &payload);
    void tick();
    void finish();
    sched::Heartbeat currentBeat() const;
    /** Clear a worker's live-lease marker once `leaseId` is gone. */
    void noteLeaseGone(const std::string &worker, u64 leaseId);
    /** OpenMetrics text for a Metrics request (live counters). */
    std::string renderMetrics();

    DaemonConfig config_;
    LeaseManager leases_;
    std::chrono::steady_clock::time_point epoch_;

    int listenFd_ = -1;
    std::vector<std::unique_ptr<Conn>> conns_;
    store::JournalWriter writer_;
    fi::CampaignResult tally_; ///< verdict mix for the heartbeat
    obs::DispatchTelemetry stats_;
    std::vector<std::string> knownWorkers_;
    /** Daemon-uptime millis of each worker's last verdict chunk, for
     *  the chunk-latency gap telemetry. */
    std::map<std::string, u64> lastChunkMillis_;
    u64 startMillis_ = 0;
    u64 doneAtStart_ = 0; ///< resumed verdicts don't count as rate
    /** Verdicts ingested whose provenance says the run ended at a
     *  converged rung (this daemon's ingest only, like the scheduler's
     *  heartbeat counter — resumed journal lines are not re-counted). */
    u64 earlyStops_ = 0;
    u64 lastBeatMillis_ = 0;
    bool started_ = false;
    bool finished_ = false;
};

} // namespace marvel::net

#endif // MARVEL_NET_DAEMON_HH
