/**
 * @file
 * marvel-worker's engine: the lease-running dispatch client.
 *
 * A worker is deliberately thin: it connects, learns the campaign
 * identity from the daemon's HelloAck, validates that identity
 * against the golden run it built locally (the same
 * sched::checkJournalMatches fatals a resume would raise — wrong
 * workload, wrong ladder geometry, wrong prune flag all stop the
 * worker with both values and the offending source named), then loops
 * lease -> simulate -> stream until the daemon says the campaign is
 * complete. Each fault index runs through sched::runFaultIndex — the
 * exact unit of work the in-process scheduler executes — which is why
 * a distributed campaign's verdicts are identical by construction.
 *
 * Connection loss at ANY point is not an error: the daemon re-queues
 * whatever this worker was holding, and the worker reconnects with
 * exponential backoff + deterministic jitter and simply starts over
 * from Hello. Verdicts that were already streamed stay journaled;
 * re-running a lost lease re-produces byte-identical records that the
 * daemon deduplicates.
 *
 * The golden run is supplied by a callback rather than built here:
 * the golden's ladder geometry comes from the daemon's meta, so the
 * caller cannot build it until the first HelloAck arrives.
 */

#ifndef MARVEL_NET_WORKER_HH
#define MARVEL_NET_WORKER_HH

#include <functional>
#include <string>

#include "fi/campaign.hh"
#include "net/socket.hh"
#include "store/journal.hh"

namespace marvel::net
{

/** Everything marvel-worker configures. */
struct WorkerConfig
{
    Endpoint endpoint;
    std::string name = "worker";

    /** Indices to ask for per lease; 0 lets the daemon decide. */
    u64 maxLeaseFaults = 0;

    /** Consecutive failed connects before giving up (fatal). */
    unsigned connectAttempts = 10;
    u64 backoffBaseMillis = 50;
    u64 backoffCapMillis = 2'000;

    /** Wait between LeaseRequests while the queue is drained but the
     *  campaign is not complete (other workers hold leases). */
    u64 idlePollMillis = 100;

    /**
     * Test hook simulating a worker killed mid-lease: after this many
     * verdicts have been computed in total, drop the connection on
     * the floor and return (0 = never). The lease-recovery tests and
     * the CI smoke job use it to exercise expiry/re-queue without
     * actual process murder being load-bearing.
     */
    u64 abandonAfterVerdicts = 0;
};

/** What a worker did with its life. */
struct WorkerReport
{
    u64 verdictsStreamed = 0; ///< computed (not all reached the wire)
    u64 leasesCompleted = 0;  ///< LeaseDone acks with ok
    u64 leasesLost = 0;       ///< acks refused (lease expired first)
    u64 reconnects = 0;
    bool campaignComplete = false; ///< saw NoWork{complete}
    bool abandoned = false;        ///< the test hook fired
};

/**
 * Supplies the golden run for the campaign described by `meta` (in
 * particular, built with meta.ladderRungs ladder rungs). Called once,
 * after the first HelloAck; the returned reference must stay valid
 * for the rest of runWorker.
 */
using GoldenSource = std::function<const fi::GoldenRun &(
    const store::JournalMeta &meta)>;

/**
 * Run the worker loop to campaign completion. fatal() on a campaign
 * identity mismatch or when the daemon stays unreachable through the
 * whole backoff schedule.
 */
WorkerReport runWorker(const WorkerConfig &config,
                       const GoldenSource &goldenFor);

/**
 * The backoff delay before reconnect `attempt` (0-based): an
 * exponentially growing window capped at `capMillis`, jittered into
 * [window/2, window] with a deterministic per-(name, attempt) RNG so
 * a restarted fleet of workers does not stampede the daemon in
 * lockstep. Exposed for tests.
 */
u64 backoffDelayMillis(const std::string &name, unsigned attempt,
                       u64 baseMillis, u64 capMillis);

} // namespace marvel::net

#endif // MARVEL_NET_WORKER_HH
