#include "net/protocol.hh"

#include <map>

#include "common/json.hh"
#include "common/log.hh"

namespace marvel::net
{

namespace
{

/** Parse `payload` as one flat JSON object (no trailing newline). */
bool
parseObject(const std::string &payload,
            std::map<std::string, std::string> &fields)
{
    std::string line = payload;
    while (!line.empty() && line.back() == '\n')
        line.pop_back();
    return json::parseFlat(line, fields);
}

} // namespace

std::string
encodeHello(const Hello &msg)
{
    return strfmt("{\"worker\":\"%s\",\"version\":\"%s\"}",
                  json::escape(msg.worker).c_str(),
                  json::escape(msg.version).c_str());
}

bool
decodeHello(const std::string &payload, Hello &out)
{
    std::map<std::string, std::string> fields;
    return parseObject(payload, fields) &&
           json::fieldStr(fields, "worker", out.worker) &&
           json::fieldStr(fields, "version", out.version);
}

std::string
encodeHelloAck(const HelloAck &msg)
{
    // Line 1: the journal's own meta record (campaign identity).
    // Line 2: dispatch configuration the worker should honour.
    return store::formatMetaLine(msg.meta) + "\n" +
           strfmt("{\"ttlMillis\":%llu,\"chunk\":%llu}",
                  static_cast<unsigned long long>(msg.ttlMillis),
                  static_cast<unsigned long long>(msg.chunk));
}

bool
decodeHelloAck(const std::string &payload, HelloAck &out)
{
    const std::size_t nl = payload.find('\n');
    if (nl == std::string::npos)
        return false;
    if (!store::parseMetaLine(payload.substr(0, nl), out.meta))
        return false;
    std::map<std::string, std::string> fields;
    return parseObject(payload.substr(nl + 1), fields) &&
           json::fieldU64(fields, "ttlMillis", out.ttlMillis) &&
           json::fieldU64(fields, "chunk", out.chunk);
}

std::string
encodeLeaseRequest(u64 maxFaults)
{
    return strfmt("{\"max\":%llu}",
                  static_cast<unsigned long long>(maxFaults));
}

bool
decodeLeaseRequest(const std::string &payload, u64 &maxFaults)
{
    std::map<std::string, std::string> fields;
    return parseObject(payload, fields) &&
           json::fieldU64(fields, "max", maxFaults);
}

std::string
encodeLeaseGrant(const LeaseGrant &msg)
{
    return strfmt("{\"lease\":%llu,\"begin\":%llu,\"end\":%llu,"
                  "\"ttlMillis\":%llu}",
                  static_cast<unsigned long long>(msg.lease),
                  static_cast<unsigned long long>(msg.range.begin),
                  static_cast<unsigned long long>(msg.range.end),
                  static_cast<unsigned long long>(msg.ttlMillis));
}

bool
decodeLeaseGrant(const std::string &payload, LeaseGrant &out)
{
    std::map<std::string, std::string> fields;
    return parseObject(payload, fields) &&
           json::fieldU64(fields, "lease", out.lease) &&
           json::fieldU64(fields, "begin", out.range.begin) &&
           json::fieldU64(fields, "end", out.range.end) &&
           json::fieldU64(fields, "ttlMillis", out.ttlMillis) &&
           out.range.begin < out.range.end;
}

std::string
encodeNoWork(const NoWork &msg)
{
    return strfmt("{\"complete\":%d,\"pending\":%llu}",
                  msg.complete ? 1 : 0,
                  static_cast<unsigned long long>(msg.pending));
}

bool
decodeNoWork(const std::string &payload, NoWork &out)
{
    std::map<std::string, std::string> fields;
    u64 complete = 0;
    if (!parseObject(payload, fields) ||
        !json::fieldU64(fields, "complete", complete) ||
        !json::fieldU64(fields, "pending", out.pending))
        return false;
    out.complete = complete != 0;
    return true;
}

std::string
encodeVerdictChunk(const VerdictChunk &msg)
{
    std::string out = strfmt(
        "{\"lease\":%llu,\"count\":%zu",
        static_cast<unsigned long long>(msg.lease),
        msg.verdicts.size());
    if (msg.telem.present) {
        out += strfmt(
            ",\"t_runs\":%llu,\"t_busy_us\":%llu",
            static_cast<unsigned long long>(msg.telem.runs),
            static_cast<unsigned long long>(msg.telem.busyMicros));
        for (std::size_t p = 0; p < msg.telem.phaseMicros.size();
             ++p)
            out += strfmt(",\"t_ph%zu\":%llu", p,
                          static_cast<unsigned long long>(
                              msg.telem.phaseMicros[p]));
    }
    out += '}';
    for (const store::JournalVerdict &jv : msg.verdicts) {
        out += '\n';
        out += store::formatVerdictLine(jv.idx, jv.verdict,
                                        jv.prov);
    }
    return out;
}

bool
decodeVerdictChunk(const std::string &payload, VerdictChunk &out)
{
    std::size_t nl = payload.find('\n');
    const std::string header =
        payload.substr(0, nl == std::string::npos ? payload.size()
                                                  : nl);
    std::map<std::string, std::string> fields;
    u64 count = 0;
    if (!json::parseFlat(header, fields) ||
        !json::fieldU64(fields, "lease", out.lease) ||
        !json::fieldU64(fields, "count", count))
        return false;
    // Optional piggybacked worker telemetry; presence keyed on
    // t_runs so a mixed-version fleet stays decodable.
    out.telem = ChunkTelemetry{};
    if (json::fieldU64(fields, "t_runs", out.telem.runs)) {
        out.telem.present = true;
        json::fieldU64(fields, "t_busy_us", out.telem.busyMicros);
        for (std::size_t p = 0;
             p < out.telem.phaseMicros.size(); ++p)
            json::fieldU64(fields, strfmt("t_ph%zu", p).c_str(),
                           out.telem.phaseMicros[p]);
    }
    out.verdicts.clear();
    // `count` comes off the wire; a lying header must not force a
    // giant allocation. Every verdict occupies at least one payload
    // byte plus its newline, so a count beyond the payload size is
    // malformed on its face.
    if (count > payload.size())
        return false;
    out.verdicts.reserve(count);
    std::size_t pos =
        nl == std::string::npos ? payload.size() : nl + 1;
    while (pos < payload.size()) {
        nl = payload.find('\n', pos);
        if (nl == std::string::npos)
            nl = payload.size();
        const std::string line = payload.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;
        store::JournalVerdict jv;
        if (!store::parseVerdictLine(line, jv))
            return false;
        out.verdicts.push_back(jv);
    }
    return out.verdicts.size() == count;
}

std::string
encodeLeaseDone(u64 lease)
{
    return strfmt("{\"lease\":%llu}",
                  static_cast<unsigned long long>(lease));
}

bool
decodeLeaseDone(const std::string &payload, u64 &lease)
{
    std::map<std::string, std::string> fields;
    return parseObject(payload, fields) &&
           json::fieldU64(fields, "lease", lease);
}

std::string
encodeLeaseAck(const LeaseAck &msg)
{
    return strfmt("{\"lease\":%llu,\"ok\":%d}",
                  static_cast<unsigned long long>(msg.lease),
                  msg.ok ? 1 : 0);
}

bool
decodeLeaseAck(const std::string &payload, LeaseAck &out)
{
    std::map<std::string, std::string> fields;
    u64 ok = 0;
    if (!parseObject(payload, fields) ||
        !json::fieldU64(fields, "lease", out.lease) ||
        !json::fieldU64(fields, "ok", ok))
        return false;
    out.ok = ok != 0;
    return true;
}

std::string
encodeError(const std::string &message)
{
    return strfmt("{\"message\":\"%s\"}",
                  json::escape(message).c_str());
}

bool
decodeError(const std::string &payload, std::string &message)
{
    std::map<std::string, std::string> fields;
    return parseObject(payload, fields) &&
           json::fieldStr(fields, "message", message);
}

} // namespace marvel::net
