/**
 * @file
 * Length-prefixed message framing for the dispatch protocol.
 *
 * Every message on a dispatch connection is one frame:
 *
 *   offset  size  field
 *   0       4     payload length (little-endian u32)
 *   4       2     message type   (little-endian u16, MsgType)
 *   6       2     protocol version (little-endian u16, = 1)
 *   8       len   payload bytes (flat JSON records, see protocol.hh)
 *
 * TCP gives a byte stream, not messages; the frame header is the
 * entire re-segmentation story. FrameReader is an incremental
 * decoder: feed it whatever recv() produced — half a header, three
 * frames and a tail, anything — and it yields complete frames in
 * order. A malformed header (unknown version, oversized payload)
 * poisons the reader permanently: framing errors are not recoverable
 * on a stream, the only safe response is to drop the connection.
 */

#ifndef MARVEL_NET_FRAME_HH
#define MARVEL_NET_FRAME_HH

#include <string>

#include "common/types.hh"

namespace marvel::net
{

constexpr u16 kProtocolVersion = 1;
constexpr u32 kFrameHeaderBytes = 8;

/** Refuse absurd frames before allocating for them. A verdict line
 *  is ~130 bytes; the largest legitimate frame is a journal chunk of
 *  a whole lease, far under this. */
constexpr u32 kMaxFramePayload = 16u * 1024 * 1024;

/** Wire message types. Values are protocol, never reorder. */
enum class MsgType : u16
{
    Hello = 1,        ///< worker -> daemon: name + build version
    HelloAck = 2,     ///< daemon -> worker: campaign identity (meta)
    LeaseRequest = 3, ///< worker -> daemon: give me work
    LeaseGrant = 4,   ///< daemon -> worker: fault range + TTL
    NoWork = 5,       ///< daemon -> worker: drained or complete
    VerdictChunk = 6, ///< worker -> daemon: journal lines for a lease
    LeaseDone = 7,    ///< worker -> daemon: range fully streamed
    LeaseAck = 8,     ///< daemon -> worker: lease retired (or not)
    StatusSubscribe = 9, ///< watcher -> daemon: join the status feed
    StatusUpdate = 10,   ///< daemon -> watcher: one heartbeat record
    Bye = 11,            ///< either side: orderly goodbye
    Error = 12,          ///< daemon -> peer: refusal with a message
    Metrics = 13,        ///< peer -> daemon: empty request; daemon
                         ///  replies Metrics with OpenMetrics text
};

/** One decoded (or to-be-encoded) message. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::string payload;
};

/** Append the wire encoding of `frame` to `out`. */
void encodeFrame(const Frame &frame, std::string &out);

/** Incremental frame decoder over a received byte stream. */
class FrameReader
{
  public:
    /** Buffer more received bytes. */
    void feed(const char *data, std::size_t len);

    /**
     * Extract the next complete frame. False when the buffer holds
     * only a partial frame (or the reader is poisoned).
     */
    bool next(Frame &out);

    /** True once a malformed header was seen; no frame will follow. */
    bool poisoned() const { return poisoned_; }

    /** Bytes buffered but not yet consumed (for tests/diagnostics). */
    std::size_t buffered() const { return buffer_.size() - consumed_; }

  private:
    std::string buffer_;
    std::size_t consumed_ = 0;
    bool poisoned_ = false;
};

} // namespace marvel::net

#endif // MARVEL_NET_FRAME_HH
