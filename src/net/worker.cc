#include "net/worker.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include <unistd.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/version.hh"
#include "fi/fault.hh"
#include "fi/targets.hh"
#include "net/frame.hh"
#include "net/protocol.hh"
#include "obs/profiler.hh"
#include "sched/scheduler.hh"

namespace marvel::net
{

namespace
{

/** FNV-1a, so jitter streams differ per worker name. */
u64
nameHash(const std::string &name)
{
    u64 h = 0xcbf29ce484222325ull;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

fi::FaultModel
modelFromName(const std::string &name, const std::string &source)
{
    for (int i = 0; i <= static_cast<int>(fi::FaultModel::StuckAt1);
         ++i) {
        const fi::FaultModel m = static_cast<fi::FaultModel>(i);
        if (name == fi::faultModelName(m))
            return m;
    }
    fatal("worker: %s names unknown fault model '%s'",
          source.c_str(), name.c_str());
}

/** One connected conversation with the daemon. */
struct Session
{
    int fd = -1;
    FrameReader reader;

    ~Session()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool
    sendFrame(MsgType type, const std::string &payload)
    {
        std::string wire;
        encodeFrame({type, payload}, wire);
        return sendAll(fd, wire);
    }

    /** Block until one whole frame arrives; false on stream loss. */
    bool
    readFrame(Frame &out)
    {
        for (;;) {
            if (reader.next(out))
                return true;
            if (reader.poisoned())
                return false;
            std::string bytes;
            long n;
            {
                // Blocking on the daemon is the worker's socket-wait
                // phase: everything else it does is simulation.
                const obs::profiler::ScopedPhase timer(
                    obs::profiler::Phase::SocketWait);
                n = recvSome(fd, bytes);
            }
            if (n <= 0)
                return false;
            reader.feed(bytes.data(), bytes.size());
        }
    }
};

/** The per-campaign state derived from the daemon's HelloAck. */
struct CampaignContext
{
    store::JournalMeta meta;
    const fi::GoldenRun *golden = nullptr;
    fi::TargetRef target;
    fi::TargetGeometry geometry;
    fi::FaultModel model = fi::FaultModel::Transient;
    fi::FaultSampler sampler;
    fi::InjectionOptions runOpts;
    fi::TargetProfile profile;
};

/**
 * Build and validate the campaign context from the first HelloAck.
 * Validation reuses checkJournalMatches by deriving the meta this
 * worker WOULD journal for its local golden and comparing it to the
 * daemon's — so every mismatch fatal (digest, ladder, prune, ...)
 * reads exactly like the resume/replay ones, naming both values.
 */
CampaignContext
makeContext(const store::JournalMeta &meta,
            const GoldenSource &goldenFor, const Endpoint &endpoint)
{
    CampaignContext ctx;
    ctx.meta = meta;
    ctx.golden = &goldenFor(meta);
    ctx.model = modelFromName(
        meta.model, "daemon at " + endpoint.str());
    ctx.target = fi::targetByName(ctx.golden->checkpoint.view(),
                                  meta.target);
    const fi::TargetInfo info =
        fi::targetInfo(ctx.golden->checkpoint.view(), ctx.target);
    ctx.geometry = info.geometry;

    fi::CampaignOptions copts;
    copts.numFaults = static_cast<unsigned>(meta.numFaults);
    copts.model = ctx.model;
    // The meta's spec string (absent = legacy single-bit) is the
    // daemon's authority on how indices expand to masks; the worker
    // self-configures from it, so no launch flag can disagree.
    copts.modelSpec = fi::FaultModelSpec::parse(meta.faultModel);
    copts.seed = meta.seed;
    copts.earlyTermination = meta.optEarlyTerm != 0;
    copts.computeHvf = meta.optHvf != 0;
    copts.timeoutFactor =
        static_cast<double>(meta.timeoutFactorMilli) / 1000.0;
    copts.ladderRungs = meta.ladderRungs;
    copts.prune = meta.optPrune != 0;
    // The meta carries the RESOLVED early-stop mode, so map it to the
    // concrete setting (never Auto) before re-deriving the expected
    // meta — resolveEarlyStop(On/Off) is ladder-independent.
    copts.earlyStop =
        meta.optEarlyStop
            ? fi::CampaignOptions::EarlyStopSetting::On
            : fi::CampaignOptions::EarlyStopSetting::Off;
    copts.shardIndex = meta.shardIndex;
    copts.shardCount = meta.shardCount;
    copts.workloadName = meta.workload;
    const store::JournalMeta expected =
        sched::journalMetaFor(*ctx.golden, info, copts);
    sched::checkJournalMatches(meta, expected,
                               "dispatch " + endpoint.str());

    ctx.sampler =
        fi::makeSampler(*ctx.golden, ctx.model, copts.modelSpec);
    ctx.runOpts.earlyTermination = copts.earlyTermination;
    ctx.runOpts.computeHvf = copts.computeHvf;
    ctx.runOpts.timeoutFactor = copts.timeoutFactor;
    ctx.runOpts.useLadder = true;
    ctx.runOpts.earlyStop = meta.optEarlyStop
                                ? fi::EarlyStopMode::On
                                : fi::EarlyStopMode::Off;
    if (copts.prune && ctx.model == fi::FaultModel::Transient)
        ctx.profile =
            fi::profileTargetAccesses(*ctx.golden, ctx.target);
    return ctx;
}

} // namespace

u64
backoffDelayMillis(const std::string &name, unsigned attempt,
                   u64 baseMillis, u64 capMillis)
{
    u64 window = baseMillis;
    for (unsigned i = 0; i < std::min(attempt, 16u); ++i) {
        window *= 2;
        if (window >= capMillis)
            break;
    }
    window = std::min(std::max<u64>(window, 1), capMillis);
    Rng rng = Rng::forStream(nameHash(name), attempt);
    return window / 2 + rng() % (window / 2 + 1);
}

WorkerReport
runWorker(const WorkerConfig &config, const GoldenSource &goldenFor)
{
    WorkerReport report;
    std::optional<CampaignContext> ctx;
    bool everConnected = false;
    unsigned attempt = 0;
    using Clock = std::chrono::steady_clock;
    u64 busyMicros = 0; ///< cumulative wall time inside runFaultIndex
    // Stamp this process's cumulative totals onto an outgoing chunk
    // header; the daemon overwrites its per-worker view with them.
    auto stampTelemetry = [&](VerdictChunk &chunk) {
        chunk.telem.present = true;
        chunk.telem.runs = report.verdictsStreamed;
        chunk.telem.busyMicros = busyMicros;
        const obs::profiler::Totals totals =
            obs::profiler::snapshot();
        for (std::size_t p = 0;
             p < chunk.telem.phaseMicros.size(); ++p)
            chunk.telem.phaseMicros[p] = totals.nanos[p] / 1000;
    };

    for (;;) {
        Session session;
        session.fd = connectTo(config.endpoint);
        if (session.fd < 0) {
            if (attempt >= config.connectAttempts) {
                if (report.campaignComplete)
                    return report;
                fatal("worker '%s': daemon at %s unreachable after "
                      "%u attempts",
                      config.name.c_str(),
                      config.endpoint.str().c_str(),
                      config.connectAttempts);
            }
            const u64 delay = backoffDelayMillis(
                config.name, attempt, config.backoffBaseMillis,
                config.backoffCapMillis);
            ++attempt;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
            continue;
        }
        if (everConnected)
            ++report.reconnects;
        everConnected = true;
        attempt = 0;

        Hello hello;
        hello.worker = config.name;
        hello.version = kVersionString;
        Frame frame;
        HelloAck ack;
        if (!session.sendFrame(MsgType::Hello, encodeHello(hello)) ||
            !session.readFrame(frame) ||
            frame.type != MsgType::HelloAck ||
            !decodeHelloAck(frame.payload, ack))
            continue; // stream died mid-handshake; back off & retry
        if (!ctx)
            ctx = makeContext(ack.meta, goldenFor, config.endpoint);
        const u64 chunkSize = ack.chunk ? ack.chunk : 16;

        // The lease loop: runs until the campaign completes or the
        // connection drops (then we fall out and reconnect).
        bool connected = true;
        while (connected) {
            if (!session.sendFrame(
                    MsgType::LeaseRequest,
                    encodeLeaseRequest(config.maxLeaseFaults)) ||
                !session.readFrame(frame)) {
                connected = false;
                break;
            }
            if (frame.type == MsgType::NoWork) {
                NoWork none;
                if (!decodeNoWork(frame.payload, none)) {
                    connected = false;
                    break;
                }
                if (none.complete) {
                    report.campaignComplete = true;
                    session.sendFrame(MsgType::Bye, "");
                    return report;
                }
                // Drained but unfinished: someone else holds the
                // remaining leases. Poll again shortly.
                {
                    const obs::profiler::ScopedPhase timer(
                        obs::profiler::Phase::SocketWait);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            config.idlePollMillis));
                }
                continue;
            }
            LeaseGrant grant;
            if (frame.type != MsgType::LeaseGrant ||
                !decodeLeaseGrant(frame.payload, grant)) {
                connected = false;
                break;
            }

            VerdictChunk chunk;
            chunk.lease = grant.lease;
            for (u64 idx = grant.range.begin;
                 connected && idx < grant.range.end; ++idx) {
                const auto runStart = Clock::now();
                const fi::RunVerdict verdict = sched::runFaultIndex(
                    *ctx->golden, ctx->target, ctx->geometry,
                    ctx->meta.seed, idx, ctx->sampler, ctx->runOpts,
                    ctx->profile);
                const u64 runWallMicros = static_cast<u64>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(Clock::now() -
                                                   runStart)
                        .count());
                busyMicros += runWallMicros;
                chunk.verdicts.push_back(
                    {idx, verdict,
                     sched::runProvenance(*ctx->golden, verdict,
                                          runWallMicros)});
                ++report.verdictsStreamed;
                if (config.abandonAfterVerdicts &&
                    report.verdictsStreamed >=
                        config.abandonAfterVerdicts) {
                    // Simulated kill -9: vanish mid-lease, verdicts
                    // in hand unstreamed. The daemon's TTL cleans up.
                    report.abandoned = true;
                    return report;
                }
                if (chunk.verdicts.size() >= chunkSize) {
                    stampTelemetry(chunk);
                    if (!session.sendFrame(
                            MsgType::VerdictChunk,
                            encodeVerdictChunk(chunk)))
                        connected = false;
                    chunk.verdicts.clear();
                }
            }
            if (!connected)
                break;
            if (!chunk.verdicts.empty()) {
                stampTelemetry(chunk);
                if (!session.sendFrame(MsgType::VerdictChunk,
                                       encodeVerdictChunk(chunk))) {
                    connected = false;
                    break;
                }
            }
            if (!session.sendFrame(MsgType::LeaseDone,
                                   encodeLeaseDone(grant.lease)) ||
                !session.readFrame(frame)) {
                connected = false;
                break;
            }
            if (frame.type == MsgType::NoWork) {
                // The daemon saw the campaign complete on our final
                // chunk and broadcast shutdown before reading our
                // LeaseDone. Everything we ran is journaled; treat it
                // as graceful completion.
                NoWork none;
                if (decodeNoWork(frame.payload, none) &&
                    none.complete) {
                    ++report.leasesCompleted;
                    report.campaignComplete = true;
                    session.sendFrame(MsgType::Bye, "");
                    return report;
                }
                connected = false;
                break;
            }
            LeaseAck leaseAck;
            if (frame.type != MsgType::LeaseAck ||
                !decodeLeaseAck(frame.payload, leaseAck)) {
                connected = false;
                break;
            }
            if (leaseAck.ok) {
                ++report.leasesCompleted;
            } else {
                // The lease expired before LeaseDone landed (we were
                // too slow). Our verdicts are journaled regardless;
                // the daemon already re-queued whatever is missing.
                ++report.leasesLost;
                warn("worker '%s': lease %llu expired before "
                     "completion was acknowledged",
                     config.name.c_str(),
                     static_cast<unsigned long long>(grant.lease));
            }
        }
        // Connection lost: back off before reconnecting so a flapping
        // daemon isn't hammered, then start over from Hello.
        const u64 delay =
            backoffDelayMillis(config.name, 0,
                               config.backoffBaseMillis,
                               config.backoffCapMillis);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay));
    }
}

} // namespace marvel::net
