/**
 * @file
 * Dispatch protocol messages: what travels inside the frames.
 *
 * Payloads reuse the journal's record grammar (one flat JSON object
 * per line, common/json.hh) rather than inventing a binary schema:
 * the campaign identity travels as the journal's own meta record and
 * verdicts travel as the journal's own verdict records, so the daemon
 * ingests exactly the bytes it would have journaled locally and the
 * reproducibility argument stays one argument.
 *
 * Conversation (worker):
 *   -> Hello {worker, version}
 *   <- HelloAck: meta record + {ttlMillis, chunk} config line
 *   -> LeaseRequest {max}
 *   <- LeaseGrant {lease, begin, end, ttlMillis} | NoWork {complete}
 *   -> VerdictChunk: {lease, count} header line + count verdict lines
 *   -> LeaseDone {lease}
 *   <- LeaseAck {lease, ok}
 *   ... repeat from LeaseRequest until NoWork{complete:1} ...
 *   -> Bye
 *
 * Conversation (watcher):
 *   -> StatusSubscribe {}
 *   <- StatusUpdate (heartbeat JSON), repeated until complete
 *
 * The lease state machine (daemon side):
 *
 *          grant                    LeaseDone(all indices seen)
 *   queue ------->  ACTIVE  ----------------------------------> done
 *     ^             |    |
 *     |  TTL expiry |    | connection drop
 *     +-------------+    |
 *     ^                  |
 *     +------------------+
 *
 * A re-queued range may be re-granted; verdicts from the old lease
 * that still arrive are counted stale-but-ingested (dedup makes them
 * harmless — first record per index wins everywhere).
 */

#ifndef MARVEL_NET_PROTOCOL_HH
#define MARVEL_NET_PROTOCOL_HH

#include <array>
#include <string>
#include <vector>

#include "obs/profiler.hh"
#include "sched/rangequeue.hh"
#include "store/journal.hh"

namespace marvel::net
{

/** Hello payload. */
struct Hello
{
    std::string worker;  ///< worker's self-chosen name
    std::string version; ///< its kVersionString
};

/** HelloAck payload: campaign identity + dispatch configuration. */
struct HelloAck
{
    store::JournalMeta meta;
    u64 ttlMillis = 0; ///< lease TTL workers should expect
    u64 chunk = 32;    ///< preferred verdicts per VerdictChunk
};

/** LeaseGrant payload. */
struct LeaseGrant
{
    u64 lease = 0;
    sched::IndexRange range;
    u64 ttlMillis = 0;
};

/** NoWork payload. */
struct NoWork
{
    bool complete = false; ///< campaign finished: workers may exit
    u64 pending = 0;       ///< indices not yet journaled
};

/**
 * Worker telemetry piggybacked on a VerdictChunk header as OPTIONAL
 * fields (`t_runs`, `t_busy_us`, `t_ph0`..`t_phN`). Values are the
 * worker process's cumulative totals — runs completed, busy wall
 * micros, and per-phase profiler micros in obs::profiler::Phase order
 * — so the daemon overwrites (never sums) per worker and a lost chunk
 * costs staleness, not drift. Old workers omit the fields; old
 * daemons ignore them (flat-JSON unknown keys are tolerated).
 */
struct ChunkTelemetry
{
    bool present = false;
    u64 runs = 0;
    u64 busyMicros = 0;
    std::array<u64, obs::profiler::kNumPhases> phaseMicros{};

    bool operator==(const ChunkTelemetry &other) const = default;
};

/** Decoded VerdictChunk payload. */
struct VerdictChunk
{
    u64 lease = 0;
    std::vector<store::JournalVerdict> verdicts;
    ChunkTelemetry telem;
};

/** LeaseAck payload. */
struct LeaseAck
{
    u64 lease = 0;
    bool ok = false; ///< false: lease was expired/unknown (rerun not
                     ///  needed — the range is back in the queue)
};

std::string encodeHello(const Hello &msg);
bool decodeHello(const std::string &payload, Hello &out);

std::string encodeHelloAck(const HelloAck &msg);
bool decodeHelloAck(const std::string &payload, HelloAck &out);

std::string encodeLeaseRequest(u64 maxFaults);
bool decodeLeaseRequest(const std::string &payload, u64 &maxFaults);

std::string encodeLeaseGrant(const LeaseGrant &msg);
bool decodeLeaseGrant(const std::string &payload, LeaseGrant &out);

std::string encodeNoWork(const NoWork &msg);
bool decodeNoWork(const std::string &payload, NoWork &out);

std::string encodeVerdictChunk(const VerdictChunk &msg);
bool decodeVerdictChunk(const std::string &payload,
                        VerdictChunk &out);

std::string encodeLeaseDone(u64 lease);
bool decodeLeaseDone(const std::string &payload, u64 &lease);

std::string encodeLeaseAck(const LeaseAck &msg);
bool decodeLeaseAck(const std::string &payload, LeaseAck &out);

std::string encodeError(const std::string &message);
bool decodeError(const std::string &payload, std::string &message);

} // namespace marvel::net

#endif // MARVEL_NET_PROTOCOL_HH
