/**
 * @file
 * LeaseManager: the daemon's authority over who owns which faults.
 *
 * Wraps a sched::RangeQueue (the pending pool) with the bookkeeping a
 * network dispatcher needs on top of it:
 *
 *   - a done bitmap fed by verdict ingest (first record per index
 *     wins, same rule as the journal everywhere else);
 *   - a table of ACTIVE leases with deadlines, renewed whenever the
 *     holder streams a chunk, expired by the poll loop when silent;
 *   - re-queueing that returns only the *unfinished* slice of a dead
 *     lease — verdicts that already arrived stay done, so a second
 *     worker re-runs the minimum;
 *   - snapshot()/adopt() translating to and from store::LeaseTable so
 *     promises survive a daemon restart.
 *
 * Time is an explicit `nowMillis` argument on every deadline-touching
 * call (any monotonic millisecond clock); the manager never reads a
 * clock itself, which keeps expiry tests instant and deterministic.
 * Single-threaded, like everything the daemon's poll loop owns.
 */

#ifndef MARVEL_NET_LEASE_HH
#define MARVEL_NET_LEASE_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sched/rangequeue.hh"
#include "store/leasetab.hh"

namespace marvel::net
{

/** One granted, not-yet-finished lease. */
struct ActiveLease
{
    u64 id = 0;
    sched::IndexRange range;
    std::string worker;
    u64 deadlineMillis = 0;
};

class LeaseManager
{
  public:
    LeaseManager(u64 numFaults, u64 ttlMillis);

    /**
     * Seed the pending pool from a done bitmap (index i is finished
     * when done[i] != 0; an empty/short bitmap means nothing done).
     * Call exactly once, before adopt()/grant().
     */
    void seed(const std::vector<u8> &done);

    /**
     * Re-adopt leases persisted by a previous daemon. Each becomes
     * ACTIVE again (unowned until its worker reconnects — the worker
     * name is informational) with a full TTL from `nowMillis`, and is
     * carved out of the pending pool so it cannot be double-granted.
     * Records already journaled inside an adopted range stay done.
     */
    void adopt(const store::LeaseTable &table, u64 nowMillis);

    /**
     * Grant up to `maxFaults` contiguous pending indices to `worker`
     * (0 = whole front range). nullopt when nothing is queued — the
     * campaign is then either complete or waiting on active leases.
     */
    std::optional<ActiveLease> grant(const std::string &worker,
                                     u64 maxFaults, u64 nowMillis);

    /**
     * Note one ingested verdict. Returns true when the index was not
     * yet done (a fresh result), false for a duplicate/stale one.
     */
    bool recordVerdict(u64 idx);

    /** Push a lease's deadline out to now + TTL (holder is alive). */
    void touch(u64 leaseId, u64 nowMillis);

    /**
     * The holder declared the lease finished. Any indices in its
     * range still missing verdicts go back to the pool (a compliant
     * worker leaves none). Returns false when the lease is unknown —
     * it expired first and its work is already re-queued.
     */
    bool complete(u64 leaseId);

    /**
     * Expire every lease whose deadline passed; unfinished slices
     * return to the pool. Returns the expired leases (for logging).
     */
    std::vector<ActiveLease> expire(u64 nowMillis);

    /**
     * A worker's connection dropped: every lease it held goes back to
     * the pool immediately (no need to wait out the TTL — the holder
     * is provably gone). Returns the released leases.
     */
    std::vector<ActiveLease> release(const std::string &worker);

    /** Serializable view of the active leases, for persistence. */
    store::LeaseTable snapshot() const;

    /** Is `leaseId` still outstanding (not expired or completed)? */
    bool
    isActive(u64 leaseId) const
    {
        return active_.count(leaseId) != 0;
    }

    bool allDone() const { return doneCount_ == numFaults_; }
    u64 doneCount() const { return doneCount_; }
    u64 numFaults() const { return numFaults_; }
    /** Indices without a verdict yet (queued or leased). */
    u64 pendingCount() const { return numFaults_ - doneCount_; }
    /** Indices queued for grant right now. */
    u64 queuedCount() const { return queue_.pendingCount(); }
    std::size_t activeCount() const { return active_.size(); }
    u64 ttlMillis() const { return ttlMillis_; }

    /**
     * The soonest active-lease deadline, or nullopt when no lease is
     * outstanding. The poll loop sleeps no longer than this.
     */
    std::optional<u64> nextDeadline() const;

    // Lifetime counters, surfaced through obs::DispatchTelemetry.
    u64 statGranted = 0;
    u64 statCompleted = 0;
    u64 statExpired = 0;  ///< TTL ran out on a silent holder
    u64 statReleased = 0; ///< holder's connection dropped
    u64 statRequeuedIndices = 0;

  private:
    /** Return the not-yet-done subranges of `range` to the pool. */
    void requeueUnfinished(const sched::IndexRange &range);

    u64 numFaults_;
    u64 ttlMillis_;
    u64 nextId_ = 1;
    bool seeded_ = false;
    std::vector<u8> done_;
    u64 doneCount_ = 0;
    sched::RangeQueue queue_;
    std::map<u64, ActiveLease> active_;
};

} // namespace marvel::net

#endif // MARVEL_NET_LEASE_HH
