#include "net/daemon.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.hh"
#include "net/protocol.hh"
#include "obs/openmetrics.hh"
#include "obs/profiler.hh"
#include "sched/heartbeat.hh"
#include "sched/scheduler.hh"
#include "store/leasetab.hh"

namespace marvel::net
{

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      leases_(config_.meta.numFaults, config_.ttlMillis),
      epoch_(std::chrono::steady_clock::now())
{
    if (config_.journalPath.empty())
        fatal("net: the daemon needs a journal path — the journal "
              "IS the campaign's durable state");
    if (config_.meta.shardIndex != 0 || config_.meta.shardCount != 1)
        fatal("net: the daemon owns the whole campaign; its journal "
              "meta must be shard 0/1, not %u/%u",
              config_.meta.shardIndex, config_.meta.shardCount);
}

Daemon::~Daemon()
{
    for (auto &conn : conns_)
        if (conn->fd >= 0)
            ::close(conn->fd);
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

u64
Daemon::nowMillis() const
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
Daemon::start()
{
    if (started_)
        panic("Daemon::start called twice");
    started_ = true;

    // The chunk size is advertised to workers and bounds the largest
    // VerdictChunk frame they send back. Cap it so even maximal
    // verdict lines (generously 256 bytes each) stay under the frame
    // payload limit — encodeFrame() fatals past that.
    const u64 chunkCap = kMaxFramePayload / 256;
    if (config_.chunk > chunkCap) {
        warn("campaignd: clamping chunk %llu to %llu to fit the "
             "%u-byte frame limit",
             static_cast<unsigned long long>(config_.chunk),
             static_cast<unsigned long long>(chunkCap),
             kMaxFramePayload);
        config_.chunk = chunkCap;
    }
    const unsigned chunkSize =
        config_.chunk ? static_cast<unsigned>(config_.chunk) : 1;
    std::vector<u8> done(config_.meta.numFaults, 0);
    if (store::journalExists(config_.journalPath)) {
        const store::Journal journal =
            store::readJournal(config_.journalPath);
        sched::checkJournalMatches(journal.meta, config_.meta,
                                   config_.journalPath);
        for (const store::JournalVerdict &jv : journal.verdicts) {
            if (jv.idx >= config_.meta.numFaults)
                fatal("net: journal '%s' holds verdict for fault "
                      "%llu beyond the campaign's %llu faults",
                      config_.journalPath.c_str(),
                      static_cast<unsigned long long>(jv.idx),
                      static_cast<unsigned long long>(
                          config_.meta.numFaults));
            if (done[jv.idx])
                continue;
            done[jv.idx] = 1;
            tally_.tally(jv.verdict);
        }
        writer_.resume(config_.journalPath, journal.validBytes,
                       chunkSize);
        inform("campaignd: resuming journal %s",
               config_.journalPath.c_str());
    } else {
        writer_.create(config_.journalPath, config_.meta, chunkSize);
    }
    leases_.seed(done);
    doneAtStart_ = leases_.doneCount();

    // Promises made before a restart outrank the queue: adopted
    // ranges stay un-grantable until their fresh TTL expires, giving
    // the original holder time to finish (or prove dead).
    store::LeaseTable table;
    if (store::loadLeaseTable(
            store::leaseTablePath(config_.journalPath), table)) {
        leases_.adopt(table, nowMillis());
        inform("campaignd: adopted %zu outstanding lease(s) from a "
               "previous daemon", table.active.size());
    }

    listenFd_ = listenOn(config_.endpoint);
    startMillis_ = nowMillis();
    lastBeatMillis_ = 0;
    inform("campaignd: listening on %s (%llu/%llu verdicts already "
           "journaled)", config_.endpoint.str().c_str(),
           static_cast<unsigned long long>(leases_.doneCount()),
           static_cast<unsigned long long>(leases_.numFaults()));
}

u16
Daemon::tcpPort() const
{
    if (config_.endpoint.isUnix)
        fatal("net: tcpPort() on a unix-socket daemon");
    return boundPort(listenFd_);
}

sched::Heartbeat
Daemon::currentBeat() const
{
    sched::Heartbeat beat;
    beat.done = leases_.doneCount();
    beat.expected = leases_.numFaults();
    beat.masked = tally_.masked;
    beat.sdc = tally_.sdc;
    beat.crash = tally_.crash;
    beat.pruned = tally_.pruned;
    beat.earlyStops = earlyStops_;
    beat.wallMillis = nowMillis() - startMillis_;
    beat.complete = leases_.allDone();
    const double wallSec =
        static_cast<double>(beat.wallMillis) / 1000.0;
    const u64 ingested = beat.done - doneAtStart_;
    beat.runsPerSec =
        wallSec > 0 ? static_cast<double>(ingested) / wallSec : 0.0;
    if (beat.done > 0) {
        beat.avf = static_cast<double>(beat.sdc + beat.crash) /
                   static_cast<double>(beat.done);
        beat.margin = 1.96 * std::sqrt(beat.avf * (1.0 - beat.avf) /
                                       static_cast<double>(beat.done));
    }
    if (!beat.complete && beat.runsPerSec > 0)
        beat.etaSeconds =
            static_cast<double>(beat.expected - beat.done) /
            beat.runsPerSec;
    return beat;
}

void
Daemon::noteLeaseGone(const std::string &worker, u64 leaseId)
{
    obs::DispatchWorkerStats &ws = stats_.workerNamed(worker);
    if (ws.currentLease == leaseId)
        ws.currentLease = 0;
}

std::string
Daemon::renderMetrics()
{
    // Mirror the lease-lifecycle counters the manager keeps, so a
    // live scrape agrees with the final report finish() prints.
    stats_.leasesExpired = leases_.statExpired;
    stats_.leasesRequeued = leases_.statReleased;
    const sched::Heartbeat beat = currentBeat();
    obs::CampaignSnapshot snap;
    snap.done = beat.done;
    snap.expected = beat.expected;
    snap.masked = beat.masked;
    snap.sdc = beat.sdc;
    snap.crash = beat.crash;
    snap.pruned = beat.pruned;
    snap.earlyStops = beat.earlyStops;
    snap.runsPerSec = beat.runsPerSec;
    snap.avf = beat.avf;
    snap.margin = beat.margin;
    snap.etaSeconds = beat.etaSeconds;
    snap.uptimeSeconds =
        static_cast<double>(nowMillis() - startMillis_) / 1000.0;
    snap.complete = beat.complete;
    return obs::openMetricsText(stats_, snap);
}

void
Daemon::persistLeases()
{
    store::saveLeaseTable(
        store::leaseTablePath(config_.journalPath),
        leases_.snapshot());
}

void
Daemon::sendFrame(Conn &conn, MsgType type,
                  const std::string &payload)
{
    encodeFrame({type, payload}, conn.outBuf);
    flushConn(conn);
}

bool
Daemon::flushConn(Conn &conn)
{
    while (!conn.outBuf.empty()) {
        const ssize_t n = ::send(conn.fd, conn.outBuf.data(),
                                 conn.outBuf.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true; // poll() will tell us when to resume
            return false;
        }
        conn.outBuf.erase(0, static_cast<std::size_t>(n));
    }
    return true;
}

bool
Daemon::workerStillConnected(const std::string &name,
                             const Conn *except) const
{
    for (const auto &conn : conns_)
        if (conn.get() != except && conn->worker == name)
            return true;
    return false;
}

void
Daemon::dropConn(std::size_t i)
{
    Conn &conn = *conns_[i];
    // Leases held by a provably-gone worker go straight back to the
    // queue — no reason to wait out the TTL. Guard against the same
    // worker name having reconnected on another fd first.
    if (!conn.worker.empty() && !conn.watcher &&
        !workerStillConnected(conn.worker, &conn)) {
        const std::vector<ActiveLease> released =
            leases_.release(conn.worker);
        if (!released.empty()) {
            for (const ActiveLease &lease : released) {
                inform("campaignd: worker '%s' vanished; re-queued "
                       "lease %llu [%llu, %llu)",
                       conn.worker.c_str(),
                       static_cast<unsigned long long>(lease.id),
                       static_cast<unsigned long long>(
                           lease.range.begin),
                       static_cast<unsigned long long>(
                           lease.range.end));
                noteLeaseGone(lease.worker, lease.id);
            }
            persistLeases();
        }
    }
    ::close(conn.fd);
    conns_.erase(conns_.begin() +
                 static_cast<std::ptrdiff_t>(i));
}

void
Daemon::acceptPending()
{
    for (;;) {
        const int fd = acceptOn(listenFd_);
        if (fd < 0)
            return;
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conns_.push_back(std::move(conn));
        ++stats_.connectionsAccepted;
    }
}

void
Daemon::ingestChunk(Conn &conn, const std::string &payload)
{
    VerdictChunk chunk;
    if (!decodeVerdictChunk(payload, chunk)) {
        warn("campaignd: malformed verdict chunk from '%s'; "
             "dropping the connection", conn.worker.c_str());
        conn.closing = true;
        return;
    }
    ++stats_.chunksIngested;
    if (!conn.worker.empty()) {
        obs::DispatchWorkerStats &ws =
            stats_.workerNamed(conn.worker);
        // Inter-chunk gap on the daemon's clock: how long the fleet
        // view can lag behind a worker's actual progress.
        const u64 uptime = nowMillis() - startMillis_;
        const auto last = lastChunkMillis_.find(conn.worker);
        if (last != lastChunkMillis_.end()) {
            const u64 gap =
                uptime > last->second ? uptime - last->second : 0;
            ws.chunkLatencySumMillis += gap;
            ws.chunkLatencyMaxMillis =
                std::max(ws.chunkLatencyMaxMillis, gap);
            ++ws.chunkGaps;
        }
        lastChunkMillis_[conn.worker] = uptime;
        // Piggybacked totals are cumulative: overwrite, never sum.
        if (chunk.telem.present) {
            ws.reportedRuns = chunk.telem.runs;
            ws.reportedBusyMicros = chunk.telem.busyMicros;
            ws.phaseMicros = chunk.telem.phaseMicros;
        }
    }
    const bool live = leases_.isActive(chunk.lease);
    if (!live)
        stats_.staleVerdicts += chunk.verdicts.size();
    for (const store::JournalVerdict &jv : chunk.verdicts) {
        if (leases_.recordVerdict(jv.idx)) {
            writer_.append(jv.idx, jv.verdict, jv.prov);
            tally_.tally(jv.verdict);
            if (jv.prov.present && jv.prov.stoppedRung)
                ++earlyStops_;
            ++stats_.verdictsIngested;
            if (!conn.worker.empty())
                ++stats_.workerNamed(conn.worker).verdicts;
        } else {
            ++stats_.duplicateVerdicts;
        }
    }
    if (live)
        leases_.touch(chunk.lease, nowMillis());
}

void
Daemon::handleFrame(Conn &conn, const Frame &frame)
{
    switch (frame.type) {
      case MsgType::Hello: {
        Hello hello;
        if (!decodeHello(frame.payload, hello) ||
            hello.worker.empty()) {
            sendFrame(conn, MsgType::Error,
                      encodeError("malformed Hello"));
            conn.closing = true;
            return;
        }
        conn.worker = hello.worker;
        if (std::find(knownWorkers_.begin(), knownWorkers_.end(),
                      hello.worker) != knownWorkers_.end())
            ++stats_.workerNamed(hello.worker).reconnects;
        else
            knownWorkers_.push_back(hello.worker);
        stats_.workerNamed(hello.worker);
        HelloAck ack;
        ack.meta = config_.meta;
        ack.ttlMillis = config_.ttlMillis;
        ack.chunk = config_.chunk;
        sendFrame(conn, MsgType::HelloAck, encodeHelloAck(ack));
        return;
      }
      case MsgType::LeaseRequest: {
        if (conn.worker.empty()) {
            sendFrame(conn, MsgType::Error,
                      encodeError("LeaseRequest before Hello"));
            conn.closing = true;
            return;
        }
        u64 maxFaults = 0;
        if (!decodeLeaseRequest(frame.payload, maxFaults))
            maxFaults = 0;
        if (config_.maxLeaseFaults)
            maxFaults = maxFaults
                            ? std::min(maxFaults,
                                       config_.maxLeaseFaults)
                            : config_.maxLeaseFaults;
        const u64 now = nowMillis();
        for (const ActiveLease &lease : leases_.expire(now)) {
            inform("campaignd: lease %llu [%llu, %llu) held by '%s' "
                   "expired; re-queued",
                   static_cast<unsigned long long>(lease.id),
                   static_cast<unsigned long long>(lease.range.begin),
                   static_cast<unsigned long long>(lease.range.end),
                   lease.worker.c_str());
            noteLeaseGone(lease.worker, lease.id);
        }
        std::optional<ActiveLease> lease =
            leases_.grant(conn.worker, maxFaults, now);
        if (lease) {
            ++stats_.leasesGranted;
            ++stats_.workerNamed(conn.worker).leases;
            stats_.workerNamed(conn.worker).currentLease = lease->id;
            persistLeases();
            LeaseGrant grant;
            grant.lease = lease->id;
            grant.range = lease->range;
            grant.ttlMillis = config_.ttlMillis;
            sendFrame(conn, MsgType::LeaseGrant,
                      encodeLeaseGrant(grant));
        } else {
            NoWork none;
            none.complete = leases_.allDone();
            none.pending = leases_.pendingCount();
            sendFrame(conn, MsgType::NoWork, encodeNoWork(none));
        }
        return;
      }
      case MsgType::VerdictChunk:
        ingestChunk(conn, frame.payload);
        return;
      case MsgType::LeaseDone: {
        u64 leaseId = 0;
        if (!decodeLeaseDone(frame.payload, leaseId)) {
            conn.closing = true;
            return;
        }
        // Make the work durable BEFORE acknowledging it: an acked
        // lease must survive any crash of this process.
        writer_.commit();
        LeaseAck ack;
        ack.lease = leaseId;
        ack.ok = leases_.complete(leaseId);
        if (ack.ok)
            ++stats_.leasesCompleted;
        if (!conn.worker.empty())
            noteLeaseGone(conn.worker, leaseId);
        persistLeases();
        sendFrame(conn, MsgType::LeaseAck, encodeLeaseAck(ack));
        return;
      }
      case MsgType::Metrics:
        // Any peer may scrape; the reply reuses the same frame type
        // so one request/response pair needs no new message kinds.
        sendFrame(conn, MsgType::Metrics, renderMetrics());
        return;
      case MsgType::StatusSubscribe:
        conn.watcher = true;
        ++stats_.watchersServed;
        sendFrame(conn, MsgType::StatusUpdate,
                  sched::heartbeatJson(currentBeat()));
        return;
      case MsgType::Bye:
        conn.closing = true;
        return;
      case MsgType::Error: {
        std::string message;
        if (decodeError(frame.payload, message))
            warn("campaignd: error from '%s': %s",
                 conn.worker.c_str(), message.c_str());
        conn.closing = true;
        return;
      }
      default:
        sendFrame(conn, MsgType::Error,
                  encodeError("unexpected message type"));
        conn.closing = true;
        return;
    }
}

void
Daemon::readConn(std::size_t i)
{
    Conn &conn = *conns_[i];
    std::string bytes;
    const long n = recvSome(conn.fd, bytes);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
        dropConn(i);
        return;
    }
    if (n > 0)
        conn.reader.feed(bytes.data(), bytes.size());
    Frame frame;
    while (!conn.closing && conn.reader.next(frame))
        handleFrame(conn, frame);
    // Any traffic on a named connection is proof of life (Hello runs
    // inside handleFrame, so this also stamps a worker's first frame).
    if (!conn.worker.empty())
        stats_.workerNamed(conn.worker).lastSeenMillis =
            nowMillis() - startMillis_;
    if (conn.reader.poisoned() && !conn.closing) {
        warn("campaignd: protocol violation from '%s'; dropping",
             conn.worker.c_str());
        conn.closing = true;
    }
}

void
Daemon::tick()
{
    const u64 now = nowMillis();
    const std::vector<ActiveLease> expired = leases_.expire(now);
    for (const ActiveLease &lease : expired) {
        inform("campaignd: lease %llu [%llu, %llu) held by '%s' "
               "expired; re-queued",
               static_cast<unsigned long long>(lease.id),
               static_cast<unsigned long long>(lease.range.begin),
               static_cast<unsigned long long>(lease.range.end),
               lease.worker.c_str());
        noteLeaseGone(lease.worker, lease.id);
    }
    if (!expired.empty())
        persistLeases();

    if (now - lastBeatMillis_ < config_.heartbeatMillis &&
        lastBeatMillis_ != 0 && !leases_.allDone())
        return;
    lastBeatMillis_ = now;
    const sched::Heartbeat beat = currentBeat();
    sched::writeHeartbeat(
        sched::heartbeatPath(config_.journalPath), beat);
    const std::string json = sched::heartbeatJson(beat);
    for (auto &conn : conns_)
        if (conn->watcher && !conn->closing)
            sendFrame(*conn, MsgType::StatusUpdate, json);
}

void
Daemon::finish()
{
    finished_ = true;
    stats_.wallSeconds =
        static_cast<double>(nowMillis() - startMillis_) / 1000.0;
    // Mirror the lease-lifecycle counters the manager kept.
    stats_.leasesExpired = leases_.statExpired;
    stats_.leasesRequeued = leases_.statReleased;
    // Summarize the campaign for `marvel-campaign status`/`report`,
    // folding in the phase split the workers piggybacked on their
    // verdict chunks. Must land before close() — the metrics record
    // belongs to this journal, after everything it summarizes.
    if (stats_.verdictsIngested > 0) {
        store::JournalMetrics metrics;
        // tally_ covers the whole journal (resumed verdicts
        // included), so runs counts the same population.
        metrics.runs = leases_.doneCount();
        metrics.masked = tally_.masked;
        metrics.sdc = tally_.sdc;
        metrics.crash = tally_.crash;
        metrics.pruned = tally_.pruned;
        metrics.earlyStops = earlyStops_;
        metrics.wallMillis = nowMillis() - startMillis_;
        metrics.workers =
            static_cast<u32>(knownWorkers_.size());
        for (const obs::DispatchWorkerStats &ws : stats_.workers)
            for (std::size_t p = 0;
                 p < metrics.phaseMicros.size(); ++p)
                metrics.phaseMicros[p] += ws.phaseMicros[p];
        writer_.appendMetrics(metrics);
    }
    writer_.close();
    // No promises left: persist the empty table so a later resume
    // starts clean.
    persistLeases();

    const sched::Heartbeat beat = currentBeat();
    sched::writeHeartbeat(
        sched::heartbeatPath(config_.journalPath), beat);

    // Tell every connected peer the campaign is over (idle workers
    // exit on NoWork{complete}; watchers exit on a complete beat),
    // then drain what we can and close.
    NoWork done;
    done.complete = true;
    done.pending = 0;
    const std::string noWork = encodeNoWork(done);
    const std::string json = sched::heartbeatJson(beat);
    for (auto &conn : conns_) {
        if (conn->closing)
            continue;
        if (conn->watcher)
            encodeFrame({MsgType::StatusUpdate, json}, conn->outBuf);
        else if (!conn->worker.empty())
            encodeFrame({MsgType::NoWork, noWork}, conn->outBuf);
        flushConn(*conn);
    }
    // Bounded linger for the unflushed remainder.
    for (int spin = 0; spin < 20; ++spin) {
        bool pendingOut = false;
        for (auto &conn : conns_)
            if (!conn->outBuf.empty() && flushConn(*conn) &&
                !conn->outBuf.empty())
                pendingOut = true;
        if (!pendingOut)
            break;
        ::poll(nullptr, 0, 10);
    }
    for (auto &conn : conns_)
        ::close(conn->fd);
    conns_.clear();
    ::close(listenFd_);
    listenFd_ = -1;
    inform("campaignd: campaign complete — %llu verdicts journaled "
           "to %s",
           static_cast<unsigned long long>(leases_.doneCount()),
           config_.journalPath.c_str());
}

bool
Daemon::pollOnce(int maxWaitMillis)
{
    if (!started_)
        panic("Daemon::pollOnce before start");
    if (finished_)
        return false;

    if (leases_.allDone() && leases_.activeCount() == 0 &&
        config_.exitWhenDone) {
        finish();
        return false;
    }

    // Sleep no longer than the heartbeat cadence or the next lease
    // deadline, whichever is sooner.
    const u64 now = nowMillis();
    u64 wait = config_.heartbeatMillis ? config_.heartbeatMillis
                                       : 1000;
    if (const std::optional<u64> deadline = leases_.nextDeadline())
        wait = std::min(wait,
                        *deadline > now ? *deadline - now : 0);
    if (maxWaitMillis >= 0)
        wait = std::min<u64>(wait,
                             static_cast<u64>(maxWaitMillis));

    std::vector<pollfd> fds;
    fds.push_back({listenFd_, POLLIN, 0});
    for (const auto &conn : conns_) {
        short events = POLLIN;
        if (!conn->outBuf.empty())
            events |= POLLOUT;
        fds.push_back({conn->fd, events, 0});
    }
    int ready;
    {
        const obs::profiler::ScopedPhase timer(
            obs::profiler::Phase::SocketWait);
        ready =
            ::poll(fds.data(), fds.size(), static_cast<int>(wait));
    }
    if (ready < 0 && errno != EINTR)
        fatal("net: poll: %s", std::strerror(errno));

    if (ready > 0) {
        // fds[i + 1] belongs to conns_[i] only for the connections
        // that existed when the pollfd array was built; anything
        // acceptPending() appends has no pollfd entry until the next
        // round, so snapshot the count first.
        const std::size_t nPolled = conns_.size();
        if (fds[0].revents & POLLIN)
            acceptPending();
        // Walk backwards so dropConn()'s erase doesn't shift the
        // indices still to visit.
        for (std::size_t i = nPolled; i-- > 0;) {
            const short revents = fds[i + 1].revents;
            if (revents & POLLOUT) {
                if (!flushConn(*conns_[i])) {
                    dropConn(i);
                    continue;
                }
            }
            if (revents & (POLLIN | POLLHUP | POLLERR)) {
                readConn(i);
                continue;
            }
            if (conns_[i]->closing && conns_[i]->outBuf.empty())
                dropConn(i);
        }
        // Drop any connection that finished its conversation.
        for (std::size_t i = conns_.size(); i-- > 0;)
            if (conns_[i]->closing && conns_[i]->outBuf.empty())
                dropConn(i);
    }

    tick();

    if (leases_.allDone() && leases_.activeCount() == 0 &&
        config_.exitWhenDone) {
        finish();
        return false;
    }
    return true;
}

void
Daemon::run(const std::atomic<bool> *stop)
{
    while (pollOnce(100)) {
        if (stop && stop->load()) {
            // A stopped daemon keeps its promises on disk; leases
            // stay in <journal>.leases for the next daemon to adopt.
            writer_.commit();
            persistLeases();
            return;
        }
    }
}

} // namespace marvel::net
