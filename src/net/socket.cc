#include "net/socket.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"

namespace marvel::net
{

std::string
Endpoint::str() const
{
    if (isUnix)
        return "unix:" + path;
    return strfmt("%s:%u", host.c_str(), port);
}

Endpoint
parseEndpoint(const std::string &spec)
{
    Endpoint ep;
    if (spec.rfind("unix:", 0) == 0) {
        ep.isUnix = true;
        ep.path = spec.substr(5);
        if (ep.path.empty())
            fatal("net: unix endpoint needs a path: '%s'",
                  spec.c_str());
        if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path))
            fatal("net: unix socket path too long (%zu bytes): '%s'",
                  ep.path.size(), ep.path.c_str());
        return ep;
    }
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= spec.size())
        fatal("net: malformed endpoint '%s' (want unix:/path or "
              "host:port)", spec.c_str());
    ep.host = spec.substr(0, colon);
    char *end = nullptr;
    const unsigned long port =
        std::strtoul(spec.c_str() + colon + 1, &end, 10);
    if (!end || *end != '\0' || port > 65535)
        fatal("net: bad port in endpoint '%s'", spec.c_str());
    ep.port = static_cast<u16>(port);
    return ep;
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("net: cannot make fd %d non-blocking: %s", fd,
              std::strerror(errno));
}

int
listenOn(const Endpoint &endpoint)
{
    int fd = -1;
    if (endpoint.isUnix) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("net: socket(AF_UNIX): %s", std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, endpoint.path.c_str(),
                     sizeof(addr.sun_path) - 1);
        // A previous daemon's socket file would make bind fail with
        // EADDRINUSE even though nobody is listening — but blindly
        // unlinking would steal the path from a daemon that IS
        // listening. Probe first: only a refused/dead socket is
        // stale and safe to remove.
        if (::access(endpoint.path.c_str(), F_OK) == 0) {
            const int probe = connectTo(endpoint);
            if (probe >= 0) {
                ::close(probe);
                ::close(fd);
                fatal("net: %s: another daemon is already "
                      "listening on this socket",
                      endpoint.str().c_str());
            }
            ::unlink(endpoint.path.c_str());
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0)
            fatal("net: bind(%s): %s", endpoint.str().c_str(),
                  std::strerror(errno));
    } else {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("net: socket(AF_INET): %s", std::strerror(errno));
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(endpoint.port);
        if (endpoint.host.empty() || endpoint.host == "*" ||
            endpoint.host == "0.0.0.0") {
            addr.sin_addr.s_addr = htonl(INADDR_ANY);
        } else {
            addrinfo hints{};
            hints.ai_family = AF_INET;
            hints.ai_socktype = SOCK_STREAM;
            addrinfo *res = nullptr;
            const int rc = ::getaddrinfo(endpoint.host.c_str(),
                                         nullptr, &hints, &res);
            if (rc != 0 || !res)
                fatal("net: cannot resolve '%s': %s",
                      endpoint.host.c_str(), ::gai_strerror(rc));
            addr.sin_addr =
                reinterpret_cast<sockaddr_in *>(res->ai_addr)
                    ->sin_addr;
            ::freeaddrinfo(res);
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0)
            fatal("net: bind(%s): %s", endpoint.str().c_str(),
                  std::strerror(errno));
    }
    if (::listen(fd, 64) < 0)
        fatal("net: listen(%s): %s", endpoint.str().c_str(),
              std::strerror(errno));
    setNonBlocking(fd);
    return fd;
}

u16
boundPort(int listenFd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd,
                      reinterpret_cast<sockaddr *>(&addr), &len) < 0)
        fatal("net: getsockname: %s", std::strerror(errno));
    return ntohs(addr.sin_port);
}

int
connectTo(const Endpoint &endpoint)
{
    if (endpoint.isUnix) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, endpoint.path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) < 0) {
            const int saved = errno;
            ::close(fd);
            errno = saved;
            return -1;
        }
        return fd;
    }
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string portStr = strfmt("%u", endpoint.port);
    if (::getaddrinfo(endpoint.host.c_str(), portStr.c_str(),
                      &hints, &res) != 0 ||
        !res) {
        errno = EHOSTUNREACH;
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        const int saved = errno;
        ::close(fd);
        fd = -1;
        errno = saved;
    }
    ::freeaddrinfo(res);
    if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
    }
    return fd;
}

int
acceptOn(int listenFd)
{
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0)
        return -1;
    setNonBlocking(fd);
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    const char *p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
        const ssize_t n =
            ::send(fd, p, left, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    return true;
}

long
recvSome(int fd, std::string &out)
{
    char buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n > 0)
            out.append(buf, static_cast<std::size_t>(n));
        return static_cast<long>(n);
    }
}

} // namespace marvel::net
