/**
 * @file
 * Structured event tracing for the simulated microarchitecture.
 *
 * A TraceSession owns one fixed-capacity ring buffer of typed events
 * per hardware component (CPU pipeline, caches, accelerator, DMA,
 * fault bookkeeping). The hardware models emit events through the
 * MARVEL_OBS_EMIT macro, which compiles to a single relaxed load of a
 * global session pointer when tracing is off — campaigns run with no
 * session installed and pay only that predictable branch
 * (bench_simspeed's BM_ObsOverheadGuard measures it).
 *
 * Sessions are deliberately process-global and single-threaded: they
 * exist to instrument ONE replayed run (marvel-trace), never the
 * parallel campaign workers. Installing a session while worker
 * threads simulate is undefined; the scheduler never does.
 *
 * Ring buffers bound memory: when a component's ring fills, the
 * oldest events are overwritten and `dropped()` counts what was lost,
 * so a trace is always "the last N events per component".
 */

#ifndef MARVEL_OBS_TRACE_HH
#define MARVEL_OBS_TRACE_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace marvel::obs
{

/** Hardware components with their own event ring. */
enum class Component : u8
{
    Cpu,   ///< pipeline events (fetch/rename/issue/forward/commit/...)
    L1I,
    L1D,
    L2,
    Accel, ///< accelerator-local memories / compute units
    Dma,
    Fault, ///< faultwatch transitions (inject/read/overwrite/vanish)
};
constexpr unsigned kNumComponents = 7;

const char *componentName(Component comp);

/** Typed events; payload meaning is per kind (see eventKindName). */
enum class EventKind : u8
{
    // CPU pipeline: a = pc, b = seq (Fetch: b = uop count).
    Fetch,
    Rename,
    Issue,
    Forward, ///< store-to-load forward: a = address, b = store seq
    Complete,
    Commit,
    Squash,  ///< a = redirect pc, b = squash-after seq
    // Caches: a = line address, b = line index.
    CacheFill,
    CacheEvict,
    CacheWriteback,
    // DMA: a = DRAM address, b = bytes.
    DmaStart,
    DmaDone,
    // Fault bookkeeping: a = entry, b = bit.
    FaultInject,
    FaultRead,
    FaultOverwrite,
    FaultVanish,
};

const char *eventKindName(EventKind kind);

/** One traced event. 24 bytes; rings are preallocated. */
struct TraceEvent
{
    Cycle cycle = 0;
    u64 a = 0;
    u32 b = 0;
    EventKind kind = EventKind::Fetch;
    Component comp = Component::Cpu;
};

/** Fixed-capacity overwrite-oldest ring of events. */
class EventRing
{
  public:
    explicit EventRing(std::size_t capacity = 0) { reset(capacity); }

    void
    reset(std::size_t capacity)
    {
        buf_.assign(capacity, TraceEvent{});
        head_ = 0;
        count_ = 0;
        dropped_ = 0;
    }

    void
    push(const TraceEvent &ev)
    {
        if (buf_.empty()) {
            ++dropped_;
            return;
        }
        if (count_ == buf_.size()) {
            buf_[head_] = ev;
            head_ = (head_ + 1) % buf_.size();
            ++dropped_;
        } else {
            buf_[(head_ + count_) % buf_.size()] = ev;
            ++count_;
        }
    }

    std::size_t size() const { return count_; }
    std::size_t capacity() const { return buf_.size(); }

    /** Events evicted by overwrite (ring was full). */
    u64 dropped() const { return dropped_; }

    /** i-th event, oldest first (i < size()). */
    const TraceEvent &
    at(std::size_t i) const
    {
        return buf_[(head_ + i) % buf_.size()];
    }

  private:
    std::vector<TraceEvent> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    u64 dropped_ = 0;
};

/**
 * A tracing session: installs itself as the process-global event sink
 * on construction and detaches on destruction (RAII). At most one
 * session may exist at a time.
 */
class TraceSession
{
  public:
    explicit TraceSession(std::size_t capacityPerComponent = 1 << 16);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    const EventRing &ring(Component comp) const;
    EventRing &ring(Component comp);

    /** Total events currently retained across all rings. */
    std::size_t totalEvents() const;

    /** Total events lost to ring overwrite across all rings. */
    u64 totalDropped() const;

    /** All retained events merged into cycle order. */
    std::vector<TraceEvent> merged() const;

  private:
    EventRing rings_[kNumComponents];
};

namespace detail
{
extern TraceSession *gSession; ///< nullptr = tracing off
extern Cycle gNow;             ///< simulated time stamped on events
} // namespace detail

/** True when a TraceSession is installed. */
inline bool
enabled()
{
    return detail::gSession != nullptr;
}

/** Stamp the simulated clock for subsequent emits (System::tick). */
inline void
setNow(Cycle cycle)
{
    detail::gNow = cycle;
}

/** Record one event into the installed session (tracing must be on). */
void emit(Component comp, EventKind kind, u64 a, u64 b);

} // namespace marvel::obs

/**
 * Emission guard: hardware models trace through this macro so that a
 * build can compile observability out entirely (-DMARVEL_OBS_DISABLED)
 * and a default build pays one well-predicted branch when no session
 * is installed.
 */
#ifdef MARVEL_OBS_DISABLED
#define MARVEL_OBS_EMIT(comp, kind, a, b) ((void)0)
#else
#define MARVEL_OBS_EMIT(comp, kind, a, b)                              \
    do {                                                               \
        if (marvel::obs::enabled())                                    \
            marvel::obs::emit((comp), (kind),                          \
                              static_cast<marvel::u64>(a),             \
                              static_cast<marvel::u64>(b));            \
    } while (0)
#endif

#endif // MARVEL_OBS_TRACE_HH
