/**
 * @file
 * Wall-clock phase profiler: where does campaign time actually go?
 *
 * The simulator's own execution is split into a small fixed set of
 * phases (golden build, rung capture, fast-forward, simulate,
 * classify, prune, journal I/O, socket wait) and every phase is timed
 * with a cheap RAII scope. Accumulators are per-thread (lock-free on
 * the hot path: one steady_clock read at scope entry and one relaxed
 * atomic add at exit), folded together on demand into a process-wide
 * snapshot. The snapshot feeds three consumers:
 *
 *   - the `profiler.*` stats subtree (regStats), so `marvel-cli
 *     stats` and stats snapshots carry the phase split;
 *   - complete-event spans in the Chrome trace (pid 1, one lane per
 *     profiled thread) via the bounded span ring;
 *   - the campaign journal's metrics record and the dispatch wire
 *     telemetry, which both persist the per-phase microsecond totals.
 *
 * Scopes at the instrumentation sites are deliberately coarse — one
 * per golden build, per ladder capture, per faulty run's restore /
 * tick-loop / classification, per journal commit, per blocking socket
 * read — never inside the per-cycle tick path, which is what keeps
 * the bench_simspeed overhead guard under its bar.
 *
 * The whole subsystem compiles out with MARVEL_STATS_DISABLED: the
 * scope class becomes an empty shell and every query returns zeros,
 * so instrumentation sites need no #ifdefs of their own.
 */

#ifndef MARVEL_OBS_PROFILER_HH
#define MARVEL_OBS_PROFILER_HH

#include <array>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace marvel::obs::profiler
{

/** The profiled phases of MARVEL's own execution (not the SoC's). */
enum class Phase : unsigned
{
    GoldenBuild,  ///< fault-free reference run (both window phases)
    RungCapture,  ///< checkpoint-ladder replay + snapshots
    FastForward,  ///< checkpoint/rung restore before a faulty run
    Simulate,     ///< the faulty run's tick loop
    Classify,     ///< output/trace comparison -> verdict
    Prune,        ///< golden access-profile replay for --prune
    JournalIo,    ///< journal chunk write + fsync
    SocketWait,   ///< blocked on the dispatch socket / idle poll
    StopCheck,    ///< rung-boundary convergence comparison (early stop)
};

constexpr unsigned kNumPhases = 9;

/** Stable lower-snake identifier ("golden_build", "socket_wait"). */
const char *phaseName(Phase phase);

/** Sum of every thread's accumulators at one instant. */
struct Totals
{
    std::array<u64, kNumPhases> nanos{};
    std::array<u64, kNumPhases> calls{};

    u64 totalNanos() const;

    /** this - earlier, per phase (saturating at zero). */
    Totals since(const Totals &earlier) const;
};

/** One completed scope, for the Chrome-trace span lanes. */
struct Span
{
    Phase phase = Phase::GoldenBuild;
    u32 thread = 0;      ///< profiler thread ordinal (not an OS tid)
    u64 startMicros = 0; ///< since the process's profiler epoch
    u64 durMicros = 0;
};

#ifndef MARVEL_STATS_DISABLED

/**
 * Times one phase from construction to destruction. Scopes on one
 * thread must not overlap the SAME phase, and the instrumentation
 * sites keep different phases sequential rather than nested, so the
 * per-phase totals partition wall time instead of double-counting it.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase phase);
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    Phase phase_;
    u64 startNanos_;
};

#else

class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase) {}
};

#endif // MARVEL_STATS_DISABLED

/**
 * Runtime kill-switch (default on). A disabled profiler's scopes are
 * a single relaxed load; the A/B overhead guard in bench_simspeed
 * flips this to measure the cost of the timers themselves.
 */
void setEnabled(bool enabled);
bool enabled();

/** Fold every live thread's accumulators (plus exited threads'
 *  retired totals) into one snapshot. */
Totals snapshot();

/** Zero all accumulators and drop recorded spans (tests/benches). */
void reset();

/** Copy of the bounded span ring, oldest first. At most kSpanCap
 *  spans are retained; older ones are overwritten. */
std::vector<Span> spans();

constexpr std::size_t kSpanCap = 4096;

/**
 * Register the `profiler.*` subtree on `root`: per phase, a
 * `profiler.<phase>.seconds` and `profiler.<phase>.calls` formula
 * over the live accumulators, plus `profiler.total_seconds`.
 */
void regStats(stats::Group &root);

} // namespace marvel::obs::profiler

#endif // MARVEL_OBS_PROFILER_HH
