/**
 * @file
 * Chrome trace_event exporter: renders a TraceSession as the JSON
 * Trace Event Format consumed by chrome://tracing and Perfetto.
 *
 * Mapping: one process (pid 0) with one thread per hardware component
 * (tid = Component ordinal, named via metadata events). Every traced
 * event becomes a complete ("X") event with ts = simulated cycle and
 * dur = 1 cycle, carrying its payload in args. Because each ring is
 * filled in simulation order, ts is monotonically non-decreasing per
 * tid — the property the trace viewers (and test_obs) rely on.
 */

#ifndef MARVEL_OBS_CHROME_TRACE_HH
#define MARVEL_OBS_CHROME_TRACE_HH

#include <string>
#include <vector>

#include "obs/profiler.hh"
#include "obs/trace.hh"

namespace marvel::obs
{

/** Render the session as one trace_event JSON document. */
std::string chromeTraceJson(const TraceSession &session);

/**
 * As above, with the profiler's wall-clock phase spans overlaid as a
 * second process (pid 1): one lane per recording thread, ts/dur in
 * real microseconds since the profiler epoch. The simulated-cycle
 * lanes (pid 0) are untouched, so viewers show both clocks side by
 * side without conflating their units.
 */
std::string chromeTraceJson(const TraceSession &session,
                            const std::vector<profiler::Span> &spans);

/** Write chromeTraceJson(session) to a file; fatal() on I/O error. */
void writeChromeTrace(const std::string &path,
                      const TraceSession &session);

/** As above, including the profiler span overlay. */
void writeChromeTrace(const std::string &path,
                      const TraceSession &session,
                      const std::vector<profiler::Span> &spans);

} // namespace marvel::obs

#endif // MARVEL_OBS_CHROME_TRACE_HH
