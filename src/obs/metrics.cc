#include "obs/metrics.hh"

#include "common/log.hh"

namespace marvel::obs
{

double
CampaignTelemetry::totalIdleSeconds() const
{
    double idle = 0;
    for (const WorkerTelemetry &w : workers)
        idle += w.idleSeconds;
    return idle;
}

void
CampaignTelemetry::noteRun(bool isMasked, bool isSdc, bool early,
                           u64 cycles, u64 fullRunCycles)
{
    ++runs;
    if (isMasked)
        ++masked;
    else if (isSdc)
        ++sdc;
    else
        ++crash;
    cyclesSimulated += cycles;
    if (early) {
        ++earlyTerminated;
        if (fullRunCycles > cycles)
            cyclesSaved += fullRunCycles - cycles;
    }
}

std::string
formatCampaignMetrics(const CampaignTelemetry &t)
{
    std::string out;
    out += "campaign metrics\n";
    out += strfmt("  runs            : %llu  (masked %llu, sdc %llu, "
                  "crash %llu)\n",
                  static_cast<unsigned long long>(t.runs),
                  static_cast<unsigned long long>(t.masked),
                  static_cast<unsigned long long>(t.sdc),
                  static_cast<unsigned long long>(t.crash));
    out += strfmt("  wall time       : %.3f s  (%.1f runs/s "
                  "aggregate)\n",
                  t.wallSeconds, t.runsPerSecond());
    out += strfmt("  cycles simulated: %llu\n",
                  static_cast<unsigned long long>(t.cyclesSimulated));
    out += strfmt("  early terminated: %llu run(s), %llu cycle(s) "
                  "saved\n",
                  static_cast<unsigned long long>(t.earlyTerminated),
                  static_cast<unsigned long long>(t.cyclesSaved));
    if (t.pruned || t.cyclesFastForwarded)
        out += strfmt("  ladder          : %llu fault(s) pre-pruned, "
                      "%llu cycle(s) fast-forwarded\n",
                      static_cast<unsigned long long>(t.pruned),
                      static_cast<unsigned long long>(
                          t.cyclesFastForwarded));
    if (t.earlyStops)
        out += strfmt("  early stops     : %llu run(s) converged at "
                      "a rung\n",
                      static_cast<unsigned long long>(t.earlyStops));
    if (!t.rungHits.empty()) {
        out += "  restore points  :";
        for (std::size_t i = 0; i < t.rungHits.size(); ++i)
            out += strfmt(" %s=%llu",
                          i == 0 ? "start" : strfmt("r%zu", i - 1).c_str(),
                          static_cast<unsigned long long>(t.rungHits[i]));
        out += "\n";
    }
    out += strfmt("  queue idle time : %.3f s across %zu worker(s)\n",
                  t.totalIdleSeconds(), t.workers.size());
    for (std::size_t i = 0; i < t.workers.size(); ++i) {
        const WorkerTelemetry &w = t.workers[i];
        out += strfmt("  worker %-2zu       : %llu run(s), %llu "
                      "cycle(s), busy %.3f s, idle %.3f s, "
                      "%.1f runs/s\n",
                      i, static_cast<unsigned long long>(w.runs),
                      static_cast<unsigned long long>(w.simCycles),
                      w.busySeconds, w.idleSeconds,
                      w.runsPerSecond());
    }
    return out;
}

DispatchWorkerStats &
DispatchTelemetry::workerNamed(const std::string &name)
{
    for (DispatchWorkerStats &w : workers)
        if (w.name == name)
            return w;
    workers.push_back({});
    workers.back().name = name;
    return workers.back();
}

std::string
formatDispatchMetrics(const DispatchTelemetry &t)
{
    std::string out;
    out += "dispatch metrics\n";
    out += strfmt("  leases          : %llu granted  (%llu completed, "
                  "%llu expired, %llu requeued)\n",
                  static_cast<unsigned long long>(t.leasesGranted),
                  static_cast<unsigned long long>(t.leasesCompleted),
                  static_cast<unsigned long long>(t.leasesExpired),
                  static_cast<unsigned long long>(t.leasesRequeued));
    out += strfmt("  verdicts        : %llu ingested in %llu chunk(s)",
                  static_cast<unsigned long long>(t.verdictsIngested),
                  static_cast<unsigned long long>(t.chunksIngested));
    if (t.duplicateVerdicts || t.staleVerdicts)
        out += strfmt("  (%llu duplicate, %llu stale)",
                      static_cast<unsigned long long>(
                          t.duplicateVerdicts),
                      static_cast<unsigned long long>(
                          t.staleVerdicts));
    out += "\n";
    out += strfmt("  connections     : %llu accepted, %llu status "
                  "watcher(s)\n",
                  static_cast<unsigned long long>(
                      t.connectionsAccepted),
                  static_cast<unsigned long long>(t.watchersServed));
    if (t.wallSeconds > 0)
        out += strfmt("  wall time       : %.3f s  (%.1f verdicts/s "
                      "aggregate)\n",
                      t.wallSeconds,
                      static_cast<double>(t.verdictsIngested) /
                          t.wallSeconds);
    for (const DispatchWorkerStats &w : t.workers)
        out += strfmt("  worker %-9s: %llu lease(s), %llu "
                      "verdict(s), %llu reconnect(s), %.1f "
                      "verdicts/s\n",
                      w.name.c_str(),
                      static_cast<unsigned long long>(w.leases),
                      static_cast<unsigned long long>(w.verdicts),
                      static_cast<unsigned long long>(w.reconnects),
                      w.verdictsPerSecond());
    return out;
}

} // namespace marvel::obs
