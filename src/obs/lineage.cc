#include "obs/lineage.hh"

#include "common/log.hh"

namespace marvel::obs
{

std::string
PropagationTrace::summary() const
{
    std::string out;
    if (!faultRead) {
        out += "fault never consumed: the flipped bit was overwritten "
               "or vanished before any read (hardware-masked)\n";
        return out;
    }
    out += strfmt("first consumed at cycle %llu\n",
                  static_cast<unsigned long long>(firstReadCycle));
    out += strfmt("dataflow spread: %llu tainted uop(s), %llu tainted "
                  "store(s), %llu store-to-load forward(s), %llu "
                  "tainted load(s)\n",
                  static_cast<unsigned long long>(taintedUops),
                  static_cast<unsigned long long>(taintedStores),
                  static_cast<unsigned long long>(forwardedTaints),
                  static_cast<unsigned long long>(taintedLoads));
    if (taintedCommits)
        out += strfmt("reached the commit stream: %llu tainted "
                      "commit(s), first at cycle %llu\n",
                      static_cast<unsigned long long>(taintedCommits),
                      static_cast<unsigned long long>(
                          firstTaintedCommit));
    else
        out += "never reached the commit stream (squashed or dead "
               "values only)\n";
    if (diverged)
        out += strfmt("architectural divergence from the golden "
                      "commit trace at cycle %llu\n",
                      static_cast<unsigned long long>(
                          firstDivergence));
    else
        out += "no architectural divergence: corrupt values were "
               "logically masked before commit-visible state\n";
    return out;
}

} // namespace marvel::obs
