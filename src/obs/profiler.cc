#include "obs/profiler.hh"

#include <atomic>
#include <chrono>
#include <mutex>

#include "common/log.hh"

namespace marvel::obs::profiler
{

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::GoldenBuild: return "golden_build";
      case Phase::RungCapture: return "rung_capture";
      case Phase::FastForward: return "fast_forward";
      case Phase::Simulate: return "simulate";
      case Phase::Classify: return "classify";
      case Phase::Prune: return "prune";
      case Phase::JournalIo: return "journal_io";
      case Phase::SocketWait: return "socket_wait";
      case Phase::StopCheck: return "stop_check";
    }
    return "?";
}

u64
Totals::totalNanos() const
{
    u64 sum = 0;
    for (unsigned p = 0; p < kNumPhases; ++p)
        sum += nanos[p];
    return sum;
}

Totals
Totals::since(const Totals &earlier) const
{
    Totals delta;
    for (unsigned p = 0; p < kNumPhases; ++p) {
        delta.nanos[p] =
            nanos[p] > earlier.nanos[p] ? nanos[p] - earlier.nanos[p]
                                        : 0;
        delta.calls[p] =
            calls[p] > earlier.calls[p] ? calls[p] - earlier.calls[p]
                                        : 0;
    }
    return delta;
}

#ifndef MARVEL_STATS_DISABLED

namespace
{

/** One thread's accumulators. Written only by the owning thread;
 *  read by snapshot() from any thread, hence the relaxed atomics. */
struct ThreadSlot
{
    std::array<std::atomic<u64>, kNumPhases> nanos{};
    std::array<std::atomic<u64>, kNumPhases> calls{};
    u32 ordinal = 0;
};

struct Registry
{
    std::mutex mu;
    std::vector<ThreadSlot *> live;
    Totals retired; ///< folded-in totals of exited threads
    u32 nextOrdinal = 0;

    std::array<Span, kSpanCap> ring;
    std::size_t ringNext = 0;  ///< next write position
    std::size_t ringCount = 0; ///< valid spans (<= kSpanCap)

    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
};

Registry &
registry()
{
    static Registry r;
    return r;
}

std::atomic<bool> gEnabled{true};

u64
nowNanos()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - registry().epoch)
            .count());
}

/**
 * The thread's slot, registered on first use and folded into the
 * registry's retired totals when the thread exits — campaign worker
 * threads die with their campaign, but their time must survive them.
 */
struct SlotHolder
{
    ThreadSlot slot;

    SlotHolder()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        slot.ordinal = r.nextOrdinal++;
        r.live.push_back(&slot);
    }

    ~SlotHolder()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        for (unsigned p = 0; p < kNumPhases; ++p) {
            r.retired.nanos[p] +=
                slot.nanos[p].load(std::memory_order_relaxed);
            r.retired.calls[p] +=
                slot.calls[p].load(std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < r.live.size(); ++i) {
            if (r.live[i] == &slot) {
                r.live.erase(r.live.begin() + i);
                break;
            }
        }
    }
};

ThreadSlot &
localSlot()
{
    thread_local SlotHolder holder;
    return holder.slot;
}

void
recordSpan(Phase phase, u32 ordinal, u64 startNanos, u64 durNanos)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    Span &span = r.ring[r.ringNext];
    span.phase = phase;
    span.thread = ordinal;
    span.startMicros = startNanos / 1000;
    span.durMicros = durNanos / 1000;
    r.ringNext = (r.ringNext + 1) % kSpanCap;
    if (r.ringCount < kSpanCap)
        ++r.ringCount;
}

} // namespace

ScopedPhase::ScopedPhase(Phase phase)
    : phase_(phase),
      startNanos_(gEnabled.load(std::memory_order_relaxed) ? nowNanos()
                                                           : 0)
{
}

ScopedPhase::~ScopedPhase()
{
    if (!gEnabled.load(std::memory_order_relaxed))
        return;
    const u64 end = nowNanos();
    const u64 dur = end > startNanos_ ? end - startNanos_ : 0;
    ThreadSlot &slot = localSlot();
    const unsigned p = static_cast<unsigned>(phase_);
    slot.nanos[p].fetch_add(dur, std::memory_order_relaxed);
    slot.calls[p].fetch_add(1, std::memory_order_relaxed);
    recordSpan(phase_, slot.ordinal, startNanos_, dur);
}

void
setEnabled(bool enabled)
{
    gEnabled.store(enabled, std::memory_order_relaxed);
}

bool
enabled()
{
    return gEnabled.load(std::memory_order_relaxed);
}

Totals
snapshot()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    Totals sum = r.retired;
    for (const ThreadSlot *slot : r.live) {
        for (unsigned p = 0; p < kNumPhases; ++p) {
            sum.nanos[p] +=
                slot->nanos[p].load(std::memory_order_relaxed);
            sum.calls[p] +=
                slot->calls[p].load(std::memory_order_relaxed);
        }
    }
    return sum;
}

void
reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.retired = Totals{};
    for (ThreadSlot *slot : r.live) {
        for (unsigned p = 0; p < kNumPhases; ++p) {
            slot->nanos[p].store(0, std::memory_order_relaxed);
            slot->calls[p].store(0, std::memory_order_relaxed);
        }
    }
    r.ringNext = 0;
    r.ringCount = 0;
}

std::vector<Span>
spans()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<Span> out;
    out.reserve(r.ringCount);
    const std::size_t first =
        r.ringCount == kSpanCap ? r.ringNext : 0;
    for (std::size_t i = 0; i < r.ringCount; ++i)
        out.push_back(r.ring[(first + i) % kSpanCap]);
    return out;
}

#else // MARVEL_STATS_DISABLED

void setEnabled(bool) {}
bool enabled() { return false; }
Totals snapshot() { return Totals{}; }
void reset() {}
std::vector<Span> spans() { return {}; }

#endif // MARVEL_STATS_DISABLED

void
regStats(stats::Group &root)
{
    stats::Group &prof = root.subgroup("profiler");
    for (unsigned p = 0; p < kNumPhases; ++p) {
        const Phase phase = static_cast<Phase>(p);
        stats::Group &g = prof.subgroup(phaseName(phase));
        g.addFormula(
            "seconds",
            [p]() {
                return static_cast<double>(snapshot().nanos[p]) / 1e9;
            },
            "wall-clock seconds spent in this phase (all threads)");
        g.addFormula(
            "calls",
            [p]() {
                return static_cast<double>(snapshot().calls[p]);
            },
            "completed phase scopes");
    }
    prof.addFormula(
        "total_seconds",
        []() {
            return static_cast<double>(snapshot().totalNanos()) / 1e9;
        },
        "wall-clock seconds across all profiled phases");
}

} // namespace marvel::obs::profiler
