#include "obs/openmetrics.hh"

#include <cmath>
#include <cstdlib>

#include "common/log.hh"
#include "obs/profiler.hh"

namespace marvel::obs
{

namespace
{

double
finiteOrZero(double v)
{
    return std::isfinite(v) ? v : 0.0;
}

/** Escape a label value per the OpenMetrics text format. */
std::string
escapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** A metric family: # HELP + # TYPE, then its samples. */
struct Emitter
{
    std::string out;

    void
    family(const char *name, const char *type, const char *help)
    {
        out += strfmt("# HELP %s %s\n# TYPE %s %s\n", name, help,
                      name, type);
    }

    void
    sample(const char *name, const std::string &labels, double value)
    {
        out += name;
        if (!labels.empty())
            out += "{" + labels + "}";
        out += strfmt(" %.10g\n", finiteOrZero(value));
    }

    void
    sample(const char *name, const std::string &labels, u64 value)
    {
        out += name;
        if (!labels.empty())
            out += "{" + labels + "}";
        out += strfmt(" %llu\n",
                      static_cast<unsigned long long>(value));
    }
};

std::string
workerLabel(const DispatchWorkerStats &w)
{
    return strfmt("worker=\"%s\"", escapeLabel(w.name).c_str());
}

} // namespace

std::string
openMetricsText(const DispatchTelemetry &dispatch,
                const CampaignSnapshot &campaign)
{
    Emitter e;

    // --- campaign progress ---
    e.family("marvel_campaign_runs_total", "counter",
             "Verdicts journaled so far.");
    e.sample("marvel_campaign_runs_total", "", campaign.done);
    e.family("marvel_campaign_expected_runs", "gauge",
             "Total fault injections in the campaign.");
    e.sample("marvel_campaign_expected_runs", "", campaign.expected);
    e.family("marvel_campaign_verdicts_total", "counter",
             "Journaled verdicts by outcome class.");
    e.sample("marvel_campaign_verdicts_total", "outcome=\"masked\"",
             campaign.masked);
    e.sample("marvel_campaign_verdicts_total", "outcome=\"sdc\"",
             campaign.sdc);
    e.sample("marvel_campaign_verdicts_total", "outcome=\"crash\"",
             campaign.crash);
    e.family("marvel_campaign_pruned_total", "counter",
             "Verdicts classified without simulating (dead-fault "
             "pruning).");
    e.sample("marvel_campaign_pruned_total", "", campaign.pruned);
    e.family("marvel_campaign_early_stops_total", "counter",
             "Runs ended mid-window by the convergence early-stop "
             "check.");
    e.sample("marvel_campaign_early_stops_total", "",
             campaign.earlyStops);
    e.family("marvel_campaign_runs_per_second", "gauge",
             "Campaign-wide verdict throughput.");
    e.sample("marvel_campaign_runs_per_second", "",
             campaign.runsPerSec);
    e.family("marvel_campaign_avf", "gauge",
             "Partial architectural vulnerability factor.");
    e.sample("marvel_campaign_avf", "", campaign.avf);
    e.family("marvel_campaign_avf_margin", "gauge",
             "95% confidence margin on the partial AVF.");
    e.sample("marvel_campaign_avf_margin", "", campaign.margin);
    e.family("marvel_campaign_eta_seconds", "gauge",
             "Estimated seconds to campaign completion.");
    e.sample("marvel_campaign_eta_seconds", "", campaign.etaSeconds);
    e.family("marvel_campaign_uptime_seconds", "gauge",
             "Seconds since the daemon started this campaign.");
    e.sample("marvel_campaign_uptime_seconds", "",
             campaign.uptimeSeconds);
    e.family("marvel_campaign_complete", "gauge",
             "1 once every verdict is journaled.");
    e.sample("marvel_campaign_complete", "",
             static_cast<u64>(campaign.complete ? 1 : 0));

    // --- dispatch lease lifecycle ---
    e.family("marvel_dispatch_leases_granted_total", "counter",
             "Leases handed to workers.");
    e.sample("marvel_dispatch_leases_granted_total", "",
             dispatch.leasesGranted);
    e.family("marvel_dispatch_leases_completed_total", "counter",
             "Leases finished with an acknowledged LeaseDone.");
    e.sample("marvel_dispatch_leases_completed_total", "",
             dispatch.leasesCompleted);
    e.family("marvel_dispatch_leases_expired_total", "counter",
             "Leases reaped by the TTL (silent worker).");
    e.sample("marvel_dispatch_leases_expired_total", "",
             dispatch.leasesExpired);
    e.family("marvel_dispatch_leases_requeued_total", "counter",
             "Leases re-enqueued when a connection died.");
    e.sample("marvel_dispatch_leases_requeued_total", "",
             dispatch.leasesRequeued);
    e.family("marvel_dispatch_verdicts_ingested_total", "counter",
             "Verdicts accepted into the journal.");
    e.sample("marvel_dispatch_verdicts_ingested_total", "",
             dispatch.verdictsIngested);
    e.family("marvel_dispatch_duplicate_verdicts_total", "counter",
             "Verdicts dropped as already journaled.");
    e.sample("marvel_dispatch_duplicate_verdicts_total", "",
             dispatch.duplicateVerdicts);
    e.family("marvel_dispatch_stale_verdicts_total", "counter",
             "Verdicts arriving after their lease was lost.");
    e.sample("marvel_dispatch_stale_verdicts_total", "",
             dispatch.staleVerdicts);
    e.family("marvel_dispatch_chunks_ingested_total", "counter",
             "Verdict chunks accepted.");
    e.sample("marvel_dispatch_chunks_ingested_total", "",
             dispatch.chunksIngested);
    e.family("marvel_dispatch_connections_total", "counter",
             "Connections accepted on the dispatch socket.");
    e.sample("marvel_dispatch_connections_total", "",
             dispatch.connectionsAccepted);
    e.family("marvel_dispatch_watchers_total", "counter",
             "Status watchers served.");
    e.sample("marvel_dispatch_watchers_total", "",
             dispatch.watchersServed);

    // --- per-worker fleet telemetry ---
    e.family("marvel_worker_leases_total", "counter",
             "Leases granted, by worker.");
    for (const auto &w : dispatch.workers)
        e.sample("marvel_worker_leases_total", workerLabel(w),
                 w.leases);
    e.family("marvel_worker_verdicts_total", "counter",
             "Verdicts streamed, by worker.");
    for (const auto &w : dispatch.workers)
        e.sample("marvel_worker_verdicts_total", workerLabel(w),
                 w.verdicts);
    e.family("marvel_worker_reconnects_total", "counter",
             "Reconnects after a dropped connection, by worker.");
    for (const auto &w : dispatch.workers)
        e.sample("marvel_worker_reconnects_total", workerLabel(w),
                 w.reconnects);
    e.family("marvel_worker_busy_seconds_total", "counter",
             "Worker-reported wall seconds spent producing "
             "verdicts.");
    for (const auto &w : dispatch.workers)
        e.sample("marvel_worker_busy_seconds_total", workerLabel(w),
                 static_cast<double>(w.reportedBusyMicros) / 1e6);
    e.family("marvel_worker_phase_seconds_total", "counter",
             "Worker-reported wall seconds per profiler phase.");
    for (const auto &w : dispatch.workers) {
        for (unsigned p = 0; p < profiler::kNumPhases; ++p) {
            const std::string labels =
                workerLabel(w) +
                strfmt(",phase=\"%s\"",
                       profiler::phaseName(
                           static_cast<profiler::Phase>(p)));
            e.sample("marvel_worker_phase_seconds_total", labels,
                     static_cast<double>(w.phaseMicros[p]) / 1e6);
        }
    }
    e.family("marvel_worker_last_seen_seconds", "gauge",
             "Seconds since the daemon last heard from the worker.");
    const u64 nowMillis = static_cast<u64>(
        finiteOrZero(campaign.uptimeSeconds) * 1000.0);
    for (const auto &w : dispatch.workers) {
        const u64 ago = nowMillis > w.lastSeenMillis
                            ? nowMillis - w.lastSeenMillis
                            : 0;
        e.sample("marvel_worker_last_seen_seconds", workerLabel(w),
                 static_cast<double>(ago) / 1e3);
    }
    e.family("marvel_worker_current_lease", "gauge",
             "Lease id the worker holds right now (0 = none).");
    for (const auto &w : dispatch.workers)
        e.sample("marvel_worker_current_lease", workerLabel(w),
                 w.currentLease);
    e.family("marvel_worker_chunk_latency_avg_seconds", "gauge",
             "Mean gap between the worker's verdict chunks.");
    for (const auto &w : dispatch.workers)
        e.sample("marvel_worker_chunk_latency_avg_seconds",
                 workerLabel(w),
                 w.chunkGaps > 0
                     ? static_cast<double>(w.chunkLatencySumMillis) /
                           (1e3 * static_cast<double>(w.chunkGaps))
                     : 0.0);
    e.family("marvel_worker_chunk_latency_max_seconds", "gauge",
             "Largest gap between the worker's verdict chunks.");
    for (const auto &w : dispatch.workers)
        e.sample("marvel_worker_chunk_latency_max_seconds",
                 workerLabel(w),
                 static_cast<double>(w.chunkLatencyMaxMillis) / 1e3);

    e.out += "# EOF\n";
    return e.out;
}

std::string
MetricSample::label(const std::string &key) const
{
    const auto it = labels.find(key);
    return it == labels.end() ? std::string() : it->second;
}

namespace
{

/** Parse {key="value",...}; `pos` sits on '{' and ends past '}'. */
bool
parseLabels(const std::string &line, std::size_t &pos,
            std::map<std::string, std::string> &out)
{
    ++pos; // '{'
    while (pos < line.size() && line[pos] != '}') {
        std::size_t eq = line.find('=', pos);
        if (eq == std::string::npos || eq + 1 >= line.size() ||
            line[eq + 1] != '"')
            return false;
        const std::string key = line.substr(pos, eq - pos);
        std::string value;
        std::size_t i = eq + 2;
        for (; i < line.size() && line[i] != '"'; ++i) {
            if (line[i] == '\\' && i + 1 < line.size()) {
                ++i;
                if (line[i] == 'n')
                    value += '\n';
                else
                    value += line[i];
            } else {
                value += line[i];
            }
        }
        if (i >= line.size())
            return false;
        out[key] = value;
        pos = i + 1;
        if (pos < line.size() && line[pos] == ',')
            ++pos;
    }
    if (pos >= line.size() || line[pos] != '}')
        return false;
    ++pos;
    return true;
}

} // namespace

bool
parseOpenMetrics(const std::string &text,
                 std::vector<MetricSample> &out)
{
    out.clear();
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        if (line.empty() || line[0] == '#')
            continue;
        MetricSample sample;
        std::size_t pos = 0;
        while (pos < line.size() && line[pos] != '{' &&
               line[pos] != ' ')
            ++pos;
        if (pos == 0 || pos >= line.size())
            return false;
        sample.name = line.substr(0, pos);
        if (line[pos] == '{' &&
            !parseLabels(line, pos, sample.labels))
            return false;
        if (pos >= line.size() || line[pos] != ' ')
            return false;
        const std::string digits = line.substr(pos + 1);
        char *endp = nullptr;
        sample.value = std::strtod(digits.c_str(), &endp);
        if (!endp || *endp != '\0' || digits.empty())
            return false;
        out.push_back(std::move(sample));
    }
    return true;
}

const MetricSample *
findSample(const std::vector<MetricSample> &samples,
           const std::string &name, const std::string &worker)
{
    for (const MetricSample &s : samples) {
        if (s.name != name)
            continue;
        if (!worker.empty() && s.label("worker") != worker)
            continue;
        return &s;
    }
    return nullptr;
}

} // namespace marvel::obs
