/**
 * @file
 * Campaign execution telemetry: where did the wall-clock time go?
 *
 * Verdict counts say what the faults did; CampaignTelemetry says what
 * the CAMPAIGN did — per-worker throughput (runs/sec), simulated
 * cycles, the cycles early termination refused to simulate, and the
 * tail imbalance (queue idle time: how long finished workers waited
 * for the slowest one). sched::runCampaign fills one in when
 * fi::CampaignOptions::telemetry points at it, and appends a summary
 * record to the verdict journal so `marvel-campaign status` can
 * report throughput long after the run.
 *
 * Lives in obs (not sched) because it is pure observability: nothing
 * here influences scheduling, and the exporters below are shared by
 * tools, benches and tests.
 */

#ifndef MARVEL_OBS_METRICS_HH
#define MARVEL_OBS_METRICS_HH

#include <array>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/profiler.hh"

namespace marvel::obs
{

/** One campaign worker's share of the execution. */
struct WorkerTelemetry
{
    u64 runs = 0;         ///< faulty runs executed
    u64 simCycles = 0;    ///< cycles simulated across those runs
    double busySeconds = 0; ///< wall time spent running faults
    double idleSeconds = 0; ///< drained-queue wait for the last worker

    double
    runsPerSecond() const
    {
        return busySeconds > 0 ? static_cast<double>(runs) /
                                     busySeconds
                               : 0.0;
    }
};

/** Whole-campaign (one shard) execution telemetry. */
struct CampaignTelemetry
{
    std::vector<WorkerTelemetry> workers;
    double wallSeconds = 0; ///< enqueue -> last worker finished

    u64 runs = 0;
    u64 masked = 0;
    u64 sdc = 0;
    u64 crash = 0;

    u64 earlyTerminated = 0;
    u64 cyclesSimulated = 0;
    /** Cycles a full-length run would have cost minus cycles actually
     *  simulated, summed over early-terminated and early-stopped
     *  runs. */
    u64 cyclesSaved = 0;

    /** Runs ended mid-window by the convergence early-stop check
     *  (verdict fabricated from a golden-rung match). Disjoint from
     *  pruning; may overlap earlyTerminated when the fabricated
     *  verdict predicts an early termination. */
    u64 earlyStops = 0;

    /** Faults classified Masked by dead-fault pre-pruning, with zero
     *  simulated cycles (subset of masked, disjoint from runs' early
     *  termination). */
    u64 pruned = 0;
    /** Cycles skipped by restoring checkpoint-ladder rungs instead of
     *  the window start, summed over fast-forwarded runs. */
    u64 cyclesFastForwarded = 0;
    /** Restore-point histogram: [0] counts window-start restores,
     *  [1 + i] counts restores from ladder rung i. Empty when the
     *  campaign ran without a ladder. */
    std::vector<u64> rungHits;

    double
    runsPerSecond() const
    {
        return wallSeconds > 0 ? static_cast<double>(runs) /
                                     wallSeconds
                               : 0.0;
    }

    /** Total finished-worker wait for the campaign tail. */
    double totalIdleSeconds() const;

    /** Fold one run into the aggregate counters (not the workers). */
    void noteRun(bool isMasked, bool isSdc, bool early, u64 cycles,
                 u64 fullRunCycles);
};

/** Render the telemetry as a human-readable text report. */
std::string formatCampaignMetrics(const CampaignTelemetry &telemetry);

/** One remote worker as the dispatch daemon saw it. */
struct DispatchWorkerStats
{
    std::string name;
    u64 leases = 0;      ///< leases granted to this worker
    u64 verdicts = 0;    ///< verdicts it streamed back
    u64 reconnects = 0;  ///< times it re-appeared after a drop
    double busySeconds = 0; ///< first grant -> last verdict

    /**
     * Fleet telemetry piggybacked on the worker's verdict chunks:
     * the worker's own cumulative counters (so a value is a restart-
     * safe high-water mark, not a delta) plus liveness/latency facts
     * only the daemon's clock can measure.
     */
    u64 reportedRuns = 0;     ///< worker-side verdicts computed
    u64 reportedBusyMicros = 0; ///< worker-side busy wall time
    /** Worker-side per-phase micros, profiler::Phase order. */
    std::array<u64, profiler::kNumPhases> phaseMicros{};
    u64 lastSeenMillis = 0;   ///< daemon clock, last frame received
    u64 currentLease = 0;     ///< live lease id; 0 = none held
    u64 chunkLatencySumMillis = 0; ///< gaps between verdict chunks
    u64 chunkLatencyMaxMillis = 0;
    u64 chunkGaps = 0;        ///< samples in the latency sum

    double
    verdictsPerSecond() const
    {
        return busySeconds > 0 ? static_cast<double>(verdicts) /
                                     busySeconds
                               : 0.0;
    }
};

/**
 * What the dispatch daemon did: the lease lifecycle in numbers plus
 * per-worker throughput. The lease counters obey
 *   granted == completed + expired + requeued + still-active
 * (expired leases that were later re-granted count once per grant).
 * Lives in obs for the same reason CampaignTelemetry does: pure
 * observability, shared by the daemon tool, tests and status output.
 */
struct DispatchTelemetry
{
    u64 leasesGranted = 0;
    u64 leasesCompleted = 0;
    u64 leasesExpired = 0;   ///< TTL ran out on a silent worker
    u64 leasesRequeued = 0;  ///< connection died with the lease open
    u64 verdictsIngested = 0;
    u64 duplicateVerdicts = 0; ///< re-leased work arriving twice
    u64 staleVerdicts = 0;     ///< arrived after the lease was lost
    u64 chunksIngested = 0;
    u64 connectionsAccepted = 0;
    u64 watchersServed = 0;
    double wallSeconds = 0;
    std::vector<DispatchWorkerStats> workers;

    /** Find-or-create the per-worker slot for `name`. */
    DispatchWorkerStats &workerNamed(const std::string &name);
};

/** Render the dispatch telemetry as a human-readable text report. */
std::string formatDispatchMetrics(const DispatchTelemetry &telemetry);

} // namespace marvel::obs

#endif // MARVEL_OBS_METRICS_HH
