#include "obs/trace.hh"

#include <algorithm>

#include "common/log.hh"

namespace marvel::obs
{

namespace detail
{
TraceSession *gSession = nullptr;
Cycle gNow = 0;
} // namespace detail

const char *
componentName(Component comp)
{
    switch (comp) {
      case Component::Cpu: return "cpu";
      case Component::L1I: return "l1i";
      case Component::L1D: return "l1d";
      case Component::L2: return "l2";
      case Component::Accel: return "accel";
      case Component::Dma: return "dma";
      case Component::Fault: return "fault";
    }
    return "?";
}

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Fetch: return "fetch";
      case EventKind::Rename: return "rename";
      case EventKind::Issue: return "issue";
      case EventKind::Forward: return "forward";
      case EventKind::Complete: return "complete";
      case EventKind::Commit: return "commit";
      case EventKind::Squash: return "squash";
      case EventKind::CacheFill: return "fill";
      case EventKind::CacheEvict: return "evict";
      case EventKind::CacheWriteback: return "writeback";
      case EventKind::DmaStart: return "dma-start";
      case EventKind::DmaDone: return "dma-done";
      case EventKind::FaultInject: return "fault-inject";
      case EventKind::FaultRead: return "fault-read";
      case EventKind::FaultOverwrite: return "fault-overwrite";
      case EventKind::FaultVanish: return "fault-vanish";
    }
    return "?";
}

TraceSession::TraceSession(std::size_t capacityPerComponent)
{
    if (detail::gSession)
        panic("obs: a TraceSession is already installed");
    for (EventRing &ring : rings_)
        ring.reset(capacityPerComponent);
    detail::gNow = 0;
    detail::gSession = this;
}

TraceSession::~TraceSession()
{
    detail::gSession = nullptr;
}

const EventRing &
TraceSession::ring(Component comp) const
{
    return rings_[static_cast<unsigned>(comp)];
}

EventRing &
TraceSession::ring(Component comp)
{
    return rings_[static_cast<unsigned>(comp)];
}

std::size_t
TraceSession::totalEvents() const
{
    std::size_t total = 0;
    for (const EventRing &ring : rings_)
        total += ring.size();
    return total;
}

u64
TraceSession::totalDropped() const
{
    u64 total = 0;
    for (const EventRing &ring : rings_)
        total += ring.dropped();
    return total;
}

std::vector<TraceEvent>
TraceSession::merged() const
{
    std::vector<TraceEvent> all;
    all.reserve(totalEvents());
    for (const EventRing &ring : rings_)
        for (std::size_t i = 0; i < ring.size(); ++i)
            all.push_back(ring.at(i));
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &x, const TraceEvent &y) {
                         return x.cycle < y.cycle;
                     });
    return all;
}

void
emit(Component comp, EventKind kind, u64 a, u64 b)
{
    TraceEvent ev;
    ev.cycle = detail::gNow;
    ev.a = a;
    ev.b = static_cast<u32>(b);
    ev.kind = kind;
    ev.comp = comp;
    detail::gSession->ring(comp).push(ev);
}

} // namespace marvel::obs
