/**
 * @file
 * Fault-propagation lineage: where did an injected bit go?
 *
 * A campaign verdict says WHAT happened (Masked/SDC/Crash); a
 * PropagationTrace says HOW. When a run executes with lineage enabled
 * (fi::InjectionOptions::lineage), the core seeds a taint bit on the
 * faulted storage and propagates it through the real dataflow:
 * register reads taint the consuming µop, the µop's writeback taints
 * its destination physical register, tainted store data taints the SQ
 * entry and — via store-to-load forwarding or the drained memory
 * range — later loads, and tainted µops are counted as they commit.
 * The first commit-stream divergence from the golden trace (the HVF
 * corruption point) closes the story: fault injected at cycle I, first
 * consumed at cycle R, N µops carried it, architectural state diverged
 * at cycle D.
 *
 * Precision notes: register, LQ/SQ and forwarding taint is exact;
 * memory taint is tracked as byte ranges written by tainted stores (or
 * covering a faulted cache line / SPM word) and is never cleared, so
 * lineage over-approximates but never misses a dataflow path. Lineage
 * is an analysis mode — campaigns run with it off and pay nothing.
 */

#ifndef MARVEL_OBS_LINEAGE_HH
#define MARVEL_OBS_LINEAGE_HH

#include <string>

#include "common/types.hh"

namespace marvel::obs
{

/** The lineage record one instrumented run fills in. */
struct PropagationTrace
{
    // --- consumption ---------------------------------------------------
    bool faultRead = false;   ///< a tainted value was ever consumed
    Cycle firstReadCycle = 0; ///< first consumption of the taint

    // --- spread --------------------------------------------------------
    u64 taintedUops = 0;     ///< µops that consumed tainted data
    u64 taintedStores = 0;   ///< tainted values entering the SQ
    u64 forwardedTaints = 0; ///< taints crossing store-to-load fwd
    u64 taintedLoads = 0;    ///< loads returning tainted data

    // --- architectural outcome -----------------------------------------
    u64 taintedCommits = 0;        ///< tainted µops that committed
    Cycle firstTaintedCommit = 0;
    bool diverged = false;         ///< commit stream left the golden
    Cycle firstDivergence = 0;     ///< cycle of the first divergence

    /** Multi-line human-readable account of the propagation path. */
    std::string summary() const;
};

} // namespace marvel::obs

#endif // MARVEL_OBS_LINEAGE_HH
