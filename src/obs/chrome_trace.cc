#include "obs/chrome_trace.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/log.hh"

namespace marvel::obs
{

std::string
chromeTraceJson(const TraceSession &session)
{
    std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto append = [&](const std::string &obj) {
        if (!first)
            out += ',';
        first = false;
        out += obj;
    };

    // Thread-name metadata so viewers label the component lanes.
    for (unsigned c = 0; c < kNumComponents; ++c) {
        const auto comp = static_cast<Component>(c);
        append(strfmt("{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":0,\"tid\":%u,"
                      "\"args\":{\"name\":\"%s\"}}",
                      c, componentName(comp)));
    }

    for (unsigned c = 0; c < kNumComponents; ++c) {
        const EventRing &ring =
            session.ring(static_cast<Component>(c));
        for (std::size_t i = 0; i < ring.size(); ++i) {
            const TraceEvent &ev = ring.at(i);
            append(strfmt(
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"pid\":0,\"tid\":%u,\"ts\":%llu,\"dur\":1,"
                "\"args\":{\"a\":%llu,\"b\":%llu}}",
                eventKindName(ev.kind),
                componentName(ev.comp), c,
                static_cast<unsigned long long>(ev.cycle),
                static_cast<unsigned long long>(ev.a),
                static_cast<unsigned long long>(ev.b)));
        }
    }
    out += "]}";
    return out;
}

std::string
chromeTraceJson(const TraceSession &session,
                const std::vector<profiler::Span> &spans)
{
    std::string out = chromeTraceJson(session);
    if (spans.empty())
        return out;
    out.erase(out.size() - 2); // re-open the traceEvents array

    // The base document always emits the component thread-name
    // metadata, so every appended event needs its leading comma.
    std::set<u32> threads;
    for (const profiler::Span &span : spans)
        threads.insert(span.thread);
    for (const u32 t : threads)
        out += strfmt(",{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":1,\"tid\":%u,"
                      "\"args\":{\"name\":\"profiler #%u\"}}",
                      t, t);
    for (const profiler::Span &span : spans)
        out += strfmt(
            ",{\"name\":\"%s\",\"cat\":\"profiler\",\"ph\":\"X\","
            "\"pid\":1,\"tid\":%u,\"ts\":%llu,\"dur\":%llu}",
            profiler::phaseName(span.phase), span.thread,
            static_cast<unsigned long long>(span.startMicros),
            static_cast<unsigned long long>(span.durMicros));
    out += "]}";
    return out;
}

namespace
{

void
writeTraceFile(const std::string &path, const std::string &json)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("obs: cannot create trace file '%s': %s", path.c_str(),
              std::strerror(errno));
    const std::size_t n =
        std::fwrite(json.data(), 1, json.size(), file);
    const bool writeError = n != json.size() || std::fclose(file) != 0;
    if (writeError)
        fatal("obs: write of trace file '%s' failed", path.c_str());
}

} // namespace

void
writeChromeTrace(const std::string &path, const TraceSession &session)
{
    writeTraceFile(path, chromeTraceJson(session));
}

void
writeChromeTrace(const std::string &path, const TraceSession &session,
                 const std::vector<profiler::Span> &spans)
{
    writeTraceFile(path, chromeTraceJson(session, spans));
}

} // namespace marvel::obs
