/**
 * @file
 * OpenMetrics text exposition for the dispatch daemon.
 *
 * The daemon answers a `Metrics` request with one self-contained
 * OpenMetrics document: campaign progress gauges, dispatch lease
 * counters, and one labelled series per worker (throughput, phase
 * split, liveness, current lease). The naming rules are documented in
 * docs/schemas/metrics.md and enforced by scripts/validate_metrics.py
 * in CI: everything starts with `marvel_`, names are lower_snake,
 * counters end in `_total`, every family carries # HELP and # TYPE,
 * and the document ends with `# EOF`.
 *
 * The renderer takes plain structs rather than daemon internals so
 * obs stays below net in the layer order: the daemon fills a
 * CampaignSnapshot from its heartbeat, and DispatchTelemetry is
 * already the daemon's observable state.
 *
 * The mirror-image parser exists for marvel-top and `status
 * --connect`: it understands exactly what the renderer produces (one
 * `name{labels} value` sample per line) — it is not a general
 * OpenMetrics consumer.
 */

#ifndef MARVEL_OBS_OPENMETRICS_HH
#define MARVEL_OBS_OPENMETRICS_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/metrics.hh"

namespace marvel::obs
{

/** Campaign-progress facts the daemon distills from its heartbeat. */
struct CampaignSnapshot
{
    u64 done = 0;
    u64 expected = 0;
    u64 masked = 0;
    u64 sdc = 0;
    u64 crash = 0;
    u64 pruned = 0;
    u64 earlyStops = 0; ///< runs ended by rung convergence
    double runsPerSec = 0;
    double avf = 0;
    double margin = 0;
    double etaSeconds = 0;
    double uptimeSeconds = 0;
    bool complete = false;
};

/** Render one full OpenMetrics document (ends with "# EOF\n"). */
std::string openMetricsText(const DispatchTelemetry &dispatch,
                            const CampaignSnapshot &campaign);

/** One parsed sample: marvel_foo{worker="w"} 1.5 */
struct MetricSample
{
    std::string name;
    std::map<std::string, std::string> labels;
    double value = 0;

    /** labels.at(key) or "" when absent. */
    std::string label(const std::string &key) const;
};

/**
 * Parse an openMetricsText document back into samples. Comment lines
 * (# HELP / # TYPE / # EOF) are skipped; a malformed sample line
 * makes the whole parse fail (returns false) so a watcher never
 * renders half a scrape.
 */
bool parseOpenMetrics(const std::string &text,
                      std::vector<MetricSample> &out);

/** First sample named `name` (with `worker` label when given);
 *  nullptr when absent. */
const MetricSample *findSample(
    const std::vector<MetricSample> &samples, const std::string &name,
    const std::string &worker = std::string());

} // namespace marvel::obs

#endif // MARVEL_OBS_OPENMETRICS_HH
