/**
 * @file
 * Interrupt controller models.
 *
 * Mirrors the paper's §III-C port: accelerator completion/error lines
 * are routed to the host CPU through the platform's interrupt
 * controller — the GIC on the Arm flavor, the PLIC on RISC-V, and an
 * IO-APIC-style unit on x86. All three share level-triggered semantics
 * with per-line enables and a claim/complete protocol; they differ in
 * priority handling, which is sufficient for the host driver model
 * (WaitIrq + status read acknowledge).
 */

#ifndef MARVEL_SOC_INTERRUPT_HH
#define MARVEL_SOC_INTERRUPT_HH

#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace marvel::soc
{

/** Controller flavor. */
enum class IrqModel : u8 { Gic, Plic, Apic };

/** Pick the platform controller for an ISA flavor. */
IrqModel irqModelFor(isa::IsaKind isa);

const char *irqModelName(IrqModel model);

/**
 * Level-triggered interrupt controller with per-line enable and
 * priority. Value-semantic.
 */
class InterruptController
{
  public:
    explicit InterruptController(IrqModel model = IrqModel::Plic,
                                 unsigned numLines = 32);

    IrqModel model() const { return model_; }
    unsigned numLines() const { return lines_.size(); }

    /** Drive the level of an input line. */
    void setLine(unsigned line, bool level);

    /** Enable/disable delivery of a line. */
    void enable(unsigned line, bool on);

    /** Per-line priority (PLIC-style; GIC uses it as group priority). */
    void setPriority(unsigned line, u8 priority);

    /** Any enabled line asserted (the CPU's external-interrupt pin). */
    bool pending() const;

    /**
     * Claim the highest-priority pending line (PLIC claim / GIC IAR).
     * Returns line+1, or 0 when none.
     */
    u32 claim();

    /** Complete a previously claimed line (PLIC complete / GIC EOIR). */
    void complete(u32 claimId);

    void reset();

    /** All line state identical (levels, enables, claims, priorities). */
    bool
    convergedWith(const InterruptController &other) const
    {
        if (lines_.size() != other.lines_.size())
            return false;
        for (std::size_t i = 0; i < lines_.size(); ++i)
            if (!(lines_[i] == other.lines_[i]))
                return false;
        return true;
    }

  private:
    struct Line
    {
        bool level = false;
        bool enabled = true;
        bool claimed = false;
        u8 priority = 1;

        bool operator==(const Line &other) const = default;
    };

    IrqModel model_;
    std::vector<Line> lines_;
};

} // namespace marvel::soc

#endif // MARVEL_SOC_INTERRUPT_HH
