#include "soc/checkpoint.hh"

#include <cstring>

namespace marvel::soc
{

namespace
{

void
appendBytes(std::vector<u8> &out, const void *data, std::size_t len)
{
    const u8 *p = static_cast<const u8 *>(data);
    out.insert(out.end(), p, p + len);
}

void
append64(std::vector<u8> &out, u64 value)
{
    appendBytes(out, &value, sizeof(value));
}

} // namespace

std::vector<u8>
serializeArchState(const System &system)
{
    std::vector<u8> out;
    out.reserve(kMemSize + 64 * 1024);

    // Architectural registers (through the rename map).
    const isa::IsaSpec &spec = isa::isaSpec(system.config.cpu.isa);
    append64(out, static_cast<u64>(spec.kind));
    for (unsigned r = 0; r < spec.numIntRenameRegs(); ++r)
        append64(out, system.cpu.archIntReg(r));

    // The coherent view of all of DRAM (caches folded in).
    std::vector<u8> image(kMemSize);
    system.memory.coherentRead(0, image.data(), image.size());
    appendBytes(out, image.data(), image.size());

    // Accelerator-local memories.
    for (std::size_t i = 0; i < system.cluster.size(); ++i) {
        const auto &mems = system.cluster.unitC(i).memories();
        for (const auto &mem : mems) {
            append64(out, mem.size());
            appendBytes(out, mem.data(), mem.size());
        }
    }
    append64(out, static_cast<u64>(system.exited));
    append64(out, static_cast<u64>(system.exitCode));
    return out;
}

u64
archStateDigest(const System &system)
{
    const std::vector<u8> bytes = serializeArchState(system);
    u64 hash = 0xcbf29ce484222325ull;
    for (u8 b : bytes) {
        hash ^= b;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace marvel::soc
