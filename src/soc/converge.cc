#include "soc/converge.hh"

namespace marvel::soc
{

bool
stateConverged(const System &a, const System &b)
{
    // Scalar SoC state first: exit/crash latches and the console are
    // architectural (SDC classification compares the console), and the
    // cycle counters anchor every relative-time field below.
    if (a.exited != b.exited || a.exitCode != b.exitCode ||
        a.accelCrashed != b.accelCrashed ||
        a.totalCycles != b.totalCycles || a.console != b.console)
        return false;
    if (!a.irqCtrl.convergedWith(b.irqCtrl))
        return false;
    if (a.cluster.size() != b.cluster.size() ||
        !a.cluster.convergedWith(b.cluster))
        return false;
    if (!a.cpu.convergedWith(b.cpu))
        return false;
    return a.memory.convergedWith(b.memory);
}

} // namespace marvel::soc
