#include "soc/interrupt.hh"

#include "common/log.hh"

namespace marvel::soc
{

IrqModel
irqModelFor(isa::IsaKind isa)
{
    switch (isa) {
      case isa::IsaKind::ARM: return IrqModel::Gic;
      case isa::IsaKind::RISCV: return IrqModel::Plic;
      case isa::IsaKind::X86: return IrqModel::Apic;
    }
    return IrqModel::Plic;
}

const char *
irqModelName(IrqModel model)
{
    switch (model) {
      case IrqModel::Gic: return "GIC";
      case IrqModel::Plic: return "PLIC";
      case IrqModel::Apic: return "IO-APIC";
    }
    return "?";
}

InterruptController::InterruptController(IrqModel model,
                                         unsigned numLines)
    : model_(model), lines_(numLines)
{
}

void
InterruptController::setLine(unsigned line, bool level)
{
    if (line >= lines_.size())
        fatal("irq: line %u out of range", line);
    lines_[line].level = level;
    if (!level)
        lines_[line].claimed = false;
}

void
InterruptController::enable(unsigned line, bool on)
{
    if (line >= lines_.size())
        fatal("irq: line %u out of range", line);
    lines_[line].enabled = on;
}

void
InterruptController::setPriority(unsigned line, u8 priority)
{
    if (line >= lines_.size())
        fatal("irq: line %u out of range", line);
    lines_[line].priority = priority;
}

bool
InterruptController::pending() const
{
    for (const Line &l : lines_)
        if (l.level && l.enabled && !l.claimed && l.priority > 0)
            return true;
    return false;
}

u32
InterruptController::claim()
{
    int best = -1;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const Line &l = lines_[i];
        if (!l.level || !l.enabled || l.claimed || l.priority == 0)
            continue;
        if (best < 0 ||
            l.priority > lines_[best].priority ||
            (model_ == IrqModel::Gic &&
             l.priority == lines_[best].priority &&
             static_cast<int>(i) < best)) {
            best = static_cast<int>(i);
        }
    }
    if (best < 0)
        return 0;
    lines_[best].claimed = true;
    return static_cast<u32>(best) + 1;
}

void
InterruptController::complete(u32 claimId)
{
    if (claimId == 0 || claimId > lines_.size())
        return;
    lines_[claimId - 1].claimed = false;
}

void
InterruptController::reset()
{
    for (Line &l : lines_)
        l = Line{};
}

} // namespace marvel::soc
