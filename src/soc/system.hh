/**
 * @file
 * The heterogeneous SoC: one out-of-order CPU (any ISA flavor), the
 * cache hierarchy, DRAM, an accelerator cluster, and the platform
 * interrupt controller (Fig. 1 of the paper).
 *
 * A System is value-semantic: copying one is a full microarchitectural
 * checkpoint (see soc/checkpoint.hh). The only caveat is the CPU's
 * commit-trace pointers, which the copy clears.
 */

#ifndef MARVEL_SOC_SYSTEM_HH
#define MARVEL_SOC_SYSTEM_HH

#include <string>
#include <vector>

#include "accel/cluster.hh"
#include "cpu/ooo_core.hh"
#include "isa/codegen.hh"
#include "mem/hierarchy.hh"
#include "soc/interrupt.hh"
#include "stats/stats.hh"

namespace marvel::soc
{

/** Full system configuration. */
struct SystemConfig
{
    cpu::CpuParams cpu;
    mem::HierarchyParams memory;
    accel::ClusterConfig cluster;
    /** SoC clock in GHz; scales OPS/OPF figures (fi/metrics). */
    double clockGHz = 2.0;
};

/** Why a run() call returned. */
enum class RunExit : u8
{
    Exited,       ///< program stored its exit code to the exit MMIO
    Crashed,      ///< architectural fault or accelerator error
    Timeout,      ///< cycle budget exhausted
    Checkpoint,   ///< a Checkpoint magic op committed
    SwitchCpu,    ///< a SwitchCpu magic op committed
};

const char *runExitName(RunExit exit);

/**
 * The SoC. Implements cpu::MmioBus to route uncached accesses to the
 * console, the exit register, and the accelerator cluster MMRs.
 */
class System : public cpu::MmioBus
{
  public:
    explicit System(const SystemConfig &config = SystemConfig{});

    System(const System &other);
    System &operator=(const System &other);

    /** Load a compiled program image and reset the CPU to its entry. */
    void loadProgram(const isa::Program &program);

    /**
     * Run until an event or for at most maxCycles additional cycles.
     * checkpointRequest/switchCpuRequest flags are cleared on return.
     */
    RunExit run(u64 maxCycles);

    /** One clock for every component. */
    void tick();

    // --- MmioBus -----------------------------------------------------------
    u64 mmioRead(Addr addr, unsigned size) override;
    void mmioWrite(Addr addr, u64 value, unsigned size) override;
    bool irqPending() override;

    // --- observation ---------------------------------------------------------
    /** Coherent copy of the OUTPUT window. */
    std::vector<u8> outputWindow() const;

    /** Crash description (valid after RunExit::Crashed). */
    std::string crashReason() const;

    /**
     * Build the full stats tree against THIS system: system.cpu.*,
     * system.l1i/l1d/l2.*, accel.<design>.*. The group borrows
     * pointers into live components — rebuild after copying/moving
     * the system, and drop it before the system dies.
     */
    void regStats(stats::Group &root);

    /** Convenience: build a transient tree and snapshot it. */
    stats::Snapshot statsSnapshot();

    // --- components ------------------------------------------------------------
    SystemConfig config;
    cpu::OooCore cpu;
    mem::Hierarchy memory;
    accel::Cluster cluster;
    InterruptController irqCtrl;

    std::string console;  ///< bytes written to the console MMIO
    bool exited = false;
    i64 exitCode = 0;
    bool accelCrashed = false;
    Cycle totalCycles = 0;
};

} // namespace marvel::soc

#endif // MARVEL_SOC_SYSTEM_HH
