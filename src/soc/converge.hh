/**
 * @file
 * System-level convergence comparison for the early-stop optimization.
 *
 * stateConverged(a, b) answers one question exactly: started from
 * identical configurations, will the two systems behave identically
 * from this cycle on? It is a structural comparison of every state
 * element that can influence future execution — pipeline, rename,
 * queues, predictor, caches, DRAM, accelerator units, interrupt lines,
 * console/exit latches — and deliberately excludes statistics
 * counters, fault-injection bookkeeping, observation hooks, and
 * storage whose contents are provably dead (free physical registers,
 * invalid cache lines, idle engine residue).
 *
 * The comparison is allowed to miss a convergence (a false negative
 * merely costs simulation time); it must never report one that is not
 * exact, because fi::runWithFault fabricates the rest of the run's
 * verdict from a match.
 */

#ifndef MARVEL_SOC_CONVERGE_HH
#define MARVEL_SOC_CONVERGE_HH

#include "soc/system.hh"

namespace marvel::soc
{

/** True when a and b will execute identically from here on. */
bool stateConverged(const System &a, const System &b);

} // namespace marvel::soc

#endif // MARVEL_SOC_CONVERGE_HH
