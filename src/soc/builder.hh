/**
 * @file
 * Config-driven SoC construction — the analog of gem5-SALAM's automatic
 * configuration script generator (§III-C2): a single text description
 * instantiates a full heterogeneous system without recompiling.
 *
 * Syntax (INI-style; see common/config.hh):
 *
 *   [system]
 *   isa = riscv            # riscv | arm | x86
 *
 *   [cpu]
 *   rob = 128
 *   iq = 64
 *   lq = 32
 *   sq = 32
 *   int_pregs = 128
 *   fp_pregs = 128
 *   issue_width = 8
 *
 *   [cache.l1i]            # likewise cache.l1d / cache.l2
 *   size = 32768
 *   ways = 4
 *   latency = 2
 *
 *   [accel]                # one section per accelerator
 *   design = gemm          # any Table IV design name
 *
 * Named presets cover the paper's Table II configurations.
 */

#ifndef MARVEL_SOC_BUILDER_HH
#define MARVEL_SOC_BUILDER_HH

#include <string>

#include "common/config.hh"
#include "soc/system.hh"

namespace marvel::soc
{

/** Build a SystemConfig from parsed configuration text. */
SystemConfig configFromText(const std::string &text);

/** Build a SystemConfig from a config file on disk. */
SystemConfig configFromFile(const std::string &path);

/**
 * Named hardware presets (paper Table II):
 *   "riscv", "arm", "x86"            — CPU-only systems
 *   "riscv-soc", "arm-soc", "x86-soc" — CPU + all eight DSAs
 */
SystemConfig preset(const std::string &name);

/** Render a SystemConfig back to config text (round-trippable). */
std::string configToText(const SystemConfig &config);

} // namespace marvel::soc

#endif // MARVEL_SOC_BUILDER_HH
