#include "soc/system.hh"

#include "common/log.hh"
#include "common/memmap.hh"
#include "obs/trace.hh"

namespace marvel::soc
{

const char *
runExitName(RunExit exit)
{
    switch (exit) {
      case RunExit::Exited: return "exited";
      case RunExit::Crashed: return "crashed";
      case RunExit::Timeout: return "timeout";
      case RunExit::Checkpoint: return "checkpoint";
      case RunExit::SwitchCpu: return "switch-cpu";
    }
    return "?";
}

System::System(const SystemConfig &cfg)
    : config(cfg), cpu(cfg.cpu), memory(cfg.memory),
      cluster(cfg.cluster),
      irqCtrl(irqModelFor(cfg.cpu.isa),
              std::max<std::size_t>(cfg.cluster.designs.size(), 1) + 1)
{
}

System::System(const System &other)
    : cpu::MmioBus(other), config(other.config), cpu(other.cpu),
      memory(other.memory), cluster(other.cluster),
      irqCtrl(other.irqCtrl), console(other.console),
      exited(other.exited), exitCode(other.exitCode),
      accelCrashed(other.accelCrashed), totalCycles(other.totalCycles)
{
    // Trace sinks are not owned; the copy starts without them.
    cpu.traceOut = nullptr;
    cpu.traceRef = nullptr;
    cpu.lineageOut = nullptr;
    cpu.tapRef = nullptr;
    cpu.tapPos = 0;
    cpu.tapDivergedAt = 0;
    cluster.setLineage(nullptr);
}

System &
System::operator=(const System &other)
{
    if (this == &other)
        return *this;
    config = other.config;
    cpu = other.cpu;
    memory = other.memory;
    cluster = other.cluster;
    irqCtrl = other.irqCtrl;
    console = other.console;
    exited = other.exited;
    exitCode = other.exitCode;
    accelCrashed = other.accelCrashed;
    totalCycles = other.totalCycles;
    cpu.traceOut = nullptr;
    cpu.traceRef = nullptr;
    cpu.lineageOut = nullptr;
    cpu.tapRef = nullptr;
    cpu.tapPos = 0;
    cpu.tapDivergedAt = 0;
    cluster.setLineage(nullptr);
    return *this;
}

void
System::regStats(stats::Group &root)
{
    stats::Group &sys = root.subgroup("system");
    sys.addFormula(
        "total_cycles",
        [this]() { return static_cast<double>(totalCycles); },
        "SoC clock cycles simulated");
    cpu.regStats(sys.subgroup("cpu"));
    memory.regStats(sys);
    if (!cluster.empty())
        cluster.regStats(root.subgroup("accel"));
}

stats::Snapshot
System::statsSnapshot()
{
    stats::Group root;
    regStats(root);
    return stats::Snapshot::capture(root);
}

void
System::loadProgram(const isa::Program &program)
{
    if (program.kind != config.cpu.isa)
        fatal("system: program compiled for %s but CPU is %s",
              isa::isaName(program.kind),
              isa::isaName(config.cpu.isa));
    memory.dram().write(kCodeBase, program.code.data(),
                        program.code.size());
    if (!program.dataImage.empty())
        memory.dram().write(kDataBase, program.dataImage.data(),
                            program.dataImage.size());
    cpu.reset(program.entry);
    exited = false;
    exitCode = 0;
    accelCrashed = false;
    totalCycles = 0;
    console.clear();
}

void
System::tick()
{
#ifndef MARVEL_OBS_DISABLED
    if (obs::enabled())
        obs::setNow(totalCycles);
#endif
    cpu.cycle(memory, *this);
    cluster.cycle(memory.dram(), totalCycles);
    for (std::size_t i = 0; i < cluster.size(); ++i)
        irqCtrl.setLine(static_cast<unsigned>(i),
                        cluster.unitC(i).irq());
    // Hand DRAM ranges tainted by accelerator drains to the CPU's
    // memory-taint tracker (lineage runs only).
    if (cpu.lineageOut) {
        for (std::size_t i = 0; i < cluster.size(); ++i) {
            auto &pending = cluster.unit(i).pendingLineageMemTaint();
            for (const auto &[lo, hi] : pending)
                cpu.lineageTaintMem(lo, hi);
            pending.clear();
        }
    }
    ++totalCycles;
}

RunExit
System::run(u64 maxCycles)
{
    for (u64 i = 0; i < maxCycles; ++i) {
        tick();
        if (exited)
            return RunExit::Exited;
        if (cpu.crashed() || cluster.errored()) {
            accelCrashed = cluster.errored();
            return RunExit::Crashed;
        }
        if (cpu.checkpointRequest) {
            cpu.checkpointRequest = false;
            return RunExit::Checkpoint;
        }
        if (cpu.switchCpuRequest) {
            cpu.switchCpuRequest = false;
            return RunExit::SwitchCpu;
        }
    }
    return RunExit::Timeout;
}

u64
System::mmioRead(Addr addr, unsigned size)
{
    (void)size;
    if (cluster.decodes(addr))
        return cluster.mmioRead(addr);
    return 0;
}

void
System::mmioWrite(Addr addr, u64 value, unsigned size)
{
    (void)size;
    if (addr == kMmioPutchar) {
        console.push_back(static_cast<char>(value & 0xff));
        return;
    }
    if (addr == kMmioExit) {
        exited = true;
        exitCode = static_cast<i64>(value);
        return;
    }
    if (cluster.decodes(addr)) {
        cluster.mmioWrite(addr, value);
        return;
    }
    // Writes to unmapped MMIO are dropped (like writes to a
    // non-existent device).
}

bool
System::irqPending()
{
    return irqCtrl.pending();
}

std::vector<u8>
System::outputWindow() const
{
    std::vector<u8> out(kOutputSize);
    memory.coherentRead(kOutputBase, out.data(), out.size());
    return out;
}

std::string
System::crashReason() const
{
    if (accelCrashed)
        return "accelerator-error";
    if (cpu.crashed())
        return cpu::crashKindName(cpu.crashKind);
    return "none";
}

} // namespace marvel::soc
