#include "soc/builder.hh"
#include <cstdio>

#include "accel/designs/designs.hh"
#include "common/log.hh"
#include "common/memmap.hh"

namespace marvel::soc
{

namespace
{

void
applyCacheSection(mem::CacheParams &params,
                  const ConfigFile::Section &sec)
{
    params.sizeBytes = static_cast<u32>(
        sec.getU64("size", params.sizeBytes));
    params.ways = static_cast<u32>(sec.getU64("ways", params.ways));
    params.lineSize = static_cast<u32>(
        sec.getU64("line", params.lineSize));
    params.hitLatency = static_cast<u32>(
        sec.getU64("latency", params.hitLatency));
}

} // namespace

SystemConfig
configFromText(const std::string &text)
{
    const ConfigFile cfg = ConfigFile::parse(text);
    SystemConfig sys;

    if (const auto *sec = cfg.first("system")) {
        sys.cpu.isa = isa::isaFromName(sec->get("isa", "riscv"));
        sys.clockGHz = sec->getDouble("clock_ghz", sys.clockGHz);
        if (sys.clockGHz <= 0)
            fatal("builder: clock_ghz must be positive (got %g)",
                  sys.clockGHz);
    }
    if (const auto *sec = cfg.first("cpu")) {
        sys.cpu.robSize =
            static_cast<unsigned>(sec->getU64("rob", sys.cpu.robSize));
        sys.cpu.iqSize =
            static_cast<unsigned>(sec->getU64("iq", sys.cpu.iqSize));
        sys.cpu.lqSize =
            static_cast<unsigned>(sec->getU64("lq", sys.cpu.lqSize));
        sys.cpu.sqSize =
            static_cast<unsigned>(sec->getU64("sq", sys.cpu.sqSize));
        sys.cpu.numIntPregs = static_cast<unsigned>(
            sec->getU64("int_pregs", sys.cpu.numIntPregs));
        sys.cpu.numFpPregs = static_cast<unsigned>(
            sec->getU64("fp_pregs", sys.cpu.numFpPregs));
        sys.cpu.issueWidth = static_cast<unsigned>(
            sec->getU64("issue_width", sys.cpu.issueWidth));
        sys.cpu.fetchWidth = static_cast<unsigned>(
            sec->getU64("fetch_width", sys.cpu.fetchWidth));
        sys.cpu.commitWidth = static_cast<unsigned>(
            sec->getU64("commit_width", sys.cpu.commitWidth));
        sys.cpu.storeDrainOverride = static_cast<int>(
            sec->getInt("store_drain", sys.cpu.storeDrainOverride));
    }
    if (const auto *sec = cfg.first("cache.l1i"))
        applyCacheSection(sys.memory.l1i, *sec);
    if (const auto *sec = cfg.first("cache.l1d"))
        applyCacheSection(sys.memory.l1d, *sec);
    if (const auto *sec = cfg.first("cache.l2"))
        applyCacheSection(sys.memory.l2, *sec);
    if (const auto *sec = cfg.first("memory"))
        sys.memory.memLatency = static_cast<u32>(
            sec->getU64("latency", sys.memory.memLatency));

    std::size_t accelIdx = 0;
    for (const auto *sec : cfg.named("accel")) {
        const std::string design = sec->require("design");
        const Addr base =
            kAccelSpaceBase + accelIdx * kAccelSpaceStride;
        if (design == "gemm_systolic") {
            // Systolic designs take their PE-grid geometry from the
            // config; the GEMM problem size is fixed by the design.
            accel::SystolicParams grid;
            grid.rows = static_cast<u32>(
                sec->getU64("rows", grid.rows));
            grid.cols = static_cast<u32>(
                sec->getU64("cols", grid.cols));
            grid.tileM = static_cast<u32>(
                sec->getU64("tile_m", grid.tileM));
            sys.cluster.designs.push_back(
                accel::designs::makeGemmSystolic(base, &grid));
        } else {
            sys.cluster.designs.push_back(
                accel::designs::makeByName(design, base));
        }
        ++accelIdx;
    }
    return sys;
}

SystemConfig
configFromFile(const std::string &path)
{
    const ConfigFile cfg = ConfigFile::parseFile(path);
    // Re-render through parse() to keep one code path.
    (void)cfg;
    std::string text;
    {
        // parseFile already validated; read again as text for
        // configFromText (files are tiny).
        FILE *f = std::fopen(path.c_str(), "rb");
        if (!f)
            fatal("builder: cannot open '%s'", path.c_str());
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    return configFromText(text);
}

SystemConfig
preset(const std::string &name)
{
    auto base = [](isa::IsaKind kind) {
        SystemConfig cfg;
        cfg.cpu.isa = kind; // the rest defaults to Table II
        return cfg;
    };
    auto withAllAccels = [](SystemConfig cfg) {
        std::size_t idx = 0;
        for (const std::string &d : accel::designs::allDesignNames()) {
            cfg.cluster.designs.push_back(accel::designs::makeByName(
                d, kAccelSpaceBase + idx * kAccelSpaceStride));
            ++idx;
        }
        return cfg;
    };
    if (name == "riscv")
        return base(isa::IsaKind::RISCV);
    if (name == "arm")
        return base(isa::IsaKind::ARM);
    if (name == "x86")
        return base(isa::IsaKind::X86);
    if (name == "riscv-soc")
        return withAllAccels(base(isa::IsaKind::RISCV));
    if (name == "arm-soc")
        return withAllAccels(base(isa::IsaKind::ARM));
    if (name == "x86-soc")
        return withAllAccels(base(isa::IsaKind::X86));
    fatal("builder: unknown preset '%s'", name.c_str());
}

std::string
configToText(const SystemConfig &config)
{
    std::string out;
    out += strfmt("[system]\nisa = %s\nclock_ghz = %g\n\n",
                  isa::isaName(config.cpu.isa), config.clockGHz);
    out += strfmt(
        "[cpu]\nrob = %u\niq = %u\nlq = %u\nsq = %u\n"
        "int_pregs = %u\nfp_pregs = %u\nissue_width = %u\n"
        "fetch_width = %u\ncommit_width = %u\nstore_drain = %d\n\n",
        config.cpu.robSize, config.cpu.iqSize, config.cpu.lqSize,
        config.cpu.sqSize, config.cpu.numIntPregs,
        config.cpu.numFpPregs, config.cpu.issueWidth,
        config.cpu.fetchWidth, config.cpu.commitWidth,
        config.cpu.storeDrainOverride);
    auto cacheSec = [&](const char *name,
                        const mem::CacheParams &params) {
        out += strfmt(
            "[cache.%s]\nsize = %u\nways = %u\nline = %u\n"
            "latency = %u\n\n",
            name, params.sizeBytes, params.ways, params.lineSize,
            params.hitLatency);
    };
    cacheSec("l1i", config.memory.l1i);
    cacheSec("l1d", config.memory.l1d);
    cacheSec("l2", config.memory.l2);
    out += strfmt("[memory]\nlatency = %u\n\n",
                  config.memory.memLatency);
    for (const auto &design : config.cluster.designs) {
        if (design.engineClass == accel::EngineClass::Systolic) {
            out += strfmt(
                "[accel]\ndesign = %s\nrows = %u\ncols = %u\n"
                "tile_m = %u\n\n",
                design.name.c_str(), design.systolic.rows,
                design.systolic.cols, design.systolic.tileM);
        } else {
            out += strfmt("[accel]\ndesign = %s\n\n",
                          design.name.c_str());
        }
    }
    return out;
}

} // namespace marvel::soc
