/**
 * @file
 * Checkpointing.
 *
 * gem5-MARVEL extends gem5's checkpoints to preserve *microarchitectural*
 * state (cache contents, queue occupancy) so fault injection can start
 * from any point without warm-up (paper §IV-B). Here a System is
 * value-semantic, so a checkpoint is a deep copy, and campaigns restore
 * thousands of times from one golden snapshot. A byte-serialization of
 * the architectural + memory state is also provided for persistence
 * and for cross-checking restore fidelity in tests.
 */

#ifndef MARVEL_SOC_CHECKPOINT_HH
#define MARVEL_SOC_CHECKPOINT_HH

#include <memory>
#include <vector>

#include "soc/system.hh"

namespace marvel::soc
{

/**
 * A full-fidelity snapshot of an SoC.
 */
class Checkpoint
{
  public:
    Checkpoint() = default;

    /** Capture the complete state of a system. */
    static Checkpoint
    take(const System &system)
    {
        Checkpoint cp;
        cp.snapshot_ = std::make_shared<const System>(system);
        return cp;
    }

    bool valid() const { return snapshot_ != nullptr; }

    /** Materialize a fresh system from the snapshot. */
    System
    restore() const
    {
        return System(*snapshot_);
    }

    /** Read-only view of the captured state. */
    const System &view() const { return *snapshot_; }

  private:
    std::shared_ptr<const System> snapshot_;
};

/**
 * Serialize the architectural + memory state (not timing queues) of a
 * system to bytes; used for persistence and restore-fidelity checks.
 */
std::vector<u8> serializeArchState(const System &system);

/** Digest (FNV-1a) of serializeArchState, for cheap comparisons. */
u64 archStateDigest(const System &system);

} // namespace marvel::soc

#endif // MARVEL_SOC_CHECKPOINT_HH
