/**
 * @file
 * Hierarchical statistics framework (gem5-`Stats`-style).
 *
 * Components own plain value-type stat leaves (Counter, Histogram,
 * Distribution) as ordinary members, so a soc::System copy — the
 * checkpoint-restore mechanism — carries its statistics with it and
 * every restored faulty run starts from the golden baseline. Unlike
 * gem5 there is no static registration at construction time: the
 * named tree (Group) is built on demand against one specific live
 * system via the components' regStats(Group&) methods, then flattened
 * into an immutable Snapshot of dotted-name entries
 * (system.cpu.rob.occupancy, system.l1d.misses, ...). The tree is
 * transient; the Snapshot is the exchange format for the exporters
 * and for stats::diff (golden vs faulty).
 *
 * Formula nodes close over component state and are evaluated lazily
 * at snapshot time, which lets derived rates (miss ratio, IPC) and
 * legacy raw-u64 members join the tree without storage changes.
 *
 * Building with -DMARVEL_STATS_DISABLED compiles every update site
 * (inc/sample) down to nothing so bench_simspeed can quantify the
 * instrumentation overhead against a stats-free build.
 */

#ifndef MARVEL_STATS_STATS_HH
#define MARVEL_STATS_STATS_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace marvel::stats
{

/** Monotonic event count. One add per event on the hot path. */
class Counter
{
  public:
    void
    inc(u64 n = 1)
    {
#ifndef MARVEL_STATS_DISABLED
        value_ += n;
#else
        (void)n;
#endif
    }

    u64 value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    u64 value_ = 0;
};

/**
 * Running scalar distribution: count / sum / min / max / squares.
 * Used where per-sample magnitude matters but bucket shape does not.
 */
class Distribution
{
  public:
    void
    sample(double v, u64 n = 1)
    {
#ifndef MARVEL_STATS_DISABLED
        if (n == 0)
            return;
        if (samples_ == 0 || v < min_)
            min_ = v;
        if (samples_ == 0 || v > max_)
            max_ = v;
        samples_ += n;
        sum_ += v * static_cast<double>(n);
        squares_ += v * v * static_cast<double>(n);
#else
        (void)v;
        (void)n;
#endif
    }

    u64 samples() const { return samples_; }
    double sum() const { return sum_; }
    double min() const { return samples_ ? min_ : 0.0; }
    double max() const { return samples_ ? max_ : 0.0; }

    double
    mean() const
    {
        return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
    }

    /** Population variance, clamped at zero against rounding. */
    double variance() const;
    double stddev() const;

    void
    reset()
    {
        samples_ = 0;
        sum_ = squares_ = min_ = max_ = 0.0;
    }

  private:
    u64 samples_ = 0;
    double sum_ = 0.0;
    double squares_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Linear-bucket histogram over [lo, hi) with underflow/overflow bins.
 * Occupancy signals (ROB, LQ/SQ, live physical registers) use this;
 * the bucket shape is what the paper's AVF discussion (SV-B..F)
 * correlates against.
 */
class Histogram
{
  public:
    Histogram() = default;

    /**
     * Configure nBuckets equal-width buckets spanning [lo, hi).
     * Re-initialising clears accumulated samples.
     */
    void init(double lo, double hi, std::size_t nBuckets);

    void
    sample(double v, u64 n = 1)
    {
#ifndef MARVEL_STATS_DISABLED
        if (n == 0 || buckets_.empty())
            return;
        if (samples_ == 0 || v < min_)
            min_ = v;
        if (samples_ == 0 || v > max_)
            max_ = v;
        samples_ += n;
        sum_ += v * static_cast<double>(n);
        if (v < lo_) {
            underflow_ += n;
        } else if (v >= hi_) {
            overflow_ += n;
        } else {
            std::size_t idx = static_cast<std::size_t>(
                (v - lo_) * invWidth_);
            if (idx >= buckets_.size())
                idx = buckets_.size() - 1;
            buckets_[idx] += n;
        }
#else
        (void)v;
        (void)n;
#endif
    }

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double bucketWidth() const { return width_; }
    const std::vector<u64> &buckets() const { return buckets_; }
    u64 underflow() const { return underflow_; }
    u64 overflow() const { return overflow_; }
    u64 samples() const { return samples_; }
    double sum() const { return sum_; }
    double min() const { return samples_ ? min_ : 0.0; }
    double max() const { return samples_ ? max_ : 0.0; }

    double
    mean() const
    {
        return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
    }

    void reset();

  private:
    double lo_ = 0.0;
    double hi_ = 0.0;
    double width_ = 0.0;
    double invWidth_ = 0.0;
    std::vector<u64> buckets_;
    u64 underflow_ = 0;
    u64 overflow_ = 0;
    u64 samples_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Derived value computed at snapshot time (miss rate, IPC, ...). */
using Formula = std::function<double()>;

/**
 * One level of the stats hierarchy. Borrows pointers into live
 * components; valid only while the system it was built against is
 * alive and unmoved. Build, snapshot/reset, discard.
 */
class Group
{
  public:
    explicit Group(std::string name = "") : name_(std::move(name)) {}

    /** Child group, created on first use, reused after. */
    Group &subgroup(const std::string &name);

    void addCounter(const std::string &name, Counter *c,
                    const std::string &desc = "");
    void addDistribution(const std::string &name, Distribution *d,
                         const std::string &desc = "");
    void addHistogram(const std::string &name, Histogram *h,
                      const std::string &desc = "");
    void addFormula(const std::string &name, Formula f,
                    const std::string &desc = "");

    /**
     * Zero every registered leaf, recursively. Formulas are excluded —
     * they have no storage of their own.
     */
    void reset();

    const std::string &name() const { return name_; }

  private:
    friend class Snapshot;

    enum class Kind { Counter, Distribution, Histogram, Formula };

    struct Leaf
    {
        std::string name;
        std::string desc;
        Kind kind = Kind::Counter;
        Counter *counter = nullptr;
        Distribution *dist = nullptr;
        Histogram *hist = nullptr;
        Formula formula;
    };

    std::string name_;
    std::vector<Leaf> leaves_;
    // Insertion-ordered children: dump order follows registration
    // order (cpu before caches before accel), not lexicographic.
    std::vector<std::unique_ptr<Group>> children_;
};

/** Leaf type tag carried through snapshots and exporters. */
enum class EntryKind { Counter, Distribution, Histogram, Formula };

/** One flattened stat: full dotted path plus every captured facet. */
struct SnapshotEntry
{
    std::string path; ///< full dotted name, e.g. "system.l1d.misses"
    std::string desc;
    EntryKind kind = EntryKind::Counter;
    /** Scalar view: counter count, formula result, dist/hist mean. */
    double value = 0.0;
    // Distribution / histogram facets (zero elsewhere).
    u64 samples = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double stddev = 0.0;
    // Histogram-only facets.
    double bucketLo = 0.0;
    double bucketWidth = 0.0;
    std::vector<u64> buckets;
    u64 underflow = 0;
    u64 overflow = 0;
};

/** Flat, ordered dump of a stats tree at one instant. */
class Snapshot
{
  public:
    Snapshot() = default;

    /** Capture every leaf under root (formulas evaluated now). */
    static Snapshot capture(const Group &root);

    const std::vector<SnapshotEntry> &entries() const { return entries_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** Lookup by full dotted path; nullptr when absent. */
    const SnapshotEntry *find(const std::string &path) const;

  private:
    static void captureGroup(const Group &group,
                             const std::string &prefix,
                             std::vector<SnapshotEntry> &out);

    std::vector<SnapshotEntry> entries_;
};

/**
 * gem5-style flat text dump: one "name  value  # desc" line per
 * scalar, with ::mean / ::samples / bucket sublines for histograms
 * and distributions.
 */
std::string formatText(const Snapshot &snap);

/** Stable JSON document: {"version":1,"stats":[{...}, ...]}. */
std::string formatJson(const Snapshot &snap);

} // namespace marvel::stats

#endif // MARVEL_STATS_STATS_HH
