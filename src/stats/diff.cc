#include "stats/diff.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/log.hh"

namespace marvel::stats
{

namespace
{

/** Scalar facets of one snapshot, keyed by facet path. */
std::map<std::string, double>
flatten(const Snapshot &snap)
{
    std::map<std::string, double> out;
    for (const auto &e : snap.entries()) {
        switch (e.kind) {
          case EntryKind::Counter:
          case EntryKind::Formula:
            out[e.path] = e.value;
            break;
          case EntryKind::Distribution:
          case EntryKind::Histogram:
            // Mean + samples capture both shape shift and volume
            // shift; buckets are too noisy to rank individually.
            out[e.path + "::mean"] = e.value;
            out[e.path + "::samples"] =
                static_cast<double>(e.samples);
            out[e.path + "::max"] = e.max;
            break;
        }
    }
    return out;
}

} // namespace

DiffReport
diff(const Snapshot &golden, const Snapshot &faulty)
{
    const auto g = flatten(golden);
    const auto f = flatten(faulty);

    DiffReport report;
    for (const auto &[path, gv] : g) {
        auto it = f.find(path);
        if (it == f.end()) {
            ++report.unmatched;
            continue;
        }
        ++report.compared;
        const double fv = it->second;
        if (gv == fv)
            continue;
        DiffEntry e;
        e.path = path;
        e.golden = gv;
        e.faulty = fv;
        e.delta = fv - gv;
        e.score = std::abs(e.delta) / std::max(std::abs(gv), 1.0);
        report.entries.push_back(std::move(e));
    }
    for (const auto &[path, fv] : f) {
        (void)fv;
        if (!g.count(path))
            ++report.unmatched;
    }

    std::stable_sort(report.entries.begin(), report.entries.end(),
                     [](const DiffEntry &a, const DiffEntry &b) {
                         return a.score > b.score;
                     });
    return report;
}

namespace
{

std::string
fmtNum(double v)
{
    if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15)
        return strfmt("%lld", static_cast<long long>(v));
    return strfmt("%.4f", v);
}

} // namespace

std::string
DiffReport::format(std::size_t topN) const
{
    std::string out;
    if (identical()) {
        out = strfmt("stats diff: no divergence (%zu facets compared)\n",
                     compared);
        return out;
    }
    out = strfmt("stats diff: %zu of %zu facets diverged",
                 entries.size(), compared);
    if (unmatched)
        out += strfmt(" (%zu unmatched paths)", unmatched);
    out += '\n';
    out += strfmt("  %-44s %14s %14s %12s\n", "stat", "golden",
                  "faulty", "delta");
    const std::size_t n = std::min(topN, entries.size());
    for (std::size_t i = 0; i < n; ++i) {
        const DiffEntry &e = entries[i];
        const std::string delta =
            (e.delta > 0 ? "+" : "") + fmtNum(e.delta);
        out += strfmt("  %-44s %14s %14s %12s\n", e.path.c_str(),
                      fmtNum(e.golden).c_str(),
                      fmtNum(e.faulty).c_str(), delta.c_str());
    }
    if (entries.size() > n)
        out += strfmt("  ... %zu more below threshold\n",
                      entries.size() - n);
    return out;
}

} // namespace marvel::stats
