/**
 * @file
 * Golden-vs-faulty statistics divergence.
 *
 * stats::diff flattens two Snapshots of the same system into scalar
 * facets (counter values, formula results, distribution/histogram
 * means and sample counts) and ranks every facet that moved by
 * normalised magnitude |faulty - golden| / max(|golden|, 1). The
 * result is the aggregate complement to obs fault lineage: lineage
 * says WHERE the corruption travelled, the stats diff says WHICH
 * microarchitectural activity changed because of it (extra squashes,
 * replayed loads, cache refills, longer residency).
 *
 * marvel-trace prints the report next to the lineage summary when
 * replaying a journaled verdict.
 */

#ifndef MARVEL_STATS_DIFF_HH
#define MARVEL_STATS_DIFF_HH

#include <cstddef>
#include <string>
#include <vector>

#include "stats/stats.hh"

namespace marvel::stats
{

/** One diverging scalar facet between two snapshots. */
struct DiffEntry
{
    std::string path;   ///< facet path, e.g. "system.cpu.squashes"
    double golden = 0.0;
    double faulty = 0.0;
    double delta = 0.0; ///< faulty - golden
    /** |delta| / max(|golden|, 1): comparable across magnitudes. */
    double score = 0.0;
};

/** Ranked divergence between a golden and a faulty snapshot. */
struct DiffReport
{
    /** Facets that moved, sorted by descending score. */
    std::vector<DiffEntry> entries;
    /** Scalar facets compared (including the unchanged ones). */
    std::size_t compared = 0;
    /** Paths present in only one snapshot (should be none). */
    std::size_t unmatched = 0;

    bool identical() const { return entries.empty(); }

    /** Human-readable table of the top-N divergences. */
    std::string format(std::size_t topN = 16) const;
};

/** Compare two snapshots of the same stats tree. */
DiffReport diff(const Snapshot &golden, const Snapshot &faulty);

} // namespace marvel::stats

#endif // MARVEL_STATS_DIFF_HH
