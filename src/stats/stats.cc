#include "stats/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace marvel::stats
{

double
Distribution::variance() const
{
    if (samples_ < 2)
        return 0.0;
    const double n = static_cast<double>(samples_);
    const double m = sum_ / n;
    const double v = squares_ / n - m * m;
    return v > 0 ? v : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::init(double lo, double hi, std::size_t nBuckets)
{
    if (!(hi > lo) || nBuckets == 0)
        fatal("Histogram::init: need hi > lo and nBuckets > 0 "
              "(got [%g, %g) x %zu)", lo, hi, nBuckets);
    lo_ = lo;
    hi_ = hi;
    width_ = (hi - lo) / static_cast<double>(nBuckets);
    invWidth_ = 1.0 / width_;
    buckets_.assign(nBuckets, 0);
    underflow_ = overflow_ = samples_ = 0;
    sum_ = min_ = max_ = 0.0;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = samples_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Group &
Group::subgroup(const std::string &name)
{
    for (auto &child : children_)
        if (child->name_ == name)
            return *child;
    children_.push_back(std::make_unique<Group>(name));
    return *children_.back();
}

void
Group::addCounter(const std::string &name, Counter *c,
                  const std::string &desc)
{
    Leaf leaf;
    leaf.name = name;
    leaf.desc = desc;
    leaf.kind = Kind::Counter;
    leaf.counter = c;
    leaves_.push_back(std::move(leaf));
}

void
Group::addDistribution(const std::string &name, Distribution *d,
                       const std::string &desc)
{
    Leaf leaf;
    leaf.name = name;
    leaf.desc = desc;
    leaf.kind = Kind::Distribution;
    leaf.dist = d;
    leaves_.push_back(std::move(leaf));
}

void
Group::addHistogram(const std::string &name, Histogram *h,
                    const std::string &desc)
{
    Leaf leaf;
    leaf.name = name;
    leaf.desc = desc;
    leaf.kind = Kind::Histogram;
    leaf.hist = h;
    leaves_.push_back(std::move(leaf));
}

void
Group::addFormula(const std::string &name, Formula f,
                  const std::string &desc)
{
    Leaf leaf;
    leaf.name = name;
    leaf.desc = desc;
    leaf.kind = Kind::Formula;
    leaf.formula = std::move(f);
    leaves_.push_back(std::move(leaf));
}

void
Group::reset()
{
    for (auto &leaf : leaves_) {
        switch (leaf.kind) {
          case Kind::Counter: leaf.counter->reset(); break;
          case Kind::Distribution: leaf.dist->reset(); break;
          case Kind::Histogram: leaf.hist->reset(); break;
          case Kind::Formula: break;
        }
    }
    for (auto &child : children_)
        child->reset();
}

Snapshot
Snapshot::capture(const Group &root)
{
    Snapshot snap;
    captureGroup(root, root.name(), snap.entries_);
    return snap;
}

void
Snapshot::captureGroup(const Group &group, const std::string &prefix,
                       std::vector<SnapshotEntry> &out)
{
    // Walk leaves in registration order, then recurse into children.
    const Group &g = group;

    for (const auto &leaf : g.leaves_) {
        SnapshotEntry e;
        e.path = prefix.empty() ? leaf.name : prefix + "." + leaf.name;
        e.desc = leaf.desc;
        switch (leaf.kind) {
          case Group::Kind::Counter:
            e.kind = EntryKind::Counter;
            e.value = static_cast<double>(leaf.counter->value());
            break;
          case Group::Kind::Distribution:
            e.kind = EntryKind::Distribution;
            e.value = leaf.dist->mean();
            e.samples = leaf.dist->samples();
            e.sum = leaf.dist->sum();
            e.min = leaf.dist->min();
            e.max = leaf.dist->max();
            e.stddev = leaf.dist->stddev();
            break;
          case Group::Kind::Histogram:
            e.kind = EntryKind::Histogram;
            e.value = leaf.hist->mean();
            e.samples = leaf.hist->samples();
            e.sum = leaf.hist->sum();
            e.min = leaf.hist->min();
            e.max = leaf.hist->max();
            e.bucketLo = leaf.hist->lo();
            e.bucketWidth = leaf.hist->bucketWidth();
            e.buckets = leaf.hist->buckets();
            e.underflow = leaf.hist->underflow();
            e.overflow = leaf.hist->overflow();
            break;
          case Group::Kind::Formula:
            e.kind = EntryKind::Formula;
            e.value = leaf.formula ? leaf.formula() : 0.0;
            break;
        }
        out.push_back(std::move(e));
    }

    for (const auto &child : g.children_) {
        const std::string childPrefix =
            prefix.empty() ? child->name()
                           : prefix + "." + child->name();
        captureGroup(*child, childPrefix, out);
    }
}

const SnapshotEntry *
Snapshot::find(const std::string &path) const
{
    for (const auto &e : entries_)
        if (e.path == path)
            return &e;
    return nullptr;
}

namespace
{

/** Print doubles like gem5: integers without the trailing ".000000". */
std::string
fmtNum(double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
        std::abs(v) < 1e15) {
        return strfmt("%lld", static_cast<long long>(v));
    }
    return strfmt("%.6f", v);
}

void
textLine(std::string &out, const std::string &name,
         const std::string &value, const std::string &desc)
{
    out += strfmt("%-52s %14s", name.c_str(), value.c_str());
    if (!desc.empty()) {
        out += " # ";
        out += desc;
    }
    out += '\n';
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** JSON-safe number: NaN/Inf have no literal, emit 0. */
std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "0";
    if (v == std::floor(v) && std::abs(v) < 1e15)
        return strfmt("%lld", static_cast<long long>(v));
    return strfmt("%.9g", v);
}

const char *
kindName(EntryKind kind)
{
    switch (kind) {
      case EntryKind::Counter: return "counter";
      case EntryKind::Distribution: return "distribution";
      case EntryKind::Histogram: return "histogram";
      case EntryKind::Formula: return "formula";
    }
    return "unknown";
}

} // namespace

std::string
formatText(const Snapshot &snap)
{
    std::string out;
    out.reserve(snap.size() * 80);
    for (const auto &e : snap.entries()) {
        switch (e.kind) {
          case EntryKind::Counter:
          case EntryKind::Formula:
            textLine(out, e.path, fmtNum(e.value), e.desc);
            break;
          case EntryKind::Distribution:
            textLine(out, e.path + "::samples",
                     fmtNum(static_cast<double>(e.samples)), e.desc);
            textLine(out, e.path + "::mean", fmtNum(e.value), "");
            textLine(out, e.path + "::stdev", fmtNum(e.stddev), "");
            textLine(out, e.path + "::min", fmtNum(e.min), "");
            textLine(out, e.path + "::max", fmtNum(e.max), "");
            break;
          case EntryKind::Histogram:
            textLine(out, e.path + "::samples",
                     fmtNum(static_cast<double>(e.samples)), e.desc);
            textLine(out, e.path + "::mean", fmtNum(e.value), "");
            textLine(out, e.path + "::min", fmtNum(e.min), "");
            textLine(out, e.path + "::max", fmtNum(e.max), "");
            if (e.underflow) {
                textLine(out, e.path + "::underflow",
                         fmtNum(static_cast<double>(e.underflow)), "");
            }
            for (std::size_t i = 0; i < e.buckets.size(); ++i) {
                if (!e.buckets[i])
                    continue; // sparse dump: empty buckets add noise
                const double blo =
                    e.bucketLo + static_cast<double>(i) * e.bucketWidth;
                textLine(out,
                         strfmt("%s::%s-%s", e.path.c_str(),
                                fmtNum(blo).c_str(),
                                fmtNum(blo + e.bucketWidth).c_str()),
                         fmtNum(static_cast<double>(e.buckets[i])), "");
            }
            if (e.overflow) {
                textLine(out, e.path + "::overflow",
                         fmtNum(static_cast<double>(e.overflow)), "");
            }
            break;
        }
    }
    return out;
}

std::string
formatJson(const Snapshot &snap)
{
    std::string out = "{\"version\":1,\"stats\":[";
    bool first = true;
    for (const auto &e : snap.entries()) {
        if (!first)
            out += ',';
        first = false;
        out += strfmt("{\"name\":\"%s\",\"kind\":\"%s\",\"value\":%s",
                      jsonEscape(e.path).c_str(), kindName(e.kind),
                      jsonNum(e.value).c_str());
        if (!e.desc.empty())
            out += strfmt(",\"desc\":\"%s\"",
                          jsonEscape(e.desc).c_str());
        if (e.kind == EntryKind::Distribution ||
            e.kind == EntryKind::Histogram) {
            out += strfmt(",\"samples\":%llu,\"sum\":%s,\"min\":%s,"
                          "\"max\":%s",
                          static_cast<unsigned long long>(e.samples),
                          jsonNum(e.sum).c_str(),
                          jsonNum(e.min).c_str(),
                          jsonNum(e.max).c_str());
        }
        if (e.kind == EntryKind::Distribution)
            out += strfmt(",\"stddev\":%s", jsonNum(e.stddev).c_str());
        if (e.kind == EntryKind::Histogram) {
            out += strfmt(",\"bucket_lo\":%s,\"bucket_width\":%s,"
                          "\"underflow\":%llu,\"overflow\":%llu,"
                          "\"buckets\":[",
                          jsonNum(e.bucketLo).c_str(),
                          jsonNum(e.bucketWidth).c_str(),
                          static_cast<unsigned long long>(e.underflow),
                          static_cast<unsigned long long>(e.overflow));
            for (std::size_t i = 0; i < e.buckets.size(); ++i) {
                if (i)
                    out += ',';
                out += strfmt(
                    "%llu",
                    static_cast<unsigned long long>(e.buckets[i]));
            }
            out += ']';
        }
        out += '}';
    }
    out += "]}";
    return out;
}

} // namespace marvel::stats
