/**
 * @file
 * "Automotive" MiBench kernels: basicmath, bitcount, qsort.
 */

#include "common/memmap.hh"
#include <cstring>

#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace marvel::workloads
{

using mir::FunctionBuilder;
using mir::ModuleBuilder;
using mir::VReg;

namespace
{

std::vector<u8>
randomBytes(u64 seed, std::size_t count)
{
    Rng rng(seed);
    std::vector<u8> out(count);
    for (auto &b : out)
        b = static_cast<u8>(rng.below(256));
    return out;
}

std::vector<u8>
randomWords(u64 seed, std::size_t count, u64 modulus = 0)
{
    Rng rng(seed);
    std::vector<u8> out(count * 8);
    for (std::size_t i = 0; i < count; ++i) {
        u64 v = rng();
        if (modulus)
            v %= modulus;
        std::memcpy(out.data() + i * 8, &v, 8);
    }
    return out;
}

} // namespace

// =====================================================================
// qsort — iterative Lomuto quicksort of 512 words with an explicit
// range stack; the sorted array and a checksum land in OUTPUT.
// =====================================================================

Workload
makeQsort()
{
    const unsigned n = 1024;
    ModuleBuilder mb;
    mb.globalInit("data",
                  randomWords(detail::dataSeed("qsort"), n), 64);
    mb.global("stack_lo", 256 * 8);
    mb.global("stack_hi", 256 * 8);

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg data = fb.gaddr("data");
    VReg stackLo = fb.gaddr("stack_lo");
    VReg stackHi = fb.gaddr("stack_hi");
    detail::emitWarmup(fb, data, n * 8);
    fb.checkpoint();

    // push (0, n-1)
    fb.st8(stackLo, fb.constI(0));
    fb.st8(stackHi, fb.constI(n - 1));
    VReg sp = fb.constI(1);
    VReg zero = fb.constI(0);

    auto workHead = fb.newBlock();
    auto workBody = fb.newBlock();
    auto workExit = fb.newBlock();
    fb.jmp(workHead);
    fb.setBlock(workHead);
    fb.br(fb.cmpLt(zero, sp), workBody, workExit);
    fb.setBlock(workBody);
    {
        fb.assign(sp, fb.addI(sp, -1));
        VReg spOff = fb.shlI(sp, 3);
        VReg lo = fb.ld8(fb.add(stackLo, spOff));
        VReg hi = fb.ld8(fb.add(stackHi, spOff));
        auto partition = fb.newBlock();
        auto nextItem = fb.newBlock();
        fb.br(fb.cmpLt(lo, hi), partition, nextItem);
        fb.setBlock(partition);
        {
            VReg pivot = fb.ld8(fb.add(data, fb.shlI(hi, 3)));
            VReg i = fb.mov(lo);
            auto jLoop = fb.beginLoop(lo, hi);
            {
                VReg jAddr = fb.add(data, fb.shlI(jLoop.idx, 3));
                VReg vj = fb.ld8(jAddr);
                auto doSwap = fb.newBlock();
                auto noSwap = fb.newBlock();
                fb.br(fb.cmpLeU(vj, pivot), doSwap, noSwap);
                fb.setBlock(doSwap);
                VReg iAddr = fb.add(data, fb.shlI(i, 3));
                VReg vi = fb.ld8(iAddr);
                fb.st8(iAddr, vj);
                fb.st8(jAddr, vi);
                fb.assign(i, fb.addI(i, 1));
                fb.jmp(noSwap);
                fb.setBlock(noSwap);
            }
            fb.endLoop(jLoop);
            // swap a[i], a[hi]
            VReg iAddr = fb.add(data, fb.shlI(i, 3));
            VReg hAddr = fb.add(data, fb.shlI(hi, 3));
            VReg vi = fb.ld8(iAddr);
            fb.st8(iAddr, fb.ld8(hAddr));
            fb.st8(hAddr, vi);
            // push (lo, i-1) and (i+1, hi)
            VReg off1 = fb.shlI(sp, 3);
            fb.st8(fb.add(stackLo, off1), lo);
            fb.st8(fb.add(stackHi, off1), fb.addI(i, -1));
            fb.assign(sp, fb.addI(sp, 1));
            VReg off2 = fb.shlI(sp, 3);
            fb.st8(fb.add(stackLo, off2), fb.addI(i, 1));
            fb.st8(fb.add(stackHi, off2), hi);
            fb.assign(sp, fb.addI(sp, 1));
            fb.jmp(nextItem);
        }
        fb.setBlock(nextItem);
        fb.jmp(workHead);
    }
    fb.setBlock(workExit);

    fb.switchCpu();
    // Copy the sorted array to OUTPUT and return a checksum.
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    VReg sum = fb.constI(0);
    auto copy = fb.beginLoop(fb.constI(0), fb.constI(n));
    {
        VReg off = fb.shlI(copy.idx, 3);
        VReg v = fb.ld8(fb.add(data, off));
        fb.st8(fb.add(out, off), v);
        fb.assign(sum, fb.add(sum, v));
    }
    fb.endLoop(copy);
    fb.ret(fb.band(sum, fb.constI(0x7fffffff)));
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"qsort", mb.module(), 1.0};
}

// =====================================================================
// bitcount — three bit-counting strategies over 1024 words (MiBench
// bitcnts runs a suite of counters).
// =====================================================================

Workload
makeBitcount()
{
    const unsigned n = 1024;
    ModuleBuilder mb;
    mb.globalInit("data",
                  randomWords(detail::dataSeed("bitcount"), n), 64);
    // 16-entry nibble popcount table.
    std::vector<u8> table(16 * 8, 0);
    for (unsigned i = 0; i < 16; ++i)
        table[i * 8] = static_cast<u8>(__builtin_popcount(i));
    mb.globalInit("nibble_table", table, 64);

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg data = fb.gaddr("data");
    VReg table_ = fb.gaddr("nibble_table");
    detail::emitWarmup(fb, data, n * 8);
    fb.checkpoint();

    VReg sumA = fb.constI(0); // Kernighan
    VReg sumB = fb.constI(0); // nibble table
    VReg sumC = fb.constI(0); // shift-and-add
    VReg zero = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(n));
    {
        VReg v = fb.ld8(fb.add(data, fb.shlI(loop.idx, 3)));

        // (a) Kernighan: while (x) { x &= x-1; ++count; }
        VReg x = fb.mov(v);
        auto kHead = fb.newBlock();
        auto kBody = fb.newBlock();
        auto kExit = fb.newBlock();
        fb.jmp(kHead);
        fb.setBlock(kHead);
        fb.br(fb.cmpNe(x, zero), kBody, kExit);
        fb.setBlock(kBody);
        fb.assign(x, fb.band(x, fb.addI(x, -1)));
        fb.assign(sumA, fb.addI(sumA, 1));
        fb.jmp(kHead);
        fb.setBlock(kExit);

        // (b) nibble table over 16 nibbles
        VReg y = fb.mov(v);
        auto nLoop = fb.beginLoop(fb.constI(0), fb.constI(16));
        {
            VReg nib = fb.band(y, fb.constI(15));
            VReg cnt = fb.ld8(fb.add(table_, fb.shlI(nib, 3)));
            fb.assign(sumB, fb.add(sumB, cnt));
            fb.assign(y, fb.shr(y, fb.constI(4)));
        }
        fb.endLoop(nLoop);

        // (c) parallel shift-add popcount
        VReg m1 = fb.constI(0x5555555555555555ll);
        VReg m2 = fb.constI(0x3333333333333333ll);
        VReg m4 = fb.constI(0x0f0f0f0f0f0f0f0fll);
        VReg h01 = fb.constI(0x0101010101010101ll);
        VReg z = fb.sub(v, fb.band(fb.shr(v, fb.constI(1)), m1));
        fb.assign(z, fb.add(fb.band(z, m2),
                            fb.band(fb.shr(z, fb.constI(2)), m2)));
        fb.assign(z, fb.band(fb.add(z, fb.shr(z, fb.constI(4))), m4));
        fb.assign(z, fb.shr(fb.mul(z, h01), fb.constI(56)));
        fb.assign(sumC, fb.add(sumC, z));
    }
    fb.endLoop(loop);

    fb.switchCpu();
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    fb.st8(out, sumA, 0);
    fb.st8(out, sumB, 8);
    fb.st8(out, sumC, 16);
    fb.ret(sumC);
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"bitcount", mb.module(), 3.0};
}

// =====================================================================
// basicmath — square roots, angle conversions, and cubic evaluation
// over 192 values (MiBench basicmath_small flavour).
// =====================================================================

Workload
makeBasicmath()
{
    const unsigned n = 384;
    ModuleBuilder mb;
    {
        Rng rng(detail::dataSeed("basicmath"));
        std::vector<u8> init(n * 8);
        for (unsigned i = 0; i < n; ++i) {
            const double v = 1.0 + rng.uniform() * 999.0;
            std::memcpy(init.data() + i * 8, &v, 8);
        }
        mb.globalInit("values", init, 64);
    }

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg values = fb.gaddr("values");
    detail::emitWarmup(fb, values, n * 8);
    fb.checkpoint();

    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    VReg degToRad = fb.constF(3.14159265358979323846 / 180.0);
    VReg isqrtSum = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(n));
    {
        VReg off = fb.shlI(loop.idx, 3);
        VReg x = fb.ldf8(fb.add(values, off));
        // sqrt + angle conversion + cubic polynomial
        VReg root = fb.fsqrt(x);
        VReg rad = fb.fmul(x, degToRad);
        VReg x2 = fb.fmul(x, x);
        VReg x3 = fb.fmul(x2, x);
        VReg cubic =
            fb.fsub(fb.fadd(x3, fb.fmul(fb.constF(-3.5), x2)),
                    fb.fadd(fb.fmul(fb.constF(2.0), x),
                            fb.constF(-7.0)));
        VReg mix = fb.fadd(root, fb.fadd(rad, cubic));
        fb.stf8(fb.add(out, off), mix);
        // Integer square root via Newton iterations.
        VReg xi = fb.ftoi(x);
        VReg guess = fb.mov(xi);
        auto newton = fb.beginLoop(fb.constI(0), fb.constI(6));
        {
            VReg q = fb.div(xi, fb.bor(guess, fb.constI(1)));
            fb.assign(guess,
                      fb.shr(fb.add(guess, q), fb.constI(1)));
        }
        fb.endLoop(newton);
        fb.assign(isqrtSum, fb.add(isqrtSum, guess));
    }
    fb.endLoop(loop);

    fb.switchCpu();
    fb.st8(fb.constI(static_cast<i64>(kOutputBase + n * 8)),
           isqrtSum);
    fb.ret(isqrtSum);
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"basicmath", mb.module(), 4.0};
}

} // namespace marvel::workloads
