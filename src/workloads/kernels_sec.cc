/**
 * @file
 * Security/office MiBench kernels: sha, rijndael, stringsearch.
 */

#include <algorithm>
#include <cstring>

#include "common/memmap.hh"
#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace marvel::workloads
{

using mir::FunctionBuilder;
using mir::ModuleBuilder;
using mir::VReg;

namespace
{

/** rotl32 in MIR (result masked to 32 bits). */
VReg
emitRotl32(FunctionBuilder &fb, VReg x, unsigned amount)
{
    VReg mask = fb.constI(0xffffffffll);
    VReg left = fb.shl(x, fb.constI(amount));
    VReg right = fb.shr(fb.band(x, mask), fb.constI(32 - amount));
    return fb.band(fb.bor(left, right), mask);
}

} // namespace

// =====================================================================
// sha — SHA-1 over a 1 KiB message (16 blocks of 64 bytes), word
// schedule kept in a scratch global.
// =====================================================================

Workload
makeSha()
{
    const unsigned msgBytes = 1024;
    const unsigned blocks = msgBytes / 64;
    ModuleBuilder mb;
    {
        Rng rng(detail::dataSeed("sha"));
        std::vector<u8> msg(msgBytes);
        for (auto &b : msg)
            b = static_cast<u8>(rng.below(256));
        mb.globalInit("message", msg, 64);
    }
    mb.global("schedule", 80 * 8);

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg message = fb.gaddr("message");
    VReg sched = fb.gaddr("schedule");
    detail::emitWarmup(fb, message, msgBytes);
    fb.checkpoint();

    VReg mask = fb.constI(0xffffffffll);
    VReg h0 = fb.constI(0x67452301ll);
    VReg h1 = fb.constI(0xefcdab89ll);
    VReg h2 = fb.constI(0x98badcfell);
    VReg h3 = fb.constI(0x10325476ll);
    VReg h4 = fb.constI(0xc3d2e1f0ll);

    auto blockLoop = fb.beginLoop(fb.constI(0), fb.constI(blocks));
    {
        VReg blockBase =
            fb.add(message, fb.shlI(blockLoop.idx, 6));
        // Load 16 words.
        auto load = fb.beginLoop(fb.constI(0), fb.constI(16));
        {
            VReg w =
                fb.ld4u(fb.add(blockBase, fb.shlI(load.idx, 2)));
            fb.st8(fb.add(sched, fb.shlI(load.idx, 3)), w);
        }
        fb.endLoop(load);
        // Extend to 80 words.
        auto extend = fb.beginLoop(fb.constI(16), fb.constI(80));
        {
            auto at = [&](i64 back) {
                VReg idx = fb.addI(extend.idx, -back);
                return fb.ld8(fb.add(sched, fb.shlI(idx, 3)));
            };
            VReg x = fb.bxor(fb.bxor(at(3), at(8)),
                             fb.bxor(at(14), at(16)));
            fb.st8(fb.add(sched, fb.shlI(extend.idx, 3)),
                   emitRotl32(fb, x, 1));
        }
        fb.endLoop(extend);

        VReg a = fb.mov(h0);
        VReg b = fb.mov(h1);
        VReg c = fb.mov(h2);
        VReg d = fb.mov(h3);
        VReg e = fb.mov(h4);
        struct Quarter
        {
            i64 lo;
            i64 k;
            int fKind; // 0: ch, 1: parity, 2: maj
        };
        const Quarter quarters[4] = {
            {0, 0x5a827999ll, 0},
            {20, 0x6ed9eba1ll, 1},
            {40, 0x8f1bbcdcll, 2},
            {60, 0xca62c1d6ll, 1},
        };
        for (const Quarter &q : quarters) {
            auto round =
                fb.beginLoop(fb.constI(q.lo), fb.constI(q.lo + 20));
            {
                VReg f;
                if (q.fKind == 0) {
                    // (b & c) | (~b & d)
                    VReg nb = fb.bxor(b, mask);
                    f = fb.bor(fb.band(b, c), fb.band(nb, d));
                } else if (q.fKind == 1) {
                    f = fb.bxor(fb.bxor(b, c), d);
                } else {
                    f = fb.bor(fb.bor(fb.band(b, c), fb.band(b, d)),
                               fb.band(c, d));
                }
                VReg w = fb.ld8(
                    fb.add(sched, fb.shlI(round.idx, 3)));
                VReg temp = fb.band(
                    fb.add(fb.add(emitRotl32(fb, a, 5), f),
                           fb.add(fb.add(e, w), fb.constI(q.k))),
                    mask);
                fb.assign(e, d);
                fb.assign(d, c);
                fb.assign(c, emitRotl32(fb, b, 30));
                fb.assign(b, a);
                fb.assign(a, temp);
            }
            fb.endLoop(round);
        }
        fb.assign(h0, fb.band(fb.add(h0, a), mask));
        fb.assign(h1, fb.band(fb.add(h1, b), mask));
        fb.assign(h2, fb.band(fb.add(h2, c), mask));
        fb.assign(h3, fb.band(fb.add(h3, d), mask));
        fb.assign(h4, fb.band(fb.add(h4, e), mask));
    }
    fb.endLoop(blockLoop);

    fb.switchCpu();
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    fb.st8(out, h0, 0);
    fb.st8(out, h1, 8);
    fb.st8(out, h2, 16);
    fb.st8(out, h3, 24);
    fb.st8(out, h4, 32);
    fb.ret(h0);
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"sha", mb.module(), static_cast<double>(blocks)};
}

// =====================================================================
// rijndael — table-driven AES-128 encryption of 32 blocks, with
// T-tables and expanded round keys prepared host-side.
// =====================================================================

namespace
{

const u8 kAesSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16,
};

u8
xtime(u8 x)
{
    return static_cast<u8>((x << 1) ^ ((x >> 7) * 0x1b));
}

u32
aesT0(u8 s)
{
    const u8 v = kAesSbox[s];
    const u8 v2 = xtime(v);
    const u8 v3 = static_cast<u8>(v2 ^ v);
    return static_cast<u32>(v2) | (static_cast<u32>(v) << 8) |
           (static_cast<u32>(v) << 16) | (static_cast<u32>(v3) << 24);
}

u32
rotr8(u32 x)
{
    return (x >> 8) | (x << 24);
}

} // namespace

Workload
makeRijndael()
{
    const unsigned nBlocks = 32;
    ModuleBuilder mb;
    {
        Rng rng(detail::dataSeed("rijndael"));
        std::vector<u8> plain(nBlocks * 16);
        for (auto &b : plain)
            b = static_cast<u8>(rng.below(256));
        mb.globalInit("plaintext", plain, 64);

        // T-tables.
        for (unsigned t = 0; t < 4; ++t) {
            std::vector<u8> table(256 * 8, 0);
            for (unsigned i = 0; i < 256; ++i) {
                u32 v = aesT0(static_cast<u8>(i));
                for (unsigned r = 0; r < t; ++r)
                    v = rotr8(v) | 0; // rotate per table index
                // Standard relation: Tk[i] = rotl8^k(T0[i])
                v = aesT0(static_cast<u8>(i));
                for (unsigned r = 0; r < t; ++r)
                    v = (v << 8) | (v >> 24);
                const u64 wide = v;
                std::memcpy(table.data() + i * 8, &wide, 8);
            }
            mb.globalInit(strfmt("ttab%u", t), table, 64);
        }
        // S-box for the final round.
        std::vector<u8> sbox(256 * 8, 0);
        for (unsigned i = 0; i < 256; ++i)
            sbox[i * 8] = kAesSbox[i];
        mb.globalInit("sbox", sbox, 64);

        // Round keys via standard AES-128 key expansion.
        u8 key[16];
        for (auto &b : key)
            b = static_cast<u8>(rng.below(256));
        u32 rk[44];
        for (unsigned i = 0; i < 4; ++i)
            rk[i] = key[4 * i] | (key[4 * i + 1] << 8) |
                    (key[4 * i + 2] << 16) |
                    (u32(key[4 * i + 3]) << 24);
        u8 rcon = 1;
        for (unsigned i = 4; i < 44; ++i) {
            u32 temp = rk[i - 1];
            if (i % 4 == 0) {
                temp = (temp >> 8) | (temp << 24); // rotword
                temp = kAesSbox[temp & 0xff] |
                       (kAesSbox[(temp >> 8) & 0xff] << 8) |
                       (kAesSbox[(temp >> 16) & 0xff] << 16) |
                       (u32(kAesSbox[temp >> 24]) << 24);
                temp ^= rcon;
                rcon = xtime(rcon);
            }
            rk[i] = rk[i - 4] ^ temp;
        }
        std::vector<u8> rkBytes(44 * 8, 0);
        for (unsigned i = 0; i < 44; ++i) {
            const u64 wide = rk[i];
            std::memcpy(rkBytes.data() + i * 8, &wide, 8);
        }
        mb.globalInit("round_keys", rkBytes, 64);
    }
    mb.global("state", 8 * 8); // 4 current + 4 next words

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg plain = fb.gaddr("plaintext");
    VReg t0 = fb.gaddr("ttab0");
    VReg t1 = fb.gaddr("ttab1");
    VReg t2 = fb.gaddr("ttab2");
    VReg t3 = fb.gaddr("ttab3");
    VReg sbox = fb.gaddr("sbox");
    VReg rks = fb.gaddr("round_keys");
    VReg state = fb.gaddr("state");
    detail::emitWarmup(fb, plain, nBlocks * 16);
    fb.checkpoint();

    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    VReg mask32 = fb.constI(0xffffffffll);
    VReg ff = fb.constI(0xff);

    auto blockLoop =
        fb.beginLoop(fb.constI(0), fb.constI(nBlocks));
    {
        VReg blockBase = fb.add(plain, fb.shlI(blockLoop.idx, 4));
        // Load + initial AddRoundKey.
        auto init = fb.beginLoop(fb.constI(0), fb.constI(4));
        {
            VReg w = fb.ld4u(
                fb.add(blockBase, fb.shlI(init.idx, 2)));
            VReg rk =
                fb.ld8(fb.add(rks, fb.shlI(init.idx, 3)));
            fb.st8(fb.add(state, fb.shlI(init.idx, 3)),
                   fb.bxor(w, rk));
        }
        fb.endLoop(init);

        auto roundLoop = fb.beginLoop(fb.constI(1), fb.constI(10));
        {
            // next[c] = T0[b0(s[c])] ^ T1[b1(s[c+1])] ^
            //           T2[b2(s[c+2])] ^ T3[b3(s[c+3])] ^ rk
            for (unsigned c = 0; c < 4; ++c) {
                auto col = [&](unsigned k) {
                    VReg s = fb.ld8(fb.add(
                        state,
                        fb.constI(((c + k) % 4) * 8)));
                    VReg byte = fb.band(
                        fb.shr(s, fb.constI(8 * k)), ff);
                    VReg tab = k == 0 ? t0
                               : k == 1 ? t1
                               : k == 2 ? t2
                                        : t3;
                    return fb.ld8(
                        fb.add(tab, fb.shlI(byte, 3)));
                };
                VReg acc = fb.bxor(fb.bxor(col(0), col(1)),
                                   fb.bxor(col(2), col(3)));
                VReg rk = fb.ld8(fb.add(
                    rks,
                    fb.shlI(fb.add(fb.shlI(roundLoop.idx, 2),
                                   fb.constI(c)),
                            3)));
                fb.st8(fb.add(state, fb.constI(32 + c * 8)),
                       fb.band(fb.bxor(acc, rk), mask32));
            }
            auto swap = fb.beginLoop(fb.constI(0), fb.constI(4));
            {
                VReg v = fb.ld8(
                    fb.add(state,
                           fb.shlI(fb.addI(swap.idx, 4), 3)));
                fb.st8(fb.add(state, fb.shlI(swap.idx, 3)), v);
            }
            fb.endLoop(swap);
        }
        fb.endLoop(roundLoop);

        // Final round: SubBytes + ShiftRows + AddRoundKey.
        for (unsigned c = 0; c < 4; ++c) {
            VReg acc = fb.constI(0);
            for (unsigned k = 0; k < 4; ++k) {
                VReg s = fb.ld8(fb.add(
                    state, fb.constI(((c + k) % 4) * 8)));
                VReg byte =
                    fb.band(fb.shr(s, fb.constI(8 * k)), ff);
                VReg sub =
                    fb.ld8(fb.add(sbox, fb.shlI(byte, 3)));
                fb.assign(acc,
                          fb.bor(acc,
                                 fb.shl(sub, fb.constI(8 * k))));
            }
            VReg rk = fb.ld8(fb.add(rks, fb.constI((40 + c) * 8)));
            VReg word = fb.band(fb.bxor(acc, rk), mask32);
            fb.st4(fb.add(out,
                          fb.add(fb.shlI(blockLoop.idx, 4),
                                 fb.constI(c * 4))),
                   word);
        }
    }
    fb.endLoop(blockLoop);

    fb.switchCpu();
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"rijndael", mb.module(), static_cast<double>(nBlocks)};
}

// =====================================================================
// stringsearch — Boyer-Moore-Horspool search of 8 patterns over a
// 4 KiB text, shift tables built at run time.
// =====================================================================

Workload
makeStringsearch()
{
    const unsigned textLen = 8192;
    const unsigned nPatterns = 8;
    const unsigned patLen = 8;
    ModuleBuilder mb;
    {
        Rng rng(detail::dataSeed("stringsearch"));
        std::vector<u8> text(textLen);
        for (auto &b : text)
            b = static_cast<u8>('a' + rng.below(16));
        // Plant each pattern a few times so searches actually hit.
        std::vector<u8> patterns(nPatterns * patLen);
        for (unsigned p = 0; p < nPatterns; ++p) {
            for (unsigned i = 0; i < patLen; ++i)
                patterns[p * patLen + i] =
                    static_cast<u8>('a' + rng.below(16));
            for (unsigned k = 0; k < 3; ++k) {
                const u64 pos = rng.below(textLen - patLen);
                std::memcpy(text.data() + pos,
                            patterns.data() + p * patLen, patLen);
            }
        }
        mb.globalInit("text", text, 64);
        mb.globalInit("patterns", patterns, 64);
    }
    mb.global("shift", 256 * 8);

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg text = fb.gaddr("text");
    VReg patterns = fb.gaddr("patterns");
    VReg shift = fb.gaddr("shift");
    detail::emitWarmup(fb, text, textLen);
    fb.checkpoint();

    VReg totalHits = fb.constI(0);
    auto patLoop = fb.beginLoop(fb.constI(0), fb.constI(nPatterns));
    {
        VReg pat = fb.add(patterns, fb.mulI(patLoop.idx, patLen));
        // Build the bad-character shift table.
        auto fill = fb.beginLoop(fb.constI(0), fb.constI(256));
        {
            fb.st8(fb.add(shift, fb.shlI(fill.idx, 3)),
                   fb.constI(patLen));
        }
        fb.endLoop(fill);
        auto prep = fb.beginLoop(fb.constI(0), fb.constI(patLen - 1));
        {
            VReg ch = fb.ld1u(fb.add(pat, prep.idx));
            fb.st8(fb.add(shift, fb.shlI(ch, 3)),
                   fb.sub(fb.constI(patLen - 1), prep.idx));
        }
        fb.endLoop(prep);

        // Horspool scan.
        VReg pos = fb.constI(0);
        VReg limit = fb.constI(textLen - patLen);
        auto scanHead = fb.newBlock();
        auto scanBody = fb.newBlock();
        auto scanExit = fb.newBlock();
        fb.jmp(scanHead);
        fb.setBlock(scanHead);
        fb.br(fb.cmpLe(pos, limit), scanBody, scanExit);
        fb.setBlock(scanBody);
        {
            // Compare pattern right-to-left.
            VReg matched = fb.constI(1);
            auto cmp = fb.beginLoop(fb.constI(0), fb.constI(patLen));
            {
                VReg tc = fb.ld1u(
                    fb.add(text, fb.add(pos, cmp.idx)));
                VReg pc = fb.ld1u(fb.add(pat, cmp.idx));
                fb.assign(matched,
                          fb.band(matched, fb.cmpEq(tc, pc)));
            }
            fb.endLoop(cmp);
            fb.assign(totalHits, fb.add(totalHits, matched));
            VReg last = fb.ld1u(
                fb.add(text, fb.add(pos, fb.constI(patLen - 1))));
            VReg step =
                fb.ld8(fb.add(shift, fb.shlI(last, 3)));
            fb.assign(pos, fb.add(pos, step));
            fb.jmp(scanHead);
        }
        fb.setBlock(scanExit);
    }
    fb.endLoop(patLoop);

    fb.switchCpu();
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    fb.st8(out, totalHits);
    fb.ret(totalHits);
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"stringsearch", mb.module(),
            static_cast<double>(nPatterns)};
}

} // namespace marvel::workloads
