/**
 * @file
 * Media/telecom MiBench kernels: ADPCM encode/decode, FFT, and the
 * SUSAN image trio (smoothing, edges, corners).
 */

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/memmap.hh"
#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace marvel::workloads
{

using mir::FunctionBuilder;
using mir::ModuleBuilder;
using mir::VReg;

namespace
{

/// IMA ADPCM step-size table (89 entries).
const i32 kStepTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34,
    37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
    157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494,
    544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552,
    1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428,
    4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487,
    12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086,
    29794, 32767,
};

/// IMA ADPCM index adjustment table.
const i32 kIndexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8,
};

std::vector<u8>
wordsOf(const i32 *values, std::size_t count)
{
    std::vector<u8> out(count * 8);
    for (std::size_t i = 0; i < count; ++i) {
        const i64 v = values[i];
        std::memcpy(out.data() + i * 8, &v, 8);
    }
    return out;
}

std::vector<u8>
sineSamples(u64 seed, std::size_t count)
{
    Rng rng(seed);
    std::vector<u8> out(count * 2);
    double phase = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        phase += 0.05 + rng.uniform() * 0.1;
        const double noise = (rng.uniform() - 0.5) * 2000.0;
        const i16 s = static_cast<i16>(12000.0 * std::sin(phase) +
                                       noise);
        std::memcpy(out.data() + i * 2, &s, 2);
    }
    return out;
}

std::vector<u8>
randomImage(u64 seed, unsigned rows, unsigned cols)
{
    // Smooth-ish gradient plus noise: more realistic edge content
    // than white noise.
    Rng rng(seed);
    std::vector<u8> img(rows * cols);
    for (unsigned r = 0; r < rows; ++r) {
        for (unsigned c = 0; c < cols; ++c) {
            int v = static_cast<int>(2 * r + 2 * c);
            if (((r / 12) + (c / 12)) % 2)
                v += 90; // blocky structure creates edges/corners
            v += static_cast<int>(rng.below(17)) - 8;
            img[r * cols + c] =
                static_cast<u8>(std::clamp(v, 0, 255));
        }
    }
    return img;
}

/** Emit clamp(v, lo, hi) over i64. */
VReg
emitClamp(FunctionBuilder &fb, VReg v, i64 lo, i64 hi)
{
    VReg loR = fb.constI(lo);
    VReg hiR = fb.constI(hi);
    VReg a = fb.select(fb.cmpLt(v, loR), loR, v);
    return fb.select(fb.cmpLt(hiR, a), hiR, a);
}

/** Shared scaffolding for the ADPCM pair. */
struct AdpcmTables
{
    VReg step;
    VReg index;
};

AdpcmTables
emitAdpcmTables(ModuleBuilder &mb, FunctionBuilder &fb)
{
    (void)mb;
    AdpcmTables t;
    t.step = fb.gaddr("step_table");
    t.index = fb.gaddr("index_table");
    return t;
}

} // namespace

// =====================================================================
// adpcme — IMA ADPCM encoder over 2048 16-bit samples.
// =====================================================================

Workload
makeAdpcmEncode()
{
    const unsigned n = 2048;
    ModuleBuilder mb;
    mb.globalInit("samples",
                  sineSamples(detail::dataSeed("adpcm"), n), 64);
    mb.globalInit("step_table", wordsOf(kStepTable, 89), 64);
    mb.globalInit("index_table", wordsOf(kIndexTable, 16), 64);

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg samples = fb.gaddr("samples");
    detail::emitWarmup(fb, samples, n * 2);
    fb.checkpoint();
    AdpcmTables tables = emitAdpcmTables(mb, fb);
    VReg out = fb.constI(static_cast<i64>(kOutputBase));

    VReg predictor = fb.constI(0);
    VReg index = fb.constI(0);
    VReg zero = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(n));
    {
        VReg sample =
            fb.ld2s(fb.add(samples, fb.shlI(loop.idx, 1)));
        VReg diff = fb.sub(sample, predictor);
        VReg negative = fb.cmpLt(diff, zero);
        VReg sign = fb.shl(negative, fb.constI(3));
        fb.assign(diff, fb.select(negative, fb.sub(zero, diff),
                                  diff));
        VReg step = fb.ld8(fb.add(tables.step, fb.shlI(index, 3)));

        VReg delta = fb.constI(0);
        VReg vpdiff = fb.shr(step, fb.constI(3));
        VReg stepW = fb.mov(step);
        for (int bitVal = 4; bitVal >= 1; bitVal >>= 1) {
            VReg ge = fb.cmpLe(stepW, diff);
            fb.assign(delta,
                      fb.bor(delta,
                             fb.select(ge, fb.constI(bitVal),
                                       zero)));
            fb.assign(diff, fb.select(ge, fb.sub(diff, stepW),
                                      diff));
            fb.assign(vpdiff,
                      fb.add(vpdiff,
                             fb.select(ge, stepW, zero)));
            fb.assign(stepW, fb.shr(stepW, fb.constI(1)));
        }

        fb.assign(predictor,
                  fb.select(negative, fb.sub(predictor, vpdiff),
                            fb.add(predictor, vpdiff)));
        fb.assign(predictor, emitClamp(fb, predictor, -32768, 32767));
        VReg code = fb.bor(sign, delta);
        fb.assign(index,
                  fb.add(index,
                         fb.ld8(fb.add(tables.index,
                                       fb.shlI(code, 3)))));
        fb.assign(index, emitClamp(fb, index, 0, 88));
        fb.st1(fb.add(out, loop.idx), code);
    }
    fb.endLoop(loop);

    fb.switchCpu();
    fb.ret(predictor);
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"adpcme", mb.module(), 1.0};
}

// =====================================================================
// adpcmd — IMA ADPCM decoder over the matching 2048-code stream.
// =====================================================================

Workload
makeAdpcmDecode()
{
    const unsigned n = 2048;
    ModuleBuilder mb;

    // Produce the encoded stream host-side with the same algorithm.
    std::vector<u8> samples = sineSamples(detail::dataSeed("adpcm"), n);
    std::vector<u8> codes(n);
    {
        i32 predictor = 0;
        i32 index = 0;
        for (unsigned i = 0; i < n; ++i) {
            i16 s;
            std::memcpy(&s, samples.data() + i * 2, 2);
            i32 diff = s - predictor;
            const bool neg = diff < 0;
            if (neg)
                diff = -diff;
            i32 step = kStepTable[index];
            i32 delta = 0;
            i32 vpdiff = step >> 3;
            for (int bitVal = 4; bitVal >= 1; bitVal >>= 1) {
                if (diff >= step) {
                    delta |= bitVal;
                    diff -= step;
                    vpdiff += step;
                }
                step >>= 1;
            }
            predictor += neg ? -vpdiff : vpdiff;
            predictor = std::clamp(predictor, -32768, 32767);
            const i32 code = (neg ? 8 : 0) | delta;
            index = std::clamp(index + kIndexTable[code], 0, 88);
            codes[i] = static_cast<u8>(code);
        }
    }
    mb.globalInit("codes", codes, 64);
    mb.globalInit("step_table", wordsOf(kStepTable, 89), 64);
    mb.globalInit("index_table", wordsOf(kIndexTable, 16), 64);

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg codesReg = fb.gaddr("codes");
    detail::emitWarmup(fb, codesReg, n);
    fb.checkpoint();
    AdpcmTables tables = emitAdpcmTables(mb, fb);
    VReg out = fb.constI(static_cast<i64>(kOutputBase));

    VReg predictor = fb.constI(0);
    VReg index = fb.constI(0);
    VReg zero = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(n));
    {
        VReg code = fb.ld1u(fb.add(codesReg, loop.idx));
        VReg step = fb.ld8(fb.add(tables.step, fb.shlI(index, 3)));
        VReg vpdiff = fb.shr(step, fb.constI(3));
        VReg stepW = fb.mov(step);
        for (int bitVal = 4; bitVal >= 1; bitVal >>= 1) {
            VReg bit = fb.band(fb.shr(code, fb.constI(bitVal == 4
                                                          ? 2
                                                      : bitVal == 2
                                                          ? 1
                                                          : 0)),
                               fb.constI(1));
            fb.assign(vpdiff,
                      fb.add(vpdiff,
                             fb.select(fb.cmpNe(bit, zero), stepW,
                                       zero)));
            fb.assign(stepW, fb.shr(stepW, fb.constI(1)));
        }
        VReg negative =
            fb.cmpNe(fb.band(code, fb.constI(8)), zero);
        fb.assign(predictor,
                  fb.select(negative, fb.sub(predictor, vpdiff),
                            fb.add(predictor, vpdiff)));
        fb.assign(predictor, emitClamp(fb, predictor, -32768, 32767));
        fb.assign(index,
                  fb.add(index,
                         fb.ld8(fb.add(tables.index,
                                       fb.shlI(code, 3)))));
        fb.assign(index, emitClamp(fb, index, 0, 88));
        fb.st2(fb.add(out, fb.shlI(loop.idx, 1)), predictor);
    }
    fb.endLoop(loop);

    fb.switchCpu();
    fb.ret(predictor);
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"adpcmd", mb.module(), 1.0};
}

// =====================================================================
// fft — 256-point iterative radix-2 FFT over split real/imag arrays
// with host-precomputed twiddles.
// =====================================================================

Workload
makeFftKernel()
{
    const unsigned n = 256;
    ModuleBuilder mb;
    {
        Rng rng(detail::dataSeed("fft"));
        std::vector<u8> re(n * 8);
        std::vector<u8> im(n * 8, 0);
        for (unsigned i = 0; i < n; ++i) {
            const double v = std::sin(0.3 * i) +
                             0.5 * std::sin(0.9 * i) +
                             0.1 * (rng.uniform() - 0.5);
            std::memcpy(re.data() + i * 8, &v, 8);
        }
        mb.globalInit("real", re, 64);
        mb.globalInit("imag", im, 64);
        std::vector<u8> twr((n / 2) * 8);
        std::vector<u8> twi((n / 2) * 8);
        for (unsigned i = 0; i < n / 2; ++i) {
            const double angle = -2.0 * M_PI * i / n;
            const double cr = std::cos(angle);
            const double ci = std::sin(angle);
            std::memcpy(twr.data() + i * 8, &cr, 8);
            std::memcpy(twi.data() + i * 8, &ci, 8);
        }
        mb.globalInit("twid_r", twr, 64);
        mb.globalInit("twid_i", twi, 64);
    }

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg realBase = fb.gaddr("real");
    VReg imagBase = fb.gaddr("imag");
    VReg twrBase = fb.gaddr("twid_r");
    VReg twiBase = fb.gaddr("twid_i");
    detail::emitWarmup(fb, realBase, n * 8);
    fb.checkpoint();
    VReg nReg = fb.constI(n);

    VReg span = fb.constI(n / 2);
    auto spanHead = fb.newBlock();
    auto spanBody = fb.newBlock();
    auto spanExit = fb.newBlock();
    fb.jmp(spanHead);
    fb.setBlock(spanHead);
    fb.br(fb.cmpLt(fb.constI(0), span), spanBody, spanExit);
    fb.setBlock(spanBody);
    {
        VReg odd = fb.mov(span);
        auto oddHead = fb.newBlock();
        auto oddBody = fb.newBlock();
        auto oddExit = fb.newBlock();
        fb.jmp(oddHead);
        fb.setBlock(oddHead);
        fb.br(fb.cmpLt(odd, nReg), oddBody, oddExit);
        fb.setBlock(oddBody);
        {
            VReg even = fb.bxor(odd, span);
            VReg offE = fb.shlI(even, 3);
            VReg offO = fb.shlI(odd, 3);
            VReg er = fb.ldf8(fb.add(realBase, offE));
            VReg orv = fb.ldf8(fb.add(realBase, offO));
            VReg ei = fb.ldf8(fb.add(imagBase, offE));
            VReg oi = fb.ldf8(fb.add(imagBase, offO));
            fb.stf8(fb.add(realBase, offE), fb.fadd(er, orv));
            fb.stf8(fb.add(imagBase, offE), fb.fadd(ei, oi));
            VReg difR = fb.fsub(er, orv);
            VReg difI = fb.fsub(ei, oi);
            VReg mask = fb.addI(span, -1);
            VReg tidx = fb.mul(fb.band(even, mask),
                               fb.div(fb.constI(n / 2), span));
            VReg toff = fb.shlI(tidx, 3);
            VReg wr = fb.ldf8(fb.add(twrBase, toff));
            VReg wi = fb.ldf8(fb.add(twiBase, toff));
            fb.stf8(fb.add(realBase, offO),
                    fb.fsub(fb.fmul(wr, difR), fb.fmul(wi, difI)));
            fb.stf8(fb.add(imagBase, offO),
                    fb.fadd(fb.fmul(wr, difI), fb.fmul(wi, difR)));
        }
        fb.assign(odd, fb.bor(fb.addI(odd, 1), span));
        fb.jmp(oddHead);
        fb.setBlock(oddExit);
    }
    fb.assign(span, fb.shr(span, fb.constI(1)));
    fb.jmp(spanHead);
    fb.setBlock(spanExit);

    fb.switchCpu();
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    auto copy = fb.beginLoop(fb.constI(0), nReg);
    {
        VReg off = fb.shlI(copy.idx, 3);
        fb.stf8(fb.add(out, off), fb.ldf8(fb.add(realBase, off)));
        fb.stf8(fb.add(fb.add(out, fb.constI(n * 8)), off),
                fb.ldf8(fb.add(imagBase, off)));
    }
    fb.endLoop(copy);
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    mir::verify(mb.module());
    const double ops = 5.0 * n * std::log2(n); // ~FLOPs of an FFT
    return {"fft", mb.module(), ops};
}

// =====================================================================
// The SUSAN trio — 48x48 8-bit image processing.
// =====================================================================

namespace
{

constexpr unsigned kImgRows = 64;
constexpr unsigned kImgCols = 64;

/** Common image scaffolding: image global + warm-up + checkpoint. */
FunctionBuilder
beginImageKernel(ModuleBuilder &mb, const char *name, VReg &imgOut)
{
    mb.globalInit("image",
                  randomImage(detail::dataSeed(name), kImgRows,
                              kImgCols),
                  64);
    FunctionBuilder fb = mb.func("main", {}, true);
    imgOut = fb.gaddr("image");
    detail::emitWarmup(fb, imgOut,
                       static_cast<i64>(kImgRows * kImgCols));
    fb.checkpoint();
    return fb;
}

} // namespace

Workload
makeSmooth()
{
    ModuleBuilder mb;
    VReg img{};
    FunctionBuilder fb = beginImageKernel(mb, "smooth", img);
    VReg out = fb.constI(static_cast<i64>(kOutputBase));

    auto rLoop =
        fb.beginLoop(fb.constI(1), fb.constI(kImgRows - 1));
    {
        auto cLoop =
            fb.beginLoop(fb.constI(1), fb.constI(kImgCols - 1));
        {
            VReg sum = fb.constI(0);
            for (int dr = -1; dr <= 1; ++dr) {
                for (int dc = -1; dc <= 1; ++dc) {
                    VReg rr = fb.addI(rLoop.idx, dr);
                    VReg cc = fb.addI(cLoop.idx, dc);
                    VReg pix = fb.ld1u(fb.add(
                        img, fb.add(fb.mulI(rr, kImgCols), cc)));
                    fb.assign(sum, fb.add(sum, pix));
                }
            }
            VReg avg = fb.div(sum, fb.constI(9));
            VReg cell =
                fb.add(fb.mulI(rLoop.idx, kImgCols), cLoop.idx);
            fb.st1(fb.add(out, cell), avg);
        }
        fb.endLoop(cLoop);
    }
    fb.endLoop(rLoop);

    fb.switchCpu();
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"smooth", mb.module(), 1.0};
}

Workload
makeEdges()
{
    ModuleBuilder mb;
    VReg img{};
    FunctionBuilder fb = beginImageKernel(mb, "edges", img);
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    VReg threshold = fb.constI(20);

    auto rLoop =
        fb.beginLoop(fb.constI(1), fb.constI(kImgRows - 1));
    {
        auto cLoop =
            fb.beginLoop(fb.constI(1), fb.constI(kImgCols - 1));
        {
            VReg center = fb.ld1u(fb.add(
                img, fb.add(fb.mulI(rLoop.idx, kImgCols),
                            cLoop.idx)));
            VReg usan = fb.constI(0);
            for (int dr = -1; dr <= 1; ++dr) {
                for (int dc = -1; dc <= 1; ++dc) {
                    if (dr == 0 && dc == 0)
                        continue;
                    VReg rr = fb.addI(rLoop.idx, dr);
                    VReg cc = fb.addI(cLoop.idx, dc);
                    VReg pix = fb.ld1u(fb.add(
                        img, fb.add(fb.mulI(rr, kImgCols), cc)));
                    VReg diff = fb.sub(pix, center);
                    VReg neg = fb.cmpLt(diff, fb.constI(0));
                    VReg mag = fb.select(
                        neg, fb.sub(fb.constI(0), diff), diff);
                    VReg similar = fb.cmpLt(mag, threshold);
                    fb.assign(usan, fb.add(usan, similar));
                }
            }
            // Edge response: max(0, geometric threshold - USAN area).
            VReg resp = fb.sub(fb.constI(6), usan);
            VReg respPos = fb.select(
                fb.cmpLt(resp, fb.constI(0)), fb.constI(0), resp);
            VReg cell =
                fb.add(fb.mulI(rLoop.idx, kImgCols), cLoop.idx);
            fb.st1(fb.add(out, cell), respPos);
        }
        fb.endLoop(cLoop);
    }
    fb.endLoop(rLoop);

    fb.switchCpu();
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"edges", mb.module(), 1.0};
}

Workload
makeCorners()
{
    ModuleBuilder mb;
    VReg img{};
    FunctionBuilder fb = beginImageKernel(mb, "corners", img);
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    VReg threshold = fb.constI(27);

    auto rLoop =
        fb.beginLoop(fb.constI(2), fb.constI(kImgRows - 2));
    {
        auto cLoop =
            fb.beginLoop(fb.constI(2), fb.constI(kImgCols - 2));
        {
            VReg center = fb.ld1u(fb.add(
                img, fb.add(fb.mulI(rLoop.idx, kImgCols),
                            cLoop.idx)));
            VReg usan = fb.constI(0);
            // 5x5 USAN window.
            for (int dr = -2; dr <= 2; ++dr) {
                for (int dc = -2; dc <= 2; ++dc) {
                    if (dr == 0 && dc == 0)
                        continue;
                    VReg rr = fb.addI(rLoop.idx, dr);
                    VReg cc = fb.addI(cLoop.idx, dc);
                    VReg pix = fb.ld1u(fb.add(
                        img, fb.add(fb.mulI(rr, kImgCols), cc)));
                    VReg diff = fb.sub(pix, center);
                    VReg neg = fb.cmpLt(diff, fb.constI(0));
                    VReg mag = fb.select(
                        neg, fb.sub(fb.constI(0), diff), diff);
                    VReg similar = fb.cmpLt(mag, threshold);
                    fb.assign(usan, fb.add(usan, similar));
                }
            }
            // Corner response: max(0, g - USAN) with g = half area.
            VReg resp = fb.sub(fb.constI(12), usan);
            VReg respPos = fb.select(
                fb.cmpLt(resp, fb.constI(0)), fb.constI(0), resp);
            VReg cell =
                fb.add(fb.mulI(rLoop.idx, kImgCols), cLoop.idx);
            fb.st1(fb.add(out, cell), respPos);
        }
        fb.endLoop(cLoop);
    }
    fb.endLoop(rLoop);

    fb.switchCpu();
    fb.ret(fb.constI(0));
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"corners", mb.module(), 1.0};
}

} // namespace marvel::workloads
