/**
 * @file
 * Network/telecom MiBench kernels: dijkstra, patricia, crc32.
 */

#include <algorithm>
#include <cstring>

#include "common/memmap.hh"
#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace marvel::workloads
{

using mir::FunctionBuilder;
using mir::ModuleBuilder;
using mir::VReg;

// =====================================================================
// dijkstra — single-source shortest paths over a 48-node dense
// adjacency matrix (O(n^2) selection, as in MiBench's small input).
// =====================================================================

Workload
makeDijkstra()
{
    const unsigned n = 48;
    const i64 kInf = 1'000'000'000;
    ModuleBuilder mb;
    {
        Rng rng(detail::dataSeed("dijkstra"));
        std::vector<u8> adj(n * n * 8);
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = 0; j < n; ++j) {
                i64 w;
                if (i == j)
                    w = 0;
                else if (rng.chance(0.35))
                    w = 1 + static_cast<i64>(rng.below(99));
                else
                    w = kInf;
                std::memcpy(adj.data() + (i * n + j) * 8, &w, 8);
            }
        }
        mb.globalInit("adj", adj, 64);
    }
    mb.global("dist", n * 8);
    mb.global("visited", n * 8);

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg adj = fb.gaddr("adj");
    VReg dist = fb.gaddr("dist");
    VReg visited = fb.gaddr("visited");
    detail::emitWarmup(fb, adj, static_cast<i64>(n) * n * 8);
    fb.checkpoint();

    VReg inf = fb.constI(kInf);
    VReg zero = fb.constI(0);
    // init: dist[i] = adj[0][i], visited[i] = 0; visited[0] = 1
    auto init = fb.beginLoop(fb.constI(0), fb.constI(n));
    {
        VReg off = fb.shlI(init.idx, 3);
        fb.st8(fb.add(dist, off), fb.ld8(fb.add(adj, off)));
        fb.st8(fb.add(visited, off), zero);
    }
    fb.endLoop(init);
    fb.st8(visited, fb.constI(1));

    auto outer = fb.beginLoop(fb.constI(1), fb.constI(n));
    {
        // pick unvisited u with min dist
        VReg best = fb.mov(inf);
        VReg bestIdx = fb.constI(-1);
        auto pick = fb.beginLoop(fb.constI(0), fb.constI(n));
        {
            VReg off = fb.shlI(pick.idx, 3);
            VReg seen = fb.ld8(fb.add(visited, off));
            VReg d = fb.ld8(fb.add(dist, off));
            VReg better = fb.band(fb.cmpEq(seen, zero),
                                  fb.cmpLt(d, best));
            fb.assign(best, fb.select(better, d, best));
            fb.assign(bestIdx, fb.select(better, pick.idx, bestIdx));
        }
        fb.endLoop(pick);

        auto haveNode = fb.newBlock();
        auto relaxDone = fb.newBlock();
        fb.br(fb.cmpLt(bestIdx, zero), relaxDone, haveNode);
        fb.setBlock(haveNode);
        {
            fb.st8(fb.add(visited, fb.shlI(bestIdx, 3)),
                   fb.constI(1));
            VReg row = fb.add(adj, fb.shlI(fb.mulI(bestIdx, n), 3));
            auto relax = fb.beginLoop(fb.constI(0), fb.constI(n));
            {
                VReg off = fb.shlI(relax.idx, 3);
                VReg w = fb.ld8(fb.add(row, off));
                VReg cand = fb.add(best, w);
                VReg dAddr = fb.add(dist, off);
                VReg d = fb.ld8(dAddr);
                VReg better = fb.cmpLt(cand, d);
                fb.st8(dAddr, fb.select(better, cand, d));
            }
            fb.endLoop(relax);
            fb.jmp(relaxDone);
        }
        fb.setBlock(relaxDone);
    }
    fb.endLoop(outer);

    fb.switchCpu();
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    VReg sum = fb.constI(0);
    auto copy = fb.beginLoop(fb.constI(0), fb.constI(n));
    {
        VReg off = fb.shlI(copy.idx, 3);
        VReg d = fb.ld8(fb.add(dist, off));
        fb.st8(fb.add(out, off), d);
        fb.assign(sum, fb.add(sum, d));
    }
    fb.endLoop(copy);
    fb.ret(fb.band(sum, fb.constI(0x7fffffff)));
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"dijkstra", mb.module(), 1.0};
}

// =====================================================================
// patricia — bitwise trie (PATRICIA-style) insert + lookup of 160
// 32-bit addresses using an index-based node pool.
// =====================================================================

Workload
makePatricia()
{
    const unsigned nKeys = 160;
    ModuleBuilder mb;
    {
        Rng rng(detail::dataSeed("patricia"));
        std::vector<u8> keys(nKeys * 8);
        for (unsigned i = 0; i < nKeys; ++i) {
            const u64 v = rng() & 0xffffffffull;
            std::memcpy(keys.data() + i * 8, &v, 8);
        }
        mb.globalInit("keys", keys, 64);
    }
    // Node pool: each node = {key, left, right} packed in 3 words.
    mb.global("pool", (2 * nKeys + 2) * 24);

    // insert-or-find: walk bits from MSB; 0 -> left, 1 -> right.
    FunctionBuilder fb = mb.func("main", {}, true);
    VReg keys = fb.gaddr("keys");
    VReg pool = fb.gaddr("pool");
    detail::emitWarmup(fb, keys, nKeys * 8);
    fb.checkpoint();

    VReg zero = fb.constI(0);
    VReg nextFree = fb.constI(1); // node 0 is the root
    // root: key=~0 (never matches), children null (0)
    fb.st8(pool, fb.constI(-1), 0);
    fb.st8(pool, zero, 8);
    fb.st8(pool, zero, 16);

    VReg found = fb.constI(0);
    auto keyLoop = fb.beginLoop(fb.constI(0), fb.constI(nKeys * 2));
    {
        // First pass inserts keys 0..n-1; second pass looks them up.
        VReg slot = fb.rem(keyLoop.idx, fb.constI(nKeys));
        VReg key = fb.ld8(fb.add(keys, fb.shlI(slot, 3)));
        VReg node = fb.constI(0);
        VReg depth = fb.constI(31);
        VReg done = fb.constI(0);

        auto walkHead = fb.newBlock();
        auto walkBody = fb.newBlock();
        auto walkExit = fb.newBlock();
        fb.jmp(walkHead);
        fb.setBlock(walkHead);
        fb.br(fb.cmpEq(done, zero), walkBody, walkExit);
        fb.setBlock(walkBody);
        {
            VReg nodeAddr = fb.add(pool, fb.mulI(node, 24));
            VReg nodeKey = fb.ld8(nodeAddr, 0);
            auto match = fb.newBlock();
            auto descend = fb.newBlock();
            fb.br(fb.cmpEq(nodeKey, key), match, descend);
            fb.setBlock(match);
            fb.assign(found, fb.addI(found, 1));
            fb.assign(done, fb.constI(1));
            fb.jmp(walkHead);
            fb.setBlock(descend);
            {
                VReg bit =
                    fb.band(fb.shr(key, depth), fb.constI(1));
                VReg childOff =
                    fb.add(fb.constI(8), fb.shlI(bit, 3));
                VReg childAddr = fb.add(nodeAddr, childOff);
                VReg child = fb.ld8(childAddr);
                auto haveChild = fb.newBlock();
                auto makeChild = fb.newBlock();
                fb.br(fb.cmpEq(child, zero), makeChild, haveChild);
                fb.setBlock(makeChild);
                {
                    // allocate node {key, 0, 0}
                    VReg fresh = fb.mov(nextFree);
                    fb.assign(nextFree, fb.addI(nextFree, 1));
                    VReg freshAddr =
                        fb.add(pool, fb.mulI(fresh, 24));
                    fb.st8(freshAddr, key, 0);
                    fb.st8(freshAddr, zero, 8);
                    fb.st8(freshAddr, zero, 16);
                    fb.st8(childAddr, fresh);
                    fb.assign(done, fb.constI(1));
                    fb.jmp(walkHead);
                }
                fb.setBlock(haveChild);
                fb.assign(node, child);
                fb.assign(depth,
                          fb.select(fb.cmpEq(depth, zero), zero,
                                    fb.addI(depth, -1)));
                fb.jmp(walkHead);
            }
        }
        fb.setBlock(walkExit);
    }
    fb.endLoop(keyLoop);

    fb.switchCpu();
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    fb.st8(out, found, 0);
    fb.st8(out, nextFree, 8);
    fb.ret(found);
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"patricia", mb.module(), 2.0};
}

// =====================================================================
// crc32 — table-driven CRC-32 (IEEE 802.3) over a 4 KiB buffer.
// =====================================================================

Workload
makeCrc32()
{
    const unsigned n = 8192;
    ModuleBuilder mb;
    {
        Rng rng(detail::dataSeed("crc32"));
        std::vector<u8> buf(n);
        for (auto &b : buf)
            b = static_cast<u8>(rng.below(256));
        mb.globalInit("buffer", buf, 64);
        // Standard reflected CRC-32 table.
        std::vector<u8> table(256 * 8, 0);
        for (u32 i = 0; i < 256; ++i) {
            u32 c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            const u64 wide = c;
            std::memcpy(table.data() + i * 8, &wide, 8);
        }
        mb.globalInit("crc_table", table, 64);
    }

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg buffer = fb.gaddr("buffer");
    VReg table = fb.gaddr("crc_table");
    detail::emitWarmup(fb, buffer, n);
    fb.checkpoint();

    VReg crc = fb.constI(0xffffffffll);
    VReg mask32 = fb.constI(0xffffffffll);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(n));
    {
        VReg byte = fb.ld1u(fb.add(buffer, loop.idx));
        VReg idx = fb.band(fb.bxor(crc, byte), fb.constI(0xff));
        VReg entry = fb.ld8(fb.add(table, fb.shlI(idx, 3)));
        fb.assign(crc, fb.band(fb.bxor(fb.shr(crc, fb.constI(8)),
                                       entry),
                               mask32));
    }
    fb.endLoop(loop);
    fb.assign(crc, fb.band(fb.bxor(crc, mask32), mask32));

    fb.switchCpu();
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    fb.st8(out, crc);
    fb.ret(crc);
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"crc32", mb.module(), 1.0};
}

// =====================================================================
// crc32-long — the crc32 kernel repeated over the buffer for a
// megacycle-scale injection window (~1.2M cycles). Reference workload
// for the checkpoint-ladder speedup benches; deliberately NOT part of
// mibenchNames() so the figure-order sweeps keep their cost.
// =====================================================================

Workload
makeCrc32Long()
{
    const unsigned n = 8192;
    const unsigned rounds = 13;
    ModuleBuilder mb;
    {
        Rng rng(detail::dataSeed("crc32"));
        std::vector<u8> buf(n);
        for (auto &b : buf)
            b = static_cast<u8>(rng.below(256));
        mb.globalInit("buffer", buf, 64);
        std::vector<u8> table(256 * 8, 0);
        for (u32 i = 0; i < 256; ++i) {
            u32 c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            const u64 wide = c;
            std::memcpy(table.data() + i * 8, &wide, 8);
        }
        mb.globalInit("crc_table", table, 64);
    }

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg buffer = fb.gaddr("buffer");
    VReg table = fb.gaddr("crc_table");
    detail::emitWarmup(fb, buffer, n);
    fb.checkpoint();

    VReg crc = fb.constI(0xffffffffll);
    VReg mask32 = fb.constI(0xffffffffll);
    auto outer = fb.beginLoop(fb.constI(0), fb.constI(rounds));
    {
        auto loop = fb.beginLoop(fb.constI(0), fb.constI(n));
        {
            VReg byte = fb.ld1u(fb.add(buffer, loop.idx));
            VReg idx = fb.band(fb.bxor(crc, byte), fb.constI(0xff));
            VReg entry = fb.ld8(fb.add(table, fb.shlI(idx, 3)));
            fb.assign(crc,
                      fb.band(fb.bxor(fb.shr(crc, fb.constI(8)),
                                      entry),
                              mask32));
        }
        fb.endLoop(loop);
        // Fold the round counter in so every round moves the digest.
        fb.assign(crc, fb.band(fb.bxor(crc, outer.idx), mask32));
    }
    fb.endLoop(outer);
    fb.assign(crc, fb.band(fb.bxor(crc, mask32), mask32));

    fb.switchCpu();
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    fb.st8(out, crc);
    fb.ret(crc);
    mb.setEntry("main");
    mir::verify(mb.module());
    return {"crc32-long", mb.module(), double(rounds)};
}

} // namespace marvel::workloads
