/**
 * @file
 * The workload suite.
 *
 * Fifteen MiBench-named kernels (paper §III-D) written in MIR, each a
 * complete end-to-end program: deterministic input data in globals, an
 * optional cache warm-up pass, a Checkpoint/SwitchCpu-delimited region
 * of interest, and results written to the OUTPUT window for golden
 * comparison. Plus host driver programs for each accelerator design
 * and CPU-side implementations of the four algorithms compared in
 * Fig. 16 (GEMM, BFS, FFT, KNN).
 */

#ifndef MARVEL_WORKLOADS_WORKLOADS_HH
#define MARVEL_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "mir/builder.hh"
#include "mir/mir.hh"

namespace marvel::workloads
{

/** A runnable workload. */
struct Workload
{
    std::string name;
    mir::Module module;
    /** Algorithmic operations per task execution (OPF numerator). */
    double opsPerRun = 1.0;
};

/** The fifteen MiBench benchmark names, figure order. */
const std::vector<std::string> &mibenchNames();

/** Build a MiBench workload by name; fatal() on unknown. */
Workload get(const std::string &name);

/** All fifteen workloads. */
std::vector<Workload> allMibench();

// --- individual kernels (exposed for tests) -------------------------
Workload makeAdpcmEncode();
Workload makeAdpcmDecode();
Workload makeBasicmath();
Workload makeBitcount();
Workload makeCorners();
Workload makeCrc32();
Workload makeCrc32Long(); ///< megacycle window; not in mibenchNames()
Workload makeDijkstra();
Workload makeEdges();
Workload makeFftKernel();
Workload makePatricia();
Workload makeQsort();
Workload makeRijndael();
Workload makeSha();
Workload makeSmooth();
Workload makeStringsearch();

// --- heterogeneous SoC workloads --------------------------------------
/**
 * Host driver for the accelerator design placed at cluster index
 * `unitIdx`: stages inputs in DRAM, programs the MMRs, waits for the
 * completion interrupt, and copies results to OUTPUT.
 */
Workload accelDriver(const std::string &designName, unsigned unitIdx);

/**
 * CPU-side implementation of an accelerated algorithm ("gemm", "bfs",
 * "fft", "md_knn"), same problem size as the DSA (Fig. 16).
 */
Workload cpuVersionOf(const std::string &designName);

/** Algorithmic op count of a design task (OPF numerator, Fig. 16). */
double designOpsPerRun(const std::string &designName);

// --- shared helpers for kernel authors --------------------------------
namespace detail
{

/** Emit `for` loop reading every 8th byte of [base, base+size) (cache
 *  warm-up before the checkpoint). */
void emitWarmup(mir::FunctionBuilder &fb, mir::VReg base, i64 size);

/** Deterministic data generator stream for a named workload. */
u64 dataSeed(const std::string &name);

} // namespace detail

} // namespace marvel::workloads

#endif // MARVEL_WORKLOADS_WORKLOADS_HH
