/**
 * @file
 * Heterogeneous SoC workloads:
 *  - host driver programs that stage inputs in DRAM, program an
 *    accelerator's MMRs, sleep on the completion interrupt (WFI), and
 *    copy the DMA'd results to OUTPUT (paper Fig. 1 flow); and
 *  - CPU-side implementations of GEMM / BFS / FFT / MD-KNN at the same
 *    problem sizes, for the Fig. 16 platform comparison.
 */

#include <algorithm>
#include <cmath>
#include <cstring>

#include "accel/designs/designs.hh"
#include "common/memmap.hh"
#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace marvel::workloads
{

using accel::designs::DesignSizes;
using mir::FunctionBuilder;
using mir::ModuleBuilder;
using mir::VReg;

namespace
{

void
putF64(std::vector<u8> &buf, std::size_t idx, double v)
{
    std::memcpy(buf.data() + idx * 8, &v, 8);
}

void
putU64(std::vector<u8> &buf, std::size_t idx, u64 v)
{
    std::memcpy(buf.data() + idx * 8, &v, 8);
}

/** Input staging buffers for one design (DRAM side of the DMAs). */
struct DesignData
{
    /** Buffers in MMR-arg order: in buffers then the out buffer(s). */
    std::vector<std::pair<std::string, std::vector<u8>>> buffers;
    /** Number of MMR args that are inputs (rest are outputs). */
    unsigned numIn = 0;
    /** Total bytes DMA'd out (copied to OUTPUT by the driver). */
    u32 outBytes = 0;
};

DesignData
dataFor(const std::string &name)
{
    // The systolic GEMM consumes the dataflow GEMM's data verbatim
    // (same seed, same buffers) so the two engines run a
    // bit-identical workload and their outputs are comparable.
    if (name == "gemm_systolic")
        return dataFor("gemm");
    Rng rng(detail::dataSeed("accel-" + name));
    DesignData d;
    auto inBuf = [&](const char *bufName, std::size_t bytes) {
        d.buffers.emplace_back(bufName, std::vector<u8>(bytes, 0));
        ++d.numIn;
        return &d.buffers.back().second;
    };
    auto outBuf = [&](const char *bufName, std::size_t bytes) {
        d.buffers.emplace_back(bufName, std::vector<u8>(bytes, 0));
        d.outBytes += static_cast<u32>(bytes);
        return &d.buffers.back().second;
    };

    if (name == "bfs") {
        const u32 n = DesignSizes::bfsNodes;
        const u32 e = DesignSizes::bfsEdges;
        auto *nodes = inBuf("nodes", n * 8);
        auto *edges = inBuf("edges", e * 8);
        // Node i owns edges [8i, 8i+8); edge targets keep the graph
        // connected (i+1 ring edge) plus random links.
        for (u32 i = 0; i < n; ++i) {
            const u64 begin = 8ull * i;
            const u64 end = begin + 8;
            putU64(*nodes, i, (begin << 32) | end);
        }
        for (u32 i = 0; i < n; ++i) {
            putU64(*edges, 8 * i, (i + 1) % n);
            for (u32 k = 1; k < 8; ++k)
                putU64(*edges, 8 * i + k, rng.below(n));
        }
        outBuf("levels", n * 8);
        return d;
    }
    if (name == "fft") {
        const u32 n = DesignSizes::fftPoints;
        auto *re = inBuf("real", n * 8);
        auto *im = inBuf("imag", n * 8);
        for (u32 i = 0; i < n; ++i) {
            putF64(*re, i, std::sin(0.1 * i) + 0.25 * std::sin(0.7 * i));
            putF64(*im, i, 0.0);
        }
        auto *twr = inBuf("twid_r", (n / 2) * 8);
        auto *twi = inBuf("twid_i", (n / 2) * 8);
        for (u32 i = 0; i < n / 2; ++i) {
            const double angle = -2.0 * M_PI * i / n;
            putF64(*twr, i, std::cos(angle));
            putF64(*twi, i, std::sin(angle));
        }
        outBuf("out_real", n * 8);
        outBuf("out_imag", n * 8);
        return d;
    }
    if (name == "gemm") {
        const u32 dim = DesignSizes::gemmDim;
        auto *a = inBuf("mat_a", dim * dim * 8);
        auto *b = inBuf("mat_b", dim * dim * 8);
        for (u32 i = 0; i < dim * dim; ++i) {
            putF64(*a, i, rng.uniform() - 0.5);
            putF64(*b, i, rng.uniform() - 0.5);
        }
        outBuf("mat_c", dim * dim * 8);
        return d;
    }
    if (name == "md_knn") {
        const u32 atoms = DesignSizes::mdAtoms;
        const u32 nn = DesignSizes::mdNeighbours;
        auto *nl = inBuf("neighbours", atoms * nn * 8);
        for (u32 i = 0; i < atoms; ++i)
            for (u32 k = 0; k < nn; ++k) {
                u64 j = rng.below(atoms);
                if (j == i)
                    j = (j + 1) % atoms;
                putU64(*nl, i * nn + k, j);
            }
        const char *axes[3] = {"pos_x", "pos_y", "pos_z"};
        for (auto *axis : axes) {
            auto *p = inBuf(axis, atoms * 8);
            for (u32 i = 0; i < atoms; ++i)
                putF64(*p, i, 0.5 + i * 0.37 + rng.uniform());
        }
        outBuf("force_x", atoms * 8);
        return d;
    }
    if (name == "mergesort") {
        const u32 n = DesignSizes::sortLen;
        auto *main = inBuf("unsorted", n * 8);
        for (u32 i = 0; i < n; ++i)
            putU64(*main, i, rng());
        outBuf("sorted", n * 8);
        return d;
    }
    if (name == "spmv") {
        const u32 nnz = DesignSizes::spmvNnz;
        const u32 rows = DesignSizes::spmvRows;
        auto *val = inBuf("val", 13328);
        auto *cols = inBuf("cols", 6664);
        auto *rowd = inBuf("rowdelim", 1032);
        auto *vec = inBuf("vec", 1024);
        for (u32 i = 0; i < nnz; ++i) {
            putF64(*val, i, rng.uniform() * 2.0 - 1.0);
            const u32 c = static_cast<u32>(rng.below(rows));
            std::memcpy(cols->data() + i * 4, &c, 4);
        }
        // Spread nnz roughly evenly over rows.
        const u32 perRow = nnz / rows;
        u64 cursor = 0;
        for (u32 r = 0; r <= rows; ++r) {
            putU64(*rowd, r, cursor);
            cursor = std::min<u64>(nnz, cursor + perRow +
                                            (r % 3 == 0 ? 1 : 0));
        }
        putU64(*rowd, rows, nnz);
        for (u32 i = 0; i < rows; ++i)
            putF64(*vec, i, rng.uniform());
        outBuf("spmv_out", 1024);
        return d;
    }
    if (name == "stencil2d") {
        const u32 cells = DesignSizes::st2Rows * DesignSizes::st2Cols;
        auto *orig = inBuf("orig", cells * 8);
        for (u32 i = 0; i < cells; ++i)
            putF64(*orig, i, rng.uniform() * 10.0);
        auto *filt = inBuf("filter", 360);
        for (u32 k = 0; k < 9; ++k)
            putF64(*filt, k, (k == 4 ? 4.0 : -0.5));
        outBuf("sol", cells * 8);
        return d;
    }
    if (name == "stencil3d") {
        const u32 cells =
            DesignSizes::st3X * DesignSizes::st3Y * DesignSizes::st3Z;
        auto *orig = inBuf("orig", cells * 8);
        for (u32 i = 0; i < cells; ++i)
            putF64(*orig, i, rng.uniform() * 4.0);
        auto *cvar = inBuf("c_var", 8);
        const i32 c0 = 2;
        const i32 c1 = -1;
        std::memcpy(cvar->data(), &c0, 4);
        std::memcpy(cvar->data() + 4, &c1, 4);
        outBuf("sol", cells * 8);
        return d;
    }
    fatal("accel driver: unknown design '%s'", name.c_str());
}

} // namespace

double
designOpsPerRun(const std::string &name)
{
    if (name == "gemm" || name == "gemm_systolic") {
        const double n = DesignSizes::gemmDim;
        return 2.0 * n * n * n;
    }
    if (name == "bfs")
        return DesignSizes::bfsEdges;
    if (name == "fft") {
        const double n = DesignSizes::fftPoints;
        return 5.0 * n * std::log2(n);
    }
    if (name == "md_knn")
        return 16.0 * DesignSizes::mdAtoms * DesignSizes::mdNeighbours;
    if (name == "mergesort")
        return DesignSizes::sortLen * std::log2(DesignSizes::sortLen);
    if (name == "spmv")
        return 2.0 * DesignSizes::spmvNnz;
    if (name == "stencil2d")
        return 18.0 * DesignSizes::st2Rows * DesignSizes::st2Cols;
    if (name == "stencil3d")
        return 8.0 * DesignSizes::st3X * DesignSizes::st3Y *
               DesignSizes::st3Z;
    fatal("designOpsPerRun: unknown design '%s'", name.c_str());
}

Workload
accelDriver(const std::string &designName, unsigned unitIdx)
{
    DesignData data = dataFor(designName);
    ModuleBuilder mb;
    for (auto &[bufName, bytes] : data.buffers)
        mb.globalInit(bufName, bytes, 64);

    FunctionBuilder fb = mb.func("main", {}, true);
    const Addr mmr = kAccelMmioBase + unitIdx * kAccelMmioStride;
    VReg mmrBase = fb.constI(static_cast<i64>(mmr));

    fb.checkpoint();
    // Program the DMA source/destination MMR args.
    for (std::size_t k = 0; k < data.buffers.size(); ++k) {
        VReg addr = fb.gaddr(data.buffers[k].first);
        fb.st8(mmrBase, addr,
               static_cast<i64>(accel::kMmrArg0 + 8 * k));
    }
    // Start the accelerator and sleep until its interrupt.
    fb.st8(mmrBase, fb.constI(1),
           static_cast<i64>(accel::kMmrCtrl));
    fb.waitIrq();
    // Reading STATUS acknowledges the interrupt.
    VReg status =
        fb.ld8(mmrBase, static_cast<i64>(accel::kMmrStatus));
    fb.switchCpu();

    // Copy the DMA'd output buffers to the OUTPUT window.
    VReg out = fb.constI(static_cast<i64>(kOutputBase));
    i64 outOff = 0;
    for (std::size_t k = data.numIn; k < data.buffers.size(); ++k) {
        const i64 len =
            static_cast<i64>(data.buffers[k].second.size());
        VReg src = fb.gaddr(data.buffers[k].first);
        VReg dstBase = fb.add(out, fb.constI(outOff));
        auto copy = fb.beginLoop(fb.constI(0), fb.constI(len));
        {
            VReg v = fb.ld8(fb.add(src, copy.idx));
            fb.st8(fb.add(dstBase, copy.idx), v);
        }
        fb.endLoop(copy, 8);
        outOff += len;
    }
    fb.ret(status);
    mb.setEntry("main");
    mir::verify(mb.module());
    return {designName + "-driver", mb.module(),
            designOpsPerRun(designName)};
}

// =====================================================================
// CPU-side implementations for the Fig. 16 comparison.
// =====================================================================

Workload
cpuVersionOf(const std::string &designName)
{
    DesignData data = dataFor(designName);
    ModuleBuilder mb;
    for (auto &[bufName, bytes] : data.buffers)
        mb.globalInit(bufName, bytes, 64);

    FunctionBuilder fb = mb.func("main", {}, true);
    VReg out = fb.constI(static_cast<i64>(kOutputBase));

    if (designName == "gemm") {
        const u32 dim = DesignSizes::gemmDim;
        VReg a = fb.gaddr("mat_a");
        VReg b = fb.gaddr("mat_b");
        detail::emitWarmup(fb, a, static_cast<i64>(dim) * dim * 8);
        fb.checkpoint();
        VReg dimReg = fb.constI(dim);
        auto iLoop = fb.beginLoop(fb.constI(0), dimReg);
        {
            VReg rowOff = fb.shlI(fb.mulI(iLoop.idx, dim), 3);
            auto jLoop = fb.beginLoop(fb.constI(0), dimReg);
            {
                VReg sum = fb.constF(0.0);
                auto kLoop = fb.beginLoop(fb.constI(0), dimReg);
                {
                    VReg av = fb.ldf8(fb.add(
                        a, fb.add(rowOff, fb.shlI(kLoop.idx, 3))));
                    VReg bv = fb.ldf8(fb.add(
                        b,
                        fb.add(fb.shlI(fb.mulI(kLoop.idx, dim), 3),
                               fb.shlI(jLoop.idx, 3))));
                    fb.assign(sum, fb.fadd(sum, fb.fmul(av, bv)));
                }
                fb.endLoop(kLoop);
                fb.stf8(fb.add(out,
                               fb.add(rowOff,
                                      fb.shlI(jLoop.idx, 3))),
                        sum);
            }
            fb.endLoop(jLoop);
        }
        fb.endLoop(iLoop);
        fb.switchCpu();
        fb.ret(fb.constI(0));
    } else if (designName == "bfs") {
        const u32 n = DesignSizes::bfsNodes;
        VReg nodes = fb.gaddr("nodes");
        VReg edges = fb.gaddr("edges");
        mb.global("levels_cpu", n * 8);
        mb.global("queue_cpu", n * 8 * 8);
        VReg levels = fb.gaddr("levels_cpu");
        VReg queue = fb.gaddr("queue_cpu");
        detail::emitWarmup(fb, nodes, n * 8);
        fb.checkpoint();
        VReg zero = fb.constI(0);
        VReg minus1 = fb.constI(-1);
        auto init = fb.beginLoop(fb.constI(0), fb.constI(n));
        fb.st8(fb.add(levels, fb.shlI(init.idx, 3)), minus1);
        fb.endLoop(init);
        fb.st8(levels, zero);
        fb.st8(queue, zero);
        VReg tail = fb.constI(1);
        auto walk = fb.beginLoop(fb.constI(0), tail);
        {
            VReg node =
                fb.ld8(fb.add(queue, fb.shlI(walk.idx, 3)));
            VReg word =
                fb.ld8(fb.add(nodes, fb.shlI(node, 3)));
            VReg begin = fb.shr(word, fb.constI(32));
            VReg end = fb.band(word, fb.constI(0xffffffff));
            VReg next = fb.addI(
                fb.ld8(fb.add(levels, fb.shlI(node, 3))), 1);
            auto inner = fb.beginLoop(begin, end);
            {
                VReg target = fb.ld8(
                    fb.add(edges, fb.shlI(inner.idx, 3)));
                VReg lAddr =
                    fb.add(levels, fb.shlI(target, 3));
                VReg lv = fb.ld8(lAddr);
                auto visit = fb.newBlock();
                auto skip = fb.newBlock();
                fb.br(fb.cmpLt(lv, zero), visit, skip);
                fb.setBlock(visit);
                fb.st8(lAddr, next);
                fb.st8(fb.add(queue, fb.shlI(tail, 3)), target);
                fb.assign(tail, fb.addI(tail, 1));
                fb.jmp(skip);
                fb.setBlock(skip);
            }
            fb.endLoop(inner);
        }
        fb.endLoop(walk);
        fb.switchCpu();
        auto copy = fb.beginLoop(fb.constI(0), fb.constI(n));
        {
            VReg off = fb.shlI(copy.idx, 3);
            fb.st8(fb.add(out, off),
                   fb.ld8(fb.add(levels, off)));
        }
        fb.endLoop(copy);
        fb.ret(tail);
    } else if (designName == "fft") {
        const u32 n = DesignSizes::fftPoints;
        VReg realBase = fb.gaddr("real");
        VReg imagBase = fb.gaddr("imag");
        VReg twrBase = fb.gaddr("twid_r");
        VReg twiBase = fb.gaddr("twid_i");
        detail::emitWarmup(fb, realBase, n * 8);
        fb.checkpoint();
        VReg nReg = fb.constI(n);
        VReg span = fb.constI(n / 2);
        auto spanHead = fb.newBlock();
        auto spanBody = fb.newBlock();
        auto spanExit = fb.newBlock();
        fb.jmp(spanHead);
        fb.setBlock(spanHead);
        fb.br(fb.cmpLt(fb.constI(0), span), spanBody, spanExit);
        fb.setBlock(spanBody);
        {
            VReg odd = fb.mov(span);
            auto oddHead = fb.newBlock();
            auto oddBody = fb.newBlock();
            auto oddExit = fb.newBlock();
            fb.jmp(oddHead);
            fb.setBlock(oddHead);
            fb.br(fb.cmpLt(odd, nReg), oddBody, oddExit);
            fb.setBlock(oddBody);
            {
                VReg even = fb.bxor(odd, span);
                VReg offE = fb.shlI(even, 3);
                VReg offO = fb.shlI(odd, 3);
                VReg er = fb.ldf8(fb.add(realBase, offE));
                VReg orv = fb.ldf8(fb.add(realBase, offO));
                VReg ei = fb.ldf8(fb.add(imagBase, offE));
                VReg oi = fb.ldf8(fb.add(imagBase, offO));
                fb.stf8(fb.add(realBase, offE), fb.fadd(er, orv));
                fb.stf8(fb.add(imagBase, offE), fb.fadd(ei, oi));
                VReg difR = fb.fsub(er, orv);
                VReg difI = fb.fsub(ei, oi);
                VReg mask = fb.addI(span, -1);
                VReg tidx =
                    fb.mul(fb.band(even, mask),
                           fb.div(fb.constI(n / 2), span));
                VReg toff = fb.shlI(tidx, 3);
                VReg wr = fb.ldf8(fb.add(twrBase, toff));
                VReg wi = fb.ldf8(fb.add(twiBase, toff));
                fb.stf8(fb.add(realBase, offO),
                        fb.fsub(fb.fmul(wr, difR),
                                fb.fmul(wi, difI)));
                fb.stf8(fb.add(imagBase, offO),
                        fb.fadd(fb.fmul(wr, difI),
                                fb.fmul(wi, difR)));
            }
            fb.assign(odd, fb.bor(fb.addI(odd, 1), span));
            fb.jmp(oddHead);
            fb.setBlock(oddExit);
        }
        fb.assign(span, fb.shr(span, fb.constI(1)));
        fb.jmp(spanHead);
        fb.setBlock(spanExit);
        fb.switchCpu();
        auto copy = fb.beginLoop(fb.constI(0), nReg);
        {
            VReg off = fb.shlI(copy.idx, 3);
            fb.stf8(fb.add(out, off),
                    fb.ldf8(fb.add(realBase, off)));
            fb.stf8(fb.add(fb.add(out, fb.constI(n * 8)), off),
                    fb.ldf8(fb.add(imagBase, off)));
        }
        fb.endLoop(copy);
        fb.ret(fb.constI(0));
    } else if (designName == "md_knn") {
        const u32 atoms = DesignSizes::mdAtoms;
        const u32 nn = DesignSizes::mdNeighbours;
        VReg nl = fb.gaddr("neighbours");
        VReg px = fb.gaddr("pos_x");
        VReg py = fb.gaddr("pos_y");
        VReg pz = fb.gaddr("pos_z");
        detail::emitWarmup(fb, nl, static_cast<i64>(atoms) * nn * 8);
        fb.checkpoint();
        auto iLoop = fb.beginLoop(fb.constI(0), fb.constI(atoms));
        {
            VReg iOff = fb.shlI(iLoop.idx, 3);
            VReg xi = fb.ldf8(fb.add(px, iOff));
            VReg yi = fb.ldf8(fb.add(py, iOff));
            VReg zi = fb.ldf8(fb.add(pz, iOff));
            VReg fx = fb.constF(0.0);
            auto kLoop = fb.beginLoop(fb.constI(0), fb.constI(nn));
            {
                VReg slot =
                    fb.add(fb.mulI(iLoop.idx, nn), kLoop.idx);
                VReg j = fb.ld8(fb.add(nl, fb.shlI(slot, 3)));
                VReg jOff = fb.shlI(j, 3);
                VReg dx = fb.fsub(xi, fb.ldf8(fb.add(px, jOff)));
                VReg dy = fb.fsub(yi, fb.ldf8(fb.add(py, jOff)));
                VReg dz = fb.fsub(zi, fb.ldf8(fb.add(pz, jOff)));
                VReg r2 = fb.fadd(
                    fb.fadd(fb.fmul(dx, dx), fb.fmul(dy, dy)),
                    fb.fmul(dz, dz));
                VReg inv2 = fb.fdiv(fb.constF(1.0), r2);
                VReg inv6 =
                    fb.fmul(fb.fmul(inv2, inv2), inv2);
                VReg pot = fb.fmul(
                    inv6, fb.fsub(fb.fmul(fb.constF(1.5), inv6),
                                  fb.constF(2.0)));
                fb.assign(fx, fb.fadd(fx, fb.fmul(pot, dx)));
            }
            fb.endLoop(kLoop);
            fb.stf8(fb.add(out, iOff), fx);
        }
        fb.endLoop(iLoop);
        fb.switchCpu();
        fb.ret(fb.constI(0));
    } else {
        fatal("cpuVersionOf: unsupported design '%s'",
              designName.c_str());
    }
    mb.setEntry("main");
    mir::verify(mb.module());
    return {designName + "-cpu", mb.module(),
            designOpsPerRun(designName)};
}

} // namespace marvel::workloads
