#include "workloads/workloads.hh"

#include "common/log.hh"
#include "common/memmap.hh"

namespace marvel::workloads
{

const std::vector<std::string> &
mibenchNames()
{
    static const std::vector<std::string> names = {
        "adpcme", "adpcmd", "basicmath", "bitcount", "corners",
        "crc32", "dijkstra", "edges", "fft", "patricia",
        "qsort", "rijndael", "sha", "smooth", "stringsearch",
    };
    return names;
}

Workload
get(const std::string &name)
{
    if (name == "adpcme")
        return makeAdpcmEncode();
    if (name == "adpcmd")
        return makeAdpcmDecode();
    if (name == "basicmath")
        return makeBasicmath();
    if (name == "bitcount")
        return makeBitcount();
    if (name == "corners")
        return makeCorners();
    if (name == "crc32")
        return makeCrc32();
    if (name == "crc32-long")
        return makeCrc32Long();
    if (name == "dijkstra")
        return makeDijkstra();
    if (name == "edges")
        return makeEdges();
    if (name == "fft")
        return makeFftKernel();
    if (name == "patricia")
        return makePatricia();
    if (name == "qsort")
        return makeQsort();
    if (name == "rijndael")
        return makeRijndael();
    if (name == "sha")
        return makeSha();
    if (name == "smooth")
        return makeSmooth();
    if (name == "stringsearch")
        return makeStringsearch();
    fatal("workloads: unknown benchmark '%s'", name.c_str());
}

std::vector<Workload>
allMibench()
{
    std::vector<Workload> out;
    out.reserve(mibenchNames().size());
    for (const std::string &name : mibenchNames())
        out.push_back(get(name));
    return out;
}

namespace detail
{

void
emitWarmup(mir::FunctionBuilder &fb, mir::VReg base, i64 size)
{
    using mir::VReg;
    VReg acc = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(size));
    VReg v = fb.ld8(fb.add(base, loop.idx));
    fb.assign(acc, fb.add(acc, v));
    fb.endLoop(loop, 8);
    // Keep the accumulator alive so the reads are not trivially dead:
    // store it just past the OUTPUT window scratch slot (overwritten
    // by nothing; OUTPUT comparisons include it deterministically).
    VReg sink =
        fb.constI(static_cast<i64>(kOutputBase + kOutputSize - 8));
    fb.st8(sink, acc);
}

u64
dataSeed(const std::string &name)
{
    u64 hash = 0x9e3779b97f4a7c15ull;
    for (char c : name) {
        hash ^= static_cast<u8>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace detail

} // namespace marvel::workloads
