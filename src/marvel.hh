/**
 * @file
 * Umbrella header: the public API of the MARVEL library.
 *
 * Typical usage:
 *   - describe a system:        soc::preset / soc::configFromFile
 *   - pick or write a workload: workloads::get / mir::ModuleBuilder
 *   - compile it:               isa::compile
 *   - golden run:               fi::runGolden
 *   - inject:                   fi::runWithFault / fi::runCampaignOnGolden
 *   - persist / resume:         sched::runCampaign / sched::mergeJournals
 *   - aggregate:                fi::weightedAvf / fi::operationsPerFailure
 *
 * See README.md for a walkthrough and DESIGN.md for the architecture.
 */

#ifndef MARVEL_MARVEL_HH
#define MARVEL_MARVEL_HH

#include "accel/cluster.hh"
#include "accel/designs/designs.hh"
#include "common/config.hh"
#include "common/log.hh"
#include "common/memmap.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "cpu/ooo_core.hh"
#include "fi/campaign.hh"
#include "fi/metrics.hh"
#include "isa/codegen.hh"
#include "isa/encoding.hh"
#include "mem/hierarchy.hh"
#include "mir/builder.hh"
#include "mir/interp.hh"
#include "sched/scheduler.hh"
#include "sched/workqueue.hh"
#include "soc/builder.hh"
#include "store/blob.hh"
#include "store/journal.hh"
#include "store/serialize.hh"
#include "soc/checkpoint.hh"
#include "soc/system.hh"
#include "workloads/workloads.hh"

#endif // MARVEL_MARVEL_HH
