/**
 * @file
 * Accelerator-local memories: scratchpad memories (SPMs) and register
 * banks. These are the DSA fault-injection targets of the paper
 * (Table IV / Fig. 14): byte arrays with full fault bookkeeping.
 *
 * Register banks behave like SPMs but are slower and exhibit a delta
 * delay between write and readability, modeled as one extra cycle of
 * access latency.
 */

#ifndef MARVEL_ACCEL_SPM_HH
#define MARVEL_ACCEL_SPM_HH

#include <string>
#include <vector>

#include "common/faultwatch.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace marvel::accel
{

/** Kind of accelerator-local memory. */
enum class MemKind : u8 { Spm, RegBank };

const char *memKindName(MemKind kind);

/** One accelerator-local memory component. */
class AccelMem
{
  public:
    AccelMem() = default;

    AccelMem(std::string name, u32 sizeBytes, MemKind kind)
        : name_(std::move(name)), kind_(kind), data_(sizeBytes, 0)
    {
    }

    const std::string &name() const { return name_; }
    MemKind kind() const { return kind_; }
    u32 size() const { return data_.size(); }

    /** Access latency in accelerator cycles. */
    u32
    latency() const
    {
        return kind_ == MemKind::Spm ? 1 : 2;
    }

    /** Ports available per cycle. */
    u32 ports() const { return 2; }

    bool
    inRange(u64 offset, u32 len) const
    {
        return offset + len <= data_.size() && offset + len >= offset;
    }

    /** Read bytes; false when out of range. */
    bool read(u64 offset, void *out, u32 len);

    /** Write bytes; false when out of range. */
    bool write(u64 offset, const void *in, u32 len);

    /** Backdoor access (DMA image setup, output capture). */
    const u8 *data() const { return data_.data(); }
    u8 *data() { return data_.data(); }

    /** Zero the contents. */
    void clear();

    // --- fault injection -----------------------------------------------
    u32 numEntries() const { return data_.size() / 8; }
    u32 bitsPerEntry() const { return 64; }

    /** Flip one bit (entry = 8-byte word index). */
    void
    flipBit(u32 entry, u32 bit)
    {
        data_[entry * 8 + bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    }

    FaultState &faults() { return faults_; }
    const FaultState &faults() const { return faults_; }

    /**
     * Byte-for-byte content equality. Accelerator code has no
     * allocate-before-read discipline, so every byte is live state;
     * access counters are stats and excluded.
     */
    bool
    convergedWith(const AccelMem &other) const
    {
        return data_ == other.data_;
    }

    // --- statistics ----------------------------------------------------
    stats::Counter reads;      ///< read accesses
    stats::Counter writes;     ///< write accesses
    stats::Counter bytesRead;
    stats::Counter bytesWritten;

    /** Register this memory's counters under g. */
    void regStats(stats::Group &g);

  private:
    void applyStuck(u64 byteLo, u64 byteHi);

    std::string name_;
    MemKind kind_ = MemKind::Spm;
    std::vector<u8> data_;
    FaultState faults_;
};

} // namespace marvel::accel

#endif // MARVEL_ACCEL_SPM_HH
