#include "accel/dma.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace marvel::accel
{

void
DmaEngine::start(const DmaTransfer &transfer)
{
    cur_ = transfer;
    moved_ = 0;
    warmup_ = kStartupCycles;
    busy_ = true;
    fault_ = false;
    MARVEL_OBS_EMIT(obs::Component::Dma, obs::EventKind::DmaStart,
                    transfer.dramAddr, transfer.length);
}

void
DmaEngine::regStats(stats::Group &g)
{
    g.addCounter("transfers", &transfers, "transfers completed");
    g.addCounter("bytes_moved", &bytesMoved, "payload bytes moved");
    g.addCounter("busy_cycles", &busyCycles,
                 "cycles busy (incl. startup)");
}

void
DmaEngine::cycle(mem::PhysMem &dram, std::vector<AccelMem> &mems)
{
    if (!busy_)
        return;
    busyCycles.inc();
    if (warmup_ > 0) {
        --warmup_;
        return;
    }
    if (cur_.component >= mems.size()) {
        fault_ = true;
        busy_ = false;
        return;
    }
    AccelMem &mem = mems[cur_.component];
    const u32 chunk = std::min(kBytesPerCycle, cur_.length - moved_);
    const Addr dramAddr = cur_.dramAddr + moved_;
    const u64 compOff = cur_.componentOff + moved_;
    if (!dram.ok(dramAddr, chunk) || !mem.inRange(compOff, chunk)) {
        fault_ = true;
        busy_ = false;
        return;
    }
    u8 buf[kBytesPerCycle];
    if (cur_.toAccel) {
        dram.read(dramAddr, buf, chunk);
        mem.write(compOff, buf, chunk);
    } else {
        mem.read(compOff, buf, chunk);
        dram.write(dramAddr, buf, chunk);
    }
    moved_ += chunk;
    bytesMoved.inc(chunk);
    if (moved_ >= cur_.length) {
        busy_ = false;
        transfers.inc();
        MARVEL_OBS_EMIT(obs::Component::Dma, obs::EventKind::DmaDone,
                        cur_.dramAddr, cur_.length);
    }
}

} // namespace marvel::accel
