#include "accel/dfg.hh"

#include <cmath>
#include <cstring>

#include "common/bits.hh"
#include "common/log.hh"

namespace marvel::accel
{

using isa::FuClass;
using mir::Op;

namespace
{

double
asF64(u64 w)
{
    double d;
    std::memcpy(&d, &w, sizeof(d));
    return d;
}

u64
fromF64(double d)
{
    u64 w;
    std::memcpy(&w, &d, sizeof(w));
    return w;
}

FuClass
fuOf(Op op)
{
    switch (op) {
      case Op::Mul: return FuClass::IntMul;
      case Op::Div: case Op::DivU: case Op::Rem: case Op::RemU:
        return FuClass::IntDiv;
      case Op::FAdd: case Op::FSub: case Op::ItoF: case Op::FtoI:
      case Op::FCmpEq: case Op::FCmpLt: case Op::FCmpLe:
        return FuClass::FpAlu;
      case Op::FMul: return FuClass::FpMul;
      case Op::FDiv: case Op::FSqrt: return FuClass::FpDiv;
      case Op::Jmp: case Op::Br: case Op::Ret:
        return FuClass::BranchUnit;
      default:
        if (mir::isLoad(op) || mir::isStore(op))
            return FuClass::MemPort;
        return FuClass::IntAlu;
    }
}

unsigned
latencyOfOp(Op op)
{
    switch (op) {
      case Op::Mul: return 3;
      case Op::Div: case Op::DivU: case Op::Rem: case Op::RemU:
        return 12;
      case Op::FAdd: case Op::FSub: return 3;
      case Op::FMul: return 4;
      case Op::FDiv: return 12;
      case Op::FSqrt: return 16;
      case Op::ItoF: case Op::FtoI: return 2;
      default:
        return 1;
    }
}

} // namespace

double
FuConfig::area()
const
{
    // Arbitrary-unit area model: weights roughly track the relative
    // silicon cost of each unit class.
    static const double weights[isa::kNumFuClasses] = {
        1.0,  // IntAlu
        4.0,  // IntMul
        8.0,  // IntDiv
        3.0,  // FpAlu
        6.0,  // FpMul
        12.0, // FpDiv
        2.0,  // MemPort
        0.5,  // BranchUnit
    };
    double total = 0.0;
    for (unsigned i = 0; i < isa::kNumFuClasses; ++i)
        total += weights[i] * counts[i];
    return total;
}

void
DataflowEngine::start(const mir::Module &module, mir::FuncId func,
                      const std::vector<u64> &args)
{
    func_ = func;
    const mir::Function &fn = module.functions[func];
    regs_.assign(fn.numVRegs(), 0);
    for (std::size_t i = 0; i < args.size() && i < fn.params.size(); ++i)
        regs_[fn.params[i]] = args[i];
    status_ = EngineStatus::Running;
    cycles_ = 0;
    opsExecuted_ = 0;
    enterBlock(module, 0);
}

void
DataflowEngine::enterBlock(const mir::Module &module, mir::BlockId block)
{
    curBlock_ = block;
    const mir::Block &blk = module.functions[func_].blocks[block];
    entryRegs_ = regs_;
    insts_.assign(blk.insts.size(), InstState{});

    // Compute in-block dependencies.
    std::vector<i32> lastWriter(regs_.size(), -1);
    std::vector<u32> earlierStores;
    std::vector<u32> earlierMem;
    for (std::size_t i = 0; i < blk.insts.size(); ++i) {
        const mir::Inst &in = blk.insts[i];
        InstState &st = insts_[i];
        const unsigned ns = mir::numSources(in.op);
        const mir::VReg srcs[3] = {in.a, in.b, in.c};
        for (unsigned s = 0; s < 3; ++s) {
            bool used = s < ns;
            if (in.op == Op::Ret)
                used = s == 0 && module.functions[func_].hasResult;
            if (in.op == Op::Br)
                used = s == 0;
            st.srcDep[s] = used ? lastWriter[srcs[s]] : -1;
        }
        if (mir::isLoad(in.op)) {
            st.memDeps = earlierStores;
        } else if (mir::isStore(in.op)) {
            st.memDeps = earlierMem;
        } else if (mir::isTerminator(in.op)) {
            // Terminators wait for every other instruction.
            st.memDeps.reserve(i);
            for (u32 j = 0; j < i; ++j)
                st.memDeps.push_back(j);
        }
        if (mir::isStore(in.op))
            earlierStores.push_back(static_cast<u32>(i));
        if (mir::isLoad(in.op) || mir::isStore(in.op))
            earlierMem.push_back(static_cast<u32>(i));
        if (mir::hasDest(in.op))
            lastWriter[in.dst] = static_cast<i32>(i);
    }
}

bool
DataflowEngine::depsDone(const InstState &st) const
{
    for (unsigned s = 0; s < 3; ++s)
        if (st.srcDep[s] >= 0 && insts_[st.srcDep[s]].phase != 2)
            return false;
    for (u32 d : st.memDeps)
        if (insts_[d].phase != 2)
            return false;
    return true;
}

u64
DataflowEngine::operandValue(const InstState &st, unsigned which,
                             const mir::Inst &inst) const
{
    const mir::VReg srcs[3] = {inst.a, inst.b, inst.c};
    if (st.srcDep[which] >= 0)
        return insts_[st.srcDep[which]].value;
    return entryRegs_[srcs[which]];
}

void
DataflowEngine::finishBlock(const mir::Module &module)
{
    // Commit final register values: the last writer of each vreg wins.
    const mir::Block &blk =
        module.functions[func_].blocks[curBlock_];
    for (std::size_t i = 0; i < blk.insts.size(); ++i) {
        const mir::Inst &in = blk.insts[i];
        if (mir::hasDest(in.op))
            regs_[in.dst] = insts_[i].value;
    }
}

void
DataflowEngine::cycle(const mir::Module &module, AccelAddressSpace &space)
{
    if (status_ != EngineStatus::Running)
        return;
    ++cycles_;
    const mir::Block &blk =
        module.functions[func_].blocks[curBlock_];

    unsigned fuUsed[isa::kNumFuClasses] = {};
    // Per-component port budget this cycle (small fixed array).
    unsigned portUsed[16] = {};

    // Retire completed operations.
    bool allDone = true;
    for (std::size_t i = 0; i < insts_.size(); ++i) {
        InstState &st = insts_[i];
        if (st.phase == 1 && st.doneAt <= cycles_)
            st.phase = 2;
        if (st.phase != 2)
            allDone = false;
    }
    if (allDone) {
        // The terminator decides the next block.
        const mir::Inst &term = blk.insts.back();
        finishBlock(module);
        switch (term.op) {
          case Op::Jmp:
            enterBlock(module, term.target);
            return;
          case Op::Br:
            enterBlock(module,
                       insts_.back().value ? term.target
                                           : term.target2);
            return;
          case Op::Ret:
            result_ = module.functions[func_].hasResult
                          ? insts_.back().value
                          : 0;
            status_ = EngineStatus::Done;
            return;
          default:
            status_ = EngineStatus::Fault;
            return;
        }
    }

    // Issue ready operations.
    for (std::size_t i = 0; i < insts_.size(); ++i) {
        InstState &st = insts_[i];
        if (st.phase != 0 || !depsDone(st))
            continue;
        const mir::Inst &in = blk.insts[i];
        const FuClass fu = fuOf(in.op);
        const unsigned fuIdx = static_cast<unsigned>(fu);
        if (fuUsed[fuIdx] >= fu_.counts[fuIdx])
            continue;

        const u64 a = operandValue(st, 0, in);
        const u64 b = operandValue(st, 1, in);
        const u64 c = operandValue(st, 2, in);

        if (mir::isLoad(in.op) || mir::isStore(in.op)) {
            const Addr addr = a + in.imm;
            const u32 len = mir::accessSize(in.op);
            const int comp = space.resolve(addr, len);
            if (comp < 0) {
                status_ = EngineStatus::Fault;
                return;
            }
            if (comp < 16 &&
                portUsed[comp] >= space.portsOf(comp))
                continue; // port conflict; retry next cycle
            if (comp < 16)
                ++portUsed[comp];
            ++fuUsed[fuIdx];
            ++opsExecuted_;
            st.phase = 1;
            st.doneAt = cycles_ + space.latencyOf(comp);
            if (mir::isLoad(in.op)) {
                u64 raw = space.readMem(comp, addr, len);
                if (mir::loadIsSigned(in.op) && len < 8)
                    raw = static_cast<u64>(sext(raw, len * 8));
                st.value = raw;
            } else {
                space.writeMem(comp, addr, len, b);
            }
            continue;
        }

        ++fuUsed[fuIdx];
        ++opsExecuted_;
        st.phase = 1;
        st.doneAt = cycles_ + latencyOfOp(in.op);

        u64 value = 0;
        switch (in.op) {
          case Op::ConstI: value = static_cast<u64>(in.imm); break;
          case Op::ConstF: value = fromF64(in.fimm); break;
          case Op::Mov: value = a; break;
          case Op::GAddr:
            // Accelerator kernels address their components with
            // absolute constants; GAddr is not meaningful here.
            status_ = EngineStatus::Fault;
            return;
          case Op::Add: value = a + b; break;
          case Op::Sub: value = a - b; break;
          case Op::Mul: value = a * b; break;
          case Op::Div:
            value = b ? static_cast<u64>(static_cast<i64>(a) /
                                         static_cast<i64>(b))
                      : ~0ull;
            break;
          case Op::DivU: value = b ? a / b : ~0ull; break;
          case Op::Rem:
            value = b ? static_cast<u64>(static_cast<i64>(a) %
                                         static_cast<i64>(b))
                      : a;
            break;
          case Op::RemU: value = b ? a % b : a; break;
          case Op::And: value = a & b; break;
          case Op::Or: value = a | b; break;
          case Op::Xor: value = a ^ b; break;
          case Op::Shl: value = a << (b & 63); break;
          case Op::Shr: value = a >> (b & 63); break;
          case Op::Sra:
            value = static_cast<u64>(static_cast<i64>(a) >> (b & 63));
            break;
          case Op::CmpEq: value = a == b; break;
          case Op::CmpNe: value = a != b; break;
          case Op::CmpLt:
            value = static_cast<i64>(a) < static_cast<i64>(b);
            break;
          case Op::CmpLe:
            value = static_cast<i64>(a) <= static_cast<i64>(b);
            break;
          case Op::CmpLtU: value = a < b; break;
          case Op::CmpLeU: value = a <= b; break;
          case Op::FAdd: value = fromF64(asF64(a) + asF64(b)); break;
          case Op::FSub: value = fromF64(asF64(a) - asF64(b)); break;
          case Op::FMul: value = fromF64(asF64(a) * asF64(b)); break;
          case Op::FDiv: value = fromF64(asF64(a) / asF64(b)); break;
          case Op::FSqrt: value = fromF64(std::sqrt(asF64(a))); break;
          case Op::FCmpEq: value = asF64(a) == asF64(b); break;
          case Op::FCmpLt: value = asF64(a) < asF64(b); break;
          case Op::FCmpLe: value = asF64(a) <= asF64(b); break;
          case Op::ItoF:
            value = fromF64(static_cast<double>(static_cast<i64>(a)));
            break;
          case Op::FtoI:
            value = static_cast<u64>(static_cast<i64>(asF64(a)));
            break;
          case Op::Select: value = a ? b : c; break;
          case Op::Br: value = a; break;
          case Op::Jmp: case Op::Checkpoint: case Op::SwitchCpu:
          case Op::WaitIrq:
            value = 0;
            break;
          case Op::Ret:
            value = module.functions[func_].hasResult ? a : 0;
            break;
          case Op::Call:
            // Accelerated kernels are fully inlined (as in HLS flows).
            status_ = EngineStatus::Fault;
            return;
          default:
            value = 0;
            break;
        }
        st.value = value;
    }
}

} // namespace marvel::accel
