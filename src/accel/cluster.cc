#include "accel/cluster.hh"

#include "common/log.hh"

namespace marvel::accel
{

Cluster::Cluster(const ClusterConfig &config)
{
    units_.reserve(config.designs.size());
    for (std::size_t i = 0; i < config.designs.size(); ++i)
        units_.emplace_back(config.designs[i],
                            kAccelSpaceBase + i * kAccelSpaceStride);
}

ComputeUnit &
Cluster::unitByName(const std::string &name)
{
    for (ComputeUnit &u : units_)
        if (u.design().name == name)
            return u;
    fatal("cluster: no accelerator named '%s'", name.c_str());
}

bool
Cluster::decodes(Addr addr) const
{
    return addr >= kAccelMmioBase &&
           addr < kAccelMmioBase + units_.size() * kAccelMmioStride;
}

u64
Cluster::mmioRead(Addr addr)
{
    const std::size_t idx = (addr - kAccelMmioBase) / kAccelMmioStride;
    const Addr offset = (addr - kAccelMmioBase) % kAccelMmioStride;
    return units_[idx].mmrRead(offset);
}

void
Cluster::mmioWrite(Addr addr, u64 value)
{
    const std::size_t idx = (addr - kAccelMmioBase) / kAccelMmioStride;
    const Addr offset = (addr - kAccelMmioBase) % kAccelMmioStride;
    units_[idx].mmrWrite(offset, value);
}

void
Cluster::cycle(mem::PhysMem &dram, Cycle now)
{
    for (ComputeUnit &u : units_)
        u.cycle(dram, now);
}

void
Cluster::setLineage(obs::PropagationTrace *trace)
{
    for (ComputeUnit &u : units_)
        u.setLineage(trace);
}

bool
Cluster::irqPending() const
{
    for (const ComputeUnit &u : units_)
        if (u.irq())
            return true;
    return false;
}

void
Cluster::regStats(stats::Group &g)
{
    for (std::size_t i = 0; i < units_.size(); ++i) {
        std::string name = units_[i].design().name;
        for (std::size_t j = 0; j < i; ++j) {
            if (units_[j].design().name == name) {
                name += strfmt("%zu", i);
                break;
            }
        }
        units_[i].regStats(g.subgroup(name));
    }
}

bool
Cluster::errored() const
{
    for (const ComputeUnit &u : units_)
        if (u.errored())
            return true;
    return false;
}

} // namespace marvel::accel
