#include "accel/systolic/systolic.hh"

#include <cstring>

#include "common/log.hh"

namespace marvel::accel
{

namespace
{

// SEQ word indices.
enum : u32
{
    kWordPhase = 0,
    kWordMt = 1,
    kWordNt = 2,
    kWordKt = 3,
    kWordStep = 4,
    kWordFetch = 5,
    kWordDrain = 6,
    kWordReserved = 7, // never written after start, never interpreted
};

// Packed-word field layout. Bits outside the fields below are don't-
// care: read every cycle, never interpreted, so a flip there is the
// canonical accelerator-contained (MaskedInAccel) fault.
constexpr u64 kActiveBit = 1ull << 63;
constexpr u64 kStageBit = 1ull << 62; // fetch: 0 = weights, 1 = acts
constexpr u64 kBankBit = 1ull << 62;  // drain: OUT bank index

u64
packFetch(bool active, u32 stage, u32 row, u32 kt)
{
    return (active ? kActiveBit : 0) | (stage ? kStageBit : 0) |
           (static_cast<u64>(kt & 0xffff) << 16) | (row & 0xffff);
}

u64
packDrain(bool active, u32 bank, u32 row, u32 mt, u32 nt)
{
    return (active ? kActiveBit : 0) | (bank ? kBankBit : 0) |
           (static_cast<u64>(nt & 0xffff) << 32) |
           (static_cast<u64>(mt & 0xffff) << 16) | (row & 0xffff);
}

double
toF64(u64 bits)
{
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

u64
toBits(double v)
{
    u64 bits;
    std::memcpy(&bits, &v, 8);
    return bits;
}

} // namespace

void
SystolicParams::validate() const
{
    if (rows == 0 || cols == 0 || tileM == 0 || m == 0 || n == 0 ||
        k == 0)
        fatal("systolic: degenerate geometry (%ux%u grid, tileM=%u, "
              "%ux%ux%u GEMM)",
              rows, cols, tileM, m, n, k);
    if (rows > 256 || cols > 256 || tileM > 4096)
        fatal("systolic: grid %ux%u tileM=%u exceeds the model's "
              "limits (256x256, tileM 4096)",
              rows, cols, tileM);
}

u64
SystolicSequencer::entriesOf(u32 comp) const
{
    switch (comp) {
      case kSysIn0:
      case kSysIn1:
        return static_cast<u64>(params_.tileM) * params_.rows;
      case kSysW0:
      case kSysW1:
      case kSysPeW:
      case kSysPeAcc:
        return static_cast<u64>(params_.rows) * params_.cols;
      case kSysOut0:
      case kSysOut1:
        return static_cast<u64>(params_.tileM) * params_.cols;
      case kSysSeq:
        return kSystolicSeqBytes / 8;
    }
    return 0;
}

u32
SystolicSequencer::outBank(u64 mt, u64 nt) const
{
    return static_cast<u32>((mt * params_.nTiles() + nt) & 1);
}

// --- taint shadow (exact, word-granular) ------------------------------

void
SystolicSequencer::seedTaintWord(u32 memIdx, u64 entry)
{
    if (memIdx >= kSysNumComponents)
        return;
    if (taint_.empty()) {
        taint_.resize(kSysNumComponents);
        for (u32 c = 0; c < kSysNumComponents; ++c)
            taint_[c].assign(entriesOf(c), 0);
    }
    if (entry < taint_[memIdx].size())
        taint_[memIdx][entry] = 1;
}

bool
SystolicSequencer::tainted(u32 comp, u64 word) const
{
    return !taint_.empty() && word < taint_[comp].size() &&
           taint_[comp][word];
}

void
SystolicSequencer::setTaint(u32 comp, u64 word, bool value)
{
    if (!taint_.empty() && word < taint_[comp].size())
        taint_[comp][word] = value ? 1 : 0;
}

void
SystolicSequencer::clearTaint(u32 comp, u64 word, u64 count)
{
    if (taint_.empty())
        return;
    for (u64 w = word; w < word + count && w < taint_[comp].size();
         ++w)
        taint_[comp][w] = 0;
}

void
SystolicSequencer::noteConsume()
{
    if (!lineageOut)
        return;
    if (!lineageOut->faultRead) {
        lineageOut->faultRead = true;
        lineageOut->firstReadCycle = now_;
    }
    ++lineageOut->taintedUops;
}

// --- bank access ------------------------------------------------------

double
SystolicSequencer::readF(std::vector<AccelMem> &mems, u32 comp,
                         u64 word, bool &ok)
{
    u64 bits = 0;
    if (!mems[comp].read(word * 8, &bits, 8))
        ok = false;
    return toF64(bits);
}

void
SystolicSequencer::writeF(std::vector<AccelMem> &mems, u32 comp,
                          u64 word, double value, bool &ok)
{
    const u64 bits = toBits(value);
    if (!mems[comp].write(word * 8, &bits, 8))
        ok = false;
}

// --- SEQ state --------------------------------------------------------

bool
SystolicSequencer::seqLoad(std::vector<AccelMem> &mems, Seq &seq)
{
    if (!mems[kSysSeq].read(0, seq.raw, kSystolicSeqBytes))
        return false;
    if (lineageOut && !taint_.empty())
        for (u32 w = 0; w < kSystolicSeqBytes / 8; ++w)
            if (tainted(kSysSeq, w))
                noteConsume();

    if (seq.raw[kWordPhase] > static_cast<u64>(Phase::Done))
        return false;
    seq.phase = static_cast<Phase>(seq.raw[kWordPhase]);
    seq.mt = seq.raw[kWordMt];
    seq.nt = seq.raw[kWordNt];
    seq.kt = seq.raw[kWordKt];
    seq.step = seq.raw[kWordStep];

    const u64 f = seq.raw[kWordFetch];
    seq.fetchActive = (f & kActiveBit) != 0;
    seq.fetchStage = (f & kStageBit) ? 1 : 0;
    seq.fetchRow = static_cast<u32>(f & 0xffff);
    seq.fetchKt = static_cast<u32>((f >> 16) & 0xffff);

    const u64 d = seq.raw[kWordDrain];
    seq.drainActive = (d & kActiveBit) != 0;
    seq.drainBank = (d & kBankBit) ? 1 : 0;
    seq.drainRow = static_cast<u32>(d & 0xffff);
    seq.drainMt = static_cast<u32>((d >> 16) & 0xffff);
    seq.drainNt = static_cast<u32>((d >> 32) & 0xffff);

    // A corrupted sequencer must raise the error line, never index out
    // of the design's geometry.
    switch (seq.phase) {
      case Phase::Load:
      case Phase::FillW:
      case Phase::Run:
      case Phase::WaitPrefetch:
      case Phase::WaitDrain:
        if (seq.mt >= params_.mTiles() || seq.nt >= params_.nTiles() ||
            seq.kt >= params_.kTiles())
            return false;
        break;
      default:
        break;
    }
    if (seq.fetchActive &&
        (seq.fetchKt >= params_.kTiles() ||
         seq.fetchRow > params_.tileM + params_.rows))
        return false;
    if (seq.drainActive &&
        (seq.drainMt >= params_.mTiles() ||
         seq.drainNt >= params_.nTiles() ||
         seq.drainRow > params_.tileM))
        return false;
    return true;
}

void
SystolicSequencer::seqStore(std::vector<AccelMem> &mems,
                            const Seq &seq)
{
    u64 next[8];
    std::memcpy(next, seq.raw, sizeof(next));
    next[kWordPhase] = static_cast<u64>(seq.phase);
    next[kWordMt] = seq.mt;
    next[kWordNt] = seq.nt;
    next[kWordKt] = seq.kt;
    next[kWordStep] = seq.step;
    next[kWordFetch] = packFetch(seq.fetchActive, seq.fetchStage,
                                 seq.fetchRow, seq.fetchKt);
    next[kWordDrain] = packDrain(seq.drainActive, seq.drainBank,
                                 seq.drainRow, seq.drainMt,
                                 seq.drainNt);
    for (u32 w = 0; w < 8; ++w)
        if (next[w] != seq.raw[w])
            mems[kSysSeq].write(w * 8, &next[w], 8);
}

// --- lifecycle --------------------------------------------------------

void
SystolicSequencer::start(const u64 *args,
                         std::vector<AccelMem> &mems)
{
    aBase_ = args[0];
    bBase_ = args[1];
    cBase_ = args[2];
    cycles_ = 0;
    dmaIn_.reset();
    dmaDrain_.reset();
    status_ = EngineStatus::Running;

    // Architectural reset: write every SEQ word through the bank.
    u64 words[8] = {};
    words[kWordPhase] = static_cast<u64>(Phase::Load);
    words[kWordFetch] = packFetch(true, 0, 0, 0);
    mems[kSysSeq].write(0, words, kSystolicSeqBytes);
    if (!taint_.empty())
        clearTaint(kSysSeq, 0, kSystolicSeqBytes / 8);
}

void
SystolicSequencer::reset()
{
    status_ = EngineStatus::Idle;
    cycles_ = 0;
    dmaIn_.reset();
    dmaDrain_.reset();
    // Taint seeded before the host's CTRL write survives a reset: the
    // flipped bits do too.
}

// --- fetch / drain sequencers -----------------------------------------

void
SystolicSequencer::tickFetch(Seq &seq)
{
    if (!seq.fetchActive || dmaIn_.busy())
        return;
    const u32 kt = seq.fetchKt;
    const u32 bank = kt & 1;
    const u32 ak = params_.activeK(kt);
    const u32 an = params_.activeN(static_cast<u32>(seq.nt));
    const u32 am = params_.activeM(static_cast<u32>(seq.mt));

    DmaTransfer t;
    t.toAccel = true;
    if (seq.fetchStage == 0) {
        if (seq.fetchRow < ak) {
            // One weight row: B[kt*R + row][nt*C .. nt*C + an).
            t.dramAddr = bBase_ +
                         ((static_cast<u64>(kt) * params_.rows +
                           seq.fetchRow) *
                              params_.n +
                          static_cast<u64>(seq.nt) * params_.cols) *
                             8;
            t.component = kSysW0 + bank;
            t.componentOff =
                static_cast<u64>(seq.fetchRow) * params_.cols * 8;
            t.length = an * 8;
            clearTaint(t.component, t.componentOff / 8, an);
            dmaIn_.start(t);
            ++seq.fetchRow;
            return;
        }
        seq.fetchStage = 1;
        seq.fetchRow = 0;
    }
    if (seq.fetchRow < am) {
        // One activation row: A[mt*tileM + row][kt*R .. kt*R + ak).
        t.dramAddr = aBase_ +
                     ((static_cast<u64>(seq.mt) * params_.tileM +
                       seq.fetchRow) *
                          params_.k +
                      static_cast<u64>(kt) * params_.rows) *
                         8;
        t.component = kSysIn0 + bank;
        t.componentOff =
            static_cast<u64>(seq.fetchRow) * params_.rows * 8;
        t.length = ak * 8;
        clearTaint(t.component, t.componentOff / 8, ak);
        dmaIn_.start(t);
        ++seq.fetchRow;
        return;
    }
    seq.fetchActive = false;
}

void
SystolicSequencer::tickDrain(Seq &seq)
{
    if (!seq.drainActive || dmaDrain_.busy())
        return;
    const u32 am = params_.activeM(seq.drainMt);
    const u32 an = params_.activeN(seq.drainNt);
    if (seq.drainRow >= am) {
        seq.drainActive = false;
        ++tilesDone_;
        return;
    }
    DmaTransfer t;
    t.toAccel = false;
    t.component = kSysOut0 + seq.drainBank;
    t.componentOff = static_cast<u64>(seq.drainRow) * params_.cols * 8;
    t.length = an * 8;
    t.dramAddr = cBase_ +
                 ((static_cast<u64>(seq.drainMt) * params_.tileM +
                   seq.drainRow) *
                      params_.n +
                  static_cast<u64>(seq.drainNt) * params_.cols) *
                     8;
    if (!taint_.empty())
        for (u32 c = 0; c < an; ++c)
            if (tainted(t.component, t.componentOff / 8 + c))
                pendingMemTaint_.emplace_back(t.dramAddr + c * 8,
                                              t.dramAddr + c * 8 + 8);
    dmaDrain_.start(t);
    ++seq.drainRow;
}

// --- grid schedule ----------------------------------------------------

bool
SystolicSequencer::fillStep(std::vector<AccelMem> &mems, Seq &seq)
{
    bool ok = true;
    const u32 r = static_cast<u32>(seq.step);
    const u32 bank = kSysW0 + (static_cast<u32>(seq.kt) & 1);
    const u32 ak = params_.activeK(static_cast<u32>(seq.kt));
    const u32 an = params_.activeN(static_cast<u32>(seq.nt));
    for (u32 c = 0; c < params_.cols; ++c) {
        const u64 w = static_cast<u64>(r) * params_.cols + c;
        double v = 0.0;
        bool t = false;
        // Padded rows/columns load zero weights so the remainder tile
        // runs the uniform grid schedule.
        if (r < ak && c < an) {
            v = readF(mems, bank, w, ok);
            t = tainted(bank, w);
        }
        writeF(mems, kSysPeW, w, v, ok);
        setTaint(kSysPeW, w, t);
    }
    ++fillCycles_;
    return ok;
}

bool
SystolicSequencer::runStep(std::vector<AccelMem> &mems, Seq &seq)
{
    bool ok = true;
    const u32 rows = params_.rows;
    const u32 cols = params_.cols;
    const u32 am = params_.activeM(static_cast<u32>(seq.mt));
    const u32 inBank = kSysIn0 + (static_cast<u32>(seq.kt) & 1);
    const u32 oBank =
        kSysOut0 + outBank(seq.mt, seq.nt);
    const u32 ak = params_.activeK(static_cast<u32>(seq.kt));
    const u64 st = seq.step;

    // 1. Output lag: the partial sum that left the bottom row LAST
    //    cycle lands in the output accumulator bank now (so PE_ACC's
    //    bottom row has a real one-cycle read-after-write residency).
    if (st >= rows && st - rows < am) {
        const u64 mOut = st - rows;
        for (u32 c = 0; c < cols; ++c) {
            const u64 src = static_cast<u64>(rows - 1) * cols + c;
            const double v = readF(mems, kSysPeAcc, src, ok);
            bool t = tainted(kSysPeAcc, src);
            const u64 w = mOut * cols + c;
            if (seq.kt == 0) {
                // First k-tile overwrites whatever the bank held.
                writeF(mems, oBank, w, v, ok);
            } else {
                const double prev = readF(mems, oBank, w, ok);
                t = t || tainted(oBank, w);
                writeF(mems, oBank, w, prev + v, ok);
            }
            setTaint(oBank, w, t);
            if (t && lineageOut)
                ++lineageOut->taintedStores;
        }
    }

    // 2. MAC wavefront, bottom row first: each row reads the partial
    //    sum its upstream neighbour latched last cycle. Row r consumes
    //    activation element m = step - r (the diagonal skew).
    for (u32 r = rows; r-- > 0;) {
        const i64 mIdx = static_cast<i64>(st) - static_cast<i64>(r);
        if (mIdx < 0 || mIdx >= static_cast<i64>(am))
            continue;
        double a = 0.0;
        bool aT = false;
        if (r < ak) {
            const u64 word = static_cast<u64>(mIdx) * rows + r;
            a = readF(mems, inBank, word, ok);
            aT = tainted(inBank, word);
        }
        for (u32 c = 0; c < cols; ++c) {
            const u64 pe = static_cast<u64>(r) * cols + c;
            double acc = 0.0;
            bool accT = false;
            if (r > 0) {
                const u64 up = static_cast<u64>(r - 1) * cols + c;
                acc = readF(mems, kSysPeAcc, up, ok);
                accT = tainted(kSysPeAcc, up);
            }
            const double w = readF(mems, kSysPeW, pe, ok);
            const bool wT = tainted(kSysPeW, pe);
            writeF(mems, kSysPeAcc, pe, acc + w * a, ok);
            const bool t = aT || wT || accT;
            setTaint(kSysPeAcc, pe, t);
            if (t) {
                noteConsume();
                if (accT && lineageOut)
                    ++lineageOut->forwardedTaints;
            }
            ++macs_;
        }
    }
    ++runCycles_;
    return ok;
}

// --- main FSM ---------------------------------------------------------

void
SystolicSequencer::cycle(mem::PhysMem &dram,
                         std::vector<AccelMem> &mems, Cycle now)
{
    if (status_ != EngineStatus::Running)
        return;
    now_ = now;
    ++cycles_;

    dmaIn_.cycle(dram, mems);
    dmaDrain_.cycle(dram, mems);
    if (dmaIn_.faulted() || dmaDrain_.faulted()) {
        status_ = EngineStatus::Fault;
        return;
    }

    Seq seq;
    if (!seqLoad(mems, seq)) {
        status_ = EngineStatus::Fault;
        return;
    }

    tickFetch(seq);
    tickDrain(seq);

    bool ok = true;
    switch (seq.phase) {
      case Phase::Load:
        if (!seq.fetchActive && !dmaIn_.busy()) {
            seq.phase = Phase::FillW;
            seq.step = 0;
        }
        break;
      case Phase::FillW:
        if (seq.step >= params_.rows) {
            ok = false;
            break;
        }
        ok = fillStep(mems, seq);
        if (ok && ++seq.step == params_.rows) {
            seq.phase = Phase::Run;
            seq.step = 0;
            // Prefetch the next k-tile's operands into the other
            // banks while the grid computes this one.
            if (seq.kt + 1 < params_.kTiles()) {
                seq.fetchActive = true;
                seq.fetchStage = 0;
                seq.fetchRow = 0;
                seq.fetchKt = static_cast<u32>(seq.kt) + 1;
            }
        }
        break;
      case Phase::Run: {
        const u64 steps =
            params_.activeM(static_cast<u32>(seq.mt)) + params_.rows;
        if (seq.step >= steps) {
            ok = false;
            break;
        }
        ok = runStep(mems, seq);
        if (ok && ++seq.step == steps) {
            if (seq.kt + 1 < params_.kTiles()) {
                ++seq.kt;
                seq.phase = Phase::WaitPrefetch;
            } else {
                seq.phase = Phase::WaitDrain;
            }
        }
        break;
      }
      case Phase::WaitPrefetch:
        if (seq.fetchActive || dmaIn_.busy()) {
            ++stallPrefetch_;
        } else {
            seq.phase = Phase::FillW;
            seq.step = 0;
        }
        break;
      case Phase::WaitDrain:
        // The single drain engine must be free of the previous tile
        // before this tile's OUT bank can start streaming out.
        if (seq.drainActive || dmaDrain_.busy()) {
            ++stallDrain_;
            break;
        }
        seq.drainActive = true;
        seq.drainBank = outBank(seq.mt, seq.nt);
        seq.drainRow = 0;
        seq.drainMt = static_cast<u32>(seq.mt);
        seq.drainNt = static_cast<u32>(seq.nt);
        if (++seq.nt == params_.nTiles()) {
            seq.nt = 0;
            ++seq.mt;
        }
        if (seq.mt == params_.mTiles()) {
            seq.phase = Phase::FinishDrain;
        } else {
            seq.kt = 0;
            seq.step = 0;
            seq.fetchActive = true;
            seq.fetchStage = 0;
            seq.fetchRow = 0;
            seq.fetchKt = 0;
            seq.phase = Phase::Load;
        }
        break;
      case Phase::FinishDrain:
        if (!seq.drainActive && !dmaDrain_.busy()) {
            seq.phase = Phase::Done;
            status_ = EngineStatus::Done;
        }
        break;
      case Phase::Done:
        status_ = EngineStatus::Done;
        break;
      case Phase::Idle:
        // Running with an Idle phase word is a corrupted sequencer.
        ok = false;
        break;
    }

    if (!ok) {
        status_ = EngineStatus::Fault;
        return;
    }
    seqStore(mems, seq);
}

// --- statistics -------------------------------------------------------

void
SystolicSequencer::regStats(stats::Group &g)
{
    g.addFormula(
        "pe_macs",
        [this]() { return static_cast<double>(macs_); },
        "MAC operations issued on the grid");
    g.addFormula(
        "pe_utilization",
        [this]() {
            const double slots =
                static_cast<double>(params_.rows) * params_.cols *
                static_cast<double>(cycles_);
            return slots > 0.0 ? static_cast<double>(macs_) / slots
                               : 0.0;
        },
        "MACs per PE-cycle while the engine ran");
    g.addFormula(
        "run_cycles",
        [this]() { return static_cast<double>(runCycles_); },
        "cycles with the wavefront advancing");
    g.addFormula(
        "fill_cycles",
        [this]() { return static_cast<double>(fillCycles_); },
        "cycles loading weight rows into PE_WREG");
    g.addFormula(
        "stall_prefetch_cycles",
        [this]() { return static_cast<double>(stallPrefetch_); },
        "cycles stalled on operand prefetch");
    g.addFormula(
        "stall_drain_cycles",
        [this]() { return static_cast<double>(stallDrain_); },
        "cycles stalled on the output drain");
    g.addFormula(
        "tiles_drained",
        [this]() { return static_cast<double>(tilesDone_); },
        "output tiles streamed back to DRAM");
    dmaIn_.regStats(g.subgroup("dma_in"));
    dmaDrain_.regStats(g.subgroup("dma_drain"));
}

} // namespace marvel::accel
