/**
 * @file
 * Weight-stationary systolic-array GEMM engine: the second accelerator
 * microarchitecture class next to the dynamic-dataflow datapath.
 *
 * The model is cycle-level and fully state-resident: an R x C grid of
 * MAC PEs (weight register + accumulator register each), double-
 * buffered input/weight/output scratchpad banks, a fetch sequencer
 * that tiles the GEMM onto the grid and prefetches the next k-tile's
 * operands while the grid computes, and a drain sequencer that streams
 * finished output tiles back to DRAM — both over their own DmaEngine.
 *
 * Everything architectural lives in AccelMem components and is
 * accessed exclusively through the AccelMem read/write API, so the
 * existing fault-injection hooks (watches, stuck-at reapply, access
 * profiling for pre-pruning) cover the systolic engine for free:
 *
 *   IN0/IN1     activation tile banks (tileM x R doubles each)
 *   W0/W1       weight tile banks (R x C doubles each)
 *   OUT0/OUT1   output accumulator banks (tileM x C doubles each)
 *   PE_WREG     the grid's resident weight registers (R x C)
 *   PE_ACC      the grid's accumulator-chain registers (R x C)
 *   SEQ         the sequencer's architectural state words (8 x u64)
 *
 * Dataflow: C[m x n] = A[m x k] * B[k x n], tiled as
 * ceil(m/tileM) x ceil(n/C) output tiles, each accumulated over
 * ceil(k/R) k-tiles. Weights stay resident in PE_WREG for one
 * k-tile's activation stream; activations enter with the classic
 * diagonal wavefront skew (row r consumes A-element m = step - r);
 * partial sums flow down the accumulator chain and leave the bottom
 * row into the OUT bank one cycle later. Remainder tiles are computed
 * on the full grid with zero weights in the padded rows/columns, so
 * the grid schedule is uniform for every tile shape.
 *
 * Sequencer state corruption is contained, never undefined behavior:
 * every SEQ word is re-read through the bank each cycle, bounds-checked
 * against the design geometry, and an inconsistent value raises the
 * unit's error line (-> CrashAccelError) exactly like a datapath fault.
 */

#ifndef MARVEL_ACCEL_SYSTOLIC_SYSTOLIC_HH
#define MARVEL_ACCEL_SYSTOLIC_SYSTOLIC_HH

#include <utility>
#include <vector>

#include "accel/dfg.hh"
#include "accel/dma.hh"
#include "accel/spm.hh"
#include "obs/lineage.hh"

namespace marvel::accel
{

/** Component indices of a systolic design (order is fixed). */
enum : u32
{
    kSysIn0 = 0,
    kSysIn1,
    kSysW0,
    kSysW1,
    kSysOut0,
    kSysOut1,
    kSysPeW,
    kSysPeAcc,
    kSysSeq,
    kSysNumComponents,
};

/** SEQ bank size: 8 architectural state words. */
constexpr u32 kSystolicSeqBytes = 64;

/**
 * Geometry of a systolic design: the PE grid, the M-tiling depth, and
 * the GEMM problem it runs. All the SPM sizing / tiling math lives
 * here so it is unit-testable without a simulation.
 */
struct SystolicParams
{
    u32 rows = 8;   ///< PE grid rows (the K direction)
    u32 cols = 8;   ///< PE grid columns (the N direction)
    u32 tileM = 16; ///< activation rows buffered per tile

    u32 m = 64; ///< GEMM: C[m x n] = A[m x k] * B[k x n]
    u32 n = 64;
    u32 k = 64;

    u32 mTiles() const { return (m + tileM - 1) / tileM; }
    u32 nTiles() const { return (n + cols - 1) / cols; }
    u32 kTiles() const { return (k + rows - 1) / rows; }

    /** Real (unpadded) extent of tile `mt` / `nt` / `kt`. */
    u32
    activeM(u32 mt) const
    {
        return mt + 1 < mTiles() || m % tileM == 0 ? tileM : m % tileM;
    }
    u32
    activeN(u32 nt) const
    {
        return nt + 1 < nTiles() || n % cols == 0 ? cols : n % cols;
    }
    u32
    activeK(u32 kt) const
    {
        return kt + 1 < kTiles() || k % rows == 0 ? rows : k % rows;
    }

    /** Byte sizes of the banks this geometry needs. */
    u32 inBankBytes() const { return tileM * rows * 8; }
    u32 wBankBytes() const { return rows * cols * 8; }
    u32 outBankBytes() const { return tileM * cols * 8; }
    u32 peBytes() const { return rows * cols * 8; }

    /** fatal() on degenerate or oversized geometries. */
    void validate() const;
};

/**
 * The fetch/compute/drain sequencer driving one systolic grid.
 * Value-semantic (copied with the owning System on checkpoint); the
 * lineage sink pointer is cleared by the System copy machinery.
 */
class SystolicSequencer
{
  public:
    /** Architectural phase, stored in SEQ word 0. */
    enum class Phase : u64
    {
        Idle = 0,
        Load,         ///< blocking fetch of a tile's first k-tile
        FillW,        ///< one weight row -> PE_WREG per cycle
        Run,          ///< wavefront MACs + output lag
        WaitPrefetch, ///< next k-tile's operands still in flight
        WaitDrain,    ///< previous tile still draining its OUT bank
        FinishDrain,  ///< last tile's drain completing
        Done,
    };

    void configure(const SystolicParams &params) { params_ = params; }
    const SystolicParams &params() const { return params_; }

    /** Begin a GEMM: args[0..2] = DRAM addresses of A, B, C. */
    void start(const u64 *args, std::vector<AccelMem> &mems);
    void reset();

    /** Advance one accelerator clock while Running. */
    void cycle(mem::PhysMem &dram, std::vector<AccelMem> &mems,
               Cycle now);

    EngineStatus status() const { return status_; }
    bool running() const { return status_ == EngineStatus::Running; }
    Cycle cyclesRun() const { return cycles_; }
    u64 macsExecuted() const { return macs_; }

    /** Register utilization/stall/DMA statistics under g. */
    void regStats(stats::Group &g);

    /**
     * True when future sequencing is indistinguishable. Status must
     * match; a Running sequencer additionally compares its cycle count
     * (the watchdog input), programmed base addresses, and both DMA
     * engines. All other architectural state (SEQ words, banks, PE
     * registers) lives in AccelMem components and is compared by the
     * owning ComputeUnit. now_ is a lineage timestamp and the
     * remaining members are statistics or taint shadows — none feed
     * back into sequencing.
     */
    bool
    convergedWith(const SystolicSequencer &other) const
    {
        if (status_ != other.status_)
            return false;
        if (status_ != EngineStatus::Running)
            return true;
        return cycles_ == other.cycles_ && aBase_ == other.aBase_ &&
               bBase_ == other.bBase_ && cBase_ == other.cBase_ &&
               dmaIn_.convergedWith(other.dmaIn_) &&
               dmaDrain_.convergedWith(other.dmaDrain_);
    }

    // --- lineage (obs::PropagationTrace) ---------------------------------
    /** Sink for taint bookkeeping; null outside lineage runs. */
    obs::PropagationTrace *lineageOut = nullptr;

    /** Seed exact word-granular taint on one component word. */
    void seedTaintWord(u32 memIdx, u64 entry);

    /** DRAM byte ranges tainted by drained output words; the SoC tick
     *  hands them to the CPU's memory-taint tracker and clears. */
    std::vector<std::pair<Addr, Addr>> &
    pendingMemTaint()
    {
        return pendingMemTaint_;
    }

  private:
    /** SEQ state words, unpacked for one cycle's work. */
    struct Seq
    {
        u64 raw[8] = {};
        Phase phase = Phase::Idle;
        u64 mt = 0, nt = 0, kt = 0;
        u64 step = 0;
        bool fetchActive = false;
        u32 fetchStage = 0; ///< 0 = weight rows, 1 = activation rows
        u32 fetchRow = 0;
        u32 fetchKt = 0;
        bool drainActive = false;
        u32 drainBank = 0;
        u32 drainRow = 0;
        u32 drainMt = 0, drainNt = 0;
    };

    bool seqLoad(std::vector<AccelMem> &mems, Seq &seq);
    void seqStore(std::vector<AccelMem> &mems, const Seq &seq);

    void tickFetch(Seq &seq);
    void tickDrain(Seq &seq);
    bool fillStep(std::vector<AccelMem> &mems, Seq &seq);
    bool runStep(std::vector<AccelMem> &mems, Seq &seq);

    double readF(std::vector<AccelMem> &mems, u32 comp, u64 word,
                 bool &ok);
    void writeF(std::vector<AccelMem> &mems, u32 comp, u64 word,
                double value, bool &ok);

    // exact word-granular taint shadow (empty until seeded)
    bool tainted(u32 comp, u64 word) const;
    void setTaint(u32 comp, u64 word, bool value);
    void clearTaint(u32 comp, u64 word, u64 count);
    void noteConsume();
    u64 entriesOf(u32 comp) const;

    u32 outBank(u64 mt, u64 nt) const;

    SystolicParams params_;
    EngineStatus status_ = EngineStatus::Idle;
    Cycle cycles_ = 0;
    Cycle now_ = 0;
    Addr aBase_ = 0, bBase_ = 0, cBase_ = 0;

    DmaEngine dmaIn_;    ///< fetch sequencer's engine (A and B tiles)
    DmaEngine dmaDrain_; ///< drain sequencer's engine (C tiles)

    // --- statistics ----------------------------------------------------
    u64 macs_ = 0;          ///< MAC operations issued
    u64 runCycles_ = 0;     ///< cycles with the wavefront advancing
    u64 fillCycles_ = 0;    ///< cycles loading PE_WREG
    u64 stallPrefetch_ = 0; ///< cycles stalled on operand prefetch
    u64 stallDrain_ = 0;    ///< cycles stalled on output drain
    u64 tilesDone_ = 0;     ///< output tiles drained

    std::vector<std::vector<u8>> taint_;
    std::vector<std::pair<Addr, Addr>> pendingMemTaint_;
};

} // namespace marvel::accel

#endif // MARVEL_ACCEL_SYSTOLIC_SYSTOLIC_HH
