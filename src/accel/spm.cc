#include "accel/spm.hh"

#include <cstring>

namespace marvel::accel
{

const char *
memKindName(MemKind kind)
{
    return kind == MemKind::Spm ? "SPM" : "RegBank";
}

bool
AccelMem::read(u64 offset, void *out, u32 len)
{
    if (!inRange(offset, len))
        return false;
    std::memcpy(out, data_.data() + offset, len);
    reads.inc();
    bytesRead.inc(len);
    if (faults_.active()) {
        // Entries are 8-byte words; map the byte range onto them.
        const u64 firstWord = offset / 8;
        const u64 lastWord = (offset + len - 1) / 8;
        for (u64 w = firstWord; w <= lastWord; ++w) {
            const u64 lo = w == firstWord ? (offset % 8) * 8 : 0;
            const u64 hi =
                w == lastWord ? ((offset + len - 1) % 8) * 8 + 7 : 63;
            faults_.noteRead(static_cast<u32>(w), static_cast<u32>(lo),
                             static_cast<u32>(hi));
        }
    }
    return true;
}

bool
AccelMem::write(u64 offset, const void *in, u32 len)
{
    if (!inRange(offset, len))
        return false;
    std::memcpy(data_.data() + offset, in, len);
    writes.inc();
    bytesWritten.inc(len);
    if (faults_.active()) {
        const u64 firstWord = offset / 8;
        const u64 lastWord = (offset + len - 1) / 8;
        for (u64 w = firstWord; w <= lastWord; ++w) {
            const u64 lo = w == firstWord ? (offset % 8) * 8 : 0;
            const u64 hi =
                w == lastWord ? ((offset + len - 1) % 8) * 8 + 7 : 63;
            faults_.noteWrite(static_cast<u32>(w),
                              static_cast<u32>(lo),
                              static_cast<u32>(hi));
        }
        applyStuck(offset, offset + len - 1);
    }
    return true;
}

void
AccelMem::regStats(stats::Group &g)
{
    g.addCounter("reads", &reads, "read accesses");
    g.addCounter("writes", &writes, "write accesses");
    g.addCounter("bytes_read", &bytesRead, "bytes read");
    g.addCounter("bytes_written", &bytesWritten, "bytes written");
}

void
AccelMem::clear()
{
    std::fill(data_.begin(), data_.end(), 0);
}

void
AccelMem::applyStuck(u64 byteLo, u64 byteHi)
{
    for (const StuckBit &s : faults_.stuck()) {
        const u64 byteIdx = static_cast<u64>(s.entry) * 8 + s.bit / 8;
        if (byteIdx < byteLo || byteIdx > byteHi)
            continue;
        if (s.value)
            data_[byteIdx] |= static_cast<u8>(1u << (s.bit % 8));
        else
            data_[byteIdx] &= static_cast<u8>(~(1u << (s.bit % 8)));
    }
}

} // namespace marvel::accel
