#include "accel/designs/designs.hh"

#include "common/log.hh"
#include "mir/builder.hh"

namespace marvel::accel::designs
{

using mir::FunctionBuilder;
using mir::ModuleBuilder;
using mir::VReg;

namespace
{

/** Local address of component c of a design based at `base`. */
constexpr Addr
comp(Addr base, unsigned c)
{
    return base + c * kComponentStride;
}

/** Default watchdog: generous multiple of any fault-free runtime. */
constexpr u64 kWatchdog = 4'000'000;

} // namespace

// =====================================================================
// BFS — RegBanks NODES (edge ranges) and EDGES (target ids); level-
// synchronous traversal with an explicit queue. Faulty indices walk
// out of the component ranges (bus error) or blow the watchdog: the
// crash-dominated profile of Fig. 14.
// =====================================================================

AccelDesign
makeBfs(Addr base)
{
    AccelDesign design;
    design.name = "bfs";
    design.components = {
        {"EDGES", 16384, MemKind::RegBank},
        {"NODES", 2048, MemKind::RegBank},
        {"LEVELS", 2048, MemKind::Spm},
        {"QUEUE", 2048, MemKind::Spm},
    };
    design.dmaIn = {{0, 1, 2048}, {1, 0, 16384}};
    design.dmaOut = {{2, 2, 2048}};
    design.watchdogCycles = kWatchdog;

    const Addr edges = comp(base, 0);
    const Addr nodes = comp(base, 1);
    const Addr levels = comp(base, 2);
    const Addr queue = comp(base, 3);
    const u32 numNodes = DesignSizes::bfsNodes;

    ModuleBuilder mb;
    FunctionBuilder fb = mb.func("kernel", {});
    // levels[i] = -1 for all nodes.
    VReg levBase = fb.constI(static_cast<i64>(levels));
    VReg minus1 = fb.constI(-1);
    {
        auto loop = fb.beginLoop(fb.constI(0), fb.constI(numNodes));
        VReg off = fb.shlI(loop.idx, 3);
        fb.st8(fb.add(levBase, off), minus1);
        fb.endLoop(loop);
    }
    // levels[0] = 0; queue[0] = 0; head = 0; tail = 1.
    VReg zero = fb.constI(0);
    fb.st8(levBase, zero);
    VReg queueBase = fb.constI(static_cast<i64>(queue));
    fb.st8(queueBase, zero);
    VReg head = fb.mov(zero);
    VReg tail = fb.constI(1);

    // while (head < tail)
    auto outer = fb.beginLoop(head, tail);
    {
        VReg node = fb.ld8(fb.add(queueBase, fb.shlI(outer.idx, 3)));
        VReg nodeWord =
            fb.ld8(fb.add(fb.constI(static_cast<i64>(nodes)),
                          fb.shlI(node, 3)));
        // Node word packs (begin << 32) | end.
        VReg begin = fb.shr(nodeWord, fb.constI(32));
        VReg end = fb.band(nodeWord, fb.constI(0xffffffff));
        VReg myLevel =
            fb.ld8(fb.add(levBase, fb.shlI(node, 3)));
        VReg nextLevel = fb.addI(myLevel, 1);
        auto inner = fb.beginLoop(begin, end);
        {
            VReg target =
                fb.ld8(fb.add(fb.constI(static_cast<i64>(edges)),
                              fb.shlI(inner.idx, 3)));
            VReg tLevAddr = fb.add(levBase, fb.shlI(target, 3));
            VReg tLevel = fb.ld8(tLevAddr);
            auto visit = fb.newBlock();
            auto skip = fb.newBlock();
            VReg unseen = fb.cmpLt(tLevel, zero);
            fb.br(unseen, visit, skip);
            fb.setBlock(visit);
            fb.st8(tLevAddr, nextLevel);
            fb.st8(fb.add(queueBase, fb.shlI(tail, 3)), target);
            fb.assign(tail, fb.addI(tail, 1));
            fb.jmp(skip);
            fb.setBlock(skip);
        }
        fb.endLoop(inner);
    }
    fb.endLoop(outer);
    fb.retVoid();
    mb.setEntry("kernel");
    design.kernel = mb.module();
    mir::verify(design.kernel);
    return design;
}

// =====================================================================
// FFT — 1024-point iterative radix-2 over split REAL/IMG SPMs with
// precomputed twiddle factors. Any surviving flip lands in pure data:
// the all-SDC profile of Fig. 14.
// =====================================================================

AccelDesign
makeFft(Addr base)
{
    AccelDesign design;
    design.name = "fft";
    design.components = {
        {"REAL", 8192, MemKind::Spm},
        {"IMG", 8192, MemKind::Spm},
        {"TWID_R", 4096, MemKind::Spm},
        {"TWID_I", 4096, MemKind::Spm},
    };
    design.dmaIn = {{0, 0, 8192}, {1, 1, 8192}, {2, 2, 4096},
                    {3, 3, 4096}};
    design.dmaOut = {{4, 0, 8192}, {5, 1, 8192}};
    design.watchdogCycles = kWatchdog;

    const Addr realA = comp(base, 0);
    const Addr imagA = comp(base, 1);
    const Addr twr = comp(base, 2);
    const Addr twi = comp(base, 3);
    const u32 n = DesignSizes::fftPoints;

    ModuleBuilder mb;
    FunctionBuilder fb = mb.func("kernel", {});
    VReg realBase = fb.constI(static_cast<i64>(realA));
    VReg imagBase = fb.constI(static_cast<i64>(imagA));
    VReg twrBase = fb.constI(static_cast<i64>(twr));
    VReg twiBase = fb.constI(static_cast<i64>(twi));
    VReg nReg = fb.constI(n);

    // for (span = n/2; span >= 1; span /= 2)
    VReg span = fb.constI(n / 2);
    auto spanHead = fb.newBlock();
    auto spanBody = fb.newBlock();
    auto spanExit = fb.newBlock();
    fb.jmp(spanHead);
    fb.setBlock(spanHead);
    VReg spanLive = fb.cmpLt(fb.constI(0), span);
    fb.br(spanLive, spanBody, spanExit);
    fb.setBlock(spanBody);
    {
        // for (odd = span; odd < n; odd = (odd + 1) | span)
        VReg odd = fb.mov(span);
        auto oddHead = fb.newBlock();
        auto oddBody = fb.newBlock();
        auto oddExit = fb.newBlock();
        fb.jmp(oddHead);
        fb.setBlock(oddHead);
        VReg oddLive = fb.cmpLt(odd, nReg);
        fb.br(oddLive, oddBody, oddExit);
        fb.setBlock(oddBody);
        {
            VReg even = fb.bxor(odd, span);
            VReg offE = fb.shlI(even, 3);
            VReg offO = fb.shlI(odd, 3);
            VReg er = fb.ldf8(fb.add(realBase, offE));
            VReg or_ = fb.ldf8(fb.add(realBase, offO));
            VReg ei = fb.ldf8(fb.add(imagBase, offE));
            VReg oi = fb.ldf8(fb.add(imagBase, offO));
            VReg sumR = fb.fadd(er, or_);
            VReg difR = fb.fsub(er, or_);
            VReg sumI = fb.fadd(ei, oi);
            VReg difI = fb.fsub(ei, oi);
            fb.stf8(fb.add(realBase, offE), sumR);
            fb.stf8(fb.add(imagBase, offE), sumI);
            // twiddle index: (even & (span-1)) * (n/2/span)
            VReg mask = fb.addI(span, -1);
            VReg tidx =
                fb.mul(fb.band(even, mask),
                       fb.div(fb.constI(n / 2), span));
            VReg toff = fb.shlI(tidx, 3);
            VReg wr = fb.ldf8(fb.add(twrBase, toff));
            VReg wi = fb.ldf8(fb.add(twiBase, toff));
            VReg newR = fb.fsub(fb.fmul(wr, difR),
                                fb.fmul(wi, difI));
            VReg newI = fb.fadd(fb.fmul(wr, difI),
                                fb.fmul(wi, difR));
            fb.stf8(fb.add(realBase, offO), newR);
            fb.stf8(fb.add(imagBase, offO), newI);
        }
        fb.assign(odd, fb.bor(fb.addI(odd, 1), span));
        fb.jmp(oddHead);
        fb.setBlock(oddExit);
    }
    fb.assign(span, fb.shr(span, fb.constI(1)));
    fb.jmp(spanHead);
    fb.setBlock(spanExit);
    fb.retVoid();
    mb.setEntry("kernel");
    design.kernel = mb.module();
    mir::verify(design.kernel);
    return design;
}

// =====================================================================
// GEMM — 64x64 double matrix multiply; the inner product is unrolled
// 8x so that the multiplier budget (Fig. 17) governs throughput.
// =====================================================================

AccelDesign
makeGemm(Addr base, const FuConfig *fuOverride)
{
    AccelDesign design;
    design.name = "gemm";
    design.components = {
        {"MATRIX1", 32768, MemKind::Spm},
        {"MATRIX2", 32768, MemKind::Spm},
        {"MATRIX3", 32768, MemKind::Spm},
    };
    design.dmaIn = {{0, 0, 32768}, {1, 1, 32768}};
    design.dmaOut = {{2, 2, 32768}};
    design.watchdogCycles = kWatchdog * 4;
    // Generous default memory/ALU bandwidth so the floating-point
    // units are the scaling knob (Fig. 17).
    design.fu.counts[static_cast<unsigned>(isa::FuClass::IntAlu)] = 16;
    design.fu.counts[static_cast<unsigned>(isa::FuClass::MemPort)] = 16;
    design.fu.counts[static_cast<unsigned>(isa::FuClass::FpAlu)] = 8;
    design.fu.counts[static_cast<unsigned>(isa::FuClass::FpMul)] = 8;
    if (fuOverride)
        design.fu = *fuOverride;

    const Addr m1 = comp(base, 0);
    const Addr m2 = comp(base, 1);
    const Addr m3 = comp(base, 2);
    const u32 dim = DesignSizes::gemmDim;

    ModuleBuilder mb;
    FunctionBuilder fb = mb.func("kernel", {});
    VReg aBase = fb.constI(static_cast<i64>(m1));
    VReg bBase = fb.constI(static_cast<i64>(m2));
    VReg cBase = fb.constI(static_cast<i64>(m3));
    VReg dimReg = fb.constI(dim);

    auto iLoop = fb.beginLoop(fb.constI(0), dimReg);
    {
        VReg rowOff = fb.shlI(fb.mulI(iLoop.idx, dim), 3);
        auto jLoop = fb.beginLoop(fb.constI(0), dimReg);
        {
            // 8 independent partial sums (unroll lanes) keep the
            // multiply-accumulate lanes parallel, so the FpMul/FpAlu
            // budget (Fig. 17's knob) bounds throughput rather than a
            // serial accumulation chain.
            VReg partial[8];
            for (auto &lane : partial)
                lane = fb.constF(0.0);
            auto kLoop =
                fb.beginLoop(fb.constI(0), dimReg);
            {
                for (unsigned u = 0; u < 8; ++u) {
                    VReg k = fb.addI(kLoop.idx, u);
                    VReg aAddr = fb.add(
                        aBase, fb.add(rowOff, fb.shlI(k, 3)));
                    VReg bAddr = fb.add(
                        bBase,
                        fb.add(fb.shlI(fb.mulI(k, dim), 3),
                               fb.shlI(jLoop.idx, 3)));
                    VReg prod =
                        fb.fmul(fb.ldf8(aAddr), fb.ldf8(bAddr));
                    fb.assign(partial[u],
                              fb.fadd(partial[u], prod));
                }
            }
            fb.endLoop(kLoop, 8);
            VReg s01 = fb.fadd(partial[0], partial[1]);
            VReg s23 = fb.fadd(partial[2], partial[3]);
            VReg s45 = fb.fadd(partial[4], partial[5]);
            VReg s67 = fb.fadd(partial[6], partial[7]);
            VReg sum = fb.fadd(fb.fadd(s01, s23),
                               fb.fadd(s45, s67));
            VReg cAddr = fb.add(
                cBase, fb.add(rowOff, fb.shlI(jLoop.idx, 3)));
            fb.stf8(cAddr, sum);
        }
        fb.endLoop(jLoop);
    }
    fb.endLoop(iLoop);
    fb.retVoid();
    mb.setEntry("kernel");
    design.kernel = mb.module();
    mir::verify(design.kernel);
    return design;
}

// =====================================================================
// GEMM (systolic) — the identical 64x64 GEMM mapped onto the
// weight-stationary systolic engine. Components follow the kSys*
// index order the sequencer expects: double-buffered input/weight/
// output scratchpads, the PE weight and accumulator register files,
// and the SEQ bank holding every word of architectural sequencer
// state (the fault-injection surface of the control path).
// =====================================================================

AccelDesign
makeGemmSystolic(Addr base, const SystolicParams *gridOverride)
{
    (void)base; // no MIR kernel: nothing addresses the components
    AccelDesign design;
    design.name = "gemm_systolic";
    design.engineClass = EngineClass::Systolic;
    SystolicParams p;
    if (gridOverride) {
        p.rows = gridOverride->rows;
        p.cols = gridOverride->cols;
        p.tileM = gridOverride->tileM;
    }
    p.m = p.n = p.k = DesignSizes::gemmDim;
    p.validate();
    design.systolic = p;
    design.components = {
        {"IN0", p.inBankBytes(), MemKind::Spm},
        {"IN1", p.inBankBytes(), MemKind::Spm},
        {"W0", p.wBankBytes(), MemKind::Spm},
        {"W1", p.wBankBytes(), MemKind::Spm},
        {"OUT0", p.outBankBytes(), MemKind::Spm},
        {"OUT1", p.outBankBytes(), MemKind::Spm},
        {"PE_WREG", p.peBytes(), MemKind::RegBank},
        {"PE_ACC", p.peBytes(), MemKind::RegBank},
        {"SEQ", kSystolicSeqBytes, MemKind::RegBank},
    };
    // The fetch/drain sequencers stream tiles themselves; the shared
    // host-visible DMA lists stay empty.
    design.watchdogCycles = kWatchdog * 4;
    return design;
}

// =====================================================================
// MD-KNN — Lennard-Jones force from an 8-neighbour list. Flips in
// NLADDR either index outside the position SPMs (crash) or pick the
// wrong neighbour (SDC).
// =====================================================================

AccelDesign
makeMdKnn(Addr base)
{
    AccelDesign design;
    design.name = "md_knn";
    design.components = {
        {"NLADDR", 16384, MemKind::Spm},
        {"FORCEX", 2048, MemKind::Spm},
        {"POSX", 2048, MemKind::Spm},
        {"POSY", 2048, MemKind::Spm},
        {"POSZ", 2048, MemKind::Spm},
    };
    design.dmaIn = {{0, 0, 16384}, {1, 2, 2048}, {2, 3, 2048},
                    {3, 4, 2048}};
    design.dmaOut = {{4, 1, 2048}};
    design.watchdogCycles = kWatchdog;

    const Addr nl = comp(base, 0);
    const Addr forceX = comp(base, 1);
    const Addr posX = comp(base, 2);
    const Addr posY = comp(base, 3);
    const Addr posZ = comp(base, 4);
    const u32 atoms = DesignSizes::mdAtoms;
    const u32 nn = DesignSizes::mdNeighbours;

    ModuleBuilder mb;
    FunctionBuilder fb = mb.func("kernel", {});
    VReg nlBase = fb.constI(static_cast<i64>(nl));
    VReg fxBase = fb.constI(static_cast<i64>(forceX));
    VReg pxBase = fb.constI(static_cast<i64>(posX));
    VReg pyBase = fb.constI(static_cast<i64>(posY));
    VReg pzBase = fb.constI(static_cast<i64>(posZ));

    auto iLoop = fb.beginLoop(fb.constI(0), fb.constI(atoms));
    {
        VReg iOff = fb.shlI(iLoop.idx, 3);
        VReg xi = fb.ldf8(fb.add(pxBase, iOff));
        VReg yi = fb.ldf8(fb.add(pyBase, iOff));
        VReg zi = fb.ldf8(fb.add(pzBase, iOff));
        VReg fx = fb.constF(0.0);
        auto kLoop = fb.beginLoop(fb.constI(0), fb.constI(nn));
        {
            VReg slot = fb.add(fb.mulI(iLoop.idx, nn), kLoop.idx);
            VReg j = fb.ld8(fb.add(nlBase, fb.shlI(slot, 3)));
            VReg jOff = fb.shlI(j, 3);
            VReg xj = fb.ldf8(fb.add(pxBase, jOff));
            VReg yj = fb.ldf8(fb.add(pyBase, jOff));
            VReg zj = fb.ldf8(fb.add(pzBase, jOff));
            VReg dx = fb.fsub(xi, xj);
            VReg dy = fb.fsub(yi, yj);
            VReg dz = fb.fsub(zi, zj);
            VReg r2 = fb.fadd(fb.fadd(fb.fmul(dx, dx),
                                      fb.fmul(dy, dy)),
                              fb.fmul(dz, dz));
            VReg inv2 = fb.fdiv(fb.constF(1.0), r2);
            VReg inv6 =
                fb.fmul(fb.fmul(inv2, inv2), inv2);
            VReg potential =
                fb.fmul(inv6,
                        fb.fsub(fb.fmul(fb.constF(1.5), inv6),
                                fb.constF(2.0)));
            fb.assign(fx, fb.fadd(fx, fb.fmul(potential, dx)));
        }
        fb.endLoop(kLoop);
        fb.stf8(fb.add(fxBase, iOff), fx);
    }
    fb.endLoop(iLoop);
    fb.retVoid();
    mb.setEntry("kernel");
    design.kernel = mb.module();
    mir::verify(design.kernel);
    return design;
}

// =====================================================================
// MERGESORT — bottom-up merge sort over the MAIN SPM with TEMP as the
// merge buffer. TEMP's continuous stream of overwrites masks most
// faults; MAIN keeps live data longer (Fig. 14 discussion).
// =====================================================================

AccelDesign
makeMergesort(Addr base)
{
    AccelDesign design;
    design.name = "mergesort";
    design.components = {
        {"MAIN", 8192, MemKind::Spm},
        {"TEMP", 8192, MemKind::Spm},
    };
    design.dmaIn = {{0, 0, 8192}};
    design.dmaOut = {{1, 0, 8192}};
    design.watchdogCycles = kWatchdog;

    const Addr mainA = comp(base, 0);
    const Addr tempA = comp(base, 1);
    const u32 n = DesignSizes::sortLen;

    ModuleBuilder mb;
    FunctionBuilder fb = mb.func("kernel", {});
    VReg mainBase = fb.constI(static_cast<i64>(mainA));
    VReg tempBase = fb.constI(static_cast<i64>(tempA));
    VReg nReg = fb.constI(n);

    // for (width = 1; width < n; width *= 2)
    VReg width = fb.constI(1);
    auto widthHead = fb.newBlock();
    auto widthBody = fb.newBlock();
    auto widthExit = fb.newBlock();
    fb.jmp(widthHead);
    fb.setBlock(widthHead);
    VReg widthLive = fb.cmpLt(width, nReg);
    fb.br(widthLive, widthBody, widthExit);
    fb.setBlock(widthBody);
    {
        // for (lo = 0; lo < n; lo += 2*width) merge [lo,mid),[mid,hi)
        VReg lo = fb.constI(0);
        auto loHead = fb.newBlock();
        auto loBody = fb.newBlock();
        auto loExit = fb.newBlock();
        fb.jmp(loHead);
        fb.setBlock(loHead);
        VReg loLive = fb.cmpLt(lo, nReg);
        fb.br(loLive, loBody, loExit);
        fb.setBlock(loBody);
        {
            VReg mid0 = fb.add(lo, width);
            VReg mid = fb.select(fb.cmpLt(mid0, nReg), mid0, nReg);
            VReg hi0 = fb.add(lo, fb.shlI(width, 1));
            VReg hi = fb.select(fb.cmpLt(hi0, nReg), hi0, nReg);
            VReg a = fb.mov(lo);
            VReg b = fb.mov(mid);
            // for (k = lo; k < hi; ++k) pick smaller head into TEMP
            auto kLoop = fb.beginLoop(lo, hi);
            {
                VReg aLive = fb.cmpLt(a, mid);
                VReg bLive = fb.cmpLt(b, hi);
                // The engine issues both loads unconditionally, so
                // clamp the exhausted side's index into range (its
                // value is discarded by the select below).
                VReg nM1 = fb.constI(n - 1);
                VReg aC = fb.select(aLive, a, fb.constI(0));
                VReg bC = fb.select(bLive, b, nM1);
                VReg av = fb.ld8(fb.add(mainBase, fb.shlI(aC, 3)));
                VReg bv = fb.ld8(fb.add(mainBase, fb.shlI(bC, 3)));
                // takeA = aLive && (!bLive || av <= bv)
                VReg cmp = fb.cmpLe(av, bv);
                VReg notB = fb.bxor(bLive, fb.constI(1));
                VReg takeA =
                    fb.band(aLive, fb.bor(notB, cmp));
                VReg chosen = fb.select(takeA, av, bv);
                fb.st8(fb.add(tempBase, fb.shlI(kLoop.idx, 3)),
                       chosen);
                fb.assign(a, fb.add(a, takeA));
                fb.assign(b,
                          fb.add(b, fb.bxor(takeA, fb.constI(1))));
            }
            fb.endLoop(kLoop);
            // copy back
            auto cLoop = fb.beginLoop(lo, hi);
            {
                VReg v = fb.ld8(
                    fb.add(tempBase, fb.shlI(cLoop.idx, 3)));
                fb.st8(fb.add(mainBase, fb.shlI(cLoop.idx, 3)), v);
            }
            fb.endLoop(cLoop);
        }
        fb.assign(lo, fb.add(lo, fb.shlI(width, 1)));
        fb.jmp(loHead);
        fb.setBlock(loExit);
    }
    fb.assign(width, fb.shlI(width, 1));
    fb.jmp(widthHead);
    fb.setBlock(widthExit);
    fb.retVoid();
    mb.setEntry("kernel");
    design.kernel = mb.module();
    mir::verify(design.kernel);
    return design;
}

// =====================================================================
// SPMV — CRS sparse matrix-vector product. COLS entries index the
// dense vector (crash potential); VAL entries are pure data (SDC).
// =====================================================================

AccelDesign
makeSpmv(Addr base)
{
    AccelDesign design;
    design.name = "spmv";
    design.components = {
        {"VAL", 13328, MemKind::Spm},
        {"COLS", 6664, MemKind::Spm},
        {"ROWDELIM", 1032, MemKind::Spm},
        {"VEC", 1024, MemKind::Spm},
        {"OUT", 1024, MemKind::Spm},
    };
    design.dmaIn = {{0, 0, 13328}, {1, 1, 6664}, {2, 2, 1032},
                    {3, 3, 1024}};
    design.dmaOut = {{4, 4, 1024}};
    design.watchdogCycles = kWatchdog;

    const Addr val = comp(base, 0);
    const Addr cols = comp(base, 1);
    const Addr rowd = comp(base, 2);
    const Addr vec = comp(base, 3);
    const Addr out = comp(base, 4);
    const u32 rows = DesignSizes::spmvRows;

    ModuleBuilder mb;
    FunctionBuilder fb = mb.func("kernel", {});
    VReg valBase = fb.constI(static_cast<i64>(val));
    VReg colBase = fb.constI(static_cast<i64>(cols));
    VReg rowBase = fb.constI(static_cast<i64>(rowd));
    VReg vecBase = fb.constI(static_cast<i64>(vec));
    VReg outBase = fb.constI(static_cast<i64>(out));

    auto rLoop = fb.beginLoop(fb.constI(0), fb.constI(rows));
    {
        VReg beg = fb.ld8(
            fb.add(rowBase, fb.shlI(rLoop.idx, 3)));
        VReg end = fb.ld8(
            fb.add(rowBase, fb.shlI(fb.addI(rLoop.idx, 1), 3)));
        VReg sum = fb.constF(0.0);
        auto eLoop = fb.beginLoop(beg, end);
        {
            VReg v = fb.ldf8(
                fb.add(valBase, fb.shlI(eLoop.idx, 3)));
            VReg col = fb.ld4u(
                fb.add(colBase, fb.shlI(eLoop.idx, 2)));
            VReg x =
                fb.ldf8(fb.add(vecBase, fb.shlI(col, 3)));
            fb.assign(sum, fb.fadd(sum, fb.fmul(v, x)));
        }
        fb.endLoop(eLoop);
        fb.stf8(fb.add(outBase, fb.shlI(rLoop.idx, 3)), sum);
    }
    fb.endLoop(rLoop);
    fb.retVoid();
    mb.setEntry("kernel");
    design.kernel = mb.module();
    mir::verify(design.kernel);
    return design;
}

// =====================================================================
// STENCIL2D — 3x3 convolution from ORIG to SOL with the FILTER
// register bank (Table IV: 360 bytes).
// =====================================================================

AccelDesign
makeStencil2d(Addr base)
{
    AccelDesign design;
    design.name = "stencil2d";
    design.components = {
        {"ORIG", 32768, MemKind::Spm},
        {"SOL", 32768, MemKind::Spm},
        {"FILTER", 360, MemKind::RegBank},
    };
    design.dmaIn = {{0, 0, 32768}, {1, 2, 360}};
    design.dmaOut = {{2, 1, 32768}};
    design.watchdogCycles = kWatchdog;

    const Addr orig = comp(base, 0);
    const Addr sol = comp(base, 1);
    const Addr filt = comp(base, 2);
    const u32 rows = DesignSizes::st2Rows;
    const u32 colsN = DesignSizes::st2Cols;

    ModuleBuilder mb;
    FunctionBuilder fb = mb.func("kernel", {});
    VReg origBase = fb.constI(static_cast<i64>(orig));
    VReg solBase = fb.constI(static_cast<i64>(sol));
    VReg filtBase = fb.constI(static_cast<i64>(filt));

    auto rLoop =
        fb.beginLoop(fb.constI(1), fb.constI(rows - 1));
    {
        auto cLoop =
            fb.beginLoop(fb.constI(1), fb.constI(colsN - 1));
        {
            VReg acc = fb.constF(0.0);
            for (int dr = -1; dr <= 1; ++dr) {
                for (int dc = -1; dc <= 1; ++dc) {
                    const int k = (dr + 1) * 3 + (dc + 1);
                    VReg rr = fb.addI(rLoop.idx, dr);
                    VReg cc = fb.addI(cLoop.idx, dc);
                    VReg cell = fb.add(
                        fb.mulI(rr, colsN), cc);
                    VReg v = fb.ldf8(
                        fb.add(origBase, fb.shlI(cell, 3)));
                    VReg w =
                        fb.ldf8(filtBase, 8 * k);
                    fb.assign(acc, fb.fadd(acc, fb.fmul(v, w)));
                }
            }
            VReg cell = fb.add(fb.mulI(rLoop.idx, colsN),
                               cLoop.idx);
            fb.stf8(fb.add(solBase, fb.shlI(cell, 3)), acc);
        }
        fb.endLoop(cLoop);
    }
    fb.endLoop(rLoop);
    fb.retVoid();
    mb.setEntry("kernel");
    design.kernel = mb.module();
    mir::verify(design.kernel);
    return design;
}

// =====================================================================
// STENCIL3D — 7-point stencil with the two coefficients in the C_VAR
// register bank (Table IV: 8 bytes).
// =====================================================================

AccelDesign
makeStencil3d(Addr base)
{
    AccelDesign design;
    design.name = "stencil3d";
    design.components = {
        {"ORIG", 65536, MemKind::Spm},
        {"SOL", 65536, MemKind::Spm},
        {"C_VAR", 8, MemKind::RegBank},
    };
    design.dmaIn = {{0, 0, 65536}, {1, 2, 8}};
    design.dmaOut = {{2, 1, 65536}};
    design.watchdogCycles = kWatchdog * 2;

    const Addr orig = comp(base, 0);
    const Addr sol = comp(base, 1);
    const Addr cvar = comp(base, 2);
    const u32 nx = DesignSizes::st3X;
    const u32 ny = DesignSizes::st3Y;
    const u32 nz = DesignSizes::st3Z;

    ModuleBuilder mb;
    FunctionBuilder fb = mb.func("kernel", {});
    VReg origBase = fb.constI(static_cast<i64>(orig));
    VReg solBase = fb.constI(static_cast<i64>(sol));
    VReg cvarBase = fb.constI(static_cast<i64>(cvar));
    // C_VAR packs two signed 32-bit coefficients.
    VReg c0 = fb.itof(fb.ld4s(cvarBase, 0));
    VReg c1 = fb.itof(fb.ld4s(cvarBase, 4));

    auto xLoop = fb.beginLoop(fb.constI(1), fb.constI(nx - 1));
    {
        auto yLoop =
            fb.beginLoop(fb.constI(1), fb.constI(ny - 1));
        {
            auto zLoop =
                fb.beginLoop(fb.constI(1), fb.constI(nz - 1));
            {
                auto cellOf = [&](VReg x, VReg y, VReg z) {
                    VReg t = fb.add(fb.mulI(x, ny), y);
                    return fb.add(fb.mulI(t, nz), z);
                };
                VReg center = cellOf(xLoop.idx, yLoop.idx,
                                     zLoop.idx);
                VReg sum = fb.constF(0.0);
                auto addCell = [&](VReg cell) {
                    VReg v = fb.ldf8(
                        fb.add(origBase, fb.shlI(cell, 3)));
                    fb.assign(sum, fb.fadd(sum, v));
                };
                addCell(cellOf(fb.addI(xLoop.idx, -1), yLoop.idx,
                               zLoop.idx));
                addCell(cellOf(fb.addI(xLoop.idx, 1), yLoop.idx,
                               zLoop.idx));
                addCell(cellOf(xLoop.idx, fb.addI(yLoop.idx, -1),
                               zLoop.idx));
                addCell(cellOf(xLoop.idx, fb.addI(yLoop.idx, 1),
                               zLoop.idx));
                addCell(cellOf(xLoop.idx, yLoop.idx,
                               fb.addI(zLoop.idx, -1)));
                addCell(cellOf(xLoop.idx, yLoop.idx,
                               fb.addI(zLoop.idx, 1)));
                VReg centerV = fb.ldf8(
                    fb.add(origBase, fb.shlI(center, 3)));
                VReg result =
                    fb.fadd(fb.fmul(c0, centerV),
                            fb.fmul(c1, sum));
                fb.stf8(fb.add(solBase, fb.shlI(center, 3)),
                        result);
            }
            fb.endLoop(zLoop);
        }
        fb.endLoop(yLoop);
    }
    fb.endLoop(xLoop);
    fb.retVoid();
    mb.setEntry("kernel");
    design.kernel = mb.module();
    mir::verify(design.kernel);
    return design;
}

std::vector<std::string>
allDesignNames()
{
    return {"bfs", "fft", "gemm", "md_knn", "mergesort", "spmv",
            "stencil2d", "stencil3d"};
}

AccelDesign
makeByName(const std::string &name, Addr base)
{
    if (name == "bfs")
        return makeBfs(base);
    if (name == "fft")
        return makeFft(base);
    if (name == "gemm")
        return makeGemm(base);
    // Not in allDesignNames(): the "*-soc" presets instantiate the
    // Table IV designs only; the systolic engine is selected
    // explicitly (--driver gemm_systolic or [accel] design=).
    if (name == "gemm_systolic")
        return makeGemmSystolic(base);
    if (name == "md_knn")
        return makeMdKnn(base);
    if (name == "mergesort")
        return makeMergesort(base);
    if (name == "spmv")
        return makeSpmv(base);
    if (name == "stencil2d")
        return makeStencil2d(base);
    if (name == "stencil3d")
        return makeStencil3d(base);
    fatal("designs: unknown accelerator '%s'", name.c_str());
}

} // namespace marvel::accel::designs
