/**
 * @file
 * The eight MachSuite-style accelerator designs evaluated in the paper
 * (Table IV): BFS, FFT, GEMM, MD-KNN, MERGESORT, SPMV, STENCIL2D,
 * STENCIL3D — each with the paper's exact memory components (names,
 * sizes, SPM vs RegBank) and a dataflow kernel written in MIR.
 *
 * Every factory takes the accelerator-local base address (assigned by
 * the cluster by placement index: kAccelSpaceBase + idx *
 * kAccelSpaceStride), because kernels address their components with
 * absolute constants, as HLS-generated datapaths do.
 */

#ifndef MARVEL_ACCEL_DESIGNS_DESIGNS_HH
#define MARVEL_ACCEL_DESIGNS_DESIGNS_HH

#include <string>
#include <vector>

#include "accel/compute_unit.hh"

namespace marvel::accel::designs
{

/** Problem sizes used by the designs (scaled for simulation). */
struct DesignSizes
{
    // BFS: graph with kBfsNodes nodes / kBfsEdges edges.
    static constexpr u32 bfsNodes = 256;   // NODES RegBank: 2,048 B
    static constexpr u32 bfsEdges = 2048;  // EDGES RegBank: 16,384 B
    // FFT: 1024-point, split real/imaginary 8,192 B SPMs.
    static constexpr u32 fftPoints = 1024;
    // GEMM: 64x64 doubles = 32,768 B per matrix SPM.
    static constexpr u32 gemmDim = 64;
    // MD-KNN: 256 atoms, 8 neighbours.
    static constexpr u32 mdAtoms = 256;
    static constexpr u32 mdNeighbours = 8;
    // MERGESORT: 1024 doubles? No: 1024 * 8 = 8,192 B SPMs.
    static constexpr u32 sortLen = 1024;
    // SPMV: 1,666 nonzeros (13,328 B VAL / 6,664 B COLS).
    static constexpr u32 spmvNnz = 1666;
    static constexpr u32 spmvRows = 128;
    // STENCIL2D: 64x64 grid (32,768 B), 3x3 filter plus padding.
    static constexpr u32 st2Rows = 64;
    static constexpr u32 st2Cols = 64;
    // STENCIL3D: 16x16x32 grid (65,536 B).
    static constexpr u32 st3X = 16;
    static constexpr u32 st3Y = 16;
    static constexpr u32 st3Z = 32;
};

AccelDesign makeBfs(Addr base);
AccelDesign makeFft(Addr base);
AccelDesign makeGemm(Addr base, const FuConfig *fuOverride = nullptr);

/**
 * The same 64x64 GEMM on the weight-stationary systolic engine
 * ("gemm_systolic"): identical DRAM-visible contract (same MMR args,
 * same input/output buffers, same driver), different
 * microarchitecture and fault-target map. `gridOverride` adjusts the
 * PE grid / M-tiling (rows, cols, tileM); the GEMM problem dims stay
 * DesignSizes::gemmDim so any grid runs the identical MIR workload.
 */
AccelDesign makeGemmSystolic(Addr base,
                             const SystolicParams *gridOverride =
                                 nullptr);
AccelDesign makeMdKnn(Addr base);
AccelDesign makeMergesort(Addr base);
AccelDesign makeSpmv(Addr base);
AccelDesign makeStencil2d(Addr base);
AccelDesign makeStencil3d(Addr base);

/** All design names, in Table IV order. */
std::vector<std::string> allDesignNames();

/** Factory by name; fatal() on unknown. */
AccelDesign makeByName(const std::string &name, Addr base);

} // namespace marvel::accel::designs

#endif // MARVEL_ACCEL_DESIGNS_DESIGNS_HH
