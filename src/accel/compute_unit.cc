#include "accel/compute_unit.hh"

#include <algorithm>

#include "common/log.hh"

namespace marvel::accel
{

const char *
engineClassName(EngineClass engineClass)
{
    return engineClass == EngineClass::Systolic ? "systolic"
                                                : "dataflow";
}

double
AccelDesign::area()
const
{
    double total = fu.area();
    for (const ComponentDesc &c : components)
        total += 0.02 * c.sizeBytes *
                 (c.kind == MemKind::RegBank ? 2.0 : 1.0);
    return total;
}

ComputeUnit::ComputeUnit(AccelDesign design, Addr localBase)
    : design_(std::move(design)), localBase_(localBase),
      engine_(design_.fu)
{
    mems_.reserve(design_.components.size());
    for (const ComponentDesc &c : design_.components)
        mems_.emplace_back(c.name, c.sizeBytes, c.kind);
    if (mems_.size() > 15)
        fatal("accel '%s': too many components", design_.name.c_str());
    if (design_.engineClass == EngineClass::Systolic) {
        design_.systolic.validate();
        if (mems_.size() != kSysNumComponents)
            fatal("accel '%s': systolic designs need the %u fixed "
                  "components",
                  design_.name.c_str(), kSysNumComponents);
        systolic_.configure(design_.systolic);
    }
}

AccelMem &
ComputeUnit::memoryByName(const std::string &name)
{
    for (AccelMem &m : mems_)
        if (m.name() == name)
            return m;
    fatal("accel '%s': no component '%s'", design_.name.c_str(),
          name.c_str());
}

u64
ComputeUnit::mmrRead(Addr offset)
{
    if (offset == kMmrStatus) {
        irq_ = false; // reading status acknowledges the interrupt
        switch (state_) {
          case State::Idle: return static_cast<u64>(UnitStatus::Idle);
          case State::Done: return static_cast<u64>(UnitStatus::Done);
          case State::Error:
            return static_cast<u64>(UnitStatus::Error);
          default: return static_cast<u64>(UnitStatus::Busy);
        }
    }
    if (offset >= kMmrArg0 &&
        offset < kMmrArg0 + 8 * kNumMmrArgs)
        return args_[(offset - kMmrArg0) / 8];
    return 0;
}

void
ComputeUnit::mmrWrite(Addr offset, u64 value)
{
    if (offset == kMmrCtrl) {
        if (value == 1 && (state_ == State::Idle ||
                           state_ == State::Done ||
                           state_ == State::Error)) {
            state_ = State::DmaIn;
            irq_ = false;
            busyCycles_ = 0;
            dmaCursor_ = 0;
            dma_.reset();
            engine_.reset();
            systolic_.reset();
        } else if (value == 2) {
            state_ = State::Idle;
            irq_ = false;
            dma_.reset();
            engine_.reset();
            systolic_.reset();
        }
        return;
    }
    if (offset == kMmrStatus) {
        if (value == 0 &&
            (state_ == State::Done || state_ == State::Error))
            state_ = State::Idle;
        return;
    }
    if (offset >= kMmrArg0 &&
        offset < kMmrArg0 + 8 * kNumMmrArgs)
        args_[(offset - kMmrArg0) / 8] = value;
}

void
ComputeUnit::startNextDma(const std::vector<DmaDesc> &descs,
                          bool toAccel)
{
    const DmaDesc &d = descs[dmaCursor_];
    DmaTransfer t;
    t.toAccel = toAccel;
    t.dramAddr = args_[d.argIdx];
    t.component = d.component;
    t.componentOff = 0;
    t.length = d.length;
    dma_.start(t);
}

void
ComputeUnit::regStats(stats::Group &g)
{
    g.addFormula(
        "busy_cycles",
        [this]() { return static_cast<double>(busyCycles_); },
        "cycles outside Idle/Done/Error");
    g.addFormula(
        "ops_executed",
        [this]() { return static_cast<double>(opsExecuted()); },
        "datapath operations executed");
    if (design_.engineClass == EngineClass::Systolic)
        systolic_.regStats(g.subgroup("systolic"));
    dma_.regStats(g.subgroup("dma"));
    for (AccelMem &mem : mems_)
        mem.regStats(g.subgroup(mem.name()));
}

void
ComputeUnit::cycle(mem::PhysMem &dram, Cycle now)
{
    switch (state_) {
      case State::Idle:
      case State::Done:
      case State::Error:
        return;
      case State::DmaIn:
        ++busyCycles_;
        if (dma_.busy()) {
            dma_.cycle(dram, mems_);
            if (dma_.faulted()) {
                state_ = State::Error;
                irq_ = true;
            }
            return;
        }
        if (dmaCursor_ < design_.dmaIn.size()) {
            startNextDma(design_.dmaIn, true);
            ++dmaCursor_;
            return;
        }
        // All input transfers issued and drained: start the engine.
        // (Systolic designs declare no dmaIn — their fetch sequencer
        // streams tiles itself — so this fires on the first cycle.)
        if (design_.engineClass == EngineClass::Systolic) {
            systolic_.start(args_, mems_);
        } else {
            std::vector<u64> args(args_, args_ + kNumMmrArgs);
            engine_.start(design_.kernel, design_.kernel.entry, args);
        }
        state_ = State::Compute;
        dmaCursor_ = 0;
        return;
      case State::Compute: {
        ++busyCycles_;
        EngineStatus status;
        Cycle ran;
        if (design_.engineClass == EngineClass::Systolic) {
            systolic_.cycle(dram, mems_, now);
            status = systolic_.status();
            ran = systolic_.cyclesRun();
        } else {
            engine_.cycle(design_.kernel, *this);
            status = engine_.status();
            ran = engine_.cyclesRun();
        }
        if (status == EngineStatus::Fault ||
            ran > design_.watchdogCycles) {
            state_ = State::Error;
            irq_ = true;
            return;
        }
        if (status == EngineStatus::Done) {
            state_ = State::DmaOut;
            dmaCursor_ = 0;
        }
        return;
      }
      case State::DmaOut:
        ++busyCycles_;
        if (dma_.busy()) {
            dma_.cycle(dram, mems_);
            if (dma_.faulted()) {
                state_ = State::Error;
                irq_ = true;
            }
            return;
        }
        if (dmaCursor_ < design_.dmaOut.size()) {
            startNextDma(design_.dmaOut, false);
            ++dmaCursor_;
            return;
        }
        state_ = State::Done;
        irq_ = true;
        return;
    }
}

// --- AccelAddressSpace ----------------------------------------------

int
ComputeUnit::resolve(Addr addr, u32 len)
{
    if (addr < localBase_)
        return -1;
    const Addr local = addr - localBase_;
    const Addr comp = local / kComponentStride;
    if (comp >= mems_.size())
        return -1;
    const Addr off = local % kComponentStride;
    if (!mems_[comp].inRange(off, len))
        return -1;
    return static_cast<int>(comp);
}

u32
ComputeUnit::latencyOf(int comp)
{
    return mems_[comp].latency();
}

u32
ComputeUnit::portsOf(int comp)
{
    // Per-component ports scale with the datapath's memory-port
    // budget: banking/partitioning in HLS terms. This is part of the
    // Fig. 17 parallelism knob.
    (void)comp;
    const unsigned budget = design_.fu.counts[static_cast<unsigned>(
        isa::FuClass::MemPort)];
    return std::max(1u, budget);
}

u64
ComputeUnit::readMem(int comp, Addr addr, u32 len)
{
    const Addr off = (addr - localBase_) % kComponentStride;
    u64 value = 0;
    mems_[comp].read(off, &value, len);
    return value;
}

void
ComputeUnit::writeMem(int comp, Addr addr, u32 len, u64 value)
{
    const Addr off = (addr - localBase_) % kComponentStride;
    mems_[comp].write(off, &value, len);
}

} // namespace marvel::accel
