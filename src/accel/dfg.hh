/**
 * @file
 * The dynamic dataflow execution engine for accelerator datapaths.
 *
 * Mirrors gem5-SALAM's LLVM-based runtime engine: the accelerated
 * kernel's MIR is executed basic block by basic block; within a block,
 * every operation issues as soon as its data dependencies resolve and a
 * functional unit (and memory port) is available. Functional-unit
 * budgets are the design-space-exploration knob of Fig. 17.
 */

#ifndef MARVEL_ACCEL_DFG_HH
#define MARVEL_ACCEL_DFG_HH

#include <vector>

#include "isa/uop.hh" // FuClass
#include "mir/mir.hh"

namespace marvel::accel
{

/** Functional-unit budget of one accelerator datapath. */
struct FuConfig
{
    unsigned counts[isa::kNumFuClasses] = {4, 2, 1, 4, 2, 1, 2, 4};

    /** Area estimate in arbitrary units (Fig. 17b). */
    double area() const;
};

/** Resolution of an accelerator-space address to a memory component. */
class AccelAddressSpace
{
  public:
    virtual ~AccelAddressSpace() = default;

    /** Component index covering [addr, addr+len), or -1. */
    virtual int resolve(Addr addr, u32 len) = 0;

    virtual u32 latencyOf(int comp) = 0;
    virtual u32 portsOf(int comp) = 0;

    virtual u64 readMem(int comp, Addr addr, u32 len) = 0;
    virtual void writeMem(int comp, Addr addr, u32 len, u64 value) = 0;
};

/** Engine status. */
enum class EngineStatus : u8 { Idle, Running, Done, Fault };

/**
 * Executes one MIR function dataflow-style. Value-semantic; the bound
 * module is passed into cycle() by the owning compute unit.
 */
class DataflowEngine
{
  public:
    explicit DataflowEngine(FuConfig fu = FuConfig{}) : fu_(fu) {}

    void setFuConfig(const FuConfig &fu) { fu_ = fu; }
    const FuConfig &fuConfig() const { return fu_; }

    /** Begin executing `func` with the given integer arguments. */
    void start(const mir::Module &module, mir::FuncId func,
               const std::vector<u64> &args);

    /** Advance one accelerator clock. */
    void cycle(const mir::Module &module, AccelAddressSpace &space);

    EngineStatus status() const { return status_; }
    bool running() const { return status_ == EngineStatus::Running; }
    u64 result() const { return result_; }
    Cycle cyclesRun() const { return cycles_; }
    u64 opsExecuted() const { return opsExecuted_; }

    void
    reset()
    {
        status_ = EngineStatus::Idle;
        cycles_ = 0;
        opsExecuted_ = 0;
    }

    /**
     * True when future execution is indistinguishable. Status must
     * match; a Running engine additionally compares the full dataflow
     * state (function, block, registers, per-inst progress, cycle count
     * — the watchdog input), a Done/Fault engine only its result, and
     * an Idle engine nothing: start()/enterBlock() overwrite all of it
     * before the next run reads any. opsExecuted_ is stats only.
     */
    bool
    convergedWith(const DataflowEngine &other) const
    {
        if (status_ != other.status_)
            return false;
        if (status_ == EngineStatus::Running)
            return func_ == other.func_ &&
                   curBlock_ == other.curBlock_ &&
                   regs_ == other.regs_ &&
                   entryRegs_ == other.entryRegs_ &&
                   insts_ == other.insts_ &&
                   result_ == other.result_ &&
                   cycles_ == other.cycles_;
        if (status_ == EngineStatus::Done ||
            status_ == EngineStatus::Fault)
            return result_ == other.result_;
        return true;
    }

  private:
    struct InstState
    {
        u8 phase = 0; ///< 0 = waiting, 1 = executing, 2 = done
        Cycle doneAt = 0;
        u64 value = 0;
        // Dependencies (indices into the current block; -1 = entry)
        i32 srcDep[3] = {-1, -1, -1};
        std::vector<u32> memDeps;

        bool operator==(const InstState &other) const = default;
    };

    void enterBlock(const mir::Module &module, mir::BlockId block);
    bool depsDone(const InstState &st) const;
    u64 operandValue(const InstState &st, unsigned which,
                     const mir::Inst &inst) const;
    void finishBlock(const mir::Module &module);

    FuConfig fu_;
    EngineStatus status_ = EngineStatus::Idle;
    mir::FuncId func_ = 0;
    mir::BlockId curBlock_ = 0;
    std::vector<u64> regs_;
    std::vector<u64> entryRegs_;
    std::vector<InstState> insts_;
    u64 result_ = 0;
    Cycle cycles_ = 0;
    u64 opsExecuted_ = 0;
};

} // namespace marvel::accel

#endif // MARVEL_ACCEL_DFG_HH
