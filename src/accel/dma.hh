/**
 * @file
 * DMA engine moving data between system DRAM and accelerator-local
 * memories (non-coherent with the CPU caches, as in gem5-SALAM).
 */

#ifndef MARVEL_ACCEL_DMA_HH
#define MARVEL_ACCEL_DMA_HH

#include <vector>

#include "accel/spm.hh"
#include "mem/physmem.hh"
#include "stats/stats.hh"

namespace marvel::accel
{

/** A programmed DMA transfer. */
struct DmaTransfer
{
    bool toAccel = true;  ///< DRAM -> component, else component -> DRAM
    Addr dramAddr = 0;
    u32 component = 0;    ///< index into the owning unit's memories
    u64 componentOff = 0;
    u32 length = 0;       ///< bytes

    bool operator==(const DmaTransfer &other) const = default;
};

/** Simple burst DMA: kBytesPerCycle per accelerator clock. */
class DmaEngine
{
  public:
    static constexpr u32 kBytesPerCycle = 8;
    static constexpr u32 kStartupCycles = 4;

    void start(const DmaTransfer &transfer);

    bool busy() const { return busy_; }
    bool faulted() const { return fault_; }

    /** Advance one cycle; moves data when past the startup delay. */
    void cycle(mem::PhysMem &dram, std::vector<AccelMem> &mems);

    void
    reset()
    {
        busy_ = false;
        fault_ = false;
    }

    /**
     * True when future transfer behaviour is identical: fault latch
     * and busy state, plus — only while busy — the programmed transfer
     * and its progress. start() overwrites cur_/moved_/warmup_ fully,
     * so an idle engine's residue is dead. Counters are stats.
     */
    bool
    convergedWith(const DmaEngine &other) const
    {
        if (fault_ != other.fault_ || busy_ != other.busy_)
            return false;
        if (!busy_)
            return true;
        return cur_ == other.cur_ && moved_ == other.moved_ &&
               warmup_ == other.warmup_;
    }

    // --- statistics ----------------------------------------------------
    stats::Counter transfers;  ///< transfers completed
    stats::Counter bytesMoved; ///< payload bytes moved
    stats::Counter busyCycles; ///< cycles spent busy (incl. startup)

    /** Register the engine's counters under g. */
    void regStats(stats::Group &g);

  private:
    DmaTransfer cur_;
    u32 moved_ = 0;
    u32 warmup_ = 0;
    bool busy_ = false;
    bool fault_ = false;
};

} // namespace marvel::accel

#endif // MARVEL_ACCEL_DMA_HH
