/**
 * @file
 * The accelerator cluster: the set of compute units of an SoC, their
 * MMR address decoding, and the aggregated interrupt lines.
 */

#ifndef MARVEL_ACCEL_CLUSTER_HH
#define MARVEL_ACCEL_CLUSTER_HH

#include <vector>

#include "accel/compute_unit.hh"

namespace marvel::accel
{

/** Cluster description: one design per compute unit. */
struct ClusterConfig
{
    std::vector<AccelDesign> designs;
};

/**
 * A cluster of accelerators. Value-semantic.
 */
class Cluster
{
  public:
    Cluster() = default;
    explicit Cluster(const ClusterConfig &config);

    bool empty() const { return units_.empty(); }
    std::size_t size() const { return units_.size(); }

    ComputeUnit &unit(std::size_t idx) { return units_[idx]; }
    const ComputeUnit &unitC(std::size_t idx) const
    {
        return units_[idx];
    }

    ComputeUnit &unitByName(const std::string &name);

    /** MMR page base of unit idx. */
    static Addr
    mmrBase(std::size_t idx)
    {
        return kAccelMmioBase + idx * kAccelMmioStride;
    }

    /** True when addr falls in the cluster's MMR window. */
    bool decodes(Addr addr) const;

    u64 mmioRead(Addr addr);
    void mmioWrite(Addr addr, u64 value);

    /** Advance every unit one accelerator clock. */
    void cycle(mem::PhysMem &dram, Cycle now = 0);

    /** Point every unit's lineage bookkeeping at `trace` (null to
     *  disable); cleared on System copies like the CPU's sinks. */
    void setLineage(obs::PropagationTrace *trace);

    /** Any unit asserting its interrupt line. */
    bool irqPending() const;

    /** Every unit converged with its counterpart (same config). */
    bool
    convergedWith(const Cluster &other) const
    {
        for (std::size_t i = 0; i < units_.size(); ++i)
            if (!units_[i].convergedWith(other.units_[i]))
                return false;
        return true;
    }

    /** Any unit in the Error state. */
    bool errored() const;

    /**
     * Register every unit under g, one subgroup per unit named after
     * its design (suffixed with the index on duplicates).
     */
    void regStats(stats::Group &g);

  private:
    std::vector<ComputeUnit> units_;
};

} // namespace marvel::accel

#endif // MARVEL_ACCEL_CLUSTER_HH
