/**
 * @file
 * The accelerator Compute Unit: the SALAM-style pairing of a dataflow
 * datapath with a Communications Interface (memory-mapped registers,
 * DMA, interrupt line) and a set of local memory components.
 *
 * Lifecycle (driven by the host through MMRs):
 *   Idle --CTRL=1--> DmaIn --> Compute --> DmaOut --> Done (IRQ)
 * Any datapath/DMA fault or watchdog expiry moves to Error (IRQ).
 */

#ifndef MARVEL_ACCEL_COMPUTE_UNIT_HH
#define MARVEL_ACCEL_COMPUTE_UNIT_HH

#include <string>
#include <vector>

#include "accel/dfg.hh"
#include "accel/dma.hh"
#include "accel/spm.hh"
#include "accel/systolic/systolic.hh"
#include "common/memmap.hh"

namespace marvel::accel
{

/** The two accelerator microarchitecture classes. */
enum class EngineClass : u8
{
    Dataflow, ///< dynamic-dataflow datapath executing a MIR kernel
    Systolic, ///< weight-stationary systolic array (fixed function)
};

const char *engineClassName(EngineClass engineClass);

/** Declaration of one local memory component. */
struct ComponentDesc
{
    std::string name;
    u32 sizeBytes = 0;
    MemKind kind = MemKind::Spm;
};

/** Accelerator-managed DMA descriptor: args[argIdx] holds the DRAM
 *  address; the transfer covers `length` bytes of `component`. */
struct DmaDesc
{
    unsigned argIdx = 0;
    unsigned component = 0;
    u32 length = 0;
};

/** A complete accelerator design (MachSuite-style). */
struct AccelDesign
{
    std::string name;
    mir::Module kernel; ///< entry function params receive MMR args
    std::vector<ComponentDesc> components;
    std::vector<DmaDesc> dmaIn;
    std::vector<DmaDesc> dmaOut;
    FuConfig fu;
    u64 watchdogCycles = 20'000'000;

    /** Which microarchitecture executes the design. Systolic designs
     *  ignore `kernel`/`fu` and drive their own fetch/drain DMA, so
     *  dmaIn/dmaOut stay empty. */
    EngineClass engineClass = EngineClass::Dataflow;
    SystolicParams systolic; ///< geometry when engineClass == Systolic

    /** Area estimate: functional units plus memory macros (Fig 17b). */
    double area() const;
};

/** MMR offsets within an accelerator's MMR page. */
constexpr Addr kMmrCtrl = 0x00;
constexpr Addr kMmrStatus = 0x08;
constexpr Addr kMmrArg0 = 0x10;
constexpr unsigned kNumMmrArgs = 8;

/** STATUS values. */
enum class UnitStatus : u64 { Idle = 0, Busy = 1, Done = 2, Error = 3 };

/**
 * One instantiated accelerator. Value-semantic.
 */
class ComputeUnit : public AccelAddressSpace
{
  public:
    ComputeUnit(AccelDesign design, Addr localBase);

    const AccelDesign &design() const { return design_; }
    Addr localBase() const { return localBase_; }

    /** Local address of component c. */
    Addr
    componentBase(unsigned c) const
    {
        return localBase_ + c * kComponentStride;
    }

    // --- host interface ------------------------------------------------
    u64 mmrRead(Addr offset);
    void mmrWrite(Addr offset, u64 value);
    bool irq() const { return irq_; }

    /** Advance one accelerator clock. `now` is the SoC cycle, used
     *  only to timestamp lineage consumption events. */
    void cycle(mem::PhysMem &dram, Cycle now = 0);

    // --- state / stats ----------------------------------------------------
    enum class State : u8 { Idle, DmaIn, Compute, DmaOut, Done, Error };
    State state() const { return state_; }
    bool errored() const { return state_ == State::Error; }
    Cycle busyCycles() const { return busyCycles_; }

    u64
    opsExecuted() const
    {
        return design_.engineClass == EngineClass::Systolic
                   ? systolic_.macsExecuted()
                   : engine_.opsExecuted();
    }

    // --- lineage (systolic engines track exact word taint) ---------------
    void setLineage(obs::PropagationTrace *trace)
    {
        systolic_.lineageOut = trace;
    }
    /** Seed taint on component `memIdx`, word `entry` (no-op for
     *  dataflow units, which have no accelerator taint model). */
    void lineageSeedWord(u32 memIdx, u64 entry)
    {
        if (design_.engineClass == EngineClass::Systolic)
            systolic_.seedTaintWord(memIdx, entry);
    }
    std::vector<std::pair<Addr, Addr>> &
    pendingLineageMemTaint()
    {
        return systolic_.pendingMemTaint();
    }

    /** Local memory components (fault-injection targets). */
    std::vector<AccelMem> &memories() { return mems_; }
    const std::vector<AccelMem> &memories() const { return mems_; }

    /**
     * Register this unit's activity (busy cycles, datapath ops), its
     * DMA engine and every local memory component under g.
     */
    void regStats(stats::Group &g);

    AccelMem &memoryByName(const std::string &name);

    /**
     * True when future unit behaviour is indistinguishable: lifecycle
     * state, IRQ line, MMR args, DMA chain cursor, every local memory
     * byte, and the engine/DMA machinery. busyCycles_ is excluded —
     * the watchdog reads the engine's own cycle counters, never this
     * utilization statistic, and CTRL=1 resets it before reuse.
     */
    bool
    convergedWith(const ComputeUnit &other) const
    {
        if (state_ != other.state_ || irq_ != other.irq_ ||
            dmaCursor_ != other.dmaCursor_)
            return false;
        for (unsigned i = 0; i < kNumMmrArgs; ++i)
            if (args_[i] != other.args_[i])
                return false;
        for (std::size_t i = 0; i < mems_.size(); ++i)
            if (!mems_[i].convergedWith(other.mems_[i]))
                return false;
        return dma_.convergedWith(other.dma_) &&
               engine_.convergedWith(other.engine_) &&
               systolic_.convergedWith(other.systolic_);
    }

    // --- AccelAddressSpace ---------------------------------------------
    int resolve(Addr addr, u32 len) override;
    u32 latencyOf(int comp) override;
    u32 portsOf(int comp) override;
    u64 readMem(int comp, Addr addr, u32 len) override;
    void writeMem(int comp, Addr addr, u32 len, u64 value) override;

  private:
    void startNextDma(const std::vector<DmaDesc> &descs, bool toAccel);

    AccelDesign design_;
    Addr localBase_;
    std::vector<AccelMem> mems_;
    DataflowEngine engine_;
    SystolicSequencer systolic_; ///< idle for dataflow designs
    DmaEngine dma_;

    State state_ = State::Idle;
    bool irq_ = false;
    u64 args_[kNumMmrArgs] = {};
    std::size_t dmaCursor_ = 0;
    Cycle busyCycles_ = 0;
};

} // namespace marvel::accel

#endif // MARVEL_ACCEL_COMPUTE_UNIT_HH
