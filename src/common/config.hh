/**
 * @file
 * Minimal INI-style configuration parser.
 *
 * Plays the role of gem5-SALAM's YAML system descriptions: an SoC (host
 * ISA, cache geometry, accelerator cluster with SPM/RegBank components and
 * functional-unit budgets) can be described in a text file and instantiated
 * by soc::SocBuilder without recompiling.
 */

#ifndef MARVEL_COMMON_CONFIG_HH
#define MARVEL_COMMON_CONFIG_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace marvel
{

/**
 * Parsed configuration: ordered sections of key/value pairs.
 *
 * Syntax:
 *   # comment, ; comment
 *   [section.name]
 *   key = value
 *
 * Repeated section names are kept as separate sections (used for
 * describing multiple accelerators or memory components).
 */
class ConfigFile
{
  public:
    /** One [section] with its key/value pairs, in file order. */
    struct Section
    {
        std::string name;
        std::map<std::string, std::string> values;

        bool has(const std::string &key) const;
        std::string get(const std::string &key,
                        const std::string &dflt = "") const;
        i64 getInt(const std::string &key, i64 dflt) const;
        u64 getU64(const std::string &key, u64 dflt) const;
        double getDouble(const std::string &key, double dflt) const;
        bool getBool(const std::string &key, bool dflt) const;

        /** Like get() but fatal() when the key is missing. */
        std::string require(const std::string &key) const;
        i64 requireInt(const std::string &key) const;
    };

    /** Parse from a string; fatal() on malformed input. */
    static ConfigFile parse(const std::string &text);

    /** Parse from a file on disk; fatal() when unreadable. */
    static ConfigFile parseFile(const std::string &path);

    /** All sections, in file order. */
    const std::vector<Section> &sections() const { return sections_; }

    /** All sections with the given name. */
    std::vector<const Section *> named(const std::string &name) const;

    /** First section with the given name, or nullptr. */
    const Section *first(const std::string &name) const;

  private:
    std::vector<Section> sections_;
};

} // namespace marvel

#endif // MARVEL_COMMON_CONFIG_HH
