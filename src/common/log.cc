#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace marvel
{

namespace
{
LogLevel globalLevel = LogLevel::Warn;
} // namespace

std::string
vstrfmt(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vstrfmt(fmt, ap);
    va_end(ap);
    return out;
}

LogLevel
setLogLevel(LogLevel level)
{
    LogLevel prev = globalLevel;
    globalLevel = level;
    return prev;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Info)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace marvel
