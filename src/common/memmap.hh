/**
 * @file
 * The bare-metal physical memory map shared by the CPU model, the MIR
 * interpreter, the code generators, and the accelerator cluster.
 *
 * This replaces the paper's Linux full-system environment: programs are
 * loaded at kCodeBase, globals at kDataBase, the stack grows down from
 * kStackTop, and results are written to the OUTPUT window, which the
 * fault-injection classifier compares against the golden run.
 */

#ifndef MARVEL_COMMON_MEMMAP_HH
#define MARVEL_COMMON_MEMMAP_HH

#include "common/types.hh"

namespace marvel
{

/** Total simulated DRAM size. Accesses beyond this raise a bus error. */
constexpr Addr kMemSize = 0x40'0000; // 4 MiB

/** Program text load address. */
constexpr Addr kCodeBase = 0x1000;

/** Global data load address. */
constexpr Addr kDataBase = 0x10'0000;

/** Initial stack pointer (stack grows down). */
constexpr Addr kStackTop = 0x1F'0000;

/** Program output window: compared against the golden run. */
constexpr Addr kOutputBase = 0x20'0000;
constexpr Addr kOutputSize = 0x1'0000; // 64 KiB

/** MMIO window (uncacheable). */
constexpr Addr kMmioBase = 0x4000'0000;
constexpr Addr kMmioEnd = 0x5000'0000;

/** Console byte output register. */
constexpr Addr kMmioPutchar = kMmioBase + 0x0;

/** Writing here terminates simulation with the written exit code. */
constexpr Addr kMmioExit = kMmioBase + 0x8;

/** Base of the accelerator cluster's MMR region. */
constexpr Addr kAccelMmioBase = 0x4001'0000;

/** MMR address stride between accelerators in a cluster. */
constexpr Addr kAccelMmioStride = 0x1000;

/** Accelerator-local address space (SPMs / register banks). */
constexpr Addr kAccelSpaceBase = 0x6000'0000;

/** Local-address stride between accelerators. */
constexpr Addr kAccelSpaceStride = 0x10'0000;

/** Local-address stride between components of one accelerator. */
constexpr Addr kComponentStride = 0x2'0000;

} // namespace marvel

#endif // MARVEL_COMMON_MEMMAP_HH
