#include "common/config.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace marvel
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

bool
ConfigFile::Section::has(const std::string &key) const
{
    return values.count(key) != 0;
}

std::string
ConfigFile::Section::get(const std::string &key,
                         const std::string &dflt) const
{
    auto it = values.find(key);
    return it == values.end() ? dflt : it->second;
}

i64
ConfigFile::Section::getInt(const std::string &key, i64 dflt) const
{
    auto it = values.find(key);
    if (it == values.end())
        return dflt;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

u64
ConfigFile::Section::getU64(const std::string &key, u64 dflt) const
{
    auto it = values.find(key);
    if (it == values.end())
        return dflt;
    return std::strtoull(it->second.c_str(), nullptr, 0);
}

double
ConfigFile::Section::getDouble(const std::string &key, double dflt) const
{
    auto it = values.find(key);
    if (it == values.end())
        return dflt;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
ConfigFile::Section::getBool(const std::string &key, bool dflt) const
{
    auto it = values.find(key);
    if (it == values.end())
        return dflt;
    const std::string &v = it->second;
    if (v == "true" || v == "yes" || v == "1" || v == "on")
        return true;
    if (v == "false" || v == "no" || v == "0" || v == "off")
        return false;
    fatal("config: bad boolean '%s' for key '%s'", v.c_str(), key.c_str());
}

std::string
ConfigFile::Section::require(const std::string &key) const
{
    auto it = values.find(key);
    if (it == values.end())
        fatal("config: section [%s] missing required key '%s'",
              name.c_str(), key.c_str());
    return it->second;
}

i64
ConfigFile::Section::requireInt(const std::string &key) const
{
    return std::strtoll(require(key).c_str(), nullptr, 0);
}

ConfigFile
ConfigFile::parse(const std::string &text)
{
    ConfigFile cfg;
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    Section *current = nullptr;
    while (std::getline(in, line)) {
        ++lineNo;
        // Strip comments (# or ;) outside of values -- simple approach:
        // comments start a token at position 0 or after whitespace.
        std::size_t cut = std::string::npos;
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (line[i] == '#' || line[i] == ';') {
                cut = i;
                break;
            }
        }
        if (cut != std::string::npos)
            line = line.substr(0, cut);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal("config line %d: unterminated section header",
                      lineNo);
            Section sec;
            sec.name = trim(line.substr(1, line.size() - 2));
            if (sec.name.empty())
                fatal("config line %d: empty section name", lineNo);
            cfg.sections_.push_back(std::move(sec));
            current = &cfg.sections_.back();
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config line %d: expected 'key = value'", lineNo);
        if (!current) {
            Section sec;
            sec.name = "global";
            cfg.sections_.push_back(std::move(sec));
            current = &cfg.sections_.back();
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("config line %d: empty key", lineNo);
        current->values[key] = value;
    }
    return cfg;
}

ConfigFile
ConfigFile::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("config: cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

std::vector<const ConfigFile::Section *>
ConfigFile::named(const std::string &name) const
{
    std::vector<const Section *> out;
    for (const auto &sec : sections_)
        if (sec.name == name)
            out.push_back(&sec);
    return out;
}

const ConfigFile::Section *
ConfigFile::first(const std::string &name) const
{
    for (const auto &sec : sections_)
        if (sec.name == name)
            return &sec;
    return nullptr;
}

} // namespace marvel
