/**
 * @file
 * Fundamental scalar typedefs shared across all MARVEL subsystems.
 */

#ifndef MARVEL_COMMON_TYPES_HH
#define MARVEL_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace marvel
{

/** Simulated physical/virtual address (flat 64-bit space). */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Raw 64-bit register / datapath value. */
using Word = std::uint64_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

} // namespace marvel

#endif // MARVEL_COMMON_TYPES_HH
