/**
 * @file
 * Bit-manipulation helpers used by encoders, decoders, and fault injectors.
 */

#ifndef MARVEL_COMMON_BITS_HH
#define MARVEL_COMMON_BITS_HH

#include "common/types.hh"

namespace marvel
{

/** Extract bits [hi:lo] (inclusive) of value. */
constexpr u64
bits(u64 value, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const u64 mask = width >= 64 ? ~0ull : ((1ull << width) - 1);
    return (value >> lo) & mask;
}

/** Extract a single bit. */
constexpr u64
bit(u64 value, unsigned pos)
{
    return (value >> pos) & 1;
}

/** Insert `field` into bits [hi:lo] of `value` and return the result. */
constexpr u64
insertBits(u64 value, unsigned hi, unsigned lo, u64 field)
{
    const unsigned width = hi - lo + 1;
    const u64 mask = width >= 64 ? ~0ull : ((1ull << width) - 1);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low `width` bits of value to 64 bits. */
constexpr i64
sext(u64 value, unsigned width)
{
    const unsigned shift = 64 - width;
    return static_cast<i64>(value << shift) >> shift;
}

/** Mask of the low `width` bits. */
constexpr u64
maskBits(unsigned width)
{
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

/** True when value fits in a signed immediate of `width` bits. */
constexpr bool
fitsSigned(i64 value, unsigned width)
{
    const i64 lo = -(1ll << (width - 1));
    const i64 hi = (1ll << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** Align value down to a power-of-two boundary. */
constexpr u64
alignDown(u64 value, u64 align)
{
    return value & ~(align - 1);
}

/** Align value up to a power-of-two boundary. */
constexpr u64
alignUp(u64 value, u64 align)
{
    return (value + align - 1) & ~(align - 1);
}

/** True if value is a power of two (and nonzero). */
constexpr bool
isPow2(u64 value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)) for a power-of-two value. */
constexpr unsigned
log2i(u64 value)
{
    unsigned result = 0;
    while (value > 1) {
        value >>= 1;
        ++result;
    }
    return result;
}

/** FNV-1a 64-bit offset basis. */
constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;
constexpr u64 kFnvPrime = 0x100000001b3ull;

/**
 * Incremental FNV-1a over a byte range. The one digest used across
 * the tree (blob files, journal identity, arch-state digests, fuzz
 * reproducers), so every artifact is comparable across builds.
 */
constexpr u64
fnv1a(const u8 *data, std::size_t len, u64 hash = kFnvOffset)
{
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= data[i];
        hash *= kFnvPrime;
    }
    return hash;
}

/** FNV-1a of one 64-bit word, fed little-endian byte by byte. */
constexpr u64
fnv1aWord(u64 word, u64 hash = kFnvOffset)
{
    for (unsigned i = 0; i < 8; ++i) {
        hash ^= (word >> (8 * i)) & 0xff;
        hash *= kFnvPrime;
    }
    return hash;
}

} // namespace marvel

#endif // MARVEL_COMMON_BITS_HH
