#include "common/cli.hh"

#include <cstdlib>

#include "common/version.hh"

namespace marvel::cli
{

void
printUsage(const Tool &tool, std::FILE *out)
{
    std::fputs(tool.usage, out);
}

void
printVersion(const Tool &tool)
{
    std::printf("%s %s\n", tool.name, kVersionString);
}

bool
handleStandardFlag(const Tool &tool, const std::string &arg)
{
    if (arg == "--help" || arg == "-h") {
        printUsage(tool, stdout);
        std::exit(0);
    }
    if (arg == "--version") {
        printVersion(tool);
        std::exit(0);
    }
    return false;
}

void
usageError(const Tool &tool, const char *what,
           const std::string &token)
{
    if (token.empty())
        std::fprintf(stderr, "%s: %s\n", tool.name, what);
    else
        std::fprintf(stderr, "%s: %s '%s'\n", tool.name, what,
                     token.c_str());
    printUsage(tool, stderr);
    std::exit(2);
}

} // namespace marvel::cli
