/**
 * @file
 * Shared command-line scaffolding for the marvel-* tools.
 *
 * Every tool answers `--help` / `-h` / `--version` the same way and
 * reports bad flags with the same "complain, then usage, then exit 2"
 * shape. Six binaries each carrying their own copy of that boilerplate
 * drifted in small ways (stdout vs stderr, exit codes); this helper is
 * the single implementation they all call.
 *
 * A tool declares itself once:
 *
 *   const cli::Tool kTool = {"marvel-worker", kUsageText};
 *
 * and then routes every argv token through handleStandardFlag() before
 * its own flag matching, and every parse failure through usageError().
 */

#ifndef MARVEL_COMMON_CLI_HH
#define MARVEL_COMMON_CLI_HH

#include <cstdio>
#include <string>

namespace marvel::cli
{

/** A tool's identity: its argv[0] name and full usage text. */
struct Tool
{
    const char *name;  ///< "marvel-campaign", ...
    const char *usage; ///< multi-line usage body, newline-terminated
};

/** Print "usage: ..." text to `out`. */
void printUsage(const Tool &tool, std::FILE *out);

/** Print "<name> <version>" (the shared kVersionString) to stdout. */
void printVersion(const Tool &tool);

/**
 * Recognize the flags every tool shares. `--help`/`-h` prints usage
 * to stdout and exits 0; `--version` prints the version line and
 * exits 0. Returns false for any other token so the caller's own
 * matching continues.
 */
bool handleStandardFlag(const Tool &tool, const std::string &arg);

/**
 * Complain about one specific bad token ("unknown flag '--x'"), print
 * the usage text to stderr, and exit 2 (the usage-error exit code all
 * tools share). Pass an empty token when there is nothing to quote.
 */
[[noreturn]] void usageError(const Tool &tool, const char *what,
                             const std::string &token);

} // namespace marvel::cli

#endif // MARVEL_COMMON_CLI_HH
