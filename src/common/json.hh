/**
 * @file
 * Flat-JSON helpers shared by the journal and the wire protocol.
 *
 * Every persistent and on-the-wire record in MARVEL is one flat JSON
 * object per line: string or unsigned-integer values, no nesting, no
 * floats (floats live only in the heartbeat, which has its own
 * tolerant reader). Keeping the grammar this small is what lets the
 * journal reader, the dispatch daemon, and the worker client all
 * agree byte-for-byte on what a record looks like — the parser
 * rejects anything the writer cannot produce.
 *
 * Hoisted out of store/journal.cc so src/net can frame the same
 * records over a socket without linking the journal's file I/O.
 */

#ifndef MARVEL_COMMON_JSON_HH
#define MARVEL_COMMON_JSON_HH

#include <map>
#include <string>

#include "common/types.hh"

namespace marvel::json
{

/** Escape a string for embedding in a JSON string literal. */
std::string escape(const std::string &text);

/**
 * Parse one flat JSON object ({"key":value,...} with string or
 * integer values) into a key -> literal map. Returns false on any
 * syntax error; never throws. Escaped strings are unescaped; numbers
 * are returned as their literal digits.
 */
bool parseFlat(const std::string &line,
               std::map<std::string, std::string> &out);

/** Fetch fields["key"] parsed as u64; false when absent/malformed. */
bool fieldU64(const std::map<std::string, std::string> &fields,
              const char *key, u64 &out);

/** Fetch fields["key"] as a string; false when absent. */
bool fieldStr(const std::map<std::string, std::string> &fields,
              const char *key, std::string &out);

} // namespace marvel::json

#endif // MARVEL_COMMON_JSON_HH
