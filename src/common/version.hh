/**
 * @file
 * Single source of truth for the MARVEL version string. Tools print
 * it for `--version` and the journal writer stamps it into campaign
 * metadata, so a journal always records which build produced it.
 */

#ifndef MARVEL_COMMON_VERSION_HH
#define MARVEL_COMMON_VERSION_HH

namespace marvel
{

inline constexpr char kVersionString[] = "0.2.0";

} // namespace marvel

#endif // MARVEL_COMMON_VERSION_HH
