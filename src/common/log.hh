/**
 * @file
 * Status and error reporting in the gem5 tradition: panic() for simulator
 * bugs, fatal() for user errors, warn()/inform() for status messages, plus
 * a printf-style string formatter used throughout the codebase.
 */

#ifndef MARVEL_COMMON_LOG_HH
#define MARVEL_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace marvel
{

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list ap);

/** Verbosity control for inform()/warn(). Errors always print. */
enum class LogLevel { Quiet, Warn, Info };

/** Set the global log verbosity; returns the previous level. */
LogLevel setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation (a MARVEL bug) and abort.
 * Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and throw
 * FatalError (so library embedders and tests can catch it).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Exception thrown by fatal(). */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string msg) : message(std::move(msg)) {}
    const char *what() const noexcept override { return message.c_str(); }

  private:
    std::string message;
};

} // namespace marvel

#endif // MARVEL_COMMON_LOG_HH
