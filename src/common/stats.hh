/**
 * @file
 * Statistical helpers for fault-injection campaigns.
 *
 * Implements the statistical fault sampling formulation of
 * Leveugle et al., "Statistical fault injection: Quantified error and
 * confidence" (DATE 2009), which the paper adopts for choosing sample
 * sizes (1,000 faults ~ 3% margin at 95% confidence).
 */

#ifndef MARVEL_COMMON_STATS_HH
#define MARVEL_COMMON_STATS_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace marvel
{

/** Two-sided normal quantile for 95% confidence. */
constexpr double kT95 = 1.96;

/** Two-sided normal quantile for 99% confidence. */
constexpr double kT99 = 2.576;

/**
 * Required sample size for a finite population.
 *
 * @param population  total fault population N (e.g. #bits x #cycles)
 * @param margin      desired error margin e (e.g. 0.03)
 * @param confidence  normal quantile t (kT95 or kT99)
 * @param p           estimated proportion (worst case 0.5)
 */
std::size_t sampleSize(double population, double margin,
                       double confidence = kT95, double p = 0.5);

/**
 * Error margin achieved by n samples from a finite population.
 */
double marginOfError(double samples, double population,
                     double confidence = kT95, double p = 0.5);

/** Online accumulator for mean / variance / extrema. */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    std::size_t count() const { return n; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

    /** Sample variance (n-1 denominator). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

  private:
    std::size_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Weighted mean: sum(v[i] * w[i]) / sum(w[i]).
 *
 * This is the paper's weighted-AVF aggregation (Section V-A) with the
 * per-benchmark execution times as weights.
 */
double weightedMean(const std::vector<double> &values,
                    const std::vector<double> &weights);

} // namespace marvel

#endif // MARVEL_COMMON_STATS_HH
