#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace marvel
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::row(const std::string &label, const std::vector<double> &values,
               int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(strfmt("%.*f", precision, v));
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream out;
    if (!title_.empty())
        out << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out << cells[i];
            if (i + 1 < cells.size())
                out << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        out << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return out.str();
}

void
TextTable::print() const
{
    std::string s = render();
    std::fwrite(s.data(), 1, s.size(), stdout);
    std::fflush(stdout);
}

} // namespace marvel
