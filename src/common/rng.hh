/**
 * @file
 * Deterministic pseudo-random number generation for fault sampling.
 *
 * Fault-injection campaigns must be exactly reproducible regardless of the
 * number of parallel workers, so every fault index derives its own stream
 * from (campaign seed, fault index) via SplitMix64 seeding of a
 * xoshiro256** generator.
 */

#ifndef MARVEL_COMMON_RNG_HH
#define MARVEL_COMMON_RNG_HH

#include "common/types.hh"

namespace marvel
{

/** SplitMix64 step; good for deriving seeds from counters. */
constexpr u64
splitmix64(u64 &state)
{
    state += 0x9e3779b97f4a7c15ull;
    u64 z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
 */
class Rng
{
  public:
    using result_type = u64;

    /** Construct from a single 64-bit seed (expanded via SplitMix64). */
    explicit Rng(u64 seed = 0x4d41525645ull)
    {
        u64 sm = seed;
        for (auto &word : state)
            word = splitmix64(sm);
    }

    /** Derive an independent stream for (seed, stream index). */
    static Rng
    forStream(u64 seed, u64 stream)
    {
        u64 sm = seed;
        u64 a = splitmix64(sm);
        sm = stream ^ 0x9492aa3f8e5d0e3bull;
        u64 b = splitmix64(sm);
        return Rng(a ^ (b * 0xff51afd7ed558ccdull));
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    result_type
    operator()()
    {
        const u64 result = rotl(state[1] * 5, 7) * 9;
        const u64 t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    u64
    below(u64 bound)
    {
        // Debiased via rejection on the top range.
        const u64 threshold = (0 - bound) % bound;
        for (;;) {
            u64 r = (*this)();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    u64
    range(u64 lo, u64 hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64 state[4];
};

} // namespace marvel

#endif // MARVEL_COMMON_RNG_HH
