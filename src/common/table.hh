/**
 * @file
 * Plain-text table rendering for benchmark harness output.
 *
 * Every bench binary prints the rows/series of the paper table or figure
 * it regenerates; this class keeps that output aligned and uniform.
 */

#ifndef MARVEL_COMMON_TABLE_HH
#define MARVEL_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace marvel
{

/** Column-aligned text table with an optional title and header row. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Append a data row of (label, doubles) with fixed precision. */
    void row(const std::string &label, const std::vector<double> &values,
             int precision = 2);

    /** Render to a string. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace marvel

#endif // MARVEL_COMMON_TABLE_HH
