#include "common/stats.hh"

#include <cmath>

#include "common/log.hh"

namespace marvel
{

std::size_t
sampleSize(double population, double margin, double confidence, double p)
{
    if (population <= 0 || margin <= 0 || confidence <= 0)
        fatal("sampleSize: arguments must be positive");
    // n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))
    const double t2pq = confidence * confidence * p * (1.0 - p);
    const double n =
        population / (1.0 + margin * margin * (population - 1.0) / t2pq);
    return static_cast<std::size_t>(std::ceil(n));
}

double
marginOfError(double samples, double population, double confidence, double p)
{
    if (samples <= 0 || population <= 1)
        fatal("marginOfError: need samples > 0 and population > 1");
    // Invert the Leveugle formula for e.
    const double t2pq = confidence * confidence * p * (1.0 - p);
    const double e2 =
        (population / samples - 1.0) * t2pq / (population - 1.0);
    return e2 > 0 ? std::sqrt(e2) : 0.0;
}

void
RunningStats::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        if (x < lo)
            lo = x;
        if (x > hi)
            hi = x;
    }
    ++n;
    sum += x;
    sumSq += x * x;
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    const double nd = static_cast<double>(n);
    const double m = sum / nd;
    double v = (sumSq - nd * m * m) / (nd - 1.0);
    return v > 0 ? v : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
weightedMean(const std::vector<double> &values,
             const std::vector<double> &weights)
{
    if (values.size() != weights.size())
        fatal("weightedMean: values/weights size mismatch (%zu vs %zu)",
              values.size(), weights.size());
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        num += values[i] * weights[i];
        den += weights[i];
    }
    if (den == 0.0)
        fatal("weightedMean: zero total weight");
    return num / den;
}

} // namespace marvel
