/**
 * @file
 * Per-structure fault bookkeeping shared by every injectable hardware
 * structure (caches, physical register file, load/store queues,
 * scratchpads, register banks).
 *
 * A FaultState records (a) watched bits of transient faults, so the
 * campaign controller can terminate a run early when the fault is
 * architecturally dead (overwritten before read, or the entry vanished),
 * and (b) permanently stuck bits, which structures re-apply after each
 * write to the affected entry.
 *
 * This lives in common/ (not fi/) because the hardware models call the
 * hooks directly; the fi layer only reads the resulting status.
 */

#ifndef MARVEL_COMMON_FAULTWATCH_HH
#define MARVEL_COMMON_FAULTWATCH_HH

#include <vector>

#include "common/types.hh"
#include "obs/trace.hh"

namespace marvel
{

/** One watched (transient-fault) bit. */
struct BitWatch
{
    u32 entry = 0;
    u32 bit = 0;
    bool wasRead = false;     ///< the faulty bit was consumed by a read
    bool overwritten = false; ///< a write covered the bit before any read
    bool vanished = false;    ///< the entry was deallocated before any read
};

/** One permanently stuck bit. */
struct StuckBit
{
    u32 entry = 0;
    u32 bit = 0;
    bool value = false; ///< stuck-at-0 or stuck-at-1
};

/**
 * Fault bookkeeping for one hardware structure. Value-semantic so that
 * whole-system checkpoint copies carry it along.
 */
class FaultState
{
  public:
    bool
    active() const
    {
        return !watches_.empty() || !stuck_.empty();
    }

    bool hasStuck() const { return !stuck_.empty(); }

    void
    addWatch(u32 entry, u32 bit)
    {
        watches_.push_back({entry, bit, false, false, false});
    }

    void
    addStuck(u32 entry, u32 bit, bool value)
    {
        stuck_.push_back({entry, bit, value});
    }

    void
    clear()
    {
        watches_.clear();
        stuck_.clear();
    }

    /** A read consumed bits [bitLo, bitHi] of `entry`. */
    void
    noteRead(u32 entry, u32 bitLo, u32 bitHi)
    {
        for (BitWatch &w : watches_) {
            if (w.entry == entry && !w.overwritten && !w.vanished &&
                w.bit >= bitLo && w.bit <= bitHi) {
                if (!w.wasRead)
                    MARVEL_OBS_EMIT(obs::Component::Fault,
                                    obs::EventKind::FaultRead,
                                    w.entry, w.bit);
                w.wasRead = true;
            }
        }
    }

    /** A write replaced bits [bitLo, bitHi] of `entry`. */
    void
    noteWrite(u32 entry, u32 bitLo, u32 bitHi)
    {
        for (BitWatch &w : watches_) {
            if (w.entry == entry && !w.wasRead && !w.overwritten &&
                !w.vanished && w.bit >= bitLo && w.bit <= bitHi) {
                w.overwritten = true;
                MARVEL_OBS_EMIT(obs::Component::Fault,
                                obs::EventKind::FaultOverwrite,
                                w.entry, w.bit);
            }
        }
    }

    /** The entry was deallocated / invalidated wholesale. */
    void
    noteGone(u32 entry)
    {
        for (BitWatch &w : watches_) {
            if (w.entry == entry && !w.wasRead && !w.overwritten &&
                !w.vanished) {
                w.vanished = true;
                MARVEL_OBS_EMIT(obs::Component::Fault,
                                obs::EventKind::FaultVanish,
                                w.entry, w.bit);
            }
        }
    }

    /** True when every watched bit is provably dead and none was read. */
    bool
    allNeutralized() const
    {
        if (watches_.empty())
            return false;
        for (const BitWatch &w : watches_)
            if (w.wasRead || (!w.overwritten && !w.vanished))
                return false;
        return true;
    }

    /** True when any watched bit has been consumed by a read. */
    bool
    anyRead() const
    {
        for (const BitWatch &w : watches_)
            if (w.wasRead)
                return true;
        return false;
    }

    const std::vector<BitWatch> &watches() const { return watches_; }
    const std::vector<StuckBit> &stuck() const { return stuck_; }

  private:
    std::vector<BitWatch> watches_;
    std::vector<StuckBit> stuck_;
};

} // namespace marvel

#endif // MARVEL_COMMON_FAULTWATCH_HH
