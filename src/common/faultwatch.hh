/**
 * @file
 * Per-structure fault bookkeeping shared by every injectable hardware
 * structure (caches, physical register file, load/store queues,
 * scratchpads, register banks).
 *
 * A FaultState records (a) watched bits of transient faults, so the
 * campaign controller can terminate a run early when the fault is
 * architecturally dead (overwritten before read, or the entry vanished),
 * and (b) permanently stuck bits, which structures re-apply after each
 * write to the affected entry.
 *
 * This lives in common/ (not fi/) because the hardware models call the
 * hooks directly; the fi layer only reads the resulting status.
 */

#ifndef MARVEL_COMMON_FAULTWATCH_HH
#define MARVEL_COMMON_FAULTWATCH_HH

#include <vector>

#include "common/types.hh"
#include "obs/trace.hh"

namespace marvel
{

/** One watched (transient-fault) bit. */
struct BitWatch
{
    u32 entry = 0;
    u32 bit = 0;
    bool wasRead = false;     ///< the faulty bit was consumed by a read
    bool overwritten = false; ///< a write covered the bit before any read
    bool vanished = false;    ///< the entry was deallocated before any read
};

/** One permanently stuck bit. */
struct StuckBit
{
    u32 entry = 0;
    u32 bit = 0;
    bool value = false; ///< stuck-at-0 or stuck-at-1
};

/** What one recorded access did to an entry. */
enum class AccessKind : u8
{
    Read,
    Write,
    Gone,
};

/** One recorded access to a profiled structure. */
struct AccessEvent
{
    Cycle cycle = 0; ///< window-relative cycle of the access
    u32 bitLo = 0;
    u32 bitHi = 0;
    AccessKind kind = AccessKind::Read;
};

/**
 * Records the access stream of one hardware structure during a golden
 * (fault-free) replay of the injection window, so a campaign can
 * answer "what happens FIRST to bit b of entry e after cycle c?"
 * without simulating: if the first covering access is a write (or the
 * entry vanishes), a transient fault there is provably dead — the
 * faulty run would be bit-identical to golden up to that overwrite —
 * and can be classified Masked with zero simulated cycles.
 *
 * Per-entry event logs are capped: recording keeps a strict time
 * prefix of each entry's accesses, so any covering event found in the
 * log IS the first one overall; when the log saturated and no covering
 * event was recorded, the fate is Unknown (never pruned).
 */
class AccessProfiler
{
  public:
    /** Possible fates of a (entry, bit, cycle) transient fault. */
    enum class Fate : u8
    {
        Unknown, ///< no covering access recorded — must simulate
        Dead,    ///< overwritten / vanished before any read
        Live,    ///< read before any overwrite — must simulate
    };

    static constexpr u32 kDefaultEventCap = 128;

    AccessProfiler(u32 entries, const Cycle *now,
                   u32 eventCap = kDefaultEventCap)
        : logs_(entries), now_(now), cap_(eventCap ? eventCap : 1)
    {
    }

    /** Repoint (or, with nullptr, detach) the cycle-cursor source;
     *  fateOf never reads it, so a profiler safely outlives the replay
     *  whose stack cursor it recorded from. */
    void setNow(const Cycle *now) { now_ = now; }

    void
    note(u32 entry, u32 bitLo, u32 bitHi, AccessKind kind)
    {
        if (entry >= logs_.size() || now_ == nullptr)
            return;
        EntryLog &log = logs_[entry];
        if (log.saturated)
            return;
        if (log.events.size() >= cap_) {
            log.saturated = true;
            return;
        }
        log.events.push_back({*now_, bitLo, bitHi, kind});
    }

    /** Fate of a transient flip of `bit` in `entry` at cycle `since`
     *  (the fault lands before the tick of cycle `since`, so accesses
     *  at that cycle already see it). */
    Fate
    fateOf(u32 entry, u32 bit, Cycle since) const
    {
        if (entry >= logs_.size())
            return Fate::Unknown;
        for (const AccessEvent &e : logs_[entry].events) {
            if (e.cycle < since)
                continue;
            if (e.kind == AccessKind::Gone)
                return Fate::Dead;
            if (bit < e.bitLo || bit > e.bitHi)
                continue;
            return e.kind == AccessKind::Write ? Fate::Dead
                                              : Fate::Live;
        }
        return Fate::Unknown;
    }

    const std::vector<AccessEvent> &
    events(u32 entry) const
    {
        return logs_[entry].events;
    }

  private:
    struct EntryLog
    {
        std::vector<AccessEvent> events;
        bool saturated = false;
    };

    std::vector<EntryLog> logs_;
    const Cycle *now_;
    u32 cap_;
};

/**
 * Fault bookkeeping for one hardware structure. Value-semantic so that
 * whole-system checkpoint copies carry it along.
 */
class FaultState
{
  public:
    FaultState() = default;

    // A FaultState is copied wholesale with its structure on every
    // checkpoint take/restore; the profiler is owned by (and only
    // meaningful to) the one replay that attached it, so copies never
    // carry the pointer.
    FaultState(const FaultState &other)
        : watches_(other.watches_), stuck_(other.stuck_)
    {
    }

    FaultState &
    operator=(const FaultState &other)
    {
        watches_ = other.watches_;
        stuck_ = other.stuck_;
        profiler_ = nullptr;
        return *this;
    }

    bool
    active() const
    {
        return profiler_ != nullptr || !watches_.empty() ||
               !stuck_.empty();
    }

    /** Attach (or detach, with nullptr) an access profiler; the hooks
     *  below mirror every access into it while it is attached. */
    void setProfiler(AccessProfiler *profiler) { profiler_ = profiler; }

    bool hasStuck() const { return !stuck_.empty(); }

    void
    addWatch(u32 entry, u32 bit)
    {
        watches_.push_back({entry, bit, false, false, false});
    }

    void
    addStuck(u32 entry, u32 bit, bool value)
    {
        stuck_.push_back({entry, bit, value});
    }

    void
    clear()
    {
        watches_.clear();
        stuck_.clear();
    }

    /** A read consumed bits [bitLo, bitHi] of `entry`. */
    void
    noteRead(u32 entry, u32 bitLo, u32 bitHi)
    {
        if (profiler_)
            profiler_->note(entry, bitLo, bitHi, AccessKind::Read);
        for (BitWatch &w : watches_) {
            if (w.entry == entry && !w.overwritten && !w.vanished &&
                w.bit >= bitLo && w.bit <= bitHi) {
                if (!w.wasRead)
                    MARVEL_OBS_EMIT(obs::Component::Fault,
                                    obs::EventKind::FaultRead,
                                    w.entry, w.bit);
                w.wasRead = true;
            }
        }
    }

    /** A write replaced bits [bitLo, bitHi] of `entry`. */
    void
    noteWrite(u32 entry, u32 bitLo, u32 bitHi)
    {
        if (profiler_)
            profiler_->note(entry, bitLo, bitHi, AccessKind::Write);
        for (BitWatch &w : watches_) {
            if (w.entry == entry && !w.wasRead && !w.overwritten &&
                !w.vanished && w.bit >= bitLo && w.bit <= bitHi) {
                w.overwritten = true;
                MARVEL_OBS_EMIT(obs::Component::Fault,
                                obs::EventKind::FaultOverwrite,
                                w.entry, w.bit);
            }
        }
    }

    /** The entry was deallocated / invalidated wholesale. */
    void
    noteGone(u32 entry)
    {
        if (profiler_)
            profiler_->note(entry, 0, ~0u, AccessKind::Gone);
        for (BitWatch &w : watches_) {
            if (w.entry == entry && !w.wasRead && !w.overwritten &&
                !w.vanished) {
                w.vanished = true;
                MARVEL_OBS_EMIT(obs::Component::Fault,
                                obs::EventKind::FaultVanish,
                                w.entry, w.bit);
            }
        }
    }

    /** True when every watched bit is provably dead and none was read. */
    bool
    allNeutralized() const
    {
        if (watches_.empty())
            return false;
        for (const BitWatch &w : watches_)
            if (w.wasRead || (!w.overwritten && !w.vanished))
                return false;
        return true;
    }

    /**
     * True when every watched bit's fate is settled: read, overwritten,
     * or vanished. A live-unread watch could still be consumed later
     * and flip the Masked detail (MaskedInAccel needs a read), so the
     * early-stop fabrication refuses to fire until this holds.
     */
    bool
    allResolved() const
    {
        for (const BitWatch &w : watches_)
            if (!w.wasRead && !w.overwritten && !w.vanished)
                return false;
        return true;
    }

    /** True when any watched bit has been consumed by a read. */
    bool
    anyRead() const
    {
        for (const BitWatch &w : watches_)
            if (w.wasRead)
                return true;
        return false;
    }

    const std::vector<BitWatch> &watches() const { return watches_; }
    const std::vector<StuckBit> &stuck() const { return stuck_; }

  private:
    std::vector<BitWatch> watches_;
    std::vector<StuckBit> stuck_;
    AccessProfiler *profiler_ = nullptr; ///< not owned, never copied
};

} // namespace marvel

#endif // MARVEL_COMMON_FAULTWATCH_HH
