#include "common/json.hh"

#include <cerrno>
#include <cstdlib>

#include "common/log.hh"

namespace marvel::json
{

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

bool
parseFlat(const std::string &line,
          std::map<std::string, std::string> &out)
{
    std::size_t i = 0;
    auto skipWs = [&]() {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t'))
            ++i;
    };
    auto parseString = [&](std::string &value) {
        if (i >= line.size() || line[i] != '"')
            return false;
        ++i;
        value.clear();
        while (i < line.size() && line[i] != '"') {
            char c = line[i++];
            if (c == '\\') {
                if (i >= line.size())
                    return false;
                const char esc = line[i++];
                switch (esc) {
                  case '"': value += '"'; break;
                  case '\\': value += '\\'; break;
                  case 'n': value += '\n'; break;
                  case 'r': value += '\r'; break;
                  case 't': value += '\t'; break;
                  case 'u': {
                    if (i + 4 > line.size())
                        return false;
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = line[i++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    if (code > 0x7f)
                        return false; // records are ASCII
                    value += static_cast<char>(code);
                    break;
                  }
                  default:
                    return false;
                }
            } else {
                value += c;
            }
        }
        if (i >= line.size())
            return false;
        ++i; // closing quote
        return true;
    };

    skipWs();
    if (i >= line.size() || line[i] != '{')
        return false;
    ++i;
    skipWs();
    if (i < line.size() && line[i] == '}') {
        ++i;
    } else {
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (i >= line.size() || line[i] != ':')
                return false;
            ++i;
            skipWs();
            std::string value;
            if (i < line.size() && line[i] == '"') {
                if (!parseString(value))
                    return false;
            } else {
                const std::size_t start = i;
                if (i < line.size() && line[i] == '-')
                    ++i;
                while (i < line.size() && line[i] >= '0' &&
                       line[i] <= '9')
                    ++i;
                if (i == start)
                    return false;
                value = line.substr(start, i - start);
            }
            out[key] = value;
            skipWs();
            if (i < line.size() && line[i] == ',') {
                ++i;
                continue;
            }
            if (i < line.size() && line[i] == '}') {
                ++i;
                break;
            }
            return false;
        }
    }
    skipWs();
    return i == line.size();
}

bool
fieldU64(const std::map<std::string, std::string> &fields,
         const char *key, u64 &out)
{
    const auto it = fields.find(key);
    if (it == fields.end())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(it->second.c_str(), &end, 10);
    return errno == 0 && end && *end == '\0';
}

bool
fieldStr(const std::map<std::string, std::string> &fields,
         const char *key, std::string &out)
{
    const auto it = fields.find(key);
    if (it == fields.end())
        return false;
    out = it->second;
    return true;
}

} // namespace marvel::json
