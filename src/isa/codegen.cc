#include "isa/codegen.hh"

#include <cstring>
#include <map>

#include "common/bits.hh"
#include "common/log.hh"
#include "common/memmap.hh"
#include "isa/lowering.hh"

namespace marvel::isa
{

namespace
{

using mir::Op;

/// Per-function lowering context.
class Lowerer
{
  public:
    Lowerer(const mir::Module &module, const IsaSpec &isa,
            const mir::DataLayout &layout, Addr poolBase,
            std::map<u64, u32> &poolMap, std::vector<u8> &poolBytes)
        : mod(module), spec(isa), layout_(layout), poolBase_(poolBase),
          poolMap_(poolMap), poolBytes_(poolBytes)
    {
    }

    LFunc
    lower(const mir::Function &fn)
    {
        mf = &fn;
        lf = LFunc{};
        lf.name = fn.name;
        // MIR vregs map 1:1 onto the first lowered vregs.
        for (mir::Type t : fn.vregTypes)
            lf.vclass.push_back(t == mir::Type::F64 ? RegClass::Fp
                                                    : RegClass::Int);
        lf.blocks.resize(fn.blocks.size());
        computeUseCounts();

        // Bind incoming arguments: copy the calling convention's
        // physical argument registers into the parameter vregs.
        // The copies form one parallel-move group: a parameter vreg
        // may be allocated to another parameter's incoming register.
        cur = &lf.blocks[0];
        const u16 paramGroup = ++callGroupCounter;
        unsigned intIdx = 0;
        unsigned fpIdx = 0;
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
            const bool isFp = fn.paramTypes[i] == mir::Type::F64;
            unsigned phys;
            if (isFp) {
                if (fpIdx >= spec.fpArgRegs.size())
                    fatal("codegen: too many FP parameters in '%s'",
                          fn.name.c_str());
                phys = spec.fpArgRegs[fpIdx++];
            } else {
                if (intIdx >= spec.intArgRegs.size())
                    fatal("codegen: too many parameters in '%s'",
                          fn.name.c_str());
                phys = spec.intArgRegs[intIdx++];
            }
            emit({.op = MOp::Mov, .rd = fn.params[i],
                  .ra = lPhys(phys), .fp = isFp,
                  .callGroup = paramGroup});
        }

        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            cur = &lf.blocks[b];
            lowerBlock(fn.blocks[b]);
        }
        return std::move(lf);
    }

  private:
    // ------------------------------------------------------------------
    void
    computeUseCounts()
    {
        useCount.assign(mf->numVRegs(), 0);
        for (const mir::Block &blk : mf->blocks) {
            for (const mir::Inst &in : blk.insts) {
                const unsigned ns = mir::numSources(in.op);
                if (in.op == Op::Ret) {
                    if (mf->hasResult)
                        ++useCount[in.a];
                } else if (in.op == Op::Br) {
                    ++useCount[in.a];
                } else {
                    if (ns >= 1)
                        ++useCount[in.a];
                    if (ns >= 2)
                        ++useCount[in.b];
                    if (ns >= 3)
                        ++useCount[in.c];
                }
                for (mir::VReg r : in.args)
                    ++useCount[r];
            }
        }
    }

    void
    emit(LInst inst)
    {
        cur->insts.push_back(inst);
    }

    u32
    temp(RegClass cls = RegClass::Int)
    {
        return lf.newVReg(cls);
    }

    // --- constant materialization ---------------------------------------
    u32
    poolSlot(u64 bits)
    {
        auto it = poolMap_.find(bits);
        if (it != poolMap_.end())
            return it->second;
        const u32 off = static_cast<u32>(poolBytes_.size());
        for (unsigned i = 0; i < 8; ++i)
            poolBytes_.push_back((bits >> (8 * i)) & 0xff);
        poolMap_.emplace(bits, off);
        return off;
    }

    void
    materializeInt(u32 dst, i64 value)
    {
        switch (spec.kind) {
          case IsaKind::RISCV:
            if (fitsSigned(value, 12)) {
                emit({.op = MOp::AddI, .rd = dst, .ra = lPhys(0),
                      .imm = value});
            } else if (fitsSigned(value, 32) &&
                       fitsSigned((value + 0x800) & ~0xfffll, 32)) {
                // lui (sext imm20<<12) plus a 12-bit adjustment. The
                // rounded-up high part must itself stay in lui range,
                // which excludes values within 2048 of INT32_MAX.
                const i64 hi = (value + 0x800) & ~0xfffll;
                const i64 lo = value - hi;
                emit({.op = MOp::Lui, .rd = dst, .imm = hi});
                if (lo)
                    emit({.op = MOp::AddI, .rd = dst, .ra = dst,
                          .imm = lo});
            } else {
                // 64-bit: load from the constant pool.
                const Addr addr =
                    poolBase_ + poolSlot(static_cast<u64>(value));
                const u32 t = temp();
                materializeInt(t, static_cast<i64>(addr));
                emit({.op = MOp::Ld, .rd = dst, .ra = t, .size = 8});
            }
            break;
          case IsaKind::ARM: {
            const u64 uv = static_cast<u64>(value);
            bool first = true;
            for (unsigned hw = 0; hw < 4; ++hw) {
                const u64 chunk = (uv >> (16 * hw)) & 0xffff;
                if (chunk == 0 && !(first && hw == 3))
                    continue;
                emit({.op = first ? MOp::MovZ : MOp::MovK, .rd = dst,
                      .subop = static_cast<u8>(hw),
                      .imm = static_cast<i64>(chunk)});
                first = false;
            }
            if (first) // value == 0
                emit({.op = MOp::MovZ, .rd = dst, .subop = 0,
                      .imm = 0});
            break;
          }
          case IsaKind::X86:
            if (fitsSigned(value, 32))
                emit({.op = MOp::MovImm32, .rd = dst, .imm = value});
            else
                emit({.op = MOp::MovImm64, .rd = dst, .imm = value});
            break;
        }
    }

    void
    materializeFloat(u32 dst, double value)
    {
        u64 bits;
        std::memcpy(&bits, &value, sizeof(bits));
        const Addr addr = poolBase_ + poolSlot(bits);
        const u32 t = temp();
        materializeInt(t, static_cast<i64>(addr));
        emit({.op = MOp::LdF, .rd = dst, .ra = t});
    }

    // --- addressing -------------------------------------------------------
    bool
    offsetEncodable(i64 off, unsigned size) const
    {
        switch (spec.kind) {
          case IsaKind::RISCV:
            return fitsSigned(off, 12);
          case IsaKind::ARM:
            return off >= 0 && (off % size) == 0 &&
                   (off / size) <= 0xfff;
          case IsaKind::X86:
            return fitsSigned(off, 32);
        }
        return false;
    }

    /** Fold an offset into base+disp addressing, or compute it. */
    std::pair<u32, i64>
    normalizeAddr(u32 base, i64 off, unsigned size)
    {
        if (offsetEncodable(off, size))
            return {base, off};
        const u32 t = temp();
        if (fitsSigned(off, 12)) {
            emit({.op = MOp::AddI, .rd = t, .ra = base, .imm = off});
        } else {
            const u32 c = temp();
            materializeInt(c, off);
            emit({.op = MOp::Add, .rd = t, .ra = base, .rb = c});
        }
        return {t, 0};
    }

    // --- compare helpers ---------------------------------------------------
    static bool
    isIntCmp(Op op)
    {
        switch (op) {
          case Op::CmpEq: case Op::CmpNe: case Op::CmpLt:
          case Op::CmpLe: case Op::CmpLtU: case Op::CmpLeU:
            return true;
          default:
            return false;
        }
    }

    static bool
    isFloatCmp(Op op)
    {
        return op == Op::FCmpEq || op == Op::FCmpLt || op == Op::FCmpLe;
    }

    static Cond
    condOf(Op op)
    {
        switch (op) {
          case Op::CmpEq: case Op::FCmpEq: return Cond::Eq;
          case Op::CmpNe: return Cond::Ne;
          case Op::CmpLt: case Op::FCmpLt: return Cond::Lt;
          case Op::CmpLe: case Op::FCmpLe: return Cond::Le;
          case Op::CmpLtU: return Cond::LtU;
          case Op::CmpLeU: return Cond::LeU;
          default:
            panic("condOf: not a compare");
        }
    }

    /** Emit `dst = cmp(a, b)` as a value (0/1). */
    void
    lowerCmpValue(Op op, u32 dst, u32 a, u32 b)
    {
        if (spec.hasFlags) {
            if (isFloatCmp(op))
                emit({.op = MOp::FCmp, .ra = a, .rb = b});
            else
                emit({.op = MOp::Cmp, .ra = a, .rb = b});
            emit({.op = MOp::SetCC, .rd = dst, .cond = condOf(op)});
            return;
        }
        // RISCV
        switch (op) {
          case Op::FCmpEq: case Op::FCmpLt: case Op::FCmpLe:
            emit({.op = MOp::FSet, .rd = dst, .ra = a, .rb = b,
                  .cond = condOf(op)});
            break;
          case Op::CmpLt:
            emit({.op = MOp::Slt, .rd = dst, .ra = a, .rb = b});
            break;
          case Op::CmpLtU:
            emit({.op = MOp::SltU, .rd = dst, .ra = a, .rb = b});
            break;
          case Op::CmpLe: {
            // a <= b  <=>  !(b < a)
            const u32 t = temp();
            emit({.op = MOp::Slt, .rd = t, .ra = b, .rb = a});
            emit({.op = MOp::XorI, .rd = dst, .ra = t, .imm = 1});
            break;
          }
          case Op::CmpLeU: {
            const u32 t = temp();
            emit({.op = MOp::SltU, .rd = t, .ra = b, .rb = a});
            emit({.op = MOp::XorI, .rd = dst, .ra = t, .imm = 1});
            break;
          }
          case Op::CmpEq: {
            // (a ^ b) == 0
            const u32 t = temp();
            emit({.op = MOp::Xor, .rd = t, .ra = a, .rb = b});
            emit({.op = MOp::SltIU, .rd = dst, .ra = t, .imm = 1});
            break;
          }
          case Op::CmpNe: {
            const u32 t = temp();
            emit({.op = MOp::Xor, .rd = t, .ra = a, .rb = b});
            emit({.op = MOp::SltU, .rd = dst, .ra = lPhys(0),
                  .rb = t});
            break;
          }
          default:
            panic("lowerCmpValue: bad op");
        }
    }

    /** RISCV condition normalization: only Eq/Ne/Lt/Ge/LtU/GeU encode. */
    static void
    normalizeRiscvBranch(Cond &cond, u32 &a, u32 &b)
    {
        switch (cond) {
          case Cond::Le:
            cond = Cond::Ge;
            std::swap(a, b);
            break;
          case Cond::Gt:
            cond = Cond::Lt;
            std::swap(a, b);
            break;
          case Cond::LeU:
            cond = Cond::GeU;
            std::swap(a, b);
            break;
          case Cond::GtU:
            cond = Cond::LtU;
            std::swap(a, b);
            break;
          default:
            break;
        }
    }

    // --- block lowering ----------------------------------------------------
    void
    lowerBlock(const mir::Block &blk)
    {
        for (std::size_t i = 0; i < blk.insts.size(); ++i) {
            const mir::Inst &in = blk.insts[i];
            const mir::Inst *next =
                i + 1 < blk.insts.size() ? &blk.insts[i + 1] : nullptr;

            // Compare-and-branch fusion: cmp immediately feeding the
            // block's conditional branch with no other uses.
            if ((isIntCmp(in.op) || isFloatCmp(in.op)) && next &&
                next->op == Op::Br && next->a == in.dst &&
                useCount[in.dst] == 1) {
                lowerFusedCmpBr(in, *next);
                ++i; // consumed the branch too
                continue;
            }

            // X86 load-op folding: 8-byte load feeding one ALU use.
            if (spec.kind == IsaKind::X86 && in.op == Op::Ld8 && next &&
                useCount[in.dst] == 1 && foldableAlu(next->op) &&
                (next->b == in.dst ||
                 (next->a == in.dst && commutative(next->op) &&
                  next->b != in.dst)) &&
                next->a != next->b) {
                const u32 other =
                    next->b == in.dst ? next->a : next->b;
                auto [base, disp] = normalizeAddr(in.a, in.imm, 8);
                // rd = other; rd op= mem[base+disp]
                emit({.op = MOp::Mov, .rd = next->dst, .ra = other});
                emit({.op = MOp::AluM, .rd = next->dst, .ra = base,
                      .subop = aluMIndex(next->op), .imm = disp});
                ++i;
                continue;
            }

            lowerInst(in);
        }
    }

    static bool
    foldableAlu(Op op)
    {
        switch (op) {
          case Op::Add: case Op::Sub: case Op::And: case Op::Or:
          case Op::Xor: case Op::Mul:
            return true;
          default:
            return false;
        }
    }

    static bool
    commutative(Op op)
    {
        switch (op) {
          case Op::Add: case Op::And: case Op::Or: case Op::Xor:
          case Op::Mul:
            return true;
          default:
            return false;
        }
    }

    static u8
    aluMIndex(Op op)
    {
        // Same order as the X86 0x10.. opcode row (Add..Sra).
        switch (op) {
          case Op::Add: return 0;
          case Op::Sub: return 1;
          case Op::Mul: return 2;
          case Op::And: return 7;
          case Op::Or: return 8;
          case Op::Xor: return 9;
          default:
            panic("aluMIndex: not foldable");
        }
    }

    void
    lowerFusedCmpBr(const mir::Inst &cmp, const mir::Inst &br)
    {
        if (spec.hasFlags) {
            if (isFloatCmp(cmp.op))
                emit({.op = MOp::FCmp, .ra = cmp.a, .rb = cmp.b});
            else
                emit({.op = MOp::Cmp, .ra = cmp.a, .rb = cmp.b});
            emit({.op = MOp::Br, .cond = condOf(cmp.op),
                  .target = static_cast<i32>(br.target)});
        } else if (isFloatCmp(cmp.op)) {
            const u32 t = temp();
            emit({.op = MOp::FSet, .rd = t, .ra = cmp.a, .rb = cmp.b,
                  .cond = condOf(cmp.op)});
            emit({.op = MOp::Br, .ra = t, .rb = lPhys(0),
                  .cond = Cond::Ne,
                  .target = static_cast<i32>(br.target)});
        } else {
            Cond cond = condOf(cmp.op);
            u32 a = cmp.a;
            u32 b = cmp.b;
            normalizeRiscvBranch(cond, a, b);
            emit({.op = MOp::Br, .ra = a, .rb = b, .cond = cond,
                  .target = static_cast<i32>(br.target)});
        }
        emit({.op = MOp::Jmp,
              .target = static_cast<i32>(br.target2)});
    }

    static MOp
    intAluMOp(Op op)
    {
        switch (op) {
          case Op::Add: return MOp::Add;
          case Op::Sub: return MOp::Sub;
          case Op::Mul: return MOp::Mul;
          case Op::Div: return MOp::Div;
          case Op::DivU: return MOp::DivU;
          case Op::Rem: return MOp::Rem;
          case Op::RemU: return MOp::RemU;
          case Op::And: return MOp::And;
          case Op::Or: return MOp::Or;
          case Op::Xor: return MOp::Xor;
          case Op::Shl: return MOp::Shl;
          case Op::Shr: return MOp::Shr;
          case Op::Sra: return MOp::Sra;
          default:
            panic("intAluMOp: not an ALU op");
        }
    }

    static MOp
    loadMOp(Op op, unsigned &size, bool &sign, bool &fp)
    {
        fp = false;
        sign = mir::loadIsSigned(op);
        size = mir::accessSize(op);
        if (op == Op::LdF8) {
            fp = true;
            return MOp::LdF;
        }
        return MOp::Ld;
    }

    void
    lowerInst(const mir::Inst &in)
    {
        switch (in.op) {
          case Op::ConstI:
            materializeInt(in.dst, in.imm);
            break;
          case Op::ConstF:
            materializeFloat(in.dst, in.fimm);
            break;
          case Op::GAddr:
            materializeInt(in.dst,
                           static_cast<i64>(layout_.globalAddr[in.imm]));
            break;
          case Op::Mov:
            emit({.op = MOp::Mov, .rd = in.dst, .ra = in.a,
                  .fp = mf->vregTypes[in.dst] == mir::Type::F64});
            break;
          case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
          case Op::DivU: case Op::Rem: case Op::RemU: case Op::And:
          case Op::Or: case Op::Xor: case Op::Shl: case Op::Shr:
          case Op::Sra:
            emit({.op = intAluMOp(in.op), .rd = in.dst, .ra = in.a,
                  .rb = in.b});
            break;
          case Op::CmpEq: case Op::CmpNe: case Op::CmpLt:
          case Op::CmpLe: case Op::CmpLtU: case Op::CmpLeU:
          case Op::FCmpEq: case Op::FCmpLt: case Op::FCmpLe:
            lowerCmpValue(in.op, in.dst, in.a, in.b);
            break;
          case Op::FAdd:
            emit({.op = MOp::FAdd, .rd = in.dst, .ra = in.a,
                  .rb = in.b});
            break;
          case Op::FSub:
            emit({.op = MOp::FSub, .rd = in.dst, .ra = in.a,
                  .rb = in.b});
            break;
          case Op::FMul:
            emit({.op = MOp::FMul, .rd = in.dst, .ra = in.a,
                  .rb = in.b});
            break;
          case Op::FDiv:
            emit({.op = MOp::FDiv, .rd = in.dst, .ra = in.a,
                  .rb = in.b});
            break;
          case Op::FSqrt:
            emit({.op = MOp::FSqrt, .rd = in.dst, .ra = in.a});
            break;
          case Op::ItoF:
            emit({.op = MOp::ItoF, .rd = in.dst, .ra = in.a});
            break;
          case Op::FtoI:
            emit({.op = MOp::FtoI, .rd = in.dst, .ra = in.a});
            break;
          case Op::Select:
            lowerSelect(in);
            break;
          case Op::Ld1u: case Op::Ld1s: case Op::Ld2u: case Op::Ld2s:
          case Op::Ld4u: case Op::Ld4s: case Op::Ld8: case Op::LdF8: {
            unsigned size;
            bool sign, fp;
            const MOp op = loadMOp(in.op, size, sign, fp);
            auto [base, disp] = normalizeAddr(in.a, in.imm, size);
            emit({.op = op, .rd = in.dst, .ra = base,
                  .size = static_cast<u8>(size), .sign = sign,
                  .imm = disp});
            break;
          }
          case Op::St1: case Op::St2: case Op::St4: case Op::St8:
          case Op::StF8: {
            const unsigned size = mir::accessSize(in.op);
            auto [base, disp] = normalizeAddr(in.a, in.imm, size);
            emit({.op = in.op == Op::StF8 ? MOp::StF : MOp::St,
                  .ra = base, .rb = in.b,
                  .size = static_cast<u8>(size), .imm = disp});
            break;
          }
          case Op::Jmp:
            emit({.op = MOp::Jmp,
                  .target = static_cast<i32>(in.target)});
            break;
          case Op::Br:
            // Unfused: test the condition register against zero.
            if (spec.hasFlags) {
                emit({.op = MOp::CmpI, .ra = in.a, .imm = 0});
                emit({.op = MOp::Br, .cond = Cond::Ne,
                      .target = static_cast<i32>(in.target)});
            } else {
                emit({.op = MOp::Br, .ra = in.a, .rb = lPhys(0),
                      .cond = Cond::Ne,
                      .target = static_cast<i32>(in.target)});
            }
            emit({.op = MOp::Jmp,
                  .target = static_cast<i32>(in.target2)});
            break;
          case Op::Ret:
            if (mf->hasResult) {
                const bool fp = mf->resultType == mir::Type::F64;
                emit({.op = MOp::Mov,
                      .rd = lPhys(fp ? spec.fpRetReg : spec.intRetReg),
                      .ra = in.a, .fp = fp});
            }
            emit({.op = MOp::Ret});
            break;
          case Op::Call:
            lowerCall(in);
            break;
          case Op::Checkpoint:
            emit({.op = MOp::Magic,
                  .subop = static_cast<u8>(MagicOp::Checkpoint)});
            break;
          case Op::SwitchCpu:
            emit({.op = MOp::Magic,
                  .subop = static_cast<u8>(MagicOp::SwitchCpu)});
            break;
          case Op::WaitIrq:
            emit({.op = MOp::Magic,
                  .subop = static_cast<u8>(MagicOp::WaitIrq)});
            break;
        }
    }

    void
    lowerSelect(const mir::Inst &in)
    {
        const bool fp = mf->vregTypes[in.dst] == mir::Type::F64;
        if (fp)
            fatal("codegen: floating-point Select is not supported");
        switch (spec.kind) {
          case IsaKind::ARM:
            emit({.op = MOp::CmpI, .ra = in.a, .imm = 0});
            emit({.op = MOp::CSel, .rd = in.dst, .ra = in.b,
                  .rb = in.c, .cond = Cond::Ne});
            break;
          case IsaKind::X86:
            // rd = c; if (a != 0) rd = b
            emit({.op = MOp::Mov, .rd = in.dst, .ra = in.c});
            emit({.op = MOp::CmpI, .ra = in.a, .imm = 0});
            emit({.op = MOp::CSel, .rd = in.dst, .ra = in.dst,
                  .rb = in.b, .cond = Cond::Ne});
            break;
          case IsaKind::RISCV: {
            // Branchless: mask = -(a != 0); rd = (b & mask)|(c & ~mask)
            const u32 nz = temp();
            emit({.op = MOp::SltU, .rd = nz, .ra = lPhys(0),
                  .rb = in.a});
            const u32 mask = temp();
            emit({.op = MOp::Sub, .rd = mask, .ra = lPhys(0),
                  .rb = nz});
            const u32 t1 = temp();
            emit({.op = MOp::And, .rd = t1, .ra = in.b, .rb = mask});
            const u32 nmask = temp();
            emit({.op = MOp::XorI, .rd = nmask, .ra = mask,
                  .imm = -1});
            const u32 t2 = temp();
            emit({.op = MOp::And, .rd = t2, .ra = in.c, .rb = nmask});
            emit({.op = MOp::Or, .rd = in.dst, .ra = t1, .rb = t2});
            break;
          }
        }
    }

    void
    lowerCall(const mir::Inst &in)
    {
        lf.isLeaf = false;
        const mir::Function &callee = mod.functions[in.callee];
        const u16 group = ++callGroupCounter;
        unsigned intIdx = 0;
        unsigned fpIdx = 0;
        for (std::size_t i = 0; i < in.args.size(); ++i) {
            const bool fp = callee.paramTypes[i] == mir::Type::F64;
            unsigned phys;
            if (fp) {
                if (fpIdx >= spec.fpArgRegs.size())
                    fatal("codegen: too many FP call arguments");
                phys = spec.fpArgRegs[fpIdx++];
            } else {
                if (intIdx >= spec.intArgRegs.size())
                    fatal("codegen: too many call arguments");
                phys = spec.intArgRegs[intIdx++];
            }
            emit({.op = MOp::Mov, .rd = lPhys(phys), .ra = in.args[i],
                  .fp = fp, .callGroup = group});
        }
        emit({.op = MOp::Call, .target = static_cast<i32>(in.callee)});
        if (callee.hasResult) {
            const bool fp = callee.resultType == mir::Type::F64;
            emit({.op = MOp::Mov, .rd = in.dst,
                  .ra = lPhys(fp ? spec.fpRetReg : spec.intRetReg),
                  .fp = fp});
        }
    }

    const mir::Module &mod;
    const IsaSpec &spec;
    const mir::DataLayout &layout_;
    Addr poolBase_;
    std::map<u64, u32> &poolMap_;
    std::vector<u8> &poolBytes_;

    LFunc lf;
    const mir::Function *mf = nullptr;
    LBlock *cur = nullptr;
    std::vector<u32> useCount;
    u16 callGroupCounter = 0;
};

} // namespace

LoweredModule
lowerModule(const mir::Module &module, IsaKind kind)
{
    mir::verify(module);
    const IsaSpec &spec = isaSpec(kind);

    LoweredModule lm;
    lm.layout = mir::layoutGlobals(module, kDataBase);
    lm.poolBase = lm.layout.end;
    if (lm.poolBase > kStackTop)
        fatal("codegen: globals overflow the data segment");

    std::map<u64, u32> poolMap;
    Lowerer lowerer(module, spec, lm.layout, lm.poolBase, poolMap,
                    lm.poolBytes);
    lm.funcs.reserve(module.functions.size());
    for (const mir::Function &fn : module.functions)
        lm.funcs.push_back(lowerer.lower(fn));
    return lm;
}

Addr
Program::funcAddr(const std::string &name) const
{
    for (const auto &[n, a] : funcAddrs)
        if (n == name)
            return a;
    fatal("program: no function '%s'", name.c_str());
}

} // namespace marvel::isa
