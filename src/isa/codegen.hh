/**
 * @file
 * MIR-to-machine-code compilation for the three ISA flavors.
 *
 * Pipeline (mirroring a real -O0 compiler backend, which is also what
 * the paper uses for its workloads):
 *   1. Lowering (instruction selection): MIR -> LInst over virtual
 *      registers, with per-flavor idioms (compare-and-branch fusion on
 *      RISCV, flags+Bcc on ARM/X86, load-op folding and two-address
 *      forms on X86, per-flavor constant materialization).
 *   2. Linear-scan register allocation with caller/callee-saved pools
 *      and spill slots (see regalloc.hh).
 *   3. Emission: block layout, branch relaxation (RISCV compressed
 *      forms), prologue/epilogue, encoding to bytes.
 */

#ifndef MARVEL_ISA_CODEGEN_HH
#define MARVEL_ISA_CODEGEN_HH

#include <string>
#include <vector>

#include "isa/minst.hh"
#include "isa/uop.hh"
#include "mir/mir.hh"

namespace marvel::isa
{

/** Sentinel: operand absent. */
constexpr u32 kNoReg = 0xffffffffu;

/** Operands with this bit set name a physical register. */
constexpr u32 kPhysBit = 0x80000000u;

constexpr bool
lIsPhys(u32 r)
{
    return r != kNoReg && (r & kPhysBit) != 0;
}

constexpr u32
lPhys(u32 idx)
{
    return kPhysBit | idx;
}

constexpr u32
lPhysIdx(u32 r)
{
    return r & ~kPhysBit;
}

/**
 * Lowered instruction: an MInst shape over virtual (or pinned physical)
 * registers, with block-level branch targets.
 */
struct LInst
{
    MOp op = MOp::Nop;
    u32 rd = kNoReg;
    u32 ra = kNoReg;
    u32 rb = kNoReg;
    Cond cond = Cond::Eq;
    u8 size = 8;
    bool sign = false;
    bool fp = false;
    u8 subop = 0;
    i64 imm = 0;
    i32 target = -1;   ///< block id (Br/Jmp) or callee function id (Call)
    u16 callGroup = 0; ///< nonzero: member of a call-argument move group
};

/** Lowered basic block. */
struct LBlock
{
    std::vector<LInst> insts;
};

/** Lowered function (pre register allocation). */
struct LFunc
{
    std::string name;
    std::vector<RegClass> vclass; ///< class of each virtual register
    std::vector<LBlock> blocks;
    bool isLeaf = true;

    u32
    newVReg(RegClass cls)
    {
        vclass.push_back(cls);
        return static_cast<u32>(vclass.size() - 1);
    }
};

/** A compiled program image, ready to load into simulated memory. */
struct Program
{
    IsaKind kind = IsaKind::RISCV;

    std::vector<u8> code;     ///< loaded at kCodeBase
    Addr entry = 0;           ///< initial pc (crt0)

    mir::DataLayout layout;   ///< global addresses
    std::vector<u8> dataImage;///< initial bytes at kDataBase
    Addr dataEnd = 0;         ///< end of data (globals + constant pool)

    /** Per-function start address (function name -> address). */
    std::vector<std::pair<std::string, Addr>> funcAddrs;

    /** Codegen statistics. */
    struct Stats
    {
        u64 numInsts = 0;
        u64 numCompressed = 0;
        u64 codeBytes = 0;
        u64 spillSlots = 0;
    } stats;

    /** Address of a function by name; fatal() when absent. */
    Addr funcAddr(const std::string &name) const;
};

/**
 * Compile a verified MIR module for the given flavor.
 */
Program compile(const mir::Module &module, IsaKind kind);

/** Disassemble a program's code segment (debugging aid). */
std::string disassemble(const Program &program);

/**
 * FNV-1a digest over everything that determines a program's
 * execution: flavor, code bytes, entry pc, data image and layout.
 * Two compiles of one module must digest identically — the fuzz
 * determinism audit enforces exactly that — and reproducer metadata
 * records it so a regenerated failing program can be vouched.
 */
u64 programDigest(const Program &program);

} // namespace marvel::isa

#endif // MARVEL_ISA_CODEGEN_HH
