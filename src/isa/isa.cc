#include "isa/isa.hh"

#include "common/log.hh"

namespace marvel::isa
{

const char *
isaName(IsaKind kind)
{
    switch (kind) {
      case IsaKind::RISCV: return "riscv";
      case IsaKind::ARM: return "arm";
      case IsaKind::X86: return "x86";
    }
    return "?";
}

IsaKind
isaFromName(const std::string &name)
{
    if (name == "riscv")
        return IsaKind::RISCV;
    if (name == "arm")
        return IsaKind::ARM;
    if (name == "x86")
        return IsaKind::X86;
    fatal("unknown ISA '%s'", name.c_str());
}

namespace
{

IsaSpec
makeRiscv()
{
    IsaSpec s{};
    s.kind = IsaKind::RISCV;
    s.name = "riscv";
    s.numIntArchRegs = 32; // x0 hardwired zero
    s.numFpArchRegs = 32;
    s.numIntTemps = 0;
    s.hasFlags = false;
    s.hasZeroReg = true;
    s.spReg = 2;   // x2
    s.raReg = 1;   // x1
    s.linkViaStack = false;
    // Args a0-a7 = x10-x17; return a0.
    s.intArgRegs = {10, 11, 12, 13, 14, 15, 16, 17};
    s.intRetReg = 10;
    s.fpArgRegs = {10, 11, 12, 13, 14, 15, 16, 17};
    s.fpRetReg = 10;
    // Callee-saved s0-s11 = x8, x9, x18-x27.
    s.calleeSavedInt = {8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27};
    // Caller-saved allocatable: a0-a7, t3-t6 (x28-x31). t0-t2 (x5-7)
    // are reserved as scratch.
    s.callerSavedInt = {10, 11, 12, 13, 14, 15, 16, 17, 28, 29, 30, 31};
    s.calleeSavedFp = {8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27};
    s.callerSavedFp = {10, 11, 12, 13, 14, 15, 16, 17, 28, 29, 30, 31};
    s.scratchInt[0] = 5;
    s.scratchInt[1] = 6;
    s.scratchInt[2] = 7;
    s.scratchFp[0] = 5;
    s.scratchFp[1] = 6;
    s.storeDrainInterval = 1; // weak ordering, moderate drain
    s.allowsUnaligned = false;
    s.compressedCode = true;
    s.funcAlign = 4;
    return s;
}

IsaSpec
makeArm()
{
    IsaSpec s{};
    s.kind = IsaKind::ARM;
    s.name = "arm";
    s.numIntArchRegs = 32; // x0-x30 + SP as index 31
    s.numFpArchRegs = 32;
    s.numIntTemps = 0;
    s.hasFlags = true;
    s.hasZeroReg = false;
    s.spReg = 31;
    s.raReg = 30; // x30 = LR
    s.linkViaStack = false;
    s.intArgRegs = {0, 1, 2, 3, 4, 5, 6, 7};
    s.intRetReg = 0;
    s.fpArgRegs = {0, 1, 2, 3, 4, 5, 6, 7};
    s.fpRetReg = 0;
    s.calleeSavedInt = {19, 20, 21, 22, 23, 24, 25, 26, 27, 28};
    // x9-x11 reserved as scratch; x0-x8, x12-x18 caller-saved pool.
    s.callerSavedInt = {0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 13, 14, 15,
                        16, 17, 18};
    s.calleeSavedFp = {8, 9, 10, 11, 12, 13, 14, 15};
    s.callerSavedFp = {0, 1, 2, 3, 4, 5, 6, 7, 18, 19, 20, 21, 22,
                       23, 24, 25};
    s.scratchInt[0] = 9;
    s.scratchInt[1] = 10;
    s.scratchInt[2] = 11;
    s.scratchFp[0] = 16;
    s.scratchFp[1] = 17;
    s.storeDrainInterval = 0; // eager drain (weakest ordering)
    s.allowsUnaligned = false;
    s.compressedCode = false;
    s.funcAlign = 16; // fetch-alignment padding enlarges footprint
    return s;
}

IsaSpec
makeX86()
{
    IsaSpec s{};
    s.kind = IsaKind::X86;
    s.name = "x86";
    s.numIntArchRegs = 16;
    s.numFpArchRegs = 16;
    s.numIntTemps = 2; // micro-op cracking temporaries
    s.hasFlags = true;
    s.hasZeroReg = false;
    s.spReg = 4; // rsp
    s.raReg = 0; // unused
    s.linkViaStack = true;
    // SysV-ish: rdi, rsi, rdx, rcx, r8, r9.
    s.intArgRegs = {7, 6, 2, 1, 8, 9};
    s.intRetReg = 0; // rax
    s.fpArgRegs = {0, 1, 2, 3, 4, 5, 6, 7};
    s.fpRetReg = 0;
    s.calleeSavedInt = {3, 5, 12, 13, 14, 15}; // rbx, rbp, r12-r15
    // rax, rcx, rdx, rsi, rdi, r8, r9 caller-saved; r10, r11 scratch.
    s.callerSavedInt = {0, 1, 2, 6, 7, 8, 9};
    s.calleeSavedFp = {};
    s.callerSavedFp = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
    s.scratchInt[0] = 10;
    s.scratchInt[1] = 11;
    s.scratchInt[2] = 10; // only two true scratch regs; reuse r10
    s.scratchFp[0] = 14;
    s.scratchFp[1] = 15;
    s.storeDrainInterval = 4; // TSO: in-order, slow drain
    s.allowsUnaligned = true;
    s.compressedCode = false;
    s.funcAlign = 4;
    return s;
}

} // namespace

const IsaSpec &
isaSpec(IsaKind kind)
{
    static const IsaSpec riscv = makeRiscv();
    static const IsaSpec arm = makeArm();
    static const IsaSpec x86 = makeX86();
    switch (kind) {
      case IsaKind::RISCV: return riscv;
      case IsaKind::ARM: return arm;
      case IsaKind::X86: return x86;
    }
    panic("bad IsaKind %d", static_cast<int>(kind));
}

Cond
invertCond(Cond cond)
{
    switch (cond) {
      case Cond::Eq: return Cond::Ne;
      case Cond::Ne: return Cond::Eq;
      case Cond::Lt: return Cond::Ge;
      case Cond::Le: return Cond::Gt;
      case Cond::Gt: return Cond::Le;
      case Cond::Ge: return Cond::Lt;
      case Cond::LtU: return Cond::GeU;
      case Cond::LeU: return Cond::GtU;
      case Cond::GtU: return Cond::LeU;
      case Cond::GeU: return Cond::LtU;
    }
    return Cond::Eq;
}

bool
evalCond(Cond cond, u64 a, u64 b)
{
    const i64 sa = static_cast<i64>(a);
    const i64 sb = static_cast<i64>(b);
    switch (cond) {
      case Cond::Eq: return a == b;
      case Cond::Ne: return a != b;
      case Cond::Lt: return sa < sb;
      case Cond::Le: return sa <= sb;
      case Cond::Gt: return sa > sb;
      case Cond::Ge: return sa >= sb;
      case Cond::LtU: return a < b;
      case Cond::LeU: return a <= b;
      case Cond::GtU: return a > b;
      case Cond::GeU: return a >= b;
    }
    return false;
}

u64
packFlags(u64 a, u64 b)
{
    u64 flags = 0;
    for (unsigned c = 0; c < kNumConds; ++c)
        if (evalCond(static_cast<Cond>(c), a, b))
            flags |= 1ull << c;
    return flags;
}

u64
packFlagsF(double a, double b)
{
    u64 flags = 0;
    auto set = [&](Cond c, bool v) {
        if (v)
            flags |= 1ull << static_cast<unsigned>(c);
    };
    set(Cond::Eq, a == b);
    set(Cond::Ne, a != b);
    set(Cond::Lt, a < b);
    set(Cond::Le, a <= b);
    set(Cond::Gt, a > b);
    set(Cond::Ge, a >= b);
    set(Cond::LtU, a < b);
    set(Cond::LeU, a <= b);
    set(Cond::GtU, a > b);
    set(Cond::GeU, a >= b);
    return flags;
}

bool
testFlags(u64 flags, Cond cond)
{
    return (flags >> static_cast<unsigned>(cond)) & 1;
}

} // namespace marvel::isa
