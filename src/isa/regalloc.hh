/**
 * @file
 * Linear-scan register allocation over lowered functions.
 *
 * Classic Poletto/Sarkar linear scan with block-liveness-extended
 * intervals. Intervals that are live across a call are restricted to
 * callee-saved registers (or spilled); others prefer caller-saved
 * registers. Spilled virtual registers get 8-byte frame slots; the
 * emitter reloads them through reserved scratch registers.
 */

#ifndef MARVEL_ISA_REGALLOC_HH
#define MARVEL_ISA_REGALLOC_HH

#include <vector>

#include "isa/codegen.hh"

namespace marvel::isa
{

/** Result of register allocation for one function. */
struct Allocation
{
    std::vector<i32> reg;  ///< vreg -> physical index, or -1 if spilled
    std::vector<i32> slot; ///< vreg -> spill slot index, or -1
    unsigned numSlots = 0;
    std::vector<unsigned> usedCalleeInt; ///< callee-saved regs to save
    std::vector<unsigned> usedCalleeFp;
};

/** Operand roles of a lowered instruction. */
struct OperandRoles
{
    bool rdIsDef = false;  ///< rd is written
    bool rdIsUse = false;  ///< rd is also read (AluM, MovK)
    bool raIsUse = false;
    bool rbIsUse = false;
    RegClass rdClass = RegClass::Int;
    RegClass raClass = RegClass::Int;
    RegClass rbClass = RegClass::Int;
};

/** Classify the operands of a lowered instruction. */
OperandRoles operandRoles(const LInst &inst);

/** Run linear-scan allocation. */
Allocation allocateRegisters(const IsaSpec &spec, const LFunc &fn);

} // namespace marvel::isa

#endif // MARVEL_ISA_REGALLOC_HH
