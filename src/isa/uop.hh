/**
 * @file
 * ISA-neutral micro-ops.
 *
 * The decoder cracks each machine instruction into 1-3 micro-ops; the
 * out-of-order core renames, issues, executes, and commits micro-ops.
 */

#ifndef MARVEL_ISA_UOP_HH
#define MARVEL_ISA_UOP_HH

#include "common/types.hh"
#include "isa/isa.hh"
#include "isa/minst.hh"

namespace marvel::isa
{

/** Register class of a micro-op operand. */
enum class RegClass : u8 { None = 0, Int = 1, Fp = 2 };

/** A register operand reference (architectural at decode time). */
struct RegRef
{
    RegClass cls = RegClass::None;
    u8 idx = 0;

    bool valid() const { return cls != RegClass::None; }

    bool operator==(const RegRef &other) const = default;
};

/** Execution operation performed by a micro-op. */
enum class ExecOp : u8
{
    Nop,
    // Integer: dst = a OP b (b may be imm via useImm)
    Add, Sub, Mul, Div, DivU, Rem, RemU, And, Or, Xor, Shl, Shr, Sra,
    // dst = cond(a, b) ? 1 : 0 (cond field)
    SetCmp,
    // dst = packFlags(a, b) / packFlagsF(a, b)
    CmpFlags, CmpFlagsF,
    // dst = testFlags(a, cond) (a = flags)
    SetFlagsCC,
    // dst = testFlags(a, cond) ? b : c
    SelFlags,
    // dst = cond(fa, fb) ? 1 : 0 (RISCV float compares)
    SetCmpF,
    // Float: dst = a OP b
    FAdd, FSub, FMul, FDiv, FSqrt, ItoF, FtoI,
    // dst = a ; dst = imm
    MovA, MovImm,
    // dst = a + imm (effective address / stack adjust)
    AddImm,
    // Memory: address = a + imm; stores carry data in b
    Load, Store,
    // Control flow (brCond/brKind fields):
    Branch,
    // Simulation magic (magic field)
    Magic,
    // Undecodable instruction: raises a fault at commit
    Illegal,
};

/** How the branch target/condition of a Branch micro-op is formed. */
enum class BrKind : u8
{
    None,     ///< not a branch
    CondReg,  ///< if cond(a, b) target = pc + imm (RISCV)
    CondFlag, ///< if cond(flags=a) target = pc + imm (ARM/X86)
    Uncond,   ///< target = pc + imm
    Indirect, ///< target = a
    CallDir,  ///< call: target = pc + imm (link handled by extra uops
              ///< or dst = return address)
    RetInd,   ///< return: target = a
};

/** Functional-unit classes (issue constraints and latencies). */
enum class FuClass : u8
{
    IntAlu, IntMul, IntDiv, FpAlu, FpMul, FpDiv, MemPort, BranchUnit,
};

/** Number of FU classes. */
constexpr unsigned kNumFuClasses = 8;

/** One micro-op. */
struct MicroOp
{
    ExecOp op = ExecOp::Nop;
    RegRef dst;
    RegRef srcA;
    RegRef srcB;
    RegRef srcC;
    i64 imm = 0;
    bool useImm = false;     ///< integer ALU second operand is imm
    Cond cond = Cond::Eq;

    // Memory
    u8 memSize = 0;
    bool memSigned = false;
    bool isLoad = false;
    bool isStore = false;
    bool fpMem = false;      ///< FP load/store data register

    // Branch
    BrKind brKind = BrKind::None;

    // Magic
    MagicOp magic = MagicOp::Nop;

    bool isBranch() const { return brKind != BrKind::None; }

    bool operator==(const MicroOp &other) const = default;
};

/** A decoded macro instruction: its micro-ops and byte length. */
struct DecodedInst
{
    MInst minst;
    u8 length = 4;           ///< bytes consumed
    u8 numUops = 0;
    MicroOp uops[3];
    bool illegal = false;

    void
    push(const MicroOp &uop)
    {
        uops[numUops++] = uop;
    }
};

/** FU class used by a micro-op. */
FuClass fuClassOf(const MicroOp &uop);

/** Execution latency (cycles) of a micro-op on its FU. */
unsigned execLatency(const MicroOp &uop);

/**
 * Crack a machine instruction into micro-ops.
 *
 * @param spec    ISA flavor (selects flags/link/stack conventions)
 * @param minst   decoded assembly instruction
 * @param length  encoded length in bytes
 * @param pc      instruction address (for return-address computation)
 */
DecodedInst expand(const IsaSpec &spec, const MInst &minst,
                   unsigned length, Addr pc);

/**
 * Decode-and-crack convenience used by the fetch stage: decode the byte
 * stream at `pc` and expand to micro-ops.
 */
DecodedInst decodeAndExpand(const IsaSpec &spec, const u8 *bytes,
                            std::size_t avail, Addr pc);

} // namespace marvel::isa

#endif // MARVEL_ISA_UOP_HH
