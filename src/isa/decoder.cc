#include "isa/uop.hh"

#include "common/log.hh"
#include "isa/encoding.hh"

namespace marvel::isa
{

const char *
mopName(MOp op)
{
    switch (op) {
      case MOp::Nop: return "nop";
      case MOp::Add: return "add";
      case MOp::Sub: return "sub";
      case MOp::Mul: return "mul";
      case MOp::Div: return "div";
      case MOp::DivU: return "divu";
      case MOp::Rem: return "rem";
      case MOp::RemU: return "remu";
      case MOp::And: return "and";
      case MOp::Or: return "or";
      case MOp::Xor: return "xor";
      case MOp::Shl: return "shl";
      case MOp::Shr: return "shr";
      case MOp::Sra: return "sra";
      case MOp::AddI: return "addi";
      case MOp::AndI: return "andi";
      case MOp::OrI: return "ori";
      case MOp::XorI: return "xori";
      case MOp::ShlI: return "shli";
      case MOp::ShrI: return "shri";
      case MOp::SraI: return "srai";
      case MOp::Slt: return "slt";
      case MOp::SltU: return "sltu";
      case MOp::SltI: return "slti";
      case MOp::SltIU: return "sltiu";
      case MOp::Lui: return "lui";
      case MOp::MovZ: return "movz";
      case MOp::MovK: return "movk";
      case MOp::MovImm32: return "movimm32";
      case MOp::MovImm64: return "movimm64";
      case MOp::Mov: return "mov";
      case MOp::Cmp: return "cmp";
      case MOp::CmpI: return "cmpi";
      case MOp::FCmp: return "fcmp";
      case MOp::SetCC: return "setcc";
      case MOp::CSel: return "csel";
      case MOp::FSet: return "fset";
      case MOp::Ld: return "ld";
      case MOp::St: return "st";
      case MOp::LdF: return "ldf";
      case MOp::StF: return "stf";
      case MOp::AluM: return "alum";
      case MOp::Br: return "br";
      case MOp::Jmp: return "jmp";
      case MOp::JmpR: return "jmpr";
      case MOp::Call: return "call";
      case MOp::Ret: return "ret";
      case MOp::FAdd: return "fadd";
      case MOp::FSub: return "fsub";
      case MOp::FMul: return "fmul";
      case MOp::FDiv: return "fdiv";
      case MOp::FSqrt: return "fsqrt";
      case MOp::ItoF: return "itof";
      case MOp::FtoI: return "ftoi";
      case MOp::Magic: return "magic";
      case MOp::Illegal: return "illegal";
    }
    return "?";
}

namespace
{

RegRef
intR(unsigned idx)
{
    return {RegClass::Int, static_cast<u8>(idx)};
}

RegRef
fpR(unsigned idx)
{
    return {RegClass::Fp, static_cast<u8>(idx)};
}

/// The X86 AluM subop index (same order as the 0x10.. opcode row).
ExecOp
aluMExecOp(unsigned subop)
{
    static const ExecOp table[13] = {
        ExecOp::Add, ExecOp::Sub, ExecOp::Mul, ExecOp::Div,
        ExecOp::DivU, ExecOp::Rem, ExecOp::RemU, ExecOp::And,
        ExecOp::Or, ExecOp::Xor, ExecOp::Shl, ExecOp::Shr, ExecOp::Sra,
    };
    return subop < 13 ? table[subop] : ExecOp::Nop;
}

ExecOp
aluExecOp(MOp op)
{
    switch (op) {
      case MOp::Add: case MOp::AddI: return ExecOp::Add;
      case MOp::Sub: return ExecOp::Sub;
      case MOp::Mul: return ExecOp::Mul;
      case MOp::Div: return ExecOp::Div;
      case MOp::DivU: return ExecOp::DivU;
      case MOp::Rem: return ExecOp::Rem;
      case MOp::RemU: return ExecOp::RemU;
      case MOp::And: case MOp::AndI: return ExecOp::And;
      case MOp::Or: case MOp::OrI: return ExecOp::Or;
      case MOp::Xor: case MOp::XorI: return ExecOp::Xor;
      case MOp::Shl: case MOp::ShlI: return ExecOp::Shl;
      case MOp::Shr: case MOp::ShrI: return ExecOp::Shr;
      case MOp::Sra: case MOp::SraI: return ExecOp::Sra;
      default:
        panic("aluExecOp: not an ALU MOp");
    }
}

} // namespace

FuClass
fuClassOf(const MicroOp &uop)
{
    if (uop.isLoad || uop.isStore)
        return FuClass::MemPort;
    if (uop.isBranch())
        return FuClass::BranchUnit;
    switch (uop.op) {
      case ExecOp::Mul: return FuClass::IntMul;
      case ExecOp::Div: case ExecOp::DivU: case ExecOp::Rem:
      case ExecOp::RemU:
        return FuClass::IntDiv;
      case ExecOp::FAdd: case ExecOp::FSub: case ExecOp::ItoF:
      case ExecOp::FtoI: case ExecOp::SetCmpF: case ExecOp::CmpFlagsF:
        return FuClass::FpAlu;
      case ExecOp::FMul: return FuClass::FpMul;
      case ExecOp::FDiv: case ExecOp::FSqrt: return FuClass::FpDiv;
      default:
        return FuClass::IntAlu;
    }
}

unsigned
execLatency(const MicroOp &uop)
{
    switch (uop.op) {
      case ExecOp::Mul: return 3;
      case ExecOp::Div: case ExecOp::DivU: case ExecOp::Rem:
      case ExecOp::RemU:
        return 12;
      case ExecOp::FAdd: case ExecOp::FSub: return 3;
      case ExecOp::FMul: return 4;
      case ExecOp::FDiv: return 12;
      case ExecOp::FSqrt: return 16;
      case ExecOp::ItoF: case ExecOp::FtoI: return 2;
      case ExecOp::CmpFlagsF: case ExecOp::SetCmpF: return 2;
      default:
        return 1;
    }
}

DecodedInst
expand(const IsaSpec &spec, const MInst &mi, unsigned length, Addr pc)
{
    DecodedInst di;
    di.minst = mi;
    di.length = static_cast<u8>(length);

    // RISCV x0 is hardwired: discard writes.
    auto intDst = [&](unsigned idx) -> RegRef {
        if (spec.hasZeroReg && idx == 0)
            return {};
        return intR(idx);
    };
    const RegRef flags =
        spec.hasFlags ? intR(spec.flagsReg()) : RegRef{};

    switch (mi.op) {
      case MOp::Nop: {
        MicroOp u;
        u.op = ExecOp::Nop;
        di.push(u);
        break;
      }
      case MOp::Add: case MOp::Sub: case MOp::Mul: case MOp::Div:
      case MOp::DivU: case MOp::Rem: case MOp::RemU: case MOp::And:
      case MOp::Or: case MOp::Xor: case MOp::Shl: case MOp::Shr:
      case MOp::Sra: {
        MicroOp u;
        u.op = aluExecOp(mi.op);
        u.dst = intDst(mi.rd);
        u.srcA = intR(mi.ra);
        u.srcB = intR(mi.rb);
        di.push(u);
        break;
      }
      case MOp::AddI: case MOp::AndI: case MOp::OrI: case MOp::XorI:
      case MOp::ShlI: case MOp::ShrI: case MOp::SraI: {
        MicroOp u;
        u.op = aluExecOp(mi.op);
        u.dst = intDst(mi.rd);
        u.srcA = intR(mi.ra);
        u.useImm = true;
        u.imm = mi.imm;
        di.push(u);
        break;
      }
      case MOp::Slt: case MOp::SltU: case MOp::SltI: case MOp::SltIU: {
        MicroOp u;
        u.op = ExecOp::SetCmp;
        u.cond = (mi.op == MOp::Slt || mi.op == MOp::SltI)
                     ? Cond::Lt : Cond::LtU;
        u.dst = intDst(mi.rd);
        u.srcA = intR(mi.ra);
        if (mi.op == MOp::SltI || mi.op == MOp::SltIU) {
            u.useImm = true;
            u.imm = mi.imm;
        } else {
            u.srcB = intR(mi.rb);
        }
        di.push(u);
        break;
      }
      case MOp::Lui: case MOp::MovImm32: case MOp::MovImm64: {
        MicroOp u;
        u.op = ExecOp::MovImm;
        u.dst = intDst(mi.rd);
        u.imm = mi.imm;
        di.push(u);
        break;
      }
      case MOp::MovZ: {
        MicroOp u;
        u.op = ExecOp::MovImm;
        u.dst = intDst(mi.rd);
        u.imm = mi.imm << (16 * (mi.subop & 3));
        di.push(u);
        break;
      }
      case MOp::MovK: {
        MicroOp u;
        u.op = ExecOp::Or;
        u.dst = intDst(mi.rd);
        u.srcA = intR(mi.rd);
        u.useImm = true;
        u.imm = mi.imm << (16 * (mi.subop & 3));
        di.push(u);
        break;
      }
      case MOp::Mov: {
        MicroOp u;
        u.op = ExecOp::MovA;
        if (mi.fp) {
            u.dst = fpR(mi.rd);
            u.srcA = fpR(mi.ra);
        } else {
            u.dst = intDst(mi.rd);
            u.srcA = intR(mi.ra);
        }
        di.push(u);
        break;
      }
      case MOp::Cmp: case MOp::CmpI: {
        MicroOp u;
        u.op = ExecOp::CmpFlags;
        u.dst = flags;
        u.srcA = intR(mi.ra);
        if (mi.op == MOp::CmpI) {
            u.useImm = true;
            u.imm = mi.imm;
        } else {
            u.srcB = intR(mi.rb);
        }
        di.push(u);
        break;
      }
      case MOp::FCmp: {
        MicroOp u;
        u.op = ExecOp::CmpFlagsF;
        u.dst = flags;
        u.srcA = fpR(mi.ra);
        u.srcB = fpR(mi.rb);
        di.push(u);
        break;
      }
      case MOp::SetCC: {
        MicroOp u;
        u.op = ExecOp::SetFlagsCC;
        u.dst = intDst(mi.rd);
        u.srcA = flags;
        u.cond = mi.cond;
        di.push(u);
        break;
      }
      case MOp::CSel: {
        MicroOp u;
        u.op = ExecOp::SelFlags;
        u.dst = intDst(mi.rd);
        u.srcA = flags;
        u.cond = mi.cond;
        if (spec.kind == IsaKind::X86) {
            // CMOVcc rd, rb: rd = cond ? rb : rd
            u.srcB = intR(mi.rb);
            u.srcC = intR(mi.ra);
        } else {
            // CSEL rd, rn, rm: rd = cond ? rn : rm
            u.srcB = intR(mi.ra);
            u.srcC = intR(mi.rb);
        }
        di.push(u);
        break;
      }
      case MOp::FSet: {
        MicroOp u;
        u.op = ExecOp::SetCmpF;
        u.dst = intDst(mi.rd);
        u.srcA = fpR(mi.ra);
        u.srcB = fpR(mi.rb);
        u.cond = mi.cond;
        di.push(u);
        break;
      }
      case MOp::Ld: {
        MicroOp u;
        u.op = ExecOp::Load;
        u.isLoad = true;
        u.dst = intDst(mi.rd);
        u.srcA = intR(mi.ra);
        u.imm = mi.imm;
        u.memSize = mi.size;
        u.memSigned = mi.sign;
        di.push(u);
        break;
      }
      case MOp::LdF: {
        MicroOp u;
        u.op = ExecOp::Load;
        u.isLoad = true;
        u.fpMem = true;
        u.dst = fpR(mi.rd);
        u.srcA = intR(mi.ra);
        u.imm = mi.imm;
        u.memSize = 8;
        di.push(u);
        break;
      }
      case MOp::St: {
        MicroOp u;
        u.op = ExecOp::Store;
        u.isStore = true;
        u.srcA = intR(mi.ra);
        u.srcB = intR(mi.rb);
        u.imm = mi.imm;
        u.memSize = mi.size;
        di.push(u);
        break;
      }
      case MOp::StF: {
        MicroOp u;
        u.op = ExecOp::Store;
        u.isStore = true;
        u.fpMem = true;
        u.srcA = intR(mi.ra);
        u.srcB = fpR(mi.rb);
        u.imm = mi.imm;
        u.memSize = 8;
        di.push(u);
        break;
      }
      case MOp::AluM: {
        // rd = rd op mem[ra+imm]: crack into load + ALU.
        const RegRef t0 = intR(spec.tempReg(0));
        MicroOp ld;
        ld.op = ExecOp::Load;
        ld.isLoad = true;
        ld.dst = t0;
        ld.srcA = intR(mi.ra);
        ld.imm = mi.imm;
        ld.memSize = 8;
        di.push(ld);
        MicroOp alu;
        alu.op = aluMExecOp(mi.subop);
        alu.dst = intDst(mi.rd);
        alu.srcA = intR(mi.rd);
        alu.srcB = t0;
        di.push(alu);
        break;
      }
      case MOp::Br: {
        MicroOp u;
        u.op = ExecOp::Branch;
        u.imm = mi.imm;
        u.cond = mi.cond;
        if (spec.hasFlags) {
            u.brKind = BrKind::CondFlag;
            u.srcA = flags;
        } else {
            u.brKind = BrKind::CondReg;
            u.srcA = intR(mi.ra);
            u.srcB = intR(mi.rb);
        }
        di.push(u);
        break;
      }
      case MOp::Jmp: {
        MicroOp u;
        u.op = ExecOp::Branch;
        u.brKind = BrKind::Uncond;
        u.imm = mi.imm;
        di.push(u);
        break;
      }
      case MOp::JmpR: {
        MicroOp u;
        u.op = ExecOp::Branch;
        u.brKind = BrKind::Indirect;
        u.srcA = intR(mi.ra);
        di.push(u);
        break;
      }
      case MOp::Call: {
        if (spec.linkViaStack) {
            // X86: t0 = retaddr; mem[sp-8] = t0; sp -= 8 and jump.
            const RegRef t0 = intR(spec.tempReg(0));
            const RegRef sp = intR(spec.spReg);
            MicroOp ra;
            ra.op = ExecOp::MovImm;
            ra.dst = t0;
            ra.imm = static_cast<i64>(pc + length);
            di.push(ra);
            MicroOp st;
            st.op = ExecOp::Store;
            st.isStore = true;
            st.srcA = sp;
            st.srcB = t0;
            st.imm = -8;
            st.memSize = 8;
            di.push(st);
            MicroOp br;
            br.op = ExecOp::Branch;
            br.brKind = BrKind::CallDir;
            br.imm = mi.imm;
            br.dst = sp;      // sp = sp - 8
            br.srcB = sp;
            di.push(br);
        } else {
            MicroOp br;
            br.op = ExecOp::Branch;
            br.brKind = BrKind::CallDir;
            br.imm = mi.imm;
            br.dst = intDst(spec.raReg); // link = pc + length
            di.push(br);
        }
        break;
      }
      case MOp::Ret: {
        if (spec.linkViaStack) {
            // X86: t0 = mem[sp]; sp += 8; jump t0.
            const RegRef t0 = intR(spec.tempReg(0));
            const RegRef sp = intR(spec.spReg);
            MicroOp ld;
            ld.op = ExecOp::Load;
            ld.isLoad = true;
            ld.dst = t0;
            ld.srcA = sp;
            ld.memSize = 8;
            di.push(ld);
            MicroOp br;
            br.op = ExecOp::Branch;
            br.brKind = BrKind::RetInd;
            br.srcA = t0;
            br.dst = sp;      // sp = sp + 8
            br.srcB = sp;
            br.imm = 8;
            di.push(br);
        } else {
            MicroOp br;
            br.op = ExecOp::Branch;
            br.brKind = BrKind::RetInd;
            br.srcA = intR(spec.raReg);
            di.push(br);
        }
        break;
      }
      case MOp::FAdd: case MOp::FSub: case MOp::FMul: case MOp::FDiv: {
        MicroOp u;
        u.op = mi.op == MOp::FAdd ? ExecOp::FAdd
               : mi.op == MOp::FSub ? ExecOp::FSub
               : mi.op == MOp::FMul ? ExecOp::FMul : ExecOp::FDiv;
        u.dst = fpR(mi.rd);
        u.srcA = fpR(mi.ra);
        u.srcB = fpR(mi.rb);
        di.push(u);
        break;
      }
      case MOp::FSqrt: {
        MicroOp u;
        u.op = ExecOp::FSqrt;
        u.dst = fpR(mi.rd);
        u.srcA = fpR(mi.ra);
        di.push(u);
        break;
      }
      case MOp::ItoF: {
        MicroOp u;
        u.op = ExecOp::ItoF;
        u.dst = fpR(mi.rd);
        u.srcA = intR(mi.ra);
        di.push(u);
        break;
      }
      case MOp::FtoI: {
        MicroOp u;
        u.op = ExecOp::FtoI;
        u.dst = intDst(mi.rd);
        u.srcA = fpR(mi.ra);
        di.push(u);
        break;
      }
      case MOp::Magic: {
        MicroOp u;
        u.op = ExecOp::Magic;
        u.magic = static_cast<MagicOp>(mi.subop);
        di.push(u);
        break;
      }
      case MOp::Illegal: {
        MicroOp u;
        u.op = ExecOp::Illegal;
        di.push(u);
        di.illegal = true;
        break;
      }
    }
    return di;
}

DecodedInst
decodeAndExpand(const IsaSpec &spec, const u8 *bytes, std::size_t avail,
                Addr pc)
{
    const DecodeResult dr = decodeBytes(spec.kind, bytes, avail);
    if (dr.illegal) {
        MInst ill;
        ill.op = MOp::Illegal;
        return expand(spec, ill, dr.length, pc);
    }
    return expand(spec, dr.mi, dr.length, pc);
}

} // namespace marvel::isa
