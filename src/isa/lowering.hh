/**
 * @file
 * Internal interface between the lowering pass (codegen.cc) and the
 * emission pass (program.cc).
 */

#ifndef MARVEL_ISA_LOWERING_HH
#define MARVEL_ISA_LOWERING_HH

#include <vector>

#include "isa/codegen.hh"

namespace marvel::isa
{

/** A module lowered to LInst form, plus its constant pool. */
struct LoweredModule
{
    std::vector<LFunc> funcs;   ///< parallel to module.functions
    mir::DataLayout layout;     ///< global addresses (kDataBase-based)
    Addr poolBase = 0;          ///< constant pool address
    std::vector<u8> poolBytes;  ///< constant pool payload
};

/** Lower a verified MIR module for one flavor. */
LoweredModule lowerModule(const mir::Module &module, IsaKind kind);

} // namespace marvel::isa

#endif // MARVEL_ISA_LOWERING_HH
