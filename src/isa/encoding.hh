/**
 * @file
 * Byte-level instruction encoding and decoding for the three ISA flavors.
 *
 * These routines define the actual binary formats stored in simulated
 * memory and fetched through the L1 instruction cache. Fault injection
 * flips bits of these encodings, so the decoders must be *total*: any
 * byte sequence decodes either to a legal MInst or to MOp::Illegal with
 * a consumed length, never undefined behaviour.
 *
 * Flavor properties relevant to vulnerability (see DESIGN.md):
 *  - RISCV: 4-byte base ISA + 2-byte compressed subset; several encoding
 *    fields are ignored by the decoder (flips there are masked).
 *  - ARM: fixed 4 bytes; must-be-zero fields are validated, so nearly
 *    every bit is significant.
 *  - X86: variable length 2..11 bytes: optional REX-like prefix, opcode,
 *    modrm, displacement, immediate.
 */

#ifndef MARVEL_ISA_ENCODING_HH
#define MARVEL_ISA_ENCODING_HH

#include <cstddef>
#include <vector>

#include "isa/minst.hh"

namespace marvel::isa
{

/** Result of decoding one instruction from a byte stream. */
struct DecodeResult
{
    MInst mi;
    u8 length = 4;     ///< bytes consumed (always > 0)
    bool illegal = false;
};

/**
 * Encode one instruction, appending its bytes to `out`.
 *
 * fatal() if the MInst is not encodable in the flavor (codegen bug) or
 * an immediate/displacement does not fit.
 *
 * @param allowCompressed  permit 2-byte RISCV forms (branch relaxation
 *                         disables this per-instruction)
 */
void encodeTo(IsaKind kind, const MInst &mi, std::vector<u8> &out,
              bool allowCompressed = true);

/** Encode into a fresh byte vector. */
std::vector<u8> encode(IsaKind kind, const MInst &mi,
                       bool allowCompressed = true);

/**
 * Decode one instruction from `bytes` (at most `avail` readable bytes).
 * Total: never fails; undecodable patterns yield MOp::Illegal.
 */
DecodeResult decodeBytes(IsaKind kind, const u8 *bytes,
                         std::size_t avail);

/** Maximum encoded instruction length of any flavor. */
constexpr unsigned kMaxInstLength = 11;

} // namespace marvel::isa

#endif // MARVEL_ISA_ENCODING_HH
