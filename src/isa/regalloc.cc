#include "isa/regalloc.hh"

#include <algorithm>

#include "common/log.hh"

namespace marvel::isa
{

OperandRoles
operandRoles(const LInst &inst)
{
    OperandRoles roles;
    const bool fp = inst.fp;
    switch (inst.op) {
      case MOp::Nop: case MOp::Jmp: case MOp::Ret: case MOp::Magic:
      case MOp::Illegal:
        break;
      case MOp::Call:
        break;
      case MOp::Add: case MOp::Sub: case MOp::Mul: case MOp::Div:
      case MOp::DivU: case MOp::Rem: case MOp::RemU: case MOp::And:
      case MOp::Or: case MOp::Xor: case MOp::Shl: case MOp::Shr:
      case MOp::Sra: case MOp::Slt: case MOp::SltU:
        roles = {true, false, true, true,
                 RegClass::Int, RegClass::Int, RegClass::Int};
        break;
      case MOp::AddI: case MOp::AndI: case MOp::OrI: case MOp::XorI:
      case MOp::ShlI: case MOp::ShrI: case MOp::SraI: case MOp::SltI:
      case MOp::SltIU:
        roles = {true, false, true, false,
                 RegClass::Int, RegClass::Int, RegClass::Int};
        break;
      case MOp::Lui: case MOp::MovZ: case MOp::MovImm32:
      case MOp::MovImm64: case MOp::SetCC:
        roles.rdIsDef = true;
        break;
      case MOp::MovK:
        roles.rdIsDef = true;
        roles.rdIsUse = true;
        break;
      case MOp::Mov:
        roles = {true, false, true, false,
                 fp ? RegClass::Fp : RegClass::Int,
                 fp ? RegClass::Fp : RegClass::Int, RegClass::Int};
        break;
      case MOp::Cmp:
        roles = {false, false, true, true,
                 RegClass::Int, RegClass::Int, RegClass::Int};
        break;
      case MOp::CmpI:
        roles.raIsUse = true;
        break;
      case MOp::FCmp:
        roles = {false, false, true, true,
                 RegClass::Int, RegClass::Fp, RegClass::Fp};
        break;
      case MOp::CSel:
        roles = {true, false, true, true,
                 RegClass::Int, RegClass::Int, RegClass::Int};
        break;
      case MOp::FSet:
        roles = {true, false, true, true,
                 RegClass::Int, RegClass::Fp, RegClass::Fp};
        break;
      case MOp::Ld:
        roles = {true, false, true, false,
                 RegClass::Int, RegClass::Int, RegClass::Int};
        break;
      case MOp::LdF:
        roles = {true, false, true, false,
                 RegClass::Fp, RegClass::Int, RegClass::Int};
        break;
      case MOp::St:
        roles = {false, false, true, true,
                 RegClass::Int, RegClass::Int, RegClass::Int};
        break;
      case MOp::StF:
        roles = {false, false, true, true,
                 RegClass::Int, RegClass::Int, RegClass::Fp};
        break;
      case MOp::AluM:
        roles = {true, true, true, false,
                 RegClass::Int, RegClass::Int, RegClass::Int};
        break;
      case MOp::Br:
        // RISCV register-pair branch; flags branches have no operands.
        roles.raIsUse = true;
        roles.rbIsUse = true;
        break;
      case MOp::JmpR:
        roles.raIsUse = true;
        break;
      case MOp::FAdd: case MOp::FSub: case MOp::FMul: case MOp::FDiv:
        roles = {true, false, true, true,
                 RegClass::Fp, RegClass::Fp, RegClass::Fp};
        break;
      case MOp::FSqrt:
        roles = {true, false, true, false,
                 RegClass::Fp, RegClass::Fp, RegClass::Int};
        break;
      case MOp::ItoF:
        roles = {true, false, true, false,
                 RegClass::Fp, RegClass::Int, RegClass::Int};
        break;
      case MOp::FtoI:
        roles = {true, false, true, false,
                 RegClass::Int, RegClass::Fp, RegClass::Int};
        break;
    }
    if (inst.rd == kNoReg) {
        roles.rdIsDef = false;
        roles.rdIsUse = false;
    }
    if (inst.ra == kNoReg)
        roles.raIsUse = false;
    if (inst.rb == kNoReg)
        roles.rbIsUse = false;
    return roles;
}

namespace
{

/** Dense bitset keyed by vreg id. */
class VSet
{
  public:
    explicit VSet(std::size_t n) : words((n + 63) / 64, 0) {}

    bool
    test(u32 v) const
    {
        return (words[v >> 6] >> (v & 63)) & 1;
    }

    /** Returns true when the bit was newly set. */
    bool
    set(u32 v)
    {
        u64 &w = words[v >> 6];
        const u64 m = 1ull << (v & 63);
        const bool fresh = !(w & m);
        w |= m;
        return fresh;
    }

    void
    clear(u32 v)
    {
        words[v >> 6] &= ~(1ull << (v & 63));
    }

    /** this |= other; returns true when anything changed. */
    bool
    merge(const VSet &other)
    {
        bool changed = false;
        for (std::size_t i = 0; i < words.size(); ++i) {
            const u64 next = words[i] | other.words[i];
            if (next != words[i]) {
                words[i] = next;
                changed = true;
            }
        }
        return changed;
    }

    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (std::size_t i = 0; i < words.size(); ++i) {
            u64 w = words[i];
            while (w) {
                const unsigned b = __builtin_ctzll(w);
                fn(static_cast<u32>(i * 64 + b));
                w &= w - 1;
            }
        }
    }

  private:
    std::vector<u64> words;
};

struct Interval
{
    u32 vreg;
    u32 start;
    u32 end;
    bool crossesCall;
    RegClass cls;
};

} // namespace

Allocation
allocateRegisters(const IsaSpec &spec, const LFunc &fn)
{
    const std::size_t numV = fn.vclass.size();
    const std::size_t numB = fn.blocks.size();

    // --- successor map & linear positions --------------------------------
    std::vector<u32> blockStart(numB), blockEnd(numB);
    u32 pos = 0;
    for (std::size_t b = 0; b < numB; ++b) {
        blockStart[b] = pos;
        pos += static_cast<u32>(fn.blocks[b].insts.size());
        blockEnd[b] = pos; // exclusive
    }
    const u32 numPos = pos;

    std::vector<std::vector<u32>> succs(numB);
    for (std::size_t b = 0; b < numB; ++b) {
        const auto &insts = fn.blocks[b].insts;
        bool fallsThrough = true;
        for (const LInst &inst : insts) {
            if (inst.op == MOp::Br && inst.target >= 0)
                succs[b].push_back(static_cast<u32>(inst.target));
            if (inst.op == MOp::Jmp && inst.target >= 0) {
                succs[b].push_back(static_cast<u32>(inst.target));
                fallsThrough = false;
            }
            if (inst.op == MOp::Ret)
                fallsThrough = false;
        }
        if (fallsThrough && b + 1 < numB)
            succs[b].push_back(static_cast<u32>(b + 1));
    }

    // --- per-block use/def ------------------------------------------------
    std::vector<VSet> useSet(numB, VSet(numV));
    std::vector<VSet> defSet(numB, VSet(numV));
    for (std::size_t b = 0; b < numB; ++b) {
        for (const LInst &inst : fn.blocks[b].insts) {
            const OperandRoles roles = operandRoles(inst);
            auto use = [&](u32 r) {
                if (!lIsPhys(r) && r != kNoReg && !defSet[b].test(r))
                    useSet[b].set(r);
            };
            if (roles.raIsUse)
                use(inst.ra);
            if (roles.rbIsUse)
                use(inst.rb);
            if (roles.rdIsUse)
                use(inst.rd);
            if (roles.rdIsDef && !lIsPhys(inst.rd))
                defSet[b].set(inst.rd);
        }
    }

    // --- liveness dataflow -------------------------------------------------
    std::vector<VSet> liveIn(numB, VSet(numV));
    std::vector<VSet> liveOut(numB, VSet(numV));
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t bi = numB; bi-- > 0;) {
            for (u32 s : succs[bi])
                if (liveOut[bi].merge(liveIn[s]))
                    changed = true;
            // in = use | (out - def)
            VSet in = useSet[bi];
            liveOut[bi].forEach([&](u32 v) {
                if (!defSet[bi].test(v))
                    in.set(v);
            });
            if (liveIn[bi].merge(in))
                changed = true;
        }
    }

    // --- build intervals ----------------------------------------------------
    constexpr u32 kUnset = 0xffffffffu;
    std::vector<u32> ivStart(numV, kUnset), ivEnd(numV, 0);
    auto touch = [&](u32 v, u32 p) {
        if (ivStart[v] == kUnset || p < ivStart[v])
            ivStart[v] = p;
        if (p > ivEnd[v])
            ivEnd[v] = p;
    };
    std::vector<u32> callPositions;
    for (std::size_t b = 0; b < numB; ++b) {
        liveIn[b].forEach([&](u32 v) { touch(v, blockStart[b]); });
        liveOut[b].forEach([&](u32 v) {
            touch(v, blockEnd[b] ? blockEnd[b] - 1 : 0);
        });
        u32 p = blockStart[b];
        for (const LInst &inst : fn.blocks[b].insts) {
            const OperandRoles roles = operandRoles(inst);
            auto mark = [&](u32 r, bool used) {
                if (used && !lIsPhys(r) && r != kNoReg)
                    touch(r, p);
            };
            mark(inst.ra, roles.raIsUse);
            mark(inst.rb, roles.rbIsUse);
            mark(inst.rd, roles.rdIsUse || roles.rdIsDef);
            if (inst.op == MOp::Call)
                callPositions.push_back(p);
            ++p;
        }
    }

    std::vector<Interval> intervals;
    intervals.reserve(numV);
    for (u32 v = 0; v < numV; ++v) {
        if (ivStart[v] == kUnset)
            continue;
        Interval iv{v, ivStart[v], ivEnd[v], false, fn.vclass[v]};
        for (u32 cp : callPositions) {
            if (iv.start < cp && cp < iv.end) {
                iv.crossesCall = true;
                break;
            }
        }
        intervals.push_back(iv);
    }
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start ||
                         (a.start == b.start && a.vreg < b.vreg);
              });

    // --- linear scan, per register class ------------------------------------
    Allocation alloc;
    alloc.reg.assign(numV, -1);
    alloc.slot.assign(numV, -1);

    struct Pool
    {
        std::vector<unsigned> caller;
        std::vector<unsigned> callee;
        std::vector<bool> inUse; // indexed by physical register number
    };
    auto makePool = [](const std::vector<unsigned> &caller,
                       const std::vector<unsigned> &callee) {
        Pool p;
        p.caller = caller;
        p.callee = callee;
        p.inUse.assign(64, false);
        return p;
    };
    Pool pools[2] = {
        makePool(spec.callerSavedInt, spec.calleeSavedInt),
        makePool(spec.callerSavedFp, spec.calleeSavedFp),
    };
    std::vector<bool> calleeUsed[2];
    calleeUsed[0].assign(64, false);
    calleeUsed[1].assign(64, false);

    struct Active
    {
        u32 vreg;
        u32 end;
        unsigned reg;
        unsigned poolIdx; // 0 = int, 1 = fp
    };
    std::vector<Active> active;

    auto isCallee = [&](unsigned poolIdx, unsigned reg) {
        const auto &cs = pools[poolIdx].callee;
        return std::find(cs.begin(), cs.end(), reg) != cs.end();
    };

    auto spill = [&](u32 vreg) {
        alloc.slot[vreg] = static_cast<i32>(alloc.numSlots++);
    };

    for (const Interval &iv : intervals) {
        // Expire old intervals.
        for (std::size_t i = active.size(); i-- > 0;) {
            if (active[i].end < iv.start) {
                pools[active[i].poolIdx].inUse[active[i].reg] = false;
                active.erase(active.begin() + i);
            }
        }
        const unsigned pi = iv.cls == RegClass::Fp ? 1 : 0;
        Pool &pool = pools[pi];

        auto tryTake = [&](const std::vector<unsigned> &regs) -> int {
            for (unsigned r : regs)
                if (!pool.inUse[r])
                    return static_cast<int>(r);
            return -1;
        };

        int got = -1;
        if (iv.crossesCall) {
            got = tryTake(pool.callee);
        } else {
            got = tryTake(pool.caller);
            if (got < 0)
                got = tryTake(pool.callee);
        }

        if (got < 0) {
            // Try to steal from the active interval with the furthest
            // end whose register this interval may legally use.
            int victim = -1;
            u32 furthest = iv.end;
            for (std::size_t i = 0; i < active.size(); ++i) {
                const Active &a = active[i];
                if (a.poolIdx != pi)
                    continue;
                if (iv.crossesCall && !isCallee(pi, a.reg))
                    continue;
                if (a.end > furthest) {
                    furthest = a.end;
                    victim = static_cast<int>(i);
                }
            }
            if (victim >= 0) {
                Active &a = active[static_cast<std::size_t>(victim)];
                got = static_cast<int>(a.reg);
                alloc.reg[a.vreg] = -1;
                spill(a.vreg);
                active.erase(active.begin() + victim);
            } else {
                spill(iv.vreg);
                continue;
            }
        }

        alloc.reg[iv.vreg] = got;
        pool.inUse[got] = true;
        if (isCallee(pi, static_cast<unsigned>(got)))
            calleeUsed[pi][got] = true;
        active.push_back({iv.vreg, iv.end, static_cast<unsigned>(got),
                          pi});
    }

    for (unsigned r = 0; r < 64; ++r) {
        if (calleeUsed[0][r])
            alloc.usedCalleeInt.push_back(r);
        if (calleeUsed[1][r])
            alloc.usedCalleeFp.push_back(r);
    }
    (void)numPos;
    return alloc;
}

} // namespace marvel::isa
